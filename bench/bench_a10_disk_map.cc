/// Ablation A10 (ours): what does materializing the declustering buy? The
/// paper's experiments re-evaluate the allocation formula for every bucket
/// of every query; the batched engine instead builds one dense `DiskMap`
/// per method per run and scans contiguous rows. This bench pins down the
/// speedup on the paper's standard configuration (64x64 grid, M = 16,
/// HCAM, all placements of an 8x8 query) and records it as a benchmark
/// counter so the JSON output carries the acceptance number.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_util.h"
#include "griddecl/eval/disk_map.h"

namespace griddecl {
namespace {

constexpr uint32_t kDisks = 16;

GridSpec Grid() { return GridSpec::Create({64, 64}).value(); }

Workload MakeWorkload(const GridSpec& grid) {
  QueryGenerator gen(grid);
  return gen.AllPlacements({8, 8}, "8x8/all").value();
}

void PrintExperiment() {
  const GridSpec grid = Grid();
  const auto hcam = CreateMethod("hcam", grid, kDisks).value();
  const Workload w = MakeWorkload(grid);

  EvalOptions virtual_opts;
  virtual_opts.use_disk_map = false;
  const Evaluator virtual_ev(*hcam, virtual_opts);
  const Evaluator mapped_ev(*hcam);

  using Clock = std::chrono::steady_clock;
  // One warm-up pass each, then a timed pass: enough for a stable headline
  // ratio (the per-iteration benchmarks below do the rigorous timing).
  (void)virtual_ev.EvaluateWorkload(w);
  const auto t0 = Clock::now();
  const WorkloadEval ve = virtual_ev.EvaluateWorkload(w);
  const auto t1 = Clock::now();
  (void)mapped_ev.EvaluateWorkload(w);
  const auto t2 = Clock::now();
  const WorkloadEval me = mapped_ev.EvaluateWorkload(w);
  const auto t3 = Clock::now();

  const double virtual_s = std::chrono::duration<double>(t1 - t0).count();
  const double mapped_s = std::chrono::duration<double>(t3 - t2).count();
  Table t({"Path", "Queries", "meanRT", "Seconds", "Speedup"});
  t.AddRow({"virtual DiskOf", std::to_string(ve.num_queries),
            Table::Fmt(ve.MeanResponse(), 3), Table::Fmt(virtual_s, 5), "1.0"});
  t.AddRow({"DiskMap", std::to_string(me.num_queries),
            Table::Fmt(me.MeanResponse(), 3), Table::Fmt(mapped_s, 5),
            Table::Fmt(virtual_s / mapped_s, 1)});
  bench::PrintTable("A10: workload evaluation path (64x64, M=16, HCAM, 8x8)",
                    t);
}

/// Baseline: per-bucket virtual dispatch, exactly the seed engine's path.
void BM_WorkloadEval_VirtualPath(benchmark::State& state) {
  const GridSpec grid = Grid();
  const auto hcam = CreateMethod("hcam", grid, kDisks).value();
  const Workload w = MakeWorkload(grid);
  EvalOptions opts;
  opts.use_disk_map = false;
  const Evaluator ev(*hcam, opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ev.EvaluateWorkload(w).MeanResponse());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(w.TotalBuckets()));
}
BENCHMARK(BM_WorkloadEval_VirtualPath);

/// Batched engine: one DiskMap built at Evaluator construction (outside the
/// timed loop, as in a real run), contiguous row scans per query.
void BM_WorkloadEval_DiskMap(benchmark::State& state) {
  const GridSpec grid = Grid();
  const auto hcam = CreateMethod("hcam", grid, kDisks).value();
  const Workload w = MakeWorkload(grid);
  const Evaluator ev(*hcam);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ev.EvaluateWorkload(w).MeanResponse());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(w.TotalBuckets()));
}
BENCHMARK(BM_WorkloadEval_DiskMap);

/// Head-to-head measurement inside one benchmark so the JSON output records
/// the ratio directly: counters `virtual_ms`, `diskmap_ms`, and `speedup`
/// (the acceptance criterion is speedup >= 5 on this configuration).
void BM_DiskMapSpeedup(benchmark::State& state) {
  const GridSpec grid = Grid();
  const auto hcam = CreateMethod("hcam", grid, kDisks).value();
  const Workload w = MakeWorkload(grid);
  EvalOptions virtual_opts;
  virtual_opts.use_disk_map = false;
  const Evaluator virtual_ev(*hcam, virtual_opts);
  const Evaluator mapped_ev(*hcam);
  using Clock = std::chrono::steady_clock;
  double virtual_s = 0.0;
  double mapped_s = 0.0;
  for (auto _ : state) {
    const auto t0 = Clock::now();
    benchmark::DoNotOptimize(virtual_ev.EvaluateWorkload(w).MeanResponse());
    const auto t1 = Clock::now();
    benchmark::DoNotOptimize(mapped_ev.EvaluateWorkload(w).MeanResponse());
    const auto t2 = Clock::now();
    virtual_s += std::chrono::duration<double>(t1 - t0).count();
    mapped_s += std::chrono::duration<double>(t2 - t1).count();
  }
  const double iters = static_cast<double>(state.iterations());
  state.counters["virtual_ms"] = 1e3 * virtual_s / iters;
  state.counters["diskmap_ms"] = 1e3 * mapped_s / iters;
  state.counters["speedup"] = virtual_s / mapped_s;
}
BENCHMARK(BM_DiskMapSpeedup);

/// Cost of building the map itself — the one-time price a run pays per
/// method. Amortized over a sweep it is negligible next to evaluation.
void BM_DiskMapBuild(benchmark::State& state) {
  const GridSpec grid = Grid();
  const auto hcam = CreateMethod("hcam", grid, kDisks).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(DiskMap::Build(*hcam));
  }
}
BENCHMARK(BM_DiskMapBuild);

/// CI perf-gate artifact: pinned-repetition kernel timings plus the
/// deterministic workload counters, written as BENCH_a10_disk_map.json.
/// Also the registry-overhead smoke check: the diskmap kernel runs once
/// with a metrics registry attached, and `metrics_overhead_pct` records
/// the median slowdown vs the registry-absent run (acceptance: < 2%).
int RunBenchJson(bench::BenchJson& json) {
  if (!json.enabled()) return 0;
  const GridSpec grid = Grid();
  const auto hcam = CreateMethod("hcam", grid, kDisks).value();
  const Workload w = MakeWorkload(grid);

  // Each timed repetition loops the operation enough to take a few
  // milliseconds: sub-millisecond reps gate on timer and scheduler noise
  // rather than on the kernel. Medians are per batch; derived stats
  // normalize by the iteration counts.
  constexpr int kVirtualIters = 4;
  constexpr int kEvalIters = 16;
  constexpr int kBuildIters = 128;

  EvalOptions virtual_opts;
  virtual_opts.use_disk_map = false;
  const Evaluator virtual_ev(*hcam, virtual_opts);
  const Evaluator mapped_ev(*hcam);
  json.TimeKernel("workload_eval_virtual", [&] {
    for (int i = 0; i < kVirtualIters; ++i) {
      benchmark::DoNotOptimize(virtual_ev.EvaluateWorkload(w).MeanResponse());
    }
  });
  json.TimeKernel("workload_eval_diskmap", [&] {
    for (int i = 0; i < kEvalIters; ++i) {
      benchmark::DoNotOptimize(mapped_ev.EvaluateWorkload(w).MeanResponse());
    }
  });
  json.TimeKernel("diskmap_build", [&] {
    for (int i = 0; i < kBuildIters; ++i) {
      benchmark::DoNotOptimize(DiskMap::Build(*hcam));
    }
  });

  obs::MetricsRegistry registry;
  EvalOptions metric_opts;
  metric_opts.metrics = &registry;
  const Evaluator metric_ev(*hcam, metric_opts);
  json.TimeKernel("workload_eval_diskmap_metrics", [&] {
    for (int i = 0; i < kEvalIters; ++i) {
      benchmark::DoNotOptimize(metric_ev.EvaluateWorkload(w).MeanResponse());
    }
  });

  const double plain = json.KernelMedianMs("workload_eval_diskmap");
  const double metered = json.KernelMedianMs("workload_eval_diskmap_metrics");
  if (plain > 0) {
    json.TimingStat("metrics_overhead_pct", 100.0 * (metered - plain) / plain);
  }
  json.TimingStat("diskmap_speedup",
                  (json.KernelMedianMs("workload_eval_virtual") /
                   kVirtualIters) /
                      std::max(plain / kEvalIters, 1e-9));

  const WorkloadEval e = mapped_ev.EvaluateWorkload(w);
  json.Counter("num_queries", static_cast<double>(e.num_queries));
  json.Counter("mean_response", e.MeanResponse());
  json.Counter("total_buckets", static_cast<double>(w.TotalBuckets()));
  json.AttachRegistry(registry);
  return json.Write();
}

}  // namespace
}  // namespace griddecl

int main(int argc, char** argv) {
  griddecl::bench::BenchJson json("a10_disk_map", &argc, argv);
  if (json.enabled()) return griddecl::RunBenchJson(json);
  griddecl::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
