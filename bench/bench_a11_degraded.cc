/// Ablation A11 (ours): availability under disk failures. The paper's
/// metric assumes every disk answers; this experiment kills disks and
/// measures what each declustering method can still serve, under the three
/// degraded-read strategies the fault subsystem supports: none (plain
/// methods), optimal replica re-routing (r = 2, 3), and ECC parity-group
/// reconstruction (the coding-theoretic structure the ECC method carries
/// anyway, used here for recovery).
///
/// Besides the usual stdout tables, the full sweep is written as a
/// deterministic JSON report (`bench_a11_degraded.json`, or the path in
/// argv[1] when it does not start with "--"): same seed => byte-identical
/// file, which is the reproducibility acceptance check for this experiment.

#include <benchmark/benchmark.h>

#include <fstream>

#include "bench_util.h"
#include "griddecl/sim/availability.h"
#include "griddecl/sim/faults.h"
#include "griddecl/sim/io_sim.h"

namespace griddecl {
namespace {

AvailabilitySweepOptions SweepOptions() {
  // 32x32 on M = 8: a power-of-two configuration so ECC participates and
  // its reconstruction strategy can be compared against replication.
  AvailabilitySweepOptions opts;
  opts.grid_dims = {32, 32};
  opts.num_disks = 8;
  opts.query_shape = {4, 4};
  opts.num_queries = 200;
  opts.max_failed = 2;
  opts.replication = {2, 3};
  opts.seed = 42;
  return opts;
}

void PrintExperiment(const char* json_path) {
  const AvailabilitySweep sweep =
      RunAvailabilitySweep(SweepOptions()).value();

  {
    std::ofstream out(json_path);
    out << sweep.ToJson();
  }
  std::cout << "JSON report: " << json_path << " (" << sweep.points.size()
            << " points)\n\n";

  // Availability: what fraction of queries each configuration still
  // answers. Plain methods fall off a cliff; redundancy does not.
  Table avail({"Method", "Strategy", "f=0", "f=1", "f=2"});
  Table lat({"Method", "Strategy", "f=0 lat", "f=1 lat", "f=2 lat",
             "f=2 degraded x"});
  std::string method, strategy;
  std::vector<std::string> arow, lrow;
  double last_ratio = 0;
  auto flush = [&]() {
    if (arow.empty()) return;
    avail.AddRow(std::move(arow));
    lrow.push_back(Table::Fmt(last_ratio, 2));
    lat.AddRow(std::move(lrow));
    arow.clear();
    lrow.clear();
  };
  for (const AvailabilityPoint& p : sweep.points) {
    if (p.method != method || p.strategy != strategy) {
      flush();
      method = p.method;
      strategy = p.strategy;
      arow = {method, strategy};
      lrow = {method, strategy};
    }
    arow.push_back(Table::Fmt(p.availability, 3));
    lrow.push_back(Table::Fmt(p.mean_latency_ms, 2));
    last_ratio = p.degraded_ratio;
  }
  flush();
  bench::PrintTable(
      "A11: availability vs. failed disks (32x32, M=8, 4x4 queries, "
      "MPL 4)",
      avail);
  bench::PrintTable("A11: mean latency (ms) over answered queries", lat);
  std::cout << "Note: 'plain' loses every query touching a dead disk; "
               "replica-rR re-routes around up to R-1 failures; "
               "ecc-reconstruct rebuilds each dead-disk bucket from its "
               "parity group (distance 3 => single-failure tolerance) at "
               "the cost of fan-out reads.\n";
}

/// Single-query degraded makespan: the price of one reconstruction-heavy
/// query through the fault-aware simulator.
void BM_RunQueryDegraded(benchmark::State& state) {
  const GridSpec grid = GridSpec::Create({32, 32}).value();
  const auto ecc = CreateMethod("ecc", grid, 8).value();
  FaultSpec spec;
  spec.failures = {{0, 0.0}};
  const FaultModel fm = FaultModel::Create(8, spec).value();
  const DegradedPlan plan =
      DegradedPlan::ForEcc(*ecc, fm.terminal_failed()).value();
  const ParallelIoSimulator sim(8, DiskParams{});
  const RangeQuery q = RangeQuery::Create(
      grid, BucketRect::Create({0, 0}, {7, 7}).value()).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim.RunQueryDegraded(q, plan, fm).value().makespan_ms);
  }
}
BENCHMARK(BM_RunQueryDegraded);

/// Throughput of the fault-aware path vs. the healthy fast path, same
/// workload: the overhead of fault bookkeeping when faults are present.
void BM_ThroughputDegraded(benchmark::State& state) {
  const GridSpec grid = GridSpec::Create({32, 32}).value();
  const auto hcam = CreateMethod("hcam", grid, 8).value();
  QueryGenerator gen(grid);
  Rng rng(42);
  const Workload w =
      gen.SampledPlacements({4, 4}, 100, &rng, "4x4").value();
  FaultSpec spec;
  spec.failures = {{0, 0.0}};
  spec.transient_error_prob = 0.01;
  const FaultModel fm = FaultModel::Create(8, spec).value();
  ThroughputOptions opts;
  opts.faults = &fm;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SimulateThroughput(*hcam, w, opts).value().total_ms);
  }
}
BENCHMARK(BM_ThroughputDegraded);

}  // namespace
}  // namespace griddecl

int main(int argc, char** argv) {
  const char* json_path = "bench_a11_degraded.json";
  if (argc > 1 && argv[1][0] != '-') json_path = argv[1];
  griddecl::PrintExperiment(json_path);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
