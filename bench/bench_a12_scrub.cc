/// Ablation A12 (ours): scrub-and-repair throughput. The durability layer
/// (checksummed v2 format + catalog manifest + scrub) only earns its keep
/// if verification is cheap relative to the data it protects, so this
/// experiment measures end-to-end scrub speed — pages and megabytes per
/// second — on a 64x64, M=16 catalog under each redundancy policy, plus
/// the marginal cost of actually repairing injected page damage.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "bench_util.h"

namespace griddecl {
namespace {

constexpr int kRecordsPerRelation = 50'000;
constexpr uint32_t kNumDisks = 16;

GridFile MakeFile(uint64_t seed) {
  Schema schema = Schema::Create({{"x", 0.0, 1.0}, {"y", 0.0, 1.0}}).value();
  GridFile f = GridFile::Create(std::move(schema), {64, 64}).value();
  Rng rng(seed);
  for (int i = 0; i < kRecordsPerRelation; ++i) {
    (void)f.Insert({rng.NextDouble(), rng.NextDouble()}).value();
  }
  return f;
}

Catalog MakeCatalog() {
  Catalog catalog(kNumDisks);
  uint64_t seed = 7;
  for (const char* method : {"dm", "hcam", "fx"}) {
    GRIDDECL_CHECK(
        catalog
            .AddRelation(method, DeclusteredFile::Create(MakeFile(seed++),
                                                         method, kNumDisks)
                                     .value())
            .ok());
  }
  return catalog;
}

MemEnv SaveWithPolicy(const Catalog& catalog,
                      RelationRedundancy::Policy policy) {
  MemEnv env;
  ManifestSaveOptions options;
  options.default_redundancy.policy = policy;
  options.default_redundancy.copies = 2;
  options.default_redundancy.group_pages = 8;
  (void)SaveCatalogManifest(catalog, &env, options).value();
  return env;
}

/// Flip one byte in the middle of each relation's first data page.
void DamageEveryRelation(MemEnv* env) {
  const CatalogManifest m = ReadCurrentManifest(*env).value();
  for (size_t i = 0; i < m.relations.size(); ++i) {
    const FileLayout layout =
        ParseFileLayout(env->ReadFile(m.DataFileName(i)).value()).value();
    (void)env->CorruptByte(m.DataFileName(i), layout.PageOffset(0) + 64,
                           0xA5);
  }
}

uint64_t CatalogBytes(const MemEnv& env) {
  uint64_t total = 0;
  const std::vector<std::string> names = env.ListFiles().value();
  for (const std::string& name : names) {
    total += env.ReadFile(name).value().size();
  }
  return total;
}

double MedianScrubMs(const MemEnv& base, bool damage) {
  // Median of 5 runs, each on a fresh copy of the env.
  std::vector<double> ms;
  for (int run = 0; run < 5; ++run) {
    MemEnv env = base;
    if (damage) DamageEveryRelation(&env);
    const auto start = std::chrono::steady_clock::now();
    const ScrubReport report = ScrubCatalog(&env).value();
    const auto stop = std::chrono::steady_clock::now();
    GRIDDECL_CHECK(damage ? report.pages_repaired == 3 : report.Clean());
    ms.push_back(
        std::chrono::duration<double, std::milli>(stop - start).count());
  }
  std::sort(ms.begin(), ms.end());
  return ms[ms.size() / 2];
}

void PrintExperiment() {
  const Catalog catalog = MakeCatalog();
  Table t({"Policy", "Pages", "MB", "Clean ms", "Pages/s", "MB/s",
           "Repair ms"});
  for (const auto policy : {RelationRedundancy::Policy::kNone,
                            RelationRedundancy::Policy::kMirror,
                            RelationRedundancy::Policy::kParity}) {
    const MemEnv env = SaveWithPolicy(catalog, policy);
    const ScrubReport clean = [&] {
      MemEnv copy = env;
      return ScrubCatalog(&copy).value();
    }();
    const double mb = static_cast<double>(CatalogBytes(env)) / (1 << 20);
    const double clean_ms = MedianScrubMs(env, /*damage=*/false);
    // Repairs need redundancy; unprotected catalogs only report.
    const bool repairable = policy != RelationRedundancy::Policy::kNone;
    const double repair_ms =
        repairable ? MedianScrubMs(env, /*damage=*/true) : 0.0;
    t.AddRow({RedundancyPolicyName(policy),
              std::to_string(clean.pages_scanned), Table::Fmt(mb, 1),
              Table::Fmt(clean_ms, 2),
              Table::Fmt(clean.pages_scanned / (clean_ms / 1000.0), 0),
              Table::Fmt(mb / (clean_ms / 1000.0), 0),
              repairable ? Table::Fmt(repair_ms, 2) : "-"});
  }
  bench::PrintTable(
      "A12: scrub throughput (64x64 grid, M=16, 3 relations x " +
          std::to_string(kRecordsPerRelation) +
          " records, 4 KiB pages; repair = 1 damaged page per relation)",
      t);
  std::cout << "Note: scrub reads every replica, so mirror/parity rows "
               "verify more bytes than the unprotected row at the same "
               "page count; Pages/s counts primary data pages only.\n";
}

void BM_ScrubClean(benchmark::State& state) {
  const Catalog catalog = MakeCatalog();
  const MemEnv base =
      SaveWithPolicy(catalog, RelationRedundancy::Policy::kMirror);
  uint64_t pages = 0;
  for (auto _ : state) {
    MemEnv env = base;
    const ScrubReport report = ScrubCatalog(&env).value();
    pages += report.pages_scanned;
    benchmark::DoNotOptimize(report.pages_scanned);
  }
  state.counters["pages/s"] = benchmark::Counter(
      static_cast<double>(pages), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ScrubClean)->Unit(benchmark::kMillisecond);

void BM_ScrubRepairMirror(benchmark::State& state) {
  const Catalog catalog = MakeCatalog();
  MemEnv damaged =
      SaveWithPolicy(catalog, RelationRedundancy::Policy::kMirror);
  DamageEveryRelation(&damaged);
  for (auto _ : state) {
    MemEnv env = damaged;
    benchmark::DoNotOptimize(ScrubCatalog(&env).value().pages_repaired);
  }
}
BENCHMARK(BM_ScrubRepairMirror)->Unit(benchmark::kMillisecond);

void BM_Crc32c(benchmark::State& state) {
  const std::string buffer(1 << 20, '\x5a');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(buffer));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(buffer.size()));
}
BENCHMARK(BM_Crc32c);

void BM_SerializeV2(benchmark::State& state) {
  const GridFile file = MakeFile(99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SerializeGridFile(file).value().size());
  }
}
BENCHMARK(BM_SerializeV2)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace griddecl

int main(int argc, char** argv) {
  griddecl::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
