/// Ablation A13 (ours): resilient query serving. The serving layer wraps
/// the declustered storage in admission control, deadlines, retries, and
/// per-disk circuit breakers; this experiment prices that machinery. It
/// times an end-to-end pass of a fixed random range-query workload through
/// the service (a) against healthy storage and (b) with one disk
/// permanently dead behind mirrors — where every read off the dead disk
/// either fails over inline or is rerouted once the breaker trips — and
/// measures the shed rate when the same workload is forced through an
/// undersized admission queue.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "griddecl/gridfile/faulty_env.h"
#include "griddecl/serve/service.h"

namespace griddecl {
namespace {

constexpr uint32_t kGridSide = 16;
constexpr uint32_t kNumDisks = 8;
constexpr uint32_t kRecordsPerBucket = 8;
constexpr int kNumQueries = 1000;
constexpr uint32_t kDeadDisk = 2;

/// Bucket-clustered data: with 168-byte v3 pages (capacity 8) and 8
/// records inserted per bucket in linearization order, every storage page
/// holds exactly one bucket, which is the layout DiskFaultSchedule
/// requires to translate "disk d died" into byte ranges.
GridFile MakeClusteredFile(uint64_t seed) {
  Schema schema = Schema::Create({{"x", 0.0, 1.0}, {"y", 0.0, 1.0}}).value();
  GridFile f =
      GridFile::Create(std::move(schema), {kGridSide, kGridSide}).value();
  const GridSpec grid = f.grid();
  Rng rng(seed);
  for (uint64_t b = 0; b < grid.num_buckets(); ++b) {
    const BucketCoords c = grid.Delinearize(b);
    for (uint32_t k = 0; k < kRecordsPerBucket; ++k) {
      const std::vector<double> point = {(c[0] + rng.NextDouble()) / kGridSide,
                                         (c[1] + rng.NextDouble()) / kGridSide};
      GRIDDECL_CHECK(f.Insert(point).ok());
    }
  }
  return f;
}

MemEnv MakeMirrorEnv() {
  Catalog catalog(kNumDisks);
  GRIDDECL_CHECK(
      catalog
          .AddRelation("dm", DeclusteredFile::Create(MakeClusteredFile(1),
                                                     "dm", kNumDisks)
                                 .value())
          .ok());
  MemEnv env;
  ManifestSaveOptions options;
  options.page_size_bytes = 168;
  options.default_redundancy.policy = RelationRedundancy::Policy::kMirror;
  options.default_redundancy.copies = 2;
  GRIDDECL_CHECK(SaveCatalogManifest(catalog, &env, options).ok());
  return env;
}

std::vector<serve::QueryRequest> MakeWorkload(uint64_t seed, int count) {
  std::vector<serve::QueryRequest> queries;
  Rng rng(seed);
  for (int q = 0; q < count; ++q) {
    serve::QueryRequest req;
    req.relation = "dm";
    req.lo.resize(2);
    req.hi.resize(2);
    for (int d = 0; d < 2; ++d) {
      const double a = rng.NextDouble();
      const double b = rng.NextDouble();
      req.lo[d] = std::min(a, b);
      req.hi[d] = std::max(a, b);
    }
    queries.push_back(std::move(req));
  }
  return queries;
}

struct PassStats {
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t matches = 0;
};

/// Submits the whole workload to an existing service and drains it.
/// Queries refused at admission count as shed, not failed.
PassStats RunPassOn(serve::QueryService* service,
                    const std::vector<serve::QueryRequest>& queries) {
  std::vector<std::future<serve::QueryResult>> futures;
  PassStats stats;
  for (const serve::QueryRequest& q : queries) {
    Result<std::future<serve::QueryResult>> f = service->Submit(q);
    if (!f.ok()) {
      GRIDDECL_CHECK(f.status().code() == StatusCode::kResourceExhausted);
      stats.shed++;
      continue;
    }
    futures.push_back(std::move(f.value()));
  }
  for (auto& f : futures) {
    const serve::QueryResult r = f.get();
    if (r.status.ok()) {
      stats.ok++;
      stats.matches += r.matches.size();
    }
  }
  return stats;
}

/// One end-to-end pass: fresh service (cold buffer pool), submit
/// everything, wait, drain.
PassStats RunPass(StorageEnv* env, const serve::ServeOptions& options,
                  const std::vector<serve::QueryRequest>& queries) {
  auto service = serve::QueryService::Create(env, options).value();
  const PassStats stats = RunPassOn(service.get(), queries);
  GRIDDECL_CHECK(service->Shutdown().ok());
  return stats;
}

serve::ServeOptions WidePipe() {
  serve::ServeOptions options;
  options.num_threads = 4;
  options.max_queue = kNumQueries;
  options.seed = 42;
  return options;
}

/// One worker for the *timed* kernels: the gate watches the serving
/// layer's per-query overhead (planning, verification, breaker checks,
/// failover), which a single thread measures CPU-bound and repeatably —
/// a multi-threaded pass is mostly scheduler noise on a small runner.
serve::ServeOptions SerialPipe() {
  serve::ServeOptions options = WidePipe();
  options.num_threads = 1;
  return options;
}

std::unique_ptr<FaultyEnv> DeadDiskEnv(MemEnv* env) {
  FaultyEnvOptions fault;
  fault.permanent = serve::DiskFaultSchedule(*env, "dm", kDeadDisk).value();
  return FaultyEnv::Create(env, fault).value();
}

int RunBenchJson(bench::BenchJson& json) {
  MemEnv env = MakeMirrorEnv();
  const std::vector<serve::QueryRequest> queries =
      MakeWorkload(17, kNumQueries);

  // Healthy pass: every query succeeds with the direct-storage answer.
  const PassStats healthy = RunPass(&env, WidePipe(), queries);
  GRIDDECL_CHECK(healthy.ok == static_cast<uint64_t>(kNumQueries));
  json.TimeKernel("serve_healthy", [&] {
    const PassStats s = RunPass(&env, SerialPipe(), queries);
    GRIDDECL_CHECK(s.ok == healthy.ok && s.matches == healthy.matches);
  });

  // Degraded pass: disk kDeadDisk is gone; mirrors keep every query whole
  // (inline failover before the breaker trips, plan reroute after), so
  // results stay identical and only latency moves.
  json.TimeKernel("serve_one_disk_dead", [&] {
    auto faulty = DeadDiskEnv(&env);
    const PassStats s = RunPass(faulty.get(), SerialPipe(), queries);
    GRIDDECL_CHECK(s.ok == healthy.ok && s.matches == healthy.matches);
  });

  const double healthy_ms = json.KernelMedianMs("serve_healthy");
  const double dead_ms = json.KernelMedianMs("serve_one_disk_dead");
  if (healthy_ms > 0.0) {
    json.TimingStat("degraded_overhead_pct",
                    100.0 * (dead_ms - healthy_ms) / healthy_ms);
  }

  // Steady-state repeated-query pass: one long-lived service replaying
  // the same workload, so after TimeKernel's untimed warmup every page
  // read is a buffer-pool hit (no I/O, no re-verify, no re-decode).
  {
    auto warm = serve::QueryService::Create(&env, SerialPipe()).value();
    json.TimeKernel("serve_warm_pool", [&] {
      const PassStats s = RunPassOn(warm.get(), queries);
      GRIDDECL_CHECK(s.ok == healthy.ok && s.matches == healthy.matches);
    });
    GRIDDECL_CHECK(warm->Shutdown().ok());
  }

  // Warm-pool speedup under a device-latency model: FaultyEnv charges
  // 50 us per physical page read, the price MemEnv's free reads hide. A
  // warm pool answers a repeated pass without issuing a single read;
  // pool_pages = 0 pays the device on every page visit. Sleep-based
  // latency is too environment-sensitive for a gated kernel, so the
  // passes are timed directly and reported as timing stats — the ratio
  // is governed by the deterministic count of physical reads avoided.
  {
    FaultyEnvOptions device_model;
    device_model.latency_ms = 0.05;
    auto device = FaultyEnv::Create(&env, device_model).value();
    const std::vector<serve::QueryRequest> sample(queries.begin(),
                                                  queries.begin() + 100);

    auto timed_pass = [&sample](serve::QueryService* service) {
      const auto start = std::chrono::steady_clock::now();
      const PassStats s = RunPassOn(service, sample);
      const auto stop = std::chrono::steady_clock::now();
      GRIDDECL_CHECK(s.ok == sample.size());
      return std::make_pair(
          std::chrono::duration<double, std::milli>(stop - start).count(),
          s.matches);
    };

    auto warm =
        serve::QueryService::Create(device.get(), SerialPipe()).value();
    (void)RunPassOn(warm.get(), sample);  // Fill the pool.
    const auto [warm_ms, warm_matches] = timed_pass(warm.get());
    GRIDDECL_CHECK(warm->Shutdown().ok());

    serve::ServeOptions no_pool = SerialPipe();
    no_pool.pool_pages = 0;
    auto cold =
        serve::QueryService::Create(device.get(), no_pool).value();
    const auto [no_pool_ms, no_pool_matches] = timed_pass(cold.get());
    GRIDDECL_CHECK(cold->Shutdown().ok());

    GRIDDECL_CHECK(warm_matches == no_pool_matches);
    json.TimingStat("warm_pool_pass_ms", warm_ms);
    json.TimingStat("no_pool_pass_ms", no_pool_ms);
    if (warm_ms > 0.0) {
      json.TimingStat("warm_pool_speedup", no_pool_ms / warm_ms);
    }
  }

  // Overload: one slow worker (1 ms per page read) behind a queue of 8.
  // The exact shed count depends on drain timing, so it lives with the
  // wall-clock stats, not the deterministic counters.
  {
    FaultyEnvOptions fault;
    fault.latency_ms = 1.0;
    auto slow = FaultyEnv::Create(&env, fault).value();
    serve::ServeOptions options;
    options.num_threads = 1;
    options.max_queue = 8;
    options.seed = 42;
    const PassStats s = RunPass(slow.get(), options, queries);
    GRIDDECL_CHECK(s.shed > 0);
    json.TimingStat("overload_shed_fraction",
                    static_cast<double>(s.shed) / kNumQueries);
  }

  json.Counter("num_queries", kNumQueries);
  json.Counter("total_matches", static_cast<double>(healthy.matches));
  json.Counter("num_disks", kNumDisks);
  json.Counter("grid_buckets", kGridSide * kGridSide);

  // Registry snapshot from a deterministic pass: one thread, synchronous
  // Execute per query, healthy storage — every count is workload-defined.
  {
    serve::ServeOptions options;
    options.num_threads = 1;
    options.max_queue = 1;
    options.seed = 42;
    auto service = serve::QueryService::Create(&env, options).value();
    for (const serve::QueryRequest& q : queries) {
      GRIDDECL_CHECK(service->Execute(q).status.ok());
    }
    obs::MetricsRegistry registry;
    service->SnapshotMetrics(&registry);
    GRIDDECL_CHECK(service->Shutdown().ok());
    json.AttachRegistry(registry);
  }
  return json.Write();
}

void PrintExperiment() {
  MemEnv env = MakeMirrorEnv();
  const std::vector<serve::QueryRequest> queries =
      MakeWorkload(17, kNumQueries);
  const PassStats healthy = RunPass(&env, WidePipe(), queries);

  Table t({"Scenario", "Queries", "Ok", "Shed", "Matches"});
  t.AddRow({"healthy", std::to_string(kNumQueries),
            std::to_string(healthy.ok), std::to_string(healthy.shed),
            std::to_string(healthy.matches)});
  {
    auto faulty = DeadDiskEnv(&env);
    const PassStats dead = RunPass(faulty.get(), WidePipe(), queries);
    t.AddRow({"one disk dead (mirrored)", std::to_string(kNumQueries),
              std::to_string(dead.ok), std::to_string(dead.shed),
              std::to_string(dead.matches)});
  }
  {
    auto service = serve::QueryService::Create(&env, WidePipe()).value();
    (void)RunPassOn(service.get(), queries);  // Warm the buffer pool.
    const PassStats warm = RunPassOn(service.get(), queries);
    GRIDDECL_CHECK(service->Shutdown().ok());
    t.AddRow({"repeated pass (warm buffer pool)",
              std::to_string(kNumQueries), std::to_string(warm.ok),
              std::to_string(warm.shed), std::to_string(warm.matches)});
  }
  {
    FaultyEnvOptions fault;
    fault.latency_ms = 1.0;
    auto slow = FaultyEnv::Create(&env, fault).value();
    serve::ServeOptions options;
    options.num_threads = 1;
    options.max_queue = 8;
    options.seed = 42;
    const PassStats overload = RunPass(slow.get(), options, queries);
    t.AddRow({"overload (1 thread, queue 8, 1 ms reads)",
              std::to_string(kNumQueries), std::to_string(overload.ok),
              std::to_string(overload.shed),
              std::to_string(overload.matches)});
  }
  bench::PrintTable(
      "A13 — resilient query service: availability under faults and load",
      t);
}

void BM_ServeHealthyPass(benchmark::State& state) {
  MemEnv env = MakeMirrorEnv();
  const std::vector<serve::QueryRequest> queries =
      MakeWorkload(17, kNumQueries);
  for (auto _ : state) {
    const PassStats s = RunPass(&env, WidePipe(), queries);
    benchmark::DoNotOptimize(s.matches);
  }
  state.SetItemsProcessed(state.iterations() * kNumQueries);
}
BENCHMARK(BM_ServeHealthyPass)->Unit(benchmark::kMillisecond);

void BM_ServeDegradedPass(benchmark::State& state) {
  MemEnv env = MakeMirrorEnv();
  const std::vector<serve::QueryRequest> queries =
      MakeWorkload(17, kNumQueries);
  for (auto _ : state) {
    auto faulty = DeadDiskEnv(&env);
    const PassStats s = RunPass(faulty.get(), WidePipe(), queries);
    benchmark::DoNotOptimize(s.matches);
  }
  state.SetItemsProcessed(state.iterations() * kNumQueries);
}
BENCHMARK(BM_ServeDegradedPass)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace griddecl

int main(int argc, char** argv) {
  griddecl::bench::BenchJson json("a13_serve", &argc, argv);
  if (json.enabled()) return griddecl::RunBenchJson(json);
  griddecl::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
