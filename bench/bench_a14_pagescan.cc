/// Ablation A14 (ours): vectorized columnar page scans. The v3 page
/// format stores each page's records attribute-major with per-attribute
/// min/max zone maps, and the PageStore verifies a page's CRC once at
/// pool admission; every later read reuses the cached decoded columns.
/// This experiment prices the redesign against the pre-PageStore read
/// path — re-verify the page CRC and row-decode on every visit — on a
/// range-scan workload over data clustered on its first attribute (so
/// the zone maps have teeth). Kernels:
///
///  * pagescan_v2_rowwise — the old path: per page visit, CRC verify +
///    row-major decode + branchy per-record filter (v2 bytes).
///  * pagescan_v3_cold    — pool invalidated each pass: the first query
///    pays read+verify+decode at admission, the rest hit cache.
///  * pagescan_v3_warm    — steady state: every visit is a pool hit;
///    zone maps skip whole pages, survivors get the branch-free
///    columnar filter.
///
/// All three kernels must produce the identical match total.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "griddecl/common/check.h"
#include "griddecl/common/random.h"
#include "griddecl/gridfile/page_store.h"
#include "griddecl/gridfile/storage.h"
#include "griddecl/gridfile/storage_env.h"

namespace griddecl {
namespace {

constexpr uint32_t kNumAttrs = 4;
constexpr int kNumRecords = 60000;
constexpr int kNumQueries = 32;
constexpr uint32_t kPageSize = 4096;

/// Data clustered on attribute 0: random points inserted in sorted-x
/// order, so consecutive record ids — and therefore pages — cover tight
/// attribute-0 ranges and the per-page zone maps can prove misses.
GridFile MakeSortedFile(uint64_t seed) {
  Schema schema = Schema::Create({{"x0", 0.0, 1.0},
                                  {"x1", 0.0, 1.0},
                                  {"x2", 0.0, 1.0},
                                  {"x3", 0.0, 1.0}})
                      .value();
  GridFile f = GridFile::Create(std::move(schema), {4, 4, 4, 4}).value();
  Rng rng(seed);
  std::vector<std::vector<double>> points;
  points.reserve(kNumRecords);
  for (int i = 0; i < kNumRecords; ++i) {
    points.push_back({rng.NextDouble(), rng.NextDouble(), rng.NextDouble(),
                      rng.NextDouble()});
  }
  std::sort(points.begin(), points.end(),
            [](const std::vector<double>& a, const std::vector<double>& b) {
              return a[0] < b[0];
            });
  for (const std::vector<double>& p : points) {
    GRIDDECL_CHECK(f.Insert(p).ok());
  }
  return f;
}

struct Box {
  std::vector<double> lo;
  std::vector<double> hi;
};

/// Half the queries are narrow attribute-0 slices (the zone-map
/// showcase: most pages provably miss), half are wide boxes on every
/// attribute (the filter showcase: most pages must be scanned).
std::vector<Box> MakeQueries(uint64_t seed) {
  std::vector<Box> queries;
  Rng rng(seed);
  for (int q = 0; q < kNumQueries; ++q) {
    Box box;
    box.lo.assign(kNumAttrs, 0.0);
    box.hi.assign(kNumAttrs, 1.0);
    if (q % 2 == 0) {
      const double a = rng.NextDouble() * 0.96;
      box.lo[0] = a;
      box.hi[0] = a + 0.04;
    } else {
      for (uint32_t d = 0; d < kNumAttrs; ++d) {
        const double a = rng.NextDouble() * 0.5;
        box.lo[d] = a;
        box.hi[d] = a + 0.5;
      }
    }
    queries.push_back(std::move(box));
  }
  return queries;
}

std::string Serialize(const GridFile& file, uint32_t format_version) {
  SaveOptions save;
  save.page_size_bytes = kPageSize;
  save.format_version = format_version;
  return SerializeGridFile(file, save).value();
}

/// The pre-PageStore read path, per page visit: CRC verify, then a
/// row-major decode-and-test of every record (early-exit per attribute).
uint64_t ScanV2Rowwise(const std::string& bytes, const FileLayout& layout,
                       const std::vector<Box>& queries) {
  uint64_t matches = 0;
  const std::string_view view(bytes);
  for (const Box& q : queries) {
    for (uint64_t p = 0; p < layout.num_pages; ++p) {
      const std::string_view page =
          view.substr(layout.PageOffset(p), layout.page_size_bytes);
      GRIDDECL_CHECK(VerifyPageBytes(page, layout, p).ok());
      const uint32_t in_page = layout.PageRecords(p);
      const char* rows = page.data() + kPageHeaderBytesV2;
      for (uint32_t r = 0; r < in_page; ++r) {
        bool match = true;
        for (uint32_t a = 0; a < kNumAttrs; ++a) {
          double v;
          std::memcpy(&v, rows + (uint64_t{r} * kNumAttrs + a) * 8, 8);
          if (v < q.lo[a] || v > q.hi[a]) {
            match = false;
            break;
          }
        }
        if (match) ++matches;
      }
    }
  }
  return matches;
}

/// The PageStore path: pool lookup, zone-map page skip, branch-free
/// columnar filter over the cached column vectors.
uint64_t ScanV3(PageStore* store, const FileLayout& layout,
                const std::vector<Box>& queries, uint64_t* zone_skips) {
  uint64_t matches = 0;
  std::vector<uint8_t> mask;
  for (const Box& q : queries) {
    for (uint64_t p = 0; p < layout.num_pages; ++p) {
      const PinnedPage page =
          store->GetPage("rel", p, ReadPolicy{}).value();
      const DecodedPage& decoded = page.decoded();
      if (!decoded.MayMatch(q.lo, q.hi)) {
        if (zone_skips != nullptr) ++*zone_skips;
        continue;
      }
      const uint32_t in_page = decoded.num_records;
      mask.assign(in_page, 1);
      for (uint32_t a = 0; a < kNumAttrs; ++a) {
        const double lo = q.lo[a];
        const double hi = q.hi[a];
        const double* col = decoded.column(a);
        uint8_t* m = mask.data();
        for (uint32_t slot = 0; slot < in_page; ++slot) {
          m[slot] &=
              static_cast<uint8_t>(col[slot] >= lo && col[slot] <= hi);
        }
      }
      for (uint32_t slot = 0; slot < in_page; ++slot) matches += mask[slot];
    }
  }
  return matches;
}

/// Pool options that keep the whole relation resident: the probation
/// segment (a quarter of capacity) must hold every page, or a cyclic
/// full-relation sweep would evict single-touch pages before their
/// promoting second touch — exactly the flood the scan-resistant pool
/// is designed to not cache.
PageStore::Options StoreOptions(const FileLayout& layout) {
  PageStore::Options options;
  options.pool_pages = static_cast<size_t>(4 * layout.num_pages);
  return options;
}

int RunBenchJson(bench::BenchJson& json) {
  const GridFile file = MakeSortedFile(11);
  const std::vector<Box> queries = MakeQueries(23);

  const std::string v2_bytes = Serialize(file, kFormatV2);
  const FileLayout v2_layout = ParseFileLayout(v2_bytes).value();

  MemEnv env;
  const std::string v3_bytes = Serialize(file, kFormatV3);
  GRIDDECL_CHECK(env.WriteFile("rel", v3_bytes).ok());
  const FileLayout v3_layout = ParseFileLayout(v3_bytes).value();

  // Deterministic pass first: match totals must agree across formats,
  // and the zone-skip / pool-hit counters are workload-defined.
  const uint64_t v2_matches = ScanV2Rowwise(v2_bytes, v2_layout, queries);
  uint64_t zone_skips = 0;
  PageStore counting_store(&env, StoreOptions(v3_layout));
  counting_store.RegisterFile("rel", v3_layout);
  const uint64_t v3_matches =
      ScanV3(&counting_store, v3_layout, queries, &zone_skips);
  GRIDDECL_CHECK(v2_matches == v3_matches);
  const BufferPool::Stats pool = counting_store.PoolStats();
  GRIDDECL_CHECK(pool.evictions == 0);

  json.TimeKernel("pagescan_v2_rowwise", [&] {
    const uint64_t m = ScanV2Rowwise(v2_bytes, v2_layout, queries);
    GRIDDECL_CHECK(m == v2_matches);
  });

  PageStore cold_store(&env, StoreOptions(v3_layout));
  cold_store.RegisterFile("rel", v3_layout);
  json.TimeKernel("pagescan_v3_cold", [&] {
    cold_store.Invalidate("rel");
    const uint64_t m = ScanV3(&cold_store, v3_layout, queries, nullptr);
    GRIDDECL_CHECK(m == v3_matches);
  });

  PageStore warm_store(&env, StoreOptions(v3_layout));
  warm_store.RegisterFile("rel", v3_layout);
  // TimeKernel's untimed warmup pass fills the pool; timed reps are all
  // steady-state hits.
  json.TimeKernel("pagescan_v3_warm", [&] {
    const uint64_t m = ScanV3(&warm_store, v3_layout, queries, nullptr);
    GRIDDECL_CHECK(m == v3_matches);
  });

  const double v2_ms = json.KernelMedianMs("pagescan_v2_rowwise");
  const double cold_ms = json.KernelMedianMs("pagescan_v3_cold");
  const double warm_ms = json.KernelMedianMs("pagescan_v3_warm");
  const double visits =
      static_cast<double>(kNumQueries) *
      static_cast<double>(v3_layout.num_pages);
  if (warm_ms > 0.0) {
    json.TimingStat("v3_warm_speedup_vs_v2", v2_ms / warm_ms);
    json.TimingStat("v3_warm_pages_per_sec", visits / (warm_ms / 1000.0));
  }
  if (cold_ms > 0.0) {
    json.TimingStat("v3_cold_speedup_vs_v2", v2_ms / cold_ms);
  }
  if (v2_ms > 0.0) {
    json.TimingStat("v2_pages_per_sec", visits / (v2_ms / 1000.0));
  }

  json.Counter("num_records", kNumRecords);
  json.Counter("num_attrs", kNumAttrs);
  json.Counter("num_queries", kNumQueries);
  json.Counter("num_pages_v3", static_cast<double>(v3_layout.num_pages));
  json.Counter("num_pages_v2", static_cast<double>(v2_layout.num_pages));
  json.Counter("total_matches", static_cast<double>(v3_matches));
  json.Counter("zone_map_skips", static_cast<double>(zone_skips));
  json.Counter("zone_map_skip_rate_pct",
               100.0 * static_cast<double>(zone_skips) / visits);
  json.Counter("pool_hit_ratio_pct",
               100.0 * static_cast<double>(pool.hits) /
                   static_cast<double>(pool.hits + pool.misses));

  // Pool gauges from the deterministic pass (single fixed workload, so
  // every value is reproducible byte for byte).
  obs::MetricsRegistry registry;
  counting_store.PublishMetrics(&registry);
  json.AttachRegistry(registry);
  return json.Write();
}

void PrintExperiment() {
  const GridFile file = MakeSortedFile(11);
  const std::vector<Box> queries = MakeQueries(23);
  const std::string v2_bytes = Serialize(file, kFormatV2);
  const FileLayout v2_layout = ParseFileLayout(v2_bytes).value();
  MemEnv env;
  const std::string v3_bytes = Serialize(file, kFormatV3);
  GRIDDECL_CHECK(env.WriteFile("rel", v3_bytes).ok());
  const FileLayout v3_layout = ParseFileLayout(v3_bytes).value();

  const uint64_t v2_matches = ScanV2Rowwise(v2_bytes, v2_layout, queries);
  uint64_t zone_skips = 0;
  PageStore store(&env, StoreOptions(v3_layout));
  store.RegisterFile("rel", v3_layout);
  const uint64_t v3_matches = ScanV3(&store, v3_layout, queries, &zone_skips);
  GRIDDECL_CHECK(v2_matches == v3_matches);

  const uint64_t visits =
      static_cast<uint64_t>(kNumQueries) * v3_layout.num_pages;
  Table t({"Path", "Pages", "Page visits", "Zone-skipped", "Matches"});
  t.AddRow({"v2 rowwise (verify+decode each visit)",
            std::to_string(v2_layout.num_pages), std::to_string(visits), "0",
            std::to_string(v2_matches)});
  t.AddRow({"v3 columnar via PageStore", std::to_string(v3_layout.num_pages),
            std::to_string(visits), std::to_string(zone_skips),
            std::to_string(v3_matches)});
  bench::PrintTable(
      "A14 — columnar v3 page scans: zone-map skips and cached decode", t);
}

void BM_PageScanV2Rowwise(benchmark::State& state) {
  const GridFile file = MakeSortedFile(11);
  const std::vector<Box> queries = MakeQueries(23);
  const std::string bytes = Serialize(file, kFormatV2);
  const FileLayout layout = ParseFileLayout(bytes).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ScanV2Rowwise(bytes, layout, queries));
  }
  state.SetItemsProcessed(state.iterations() * kNumQueries *
                          static_cast<int64_t>(layout.num_pages));
}
BENCHMARK(BM_PageScanV2Rowwise)->Unit(benchmark::kMillisecond);

void BM_PageScanV3Warm(benchmark::State& state) {
  const GridFile file = MakeSortedFile(11);
  const std::vector<Box> queries = MakeQueries(23);
  MemEnv env;
  const std::string bytes = Serialize(file, kFormatV3);
  GRIDDECL_CHECK(env.WriteFile("rel", bytes).ok());
  const FileLayout layout = ParseFileLayout(bytes).value();
  PageStore store(&env, StoreOptions(layout));
  store.RegisterFile("rel", layout);
  (void)ScanV3(&store, layout, queries, nullptr);  // Warm the pool.
  for (auto _ : state) {
    benchmark::DoNotOptimize(ScanV3(&store, layout, queries, nullptr));
  }
  state.SetItemsProcessed(state.iterations() * kNumQueries *
                          static_cast<int64_t>(layout.num_pages));
}
BENCHMARK(BM_PageScanV3Warm)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace griddecl

int main(int argc, char** argv) {
  griddecl::bench::BenchJson json("a14_pagescan", &argc, argv);
  if (json.enabled()) return griddecl::RunBenchJson(json);
  griddecl::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
