/// Ablation A15 (ours): multi-node scatter-gather cluster. The coordinator
/// fans each range query out as per-node sub-queries and prices the three
/// cluster mechanisms on top of the single-node service: (a) the healthy
/// scatter-gather pass, (b) a whole node dead behind 3-way chained mirrors
/// — every route to the dead node replans onto a replica holder and results
/// stay complete — and (c) a live re-declustering migration (copy, stage,
/// verify, atomic cutover). The hedging payoff is measured separately as
/// timing stats: with one slow node, a kFirstSuccess hedge to the replica
/// holder must cut the per-query p99 at least 2x.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "griddecl/cluster/cluster.h"

namespace griddecl {
namespace {

constexpr uint32_t kGridSide = 16;
constexpr uint32_t kNumDisks = 8;
constexpr uint32_t kNumNodes = 4;
constexpr uint32_t kCopies = 3;
constexpr uint32_t kRecordsPerBucket = 8;
constexpr int kNumQueries = 400;
constexpr int kHedgeQueries = 150;
constexpr uint32_t kDeadNode = 1;
constexpr uint32_t kSlowNode = 1;

/// Bucket-clustered data: 168-byte v3 pages hold exactly the 8 records
/// inserted per bucket, so "node n died" maps to whole pages and the
/// migrator copies bucket-aligned units.
GridFile MakeClusteredFile(uint64_t seed) {
  Schema schema = Schema::Create({{"x", 0.0, 1.0}, {"y", 0.0, 1.0}}).value();
  GridFile f =
      GridFile::Create(std::move(schema), {kGridSide, kGridSide}).value();
  const GridSpec grid = f.grid();
  Rng rng(seed);
  for (uint64_t b = 0; b < grid.num_buckets(); ++b) {
    const BucketCoords c = grid.Delinearize(b);
    for (uint32_t k = 0; k < kRecordsPerBucket; ++k) {
      const std::vector<double> point = {(c[0] + rng.NextDouble()) / kGridSide,
                                         (c[1] + rng.NextDouble()) / kGridSide};
      GRIDDECL_CHECK(f.Insert(point).ok());
    }
  }
  return f;
}

/// Chained mirrors place copy c of disk d on disk (d + c) % 8. With two
/// disks per node, copy 1 can land on the owner's own node; copy 2 always
/// crosses nodes — so 3 copies is the minimum that keeps a whole-node
/// death complete, and the hedge always has an off-node replica target.
MemEnv MakeClusterEnv() {
  Catalog catalog(kNumDisks);
  GRIDDECL_CHECK(
      catalog
          .AddRelation("dm", DeclusteredFile::Create(MakeClusteredFile(1),
                                                     "dm", kNumDisks)
                                 .value())
          .ok());
  MemEnv env;
  ManifestSaveOptions options;
  options.page_size_bytes = 168;
  options.default_redundancy.policy = RelationRedundancy::Policy::kMirror;
  options.default_redundancy.copies = kCopies;
  GRIDDECL_CHECK(SaveCatalogManifest(catalog, &env, options).ok());
  return env;
}

std::vector<serve::QueryRequest> MakeWorkload(uint64_t seed, int count) {
  std::vector<serve::QueryRequest> queries;
  Rng rng(seed);
  for (int q = 0; q < count; ++q) {
    serve::QueryRequest req;
    req.relation = "dm";
    req.lo.resize(2);
    req.hi.resize(2);
    for (int d = 0; d < 2; ++d) {
      const double a = rng.NextDouble();
      const double b = rng.NextDouble();
      req.lo[d] = std::min(a, b);
      req.hi[d] = std::max(a, b);
    }
    queries.push_back(std::move(req));
  }
  return queries;
}

cluster::ClusterOptions BaseOptions() {
  cluster::ClusterOptions options;
  options.num_nodes = kNumNodes;
  options.node.seed = 42;
  options.node.max_queue = kNumQueries;
  options.hedging = false;
  options.seed = 42;
  return options;
}

struct PassStats {
  uint64_t complete = 0;
  uint64_t matches = 0;
};

/// One coordinator thread driving the whole workload; `expect_complete`
/// asserts the cluster contract the kernel is pricing.
PassStats RunPass(cluster::Cluster* c,
                  const std::vector<serve::QueryRequest>& queries,
                  bool expect_complete) {
  PassStats stats;
  for (const serve::QueryRequest& q : queries) {
    const cluster::ClusterQueryResult r = c->Execute(q);
    GRIDDECL_CHECK(r.status.ok());
    GRIDDECL_CHECK(!expect_complete || r.complete);
    stats.complete += r.complete ? 1 : 0;
    stats.matches += r.matches.size();
  }
  return stats;
}

/// Sorted per-query wall-clock p-quantile in ms.
double PercentileMs(std::vector<double> ms, double q) {
  GRIDDECL_CHECK(!ms.empty());
  std::sort(ms.begin(), ms.end());
  const size_t idx = static_cast<size_t>(q * (ms.size() - 1));
  return ms[idx];
}

std::vector<double> PerQueryMs(cluster::Cluster* c,
                               const std::vector<serve::QueryRequest>& queries,
                               uint64_t* matches) {
  using Clock = std::chrono::steady_clock;
  std::vector<double> ms;
  ms.reserve(queries.size());
  for (const serve::QueryRequest& q : queries) {
    const auto t0 = Clock::now();
    const cluster::ClusterQueryResult r = c->Execute(q);
    const auto t1 = Clock::now();
    GRIDDECL_CHECK(r.status.ok() && r.complete);
    *matches += r.matches.size();
    ms.push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return ms;
}

int RunBenchJson(bench::BenchJson& json) {
  const MemEnv env = MakeClusterEnv();
  const std::vector<serve::QueryRequest> queries =
      MakeWorkload(17, kNumQueries);

  // Reference answer from one healthy pass; every later pass — degraded,
  // hedged, post-migration — must reproduce it exactly.
  auto healthy = cluster::Cluster::Create(env, BaseOptions()).value();
  const PassStats reference = RunPass(healthy.get(), queries, true);
  GRIDDECL_CHECK(reference.complete == static_cast<uint64_t>(kNumQueries));

  json.TimeKernel("cluster_healthy", [&] {
    const PassStats s = RunPass(healthy.get(), queries, true);
    GRIDDECL_CHECK(s.matches == reference.matches);
  });

  // One node dead behind 3-way mirrors: every route to it replans onto a
  // replica holder, so the pass stays complete and byte-identical — only
  // latency moves.
  {
    auto degraded = cluster::Cluster::Create(env, BaseOptions()).value();
    GRIDDECL_CHECK(degraded->KillNode(kDeadNode).ok());
    json.TimeKernel("cluster_one_node_dead", [&] {
      const PassStats s = RunPass(degraded.get(), queries, true);
      GRIDDECL_CHECK(s.matches == reference.matches);
    });
  }

  const double healthy_ms = json.KernelMedianMs("cluster_healthy");
  const double dead_ms = json.KernelMedianMs("cluster_one_node_dead");
  if (healthy_ms > 0.0) {
    json.TimingStat("node_dead_overhead_pct",
                    100.0 * (dead_ms - healthy_ms) / healthy_ms);
  }

  // Live re-declustering: each rep copies the whole relation into a new
  // generation under the next method, double-reads the verify sample and
  // cuts over atomically. The cluster keeps serving throughout; a rep
  // that aborted or saw a divergent verify read fails the bench.
  uint64_t buckets_copied = 0;
  {
    auto migrating = cluster::Cluster::Create(env, BaseOptions()).value();
    json.TimeKernel("cluster_migration", [&] {
      cluster::MigrationOptions mo;
      mo.new_method = migrating->generation() % 2 == 1 ? "fx" : "dm";
      mo.new_num_disks = kNumDisks;
      const cluster::MigrationReport report =
          migrating->Migrate(mo).value();
      GRIDDECL_CHECK(report.committed);
      GRIDDECL_CHECK(report.verify_mismatches == 0);
      buckets_copied = report.buckets_copied;
      const PassStats s = RunPass(migrating.get(), queries, true);
      GRIDDECL_CHECK(s.matches == reference.matches);
    });
  }

  // Hedging payoff, reported as timing stats (sleep-injected latency is
  // too environment-sensitive for a gated kernel): node 1 serves every
  // page read 1 ms late; a kFirstSuccess hedge fires to the off-node
  // replica holder after 0.25 ms. The slow node stops dominating the
  // tail: per-query p99 must drop at least 2x.
  {
    const std::vector<serve::QueryRequest> sample(
        queries.begin(), queries.begin() + kHedgeQueries);
    cluster::ClusterOptions slow = BaseOptions();
    slow.node_latency_ms.assign(kNumNodes, 0.0);
    slow.node_latency_ms[kSlowNode] = 1.0;

    auto unhedged = cluster::Cluster::Create(env, slow).value();
    uint64_t unhedged_matches = 0;
    const std::vector<double> unhedged_ms =
        PerQueryMs(unhedged.get(), sample, &unhedged_matches);

    slow.hedging = true;
    slow.hedge_policy = cluster::HedgePolicy::kFirstSuccess;
    slow.hedge_delay_ms = 0.25;
    auto hedged = cluster::Cluster::Create(env, slow).value();
    uint64_t hedged_matches = 0;
    const std::vector<double> hedged_ms =
        PerQueryMs(hedged.get(), sample, &hedged_matches);
    GRIDDECL_CHECK(hedged_matches == unhedged_matches);

    const double p99_unhedged = PercentileMs(unhedged_ms, 0.99);
    const double p99_hedged = PercentileMs(hedged_ms, 0.99);
    json.TimingStat("hedge_p99_unhedged_ms", p99_unhedged);
    json.TimingStat("hedge_p99_hedged_ms", p99_hedged);
    json.TimingStat("hedge_p50_unhedged_ms", PercentileMs(unhedged_ms, 0.5));
    json.TimingStat("hedge_p50_hedged_ms", PercentileMs(hedged_ms, 0.5));
    GRIDDECL_CHECK(p99_hedged > 0.0);
    const double speedup = p99_unhedged / p99_hedged;
    json.TimingStat("hedge_p99_speedup", speedup);
    GRIDDECL_CHECK(speedup >= 2.0);
  }

  json.Counter("num_queries", kNumQueries);
  json.Counter("total_matches", static_cast<double>(reference.matches));
  json.Counter("num_disks", kNumDisks);
  json.Counter("num_nodes", kNumNodes);
  json.Counter("mirror_copies", kCopies);
  json.Counter("grid_buckets", kGridSide * kGridSide);
  json.Counter("migration_buckets_copied",
               static_cast<double>(buckets_copied));

  // Registry snapshot from a dedicated deterministic pass: hedging off,
  // healthy nodes, one coordinator thread — every count is defined by
  // the workload alone.
  {
    auto c = cluster::Cluster::Create(env, BaseOptions()).value();
    const PassStats s = RunPass(c.get(), queries, true);
    GRIDDECL_CHECK(s.matches == reference.matches);
    obs::MetricsRegistry registry;
    c->SnapshotMetrics(&registry);
    json.AttachRegistry(registry);
  }
  return json.Write();
}

void PrintExperiment() {
  const MemEnv env = MakeClusterEnv();
  const std::vector<serve::QueryRequest> queries =
      MakeWorkload(17, kNumQueries);
  auto healthy = cluster::Cluster::Create(env, BaseOptions()).value();
  const PassStats reference = RunPass(healthy.get(), queries, true);

  Table t({"Scenario", "Queries", "Complete", "Matches"});
  t.AddRow({"healthy", std::to_string(kNumQueries),
            std::to_string(reference.complete),
            std::to_string(reference.matches)});
  {
    auto degraded = cluster::Cluster::Create(env, BaseOptions()).value();
    GRIDDECL_CHECK(degraded->KillNode(kDeadNode).ok());
    const PassStats s = RunPass(degraded.get(), queries, true);
    t.AddRow({"node 1 dead (3-way mirrors)", std::to_string(kNumQueries),
              std::to_string(s.complete), std::to_string(s.matches)});
  }
  {
    auto migrating = cluster::Cluster::Create(env, BaseOptions()).value();
    cluster::MigrationOptions mo;
    mo.new_method = "fx";
    mo.new_num_disks = kNumDisks;
    const cluster::MigrationReport report = migrating->Migrate(mo).value();
    GRIDDECL_CHECK(report.committed);
    const PassStats s = RunPass(migrating.get(), queries, true);
    t.AddRow({"after live dm->fx migration", std::to_string(kNumQueries),
              std::to_string(s.complete), std::to_string(s.matches)});
  }
  bench::PrintTable(
      "A15 — cluster scatter-gather: degraded routing and live migration",
      t);
}

void BM_ClusterHealthyPass(benchmark::State& state) {
  const MemEnv env = MakeClusterEnv();
  const std::vector<serve::QueryRequest> queries =
      MakeWorkload(17, kNumQueries);
  auto c = cluster::Cluster::Create(env, BaseOptions()).value();
  for (auto _ : state) {
    const PassStats s = RunPass(c.get(), queries, true);
    benchmark::DoNotOptimize(s.matches);
  }
  state.SetItemsProcessed(state.iterations() * kNumQueries);
}
BENCHMARK(BM_ClusterHealthyPass)->Unit(benchmark::kMillisecond);

void BM_ClusterDegradedPass(benchmark::State& state) {
  const MemEnv env = MakeClusterEnv();
  const std::vector<serve::QueryRequest> queries =
      MakeWorkload(17, kNumQueries);
  auto c = cluster::Cluster::Create(env, BaseOptions()).value();
  GRIDDECL_CHECK(c->KillNode(kDeadNode).ok());
  for (auto _ : state) {
    const PassStats s = RunPass(c.get(), queries, true);
    benchmark::DoNotOptimize(s.matches);
  }
  state.SetItemsProcessed(state.iterations() * kNumQueries);
}
BENCHMARK(BM_ClusterDegradedPass)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace griddecl

int main(int argc, char** argv) {
  griddecl::bench::BenchJson json("a15_cluster", &argc, argv);
  if (json.enabled()) return griddecl::RunBenchJson(json);
  griddecl::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
