/// Ablation A16 (ours): failure-domain-aware replica placement and
/// traffic-paced migration. Eight disks over four nodes in two 2-node
/// zones — the topology where the three placement policies separate:
/// chained self-colocates copy 1 of every even disk, spread guarantees
/// distinct nodes but not zones, zone_aware spans both zones at copies=2.
/// The bench prices (a) the degraded scatter-gather pass with a whole
/// zone dead behind zone_aware placement — every query stays complete —
/// and (b) the correlated availability sweep; it pins (as deterministic
/// counters) the worst-case availability of each policy under zone and
/// node kills, and (as timing stats) the concurrent-query p99 during a
/// live migration: a paced copy stays within 3x of the healthy tail
/// while an unpaced copy's device contention blows past it.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "griddecl/cluster/cluster.h"
#include "griddecl/sim/availability.h"

namespace griddecl {
namespace {

constexpr uint32_t kGridSide = 16;
constexpr uint32_t kNumDisks = 8;
constexpr uint32_t kNumNodes = 4;
constexpr uint32_t kNumRacks = 2;
constexpr uint32_t kNumZones = 2;
constexpr uint32_t kCopies = 2;
constexpr uint32_t kRecordsPerBucket = 8;
constexpr int kNumQueries = 256;
constexpr uint32_t kDeadZone = 1;
constexpr uint64_t kPlacementSeed = 7;

/// Migration pacing knobs. The catalog's two files (data + mirror) total
/// ~86 KB, so a 64 KB/s budget makes the copy phase last ~1.3 s — long
/// enough for the concurrent query loop to collect a real tail.
constexpr double kCopyBudgetBytesPerSec = 64.0 * 1024.0;
constexpr double kContentionMs = 2.0;
constexpr double kBaseReadLatencyMs = 0.05;

cluster::Topology ZonedTopology() {
  return cluster::Topology::Grid(kNumNodes, kNumRacks, kNumZones).value();
}

cluster::PlacementSpec Spec(cluster::PlacementPolicy policy) {
  cluster::PlacementSpec spec;
  spec.policy = policy;
  spec.topology = ZonedTopology();
  spec.seed = kPlacementSeed;
  return spec;
}

/// Bucket-clustered data: 168-byte v3 pages hold exactly the 8 records
/// inserted per bucket, so a zone kill maps to whole pages.
GridFile MakeClusteredFile(uint64_t seed) {
  Schema schema = Schema::Create({{"x", 0.0, 1.0}, {"y", 0.0, 1.0}}).value();
  GridFile f =
      GridFile::Create(std::move(schema), {kGridSide, kGridSide}).value();
  const GridSpec grid = f.grid();
  Rng rng(seed);
  for (uint64_t b = 0; b < grid.num_buckets(); ++b) {
    const BucketCoords c = grid.Delinearize(b);
    for (uint32_t k = 0; k < kRecordsPerBucket; ++k) {
      const std::vector<double> point = {(c[0] + rng.NextDouble()) / kGridSide,
                                         (c[1] + rng.NextDouble()) / kGridSide};
      GRIDDECL_CHECK(f.Insert(point).ok());
    }
  }
  return f;
}

/// Commits the catalog with the policy's placement recorded in the
/// manifest — the cluster resolves it from there, end to end.
MemEnv MakeClusterEnv(cluster::PlacementPolicy policy) {
  Catalog catalog(kNumDisks);
  GRIDDECL_CHECK(
      catalog
          .AddRelation("dm", DeclusteredFile::Create(MakeClusteredFile(1),
                                                     "dm", kNumDisks)
                                 .value())
          .ok());
  MemEnv env;
  ManifestSaveOptions options;
  options.page_size_bytes = 168;
  options.default_redundancy.policy = RelationRedundancy::Policy::kMirror;
  options.default_redundancy.copies = kCopies;
  options.placement = cluster::ToManifestPlacement(Spec(policy));
  GRIDDECL_CHECK(SaveCatalogManifest(catalog, &env, options).ok());
  return env;
}

std::vector<serve::QueryRequest> MakeWorkload(uint64_t seed, int count) {
  std::vector<serve::QueryRequest> queries;
  Rng rng(seed);
  for (int q = 0; q < count; ++q) {
    serve::QueryRequest req;
    req.relation = "dm";
    req.lo.resize(2);
    req.hi.resize(2);
    for (int d = 0; d < 2; ++d) {
      const double a = rng.NextDouble();
      const double b = rng.NextDouble();
      req.lo[d] = std::min(a, b);
      req.hi[d] = std::max(a, b);
    }
    queries.push_back(std::move(req));
  }
  return queries;
}

/// Killing a 2-node zone of 4 leaves 2 alive; the default quorum (alive >
/// N/2) would refuse, so zone-kill passes run at quorum_fraction 0.25.
cluster::ClusterOptions BaseOptions() {
  cluster::ClusterOptions options;
  options.num_nodes = kNumNodes;
  options.node.seed = 42;
  options.node.max_queue = kNumQueries;
  options.hedging = false;
  options.quorum_fraction = 0.25;
  options.seed = 42;
  return options;
}

struct PassStats {
  uint64_t complete = 0;
  uint64_t matches = 0;
  uint64_t unavailable_buckets = 0;
};

/// Drives the workload once. With `expect_complete` every query must be a
/// complete kOk result; without it, partial results and whole-query
/// kUnavailable refusals (every touched bucket dead — the chained layout
/// under a zone kill produces both) are tallied instead of fatal.
PassStats RunPass(cluster::Cluster* c,
                  const std::vector<serve::QueryRequest>& queries,
                  bool expect_complete) {
  PassStats stats;
  for (const serve::QueryRequest& q : queries) {
    const cluster::ClusterQueryResult r = c->Execute(q);
    GRIDDECL_CHECK(r.status.ok() ||
                   r.status.code() == StatusCode::kUnavailable);
    GRIDDECL_CHECK(!expect_complete || (r.status.ok() && r.complete));
    const bool complete = r.status.ok() && r.complete;
    stats.complete += complete ? 1 : 0;
    stats.matches += r.matches.size();
    stats.unavailable_buckets +=
        r.status.ok() ? r.unavailable_buckets : std::max<uint64_t>(
                                                    r.unavailable_buckets, 1);
  }
  return stats;
}

/// Sorted per-query wall-clock p-quantile in ms.
double PercentileMs(std::vector<double> ms, double q) {
  GRIDDECL_CHECK(!ms.empty());
  std::sort(ms.begin(), ms.end());
  const size_t idx = static_cast<size_t>(q * (ms.size() - 1));
  return ms[idx];
}

/// Base configuration for the correlated availability sweeps — the same
/// 8-disk / 4-node / 2-zone layout the cluster passes run on.
AvailabilitySweepOptions SweepOptions(FailureDomain domain,
                                      std::vector<uint32_t> replication) {
  AvailabilitySweepOptions opts;
  opts.grid_dims = {8, 8};
  opts.num_disks = kNumDisks;
  opts.query_shape = {2, 2};
  opts.num_queries = 40;
  opts.max_failed = 1;
  opts.replication = std::move(replication);
  opts.seed = 42;
  opts.methods = {"dm"};
  opts.failure_domain = domain;
  opts.topology = ZonedTopology();
  opts.placement_seed = kPlacementSeed;
  return opts;
}

/// Worst-case (over every single-domain kill) availability of `policy` at
/// replication `r`, probing each domain explicitly via forced_domain_order.
double WorstKillAvailability(cluster::PlacementPolicy policy,
                             FailureDomain domain, uint32_t num_domains,
                             uint32_t r) {
  double worst = 1.0;
  for (uint32_t dom = 0; dom < num_domains; ++dom) {
    AvailabilitySweepOptions opts = SweepOptions(domain, {r});
    opts.placement_policies = {policy};
    opts.forced_domain_order = {dom};
    const AvailabilitySweep sweep = RunAvailabilitySweep(opts).value();
    for (const AvailabilityPoint& p : sweep.points) {
      if (p.strategy == "plain" || p.failed_domains == 0) continue;
      worst = std::min(worst, p.availability);
    }
  }
  return worst;
}

/// Concurrent-query tail during one live dm->fx migration. The migration
/// runs on a background thread; the caller thread drives queries from the
/// moment the copy phase starts until the staged manifest lands, timing
/// each one. `paced` selects the bytes/sec budget; unpaced runs model the
/// bulk copy saturating the shared device (copy_contention_ms on every
/// read) at the same effective transfer rate.
struct MigrationTail {
  double p99_ms = 0.0;
  double p50_ms = 0.0;
  double pacing_wait_ms = 0.0;
  uint64_t bytes_copied = 0;
  size_t samples = 0;
};

MigrationTail MeasureMigrationTail(const MemEnv& env,
                                   const std::vector<serve::QueryRequest>&
                                       queries,
                                   uint64_t reference_matches, bool paced) {
  cluster::ClusterOptions options = BaseOptions();
  options.node_latency_ms.assign(kNumNodes, kBaseReadLatencyMs);
  // Pool off: every bucket read pays the simulated device (base latency
  // plus the unpaced copy's contention). A warm pool would absorb reads
  // and hide exactly the interference this stat prices.
  options.node.pool_pages = 0;
  auto c = cluster::Cluster::Create(env, options).value();

  std::atomic<bool> copy_started{false};
  std::atomic<bool> copy_done{false};
  cluster::MigrationOptions mo;
  mo.new_method = "fx";
  mo.new_num_disks = kNumDisks;
  mo.copy_contention_ms = kContentionMs;
  if (paced) {
    mo.copy_bytes_per_sec = kCopyBudgetBytesPerSec;
  } else {
    mo.copy_device_bytes_per_sec = kCopyBudgetBytesPerSec;
  }
  mo.on_phase = [&](const std::string& phase) {
    if (phase == "copy") copy_started.store(true);
    if (phase == "staged") copy_done.store(true);
  };

  cluster::MigrationReport report;
  std::thread migrator([&] { report = c->Migrate(mo).value(); });
  while (!copy_started.load()) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }

  using Clock = std::chrono::steady_clock;
  std::vector<double> ms;
  uint64_t matches = 0;
  size_t next = 0;
  while (!copy_done.load()) {
    const serve::QueryRequest& q = queries[next++ % queries.size()];
    const auto t0 = Clock::now();
    const cluster::ClusterQueryResult r = c->Execute(q);
    const auto t1 = Clock::now();
    GRIDDECL_CHECK(r.status.ok() && r.complete);
    matches += r.matches.size();
    ms.push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  migrator.join();

  GRIDDECL_CHECK(report.committed);
  GRIDDECL_CHECK(report.verify_mismatches == 0);
  GRIDDECL_CHECK(paced ? report.pacing_wait_ms > 0.0
                       : report.pacing_wait_ms == 0.0);
  // A ~1.3 s copy phase must have seen a statistically meaningful number
  // of concurrent queries.
  GRIDDECL_CHECK(ms.size() >= 20);
  // Post-migration sanity: the cut-over layout serves the same bytes.
  const PassStats after = RunPass(c.get(), queries, true);
  GRIDDECL_CHECK(after.matches == reference_matches);

  MigrationTail tail;
  tail.p99_ms = PercentileMs(ms, 0.99);
  tail.p50_ms = PercentileMs(ms, 0.5);
  tail.pacing_wait_ms = report.pacing_wait_ms;
  tail.bytes_copied = report.bytes_copied;
  tail.samples = ms.size();
  return tail;
}

int RunBenchJson(bench::BenchJson& json) {
  const MemEnv zoned_env = MakeClusterEnv(cluster::PlacementPolicy::kZoneAware);
  const MemEnv chained_env = MakeClusterEnv(cluster::PlacementPolicy::kChained);
  const std::vector<serve::QueryRequest> queries =
      MakeWorkload(17, kNumQueries);

  // Reference answer from one healthy pass; the zone-degraded and
  // post-migration passes must reproduce it exactly.
  auto healthy = cluster::Cluster::Create(zoned_env, BaseOptions()).value();
  const PassStats reference = RunPass(healthy.get(), queries, true);
  GRIDDECL_CHECK(reference.complete == static_cast<uint64_t>(kNumQueries));

  json.TimeKernel("placement_healthy", [&] {
    const PassStats s = RunPass(healthy.get(), queries, true);
    GRIDDECL_CHECK(s.matches == reference.matches);
  });

  // The A16 acceptance pair: one whole zone dead at copies=2. zone_aware
  // placed every disk's mirror in the other zone, so the pass stays
  // complete with zero unavailable buckets; chained self-colocated the
  // even disks' mirrors and loses buckets outright.
  uint64_t chained_unavailable = 0;
  uint64_t chained_incomplete = 0;
  {
    auto zoned = cluster::Cluster::Create(zoned_env, BaseOptions()).value();
    GRIDDECL_CHECK(zoned->PlacementWarnings().empty());
    GRIDDECL_CHECK(zoned->KillZone(kDeadZone).ok());
    json.TimeKernel("placement_zone_kill_degraded", [&] {
      const PassStats s = RunPass(zoned.get(), queries, true);
      GRIDDECL_CHECK(s.matches == reference.matches);
      GRIDDECL_CHECK(s.unavailable_buckets == 0);
    });

    auto chained =
        cluster::Cluster::Create(chained_env, BaseOptions()).value();
    GRIDDECL_CHECK(!chained->PlacementWarnings().empty());
    GRIDDECL_CHECK(chained->KillZone(kDeadZone).ok());
    const PassStats s = RunPass(chained.get(), queries, false);
    chained_unavailable = s.unavailable_buckets;
    chained_incomplete = kNumQueries - s.complete;
    GRIDDECL_CHECK(chained_unavailable > 0);
    GRIDDECL_CHECK(chained_incomplete > 0);
  }

  // The correlated sweep kernel: all three policies x copies {2,3} under
  // single-zone, single-rack, and single-node kills, at 4x the stat
  // sweeps' workload so the timing is stable enough for the 15% gate.
  json.TimeKernel("correlated_sweep", [&] {
    for (const FailureDomain domain :
         {FailureDomain::kZone, FailureDomain::kRack,
          FailureDomain::kNode}) {
      AvailabilitySweepOptions opts = SweepOptions(domain, {2, 3});
      opts.num_queries = 160;
      const AvailabilitySweep sweep = RunAvailabilitySweep(opts).value();
      GRIDDECL_CHECK(sweep.points.size() >= 12);
    }
  });

  // Worst-case availability per (policy, copies, domain) — deterministic
  // at the fixed seed, so these live in counters and the baseline pins
  // the policy ordering byte-for-byte.
  const std::vector<std::pair<std::string, cluster::PlacementPolicy>>
      policies = {{"chained", cluster::PlacementPolicy::kChained},
                  {"spread", cluster::PlacementPolicy::kSpread},
                  {"zone_aware", cluster::PlacementPolicy::kZoneAware}};
  double zone_r2[3] = {0, 0, 0};
  for (size_t i = 0; i < policies.size(); ++i) {
    for (uint32_t r : {2u, 3u}) {
      const double worst = WorstKillAvailability(
          policies[i].second, FailureDomain::kZone, kNumZones, r);
      json.Counter("avail_zone_kill_" + policies[i].first + "_r" +
                       std::to_string(r),
                   worst);
      if (r == 2) zone_r2[i] = worst;
    }
    json.Counter("avail_node_kill_" + policies[i].first + "_r2",
                 WorstKillAvailability(policies[i].second,
                                       FailureDomain::kNode, kNumNodes, 2));
    // On the 4x2x2 topology each rack IS a zone's node set, so the rack
    // numbers pin that the rack domain lowers identically.
    json.Counter("avail_rack_kill_" + policies[i].first + "_r2",
                 WorstKillAvailability(policies[i].second,
                                       FailureDomain::kRack, kNumRacks, 2));
  }
  GRIDDECL_CHECK(zone_r2[2] >= 1.0);           // zone_aware survives.
  GRIDDECL_CHECK(zone_r2[2] >= zone_r2[1]);    // >= spread
  GRIDDECL_CHECK(zone_r2[1] >= zone_r2[0]);    // >= chained
  GRIDDECL_CHECK(zone_r2[0] < 1.0);            // chained loses data access.

  // Migration pacing, reported as timing stats (wall-clock tails are too
  // environment-sensitive for a gated kernel). The acceptance bar: the
  // paced copy keeps the concurrent-query p99 within 3x of the healthy
  // tail; the unpaced copy's contention pushes it past that bar.
  {
    cluster::ClusterOptions options = BaseOptions();
    options.node_latency_ms.assign(kNumNodes, kBaseReadLatencyMs);
    options.node.pool_pages = 0;  // Same device model as the tails below.
    auto base = cluster::Cluster::Create(zoned_env, options).value();
    using Clock = std::chrono::steady_clock;
    std::vector<double> healthy_ms;
    for (const serve::QueryRequest& q : queries) {
      const auto t0 = Clock::now();
      const cluster::ClusterQueryResult r = base->Execute(q);
      const auto t1 = Clock::now();
      GRIDDECL_CHECK(r.status.ok() && r.complete);
      healthy_ms.push_back(
          std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
    const double p99_healthy = PercentileMs(healthy_ms, 0.99);

    const MigrationTail paced = MeasureMigrationTail(
        zoned_env, queries, reference.matches, /*paced=*/true);
    const MigrationTail unpaced = MeasureMigrationTail(
        zoned_env, queries, reference.matches, /*paced=*/false);

    json.TimingStat("migration_p99_healthy_ms", p99_healthy);
    json.TimingStat("migration_p99_paced_ms", paced.p99_ms);
    json.TimingStat("migration_p99_unpaced_ms", unpaced.p99_ms);
    json.TimingStat("migration_p50_paced_ms", paced.p50_ms);
    json.TimingStat("migration_p50_unpaced_ms", unpaced.p50_ms);
    json.TimingStat("migration_pacing_wait_ms", paced.pacing_wait_ms);
    json.TimingStat("migration_paced_samples",
                    static_cast<double>(paced.samples));
    json.TimingStat("migration_unpaced_samples",
                    static_cast<double>(unpaced.samples));
    GRIDDECL_CHECK(p99_healthy > 0.0);
    GRIDDECL_CHECK(paced.p99_ms <= 3.0 * p99_healthy);
    GRIDDECL_CHECK(unpaced.p99_ms > 3.0 * p99_healthy);
    json.Counter("migration_bytes_copied",
                 static_cast<double>(paced.bytes_copied));
  }

  json.Counter("num_queries", kNumQueries);
  json.Counter("total_matches", static_cast<double>(reference.matches));
  json.Counter("num_disks", kNumDisks);
  json.Counter("num_nodes", kNumNodes);
  json.Counter("num_zones", kNumZones);
  json.Counter("mirror_copies", kCopies);
  json.Counter("zone_kill_unavailable_chained",
               static_cast<double>(chained_unavailable));
  json.Counter("zone_kill_incomplete_chained",
               static_cast<double>(chained_incomplete));
  json.Counter("zone_kill_unavailable_zone_aware", 0.0);

  // Registry snapshot from a dedicated deterministic pass: zone_aware
  // placement, zone 1 dead, one coordinator thread.
  {
    auto c = cluster::Cluster::Create(zoned_env, BaseOptions()).value();
    GRIDDECL_CHECK(c->KillZone(kDeadZone).ok());
    const PassStats s = RunPass(c.get(), queries, true);
    GRIDDECL_CHECK(s.matches == reference.matches);
    obs::MetricsRegistry registry;
    c->SnapshotMetrics(&registry);
    json.AttachRegistry(registry);
  }
  return json.Write();
}

void PrintExperiment() {
  const std::vector<serve::QueryRequest> queries =
      MakeWorkload(17, kNumQueries);
  const std::vector<std::pair<std::string, cluster::PlacementPolicy>>
      policies = {{"chained", cluster::PlacementPolicy::kChained},
                  {"spread", cluster::PlacementPolicy::kSpread},
                  {"zone_aware", cluster::PlacementPolicy::kZoneAware}};

  Table t({"Policy", "Complete", "Unavailable", "WorstZoneAvail(r2)",
           "WorstNodeAvail(r2)"});
  for (const auto& [name, policy] : policies) {
    const MemEnv env = MakeClusterEnv(policy);
    auto c = cluster::Cluster::Create(env, BaseOptions()).value();
    GRIDDECL_CHECK(c->KillZone(kDeadZone).ok());
    const PassStats s = RunPass(c.get(), queries, false);
    char zone_buf[32];
    char node_buf[32];
    std::snprintf(zone_buf, sizeof(zone_buf), "%.3f",
                  WorstKillAvailability(policy, FailureDomain::kZone,
                                        kNumZones, 2));
    std::snprintf(node_buf, sizeof(node_buf), "%.3f",
                  WorstKillAvailability(policy, FailureDomain::kNode,
                                        kNumNodes, 2));
    t.AddRow({name,
              std::to_string(s.complete) + "/" + std::to_string(kNumQueries),
              std::to_string(s.unavailable_buckets), zone_buf, node_buf});
  }
  bench::PrintTable(
      "A16 — replica placement under a whole-zone kill (copies=2)", t);
}

void BM_ZoneKillDegradedPass(benchmark::State& state) {
  const MemEnv env = MakeClusterEnv(cluster::PlacementPolicy::kZoneAware);
  const std::vector<serve::QueryRequest> queries =
      MakeWorkload(17, kNumQueries);
  auto c = cluster::Cluster::Create(env, BaseOptions()).value();
  GRIDDECL_CHECK(c->KillZone(kDeadZone).ok());
  for (auto _ : state) {
    const PassStats s = RunPass(c.get(), queries, true);
    benchmark::DoNotOptimize(s.matches);
  }
  state.SetItemsProcessed(state.iterations() * kNumQueries);
}
BENCHMARK(BM_ZoneKillDegradedPass)->Unit(benchmark::kMillisecond);

void BM_CorrelatedZoneSweep(benchmark::State& state) {
  const AvailabilitySweepOptions opts =
      SweepOptions(FailureDomain::kZone, {2, 3});
  for (auto _ : state) {
    const AvailabilitySweep sweep = RunAvailabilitySweep(opts).value();
    benchmark::DoNotOptimize(sweep.points.size());
  }
}
BENCHMARK(BM_CorrelatedZoneSweep)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace griddecl

int main(int argc, char** argv) {
  griddecl::bench::BenchJson json("a16_placement", &argc, argv);
  if (json.enabled()) return griddecl::RunBenchJson(json);
  griddecl::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
