/// Ablation A17 (ours): self-healing repair. Eight disks over four nodes
/// in two 2-node zones, zone_aware placement at copies=2 — the layout
/// where one node loss leaves every bucket readable but redundancy
/// degraded. The bench prices the full heal cycle (heartbeat-detected
/// death -> plan -> paced copy -> verify -> fenced cutover) and pins the
/// A17 acceptance pair as deterministic counters: after losing one node
/// AND a different whole zone, the repaired cluster still answers every
/// query (availability 1.000) while the unrepaired control loses buckets.
/// Timing stats cover the concurrent-query p99 during a live repair: a
/// paced copy stays within 3x of the healthy tail while an unpaced copy's
/// device contention blows past it, plus the (virtual-clock) MTTR.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "griddecl/cluster/cluster.h"
#include "griddecl/cluster/repair.h"

namespace griddecl {
namespace {

constexpr uint32_t kGridSide = 16;
constexpr uint32_t kNumDisks = 8;
constexpr uint32_t kNumNodes = 4;
constexpr uint32_t kNumRacks = 2;
constexpr uint32_t kNumZones = 2;
constexpr uint32_t kCopies = 2;
constexpr uint32_t kRecordsPerBucket = 8;
constexpr int kNumQueries = 256;
constexpr uint32_t kDeadNode = 0;
constexpr uint32_t kDeadZone = 1;  // The *other* zone: node 0 is in zone 0.
constexpr uint64_t kPlacementSeed = 7;

/// Heartbeat: 10 ms beats, dead after 4 misses (t = 40); repairs launch at
/// t = 60, so the deterministic detection-to-commit MTTR is 20 virtual ms.
constexpr double kDetectAdvanceMs = 60.0;

/// Repair pacing knobs. A node loss rebuilds ~1/4 of the replica entries,
/// so at 32 KB/s the staged copy lasts long enough for the concurrent
/// query loop to collect a real tail.
constexpr double kCopyBudgetBytesPerSec = 32.0 * 1024.0;
constexpr double kContentionMs = 2.0;
constexpr double kBaseReadLatencyMs = 0.05;

cluster::PlacementSpec ZoneAwareSpec() {
  cluster::PlacementSpec spec;
  spec.policy = cluster::PlacementPolicy::kZoneAware;
  spec.topology =
      cluster::Topology::Grid(kNumNodes, kNumRacks, kNumZones).value();
  spec.seed = kPlacementSeed;
  return spec;
}

/// Bucket-clustered data: 168-byte v3 pages hold exactly the 8 records
/// inserted per bucket, so node and zone kills map to whole pages.
GridFile MakeClusteredFile(uint64_t seed) {
  Schema schema = Schema::Create({{"x", 0.0, 1.0}, {"y", 0.0, 1.0}}).value();
  GridFile f =
      GridFile::Create(std::move(schema), {kGridSide, kGridSide}).value();
  const GridSpec grid = f.grid();
  Rng rng(seed);
  for (uint64_t b = 0; b < grid.num_buckets(); ++b) {
    const BucketCoords c = grid.Delinearize(b);
    for (uint32_t k = 0; k < kRecordsPerBucket; ++k) {
      const std::vector<double> point = {(c[0] + rng.NextDouble()) / kGridSide,
                                         (c[1] + rng.NextDouble()) / kGridSide};
      GRIDDECL_CHECK(f.Insert(point).ok());
    }
  }
  return f;
}

MemEnv MakeClusterEnv() {
  Catalog catalog(kNumDisks);
  GRIDDECL_CHECK(
      catalog
          .AddRelation("dm", DeclusteredFile::Create(MakeClusteredFile(1),
                                                     "dm", kNumDisks)
                                 .value())
          .ok());
  MemEnv env;
  ManifestSaveOptions options;
  options.page_size_bytes = 168;
  options.default_redundancy.policy = RelationRedundancy::Policy::kMirror;
  options.default_redundancy.copies = kCopies;
  options.placement = cluster::ToManifestPlacement(ZoneAwareSpec());
  GRIDDECL_CHECK(SaveCatalogManifest(catalog, &env, options).ok());
  return env;
}

std::vector<serve::QueryRequest> MakeWorkload(uint64_t seed, int count) {
  std::vector<serve::QueryRequest> queries;
  Rng rng(seed);
  for (int q = 0; q < count; ++q) {
    serve::QueryRequest req;
    req.relation = "dm";
    req.lo.resize(2);
    req.hi.resize(2);
    for (int d = 0; d < 2; ++d) {
      const double a = rng.NextDouble();
      const double b = rng.NextDouble();
      req.lo[d] = std::min(a, b);
      req.hi[d] = std::max(a, b);
    }
    queries.push_back(std::move(req));
  }
  return queries;
}

/// After the acceptance kills a single node survives, so the quorum gate
/// must admit 1-of-4 (floor(4 * 0.2) + 1 = 1).
cluster::ClusterOptions BaseOptions() {
  cluster::ClusterOptions options;
  options.num_nodes = kNumNodes;
  options.node.seed = 42;
  options.node.max_queue = kNumQueries;
  options.hedging = false;
  options.quorum_fraction = 0.2;
  options.seed = 42;
  options.placement = ZoneAwareSpec();
  return options;
}

struct PassStats {
  uint64_t complete = 0;
  uint64_t matches = 0;
  uint64_t unavailable_buckets = 0;
};

PassStats RunPass(cluster::Cluster* c,
                  const std::vector<serve::QueryRequest>& queries,
                  bool expect_complete) {
  PassStats stats;
  for (const serve::QueryRequest& q : queries) {
    const cluster::ClusterQueryResult r = c->Execute(q);
    GRIDDECL_CHECK(r.status.ok() ||
                   r.status.code() == StatusCode::kUnavailable);
    GRIDDECL_CHECK(!expect_complete || (r.status.ok() && r.complete));
    const bool complete = r.status.ok() && r.complete;
    stats.complete += complete ? 1 : 0;
    stats.matches += r.matches.size();
    stats.unavailable_buckets +=
        r.status.ok() ? r.unavailable_buckets : std::max<uint64_t>(
                                                    r.unavailable_buckets, 1);
  }
  return stats;
}

double PercentileMs(std::vector<double> ms, double q) {
  GRIDDECL_CHECK(!ms.empty());
  std::sort(ms.begin(), ms.end());
  const size_t idx = static_cast<size_t>(q * (ms.size() - 1));
  return ms[idx];
}

/// One full heal cycle: kill a node, let the heartbeat declare it dead,
/// repair. Returns the committed report.
cluster::RepairReport HealNodeLoss(cluster::Cluster* c) {
  GRIDDECL_CHECK(c->KillNode(kDeadNode).ok());
  c->AdvanceTimeMs(kDetectAdvanceMs);
  GRIDDECL_CHECK(c->NodeHealthOf(kDeadNode) == cluster::NodeHealth::kDead);
  const cluster::RepairReport report = c->Repair({}).value();
  GRIDDECL_CHECK(report.committed);
  GRIDDECL_CHECK(report.verify_mismatches == 0);
  GRIDDECL_CHECK(report.replicas_retargeted > 0);
  return report;
}

/// Concurrent-query tail during one live repair. The repair runs on a
/// background thread (its source node already heartbeat-dead); the caller
/// thread drives queries from copy start until the staged manifest lands.
struct RepairTail {
  double p99_ms = 0.0;
  double p50_ms = 0.0;
  double pacing_wait_ms = 0.0;
  uint64_t bytes_copied = 0;
  size_t samples = 0;
};

RepairTail MeasureRepairTail(const MemEnv& env,
                             const std::vector<serve::QueryRequest>& queries,
                             uint64_t reference_matches, bool paced) {
  cluster::ClusterOptions options = BaseOptions();
  options.node_latency_ms.assign(kNumNodes, kBaseReadLatencyMs);
  // Pool off: every bucket read pays the simulated device (base latency
  // plus the unpaced copy's contention). A warm pool would absorb reads
  // and hide exactly the interference this stat prices.
  options.node.pool_pages = 0;
  auto c = cluster::Cluster::Create(env, options).value();
  GRIDDECL_CHECK(c->KillNode(kDeadNode).ok());
  c->AdvanceTimeMs(kDetectAdvanceMs);

  std::atomic<bool> copy_started{false};
  std::atomic<bool> copy_done{false};
  cluster::RepairOptions ro;
  ro.copy_contention_ms = kContentionMs;
  if (paced) {
    ro.copy_bytes_per_sec = kCopyBudgetBytesPerSec;
  } else {
    ro.copy_device_bytes_per_sec = kCopyBudgetBytesPerSec;
  }
  ro.on_phase = [&](const std::string& phase) {
    if (phase == "copy") copy_started.store(true);
    if (phase == "staged") copy_done.store(true);
  };

  cluster::RepairReport report;
  std::thread repairer([&] { report = c->Repair(ro).value(); });
  while (!copy_started.load()) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }

  using Clock = std::chrono::steady_clock;
  std::vector<double> ms;
  size_t next = 0;
  while (!copy_done.load()) {
    const serve::QueryRequest& q = queries[next++ % queries.size()];
    const auto t0 = Clock::now();
    const cluster::ClusterQueryResult r = c->Execute(q);
    const auto t1 = Clock::now();
    // One node is dead mid-repair; zone_aware still serves everything.
    GRIDDECL_CHECK(r.status.ok() && r.complete);
    ms.push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  repairer.join();

  GRIDDECL_CHECK(report.committed);
  GRIDDECL_CHECK(report.verify_mismatches == 0);
  GRIDDECL_CHECK(paced ? report.pacing_wait_ms > 0.0
                       : report.pacing_wait_ms == 0.0);
  GRIDDECL_CHECK(ms.size() >= 20);
  // Post-repair sanity: the healed layout serves the same bytes.
  const PassStats after = RunPass(c.get(), queries, true);
  GRIDDECL_CHECK(after.matches == reference_matches);

  RepairTail tail;
  tail.p99_ms = PercentileMs(ms, 0.99);
  tail.p50_ms = PercentileMs(ms, 0.5);
  tail.pacing_wait_ms = report.pacing_wait_ms;
  tail.bytes_copied = report.bytes_copied;
  tail.samples = ms.size();
  return tail;
}

int RunBenchJson(bench::BenchJson& json) {
  const MemEnv env = MakeClusterEnv();
  const std::vector<serve::QueryRequest> queries =
      MakeWorkload(17, kNumQueries);

  // Reference answer from one healthy pass; every healed pass must
  // reproduce it exactly.
  auto healthy = cluster::Cluster::Create(env, BaseOptions()).value();
  const PassStats reference = RunPass(healthy.get(), queries, true);
  GRIDDECL_CHECK(reference.complete == static_cast<uint64_t>(kNumQueries));

  // The repair cycle kernel: fresh cluster, node loss, detection, plan,
  // copy, verify, fenced cutover — the price of one heal.
  json.TimeKernel("repair_heal_cycle", [&] {
    auto c = cluster::Cluster::Create(env, BaseOptions()).value();
    const cluster::RepairReport r = HealNodeLoss(c.get());
    GRIDDECL_CHECK(r.new_generation == 2);
  });

  // The A17 acceptance pair: node 0 dies and is healed, then all of zone
  // 1 dies. Repaired: every query complete (availability 1.000) off the
  // single surviving node. Control (no repair in between): buckets whose
  // zone-0 copy lived on node 0 lost both replicas.
  uint64_t repaired_incomplete = 0;
  uint64_t control_incomplete = 0;
  uint64_t control_unavailable = 0;
  cluster::RepairReport heal_report;
  {
    auto c = cluster::Cluster::Create(env, BaseOptions()).value();
    heal_report = HealNodeLoss(c.get());
    GRIDDECL_CHECK(c->KillZone(kDeadZone).ok());
    json.TimeKernel("repair_zone_kill_degraded", [&] {
      const PassStats s = RunPass(c.get(), queries, true);
      GRIDDECL_CHECK(s.matches == reference.matches);
      GRIDDECL_CHECK(s.unavailable_buckets == 0);
    });
    const PassStats s = RunPass(c.get(), queries, true);
    repaired_incomplete = kNumQueries - s.complete;

    auto control = cluster::Cluster::Create(env, BaseOptions()).value();
    GRIDDECL_CHECK(control->KillNode(kDeadNode).ok());
    GRIDDECL_CHECK(control->KillZone(kDeadZone).ok());
    const PassStats cs = RunPass(control.get(), queries, false);
    control_incomplete = kNumQueries - cs.complete;
    control_unavailable = cs.unavailable_buckets;
    GRIDDECL_CHECK(control_incomplete > 0);
    GRIDDECL_CHECK(control_unavailable > 0);
  }
  GRIDDECL_CHECK(repaired_incomplete == 0);

  // Repair pacing, reported as timing stats (wall-clock tails are too
  // environment-sensitive for a gated kernel). The acceptance bar: the
  // paced copy keeps the concurrent-query p99 within 3x of the healthy
  // tail; the unpaced copy's contention pushes it past that bar.
  {
    cluster::ClusterOptions options = BaseOptions();
    options.node_latency_ms.assign(kNumNodes, kBaseReadLatencyMs);
    options.node.pool_pages = 0;  // Same device model as the tails below.
    auto base = cluster::Cluster::Create(env, options).value();
    using Clock = std::chrono::steady_clock;
    std::vector<double> healthy_ms;
    for (const serve::QueryRequest& q : queries) {
      const auto t0 = Clock::now();
      const cluster::ClusterQueryResult r = base->Execute(q);
      const auto t1 = Clock::now();
      GRIDDECL_CHECK(r.status.ok() && r.complete);
      healthy_ms.push_back(
          std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
    const double p99_healthy = PercentileMs(healthy_ms, 0.99);

    const RepairTail paced =
        MeasureRepairTail(env, queries, reference.matches, /*paced=*/true);
    const RepairTail unpaced =
        MeasureRepairTail(env, queries, reference.matches, /*paced=*/false);

    json.TimingStat("repair_p99_healthy_ms", p99_healthy);
    json.TimingStat("repair_p99_paced_ms", paced.p99_ms);
    json.TimingStat("repair_p99_unpaced_ms", unpaced.p99_ms);
    json.TimingStat("repair_p50_paced_ms", paced.p50_ms);
    json.TimingStat("repair_p50_unpaced_ms", unpaced.p50_ms);
    json.TimingStat("repair_pacing_wait_ms", paced.pacing_wait_ms);
    json.TimingStat("repair_paced_samples",
                    static_cast<double>(paced.samples));
    json.TimingStat("repair_unpaced_samples",
                    static_cast<double>(unpaced.samples));
    GRIDDECL_CHECK(p99_healthy > 0.0);
    GRIDDECL_CHECK(paced.p99_ms <= 3.0 * p99_healthy);
    GRIDDECL_CHECK(unpaced.p99_ms > 3.0 * p99_healthy);
    json.Counter("repair_bytes_copied",
                 static_cast<double>(paced.bytes_copied));
  }

  json.Counter("num_queries", kNumQueries);
  json.Counter("total_matches", static_cast<double>(reference.matches));
  json.Counter("num_disks", kNumDisks);
  json.Counter("num_nodes", kNumNodes);
  json.Counter("num_zones", kNumZones);
  json.Counter("mirror_copies", kCopies);
  // The acceptance pair and the MTTR model, pinned byte-for-byte: at the
  // fixed seed the heal is fully deterministic.
  json.Counter("repaired_zone_kill_incomplete",
               static_cast<double>(repaired_incomplete));
  json.Counter("control_zone_kill_incomplete",
               static_cast<double>(control_incomplete));
  json.Counter("control_zone_kill_unavailable",
               static_cast<double>(control_unavailable));
  json.Counter("repair_replicas_retargeted",
               static_cast<double>(heal_report.replicas_retargeted));
  json.Counter("repair_files_copied",
               static_cast<double>(heal_report.files_copied));
  json.Counter("repair_mttr_virtual_ms", heal_report.mttr_virtual_ms);

  // Registry snapshot from a dedicated deterministic heal + zone kill.
  {
    auto c = cluster::Cluster::Create(env, BaseOptions()).value();
    HealNodeLoss(c.get());
    GRIDDECL_CHECK(c->KillZone(kDeadZone).ok());
    const PassStats s = RunPass(c.get(), queries, true);
    GRIDDECL_CHECK(s.matches == reference.matches);
    obs::MetricsRegistry registry;
    c->SnapshotMetrics(&registry);
    json.AttachRegistry(registry);
  }
  return json.Write();
}

void PrintExperiment() {
  const std::vector<serve::QueryRequest> queries =
      MakeWorkload(17, kNumQueries);
  const MemEnv env = MakeClusterEnv();

  Table t({"Cluster", "Complete", "Unavailable", "MTTR(virt ms)",
           "Rebuilt"});
  {
    auto c = cluster::Cluster::Create(env, BaseOptions()).value();
    GRIDDECL_CHECK(c->KillNode(kDeadNode).ok());
    GRIDDECL_CHECK(c->KillZone(kDeadZone).ok());
    const PassStats s = RunPass(c.get(), queries, false);
    t.AddRow({"node 0 + zone 1 dead, no repair",
              std::to_string(s.complete) + "/" + std::to_string(kNumQueries),
              std::to_string(s.unavailable_buckets), "-", "-"});
  }
  {
    auto c = cluster::Cluster::Create(env, BaseOptions()).value();
    const cluster::RepairReport r = HealNodeLoss(c.get());
    GRIDDECL_CHECK(c->KillZone(kDeadZone).ok());
    const PassStats s = RunPass(c.get(), queries, true);
    char mttr[32];
    std::snprintf(mttr, sizeof(mttr), "%.1f", r.mttr_virtual_ms);
    t.AddRow({"node 0 healed, then zone 1 dead",
              std::to_string(s.complete) + "/" + std::to_string(kNumQueries),
              std::to_string(s.unavailable_buckets), mttr,
              std::to_string(r.replicas_retargeted)});
  }
  bench::PrintTable(
      "A17 — self-healing repair vs unrepaired control (zone_aware, "
      "copies=2)",
      t);
}

void BM_RepairHealCycle(benchmark::State& state) {
  const MemEnv env = MakeClusterEnv();
  for (auto _ : state) {
    auto c = cluster::Cluster::Create(env, BaseOptions()).value();
    const cluster::RepairReport r = HealNodeLoss(c.get());
    benchmark::DoNotOptimize(r.replicas_retargeted);
  }
}
BENCHMARK(BM_RepairHealCycle)->Unit(benchmark::kMillisecond);

void BM_HealedZoneKillPass(benchmark::State& state) {
  const MemEnv env = MakeClusterEnv();
  const std::vector<serve::QueryRequest> queries =
      MakeWorkload(17, kNumQueries);
  auto c = cluster::Cluster::Create(env, BaseOptions()).value();
  HealNodeLoss(c.get());
  GRIDDECL_CHECK(c->KillZone(kDeadZone).ok());
  for (auto _ : state) {
    const PassStats s = RunPass(c.get(), queries, true);
    benchmark::DoNotOptimize(s.matches);
  }
  state.SetItemsProcessed(state.iterations() * kNumQueries);
}
BENCHMARK(BM_HealedZoneKillPass)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace griddecl

int main(int argc, char** argv) {
  griddecl::bench::BenchJson json("a17_repair", &argc, argv);
  if (json.enabled()) return griddecl::RunBenchJson(json);
  griddecl::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
