/// Ablation A1 (ours): how much of HCAM's quality comes from the *Hilbert*
/// curve specifically? Swap the curve for Z-order (ZCAM), plain row-major
/// round robin (Linear) and a random hash, and rerun the small-query size
/// sweep. The Hilbert curve's clustering property (Jagadish 1990) is the
/// paper's stated reason HCAM works; this quantifies it.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace griddecl {
namespace {

constexpr uint32_t kDisks = 16;

SweepOptions Options() {
  SweepOptions opts;
  opts.max_placements = 4096;
  opts.seed = 42;
  opts.method_names = {"hcam", "zcam", "linear", "random"};
  return opts;
}

void PrintExperiment() {
  const GridSpec grid = GridSpec::Create({64, 64}).value();
  const std::vector<uint64_t> areas = {4, 9, 16, 25, 64, 256};
  const SweepResult sweep =
      QuerySizeSweep(grid, kDisks, areas, Options()).value();
  bench::PrintSweep("A1: curve ablation — HCAM vs ZCAM vs Linear vs Random",
                    sweep);

  // Near-square queries flatter Z-order: with M = 16 = 2^4 on a
  // power-of-two grid, `morton(x, y) mod 16` collapses to a perfect 4x4
  // tile, so every near-square window up to 4x4 spreads perfectly. Lines
  // expose the flip side — only 4 distinct disks along any single axis.
  const SweepResult shapes =
      QueryShapeSweep(grid, kDisks, /*area=*/16,
                      {1.0 / 16, 1.0 / 4, 1.0, 4.0, 16.0}, Options())
          .value();
  bench::PrintSweep(
      "A1: curve ablation across shapes at area 16 (square -> line)",
      shapes);
}

void BM_CurveConstruction(benchmark::State& state) {
  const GridSpec grid = GridSpec::Create({64, 64}).value();
  const bool hilbert = state.range(0) == 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        CurveAllocMethod::Create(grid, kDisks,
                                 hilbert ? CurveKind::kHilbert
                                         : CurveKind::kZOrder)
            .value());
  }
}
BENCHMARK(BM_CurveConstruction)->Arg(0)->Arg(1);

void BM_DiskOfThroughput(benchmark::State& state) {
  const GridSpec grid = GridSpec::Create({64, 64}).value();
  const std::vector<std::string> names = {"dm", "fx", "ecc", "hcam"};
  const auto method =
      CreateMethod(names[static_cast<size_t>(state.range(0))], grid, kDisks)
          .value();
  uint64_t i = 0;
  for (auto _ : state) {
    const BucketCoords c = grid.Delinearize(i % grid.num_buckets());
    benchmark::DoNotOptimize(method->DiskOf(c));
    ++i;
  }
}
BENCHMARK(BM_DiskOfThroughput)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

}  // namespace
}  // namespace griddecl

int main(int argc, char** argv) {
  griddecl::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
