/// Ablation A2 (ours): does the paper's bucket-count metric predict timed
/// latency? For each method we report mean response time in bucket units
/// next to the mean makespan of the parallel I/O simulator (1993-era disk
/// parameters), for a small and a large query mix. The method *ordering*
/// should agree, validating the paper's choice of metric.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace griddecl {
namespace {

constexpr uint32_t kDisks = 16;

void PrintExperiment() {
  const GridSpec grid = GridSpec::Create({64, 64}).value();
  QueryGenerator gen(grid);
  Rng rng(42);
  const auto methods = CreatePaperMethods(grid, kDisks);
  ParallelIoSimulator sim(kDisks, DiskParams{});

  for (uint64_t area : {9ull, 1024ull}) {
    const Workload w =
        gen.Placements(gen.SquarishShape(area).value(), 1024, &rng,
                       "area=" + std::to_string(area))
            .value();
    Table t({"Method", "MeanRT (buckets)", "MeanMakespan (ms)",
             "MeanSpeedup", "MeanUtil"});
    for (const auto& m : methods) {
      const WorkloadEval e = Evaluator(*m).EvaluateWorkload(w);
      RunningStat makespan;
      RunningStat speedup;
      RunningStat util;
      for (const RangeQuery& q : w.queries) {
        const SimResult r = sim.RunQuery(*m, q);
        makespan.Add(r.makespan_ms);
        speedup.Add(r.Speedup());
        util.Add(r.MeanUtilization());
      }
      t.AddRow({m->name(), Table::Fmt(e.MeanResponse(), 3),
                Table::Fmt(makespan.mean(), 2), Table::Fmt(speedup.mean(), 2),
                Table::Fmt(util.mean(), 3)});
    }
    bench::PrintTable("A2: bucket metric vs timed simulation, area=" +
                          std::to_string(area) + " (64x64, M=16)",
                      t);
  }
}

void BM_SimulateQuery(benchmark::State& state) {
  const GridSpec grid = GridSpec::Create({64, 64}).value();
  const auto hcam = CreateMethod("hcam", grid, kDisks).value();
  ParallelIoSimulator sim(kDisks, DiskParams{});
  const RangeQuery q =
      RangeQuery::Create(grid, BucketRect::Create({10, 10}, {41, 41}).value())
          .value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.RunQuery(*hcam, q).makespan_ms);
  }
}
BENCHMARK(BM_SimulateQuery);

}  // namespace
}  // namespace griddecl

int main(int argc, char** argv) {
  griddecl::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
