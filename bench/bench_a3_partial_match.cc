/// Ablation A3 (ours): partial-match queries — the query class most of the
/// classical theory covers (Section 3.1 of the paper). For a 3-attribute
/// grid we evaluate every method on every partial-match class and on random
/// partial-match workloads, cross-checking the optimality conditions the
/// paper tabulates.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace griddecl {
namespace {

void PrintClassTable(const GridSpec& grid, uint32_t m) {
  const auto methods = CreatePaperMethods(grid, m);
  std::vector<std::string> headers = {"Specified dims", "#queries"};
  for (const auto& method : methods) {
    headers.push_back(method->name() + " meanRT/opt");
  }
  Table t(std::move(headers));
  QueryGenerator gen(grid);
  for (const auto& specified : AllDimSubsets(grid.num_dims())) {
    if (specified.size() == grid.num_dims()) continue;  // Points: trivial.
    const Workload w = gen.AllPartialMatch(specified, "pm").value();
    std::string dims = "{";
    for (size_t i = 0; i < specified.size(); ++i) {
      dims += (i ? ",A" : "A") + std::to_string(specified[i]);
    }
    dims += "}";
    std::vector<std::string> row = {dims, Table::Fmt(uint64_t{w.size()})};
    for (const auto& method : methods) {
      const WorkloadEval e = Evaluator(*method).EvaluateWorkload(w);
      row.push_back(Table::Fmt(e.MeanRatio(), 4));
    }
    t.AddRow(std::move(row));
  }
  bench::PrintTable("A3: partial-match classes, grid " + grid.ToString() +
                        ", M=" + std::to_string(m),
                    t);
}

void PrintExperiment() {
  PrintClassTable(GridSpec::Create({16, 16, 8}).value(), 8);
  PrintClassTable(GridSpec::Create({12, 10, 6}).value(), 6);
}

void BM_PartialMatchWorkload(benchmark::State& state) {
  const GridSpec grid = GridSpec::Create({16, 16, 8}).value();
  const auto dm = CreateMethod("dm", grid, 8).value();
  QueryGenerator gen(grid);
  Rng rng(1);
  const Workload w = gen.RandomPartialMatch(1, 256, &rng, "pm").value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Evaluator(*dm).EvaluateWorkload(w).MeanRatio());
  }
}
BENCHMARK(BM_PartialMatchWorkload);

}  // namespace
}  // namespace griddecl

int main(int argc, char** argv) {
  griddecl::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
