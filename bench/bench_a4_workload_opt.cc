/// Ablation A4 (ours): what is workload information worth? The paper's
/// conclusion says query information "ought to be used in deciding the
/// declustering"; this bench quantifies the headroom by hill-climbing an
/// allocation against each workload and comparing it with the best formula
/// method:
///
///  * a small-square workload (where all formula methods leave slack),
///  * a mixed workload (squares + rows + scans),
///  * generalization: optimizer trained on half the placements, scored on
///    the other half.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace griddecl {
namespace {

constexpr uint32_t kDisks = 16;

void ReportWorkload(const std::string& title, const GridSpec& grid,
                    const Workload& train, const Workload& test) {
  Table t({"Method", "Train meanRT", "Test meanRT", "Test RT/opt"});
  const auto methods = CreatePaperMethods(grid, kDisks);
  const DeclusteringMethod* best_seed = nullptr;
  double best_cost = 1e300;
  for (const auto& m : methods) {
    const Evaluator ev(*m);
    const WorkloadEval tr = ev.EvaluateWorkload(train);
    const WorkloadEval te = ev.EvaluateWorkload(test);
    t.AddRow({m->name(), Table::Fmt(tr.MeanResponse(), 3),
              Table::Fmt(te.MeanResponse(), 3),
              Table::Fmt(te.MeanRatio(), 4)});
    if (tr.MeanResponse() < best_cost) {
      best_cost = tr.MeanResponse();
      best_seed = m.get();
    }
  }
  WorkloadOptimizeStats stats;
  const auto optimized =
      OptimizeForWorkload(*best_seed, train, {}, &stats).value();
  const Evaluator opt_ev(*optimized);
  const WorkloadEval tr = opt_ev.EvaluateWorkload(train);
  const WorkloadEval te = opt_ev.EvaluateWorkload(test);
  t.AddRow({optimized->name(), Table::Fmt(tr.MeanResponse(), 3),
            Table::Fmt(te.MeanResponse(), 3), Table::Fmt(te.MeanRatio(), 4)});
  bench::PrintTable(title, t);
  std::cout << "optimizer: " << stats.moves_applied << " moves over "
            << stats.passes << " passes; train cost " << stats.initial_cost
            << " -> " << stats.final_cost << "\n";
}

void PrintExperiment() {
  const GridSpec grid = GridSpec::Create({32, 32}).value();
  QueryGenerator gen(grid);
  Rng rng(42);

  // Small squares: train and test are disjoint random placements.
  const Workload sq_train =
      gen.SampledPlacements({3, 3}, 400, &rng, "3x3/train").value();
  const Workload sq_test =
      gen.SampledPlacements({3, 3}, 400, &rng, "3x3/test").value();
  ReportWorkload("A4: small squares (3x3), train vs held-out placements",
                 grid, sq_train, sq_test);

  // Mixed workload.
  auto mix = [&](const char* name) {
    Workload w;
    w.name = name;
    w.Append(gen.SampledPlacements({3, 3}, 300, &rng, "s").value());
    w.Append(gen.SampledPlacements({1, 16}, 150, &rng, "r").value());
    w.Append(gen.SampledPlacements({12, 12}, 50, &rng, "b").value());
    return w;
  };
  const Workload mix_train = mix("mix/train");
  const Workload mix_test = mix("mix/test");
  ReportWorkload("A4: mixed workload (squares + rows + scans)", grid,
                 mix_train, mix_test);
}

void BM_OptimizePass(benchmark::State& state) {
  const GridSpec grid = GridSpec::Create({32, 32}).value();
  const auto dm = CreateMethod("dm", grid, kDisks).value();
  QueryGenerator gen(grid);
  Rng rng(1);
  const Workload w =
      gen.SampledPlacements({3, 3}, 200, &rng, "w").value();
  for (auto _ : state) {
    WorkloadOptimizeOptions opts;
    opts.max_passes = 1;
    benchmark::DoNotOptimize(OptimizeForWorkload(*dm, w, opts).value());
  }
}
BENCHMARK(BM_OptimizePass);

}  // namespace
}  // namespace griddecl

int main(int argc, char** argv) {
  griddecl::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
