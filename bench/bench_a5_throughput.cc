/// Ablation A5 (ours): multiuser throughput. The paper evaluates single
/// queries; its reference [21] (Ghandeharizadeh & DeWitt) studies the
/// multiuser regime. This bench runs a concurrent query stream through the
/// closed-system throughput simulator at several multiprogramming levels
/// and reports queries/second and disk utilization per method — confirming
/// that the single-query response-time ordering carries over to sustained
/// throughput.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "griddecl/sim/event_sim.h"

namespace griddecl {
namespace {

constexpr uint32_t kDisks = 16;

void PrintExperiment() {
  const GridSpec grid = GridSpec::Create({64, 64}).value();
  QueryGenerator gen(grid);
  Rng rng(42);
  Workload w;
  w.name = "stream";
  w.Append(gen.SampledPlacements({3, 3}, 600, &rng, "s").value());
  w.Append(gen.SampledPlacements({1, 24}, 200, &rng, "r").value());
  w.Append(gen.SampledPlacements({16, 16}, 100, &rng, "b").value());

  const auto methods = CreatePaperMethods(grid, kDisks);
  for (uint32_t mpl : {1u, 4u, 16u}) {
    Table t({"Method", "Total ms", "QPS", "Mean latency ms",
             "Max latency ms", "Disk util"});
    for (const auto& m : methods) {
      ThroughputOptions opts;
      opts.concurrency = mpl;
      const ThroughputResult r = SimulateThroughput(*m, w, opts).value();
      t.AddRow({m->name(), Table::Fmt(r.total_ms, 1),
                Table::Fmt(r.ThroughputQps(), 2),
                Table::Fmt(r.mean_latency_ms, 2),
                Table::Fmt(r.max_latency_ms, 1),
                Table::Fmt(r.MeanDiskUtilization(), 3)});
    }
    bench::PrintTable("A5: throughput at MPL=" + std::to_string(mpl) +
                          " (900 queries, 64x64, M=16)",
                      t);
  }

  // Batch-FIFO vs request-interleaved service, plus LPT admission order:
  // does the disk scheduling model change the method ranking?
  Table t({"Method", "Batch QPS", "Interleaved QPS",
           "Batch mean lat", "Interleaved mean lat", "LPT batch QPS"});
  for (const auto& m : methods) {
    ThroughputOptions opts;
    opts.concurrency = 8;
    const ThroughputResult batch = SimulateThroughput(*m, w, opts).value();
    const ThroughputResult inter = SimulateInterleaved(*m, w, opts).value();
    const Workload lpt = ReorderLongestFirst(*m, w);
    const ThroughputResult lpt_batch =
        SimulateThroughput(*m, lpt, opts).value();
    t.AddRow({m->name(), Table::Fmt(batch.ThroughputQps(), 2),
              Table::Fmt(inter.ThroughputQps(), 2),
              Table::Fmt(batch.mean_latency_ms, 1),
              Table::Fmt(inter.mean_latency_ms, 1),
              Table::Fmt(lpt_batch.ThroughputQps(), 2)});
  }
  bench::PrintTable(
      "A5: batch-FIFO vs interleaved disk scheduling, MPL=8", t);
}

void BM_Throughput(benchmark::State& state) {
  const GridSpec grid = GridSpec::Create({64, 64}).value();
  const auto hcam = CreateMethod("hcam", grid, kDisks).value();
  QueryGenerator gen(grid);
  Rng rng(1);
  const Workload w =
      gen.SampledPlacements({4, 4}, 200, &rng, "w").value();
  ThroughputOptions opts;
  opts.concurrency = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimulateThroughput(*hcam, w, opts).value());
  }
}
BENCHMARK(BM_Throughput)->Arg(1)->Arg(8);

/// CI perf-gate artifact: the HCAM closed-system simulation timed at MPL 1
/// and 8, deterministic simulated-time outputs as counters, and an
/// instrumented registry snapshot — written as BENCH_a5_throughput.json.
int RunBenchJson(bench::BenchJson& json) {
  if (!json.enabled()) return 0;
  const GridSpec grid = GridSpec::Create({64, 64}).value();
  const auto hcam = CreateMethod("hcam", grid, kDisks).value();
  QueryGenerator gen(grid);
  Rng rng(1);
  const Workload w = gen.SampledPlacements({4, 4}, 200, &rng, "w").value();

  // Batched repetitions: one simulation is sub-millisecond, which gates
  // on timer noise instead of the simulator (see bench_a10's note).
  constexpr int kSimIters = 16;
  for (const uint32_t mpl : {1u, 8u}) {
    ThroughputOptions opts;
    opts.concurrency = mpl;
    json.TimeKernel("throughput_mpl" + std::to_string(mpl), [&] {
      for (int i = 0; i < kSimIters; ++i) {
        benchmark::DoNotOptimize(SimulateThroughput(*hcam, w, opts).value());
      }
    });
  }
  ThroughputOptions opts;
  opts.concurrency = 8;
  json.TimeKernel("interleaved_mpl8", [&] {
    for (int i = 0; i < kSimIters; ++i) {
      benchmark::DoNotOptimize(SimulateInterleaved(*hcam, w, opts).value());
    }
  });

  // Deterministic model outputs (simulated milliseconds, not wall-clock).
  obs::MetricsRegistry registry;
  opts.metrics = &registry;
  const ThroughputResult r = SimulateThroughput(*hcam, w, opts).value();
  json.Counter("num_queries", static_cast<double>(r.num_queries));
  json.Counter("total_simulated_ms", r.total_ms);
  json.Counter("mean_latency_simulated_ms", r.mean_latency_ms);
  json.Counter("mean_disk_utilization", r.MeanDiskUtilization());
  json.AttachRegistry(registry);
  return json.Write();
}

}  // namespace
}  // namespace griddecl

int main(int argc, char** argv) {
  griddecl::bench::BenchJson json("a5_throughput", &argc, argv);
  if (json.enabled()) return griddecl::RunBenchJson(json);
  griddecl::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
