/// Ablation A6 (ours): closed-form vs enumerated evaluation. The analytic
/// per-disk counts for GDM (cyclic convolution of axis histograms) and FX
/// (XOR convolution) cost O(k*M^2) independent of query volume; this bench
/// validates agreement at experiment scale and measures the speedup that
/// makes very large sweeps affordable.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "griddecl/eval/analytic.h"

namespace griddecl {
namespace {

void PrintExperiment() {
  const GridSpec grid = GridSpec::Create({256, 256}).value();
  const uint32_t m = 16;
  const auto dm = CreateMethod("dm", grid, m).value();
  const auto fx = CreateMethod("fx", grid, m).value();

  Table t({"Query", "|Q|", "DM brute", "DM analytic", "FX brute",
           "FX analytic"});
  for (uint32_t size : {8u, 32u, 128u}) {
    const BucketRect rect =
        BucketRect::Create({5, 9}, {5 + size - 1, 9 + size - 1}).value();
    const RangeQuery q = RangeQuery::Create(grid, rect).value();
    const uint64_t dm_brute = ResponseTime(*dm, q);
    const uint64_t dm_fast =
        MaxCount(AnalyticGdmCounts({1, 1}, rect, m).value());
    const uint64_t fx_brute = ResponseTime(*fx, q);
    const uint64_t fx_fast = MaxCount(AnalyticFxCounts(rect, m).value());
    GRIDDECL_CHECK(dm_brute == dm_fast && fx_brute == fx_fast);
    t.AddRow({rect.ToString(), Table::Fmt(rect.Volume()),
              Table::Fmt(dm_brute), Table::Fmt(dm_fast),
              Table::Fmt(fx_brute), Table::Fmt(fx_fast)});
  }
  bench::PrintTable("A6: analytic evaluation agrees with enumeration", t);
}

void BM_BruteForceDm(benchmark::State& state) {
  const GridSpec grid = GridSpec::Create({256, 256}).value();
  const auto dm = CreateMethod("dm", grid, 16).value();
  const uint32_t size = static_cast<uint32_t>(state.range(0));
  const RangeQuery q = RangeQuery::Create(
      grid, BucketRect::Create({0, 0}, {size - 1, size - 1}).value())
      .value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ResponseTime(*dm, q));
  }
}
BENCHMARK(BM_BruteForceDm)->Arg(8)->Arg(64)->Arg(256);

void BM_AnalyticDm(benchmark::State& state) {
  const uint32_t size = static_cast<uint32_t>(state.range(0));
  const BucketRect rect =
      BucketRect::Create({0, 0}, {size - 1, size - 1}).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MaxCount(AnalyticGdmCounts({1, 1}, rect, 16).value()));
  }
}
BENCHMARK(BM_AnalyticDm)->Arg(8)->Arg(64)->Arg(256);

void BM_AnalyticFx(benchmark::State& state) {
  const uint32_t size = static_cast<uint32_t>(state.range(0));
  const BucketRect rect =
      BucketRect::Create({0, 0}, {size - 1, size - 1}).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(MaxCount(AnalyticFxCounts(rect, 16).value()));
  }
}
BENCHMARK(BM_AnalyticFx)->Arg(8)->Arg(64)->Arg(256);

}  // namespace
}  // namespace griddecl

int main(int argc, char** argv) {
  griddecl::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
