/// Ablation A7 (ours): skewed workloads. The paper places queries
/// uniformly; production access patterns concentrate on hot regions. This
/// bench reruns the small-query comparison with Zipf-distributed query
/// positions (theta = 0 reproduces the uniform setting) and adds the
/// workload optimizer, which can exploit the skew formula methods cannot
/// see: under skew, buckets in the hot region matter more, and the
/// optimizer re-spreads exactly those.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "griddecl/query/distributions.h"

namespace griddecl {
namespace {

constexpr uint32_t kDisks = 16;

void PrintExperiment() {
  const GridSpec grid = GridSpec::Create({64, 64}).value();
  for (double theta : {0.0, 1.0, 2.0}) {
    Rng rng(42);
    const Workload train =
        ZipfPlacements(grid, {3, 3}, 500, theta, &rng, "train").value();
    const Workload test =
        ZipfPlacements(grid, {3, 3}, 500, theta, &rng, "test").value();
    Table t({"Method", "Train meanRT", "Held-out meanRT", "Held-out RT/opt"});
    const auto methods = CreatePaperMethods(grid, kDisks);
    const DeclusteringMethod* best_seed = nullptr;
    double best = 1e300;
    for (const auto& m : methods) {
      const Evaluator ev(*m);
      const WorkloadEval tr = ev.EvaluateWorkload(train);
      const WorkloadEval te = ev.EvaluateWorkload(test);
      t.AddRow({m->name(), Table::Fmt(tr.MeanResponse(), 3),
                Table::Fmt(te.MeanResponse(), 3),
                Table::Fmt(te.MeanRatio(), 4)});
      if (tr.MeanResponse() < best) {
        best = tr.MeanResponse();
        best_seed = m.get();
      }
    }
    const auto optimized = OptimizeForWorkload(*best_seed, train).value();
    const Evaluator opt_ev(*optimized);
    const WorkloadEval tr = opt_ev.EvaluateWorkload(train);
    const WorkloadEval te = opt_ev.EvaluateWorkload(test);
    t.AddRow({optimized->name(), Table::Fmt(tr.MeanResponse(), 3),
              Table::Fmt(te.MeanResponse(), 3),
              Table::Fmt(te.MeanRatio(), 4)});
    bench::PrintTable(
        "A7: 3x3 queries, Zipf theta=" + Table::Fmt(theta, 1) +
            " placements (64x64, M=16)",
        t);
  }
}

void BM_ZipfWorkloadGeneration(benchmark::State& state) {
  const GridSpec grid = GridSpec::Create({64, 64}).value();
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ZipfPlacements(grid, {3, 3}, 500, 1.0, &rng, "w").value());
  }
}
BENCHMARK(BM_ZipfWorkloadGeneration);

}  // namespace
}  // namespace griddecl

int main(int argc, char** argv) {
  griddecl::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
