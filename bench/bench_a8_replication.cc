/// Ablation A8 (ours): replication — the extension the paper scopes out
/// ("we do not consider techniques where a data subspace can be assigned
/// to more than one disk"). Chained r-replica placement plus an exact
/// min-makespan replica router (binary search + max-flow) quantifies what
/// that exclusion leaves on the table:
///
///  * small-query response with optimal routing, r = 1 vs 2 vs 3 — routing
///    freedom rescues even DM/CMD's weak placements;
///  * degraded mode: response after one disk failure, which unreplicated
///    declustering cannot serve at all.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "griddecl/eval/replica_router.h"

namespace griddecl {
namespace {

constexpr uint32_t kDisks = 16;

ReplicatedPlacement Make(const char* name, const GridSpec& grid,
                         uint32_t replicas) {
  auto base = CreateMethod(name, grid, kDisks).value();
  return ReplicatedPlacement::Create(std::move(base), replicas, 1).value();
}

void PrintExperiment() {
  const GridSpec grid = GridSpec::Create({32, 32}).value();
  QueryGenerator gen(grid);
  Rng rng(42);
  const Workload w =
      gen.SampledPlacements({4, 4}, 300, &rng, "4x4").value();

  Table t({"Method", "r=1 meanRT", "r=2 meanRT", "r=3 meanRT",
           "r=2, one disk down"});
  for (const char* name : {"dm", "fx", "ecc", "hcam"}) {
    std::vector<std::string> row = {name};
    for (uint32_t r : {1u, 2u, 3u}) {
      const ReplicatedPlacement p = Make(name, grid, r);
      row.push_back(Table::Fmt(
          MeanRoutedResponse(p, w.queries).value().mean_response, 3));
    }
    const ReplicatedPlacement p2 = Make(name, grid, 2);
    std::vector<bool> failed(kDisks, false);
    failed[0] = true;
    row.push_back(Table::Fmt(
        MeanRoutedResponse(p2, w.queries, &failed).value().mean_response,
        3));
    t.AddRow(std::move(row));
  }
  bench::PrintTable(
      "A8: optimally-routed mean RT, 4x4 queries (32x32, M=16); r=1 is the "
      "paper's unreplicated setting",
      t);
  std::cout << "Note: with r=1 a disk failure makes queries touching that "
               "disk unanswerable; with r>=2 they are merely slower.\n";
}

void BM_RouteQuery(benchmark::State& state) {
  const GridSpec grid = GridSpec::Create({32, 32}).value();
  const ReplicatedPlacement p = Make("dm", grid, 2);
  const uint32_t size = static_cast<uint32_t>(state.range(0));
  const RangeQuery q = RangeQuery::Create(
      grid,
      BucketRect::Create({3, 5}, {3 + size - 1, 5 + size - 1}).value())
      .value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(RouteQuery(p, q).value().response);
  }
}
BENCHMARK(BM_RouteQuery)->Arg(4)->Arg(8)->Arg(16);

}  // namespace
}  // namespace griddecl

int main(int argc, char** argv) {
  griddecl::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
