/// Ablation A9 (ours): exact worst-case queries. The theory the paper
/// surveys bounds each method's worst-case deviation; for concrete grids
/// the exact worst rectangle can simply be computed (exhaustive scan with
/// incremental counting). This bench prints, per method, the single worst
/// query on a 16x16 grid — its shape is as telling as its cost:
/// DM/CMD is broken by near-squares, FX by squares crossing power-of-two
/// boundaries, ECC/HCAM only by mid-sized awkward rectangles.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "griddecl/theory/worst_case.h"

namespace griddecl {
namespace {

void PrintExperiment() {
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  for (uint32_t m : {4u, 8u, 16u}) {
    Table t({"Method", "Worst query", "|Q|", "RT", "Optimal", "RT/opt"});
    for (const auto& method : CreatePaperMethods(grid, m)) {
      const WorstCaseResult worst = FindWorstCaseQuery(*method).value();
      t.AddRow({method->name(), worst.rect.ToString(),
                Table::Fmt(worst.volume), Table::Fmt(worst.response),
                Table::Fmt(worst.optimal), Table::Fmt(worst.Ratio(), 3)});
    }
    bench::PrintTable("A9: exact worst-case query per method (16x16, M=" +
                          std::to_string(m) + ")",
                      t);
  }

  // The same scan restricted to small queries (volume <= M): the regime
  // where the paper found the substantial differences.
  const uint32_t m = 16;
  Table t({"Method", "Worst small query", "|Q|", "RT", "RT/opt"});
  for (const auto& method : CreatePaperMethods(grid, m)) {
    const WorstCaseResult worst =
        FindWorstCaseQuery(*method, /*max_volume=*/m).value();
    t.AddRow({method->name(), worst.rect.ToString(),
              Table::Fmt(worst.volume), Table::Fmt(worst.response),
              Table::Fmt(worst.Ratio(), 3)});
  }
  bench::PrintTable(
      "A9: worst query with volume <= M (16x16, M=16) — the small-query "
      "regime",
      t);
}

void BM_WorstCaseScan(benchmark::State& state) {
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const auto dm = CreateMethod("dm", grid, 8).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindWorstCaseQuery(*dm).value().response);
  }
}
BENCHMARK(BM_WorstCaseScan);

}  // namespace
}  // namespace griddecl

int main(int argc, char** argv) {
  griddecl::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
