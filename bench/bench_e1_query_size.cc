/// Experiment 1 (paper Section 5, "effect of query size"): near-square range
/// queries with area swept from 1 to 1024 on a 32x32 two-attribute grid with
/// M = 16 disks, averaged over all placements.
///
/// Expected shape (paper): for small queries ECC and HCAM are best, then FX,
/// then DM/CMD; from about area 12 FX takes over; for large queries all
/// methods converge to optimal.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace griddecl {
namespace {

constexpr uint32_t kDisks = 16;

SweepOptions Options() {
  SweepOptions opts;
  opts.max_placements = 4096;
  opts.seed = 42;
  return opts;
}

GridSpec Grid() { return GridSpec::Create({64, 64}).value(); }

void PrintExperiment() {
  const std::vector<uint64_t> areas = {1,  2,  4,  6,   9,   12,  16,  25,
                                       36, 64, 100, 144, 256, 400, 576, 1024};
  const SweepResult sweep =
      QuerySizeSweep(Grid(), kDisks, areas, Options()).value();
  bench::PrintSweep("E1: query size sweep (64x64 grid, M=16)", sweep);
}

/// Timing: cost of evaluating one full placement-averaged data point.
void BM_EvaluateSizePoint(benchmark::State& state) {
  const GridSpec grid = Grid();
  const uint64_t area = static_cast<uint64_t>(state.range(0));
  const auto methods = MakeSweepMethods(grid, kDisks, Options()).value();
  QueryGenerator gen(grid);
  Rng rng(1);
  const Workload w =
      gen.Placements(gen.SquarishShape(area).value(), 4096, &rng, "w")
          .value();
  for (auto _ : state) {
    for (const auto& m : methods) {
      benchmark::DoNotOptimize(
          Evaluator(*m).EvaluateWorkload(w).MeanResponse());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(w.TotalBuckets()) *
                          static_cast<int64_t>(methods.size()));
}
BENCHMARK(BM_EvaluateSizePoint)->Arg(4)->Arg(64)->Arg(1024);

}  // namespace
}  // namespace griddecl

int main(int argc, char** argv) {
  griddecl::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
