/// Experiment 2 (paper Section 5, "effect of query shape"): fixed-area range
/// queries whose aspect ratio sweeps from square (1:1) to a line (1:M), on a
/// 32x32 grid with M = 16 disks, averaged over all placements.
///
/// Expected shape (paper): performance is quite sensitive to shape; DM/CMD
/// is exactly optimal on 1-bucket-thick lines but poor on squares, while
/// ECC/HCAM behave the other way around.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace griddecl {
namespace {

constexpr uint32_t kDisks = 16;

SweepOptions Options() {
  SweepOptions opts;
  opts.max_placements = 4096;
  opts.seed = 42;
  return opts;
}

GridSpec Grid() { return GridSpec::Create({64, 64}).value(); }

void PrintExperiment() {
  // Aspect = extent(dim1) / extent(dim0); 1:1 through 1:M both ways.
  const std::vector<double> aspects = {1.0 / 16, 1.0 / 4, 1.0, 4.0, 16.0};
  for (uint64_t area : {16ull, 64ull}) {
    const SweepResult sweep =
        QueryShapeSweep(Grid(), kDisks, area, aspects, Options()).value();
    bench::PrintSweep("E2: query shape sweep, area=" + std::to_string(area) +
                          " (64x64 grid, M=16)",
                      sweep);
  }
}

void BM_EvaluateShapePoint(benchmark::State& state) {
  const GridSpec grid = Grid();
  const auto methods = MakeSweepMethods(grid, kDisks, Options()).value();
  QueryGenerator gen(grid);
  Rng rng(1);
  const double aspect = static_cast<double>(state.range(0));
  const Workload w =
      gen.Placements(gen.Shape2D(16, aspect).value(), 4096, &rng, "w")
          .value();
  for (auto _ : state) {
    for (const auto& m : methods) {
      benchmark::DoNotOptimize(
          Evaluator(*m).EvaluateWorkload(w).MeanResponse());
    }
  }
}
BENCHMARK(BM_EvaluateShapePoint)->Arg(1)->Arg(4)->Arg(16);

}  // namespace
}  // namespace griddecl

int main(int argc, char** argv) {
  griddecl::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
