/// Experiment 3 (paper Section 5, "effect of increasing the number of
/// attributes"): the same query-volume sweep on a 2-attribute and a
/// 3-attribute grid. The paper's intuition, which the numbers bear out: as
/// dimensionality grows, the fraction of a query on which a method is
/// sub-optimal becomes almost negligible.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace griddecl {
namespace {

constexpr uint32_t kDisks = 16;

SweepOptions Options() {
  SweepOptions opts;
  opts.max_placements = 2048;
  opts.seed = 42;
  return opts;
}

void PrintExperiment() {
  const std::vector<uint64_t> areas = {8, 27, 64, 216, 512};
  const GridSpec g2 = GridSpec::Create({64, 64}).value();
  const GridSpec g3 = GridSpec::Create({16, 16, 16}).value();
  const SweepResult s2 = QuerySizeSweep(g2, kDisks, areas, Options()).value();
  const SweepResult s3 = QuerySizeSweep(g3, kDisks, areas, Options()).value();
  bench::PrintSweep("E3: 2 attributes (64x64 grid, M=16)", s2);
  bench::PrintSweep("E3: 3 attributes (16x16x16 grid, M=16)", s3);

  auto avg = [](const SweepPoint& p) {
    double s = 0;
    for (double r : p.mean_ratio) s += r;
    return s / static_cast<double>(p.mean_ratio.size());
  };

  // Head-to-head at equal query volume (3-d queries are much "shorter" per
  // dimension at the same volume, so this axis is pessimistic for 3-d).
  Table cmp({"QueryVolume", "MeanRatio-2d", "MeanRatio-3d"});
  for (size_t i = 0; i < areas.size(); ++i) {
    cmp.AddRow({Table::Fmt(static_cast<uint64_t>(areas[i])),
                Table::Fmt(avg(s2.points[i]), 4),
                Table::Fmt(avg(s3.points[i]), 4)});
  }
  bench::PrintTable("E3: across-method mean RT/opt at equal volume", cmp);

  // The paper's comparison: equal side length per dimension (an s x s
  // query vs an s x s x s query) — deviation shrinks with dimensionality.
  Table side_cmp(
      {"Side", "MeanRatio-2d (s x s)", "MeanRatio-3d (s x s x s)"});
  for (uint64_t side : {2ull, 4ull, 6ull, 8ull}) {
    const SweepResult r2 =
        QuerySizeSweep(g2, kDisks, {side * side}, Options()).value();
    const SweepResult r3 =
        QuerySizeSweep(g3, kDisks, {side * side * side}, Options()).value();
    side_cmp.AddRow({Table::Fmt(static_cast<uint64_t>(side)),
                     Table::Fmt(avg(r2.points[0]), 4),
                     Table::Fmt(avg(r3.points[0]), 4)});
  }
  bench::PrintTable("E3: across-method mean RT/opt at equal side length",
                    side_cmp);
}

void BM_Evaluate3D(benchmark::State& state) {
  const GridSpec grid = GridSpec::Create({16, 16, 16}).value();
  const auto methods = MakeSweepMethods(grid, kDisks, Options()).value();
  QueryGenerator gen(grid);
  Rng rng(1);
  const Workload w =
      gen.Placements(gen.SquarishShape(64).value(), 2048, &rng, "w").value();
  for (auto _ : state) {
    for (const auto& m : methods) {
      benchmark::DoNotOptimize(
          Evaluator(*m).EvaluateWorkload(w).MeanResponse());
    }
  }
}
BENCHMARK(BM_Evaluate3D);

}  // namespace
}  // namespace griddecl

int main(int argc, char** argv) {
  griddecl::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
