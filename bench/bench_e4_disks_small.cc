/// Figure 5(a) (paper Section 5, "effect of the number of disks", small
/// queries): a small near-square query (area 9) on a 64x64 grid while the
/// number of disks sweeps 2..32.
///
/// Expected shape (paper): HCAM is the best performer over most of the
/// range, occasionally bested by FX or ECC; DM/CMD uniformly has the worst
/// performance in this scenario.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace griddecl {
namespace {

SweepOptions Options() {
  SweepOptions opts;
  opts.max_placements = 4096;
  opts.seed = 42;
  return opts;
}

GridSpec Grid() { return GridSpec::Create({64, 64}).value(); }

void PrintExperiment() {
  const std::vector<uint32_t> disks = {2,  4,  6,  8,  10, 12, 14, 16,
                                       20, 24, 28, 32};
  const SweepResult sweep =
      DiskCountSweep(Grid(), disks, /*area=*/9, Options()).value();
  bench::PrintSweep("E4 / Figure 5(a): disk sweep, small queries (area 9)",
                    sweep);
}

void BM_DiskSweepPointSmall(benchmark::State& state) {
  const GridSpec grid = Grid();
  const uint32_t m = static_cast<uint32_t>(state.range(0));
  const auto methods = MakeSweepMethods(grid, m, Options()).value();
  QueryGenerator gen(grid);
  Rng rng(1);
  const Workload w =
      gen.Placements(gen.SquarishShape(9).value(), 4096, &rng, "w").value();
  for (auto _ : state) {
    for (const auto& method : methods) {
      benchmark::DoNotOptimize(
          Evaluator(*method).EvaluateWorkload(w).MeanResponse());
    }
  }
}
BENCHMARK(BM_DiskSweepPointSmall)->Arg(4)->Arg(16)->Arg(32);

}  // namespace
}  // namespace griddecl

int main(int argc, char** argv) {
  griddecl::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
