/// Database-size experiment (the abstract's "database size" axis): the same
/// relative query footprint (12.5% of each side, and 3x3 absolute) across
/// grids from 8x8 to 128x128 buckets at M = 16.
///
/// Expected shape: for proportional (large) queries the methods stay close
/// to optimal at every database size; for fixed small queries the
/// differences persist as the database grows.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace griddecl {
namespace {

constexpr uint32_t kDisks = 16;

SweepOptions Options() {
  SweepOptions opts;
  opts.max_placements = 4096;
  opts.seed = 42;
  return opts;
}

std::vector<GridSpec> Grids() {
  std::vector<GridSpec> grids;
  for (uint32_t side : {8u, 16u, 32u, 64u, 128u}) {
    grids.push_back(GridSpec::Square(2, side).value());
  }
  return grids;
}

void PrintExperiment() {
  const SweepResult rel =
      DbSizeSweep(Grids(), kDisks, /*coverage=*/0.125, Options()).value();
  bench::PrintSweep("E6: database size sweep, proportional query (12.5%/side)",
                    rel);

  // Fixed-size small query across database sizes.
  SweepResult fixed;
  fixed.x_label = "GridBuckets";
  for (const GridSpec& grid : Grids()) {
    SweepOptions opts = Options();
    const auto methods = MakeSweepMethods(grid, kDisks, opts).value();
    QueryGenerator gen(grid);
    Rng rng(opts.seed);
    const Workload w =
        gen.Placements({3, 3}, opts.max_placements, &rng, "3x3").value();
    SweepPoint p;
    p.x = static_cast<double>(grid.num_buckets());
    for (const auto& m : methods) {
      const WorkloadEval e = Evaluator(*m).EvaluateWorkload(w);
      p.mean_response.push_back(e.MeanResponse());
      p.mean_ratio.push_back(e.MeanRatio());
      p.fraction_optimal.push_back(e.FractionOptimal());
      p.mean_optimal = e.MeanOptimal();
    }
    if (fixed.method_names.empty()) {
      for (const auto& m : methods) fixed.method_names.push_back(m->name());
    }
    fixed.points.push_back(std::move(p));
  }
  bench::PrintSweep("E6: database size sweep, fixed 3x3 query", fixed);
}

void BM_DbSizePoint(benchmark::State& state) {
  const GridSpec grid =
      GridSpec::Square(2, static_cast<uint32_t>(state.range(0))).value();
  const auto methods = MakeSweepMethods(grid, kDisks, Options()).value();
  QueryGenerator gen(grid);
  Rng rng(1);
  const Workload w = gen.Placements({3, 3}, 4096, &rng, "w").value();
  for (auto _ : state) {
    for (const auto& m : methods) {
      benchmark::DoNotOptimize(
          Evaluator(*m).EvaluateWorkload(w).MeanResponse());
    }
  }
}
BENCHMARK(BM_DbSizePoint)->Arg(16)->Arg(64)->Arg(128);

}  // namespace
}  // namespace griddecl

int main(int argc, char** argv) {
  griddecl::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
