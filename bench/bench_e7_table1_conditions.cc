/// Table 1 (paper Section 3): applicability restrictions and partial-match
/// optimality conditions per method — regenerated as a machine-verified
/// table rather than a transcription. For every partial-match query class
/// of a 3-attribute grid we print the closed-form DM/CMD prediction next to
/// the exhaustively measured outcome for each method.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace griddecl {
namespace {

void PrintRestrictionTable() {
  Table t({"Method", "Restrictions on M / d_i (Table 1)"});
  for (const char* name : {"dm", "fx", "ecc", "hcam"}) {
    t.AddRow({name, MethodRestrictionSummary(name)});
  }
  bench::PrintTable("E7: Table 1 — applicability restrictions", t);
}

std::string DimsToString(const std::vector<uint32_t>& dims, uint32_t k) {
  std::string s = "{";
  bool first = true;
  std::vector<bool> mask(k, false);
  for (uint32_t d : dims) mask[d] = true;
  for (uint32_t i = 0; i < k; ++i) {
    if (!mask[i]) continue;
    if (!first) s += ",";
    s += "A" + std::to_string(i);
    first = false;
  }
  return s + "}";
}

void PrintPartialMatchMatrix(const GridSpec& grid, uint32_t m) {
  const auto methods = CreatePaperMethods(grid, m);
  std::vector<std::string> headers = {"Unspecified", "DM-condition"};
  for (const auto& method : methods) {
    headers.push_back(method->name() + " optimal?");
  }
  Table t(std::move(headers));
  for (const auto& specified : AllDimSubsets(grid.num_dims())) {
    // Unspecified dims = complement of specified.
    std::vector<uint32_t> unspecified;
    std::vector<bool> is_spec(grid.num_dims(), false);
    for (uint32_t d : specified) is_spec[d] = true;
    for (uint32_t d = 0; d < grid.num_dims(); ++d) {
      if (!is_spec[d]) unspecified.push_back(d);
    }
    if (unspecified.empty()) continue;  // Point queries: trivially optimal.
    std::vector<std::string> row = {
        DimsToString(unspecified, grid.num_dims()),
        DmPartialMatchCondition(grid, m, unspecified) ? "guaranteed" : "-"};
    for (const auto& method : methods) {
      row.push_back(
          VerifyOptimalForPartialMatchClass(*method, specified).value()
              ? "yes"
              : "no");
    }
    t.AddRow(std::move(row));
  }
  bench::PrintTable("E7: partial-match optimality, grid " + grid.ToString() +
                        ", M=" + std::to_string(m),
                    t);
}

void PrintExperiment() {
  PrintRestrictionTable();
  PrintPartialMatchMatrix(GridSpec::Create({8, 8, 4}).value(), 4);
  PrintPartialMatchMatrix(GridSpec::Create({8, 8, 4}).value(), 8);
  PrintPartialMatchMatrix(GridSpec::Create({6, 10}).value(), 5);
}

void BM_VerifyPartialMatchClass(benchmark::State& state) {
  const GridSpec grid = GridSpec::Create({8, 8, 4}).value();
  const auto dm = CreateMethod("dm", grid, 4).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        VerifyOptimalForPartialMatchClass(*dm, {0, 2}).value());
  }
}
BENCHMARK(BM_VerifyPartialMatchClass);

}  // namespace
}  // namespace griddecl

int main(int argc, char** argv) {
  griddecl::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
