/// The paper's theorem (Section 3): no declustering method is strictly
/// optimal for range queries when the number of disks exceeds 5.
///
/// This bench exhibits the theorem computationally. For each M it runs the
/// exhaustive strict-optimality search on growing square grids and reports
/// either a verified strictly optimal allocation or the smallest grid that
/// provably admits none. Because strict optimality on a grid implies strict
/// optimality on all of its sub-grids, one infeasible grid settles the
/// question for every larger database.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace griddecl {
namespace {

void PrintExperiment() {
  Table t({"Disks M", "Verdict", "Evidence", "Search nodes"});
  for (uint32_t m = 1; m <= 8; ++m) {
    StrictOptimalitySearchOptions opts;
    opts.max_nodes = 20'000'000;
    const uint32_t max_side = (m <= 3) ? 6 : m + 3;
    uint64_t total_nodes = 0;
    uint32_t infeasible_side = 0;
    bool budget_hit = false;
    std::vector<uint32_t> last_found;
    uint32_t last_found_side = 0;
    for (uint32_t side = 2; side <= max_side; ++side) {
      const auto r =
          FindStrictlyOptimalAllocation(side, side, m, opts).value();
      total_nodes += r.nodes_explored;
      if (r.outcome == SearchOutcome::kFound) {
        GRIDDECL_CHECK(
            AllocationIsStrictlyOptimal(side, side, m, r.allocation));
        last_found = r.allocation;
        last_found_side = side;
      } else if (r.outcome == SearchOutcome::kInfeasible) {
        infeasible_side = side;
        break;
      } else {
        budget_hit = true;
        break;
      }
    }
    std::string verdict;
    std::string evidence;
    if (infeasible_side > 0) {
      verdict = "NO strictly optimal allocation";
      evidence = "exhaustive proof on " + std::to_string(infeasible_side) +
                 "x" + std::to_string(infeasible_side);
    } else if (budget_hit) {
      verdict = "undecided (budget)";
      evidence = "search budget exhausted";
    } else {
      verdict = "strictly optimal allocation EXISTS";
      evidence = "verified on " + std::to_string(last_found_side) + "x" +
                 std::to_string(last_found_side);
    }
    t.AddRow({Table::Fmt(static_cast<uint64_t>(m)), verdict, evidence,
              Table::Fmt(total_nodes)});
  }
  bench::PrintTable(
      "E8: strict optimality for range queries vs number of disks", t);

  // Show one concrete strictly optimal allocation (M=5) and the classical
  // linear form it matches.
  const auto coeffs = KnownStrictlyOptimalCoefficients(5).value();
  std::cout << "Known strictly optimal linear allocation for M=5: disk(i,j) "
            << "= (" << coeffs.first << "*i + " << coeffs.second
            << "*j) mod 5\n";
}

void BM_StrictOptimalitySearch(benchmark::State& state) {
  const uint32_t m = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    StrictOptimalitySearchOptions opts;
    opts.max_nodes = 20'000'000;
    benchmark::DoNotOptimize(
        FindStrictlyOptimalAllocation(m + 2, m + 2, m, opts).value());
  }
}
BENCHMARK(BM_StrictOptimalitySearch)->Arg(3)->Arg(5)->Arg(6);

}  // namespace
}  // namespace griddecl

int main(int argc, char** argv) {
  griddecl::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
