#ifndef GRIDDECL_BENCH_BENCH_UTIL_H_
#define GRIDDECL_BENCH_BENCH_UTIL_H_

#include <iostream>
#include <string>

#include "griddecl/griddecl.h"

/// \file
/// Shared output helpers for the experiment benchmarks. Every bench binary
/// prints (a) the paper-style series as an aligned table, (b) the same data
/// as CSV for replotting, then (c) runs google-benchmark timings of the
/// evaluation kernel.

namespace griddecl::bench {

inline void PrintSection(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n\n";
}

inline void PrintSweep(const std::string& title, const SweepResult& sweep) {
  PrintSection(title + " — mean response time (bucket units)");
  sweep.ResponseTable().PrintText(std::cout);
  PrintSection(title + " — mean response/optimal ratio");
  sweep.RatioTable().PrintText(std::cout);
  PrintSection(title + " — fraction of queries answered optimally");
  sweep.FractionOptimalTable().PrintText(std::cout);
  PrintSection(title + " — CSV");
  sweep.ResponseTable().PrintCsv(std::cout);
  std::cout.flush();
}

inline void PrintTable(const std::string& title, const Table& table) {
  PrintSection(title);
  table.PrintText(std::cout);
  PrintSection(title + " — CSV");
  table.PrintCsv(std::cout);
  std::cout.flush();
}

}  // namespace griddecl::bench

#endif  // GRIDDECL_BENCH_BENCH_UTIL_H_
