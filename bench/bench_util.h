#ifndef GRIDDECL_BENCH_BENCH_UTIL_H_
#define GRIDDECL_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "griddecl/griddecl.h"

/// \file
/// Shared output helpers for the experiment benchmarks. Every bench binary
/// prints (a) the paper-style series as an aligned table, (b) the same data
/// as CSV for replotting, then (c) runs google-benchmark timings of the
/// evaluation kernel. Benches wired into the CI perf gate additionally
/// construct a `BenchJson` and emit a machine-readable `BENCH_<name>.json`
/// artifact that `scripts/compare_bench.py` diffs against the checked-in
/// baselines under `bench/baselines/`.

namespace griddecl::bench {

inline void PrintSection(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n\n";
}

inline void PrintSweep(const std::string& title, const SweepResult& sweep) {
  PrintSection(title + " — mean response time (bucket units)");
  sweep.ResponseTable().PrintText(std::cout);
  PrintSection(title + " — mean response/optimal ratio");
  sweep.RatioTable().PrintText(std::cout);
  PrintSection(title + " — fraction of queries answered optimally");
  sweep.FractionOptimalTable().PrintText(std::cout);
  PrintSection(title + " — CSV");
  sweep.ResponseTable().PrintCsv(std::cout);
  std::cout.flush();
}

inline void PrintTable(const std::string& title, const Table& table) {
  PrintSection(title);
  table.PrintText(std::cout);
  PrintSection(title + " — CSV");
  table.PrintCsv(std::cout);
  std::cout.flush();
}

/// Machine-readable bench artifact for the CI perf-regression gate.
///
/// Construct before `benchmark::Initialize` with the raw argc/argv; the two
/// gate flags are consumed so google-benchmark never sees them:
///
///   --bench-json=PATH        enable the artifact, write it to PATH
///   --bench-repetitions=N    timed repetitions per kernel (default 5)
///
/// Without `--bench-json` every method is a no-op (kernels are not even
/// run), so plain bench invocations are unaffected. With it, `TimeKernel`
/// runs one warm-up plus N timed repetitions and records per-rep wall-clock
/// milliseconds and their median; `Counter` records deterministic scalars
/// (query counts, simulated totals); `TimingStat` records derived timing
/// values (speedups); `AttachRegistry` embeds an obs registry snapshot with
/// wall-clock (`_ms`) keys excluded. Everything except the "kernels" and
/// "timing_stats" sections is byte-stable across runs at the same seed —
/// exactly the split compare_bench.py relies on.
class BenchJson {
 public:
  BenchJson(std::string name, int* argc, char** argv) : name_(std::move(name)) {
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--bench-json=", 13) == 0) {
        path_ = arg + 13;
      } else if (std::strncmp(arg, "--bench-repetitions=", 20) == 0) {
        repetitions_ = std::max(1, std::atoi(arg + 20));
      } else {
        argv[out++] = argv[i];
      }
    }
    *argc = out;
  }

  bool enabled() const { return !path_.empty(); }
  int repetitions() const { return repetitions_; }

  /// Runs `fn` once untimed (warm-up), then `repetitions()` timed reps.
  void TimeKernel(const std::string& kernel,
                  const std::function<void()>& fn) {
    if (!enabled()) return;
    using Clock = std::chrono::steady_clock;
    fn();
    std::vector<double>& ms = kernels_[kernel];
    for (int r = 0; r < repetitions_; ++r) {
      const auto t0 = Clock::now();
      fn();
      const auto t1 = Clock::now();
      ms.push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
  }

  /// Median of an already-timed kernel's repetitions (0 when unknown).
  double KernelMedianMs(const std::string& kernel) const {
    const auto it = kernels_.find(kernel);
    return it == kernels_.end() ? 0.0 : Median(it->second);
  }

  /// Deterministic scalar (counts, simulated-time totals).
  void Counter(const std::string& key, double value) {
    if (enabled()) counters_[key] = value;
  }

  /// Derived wall-clock value (speedup, overhead %) — lives in the
  /// nondeterministic section next to the kernel timings.
  void TimingStat(const std::string& key, double value) {
    if (enabled()) timing_stats_[key] = value;
  }

  /// Embeds a registry snapshot, wall-clock (`_ms`) keys excluded so the
  /// section stays byte-stable.
  void AttachRegistry(const obs::MetricsRegistry& registry) {
    if (!enabled()) return;
    obs::JsonOptions json;
    json.include_timings = false;
    json.indent = "  ";
    metrics_json_ = registry.ToJson(json);
    while (!metrics_json_.empty() &&
           (metrics_json_.back() == '\n' || metrics_json_.back() == ' ')) {
      metrics_json_.pop_back();
    }
    while (!metrics_json_.empty() &&
           (metrics_json_.front() == '\n' || metrics_json_.front() == ' ')) {
      metrics_json_.erase(metrics_json_.begin());
    }
  }

  /// Writes `{"bench":..., "repetitions":..., "counters":..., "kernels":...,
  /// "timing_stats":..., "metrics":...}`. Returns 0, or 1 on I/O failure.
  int Write() const {
    if (!enabled()) return 0;
    std::string out = "{\n  \"bench\": \"" + name_ + "\",\n";
    out += "  \"repetitions\": " + std::to_string(repetitions_) + ",\n";
    out += "  \"counters\": {";
    bool first = true;
    for (const auto& [key, value] : counters_) {
      out += first ? "\n" : ",\n";
      out += "    \"" + key + "\": " + Num(value);
      first = false;
    }
    out += first ? "},\n" : "\n  },\n";
    out += "  \"kernels\": {";
    first = true;
    for (const auto& [kernel, ms] : kernels_) {
      out += first ? "\n" : ",\n";
      out += "    \"" + kernel + "\": {\"median_ms\": " + Num(Median(ms)) +
             ", \"ms\": [";
      for (size_t i = 0; i < ms.size(); ++i) {
        if (i > 0) out += ", ";
        out += Num(ms[i]);
      }
      out += "]}";
      first = false;
    }
    out += first ? "},\n" : "\n  },\n";
    out += "  \"timing_stats\": {";
    first = true;
    for (const auto& [key, value] : timing_stats_) {
      out += first ? "\n" : ",\n";
      out += "    \"" + key + "\": " + Num(value);
      first = false;
    }
    out += first ? "}" : "\n  }";
    if (!metrics_json_.empty()) {
      out += ",\n  \"metrics\": " + metrics_json_;
    }
    out += "\n}\n";
    std::ofstream os(path_);
    if (!os.good()) {
      std::cerr << "bench-json: cannot write '" << path_ << "'\n";
      return 1;
    }
    os << out;
    os.flush();
    return os.good() ? 0 : 1;
  }

 private:
  static std::string Num(double value) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    return buf;
  }

  static double Median(const std::vector<double>& values) {
    if (values.empty()) return 0.0;
    std::vector<double> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    const size_t n = sorted.size();
    return n % 2 == 1 ? sorted[n / 2]
                      : (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0;
  }

  std::string name_;
  std::string path_;
  int repetitions_ = 5;
  std::map<std::string, double> counters_;
  std::map<std::string, double> timing_stats_;
  std::map<std::string, std::vector<double>> kernels_;
  std::string metrics_json_;
};

}  // namespace griddecl::bench

#endif  // GRIDDECL_BENCH_BENCH_UTIL_H_
