file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_timing_model.dir/bench_a2_timing_model.cc.o"
  "CMakeFiles/bench_a2_timing_model.dir/bench_a2_timing_model.cc.o.d"
  "bench_a2_timing_model"
  "bench_a2_timing_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_timing_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
