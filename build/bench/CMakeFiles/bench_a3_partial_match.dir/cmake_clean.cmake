file(REMOVE_RECURSE
  "CMakeFiles/bench_a3_partial_match.dir/bench_a3_partial_match.cc.o"
  "CMakeFiles/bench_a3_partial_match.dir/bench_a3_partial_match.cc.o.d"
  "bench_a3_partial_match"
  "bench_a3_partial_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_partial_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
