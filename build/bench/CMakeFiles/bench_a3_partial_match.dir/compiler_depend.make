# Empty compiler generated dependencies file for bench_a3_partial_match.
# This may be replaced when dependencies are built.
