file(REMOVE_RECURSE
  "CMakeFiles/bench_a4_workload_opt.dir/bench_a4_workload_opt.cc.o"
  "CMakeFiles/bench_a4_workload_opt.dir/bench_a4_workload_opt.cc.o.d"
  "bench_a4_workload_opt"
  "bench_a4_workload_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a4_workload_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
