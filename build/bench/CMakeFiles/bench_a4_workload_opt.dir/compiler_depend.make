# Empty compiler generated dependencies file for bench_a4_workload_opt.
# This may be replaced when dependencies are built.
