file(REMOVE_RECURSE
  "CMakeFiles/bench_a5_throughput.dir/bench_a5_throughput.cc.o"
  "CMakeFiles/bench_a5_throughput.dir/bench_a5_throughput.cc.o.d"
  "bench_a5_throughput"
  "bench_a5_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a5_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
