# Empty dependencies file for bench_a5_throughput.
# This may be replaced when dependencies are built.
