file(REMOVE_RECURSE
  "CMakeFiles/bench_a6_analytic.dir/bench_a6_analytic.cc.o"
  "CMakeFiles/bench_a6_analytic.dir/bench_a6_analytic.cc.o.d"
  "bench_a6_analytic"
  "bench_a6_analytic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a6_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
