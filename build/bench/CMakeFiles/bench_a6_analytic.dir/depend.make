# Empty dependencies file for bench_a6_analytic.
# This may be replaced when dependencies are built.
