file(REMOVE_RECURSE
  "CMakeFiles/bench_a7_skew.dir/bench_a7_skew.cc.o"
  "CMakeFiles/bench_a7_skew.dir/bench_a7_skew.cc.o.d"
  "bench_a7_skew"
  "bench_a7_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a7_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
