# Empty dependencies file for bench_a8_replication.
# This may be replaced when dependencies are built.
