file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_query_shape.dir/bench_e2_query_shape.cc.o"
  "CMakeFiles/bench_e2_query_shape.dir/bench_e2_query_shape.cc.o.d"
  "bench_e2_query_shape"
  "bench_e2_query_shape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_query_shape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
