# Empty compiler generated dependencies file for bench_e2_query_shape.
# This may be replaced when dependencies are built.
