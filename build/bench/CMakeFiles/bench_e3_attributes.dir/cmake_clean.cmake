file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_attributes.dir/bench_e3_attributes.cc.o"
  "CMakeFiles/bench_e3_attributes.dir/bench_e3_attributes.cc.o.d"
  "bench_e3_attributes"
  "bench_e3_attributes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_attributes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
