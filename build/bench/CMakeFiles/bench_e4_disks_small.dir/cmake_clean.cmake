file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_disks_small.dir/bench_e4_disks_small.cc.o"
  "CMakeFiles/bench_e4_disks_small.dir/bench_e4_disks_small.cc.o.d"
  "bench_e4_disks_small"
  "bench_e4_disks_small.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_disks_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
