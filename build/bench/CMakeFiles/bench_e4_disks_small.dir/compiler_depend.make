# Empty compiler generated dependencies file for bench_e4_disks_small.
# This may be replaced when dependencies are built.
