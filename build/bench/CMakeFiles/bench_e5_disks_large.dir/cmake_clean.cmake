file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_disks_large.dir/bench_e5_disks_large.cc.o"
  "CMakeFiles/bench_e5_disks_large.dir/bench_e5_disks_large.cc.o.d"
  "bench_e5_disks_large"
  "bench_e5_disks_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_disks_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
