# Empty dependencies file for bench_e5_disks_large.
# This may be replaced when dependencies are built.
