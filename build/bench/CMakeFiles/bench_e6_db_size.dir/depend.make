# Empty dependencies file for bench_e6_db_size.
# This may be replaced when dependencies are built.
