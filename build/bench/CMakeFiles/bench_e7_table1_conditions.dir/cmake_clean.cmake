file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_table1_conditions.dir/bench_e7_table1_conditions.cc.o"
  "CMakeFiles/bench_e7_table1_conditions.dir/bench_e7_table1_conditions.cc.o.d"
  "bench_e7_table1_conditions"
  "bench_e7_table1_conditions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_table1_conditions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
