# Empty dependencies file for bench_e7_table1_conditions.
# This may be replaced when dependencies are built.
