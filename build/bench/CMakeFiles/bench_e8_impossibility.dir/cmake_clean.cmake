file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_impossibility.dir/bench_e8_impossibility.cc.o"
  "CMakeFiles/bench_e8_impossibility.dir/bench_e8_impossibility.cc.o.d"
  "bench_e8_impossibility"
  "bench_e8_impossibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_impossibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
