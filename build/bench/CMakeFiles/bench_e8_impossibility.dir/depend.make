# Empty dependencies file for bench_e8_impossibility.
# This may be replaced when dependencies are built.
