file(REMOVE_RECURSE
  "CMakeFiles/choose_method.dir/choose_method.cc.o"
  "CMakeFiles/choose_method.dir/choose_method.cc.o.d"
  "choose_method"
  "choose_method.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/choose_method.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
