# Empty compiler generated dependencies file for choose_method.
# This may be replaced when dependencies are built.
