file(REMOVE_RECURSE
  "CMakeFiles/impossibility.dir/impossibility.cc.o"
  "CMakeFiles/impossibility.dir/impossibility.cc.o.d"
  "impossibility"
  "impossibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impossibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
