# Empty compiler generated dependencies file for impossibility.
# This may be replaced when dependencies are built.
