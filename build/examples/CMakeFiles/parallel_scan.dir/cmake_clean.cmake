file(REMOVE_RECURSE
  "CMakeFiles/parallel_scan.dir/parallel_scan.cc.o"
  "CMakeFiles/parallel_scan.dir/parallel_scan.cc.o.d"
  "parallel_scan"
  "parallel_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
