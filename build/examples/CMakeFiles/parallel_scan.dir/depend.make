# Empty dependencies file for parallel_scan.
# This may be replaced when dependencies are built.
