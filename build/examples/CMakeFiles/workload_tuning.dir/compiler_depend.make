# Empty compiler generated dependencies file for workload_tuning.
# This may be replaced when dependencies are built.
