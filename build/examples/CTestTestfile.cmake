# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_choose_method "/root/repo/build/examples/choose_method")
set_tests_properties(example_choose_method PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_parallel_scan "/root/repo/build/examples/parallel_scan")
set_tests_properties(example_parallel_scan PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_impossibility "/root/repo/build/examples/impossibility")
set_tests_properties(example_impossibility PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_workload_tuning "/root/repo/build/examples/workload_tuning")
set_tests_properties(example_workload_tuning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_failure_drill "/root/repo/build/examples/failure_drill")
set_tests_properties(example_failure_drill PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
