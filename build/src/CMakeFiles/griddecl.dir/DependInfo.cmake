
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/griddecl/coding/gf2.cc" "src/CMakeFiles/griddecl.dir/griddecl/coding/gf2.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/coding/gf2.cc.o.d"
  "/root/repo/src/griddecl/coding/parity_check.cc" "src/CMakeFiles/griddecl.dir/griddecl/coding/parity_check.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/coding/parity_check.cc.o.d"
  "/root/repo/src/griddecl/common/flags.cc" "src/CMakeFiles/griddecl.dir/griddecl/common/flags.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/common/flags.cc.o.d"
  "/root/repo/src/griddecl/common/maxflow.cc" "src/CMakeFiles/griddecl.dir/griddecl/common/maxflow.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/common/maxflow.cc.o.d"
  "/root/repo/src/griddecl/common/random.cc" "src/CMakeFiles/griddecl.dir/griddecl/common/random.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/common/random.cc.o.d"
  "/root/repo/src/griddecl/common/stats.cc" "src/CMakeFiles/griddecl.dir/griddecl/common/stats.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/common/stats.cc.o.d"
  "/root/repo/src/griddecl/common/status.cc" "src/CMakeFiles/griddecl.dir/griddecl/common/status.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/common/status.cc.o.d"
  "/root/repo/src/griddecl/common/table.cc" "src/CMakeFiles/griddecl.dir/griddecl/common/table.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/common/table.cc.o.d"
  "/root/repo/src/griddecl/curve/hilbert.cc" "src/CMakeFiles/griddecl.dir/griddecl/curve/hilbert.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/curve/hilbert.cc.o.d"
  "/root/repo/src/griddecl/curve/morton.cc" "src/CMakeFiles/griddecl.dir/griddecl/curve/morton.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/curve/morton.cc.o.d"
  "/root/repo/src/griddecl/eval/advisor.cc" "src/CMakeFiles/griddecl.dir/griddecl/eval/advisor.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/eval/advisor.cc.o.d"
  "/root/repo/src/griddecl/eval/analytic.cc" "src/CMakeFiles/griddecl.dir/griddecl/eval/analytic.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/eval/analytic.cc.o.d"
  "/root/repo/src/griddecl/eval/evaluator.cc" "src/CMakeFiles/griddecl.dir/griddecl/eval/evaluator.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/eval/evaluator.cc.o.d"
  "/root/repo/src/griddecl/eval/experiment.cc" "src/CMakeFiles/griddecl.dir/griddecl/eval/experiment.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/eval/experiment.cc.o.d"
  "/root/repo/src/griddecl/eval/metrics.cc" "src/CMakeFiles/griddecl.dir/griddecl/eval/metrics.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/eval/metrics.cc.o.d"
  "/root/repo/src/griddecl/eval/parallel.cc" "src/CMakeFiles/griddecl.dir/griddecl/eval/parallel.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/eval/parallel.cc.o.d"
  "/root/repo/src/griddecl/eval/replica_router.cc" "src/CMakeFiles/griddecl.dir/griddecl/eval/replica_router.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/eval/replica_router.cc.o.d"
  "/root/repo/src/griddecl/eval/reproduction.cc" "src/CMakeFiles/griddecl.dir/griddecl/eval/reproduction.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/eval/reproduction.cc.o.d"
  "/root/repo/src/griddecl/eval/what_if.cc" "src/CMakeFiles/griddecl.dir/griddecl/eval/what_if.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/eval/what_if.cc.o.d"
  "/root/repo/src/griddecl/grid/grid_spec.cc" "src/CMakeFiles/griddecl.dir/griddecl/grid/grid_spec.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/grid/grid_spec.cc.o.d"
  "/root/repo/src/griddecl/grid/partitioner.cc" "src/CMakeFiles/griddecl.dir/griddecl/grid/partitioner.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/grid/partitioner.cc.o.d"
  "/root/repo/src/griddecl/grid/rect.cc" "src/CMakeFiles/griddecl.dir/griddecl/grid/rect.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/grid/rect.cc.o.d"
  "/root/repo/src/griddecl/gridfile/adaptive_grid_file.cc" "src/CMakeFiles/griddecl.dir/griddecl/gridfile/adaptive_grid_file.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/gridfile/adaptive_grid_file.cc.o.d"
  "/root/repo/src/griddecl/gridfile/catalog.cc" "src/CMakeFiles/griddecl.dir/griddecl/gridfile/catalog.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/gridfile/catalog.cc.o.d"
  "/root/repo/src/griddecl/gridfile/declustered_file.cc" "src/CMakeFiles/griddecl.dir/griddecl/gridfile/declustered_file.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/gridfile/declustered_file.cc.o.d"
  "/root/repo/src/griddecl/gridfile/grid_file.cc" "src/CMakeFiles/griddecl.dir/griddecl/gridfile/grid_file.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/gridfile/grid_file.cc.o.d"
  "/root/repo/src/griddecl/gridfile/replicated_file.cc" "src/CMakeFiles/griddecl.dir/griddecl/gridfile/replicated_file.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/gridfile/replicated_file.cc.o.d"
  "/root/repo/src/griddecl/gridfile/storage.cc" "src/CMakeFiles/griddecl.dir/griddecl/gridfile/storage.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/gridfile/storage.cc.o.d"
  "/root/repo/src/griddecl/methods/dm.cc" "src/CMakeFiles/griddecl.dir/griddecl/methods/dm.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/methods/dm.cc.o.d"
  "/root/repo/src/griddecl/methods/ecc.cc" "src/CMakeFiles/griddecl.dir/griddecl/methods/ecc.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/methods/ecc.cc.o.d"
  "/root/repo/src/griddecl/methods/fx.cc" "src/CMakeFiles/griddecl.dir/griddecl/methods/fx.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/methods/fx.cc.o.d"
  "/root/repo/src/griddecl/methods/hcam.cc" "src/CMakeFiles/griddecl.dir/griddecl/methods/hcam.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/methods/hcam.cc.o.d"
  "/root/repo/src/griddecl/methods/lattice.cc" "src/CMakeFiles/griddecl.dir/griddecl/methods/lattice.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/methods/lattice.cc.o.d"
  "/root/repo/src/griddecl/methods/method.cc" "src/CMakeFiles/griddecl.dir/griddecl/methods/method.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/methods/method.cc.o.d"
  "/root/repo/src/griddecl/methods/registry.cc" "src/CMakeFiles/griddecl.dir/griddecl/methods/registry.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/methods/registry.cc.o.d"
  "/root/repo/src/griddecl/methods/replicated.cc" "src/CMakeFiles/griddecl.dir/griddecl/methods/replicated.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/methods/replicated.cc.o.d"
  "/root/repo/src/griddecl/methods/simple.cc" "src/CMakeFiles/griddecl.dir/griddecl/methods/simple.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/methods/simple.cc.o.d"
  "/root/repo/src/griddecl/methods/table_method.cc" "src/CMakeFiles/griddecl.dir/griddecl/methods/table_method.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/methods/table_method.cc.o.d"
  "/root/repo/src/griddecl/methods/workload_opt.cc" "src/CMakeFiles/griddecl.dir/griddecl/methods/workload_opt.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/methods/workload_opt.cc.o.d"
  "/root/repo/src/griddecl/query/distributions.cc" "src/CMakeFiles/griddecl.dir/griddecl/query/distributions.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/query/distributions.cc.o.d"
  "/root/repo/src/griddecl/query/generator.cc" "src/CMakeFiles/griddecl.dir/griddecl/query/generator.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/query/generator.cc.o.d"
  "/root/repo/src/griddecl/query/query.cc" "src/CMakeFiles/griddecl.dir/griddecl/query/query.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/query/query.cc.o.d"
  "/root/repo/src/griddecl/query/trace.cc" "src/CMakeFiles/griddecl.dir/griddecl/query/trace.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/query/trace.cc.o.d"
  "/root/repo/src/griddecl/query/workload.cc" "src/CMakeFiles/griddecl.dir/griddecl/query/workload.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/query/workload.cc.o.d"
  "/root/repo/src/griddecl/sim/event_sim.cc" "src/CMakeFiles/griddecl.dir/griddecl/sim/event_sim.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/sim/event_sim.cc.o.d"
  "/root/repo/src/griddecl/sim/io_sim.cc" "src/CMakeFiles/griddecl.dir/griddecl/sim/io_sim.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/sim/io_sim.cc.o.d"
  "/root/repo/src/griddecl/sim/throughput.cc" "src/CMakeFiles/griddecl.dir/griddecl/sim/throughput.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/sim/throughput.cc.o.d"
  "/root/repo/src/griddecl/theory/kd_strict_optimality.cc" "src/CMakeFiles/griddecl.dir/griddecl/theory/kd_strict_optimality.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/theory/kd_strict_optimality.cc.o.d"
  "/root/repo/src/griddecl/theory/partial_match_optimality.cc" "src/CMakeFiles/griddecl.dir/griddecl/theory/partial_match_optimality.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/theory/partial_match_optimality.cc.o.d"
  "/root/repo/src/griddecl/theory/strict_optimality.cc" "src/CMakeFiles/griddecl.dir/griddecl/theory/strict_optimality.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/theory/strict_optimality.cc.o.d"
  "/root/repo/src/griddecl/theory/worst_case.cc" "src/CMakeFiles/griddecl.dir/griddecl/theory/worst_case.cc.o" "gcc" "src/CMakeFiles/griddecl.dir/griddecl/theory/worst_case.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
