file(REMOVE_RECURSE
  "libgriddecl.a"
)
