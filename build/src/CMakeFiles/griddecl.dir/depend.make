# Empty dependencies file for griddecl.
# This may be replaced when dependencies are built.
