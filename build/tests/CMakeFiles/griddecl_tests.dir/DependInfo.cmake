
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/adaptive_grid_file_test.cc" "tests/CMakeFiles/griddecl_tests.dir/adaptive_grid_file_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/adaptive_grid_file_test.cc.o.d"
  "/root/repo/tests/advisor_test.cc" "tests/CMakeFiles/griddecl_tests.dir/advisor_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/advisor_test.cc.o.d"
  "/root/repo/tests/analytic_test.cc" "tests/CMakeFiles/griddecl_tests.dir/analytic_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/analytic_test.cc.o.d"
  "/root/repo/tests/bit_util_test.cc" "tests/CMakeFiles/griddecl_tests.dir/bit_util_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/bit_util_test.cc.o.d"
  "/root/repo/tests/catalog_test.cc" "tests/CMakeFiles/griddecl_tests.dir/catalog_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/catalog_test.cc.o.d"
  "/root/repo/tests/declustered_file_test.cc" "tests/CMakeFiles/griddecl_tests.dir/declustered_file_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/declustered_file_test.cc.o.d"
  "/root/repo/tests/distributions_test.cc" "tests/CMakeFiles/griddecl_tests.dir/distributions_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/distributions_test.cc.o.d"
  "/root/repo/tests/edge_cases_test.cc" "tests/CMakeFiles/griddecl_tests.dir/edge_cases_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/edge_cases_test.cc.o.d"
  "/root/repo/tests/evaluator_test.cc" "tests/CMakeFiles/griddecl_tests.dir/evaluator_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/evaluator_test.cc.o.d"
  "/root/repo/tests/event_sim_test.cc" "tests/CMakeFiles/griddecl_tests.dir/event_sim_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/event_sim_test.cc.o.d"
  "/root/repo/tests/experiment_test.cc" "tests/CMakeFiles/griddecl_tests.dir/experiment_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/experiment_test.cc.o.d"
  "/root/repo/tests/flags_test.cc" "tests/CMakeFiles/griddecl_tests.dir/flags_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/flags_test.cc.o.d"
  "/root/repo/tests/format_fuzz_test.cc" "tests/CMakeFiles/griddecl_tests.dir/format_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/format_fuzz_test.cc.o.d"
  "/root/repo/tests/generator_test.cc" "tests/CMakeFiles/griddecl_tests.dir/generator_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/generator_test.cc.o.d"
  "/root/repo/tests/gf2_test.cc" "tests/CMakeFiles/griddecl_tests.dir/gf2_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/gf2_test.cc.o.d"
  "/root/repo/tests/grid_file_test.cc" "tests/CMakeFiles/griddecl_tests.dir/grid_file_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/grid_file_test.cc.o.d"
  "/root/repo/tests/grid_spec_test.cc" "tests/CMakeFiles/griddecl_tests.dir/grid_spec_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/grid_spec_test.cc.o.d"
  "/root/repo/tests/hilbert_test.cc" "tests/CMakeFiles/griddecl_tests.dir/hilbert_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/hilbert_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/griddecl_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/io_sim_test.cc" "tests/CMakeFiles/griddecl_tests.dir/io_sim_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/io_sim_test.cc.o.d"
  "/root/repo/tests/kd_strict_optimality_test.cc" "tests/CMakeFiles/griddecl_tests.dir/kd_strict_optimality_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/kd_strict_optimality_test.cc.o.d"
  "/root/repo/tests/lattice_test.cc" "tests/CMakeFiles/griddecl_tests.dir/lattice_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/lattice_test.cc.o.d"
  "/root/repo/tests/math_util_test.cc" "tests/CMakeFiles/griddecl_tests.dir/math_util_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/math_util_test.cc.o.d"
  "/root/repo/tests/maxflow_test.cc" "tests/CMakeFiles/griddecl_tests.dir/maxflow_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/maxflow_test.cc.o.d"
  "/root/repo/tests/method_dm_test.cc" "tests/CMakeFiles/griddecl_tests.dir/method_dm_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/method_dm_test.cc.o.d"
  "/root/repo/tests/method_ecc_test.cc" "tests/CMakeFiles/griddecl_tests.dir/method_ecc_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/method_ecc_test.cc.o.d"
  "/root/repo/tests/method_fx_test.cc" "tests/CMakeFiles/griddecl_tests.dir/method_fx_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/method_fx_test.cc.o.d"
  "/root/repo/tests/method_hcam_test.cc" "tests/CMakeFiles/griddecl_tests.dir/method_hcam_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/method_hcam_test.cc.o.d"
  "/root/repo/tests/method_properties_test.cc" "tests/CMakeFiles/griddecl_tests.dir/method_properties_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/method_properties_test.cc.o.d"
  "/root/repo/tests/method_simple_test.cc" "tests/CMakeFiles/griddecl_tests.dir/method_simple_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/method_simple_test.cc.o.d"
  "/root/repo/tests/metrics_test.cc" "tests/CMakeFiles/griddecl_tests.dir/metrics_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/metrics_test.cc.o.d"
  "/root/repo/tests/morton_test.cc" "tests/CMakeFiles/griddecl_tests.dir/morton_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/morton_test.cc.o.d"
  "/root/repo/tests/paper_claims_test.cc" "tests/CMakeFiles/griddecl_tests.dir/paper_claims_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/paper_claims_test.cc.o.d"
  "/root/repo/tests/parallel_eval_test.cc" "tests/CMakeFiles/griddecl_tests.dir/parallel_eval_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/parallel_eval_test.cc.o.d"
  "/root/repo/tests/parity_check_test.cc" "tests/CMakeFiles/griddecl_tests.dir/parity_check_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/parity_check_test.cc.o.d"
  "/root/repo/tests/partial_match_optimality_test.cc" "tests/CMakeFiles/griddecl_tests.dir/partial_match_optimality_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/partial_match_optimality_test.cc.o.d"
  "/root/repo/tests/partitioner_test.cc" "tests/CMakeFiles/griddecl_tests.dir/partitioner_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/partitioner_test.cc.o.d"
  "/root/repo/tests/query_test.cc" "tests/CMakeFiles/griddecl_tests.dir/query_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/query_test.cc.o.d"
  "/root/repo/tests/random_test.cc" "tests/CMakeFiles/griddecl_tests.dir/random_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/random_test.cc.o.d"
  "/root/repo/tests/rect_test.cc" "tests/CMakeFiles/griddecl_tests.dir/rect_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/rect_test.cc.o.d"
  "/root/repo/tests/registry_test.cc" "tests/CMakeFiles/griddecl_tests.dir/registry_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/registry_test.cc.o.d"
  "/root/repo/tests/replicated_file_test.cc" "tests/CMakeFiles/griddecl_tests.dir/replicated_file_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/replicated_file_test.cc.o.d"
  "/root/repo/tests/replicated_test.cc" "tests/CMakeFiles/griddecl_tests.dir/replicated_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/replicated_test.cc.o.d"
  "/root/repo/tests/reproduction_test.cc" "tests/CMakeFiles/griddecl_tests.dir/reproduction_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/reproduction_test.cc.o.d"
  "/root/repo/tests/response_properties_test.cc" "tests/CMakeFiles/griddecl_tests.dir/response_properties_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/response_properties_test.cc.o.d"
  "/root/repo/tests/stats_test.cc" "tests/CMakeFiles/griddecl_tests.dir/stats_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/stats_test.cc.o.d"
  "/root/repo/tests/status_test.cc" "tests/CMakeFiles/griddecl_tests.dir/status_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/status_test.cc.o.d"
  "/root/repo/tests/storage_test.cc" "tests/CMakeFiles/griddecl_tests.dir/storage_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/storage_test.cc.o.d"
  "/root/repo/tests/strict_optimality_test.cc" "tests/CMakeFiles/griddecl_tests.dir/strict_optimality_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/strict_optimality_test.cc.o.d"
  "/root/repo/tests/table_method_test.cc" "tests/CMakeFiles/griddecl_tests.dir/table_method_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/table_method_test.cc.o.d"
  "/root/repo/tests/table_test.cc" "tests/CMakeFiles/griddecl_tests.dir/table_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/table_test.cc.o.d"
  "/root/repo/tests/throughput_test.cc" "tests/CMakeFiles/griddecl_tests.dir/throughput_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/throughput_test.cc.o.d"
  "/root/repo/tests/trace_test.cc" "tests/CMakeFiles/griddecl_tests.dir/trace_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/trace_test.cc.o.d"
  "/root/repo/tests/what_if_test.cc" "tests/CMakeFiles/griddecl_tests.dir/what_if_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/what_if_test.cc.o.d"
  "/root/repo/tests/workload_opt_test.cc" "tests/CMakeFiles/griddecl_tests.dir/workload_opt_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/workload_opt_test.cc.o.d"
  "/root/repo/tests/worst_case_test.cc" "tests/CMakeFiles/griddecl_tests.dir/worst_case_test.cc.o" "gcc" "tests/CMakeFiles/griddecl_tests.dir/worst_case_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/griddecl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
