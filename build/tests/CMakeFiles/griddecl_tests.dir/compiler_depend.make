# Empty compiler generated dependencies file for griddecl_tests.
# This may be replaced when dependencies are built.
