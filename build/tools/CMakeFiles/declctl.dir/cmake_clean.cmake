file(REMOVE_RECURSE
  "CMakeFiles/declctl.dir/declctl.cc.o"
  "CMakeFiles/declctl.dir/declctl.cc.o.d"
  "declctl"
  "declctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/declctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
