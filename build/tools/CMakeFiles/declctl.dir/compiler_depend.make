# Empty compiler generated dependencies file for declctl.
# This may be replaced when dependencies are built.
