# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(declctl_methods "/root/repo/build/tools/declctl" "methods")
set_tests_properties(declctl_methods PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;4;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(declctl_compare "/root/repo/build/tools/declctl" "compare" "--grid" "16x16" "--disks" "8" "--shape" "3x3" "--placements" "64")
set_tests_properties(declctl_compare PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(declctl_search "/root/repo/build/tools/declctl" "search" "--disks" "6" "--rows" "7" "--cols" "7")
set_tests_properties(declctl_search PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(declctl_show "/root/repo/build/tools/declctl" "show" "--grid" "8x8" "--disks" "4" "--method" "hcam")
set_tests_properties(declctl_show PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(declctl_reproduce "/root/repo/build/tools/declctl" "reproduce" "--placements" "64" "--theory" "false")
set_tests_properties(declctl_reproduce PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
