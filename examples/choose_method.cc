/// choose_method: the paper's actionable conclusion — "information about
/// common queries on a relation ought to be used in deciding the
/// declustering for it" — as a working tool. Describe a workload mix, and
/// the example evaluates every applicable declustering method against it
/// and recommends the best.
///
///   $ ./choose_method            # built-in OLAP-ish mix
///
/// Exercises: registry, query generator, evaluator aggregates.

#include <iostream>

#include "griddecl/griddecl.h"

namespace {

using namespace griddecl;

/// A workload mix: mostly small square lookups, some row-dominant reports,
/// a few large analytical scans.
Workload BuildMix(const GridSpec& grid) {
  QueryGenerator gen(grid);
  Rng rng(7);
  Workload mix;
  mix.name = "app-mix";
  // 60%: small 3x3 neighbourhood lookups.
  mix.Append(gen.SampledPlacements({3, 3}, 600, &rng, "small").value());
  // 30%: thin row-range reports (1 x 24).
  mix.Append(gen.SampledPlacements({1, 24}, 300, &rng, "rows").value());
  // 10%: big 24x24 analytical scans.
  mix.Append(gen.SampledPlacements({24, 24}, 100, &rng, "scan").value());
  return mix;
}

}  // namespace

int main() {
  const GridSpec grid = GridSpec::Create({64, 64}).value();
  const uint32_t num_disks = 16;
  const Workload mix = BuildMix(grid);

  std::cout << "Workload: " << mix.size() << " queries on grid "
            << grid.ToString() << ", M=" << num_disks << "\n\n";

  Table t({"Method", "Mean RT", "RT/opt", "% optimal", "Max RT"});
  std::string best_name;
  double best_rt = 1e300;
  for (const std::string& name : AllMethodNames()) {
    if (name == "cmd" || name == "fx-auto" || name == "gdm") {
      continue;  // Aliases/duplicates of entries already listed.
    }
    Result<std::unique_ptr<DeclusteringMethod>> method =
        CreateMethod(name, grid, num_disks);
    if (!method.ok()) {
      std::cout << "(skipping " << name << ": "
                << method.status().ToString() << ")\n";
      continue;
    }
    const WorkloadEval e =
        Evaluator(*method.value()).EvaluateWorkload(mix);
    t.AddRow({method.value()->name(), Table::Fmt(e.MeanResponse(), 3),
              Table::Fmt(e.MeanRatio(), 3),
              Table::Fmt(e.FractionOptimal() * 100, 1),
              Table::Fmt(e.MaxResponse(), 0)});
    if (e.MeanResponse() < best_rt) {
      best_rt = e.MeanResponse();
      best_name = method.value()->name();
    }
  }
  std::cout << "\n";
  t.PrintText(std::cout);
  std::cout << "\nRecommended declustering for this workload: " << best_name
            << " (lowest mean response time)\n";
  return 0;
}
