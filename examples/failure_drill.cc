/// failure_drill: replication and degraded-mode operation — the extension
/// the paper explicitly left out ("we do not consider techniques where a
/// data subspace can be assigned to more than one disk").
///
///   $ ./failure_drill
///
/// Builds a chained 2-replica placement over HCAM, routes queries with the
/// exact min-makespan replica router, then fails disks one at a time and
/// shows (a) the graceful degradation replication buys and (b) the hard
/// stop an unreplicated system hits.

#include <iostream>

#include "griddecl/griddecl.h"

int main() {
  using namespace griddecl;

  const GridSpec grid = GridSpec::Create({32, 32}).value();
  const uint32_t num_disks = 8;
  auto base = CreateMethod("hcam", grid, num_disks).value();
  const ReplicatedPlacement placement =
      ReplicatedPlacement::Create(std::move(base), /*num_replicas=*/2,
                                  /*offset=*/1)
          .value();

  QueryGenerator gen(grid);
  Rng rng(7);
  const Workload workload =
      gen.SampledPlacements({6, 6}, 200, &rng, "6x6").value();
  std::cout << "Chained 2-replica HCAM on " << grid.ToString() << ", M="
            << num_disks << "; 200 random 6x6 queries (36 buckets each, "
            << "optimal = " << OptimalResponseTime(36, num_disks) << ")\n\n";

  Table t({"Scenario", "Mean routed RT", "Availability", "Status"});
  const RoutedWorkloadSummary healthy =
      MeanRoutedResponse(placement, workload.queries).value();
  t.AddRow({"all disks up", Table::Fmt(healthy.mean_response, 3),
            Table::Fmt(healthy.Availability(), 3), "ok"});
  for (uint32_t dead = 1; dead <= 3; ++dead) {
    std::vector<bool> failed(num_disks, false);
    // Fail `dead` non-adjacent disks so chained replicas survive.
    for (uint32_t i = 0; i < dead; ++i) failed[2 * i] = true;
    const RoutedWorkloadSummary s =
        MeanRoutedResponse(placement, workload.queries, &failed).value();
    t.AddRow({std::to_string(dead) + " disk(s) down",
              Table::Fmt(s.mean_response, 3),
              Table::Fmt(s.Availability(), 3), "degraded"});
  }
  // Adjacent failures kill both replicas of some buckets: those queries
  // are unroutable, but the workload summary still reports the rest.
  std::vector<bool> adjacent(num_disks, false);
  adjacent[0] = adjacent[1] = true;
  const RoutedWorkloadSummary broken =
      MeanRoutedResponse(placement, workload.queries, &adjacent).value();
  t.AddRow({"disks 0 AND 1 down", Table::Fmt(broken.mean_response, 3),
            Table::Fmt(broken.Availability(), 3),
            std::to_string(broken.unroutable) + " queries UNROUTABLE"});
  t.PrintText(std::cout);

  std::cout << "\nWithout replication, any single disk failure would make "
               "every query touching that disk unanswerable; with chained "
               "replicas the array serves through "
            << "non-adjacent failures at modest cost.\n";
  return 0;
}
