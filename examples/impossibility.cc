/// impossibility: an interactive tour of the paper's theorem — strictly
/// optimal declustering for range queries is impossible beyond 5 disks.
///
///   $ ./impossibility
///
/// For M = 2..7 the example searches exhaustively for an allocation of a
/// small grid in which EVERY rectangular query is answered in exactly
/// ceil(|Q|/M) parallel bucket accesses, prints the allocation when one
/// exists, and prints the grid size that proves impossibility otherwise.

#include <iostream>

#include "griddecl/griddecl.h"

namespace {

void PrintAllocation(uint32_t side, const std::vector<uint32_t>& alloc) {
  for (uint32_t i = 0; i < side; ++i) {
    std::cout << "    ";
    for (uint32_t j = 0; j < side; ++j) {
      std::cout << alloc[i * side + j] << " ";
    }
    std::cout << "\n";
  }
}

}  // namespace

int main() {
  using namespace griddecl;

  for (uint32_t m = 2; m <= 7; ++m) {
    std::cout << "M = " << m << " disks:\n";
    StrictOptimalitySearchOptions opts;
    opts.max_nodes = 20'000'000;
    bool settled = false;
    for (uint32_t side = m + 1; side <= m + 3 && !settled; ++side) {
      const auto r =
          FindStrictlyOptimalAllocation(side, side, m, opts).value();
      switch (r.outcome) {
        case SearchOutcome::kFound:
          if (side == m + 3) {  // Largest probe: show it and move on.
            std::cout << "  strictly optimal allocation exists; e.g. on "
                      << side << "x" << side << ":\n";
            PrintAllocation(side, r.allocation);
            settled = true;
          }
          break;
        case SearchOutcome::kInfeasible:
          std::cout << "  IMPOSSIBLE: no allocation of a " << side << "x"
                    << side << " grid is strictly optimal (exhaustive proof, "
                    << r.nodes_explored << " nodes) — hence none for any "
                    << "larger database either.\n";
          settled = true;
          break;
        case SearchOutcome::kBudgetExhausted:
          std::cout << "  search budget exhausted at " << side << "x" << side
                    << "\n";
          settled = true;
          break;
      }
    }
    std::cout << "\n";
  }

  std::cout << "The classical linear allocations behind the feasible cases:\n";
  for (uint32_t m : {1u, 2u, 3u, 5u}) {
    const auto coeffs = KnownStrictlyOptimalCoefficients(m).value();
    std::cout << "  M=" << m << ": disk(i,j) = (" << coeffs.first << "*i + "
              << coeffs.second << "*j) mod " << m << "\n";
  }
  std::cout << "\nThe paper's theorem: for M > 5, no declustering method is "
               "strictly optimal for range queries.\n";
  return 0;
}
