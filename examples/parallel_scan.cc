/// parallel_scan: the full storage stack end to end. Loads a synthetic
/// sensor relation into a grid file, declusters it over 8 simulated disks
/// with HCAM, and runs record-level range queries — reporting exact matches
/// alongside bucket-level cost and simulated parallel I/O latency.
///
///   $ ./parallel_scan
///
/// Exercises: Schema / GridFile / DeclusteredFile / ParallelIoSimulator.

#include <iostream>

#include "griddecl/griddecl.h"

int main() {
  using namespace griddecl;

  // A relation of (temperature, humidity) sensor readings.
  Schema schema =
      Schema::Create({{"temperature", -20.0, 60.0}, {"humidity", 0.0, 100.0}})
          .value();
  GridFile file = GridFile::Create(std::move(schema), {16, 16}).value();

  // Load 20,000 synthetic readings: two clusters plus uniform noise.
  Rng rng(2024);
  for (int i = 0; i < 20000; ++i) {
    double temp;
    double hum;
    if (rng.NextBool(0.5)) {
      temp = 18.0 + rng.NextDouble() * 8.0;  // Indoor cluster.
      hum = 35.0 + rng.NextDouble() * 20.0;
    } else if (rng.NextBool(0.6)) {
      temp = -5.0 + rng.NextDouble() * 15.0;  // Winter outdoor cluster.
      hum = 60.0 + rng.NextDouble() * 35.0;
    } else {
      temp = -20.0 + rng.NextDouble() * 80.0;  // Background noise.
      hum = rng.NextDouble() * 100.0;
    }
    if (!file.Insert({temp, hum}).ok()) return 1;
  }

  DeclusteredFile df =
      DeclusteredFile::Create(std::move(file), "hcam", 8).value();
  std::cout << "Loaded " << df.file().num_records()
            << " records into a 16x16 grid file declustered by "
            << df.method().name() << " over " << df.num_disks()
            << " disks\n\nRecords per disk: ";
  for (uint64_t n : df.RecordsPerDisk()) std::cout << n << " ";
  std::cout << "\n\n";

  struct NamedQuery {
    const char* what;
    std::vector<double> lo;
    std::vector<double> hi;
  };
  const NamedQuery queries[] = {
      {"comfort zone (20-24C, 40-60%)", {20, 40}, {24, 60}},
      {"freezing and humid", {-20, 70}, {0, 100}},
      {"everything above 30C", {30, 0}, {60, 100}},
  };
  Table t({"Query", "Matches", "Buckets", "RT", "Optimal", "Sim ms",
           "Speedup"});
  for (const NamedQuery& q : queries) {
    const QueryExecution exec = df.ExecuteRange(q.lo, q.hi).value();
    t.AddRow({q.what, Table::Fmt(uint64_t{exec.matches.size()}),
              Table::Fmt(exec.buckets_touched),
              Table::Fmt(exec.response_units), Table::Fmt(exec.optimal_units),
              Table::Fmt(exec.io.makespan_ms, 1),
              Table::Fmt(exec.io.Speedup(), 2)});
  }
  t.PrintText(std::cout);
  std::cout << "\nRT is the paper's metric (max buckets fetched from one "
               "disk); Sim ms runs the same fetches through the seek/"
               "rotate/transfer disk model.\n";
  return 0;
}
