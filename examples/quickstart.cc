/// Quickstart: decluster a 2-attribute relation over 16 disks with each of
/// the paper's methods and compare their response time on one range query.
///
///   $ ./quickstart
///
/// Walks the core API surface: GridSpec -> CreateMethod -> RangeQuery ->
/// ResponseTime / OptimalResponseTime.

#include <iostream>

#include "griddecl/griddecl.h"

int main() {
  using namespace griddecl;

  // A relation range-partitioned on two attributes into a 32x32 bucket
  // grid, to be spread over 16 disks.
  const GridSpec grid = GridSpec::Create({32, 32}).value();
  const uint32_t num_disks = 16;

  // A small range query touching a 4x4 block of buckets.
  const RangeQuery query =
      RangeQuery::Create(grid, BucketRect::Create({5, 9}, {8, 12}).value())
          .value();
  std::cout << "Grid " << grid.ToString() << ", " << num_disks
            << " disks, query " << query.ToString() << " ("
            << query.NumBuckets() << " buckets)\n";
  std::cout << "Optimal response time: "
            << OptimalResponseTime(query.NumBuckets(), num_disks)
            << " bucket-access unit(s)\n\n";

  // Response time = max number of the query's buckets on one disk.
  for (const auto& method : CreatePaperMethods(grid, num_disks)) {
    std::cout << "  " << method->name() << ": "
              << ResponseTime(*method, query) << " unit(s)\n";
  }

  // The same comparison averaged over every placement of the 4x4 query.
  std::cout << "\nAveraged over all 4x4 placements:\n";
  QueryGenerator gen(grid);
  const Workload workload = gen.AllPlacements({4, 4}, "4x4").value();
  for (const auto& method : CreatePaperMethods(grid, num_disks)) {
    const WorkloadEval eval =
        Evaluator(*method).EvaluateWorkload(workload);
    std::cout << "  " << method->name()
              << ": mean RT = " << Table::Fmt(eval.MeanResponse(), 3)
              << ", RT/optimal = " << Table::Fmt(eval.MeanRatio(), 3)
              << ", optimal on " << Table::Fmt(eval.FractionOptimal() * 100, 1)
              << "% of queries\n";
  }
  std::cout << "\nNo single method wins everywhere — the paper's conclusion. "
               "See choose_method for workload-driven selection.\n";
  return 0;
}
