/// workload_tuning: the full "use your workload" lifecycle the paper's
/// conclusion calls for, end to end:
///
///   1. capture a production query mix as a durable trace (text format),
///   2. run the advisor against the trace (train/test split, every
///      candidate method scored on held-out queries),
///   3. hill-climb the winner's allocation for this workload,
///   4. export the tuned allocation in the serializable table format, and
///      prove the round trip preserves it bit for bit.
///
///   $ ./workload_tuning
///
/// Exercises: trace serialization, AdviseDeclustering, OptimizeForWorkload,
/// SerializeAllocation / DeserializeAllocation.

#include <iostream>
#include <sstream>

#include "griddecl/griddecl.h"

int main() {
  using namespace griddecl;

  const GridSpec grid = GridSpec::Create({32, 32}).value();
  const uint32_t num_disks = 16;

  // 1. Capture a workload trace: mostly small rectangles with a row bias.
  QueryGenerator gen(grid);
  Rng rng(99);
  Workload mix;
  mix.name = "reporting-mix";
  mix.Append(gen.SampledPlacements({2, 6}, 300, &rng, "wide").value());
  mix.Append(gen.SampledPlacements({3, 3}, 200, &rng, "square").value());
  std::stringstream trace_file;  // Stands in for a real file on disk.
  if (!SerializeWorkload(grid, mix, trace_file).ok()) return 1;
  std::cout << "captured " << mix.size()
            << " queries into a trace (" << trace_file.str().size()
            << " bytes)\n\n";

  // 2. Reload the trace and ask the advisor.
  const WorkloadTrace trace = DeserializeWorkload(trace_file).value();
  AdvisorOptions opts;
  opts.include_optimized = true;
  const Advice advice =
      AdviseDeclustering(trace.grid, num_disks, trace.workload, opts).value();

  Table t({"Method", "Test mean RT", "Test RT/opt", "Test % optimal"});
  for (const MethodScore& s : advice.scores) {
    t.AddRow({s.name, Table::Fmt(s.test_mean_response, 3),
              Table::Fmt(s.test_mean_ratio, 3),
              Table::Fmt(s.test_fraction_optimal * 100, 1)});
  }
  t.PrintText(std::cout);
  std::cout << "\nadvisor recommends: " << advice.recommended << "\n\n";

  // 3./4. Export the winning allocation and verify the round trip.
  std::stringstream alloc_file;
  if (!SerializeAllocation(*advice.method, alloc_file).ok()) return 1;
  const auto reloaded = DeserializeAllocation(alloc_file).value();
  uint64_t mismatches = 0;
  grid.ForEachBucket([&](const BucketCoords& c) {
    if (reloaded->DiskOf(c) != advice.method->DiskOf(c)) ++mismatches;
  });
  std::cout << "exported allocation: " << grid.num_buckets()
            << " bucket assignments, round-trip mismatches: " << mismatches
            << "\n";
  return mismatches == 0 ? 0 : 1;
}
