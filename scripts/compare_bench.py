#!/usr/bin/env python3
"""CI perf-regression gate: diff BENCH_*.json artifacts against baselines.

Usage:
    scripts/compare_bench.py --baseline bench/baselines --current . \
        [--threshold-pct 15]

For every BENCH_<name>.json in the baseline directory, the same file must
exist in the current directory, and every kernel's median_ms may be at most
``threshold-pct`` percent slower than the baseline median. Faster is always
fine. A delta table is printed either way; the exit status is non-zero when
any kernel regresses past the threshold or an artifact/kernel is missing.

Deterministic counters are compared too, but only as a warning: a counter
drift means the workload changed and the baseline needs a rebaseline
(scripts/update_bench_baseline.sh), which is a review decision rather than
a perf failure.
"""

import argparse
import json
import pathlib
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="directory holding the checked-in BENCH_*.json")
    parser.add_argument("--current", required=True,
                        help="directory holding freshly produced BENCH_*.json")
    parser.add_argument("--threshold-pct", type=float, default=15.0,
                        help="max allowed median slowdown per kernel")
    args = parser.parse_args()

    baseline_dir = pathlib.Path(args.baseline)
    current_dir = pathlib.Path(args.current)
    baselines = sorted(baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"error: no BENCH_*.json under {baseline_dir}", file=sys.stderr)
        return 2

    failures = []
    warnings = []
    rows = [("bench", "kernel", "base ms", "cur ms", "delta", "status")]

    for base_path in baselines:
        cur_path = current_dir / base_path.name
        if not cur_path.exists():
            failures.append(f"missing artifact {cur_path}")
            continue
        base = load(base_path)
        cur = load(cur_path)
        name = base.get("bench", base_path.stem)

        for kernel, stats in sorted(base.get("kernels", {}).items()):
            base_ms = stats["median_ms"]
            cur_stats = cur.get("kernels", {}).get(kernel)
            if cur_stats is None:
                failures.append(f"{name}: kernel '{kernel}' missing")
                continue
            cur_ms = cur_stats["median_ms"]
            delta_pct = (0.0 if base_ms == 0
                         else 100.0 * (cur_ms - base_ms) / base_ms)
            regressed = delta_pct > args.threshold_pct
            rows.append((name, kernel, f"{base_ms:.4f}", f"{cur_ms:.4f}",
                         f"{delta_pct:+.1f}%",
                         "REGRESSED" if regressed else "ok"))
            if regressed:
                failures.append(
                    f"{name}: {kernel} median {cur_ms:.4f} ms vs baseline "
                    f"{base_ms:.4f} ms ({delta_pct:+.1f}% > "
                    f"+{args.threshold_pct:g}%)")

        for counter, base_value in sorted(base.get("counters", {}).items()):
            cur_value = cur.get("counters", {}).get(counter)
            if cur_value != base_value:
                warnings.append(
                    f"{name}: counter '{counter}' drifted "
                    f"{base_value} -> {cur_value} (rebaseline?)")

    widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
    for row in rows:
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))

    for warning in warnings:
        print(f"warning: {warning}")
    if failures:
        print()
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(f"\nall kernels within +{args.threshold_pct:g}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
