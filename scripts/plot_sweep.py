#!/usr/bin/env python3
"""Plot a sweep CSV emitted by the bench binaries (or `declctl sweep-size`).

The bench binaries print each series as CSV after the ASCII tables; save
one CSV block to a file (or pipe the whole output here — the first CSV
block is auto-extracted) and run:

    bench/bench_e1_query_size | scripts/plot_sweep.py --out e1.png
    scripts/plot_sweep.py e1.csv --logx --out e1.png

Requires matplotlib; falls back to an ASCII chart without it.
"""

import argparse
import csv
import io
import sys


def extract_first_csv_block(text: str) -> str:
    """Pulls the first contiguous comma-separated block out of mixed output."""
    lines = []
    in_block = False
    for line in text.splitlines():
        if "," in line and not line.startswith(("|", "=")):
            lines.append(line)
            in_block = True
        elif in_block:
            break
    return "\n".join(lines)


def ascii_plot(xs, series):
    width = 60
    all_vals = [v for ys in series.values() for v in ys]
    lo, hi = min(all_vals), max(all_vals)
    span = (hi - lo) or 1.0
    for name, ys in series.items():
        print(f"\n{name}")
        for x, y in zip(xs, ys):
            bar = "#" * int((y - lo) / span * width)
            print(f"  {x:>10.2f} | {bar} {y:.3f}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("csv_file", nargs="?", help="CSV file (default: stdin)")
    parser.add_argument("--out", help="output image path (requires matplotlib)")
    parser.add_argument("--logx", action="store_true", help="log-scale x axis")
    args = parser.parse_args()

    raw = (
        open(args.csv_file).read()
        if args.csv_file
        else sys.stdin.read()
    )
    block = extract_first_csv_block(raw)
    if not block:
        sys.exit("no CSV block found in input")

    rows = list(csv.reader(io.StringIO(block)))
    header, data = rows[0], rows[1:]
    xs = [float(r[0]) for r in data]
    series = {
        header[c]: [float(r[c]) if r[c] != "nan" else float("nan") for r in data]
        for c in range(1, len(header))
    }

    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; ASCII fallback:", file=sys.stderr)
        ascii_plot(xs, series)
        return

    fig, ax = plt.subplots(figsize=(7, 4.5))
    for name, ys in series.items():
        ax.plot(xs, ys, marker="o", markersize=3, label=name)
    ax.set_xlabel(header[0])
    ax.set_ylabel("mean response time")
    if args.logx:
        ax.set_xscale("log", base=2)
    ax.legend()
    ax.grid(True, alpha=0.3)
    fig.tight_layout()
    out = args.out or "sweep.png"
    fig.savefig(out, dpi=140)
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
