#!/usr/bin/env bash
# Builds the project and regenerates every paper table/figure plus the
# ablations, mirroring what EXPERIMENTS.md records.
#
# Usage: scripts/run_experiments.sh [build-dir] [output-dir]

set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-experiment_output}"

cmake -B "$BUILD_DIR" -G Ninja
cmake --build "$BUILD_DIR"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"

mkdir -p "$OUT_DIR"
for bench in "$BUILD_DIR"/bench/*; do
  name="$(basename "$bench")"
  echo "== $name"
  "$bench" --benchmark_min_time=0.01 > "$OUT_DIR/$name.txt"
done

echo "All experiment outputs written to $OUT_DIR/"
