#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite.
#
#   scripts/run_tier1.sh [--sanitize] [extra cmake configure args...]
#
# --sanitize configures an instrumented build (GRIDDECL_SANITIZE=
# address,undefined) in a separate build directory (build-sanitize) so it
# never pollutes the regular build tree, then runs ctest under both
# sanitizers. Remaining arguments are forwarded to the configure step,
# e.g. scripts/run_tier1.sh -DGRIDDECL_SANITIZE=address
set -euo pipefail

cd "$(dirname "$0")/.."

build_dir=build
configure_args=()
for arg in "$@"; do
  if [[ "$arg" == "--sanitize" ]]; then
    build_dir=build-sanitize
    configure_args+=("-DGRIDDECL_SANITIZE=address,undefined")
  else
    configure_args+=("$arg")
  fi
done

cmake -B "$build_dir" -S . ${configure_args+"${configure_args[@]}"}
cmake --build "$build_dir" -j
cd "$build_dir" && ctest --output-on-failure -j
