#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite.
#
#   scripts/run_tier1.sh [--sanitize] [--sanitize=tsan] [--torture] \
#       [extra cmake args...]
#
# --sanitize configures an instrumented build (GRIDDECL_SANITIZE=
# address,undefined) in a separate build directory (build-sanitize) so it
# never pollutes the regular build tree, then runs ctest under both
# sanitizers. Remaining arguments are forwarded to the configure step,
# e.g. scripts/run_tier1.sh -DGRIDDECL_SANITIZE=address
#
# --sanitize=tsan builds with GRIDDECL_SANITIZE=thread in build-tsan and
# restricts ctest to the concurrent suites — the serving layer, its chaos
# soak, breakers, backoff, the fault-injecting env, and the buffer
# pool / page store (concurrent pin/unpin/eviction) — where data races
# could actually live. TSan is incompatible with ASan, hence the separate
# mode and tree.
#
# --torture implies --sanitize but restricts ctest to the durability
# suites — crash-recovery, corruption, scrub/repair, and format fuzzing
# (Torture/FormatFuzz/Scrub/Manifest/Storage/StorageEnv/Crc32c plus the
# declctl mkcatalog+fsck round trip) — so every injected crash point and
# byte flip also runs under address and undefined-behavior sanitizers.
set -euo pipefail

cd "$(dirname "$0")/.."

build_dir=build
test_args=()
configure_args=()
for arg in "$@"; do
  if [[ "$arg" == "--sanitize" || "$arg" == "--torture" ]]; then
    build_dir=build-sanitize
    configure_args+=("-DGRIDDECL_SANITIZE=address,undefined")
    if [[ "$arg" == "--torture" ]]; then
      test_args+=("-R" "Torture|FormatFuzz|Scrub|Manifest|Storage|Crc32c|Migration|Placement|Repair|Heartbeat|declctl_mkcatalog|declctl_fsck")
    fi
  elif [[ "$arg" == "--sanitize=tsan" ]]; then
    build_dir=build-tsan
    configure_args+=("-DGRIDDECL_SANITIZE=thread")
    test_args+=("-R" "QueryService|Serve|Chaos|Breaker|Backoff|FaultyEnv|DiskFault|BufferPool|PageStore|Cluster|Hedge|Migration|Placement|TokenBucket|Repair|Heartbeat")
  else
    configure_args+=("$arg")
  fi
done

cmake -B "$build_dir" -S . ${configure_args+"${configure_args[@]}"}
cmake --build "$build_dir" -j
# test_args must precede the bare -j: ctest would otherwise consume the
# following -R as -j's optional value and silently drop the filter.
cd "$build_dir" && ctest --output-on-failure ${test_args+"${test_args[@]}"} -j
