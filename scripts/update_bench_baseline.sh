#!/usr/bin/env bash
# Regenerate the CI perf-gate baselines under bench/baselines/.
#
#   scripts/update_bench_baseline.sh [--repetitions N]
#
# Builds Release into build-baseline/ and reruns the gated benches with
# pinned repetitions, overwriting bench/baselines/BENCH_*.json. Commit the
# result together with the change that legitimately moved the numbers, and
# say why in the commit message — the perf job compares every PR against
# these files.
set -euo pipefail

cd "$(dirname "$0")/.."

repetitions=7
if [[ "${1-}" == "--repetitions" ]]; then
  repetitions="$2"
  shift 2
fi

cmake -B build-baseline -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-baseline -j --target bench_a10_disk_map bench_a5_throughput bench_a13_serve bench_a14_pagescan

mkdir -p bench/baselines
build-baseline/bench/bench_a10_disk_map \
  --bench-json=bench/baselines/BENCH_a10_disk_map.json \
  --bench-repetitions="$repetitions"
build-baseline/bench/bench_a5_throughput \
  --bench-json=bench/baselines/BENCH_a5_throughput.json \
  --bench-repetitions="$repetitions"
build-baseline/bench/bench_a13_serve \
  --bench-json=bench/baselines/BENCH_a13_serve.json \
  --bench-repetitions="$repetitions"
build-baseline/bench/bench_a14_pagescan \
  --bench-json=bench/baselines/BENCH_a14_pagescan.json \
  --bench-repetitions="$repetitions"

echo "baselines updated:"
ls -l bench/baselines/
