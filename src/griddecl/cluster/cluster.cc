#include "griddecl/cluster/cluster.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <future>
#include <utility>

#include "griddecl/cluster/migrator.h"
#include "griddecl/cluster/repair.h"

namespace griddecl::cluster {

namespace {

/// SplitMix64 finalizer — the repo's standard deterministic hash (same
/// construction backoff jitter and fault schedules use).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from a hash of (seed, a, b).
double HashUnit(uint64_t seed, uint64_t a, uint64_t b) {
  const uint64_t h = Mix64(seed ^ Mix64(a ^ Mix64(b)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

Result<std::unique_ptr<Cluster>> Cluster::Create(const StorageEnv& seed,
                                                 ClusterOptions options) {
  if (options.num_nodes == 0) {
    return Status::InvalidArgument("cluster needs at least one node");
  }
  if (options.quorum_fraction < 0.0 || options.quorum_fraction >= 1.0) {
    return Status::InvalidArgument("quorum_fraction must be in [0, 1)");
  }
  if (options.hedge_factor <= 0.0 || options.hedge_min_ms < 0.0) {
    return Status::InvalidArgument("hedge parameters out of domain");
  }
  if (options.node.generation != 0) {
    return Status::InvalidArgument(
        "ClusterOptions::node.generation must be 0; nodes follow the "
        "cluster's committed generation");
  }
  GRIDDECL_RETURN_IF_ERROR(ValidateBreakerOptions(options.node_breaker));
  GRIDDECL_RETURN_IF_ERROR(ValidateHeartbeatOptions(options.heartbeat));
  if (options.retry_budget_per_query > (1u << 20) ||
      options.hedge_budget_fraction < 0.0) {
    return Status::InvalidArgument("budget options out of domain");
  }
  for (const NodeFaultWindow& w : options.node_windows) {
    if (w.node >= options.num_nodes) {
      return Status::InvalidArgument("node fault window names node " +
                                     std::to_string(w.node) + " of " +
                                     std::to_string(options.num_nodes));
    }
  }

  auto manifest = ReadCurrentManifest(seed);
  if (!manifest.ok()) return manifest.status();
  if (options.num_nodes > manifest.value().num_disks) {
    return Status::InvalidArgument(
        "more nodes than virtual disks: " + std::to_string(options.num_nodes) +
        " > " + std::to_string(manifest.value().num_disks));
  }

  // Resolve the placement spec: an explicit override wins, else the
  // manifest's persisted record, else chained over a flat topology —
  // exactly the pre-placement behavior.
  PlacementSpec spec;
  if (options.placement.has_value()) {
    spec = *options.placement;
  } else if (manifest.value().placement.has_value()) {
    auto from = FromManifestPlacement(*manifest.value().placement);
    if (!from.ok()) return from.status();
    spec = std::move(from).value();
  } else {
    spec.policy = PlacementPolicy::kChained;
    spec.topology = Topology::Flat(options.num_nodes);
    spec.seed = options.seed;
  }
  GRIDDECL_RETURN_IF_ERROR(spec.topology.Validate());
  if (spec.topology.num_nodes() != options.num_nodes) {
    return Status::InvalidArgument(
        "placement topology describes " +
        std::to_string(spec.topology.num_nodes()) + " nodes, cluster has " +
        std::to_string(options.num_nodes));
  }
  for (const ZoneFaultWindow& w : options.zone_windows) {
    if (w.zone >= spec.topology.num_zones()) {
      return Status::InvalidArgument(
          "zone fault window names zone " + std::to_string(w.zone) + " of " +
          std::to_string(spec.topology.num_zones()));
    }
  }

  auto files = seed.ListFiles();
  if (!files.ok()) return files.status();

  std::unique_ptr<Cluster> cluster(new Cluster());
  cluster->options_ = std::move(options);
  const ClusterOptions& opts = cluster->options_;
  cluster->placement_spec_ = std::move(spec);
  cluster->start_ = std::chrono::steady_clock::now();

  // One effective window list — node windows plus zone windows expanded
  // to their member nodes — shared by NodeAliveAt (routing) and the
  // FaultyEnv wildcard ranges (reads), so a zone kill is both routed
  // around and enforced at the storage layer.
  cluster->effective_windows_ = opts.node_windows;
  for (const ZoneFaultWindow& w : opts.zone_windows) {
    for (uint32_t n = 0; n < opts.num_nodes; ++n) {
      if (cluster->placement_spec_.topology.zone_of(n) == w.zone) {
        cluster->effective_windows_.push_back(
            NodeFaultWindow{n, w.from_ms, w.until_ms});
      }
    }
  }
  // Preallocate every slot up to max_nodes so AddNode never reallocates
  // state concurrent Execute calls index into.
  const uint32_t max_nodes = std::max(opts.max_nodes, opts.num_nodes);
  cluster->node_inflight_ =
      std::make_unique<std::atomic<int64_t>[]>(max_nodes);
  cluster->heartbeat_ =
      std::make_unique<HeartbeatDetector>(opts.heartbeat, max_nodes);

  std::vector<std::shared_ptr<serve::QueryService>> services;
  for (uint32_t n = 0; n < opts.num_nodes; ++n) {
    auto node = std::make_unique<Node>();
    for (const std::string& name : files.value()) {
      auto bytes = seed.ReadFile(name);
      if (!bytes.ok()) return bytes.status();
      GRIDDECL_RETURN_IF_ERROR(node->env.WriteFile(name, bytes.value()));
    }
    FaultyEnvOptions fo;
    fo.seed = opts.fault_seed + n;
    fo.transient_error_prob = opts.node_transient_prob;
    fo.max_transient_attempts = opts.node_max_transient_attempts;
    fo.latency_ms =
        n < opts.node_latency_ms.size() ? opts.node_latency_ms[n] : 0.0;
    for (const NodeFaultWindow& w : cluster->effective_windows_) {
      if (w.node != n) continue;
      fo.permanent.push_back(FaultRange{
          "", 0, std::numeric_limits<uint64_t>::max(), w.from_ms, w.until_ms});
    }
    auto faulty = FaultyEnv::Create(&node->env, std::move(fo));
    if (!faulty.ok()) return faulty.status();
    node->faulty = std::move(faulty.value());

    serve::ServeOptions so = opts.node;
    so.seed += n;  // decorrelate retry jitter across nodes
    auto service = serve::QueryService::Create(node->faulty.get(), so);
    if (!service.ok()) return service.status();
    node->service =
        std::shared_ptr<serve::QueryService>(std::move(service.value()));
    services.push_back(node->service);
    cluster->nodes_.push_back(std::move(node));
    cluster->heartbeat_->Track(n);
  }
  for (uint32_t n = opts.num_nodes; n < max_nodes; ++n) {
    // Empty growth slot: env/service materialize in AddNode. Killed until
    // then so no path ever routes to it.
    auto node = std::make_unique<Node>();
    node->killed.store(true);
    cluster->nodes_.push_back(std::move(node));
  }
  cluster->active_nodes_.store(opts.num_nodes);

  for (uint32_t n = 0; n < max_nodes; ++n) {
    cluster->node_breakers_.emplace_back(opts.node_breaker);
    cluster->node_query_ms_.emplace_back(obs::DefaultLatencyBoundsMs());
  }

  auto epoch =
      cluster->BuildEpoch(manifest.value().generation, std::move(services));
  if (!epoch.ok()) return epoch.status();
  cluster->epoch_ = std::move(epoch.value());

  // Self-colocation check: warn (loudly, once, at construction) about any
  // mirror relation whose placement puts two copies of some disk on one
  // node — the chained trap where a single node kill can take every
  // replica of a bucket down at once.
  for (const auto& [name, rel] : cluster->epoch_->routing->relations) {
    if (rel.copies < 2) continue;
    const std::vector<uint32_t> colocated =
        cluster->epoch_->placement.SelfColocatedDisks(rel.copies);
    if (colocated.empty()) continue;
    std::string disks;
    for (uint32_t d : colocated) {
      if (!disks.empty()) disks += ",";
      disks += std::to_string(d);
    }
    std::string warning =
        "placement warning: relation '" + name + "' (" +
        PlacementPolicyName(cluster->placement_spec_.policy) + ", copies=" +
        std::to_string(rel.copies) + ") co-locates copies of disk(s) " +
        disks + " on one node; a single node loss can drop those buckets";
    std::fprintf(stderr, "%s\n", warning.c_str());
    cluster->placement_warnings_.push_back(std::move(warning));
  }
  return cluster;
}

Cluster::~Cluster() = default;

Result<std::shared_ptr<const Cluster::Epoch>> Cluster::BuildEpoch(
    uint64_t generation,
    std::vector<std::shared_ptr<serve::QueryService>> services,
    const StorageEnv* src) const {
  // Live node envs hold identical catalog files by construction; a raw
  // MemEnv (not the faulty wrapper) keeps epoch builds fault-free. Node 0
  // by default; repair passes a live node because node 0 may be dead.
  const StorageEnv& env = src != nullptr ? *src : nodes_[0]->env;
  auto manifest = ReadManifest(env, generation);
  if (!manifest.ok()) return manifest.status();
  auto catalog = LoadCatalogFromManifest(env, manifest.value());
  if (!catalog.ok()) return catalog.status();

  auto routing = std::make_shared<Routing>(std::move(catalog.value()));
  for (const ManifestRelation& mr : manifest.value().relations) {
    const DeclusteredFile* df = routing->catalog.Find(mr.name);
    if (df == nullptr) {
      return Status::Internal("manifest relation missing from catalog: " +
                              mr.name);
    }
    const uint32_t copies =
        mr.redundancy.policy == RelationRedundancy::Policy::kMirror
            ? mr.redundancy.copies
            : 1;
    routing->relations.emplace(
        mr.name, EpochRelation{df, mr.redundancy, DiskMap::Build(df->method()),
                               copies});
  }

  auto epoch = std::make_shared<Epoch>();
  epoch->generation = manifest.value().generation;
  epoch->num_disks = manifest.value().num_disks;

  // Placement resolution per generation: a manifest record carrying an
  // explicit table is repair ground truth and wins outright (its row 0 IS
  // the disk ownership map); otherwise the cluster's current spec applies
  // with any stale table cleared (a migration changes M, invalidating old
  // tables) and contiguous disk ownership.
  PlacementSpec spec = placement_spec();
  if (manifest.value().placement.has_value() &&
      !manifest.value().placement->table.empty()) {
    auto from = FromManifestPlacement(*manifest.value().placement);
    if (!from.ok()) return from.status();
    spec = std::move(from).value();
  } else {
    spec.table.clear();
  }
  if (!spec.table.empty() && spec.table[0].size() == epoch->num_disks) {
    epoch->disk_node = spec.table[0];
  } else {
    spec.table.clear();
    epoch->disk_node.resize(epoch->num_disks);
    const uint64_t n = num_nodes();
    for (uint32_t d = 0; d < epoch->num_disks; ++d) {
      epoch->disk_node[d] = static_cast<uint32_t>(
          static_cast<uint64_t>(d) * n / epoch->num_disks);
    }
  }
  uint32_t max_copies = 1;
  for (const auto& [name, rel] : routing->relations) {
    max_copies = std::max(max_copies, rel.copies);
  }
  auto placement = PlacementMap::Build(spec, epoch->disk_node, max_copies);
  if (!placement.ok()) return placement.status();
  epoch->placement = std::move(placement).value();
  epoch->services = std::move(services);
  epoch->routing = std::move(routing);
  return std::shared_ptr<const Epoch>(std::move(epoch));
}

std::shared_ptr<const Cluster::Epoch> Cluster::CurrentEpoch() const {
  std::lock_guard<std::mutex> lock(epoch_mu_);
  return epoch_;
}

std::shared_ptr<const Cluster::Epoch> Cluster::StagingEpoch() const {
  std::lock_guard<std::mutex> lock(epoch_mu_);
  return staging_epoch_;
}

void Cluster::SetStagingEpoch(std::shared_ptr<const Epoch> epoch) {
  std::lock_guard<std::mutex> lock(epoch_mu_);
  staging_epoch_ = std::move(epoch);
}

void Cluster::AdoptEpoch(std::shared_ptr<const Epoch> epoch) {
  std::lock_guard<std::mutex> lock(epoch_mu_);
  // A repair epoch carries null services for the dead nodes it planned
  // around; those nodes re-enter through ReviveNode's catch-up fence.
  for (size_t n = 0; n < epoch->services.size() && n < nodes_.size(); ++n) {
    nodes_[n]->service = epoch->services[n];
  }
  epoch_ = std::move(epoch);
  staging_epoch_.reset();
}

uint32_t Cluster::num_disks() const { return CurrentEpoch()->num_disks; }

uint64_t Cluster::generation() const { return CurrentEpoch()->generation; }

std::vector<std::string> Cluster::RelationNames() const {
  auto epoch = CurrentEpoch();
  std::vector<std::string> names;
  names.reserve(epoch->routing->relations.size());
  for (const auto& [name, rel] : epoch->routing->relations) {
    names.push_back(name);
  }
  return names;
}

BreakerState Cluster::NodeBreakerState(uint32_t node) const {
  GRIDDECL_CHECK(node < node_breakers_.size());
  std::lock_guard<std::mutex> lock(breaker_mu_);
  return node_breakers_[node].state();
}

bool Cluster::NodeAlive(uint32_t node) const {
  return NodeAliveAt(node, virtual_now_ms_.load());
}

bool Cluster::NodeAliveAt(uint32_t node, double virtual_now) const {
  if (node >= num_nodes()) return false;
  if (nodes_[node]->killed.load() || nodes_[node]->removed.load()) {
    return false;
  }
  for (const NodeFaultWindow& w : effective_windows_) {
    if (w.node == node && virtual_now >= w.from_ms &&
        virtual_now < w.until_ms) {
      return false;
    }
  }
  return true;
}

bool Cluster::NodeWouldRefuse(uint32_t node) const {
  std::lock_guard<std::mutex> lock(breaker_mu_);
  return node_breakers_[node].WouldRefuse(SteadyNowMs());
}

bool Cluster::NodeAdmit(uint32_t node) {
  std::lock_guard<std::mutex> lock(breaker_mu_);
  return node_breakers_[node].AllowRequest(SteadyNowMs());
}

void Cluster::RecordNodeOutcome(uint32_t node, bool success) {
  std::lock_guard<std::mutex> lock(breaker_mu_);
  if (success) {
    node_breakers_[node].RecordSuccess(SteadyNowMs());
  } else {
    node_breakers_[node].RecordFailure(SteadyNowMs());
  }
}

void Cluster::ObserveNodeLatency(uint32_t node, double ms) {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  node_query_ms_[node].Observe(ms);
}

double Cluster::HedgeDelayMs(uint32_t node, uint64_t seq) const {
  if (!options_.hedging) return kInf;
  double base = options_.hedge_delay_ms;
  if (base < 0.0) {
    double p95 = 0.0;
    {
      std::lock_guard<std::mutex> lock(metrics_mu_);
      const obs::Histogram& h = node_query_ms_[node];
      if (h.count() >= 8) p95 = h.Percentile(95);
    }
    base = std::max(options_.hedge_min_ms, p95 * options_.hedge_factor);
  }
  // Up to 25% seeded jitter decorrelates hedges across concurrent queries.
  return base * (1.0 + 0.25 * HashUnit(options_.seed, node, seq));
}

double Cluster::SteadyNowMs() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

void Cluster::AdvanceTimeMs(double now_ms) {
  virtual_now_ms_.store(now_ms);
  const uint32_t active = num_nodes();
  for (uint32_t n = 0; n < active; ++n) {
    nodes_[n]->faulty->SetNowMs(now_ms);
  }
  // Drive the failure detector over every heartbeat tick in the advanced
  // span. The probe answers iff the node was reachable at that virtual
  // instant — a pure function of the kill/window schedule, so detector
  // verdicts are deterministic and replayable.
  std::lock_guard<std::mutex> lock(hb_mu_);
  heartbeat_->AdvanceTo(now_ms, [this](uint32_t n, double t) {
    if (n >= num_nodes()) return false;
    const Node& nd = *nodes_[n];
    if (nd.killed.load() || nd.removed.load()) return false;
    for (const NodeFaultWindow& w : effective_windows_) {
      if (w.node == n && t >= w.from_ms && t < w.until_ms) return false;
    }
    return true;
  });
}

std::vector<uint32_t> Cluster::DeadNodesForRepair() const {
  std::vector<uint32_t> dead;
  {
    std::lock_guard<std::mutex> lock(hb_mu_);
    dead = heartbeat_->DeadNodes();
  }
  const uint32_t active = num_nodes();
  for (uint32_t n = 0; n < active; ++n) {
    if (nodes_[n]->removed.load() &&
        std::find(dead.begin(), dead.end(), n) == dead.end()) {
      dead.push_back(n);
    }
  }
  std::sort(dead.begin(), dead.end());
  dead.erase(std::remove_if(dead.begin(), dead.end(),
                            [this](uint32_t n) { return n >= num_nodes(); }),
             dead.end());
  return dead;
}

double Cluster::NodeDeadSinceMs(uint32_t node) const {
  std::lock_guard<std::mutex> lock(hb_mu_);
  return heartbeat_->DeadSinceMs(node);
}

NodeHealth Cluster::NodeHealthOf(uint32_t node) const {
  if (node >= num_nodes()) return NodeHealth::kRemoved;
  if (nodes_[node]->removed.load()) return NodeHealth::kRemoved;
  std::lock_guard<std::mutex> lock(hb_mu_);
  return heartbeat_->HealthOf(node);
}

HeartbeatDetector::Counters Cluster::HeartbeatCounters() const {
  std::lock_guard<std::mutex> lock(hb_mu_);
  return heartbeat_->counters();
}

PlacementSpec Cluster::placement_spec() const {
  std::lock_guard<std::mutex> lock(spec_mu_);
  return placement_spec_;
}

void Cluster::SetPlacementTable(std::vector<std::vector<uint32_t>> table) {
  std::lock_guard<std::mutex> lock(spec_mu_);
  placement_spec_.table = std::move(table);
}

bool Cluster::AdmitExtraSub(bool is_hedge) {
  if (options_.hedge_budget_fraction <= 0.0) return true;
  const uint64_t extra = extra_subs_.fetch_add(1) + 1;
  const double cap = options_.hedge_budget_fraction *
                     static_cast<double>(primary_subs_.load());
  if (static_cast<double>(extra) > cap) {
    extra_subs_.fetch_sub(1);
    if (is_hedge) {
      hedge_budget_denied_.fetch_add(1);
    } else {
      retry_budget_denied_.fetch_add(1);
    }
    return false;
  }
  return true;
}

Status Cluster::KillNode(uint32_t node) {
  if (node >= num_nodes()) {
    return Status::InvalidArgument("no node " + std::to_string(node));
  }
  nodes_[node]->killed.store(true);
  return Status::Ok();
}

Status Cluster::ReviveNode(uint32_t node) {
  if (node >= num_nodes()) {
    return Status::InvalidArgument("no node " + std::to_string(node));
  }
  Node& nd = *nodes_[node];
  if (nd.removed.load()) {
    return Status::FailedPrecondition("node " + std::to_string(node) +
                                      " was decommissioned");
  }
  auto epoch = CurrentEpoch();

  // Catch-up fence: while the node was down a repair may have committed a
  // newer generation staged only to the live nodes, so this node's env
  // can lack CURRENT entirely. Copy the committed state from a live peer
  // before reloading the service — never readmit a stale route.
  auto current = ReadCurrentManifest(nd.env);
  if (!current.ok() || current.value().generation != epoch->generation) {
    int peer = -1;
    for (uint32_t p = 0; p < num_nodes(); ++p) {
      if (p == node || !NodeAlive(p)) continue;
      auto pm = ReadCurrentManifest(nodes_[p]->env);
      if (pm.ok() && pm.value().generation == epoch->generation) {
        peer = static_cast<int>(p);
        break;
      }
    }
    if (peer < 0) {
      std::lock_guard<std::mutex> lock(metrics_mu_);
      ++revive_fenced_;
      return Status::Unavailable(
          "no live peer at the committed generation to catch node " +
          std::to_string(node) + " up; revival refused");
    }
    auto files = nodes_[peer]->env.ListFiles();
    if (!files.ok()) return files.status();
    for (const std::string& name : files.value()) {
      auto bytes = nodes_[peer]->env.ReadFile(name);
      if (!bytes.ok()) return bytes.status();
      GRIDDECL_RETURN_IF_ERROR(nd.env.WriteFile(name, bytes.value()));
    }
    nd.service.reset();  // force a reload below — the catalog moved
    std::lock_guard<std::mutex> lock(metrics_mu_);
    ++revive_catchups_;
  }

  if (nd.service == nullptr || nd.service->generation() != epoch->generation) {
    // The cluster committed a newer generation while the node was down:
    // reload the node's service at CURRENT before readmitting it.
    serve::ServeOptions so = options_.node;
    so.seed += node;
    auto service = serve::QueryService::Create(nd.faulty.get(), so);
    if (!service.ok()) return service.status();
    if (service.value()->generation() != epoch->generation) {
      std::lock_guard<std::mutex> lock(metrics_mu_);
      ++revive_fenced_;
      return Status::Internal(
          "node " + std::to_string(node) +
          " reloaded at generation " +
          std::to_string(service.value()->generation()) +
          " but the cluster serves " + std::to_string(epoch->generation) +
          "; revival refused");
    }
    nd.service =
        std::shared_ptr<serve::QueryService>(std::move(service.value()));
    auto fresh = std::make_shared<Epoch>(*epoch);
    if (node < fresh->services.size()) {
      fresh->services[node] = nd.service;
    }
    std::lock_guard<std::mutex> lock(epoch_mu_);
    epoch_ = std::move(fresh);
  }
  nd.killed.store(false);
  {
    std::lock_guard<std::mutex> lock(hb_mu_);
    heartbeat_->Reset(node);
  }
  return Status::Ok();
}

Status Cluster::KillZone(uint32_t zone) {
  const PlacementSpec spec = placement_spec();
  if (zone >= spec.topology.num_zones()) {
    return Status::InvalidArgument("no zone " + std::to_string(zone));
  }
  for (uint32_t n = 0; n < num_nodes(); ++n) {
    if (spec.topology.zone_of(n) == zone) {
      GRIDDECL_RETURN_IF_ERROR(KillNode(n));
    }
  }
  return Status::Ok();
}

Status Cluster::ReviveZone(uint32_t zone) {
  const PlacementSpec spec = placement_spec();
  if (zone >= spec.topology.num_zones()) {
    return Status::InvalidArgument("no zone " + std::to_string(zone));
  }
  for (uint32_t n = 0; n < num_nodes(); ++n) {
    if (spec.topology.zone_of(n) == zone) {
      GRIDDECL_RETURN_IF_ERROR(ReviveNode(n));
    }
  }
  return Status::Ok();
}

Result<uint32_t> Cluster::AddNode(uint32_t rack, uint32_t zone) {
  std::lock_guard<std::mutex> lock(spec_mu_);
  const uint32_t id = active_nodes_.load();
  if (id >= nodes_.size()) {
    return Status::FailedPrecondition(
        "cluster is at max_nodes (" + std::to_string(nodes_.size()) +
        "); create with a larger ClusterOptions::max_nodes to grow");
  }
  Topology topo = placement_spec_.topology;
  if (rack > topo.num_racks()) {
    return Status::InvalidArgument(
        "rack " + std::to_string(rack) + " out of range (have " +
        std::to_string(topo.num_racks()) + " racks; == appends)");
  }
  if (rack == topo.num_racks()) {
    if (zone > topo.num_zones()) {
      return Status::InvalidArgument(
          "zone " + std::to_string(zone) + " out of range (have " +
          std::to_string(topo.num_zones()) + " zones; == opens a new one)");
    }
    topo.rack_zone.push_back(zone);
  } else if (zone != topo.rack_zone[rack]) {
    return Status::InvalidArgument(
        "rack " + std::to_string(rack) + " is in zone " +
        std::to_string(topo.rack_zone[rack]) + ", not " +
        std::to_string(zone));
  }
  topo.node_rack.push_back(rack);
  GRIDDECL_RETURN_IF_ERROR(topo.Validate());

  // Seed the new node's env from a live peer at the committed generation.
  auto epoch = CurrentEpoch();
  int peer = -1;
  for (uint32_t p = 0; p < id; ++p) {
    if (!NodeAlive(p)) continue;
    auto pm = ReadCurrentManifest(nodes_[p]->env);
    if (pm.ok() && pm.value().generation == epoch->generation) {
      peer = static_cast<int>(p);
      break;
    }
  }
  if (peer < 0) {
    return Status::Unavailable(
        "no live peer at the committed generation to seed the new node");
  }

  Node& nd = *nodes_[id];
  auto files = nodes_[peer]->env.ListFiles();
  if (!files.ok()) return files.status();
  for (const std::string& name : files.value()) {
    auto bytes = nodes_[peer]->env.ReadFile(name);
    if (!bytes.ok()) return bytes.status();
    GRIDDECL_RETURN_IF_ERROR(nd.env.WriteFile(name, bytes.value()));
  }
  FaultyEnvOptions fo;
  fo.seed = options_.fault_seed + id;
  fo.transient_error_prob = options_.node_transient_prob;
  fo.max_transient_attempts = options_.node_max_transient_attempts;
  fo.latency_ms = id < options_.node_latency_ms.size()
                      ? options_.node_latency_ms[id]
                      : 0.0;
  auto faulty = FaultyEnv::Create(&nd.env, std::move(fo));
  if (!faulty.ok()) return faulty.status();
  nd.faulty = std::move(faulty.value());
  nd.faulty->SetNowMs(virtual_now_ms_.load());
  serve::ServeOptions so = options_.node;
  so.seed += id;
  auto service = serve::QueryService::Create(nd.faulty.get(), so);
  if (!service.ok()) return service.status();
  nd.service =
      std::shared_ptr<serve::QueryService>(std::move(service.value()));

  // Publish: topology first, then the node (release on active_nodes_ so
  // any reader that sees the new count sees a fully built slot). Existing
  // placement is untouched — the new node takes traffic only after the
  // next Repair / Migrate re-places.
  placement_spec_.topology = std::move(topo);
  {
    auto fresh = std::make_shared<Epoch>(*epoch);
    fresh->services.push_back(nd.service);
    std::lock_guard<std::mutex> elock(epoch_mu_);
    epoch_ = std::move(fresh);
  }
  nd.killed.store(false);
  nd.removed.store(false);
  active_nodes_.store(id + 1);
  {
    std::lock_guard<std::mutex> hlock(hb_mu_);
    heartbeat_->Track(id);
  }
  {
    std::lock_guard<std::mutex> mlock(metrics_mu_);
    ++nodes_added_;
  }
  return id;
}

Status Cluster::RemoveNode(uint32_t node) {
  if (node >= num_nodes()) {
    return Status::InvalidArgument("no node " + std::to_string(node));
  }
  Node& nd = *nodes_[node];
  if (nd.removed.exchange(true)) {
    return Status::FailedPrecondition("node " + std::to_string(node) +
                                      " already removed");
  }
  nd.killed.store(true);
  removed_count_.fetch_add(1);
  {
    std::lock_guard<std::mutex> lock(hb_mu_);
    heartbeat_->MarkRemoved(node);
  }
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    ++nodes_removed_;
  }
  return Status::Ok();
}

ClusterQueryResult Cluster::Execute(const serve::QueryRequest& request) {
  const double t0 = SteadyNowMs();
  auto epoch = CurrentEpoch();
  ClusterQueryResult result =
      ExecuteOnEpoch(*epoch, request, /*allow_hedge=*/options_.hedging);

  // Live double-read while a migration's staging epoch is installed: run
  // every complete query against the new layout too and compare bytes. A
  // mismatch is divergence — flagged here, acted on by the migrator.
  auto staging = StagingEpoch();
  if (staging != nullptr && result.status.ok() && result.complete) {
    ClusterQueryResult shadow =
        ExecuteOnEpoch(*staging, request, /*allow_hedge=*/false);
    bool mismatch = false;
    if (shadow.status.ok() && shadow.complete &&
        shadow.matches != result.matches) {
      mismatch = true;
      divergence_.store(true);
    }
    std::lock_guard<std::mutex> lock(metrics_mu_);
    ++verify_reads_;
    if (mismatch) ++verify_mismatches_;
  }

  result.total_ms = SteadyNowMs() - t0;
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    ++queries_;
    if (!result.status.ok()) {
      ++failed_;
    } else if (result.complete) {
      ++complete_;
    } else {
      ++partial_;
    }
    sub_queries_ += result.sub_queries;
    hedges_fired_ += result.hedges_fired;
    hedge_wins_ += result.hedge_wins;
    hedges_cancelled_ += result.hedges_cancelled;
    rerouted_subqueries_ += result.rerouted_subqueries;
    unavailable_buckets_ += result.unavailable_buckets;
    query_ms_.Observe(result.total_ms);
  }
  return result;
}

ClusterQueryResult Cluster::ExecuteOnEpoch(const Epoch& epoch,
                                           const serve::QueryRequest& request,
                                           bool allow_hedge) {
  ClusterQueryResult result;
  result.generation = epoch.generation;
  const double vnow = virtual_now_ms_.load();

  // Quorum gate: with a majority (per quorum_fraction) of nodes down, a
  // "partial" result would be mostly holes — refuse loudly instead.
  // Decommissioned nodes leave the denominator: a shrunk cluster is not
  // permanently degraded.
  const uint32_t active = num_nodes();
  const uint32_t members = active - std::min(active, removed_count_.load());
  uint32_t alive = 0;
  for (uint32_t n = 0; n < active; ++n) {
    if (NodeAliveAt(n, vnow)) ++alive;
  }
  const uint32_t needed =
      static_cast<uint32_t>(std::floor(members * options_.quorum_fraction)) +
      1;
  if (alive < needed) {
    result.status = Status::Unavailable(
        "quorum lost: " + std::to_string(alive) + " of " +
        std::to_string(members) + " nodes alive, need " +
        std::to_string(needed));
    result.complete = false;
    result.availability = 0.0;
    std::lock_guard<std::mutex> lock(metrics_mu_);
    ++quorum_rejections_;
    return result;
  }

  auto it = epoch.routing->relations.find(request.relation);
  if (it == epoch.routing->relations.end()) {
    result.status = Status::NotFound("no relation " + request.relation);
    result.complete = false;
    return result;
  }
  const EpochRelation& rel = it->second;

  auto rq = rel.df->file().ResolveRange(request.lo, request.hi);
  if (!rq.ok()) {
    result.status = rq.status();
    result.complete = false;
    return result;
  }
  result.buckets_touched = rq.value().NumBuckets();

  std::vector<uint64_t> counts;
  rel.disk_map.CountsForRect(rq.value().rect(), counts);
  const uint32_t num_disks = epoch.num_disks;

  // Plan: one route per (node, copy). A disk whose owner is dead or
  // breaker-refused reroutes to the least-loaded alive replica-holding
  // node per the epoch's placement (ties to the lowest copy index, which
  // is the deterministic first-alive choice whenever loads are equal —
  // always the case single-threaded or at copies=2); plain and parity
  // relations lose those buckets — parity repairs a disk *within* a node,
  // not a whole node.
  std::map<std::pair<uint32_t, uint32_t>, Route> routes;
  for (uint32_t d = 0; d < num_disks; ++d) {
    if (counts[d] == 0) continue;
    const uint32_t owner = epoch.disk_node[d];
    uint32_t target_node = owner;
    uint32_t target_copy = 0;
    bool placed = NodeAliveAt(owner, vnow) && !NodeWouldRefuse(owner);
    if (!placed) {
      int64_t best_load = 0;
      for (uint32_t c = 1; c < rel.copies; ++c) {
        const uint32_t rn = epoch.placement.NodeOf(d, c);
        if (rn == owner || !NodeAliveAt(rn, vnow) || NodeWouldRefuse(rn)) {
          continue;
        }
        const int64_t load = node_inflight_[rn].load();
        if (!placed || load < best_load) {
          target_node = rn;
          target_copy = c;
          best_load = load;
          placed = true;
        }
      }
    }
    if (!placed) {
      result.unavailable_buckets += counts[d];
      result.winners.push_back('u');
      continue;
    }
    Route& r = routes[{target_node, target_copy}];
    r.node = target_node;
    r.copy = target_copy;
    r.disks.push_back(d);
    r.buckets += counts[d];
    r.rerouted = r.rerouted || target_copy != 0;
  }

  // Scatter everything up front so nodes work in parallel; routes whose
  // breaker admission or submit fails fall to the failover path below.
  struct InFlight {
    const Route* route = nullptr;
    std::future<serve::QueryResult> future;
    bool submitted = false;
  };
  auto make_sub = [&](const Route& route,
                      uint32_t copy) -> serve::QueryRequest {
    serve::QueryRequest sub;
    sub.relation = request.relation;
    sub.lo = request.lo;
    sub.hi = request.hi;
    sub.deadline_ms = request.deadline_ms;
    sub.disks = route.disks;
    sub.serve_copy = copy;
    sub.expected_generation = epoch.generation;
    return sub;
  };
  // In-flight load accounting: every submitted sub-query charges its
  // bucket count to the serving node until its future is consumed (or the
  // route finishes, for hedges dropped unread) — the signal the planner's
  // least-loaded replica choice balances on.
  std::vector<InFlight> flights;
  flights.reserve(routes.size());
  for (const auto& [key, route] : routes) {
    InFlight fl;
    fl.route = &route;
    // A repair epoch carries null services for the nodes it planned
    // around — planning already avoids them, but guard the submit.
    if (epoch.services[route.node] != nullptr && NodeAdmit(route.node)) {
      auto submitted =
          epoch.services[route.node]->Submit(make_sub(route, route.copy));
      if (submitted.ok()) {
        fl.future = std::move(submitted.value());
        fl.submitted = true;
        ++result.sub_queries;
        primary_subs_.fetch_add(1);
        node_inflight_[route.node].fetch_add(
            static_cast<int64_t>(route.buckets));
      }
    }
    if (route.rerouted) ++result.rerouted_subqueries;
    flights.push_back(std::move(fl));
  }

  // Gather in deterministic route order.
  const uint64_t seq = query_seq_.fetch_add(1);
  uint32_t retries_used = 0;
  for (InFlight& fl : flights) {
    const Route& route = *fl.route;
    auto resubmit = [&](uint32_t node, uint32_t copy)
        -> Result<std::future<serve::QueryResult>> {
      if (epoch.services[node] == nullptr) {
        return Status::Unavailable("no service on node");
      }
      if (!NodeAdmit(node)) {
        return Status::Unavailable("node breaker open");
      }
      auto f = epoch.services[node]->Submit(make_sub(route, copy));
      if (f.ok()) ++result.sub_queries;
      return f;
    };
    auto take = [&](const serve::QueryResult& r) {
      result.matches.insert(result.matches.end(), r.matches.begin(),
                            r.matches.end());
    };
    // The deterministic first-replica target: the node holding the next
    // alive copy of the route's first disk. Hedge and first failover both
    // go here, so "served by the first replica" has one winner letter
    // ('h') whether the attempt launched before or after the primary
    // failed — that keeps winners schedule-deterministic under
    // kPrimaryPreferred.
    uint32_t alt_node = route.node;
    uint32_t alt_copy = 0;
    if (rel.copies > 1 && !route.disks.empty()) {
      const uint32_t d0 = route.disks.front();
      for (uint32_t c = 1; c < rel.copies; ++c) {
        const uint32_t rn = epoch.placement.NodeOf(d0, c);
        if (rn != route.node && NodeAliveAt(rn, vnow) &&
            !NodeWouldRefuse(rn)) {
          alt_node = rn;
          alt_copy = c;
          break;
        }
      }
    }
    const bool have_alt = alt_copy != 0;

    bool route_served = false;
    bool primary_failed_observed = false;
    std::future<serve::QueryResult> hedge;
    bool hedge_fired = false;
    bool hedge_failed_observed = false;

    if (fl.submitted) {
      const double delay = allow_hedge && route.copy == 0 && have_alt
                               ? HedgeDelayMs(route.node, seq)
                               : kInf;
      if (std::isfinite(delay)) {
        const auto wait = std::chrono::duration<double, std::milli>(delay);
        if (fl.future.wait_for(wait) != std::future_status::ready &&
            AdmitExtraSub(/*is_hedge=*/true)) {
          auto h = resubmit(alt_node, alt_copy);
          if (h.ok()) {
            hedge = std::move(h.value());
            hedge_fired = true;
            ++result.hedges_fired;
            node_inflight_[alt_node].fetch_add(
                static_cast<int64_t>(route.buckets));
          }
        }
      }
      if (options_.hedge_policy == HedgePolicy::kFirstSuccess && hedge_fired) {
        // Race primary vs hedge; the first success wins and the loser's
        // future is dropped unread (cooperative cancel: never merged,
        // never fed to the breakers).
        bool primary_done = false;
        bool hedge_done = false;
        serve::QueryResult pr;
        serve::QueryResult hr;
        const auto slice = std::chrono::microseconds(50);
        while (!route_served && !(primary_done && hedge_done)) {
          if (!primary_done &&
              fl.future.wait_for(slice) == std::future_status::ready) {
            pr = fl.future.get();
            primary_done = true;
            RecordNodeOutcome(route.node, pr.status.ok());
            ObserveNodeLatency(route.node, pr.total_ms);
            if (pr.status.ok()) {
              take(pr);
              result.winners.push_back('p');
              if (!hedge_done) ++result.hedges_cancelled;
              route_served = true;
              break;
            }
            primary_failed_observed = true;
          }
          if (!hedge_done && hedge.wait_for(std::chrono::seconds(0)) ==
                                 std::future_status::ready) {
            hedge_done = true;
            hr = hedge.get();
            RecordNodeOutcome(alt_node, hr.status.ok());
            ObserveNodeLatency(alt_node, hr.total_ms);
            if (hr.status.ok()) {
              take(hr);
              ++result.hedge_wins;
              result.winners.push_back('h');
              route_served = true;
              break;
            }
            hedge_failed_observed = true;
          }
          if (primary_done && !hedge_done) {
            // Primary failed and only the hedge remains: block on it.
            hr = hedge.get();
            hedge_done = true;
            RecordNodeOutcome(alt_node, hr.status.ok());
            ObserveNodeLatency(alt_node, hr.total_ms);
            if (hr.status.ok()) {
              take(hr);
              ++result.hedge_wins;
              result.winners.push_back('h');
              route_served = true;
            } else {
              hedge_failed_observed = true;
            }
          }
        }
      } else {
        // kPrimaryPreferred (or no hedge in flight): the primary's result
        // is authoritative whenever it succeeds, so winner selection is a
        // pure function of the fault schedule.
        serve::QueryResult pr = fl.future.get();
        RecordNodeOutcome(route.node, pr.status.ok());
        ObserveNodeLatency(route.node, pr.total_ms);
        if (pr.status.ok()) {
          if (hedge_fired) ++result.hedges_cancelled;
          take(pr);
          result.winners.push_back('p');
          route_served = true;
        } else {
          primary_failed_observed = true;
          if (hedge_fired) {
            serve::QueryResult hr = hedge.get();
            RecordNodeOutcome(alt_node, hr.status.ok());
            ObserveNodeLatency(alt_node, hr.total_ms);
            if (hr.status.ok()) {
              take(hr);
              ++result.hedge_wins;
              result.winners.push_back('h');
              route_served = true;
            } else {
              hedge_failed_observed = true;
            }
          }
        }
      }
    }
    (void)primary_failed_observed;
    // The route's in-flight charges are settled here whether its futures
    // were consumed or dropped (a cancelled hedge's work is nearly done
    // by the time its future is discarded).
    if (fl.submitted) {
      node_inflight_[route.node].fetch_sub(
          static_cast<int64_t>(route.buckets));
    }
    if (hedge_fired) {
      node_inflight_[alt_node].fetch_sub(static_cast<int64_t>(route.buckets));
    }
    if (route_served) continue;

    // Failover: the primary (and any hedge) failed or was never
    // submitted. Try the deterministic first replica unless it already
    // failed as the hedge, then the remaining copies in order.
    for (uint32_t c = 1; c < rel.copies && !route_served; ++c) {
      if (route.disks.empty()) break;
      if (hedge_failed_observed && c == alt_copy) continue;
      const uint32_t rn = epoch.placement.NodeOf(route.disks.front(), c);
      if (rn == route.node || !NodeAliveAt(rn, vnow)) continue;
      // Retry budgets: a per-query cap on failover resubmits, then the
      // cluster-wide extra-sub-query budget. Both default off.
      if (options_.retry_budget_per_query > 0 &&
          retries_used >= options_.retry_budget_per_query) {
        retry_budget_denied_.fetch_add(1);
        break;
      }
      if (!AdmitExtraSub(/*is_hedge=*/false)) break;
      ++retries_used;
      auto f = resubmit(rn, c);
      if (!f.ok()) continue;
      node_inflight_[rn].fetch_add(static_cast<int64_t>(route.buckets));
      serve::QueryResult fr = f.value().get();
      node_inflight_[rn].fetch_sub(static_cast<int64_t>(route.buckets));
      RecordNodeOutcome(rn, fr.status.ok());
      ObserveNodeLatency(rn, fr.total_ms);
      if (fr.status.ok()) {
        take(fr);
        ++result.rerouted_subqueries;
        result.winners.push_back(c == alt_copy ? 'h' : 'r');
        route_served = true;
      }
    }
    if (!route_served) {
      result.unavailable_buckets += route.buckets;
      result.winners.push_back('u');
    }
  }

  // Merge: sub-queries cover disjoint primary-disk sets, so their match
  // sets are disjoint; one sort restores global record-id order.
  std::sort(result.matches.begin(), result.matches.end());

  if (result.buckets_touched > 0) {
    result.availability =
        1.0 - static_cast<double>(result.unavailable_buckets) /
                  static_cast<double>(result.buckets_touched);
  }
  result.complete = result.unavailable_buckets == 0;
  if (!result.complete &&
      result.unavailable_buckets == result.buckets_touched &&
      result.buckets_touched > 0) {
    result.status = Status::Unavailable("no live route to any touched bucket");
    result.matches.clear();
    result.availability = 0.0;
  } else {
    result.status = Status::Ok();
  }
  return result;
}

Result<MigrationReport> Cluster::Migrate(const MigrationOptions& options) {
  bool expected = false;
  if (!migrating_.compare_exchange_strong(expected, true)) {
    return Status::FailedPrecondition("a migration is already running");
  }
  abort_migration_.store(false);
  divergence_.store(false);
  Migrator migrator(this);
  auto report = migrator.Run(options);
  SetStagingEpoch(nullptr);
  migrating_.store(false);
  if (report.ok()) {
    if (report.value().committed) {
      // A migration re-places by policy under the new disk count; any
      // explicit repair table from before it is stale now.
      SetPlacementTable({});
    }
    std::lock_guard<std::mutex> lock(metrics_mu_);
    if (report.value().committed) {
      ++migrations_committed_;
    } else {
      ++migrations_aborted_;
    }
    migration_buckets_copied_ += report.value().buckets_copied;
  }
  return report;
}

Result<RepairReport> Cluster::Repair(const RepairOptions& options) {
  bool expected = false;
  if (!migrating_.compare_exchange_strong(expected, true)) {
    return Status::FailedPrecondition(
        "a migration or repair is already running");
  }
  abort_migration_.store(false);
  divergence_.store(false);
  Repairer repairer(this);
  auto report = repairer.Run(options);
  SetStagingEpoch(nullptr);
  migrating_.store(false);
  if (report.ok()) {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    if (report.value().committed) {
      ++repairs_committed_;
      repair_replicas_rebuilt_ += report.value().replicas_retargeted;
      repair_bytes_copied_ += report.value().bytes_copied;
    } else if (!report.value().already_healthy) {
      ++repairs_aborted_;
    }
  }
  return report;
}

void Cluster::SnapshotMetrics(obs::MetricsRegistry* out) const {
  if (out == nullptr) return;
  std::lock_guard<std::mutex> lock(metrics_mu_);
  const auto set = [out](const char* name, uint64_t v) {
    obs::Counter* c = out->GetCounter(name);
    c->Reset();
    c->Inc(v);
  };
  set("cluster.queries", queries_);
  set("cluster.complete", complete_);
  set("cluster.partial", partial_);
  set("cluster.failed", failed_);
  set("cluster.sub_queries", sub_queries_);
  set("cluster.hedges_fired", hedges_fired_);
  set("cluster.hedge_wins", hedge_wins_);
  set("cluster.hedges_cancelled", hedges_cancelled_);
  set("cluster.rerouted_subqueries", rerouted_subqueries_);
  set("cluster.unavailable_buckets", unavailable_buckets_);
  set("cluster.quorum_rejections", quorum_rejections_);
  set("cluster.verify_reads", verify_reads_);
  set("cluster.verify_mismatches", verify_mismatches_);
  set("cluster.migrations_committed", migrations_committed_);
  set("cluster.migrations_aborted", migrations_aborted_);
  set("cluster.migration_buckets_copied", migration_buckets_copied_);
  set("cluster.repairs_committed", repairs_committed_);
  set("cluster.repairs_aborted", repairs_aborted_);
  set("cluster.repair_replicas_rebuilt", repair_replicas_rebuilt_);
  set("cluster.repair_bytes_copied", repair_bytes_copied_);
  set("cluster.revive_catchups", revive_catchups_);
  set("cluster.revive_fenced", revive_fenced_);
  set("cluster.nodes_added", nodes_added_);
  set("cluster.nodes_removed", nodes_removed_);
  set("cluster.hedge_budget_denied", hedge_budget_denied_.load());
  set("cluster.retry_budget_denied", retry_budget_denied_.load());
  {
    HeartbeatDetector::Counters hb;
    {
      std::lock_guard<std::mutex> hlock(hb_mu_);
      hb = heartbeat_->counters();
    }
    set("cluster.heartbeat.beats", hb.beats);
    set("cluster.heartbeat.missed", hb.missed);
    set("cluster.heartbeat.suspected", hb.suspected);
    set("cluster.heartbeat.died", hb.died);
    set("cluster.heartbeat.recovered", hb.recovered);
  }
  obs::Histogram* h = out->GetHistogram("cluster.query_ms", query_ms_.bounds());
  h->Reset();
  h->Merge(query_ms_);

  BreakerCounters totals;
  {
    std::lock_guard<std::mutex> block(breaker_mu_);
    for (const auto& b : node_breakers_) {
      totals.opened += b.counters().opened;
      totals.half_opened += b.counters().half_opened;
      totals.closed += b.counters().closed;
      totals.reopened += b.counters().reopened;
    }
  }
  set("cluster.node_breaker.opened", totals.opened);
  set("cluster.node_breaker.half_opened", totals.half_opened);
  set("cluster.node_breaker.closed", totals.closed);
  set("cluster.node_breaker.reopened", totals.reopened);
}

}  // namespace griddecl::cluster
