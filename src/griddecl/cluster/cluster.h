#ifndef GRIDDECL_CLUSTER_CLUSTER_H_
#define GRIDDECL_CLUSTER_CLUSTER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "griddecl/cluster/heartbeat.h"
#include "griddecl/cluster/placement.h"
#include "griddecl/common/status.h"
#include "griddecl/eval/disk_map.h"
#include "griddecl/gridfile/catalog.h"
#include "griddecl/gridfile/faulty_env.h"
#include "griddecl/gridfile/manifest.h"
#include "griddecl/gridfile/storage_env.h"
#include "griddecl/obs/metrics.h"
#include "griddecl/serve/circuit_breaker.h"
#include "griddecl/serve/service.h"
#include "griddecl/sim/faults.h"

/// \file
/// Multi-node scatter-gather over the single-node query service.
///
/// A `Cluster` simulates N nodes. Each node owns a contiguous slice of the
/// catalog's M virtual disks (node k owns [k*M/N, (k+1)*M/N)), a private
/// `MemEnv` materialization of the committed catalog, a `FaultyEnv` that
/// can crash the whole node on a seeded schedule (`NodeFaultWindow` ->
/// wildcard fault ranges, sim/faults.h), and a `serve::QueryService` over
/// that env. Ownership is a *routing* convention: every node's env holds
/// every file, so re-owning a disk never moves bytes — exactly the virtual
/// fault-domain model serve already uses, lifted one level.
///
/// The coordinator (`Execute`, caller-thread, concurrency-safe) plans one
/// sub-query per (node, copy) from the relation's `DiskMap`, scatters them
/// tagged with the routing epoch's catalog generation (the fence), and
/// gathers:
///
///  * **Quorum-aware degraded routing.** A sub-query for a dead or
///    breaker-refused node reroutes to a replica-holding node of each
///    affected disk, per the epoch's `PlacementMap` (cluster/placement.h:
///    chained `(d+c) mod M`, spread, or zone_aware, as recorded in the
///    manifest). Among the alive replica holders the coordinator picks the
///    *least-loaded* one (fewest in-flight bucket reads, ties to the
///    lowest copy index — which degenerates to the deterministic
///    first-alive choice at copies=2 or single-threaded). Buckets with no
///    live route are reported, not served: the query returns a partial
///    result with an explicit `availability` fraction instead of failing.
///    Below quorum (alive nodes <= quorum_fraction * N) the cluster
///    refuses outright with kUnavailable. Whole failure domains die
///    together via `ZoneFaultWindow` schedules or imperative `KillZone`.
///  * **Hedged requests.** When a primary sub-query is still running after
///    a per-node hedge delay — the node's observed sub-query p95 times
///    `hedge_factor`, plus seeded jitter, floored at `hedge_min_ms`, or a
///    fixed `hedge_delay_ms` — the coordinator re-issues it to a
///    replica-holding node with `serve_copy` pinned to that node's copy.
///    `HedgePolicy::kFirstSuccess` takes whichever completes first
///    (tail-latency mode); `kPrimaryPreferred` always takes the primary's
///    result when the primary succeeds, making *winner selection* a pure
///    function of the fault schedule (the determinism property tests run
///    this mode). Result BYTES are identical either way — mirror copies
///    are byte-identical and serve outcomes are schedule-determined — so
///    the policies differ only in which route's latency you pay and which
///    counter ticks. The loser is cancelled cooperatively: its result is
///    discarded and never merged, never fed to breakers.
///  * **Node-level failure detection.** One circuit breaker per node, fed
///    one outcome per observed primary sub-query completion. An open
///    breaker removes the node from planning exactly like a death, until
///    its half-open probe heals it.
///  * **Live migration.** `Migrate` (cluster/migrator.h) copies the
///    catalog to a staged generation under a new method / disk count while
///    `Execute` keeps serving, double-reads old vs new layouts, and cuts
///    over atomically via the manifest generation fence. While a staging
///    epoch is installed, every complete query is double-read against it
///    and byte-compared — a mismatch flags divergence and aborts the
///    migration, never serves mixed data.
///
/// ## Determinism contract
///
/// With seeded FaultyEnvs, `hedge_policy = kPrimaryPreferred`, node
/// breakers pinned open once tripped, per-node services configured per the
/// serve determinism contract, and a fixed kill/window schedule, each
/// query's outcome — status, completeness, matches, unavailable-bucket
/// count, and per-route winner selection — is a pure function of the
/// schedule, independent of how many coordinator threads call Execute.
/// Latencies, hedge firing counts and pool hits may vary; the property
/// test asserts outcomes and winners only. Under `kFirstSuccess`, winner
/// selection becomes timing-dependent (that is its purpose) but matches
/// are still byte-identical.

namespace griddecl::cluster {

/// Who wins when a hedge and its primary both complete. See file comment.
enum class HedgePolicy {
  /// First successful completion wins — minimizes tail latency.
  kFirstSuccess,
  /// The primary wins whenever it succeeds; the hedge only covers primary
  /// failure. Winner selection is schedule-deterministic.
  kPrimaryPreferred,
};

struct ClusterOptions {
  uint32_t num_nodes = 4;
  /// Slot capacity for topology growth (`AddNode`). 0 = num_nodes (no
  /// growth). Node slots beyond num_nodes are preallocated empty so adding
  /// a node never reallocates state concurrent Execute calls read.
  uint32_t max_nodes = 0;
  /// Per-node service template. `seed` is offset by the node index so
  /// retry jitter decorrelates across nodes; `generation` must stay 0
  /// (nodes follow the cluster's committed generation).
  serve::ServeOptions node;
  /// Node-level breaker (distinct from the per-disk breakers inside each
  /// node's service).
  BreakerOptions node_breaker;

  bool hedging = true;
  HedgePolicy hedge_policy = HedgePolicy::kFirstSuccess;
  /// Fixed hedge delay in ms; < 0 selects the adaptive per-node-p95 delay.
  /// 0 hedges immediately (useful in tests).
  double hedge_delay_ms = -1.0;
  /// Adaptive mode: delay = max(hedge_min_ms, p95 * hedge_factor) plus up
  /// to 25% seeded jitter.
  double hedge_factor = 3.0;
  double hedge_min_ms = 0.2;

  /// Execute refuses (kUnavailable) unless alive > num_nodes * fraction.
  double quorum_fraction = 0.5;

  /// Per-query cap on failover resubmits (post-failure reroutes). 0 =
  /// unlimited (the default; preserves the determinism contract).
  uint32_t retry_budget_per_query = 0;
  /// Cluster-wide cap on extra sub-queries (hedges + failover retries) as
  /// a fraction of primary sub-queries submitted so far: a storm of
  /// retries cannot more than (1 + fraction)x the offered load. 0 =
  /// unlimited (the default). The budget is a cluster-lifetime ratio
  /// enforced with atomics, so under concurrency admission is approximate
  /// by design.
  double hedge_budget_fraction = 0.0;

  /// Virtual-clock failure detector driven by AdvanceTimeMs; see
  /// cluster/heartbeat.h. Repair acts on detector-dead nodes only.
  HeartbeatOptions heartbeat;

  /// Seed for hedge jitter.
  uint64_t seed = 0;

  /// Replica-placement override. Absent = the catalog manifest's
  /// placement record, or chained over a flat topology when the manifest
  /// predates placement — exactly the pre-placement behavior. When set,
  /// the topology's node count must equal num_nodes.
  std::optional<PlacementSpec> placement;

  /// Whole-node crash windows, evaluated against the virtual clock
  /// (`AdvanceTimeMs`). A node inside a window is routed around AND its
  /// env fails every read (wildcard FaultRange).
  std::vector<NodeFaultWindow> node_windows;
  /// Whole-zone crash windows: expanded against the placement topology
  /// into one NodeFaultWindow per member node at Create.
  std::vector<ZoneFaultWindow> zone_windows;
  /// Per-node injected read latency in ms (index = node id, missing = 0).
  /// The knob the slow-node hedging benchmark turns.
  std::vector<double> node_latency_ms;
  /// Per-node transient-fault injection, forwarded to each FaultyEnv.
  double node_transient_prob = 0.0;
  uint32_t node_max_transient_attempts = 3;
  uint64_t fault_seed = 0;
};

/// Outcome of one cluster query. Contract: `status` is kOk with `complete
/// = true` and full matches, kOk with `complete = false` and an explicit
/// availability deficit (quorum-degraded partial — never silently short),
/// or an error with no matches.
struct ClusterQueryResult {
  Status status;
  bool complete = true;
  uint64_t buckets_touched = 0;
  uint64_t unavailable_buckets = 0;
  /// Served fraction of touched buckets (1.0 when complete).
  double availability = 1.0;
  std::vector<RecordId> matches;

  uint64_t sub_queries = 0;
  uint64_t hedges_fired = 0;
  uint64_t hedge_wins = 0;
  uint64_t hedges_cancelled = 0;
  /// Sub-queries planned or failed over to a replica-holding node.
  uint64_t rerouted_subqueries = 0;
  /// Catalog generation the query was served at.
  uint64_t generation = 0;
  /// How each slice of the plan was finally served: one 'u' per disk
  /// dropped at plan time (no alive owner or replica holder), then one
  /// letter per route in route order — 'p' primary, 'h' hedge, 'r'
  /// post-failure reroute, 'u' every failover exhausted at gather time.
  /// Deterministic under kPrimaryPreferred; part of the property-test
  /// fingerprint.
  std::string winners;
  double total_ms = 0.0;
};

struct MigrationOptions {
  /// Registry name of the target declustering method.
  std::string new_method;
  /// Target virtual-disk count M'.
  uint32_t new_num_disks = 0;
  /// Double-read sample run old-vs-new before cutover. Empty = a default
  /// sample (full-range plus quadrant queries per relation).
  std::vector<serve::QueryRequest> verify_requests;
  /// Pages copied between abort checks during the copy phase.
  uint32_t copy_batch_pages = 64;
  /// Copy-phase pacing budget in bytes/sec (token bucket against the wall
  /// clock): the migrating thread sleeps whenever the copied bytes run
  /// ahead of the budget, so bulk copy traffic fits inside spare bandwidth
  /// instead of saturating the device concurrent queries share. 0 =
  /// unpaced (copy as fast as possible).
  double copy_bytes_per_sec = 0.0;
  /// Simulated copy-device throughput in bytes/sec: each copied file
  /// charges size/rate of wall-clock transfer time, so the copy phase has
  /// real duration for concurrent traffic to overlap. 0 = instantaneous
  /// (the pre-pacing behavior).
  double copy_device_bytes_per_sec = 0.0;
  /// Extra per-read latency (ms) injected on EVERY node for the duration
  /// of an *unpaced* copy phase — the contention an unthrottled bulk copy
  /// inflicts on concurrent queries at the shared device. A paced copy
  /// (copy_bytes_per_sec > 0) fits in spare bandwidth and injects
  /// nothing. 0 disables the contention model.
  double copy_contention_ms = 0.0;
  /// Test hook: called at phase boundaries ("copy", "staged", "verify",
  /// "commit", "committed") on the migrating thread. Kills injected here
  /// exercise the abort paths deterministically.
  std::function<void(const std::string&)> on_phase;
};

struct MigrationReport {
  bool committed = false;
  /// Set when `committed` is false: why the migration aborted. An aborted
  /// migration leaves the old generation fully intact and serving.
  std::string abort_reason;
  uint64_t old_generation = 0;
  uint64_t new_generation = 0;
  uint64_t buckets_copied = 0;
  uint64_t files_copied = 0;
  /// Payload bytes moved by the copy phase (each file counted once, not
  /// per node — one read fanned out to N writes).
  uint64_t bytes_copied = 0;
  /// Total wall-clock milliseconds the copy phase slept to stay under
  /// `copy_bytes_per_sec`. 0 when unpaced.
  double pacing_wait_ms = 0.0;
  uint64_t verify_queries = 0;
  uint64_t verify_mismatches = 0;
};

/// One paced, staged re-replication repair run; see cluster/repair.h for
/// the planner and executor. Shares the migration machinery: token-bucket
/// pacing, contention modeling, staged-manifest protocol, live double-read
/// verify, fenced cutover.
struct RepairOptions {
  /// Copy-phase pacing budget in bytes/sec; 0 = unpaced. Semantics match
  /// MigrationOptions::copy_bytes_per_sec, but repair charges only the
  /// *rebuilt share* of each file (retargeted replicas / total replicas).
  double copy_bytes_per_sec = 0.0;
  /// Simulated copy-device throughput in bytes/sec; 0 = instantaneous.
  double copy_device_bytes_per_sec = 0.0;
  /// Extra per-read latency (ms) on every live node while an *unpaced*
  /// repair copies; 0 disables the contention model.
  double copy_contention_ms = 0.0;
  /// Double-read sample run old-vs-repaired before cutover. Empty = the
  /// default sample (full-range plus half-range queries per relation).
  std::vector<serve::QueryRequest> verify_requests;
  /// Test hook: phase boundaries ("plan", "copy", "staged", "verify",
  /// "commit", "committed") on the repairing thread.
  std::function<void(const std::string&)> on_phase;
};

struct RepairReport {
  bool committed = false;
  /// The cluster was already fully placed: nothing to do, no new
  /// generation. Reported with committed = false and no abort_reason.
  bool already_healthy = false;
  /// Set when committed is false and not already_healthy: why the repair
  /// aborted. An aborted repair leaves the old generation serving and
  /// drops every staged file — placement is exactly what it was.
  std::string abort_reason;
  uint64_t old_generation = 0;
  uint64_t new_generation = 0;
  /// Nodes the repair planned around (detector-dead plus removed).
  std::vector<uint32_t> dead_nodes;
  /// (disk, copy) replica assignments moved off dead/removed nodes or
  /// re-spread across zones.
  uint64_t replicas_retargeted = 0;
  uint64_t files_copied = 0;
  /// Modeled rebuilt bytes (file sizes scaled by the rebuilt share).
  uint64_t bytes_copied = 0;
  double pacing_wait_ms = 0.0;
  uint64_t verify_queries = 0;
  uint64_t verify_mismatches = 0;
  /// Redundancy-restored-by, virtual clock: commit-time virtual now minus
  /// the earliest heartbeat death among the repaired nodes. 0 when no
  /// repaired node had a detector death timestamp.
  double mttr_virtual_ms = 0.0;
  /// Wall-clock repair duration (plan to commit).
  double mttr_wall_ms = 0.0;
};

class Migrator;
class Repairer;

/// N simulated nodes + coordinator; see file comment. Thread-safe:
/// Execute may be called from any number of threads, concurrently with
/// KillNode / AdvanceTimeMs / Migrate / Repair.
class Cluster {
 public:
  /// Materializes `seed` (a committed catalog env) into every node and
  /// starts the per-node services. Requires num_nodes >= 1 and
  /// num_nodes <= the catalog's disk count.
  static Result<std::unique_ptr<Cluster>> Create(const StorageEnv& seed,
                                                 ClusterOptions options);

  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Scatter-gather one query; see file comment for the routing rules.
  ClusterQueryResult Execute(const serve::QueryRequest& request);

  /// Imperative node death: the node is routed around from now on.
  /// (Schedule-driven deaths use ClusterOptions::node_windows instead.)
  Status KillNode(uint32_t node);
  /// Revives a killed node behind a catch-up fence: when the cluster
  /// committed a newer generation while the node was down (a repair stages
  /// only to live nodes), the node's env is first caught up from a live
  /// peer at CURRENT and its service force-reloaded; if no live peer can
  /// supply CURRENT the revival is refused (the node stays dead) rather
  /// than readmitting a stale route.
  Status ReviveNode(uint32_t node);
  /// Kills / revives every node in the placement topology's zone `zone`
  /// at once — the imperative form of a ZoneFaultWindow.
  Status KillZone(uint32_t zone);
  Status ReviveZone(uint32_t zone);

  /// Advances the virtual clock all node fault windows are evaluated
  /// against (monotonically, by convention).
  void AdvanceTimeMs(double now_ms);
  double VirtualNowMs() const { return virtual_now_ms_.load(); }

  /// Live re-declustering; see cluster/migrator.h. One at a time; returns
  /// kFailedPrecondition when a migration is already running. A
  /// non-committed report (clean abort) is an Ok result.
  Result<MigrationReport> Migrate(const MigrationOptions& options);
  /// Requests a clean abort of the running migration or repair (no-op
  /// when idle).
  void AbortMigration() { abort_migration_.store(true); }

  /// Paced re-replication repair; see cluster/repair.h. Diffs the current
  /// placement against the live topology (heartbeat-dead plus removed
  /// nodes), re-targets lost / zone-violating replicas zone-aware, stages
  /// the repaired placement to the live nodes, verifies, and commits
  /// behind the generation fence. Mutually exclusive with Migrate (same
  /// single-flight slot). A clean abort is an Ok, non-committed report.
  Result<RepairReport> Repair(const RepairOptions& options);

  /// Grows the cluster by one node in rack `rack` (== num_racks appends a
  /// new rack in zone `zone`; `zone` == num_zones then opens a new zone).
  /// The node's env is seeded from a live peer at CURRENT; existing
  /// placement is untouched until the next Repair/Migrate re-places.
  /// Returns the new node id. Requires a free slot (ClusterOptions::
  /// max_nodes) and a live peer.
  Result<uint32_t> AddNode(uint32_t rack, uint32_t zone);
  /// Marks a node as permanently decommissioned: it is routed around like
  /// a death, excluded from quorum, and the next Repair evacuates every
  /// replica assignment it held. Irreversible (ReviveNode refuses).
  Status RemoveNode(uint32_t node);

  /// Heartbeat verdict for `node` (kRemoved when out of range).
  NodeHealth NodeHealthOf(uint32_t node) const;
  HeartbeatDetector::Counters HeartbeatCounters() const;

  uint32_t num_nodes() const { return active_nodes_.load(); }
  uint32_t num_disks() const;
  /// Committed catalog generation the current routing epoch serves.
  uint64_t generation() const;
  std::vector<std::string> RelationNames() const;
  /// True while a staging epoch is installed (double-read window).
  bool migrating() const { return migrating_.load(); }

  BreakerState NodeBreakerState(uint32_t node) const;
  bool NodeAlive(uint32_t node) const;

  /// The placement spec the cluster currently routes by: resolved at
  /// Create (override > manifest record > chained over a flat topology),
  /// extended by AddNode, and given an explicit table by a committed
  /// Repair. Returned by value under the spec lock — the spec mutates.
  PlacementSpec placement_spec() const;
  /// Self-colocation warnings computed at Create: one line per mirror
  /// relation whose placement puts two copies of some disk on one node
  /// (the chained trap). Empty = every relation survives any single node
  /// loss placement-wise.
  const std::vector<std::string>& PlacementWarnings() const {
    return placement_warnings_;
  }
  /// In-flight bucket-read weight currently charged to `node` (the load
  /// signal degraded routing balances on). Test/observability hook.
  int64_t NodeInflight(uint32_t node) const {
    return node < num_nodes() ? node_inflight_[node].load() : 0;
  }

  /// Test hook: the raw (fault-free) storage env backing `node`, or
  /// nullptr when out of range. Chaos tests corrupt staged files through
  /// it to drive the migration verify/abort paths deterministically.
  MemEnv* node_env_for_test(uint32_t node) {
    return node < num_nodes() ? &nodes_[node]->env : nullptr;
  }

  /// Publishes absolute totals (cluster.* keys plus each node's breaker
  /// transitions summed under cluster.node_breaker.*).
  void SnapshotMetrics(obs::MetricsRegistry* out) const;

 private:
  friend class Migrator;
  friend class Repairer;

  struct Node {
    MemEnv env;
    std::unique_ptr<FaultyEnv> faulty;
    std::shared_ptr<serve::QueryService> service;
    std::atomic<bool> killed{false};
    /// Decommissioned via RemoveNode: permanently dead for routing and
    /// quorum, evacuated by the next repair. The slot (and node id) stays.
    std::atomic<bool> removed{false};
  };

  /// Immutable per-relation routing state (part of a Routing table).
  struct EpochRelation {
    /// Points into the owning Routing's catalog.
    const DeclusteredFile* df = nullptr;
    RelationRedundancy redundancy;
    DiskMap disk_map;
    uint32_t copies = 1;  ///< 1 unless kMirror.
  };

  /// The generation's catalog plus per-relation routing state. Shared
  /// between epochs that differ only in their service snapshot (e.g. after
  /// a node revival), so rebuilding an epoch never re-parses files.
  struct Routing {
    Catalog catalog;
    std::map<std::string, EpochRelation> relations;
    explicit Routing(Catalog c) : catalog(std::move(c)) {}
  };

  /// One immutable routing view: generation, disk ownership, relation
  /// maps, and the per-node service snapshot. Cutover swaps the shared_ptr
  /// atomically; in-flight queries finish on the epoch they grabbed.
  struct Epoch {
    uint64_t generation = 0;
    uint32_t num_disks = 0;
    /// disk d -> owning node (contiguous slices: d * N / M).
    std::vector<uint32_t> disk_node;
    /// (disk, copy) -> node under the resolved placement spec; row 0 ==
    /// disk_node. Built per epoch because M (and so the table) changes
    /// across migrations.
    PlacementMap placement;
    std::vector<std::shared_ptr<serve::QueryService>> services;
    std::shared_ptr<const Routing> routing;
  };

  /// One planned sub-query: a set of primary disk ids served from mirror
  /// copy `copy` by `node`.
  struct Route {
    uint32_t node = 0;
    uint32_t copy = 0;
    std::vector<uint32_t> disks;
    uint64_t buckets = 0;
    /// Planned onto a replica because the owner was dead or refused.
    bool rerouted = false;
  };

  Cluster() = default;

  /// Builds a routing epoch for `generation` over the given services,
  /// reading the catalog from `src` (nullptr = node 0's env; repair passes
  /// a live node's env because node 0 may be dead). The generation's
  /// manifest placement record wins when it carries an explicit table (the
  /// repair ground truth — disk ownership is its row 0); otherwise the
  /// cluster's current spec applies with any stale table cleared and
  /// contiguous disk ownership.
  Result<std::shared_ptr<const Epoch>> BuildEpoch(
      uint64_t generation,
      std::vector<std::shared_ptr<serve::QueryService>> services,
      const StorageEnv* src = nullptr) const;

  std::shared_ptr<const Epoch> CurrentEpoch() const;
  std::shared_ptr<const Epoch> StagingEpoch() const;
  void SetStagingEpoch(std::shared_ptr<const Epoch> epoch);
  /// Cutover: publishes `epoch` as current, points every node's service at
  /// its epoch service, clears staging.
  void AdoptEpoch(std::shared_ptr<const Epoch> epoch);

  ClusterQueryResult ExecuteOnEpoch(const Epoch& epoch,
                                    const serve::QueryRequest& request,
                                    bool allow_hedge);

  bool NodeAliveAt(uint32_t node, double virtual_now) const;
  /// Detector-dead plus removed nodes — the set a repair plans around.
  std::vector<uint32_t> DeadNodesForRepair() const;
  /// Virtual time the heartbeat declared `node` dead (0 = never).
  double NodeDeadSinceMs(uint32_t node) const;
  /// Installs the repaired placement table as the cluster's current spec
  /// (empty clears the table, e.g. after a policy re-placement).
  void SetPlacementTable(std::vector<std::vector<uint32_t>> table);
  /// Admits one extra sub-query (hedge or failover retry) against the
  /// cluster-wide hedge budget; false = over budget, skip it.
  bool AdmitExtraSub(bool is_hedge);
  bool NodeWouldRefuse(uint32_t node) const;
  /// Breaker admission for one sub-query (may consume the half-open probe
  /// slot); false = treat the node as refused.
  bool NodeAdmit(uint32_t node);
  void RecordNodeOutcome(uint32_t node, bool success);
  void ObserveNodeLatency(uint32_t node, double ms);
  /// Hedge delay for `node` on coordinator sequence number `seq`; +inf
  /// when hedging is off.
  double HedgeDelayMs(uint32_t node, uint64_t seq) const;
  /// Milliseconds since cluster start (steady clock; breakers + stats).
  double SteadyNowMs() const;

  ClusterOptions options_;
  /// Resolved at Create: options_.placement > manifest record > chained.
  /// Mutated by AddNode (topology growth) and a committed Repair (table);
  /// guarded by spec_mu_ — read via placement_spec().
  mutable std::mutex spec_mu_;
  PlacementSpec placement_spec_;
  std::vector<std::string> placement_warnings_;
  /// node_windows plus every zone window expanded to its member nodes —
  /// the one list NodeAliveAt and the FaultyEnv wildcard ranges share.
  std::vector<NodeFaultWindow> effective_windows_;
  /// Preallocated to max_nodes so AddNode never reallocates; slots in
  /// [active_nodes_, max) are default-constructed and untouched until
  /// activated. All loops bound by num_nodes() == active_nodes_.
  std::vector<std::unique_ptr<Node>> nodes_;
  /// Materialized node count; release-incremented by AddNode after the
  /// slot is fully built.
  std::atomic<uint32_t> active_nodes_{0};
  /// RemoveNode count — shrinks the quorum denominator.
  std::atomic<uint32_t> removed_count_{0};
  /// Per-node in-flight bucket-read weight (degraded routing's load
  /// signal). unique_ptr array: atomics are not movable.
  std::unique_ptr<std::atomic<int64_t>[]> node_inflight_;
  std::chrono::steady_clock::time_point start_;
  std::atomic<double> virtual_now_ms_{0.0};

  mutable std::mutex epoch_mu_;
  std::shared_ptr<const Epoch> epoch_;
  std::shared_ptr<const Epoch> staging_epoch_;

  mutable std::mutex breaker_mu_;
  std::vector<CircuitBreaker> node_breakers_;

  /// Virtual-clock failure detector; AdvanceTo/MarkRemoved/Reset are
  /// serialized by hb_mu_, health reads are lock-free.
  mutable std::mutex hb_mu_;
  std::unique_ptr<HeartbeatDetector> heartbeat_;

  /// Cluster-wide hedge/retry budget accounting (lock-free; see
  /// ClusterOptions::hedge_budget_fraction).
  std::atomic<uint64_t> primary_subs_{0};
  std::atomic<uint64_t> extra_subs_{0};
  std::atomic<uint64_t> hedge_budget_denied_{0};
  std::atomic<uint64_t> retry_budget_denied_{0};

  std::atomic<bool> migrating_{false};
  std::atomic<bool> abort_migration_{false};
  /// Set by a live double-read mismatch; checked by the migrator.
  std::atomic<bool> divergence_{false};

  mutable std::mutex metrics_mu_;
  uint64_t queries_ = 0;
  uint64_t complete_ = 0;
  uint64_t partial_ = 0;
  uint64_t failed_ = 0;
  uint64_t sub_queries_ = 0;
  uint64_t hedges_fired_ = 0;
  uint64_t hedge_wins_ = 0;
  uint64_t hedges_cancelled_ = 0;
  uint64_t rerouted_subqueries_ = 0;
  uint64_t unavailable_buckets_ = 0;
  uint64_t quorum_rejections_ = 0;
  uint64_t verify_reads_ = 0;
  uint64_t verify_mismatches_ = 0;
  uint64_t migrations_committed_ = 0;
  uint64_t migrations_aborted_ = 0;
  uint64_t migration_buckets_copied_ = 0;
  uint64_t repairs_committed_ = 0;
  uint64_t repairs_aborted_ = 0;
  uint64_t repair_replicas_rebuilt_ = 0;
  uint64_t repair_bytes_copied_ = 0;
  uint64_t revive_catchups_ = 0;
  uint64_t revive_fenced_ = 0;
  uint64_t nodes_added_ = 0;
  uint64_t nodes_removed_ = 0;
  obs::Histogram query_ms_{obs::DefaultLatencyBoundsMs()};
  /// Per-node sub-query latency (adaptive hedge delay reads its p95).
  std::vector<obs::Histogram> node_query_ms_;
  std::atomic<uint64_t> query_seq_{0};
};

}  // namespace griddecl::cluster

#endif  // GRIDDECL_CLUSTER_CLUSTER_H_
