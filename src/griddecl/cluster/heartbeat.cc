#include "griddecl/cluster/heartbeat.h"

#include <cmath>

namespace griddecl::cluster {

const char* NodeHealthName(NodeHealth health) {
  switch (health) {
    case NodeHealth::kAlive:
      return "alive";
    case NodeHealth::kSuspect:
      return "suspect";
    case NodeHealth::kDead:
      return "dead";
    case NodeHealth::kRemoved:
      return "removed";
  }
  return "unknown";
}

Status ValidateHeartbeatOptions(const HeartbeatOptions& options) {
  if (!(options.interval_ms > 0.0)) {
    return Status::InvalidArgument("heartbeat interval_ms must be > 0");
  }
  if (options.suspect_after < 1 ||
      options.dead_after < options.suspect_after) {
    return Status::InvalidArgument(
        "heartbeat needs dead_after >= suspect_after >= 1");
  }
  return Status::Ok();
}

HeartbeatDetector::HeartbeatDetector(const HeartbeatOptions& options,
                                     uint32_t max_nodes)
    : options_(options) {
  slots_.reserve(max_nodes);
  for (uint32_t n = 0; n < max_nodes; ++n) {
    slots_.push_back(std::make_unique<Slot>());
  }
}

void HeartbeatDetector::AdvanceTo(
    double now_ms, const std::function<bool(uint32_t, double)>& probe) {
  // Tick k fires at virtual time k * interval (k >= 1). Process every tick
  // in (processed_ms_, now_ms].
  const double interval = options_.interval_ms;
  uint64_t tick = static_cast<uint64_t>(std::floor(processed_ms_ / interval));
  const uint64_t last = static_cast<uint64_t>(std::floor(now_ms / interval));
  while (tick < last) {
    ++tick;
    const double t = static_cast<double>(tick) * interval;
    for (uint32_t n = 0; n < slots_.size(); ++n) {
      Slot& slot = *slots_[n];
      if (!slot.tracked) continue;
      const auto state = static_cast<NodeHealth>(slot.state.load());
      if (state == NodeHealth::kRemoved) continue;
      if (probe(n, t)) {
        ++counters_.beats;
        slot.misses = 0;
        if (state != NodeHealth::kAlive) {
          ++counters_.recovered;
          slot.state.store(static_cast<uint32_t>(NodeHealth::kAlive));
        }
        continue;
      }
      ++counters_.missed;
      ++slot.misses;
      if (state == NodeHealth::kAlive && slot.misses >= options_.suspect_after) {
        ++counters_.suspected;
        slot.state.store(static_cast<uint32_t>(NodeHealth::kSuspect));
      }
      if (static_cast<NodeHealth>(slot.state.load()) == NodeHealth::kSuspect &&
          slot.misses >= options_.dead_after) {
        ++counters_.died;
        slot.dead_since_ms.store(t);
        slot.state.store(static_cast<uint32_t>(NodeHealth::kDead));
      }
    }
  }
  if (now_ms > processed_ms_) processed_ms_ = now_ms;
}

void HeartbeatDetector::Track(uint32_t node) {
  if (node >= slots_.size()) return;
  slots_[node]->tracked = true;
}

void HeartbeatDetector::MarkRemoved(uint32_t node) {
  if (node >= slots_.size()) return;
  slots_[node]->state.store(static_cast<uint32_t>(NodeHealth::kRemoved));
}

void HeartbeatDetector::Reset(uint32_t node) {
  if (node >= slots_.size()) return;
  Slot& slot = *slots_[node];
  slot.misses = 0;
  slot.state.store(static_cast<uint32_t>(NodeHealth::kAlive));
}

NodeHealth HeartbeatDetector::HealthOf(uint32_t node) const {
  if (node >= slots_.size()) return NodeHealth::kRemoved;
  return static_cast<NodeHealth>(slots_[node]->state.load());
}

double HeartbeatDetector::DeadSinceMs(uint32_t node) const {
  if (node >= slots_.size()) return 0.0;
  return slots_[node]->dead_since_ms.load();
}

std::vector<uint32_t> HeartbeatDetector::DeadNodes() const {
  std::vector<uint32_t> dead;
  for (uint32_t n = 0; n < slots_.size(); ++n) {
    if (slots_[n]->tracked &&
        static_cast<NodeHealth>(slots_[n]->state.load()) == NodeHealth::kDead) {
      dead.push_back(n);
    }
  }
  return dead;
}

HeartbeatDetector::Counters HeartbeatDetector::counters() const {
  return counters_;
}

}  // namespace griddecl::cluster
