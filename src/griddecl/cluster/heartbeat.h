#ifndef GRIDDECL_CLUSTER_HEARTBEAT_H_
#define GRIDDECL_CLUSTER_HEARTBEAT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "griddecl/common/status.h"

/// \file
/// Virtual-clock heartbeat failure detector.
///
/// Every node is expected to answer a heartbeat probe once per
/// `interval_ms` of *virtual* time (the same clock `NodeFaultWindow`s are
/// evaluated against, so detector behaviour is a pure function of the
/// fault schedule — deterministic and replayable). The detector walks the
/// per-node state machine
///
///     alive --(suspect_after missed beats)--> suspect
///     suspect --(dead_after missed beats)--> dead
///     any --(one answered beat)--> alive
///
/// and records the virtual timestamp of each death. Declaring a node dead
/// is deliberately *distinct* from the cluster's imperative `KillNode`
/// (which only affects routing): repair planning keys off detector-dead
/// nodes, so a transient fault window shorter than
/// `dead_after * interval_ms` degrades routing but never triggers a
/// spurious re-replication.
///
/// Removed (decommissioned) nodes are excluded from probing and reported
/// as `kRemoved`; a revived node is reset to `kAlive` explicitly by the
/// coordinator once it passes the generation fence.
///
/// Thread model: `AdvanceTo`, `MarkRemoved` and `Reset` must be
/// serialized by the caller (the cluster holds a mutex); `HealthOf`,
/// `DeadSinceMs` and `DeadNodes` are lock-free atomic reads safe from any
/// thread.

namespace griddecl::cluster {

enum class NodeHealth : uint32_t {
  kAlive = 0,
  kSuspect = 1,
  kDead = 2,
  kRemoved = 3,
};

const char* NodeHealthName(NodeHealth health);

struct HeartbeatOptions {
  /// Virtual milliseconds between heartbeat probes.
  double interval_ms = 10.0;
  /// Consecutive missed beats before a node turns suspect.
  uint32_t suspect_after = 2;
  /// Consecutive missed beats before a node is declared dead. Must be
  /// >= suspect_after.
  uint32_t dead_after = 4;
};

Status ValidateHeartbeatOptions(const HeartbeatOptions& options);

class HeartbeatDetector {
 public:
  struct Counters {
    uint64_t beats = 0;      ///< Probes answered.
    uint64_t missed = 0;     ///< Probes missed.
    uint64_t suspected = 0;  ///< alive -> suspect transitions.
    uint64_t died = 0;       ///< suspect -> dead transitions.
    uint64_t recovered = 0;  ///< suspect/dead -> alive transitions.
  };

  /// `max_nodes` fixes the tracked-slot count for the detector's lifetime
  /// (slots for not-yet-added cluster nodes simply never get probed).
  HeartbeatDetector(const HeartbeatOptions& options, uint32_t max_nodes);

  /// Processes every whole heartbeat interval in (last-processed, now_ms]:
  /// at each tick t the detector asks `probe(node, t)` whether the node
  /// answered, and advances the state machine. `probe` returning false for
  /// an untracked/removed slot is ignored. Monotonic `now_ms` by
  /// convention; a non-advancing call is a no-op.
  void AdvanceTo(double now_ms,
                 const std::function<bool(uint32_t, double)>& probe);

  /// Marks a node as tracked (probed from the next tick on). Newly created
  /// detectors track the first `initial_tracked` passed here by Create;
  /// added cluster nodes call this when they join.
  void Track(uint32_t node);
  /// Decommission: the node stops being probed and reports kRemoved.
  void MarkRemoved(uint32_t node);
  /// Revival: back to kAlive with a clean miss counter (the coordinator
  /// calls this only after the node passed the generation fence).
  void Reset(uint32_t node);

  NodeHealth HealthOf(uint32_t node) const;
  /// Virtual timestamp the node was last declared dead (0 = never).
  double DeadSinceMs(uint32_t node) const;
  /// Tracked nodes currently kDead, ascending.
  std::vector<uint32_t> DeadNodes() const;

  Counters counters() const;
  double interval_ms() const { return options_.interval_ms; }

 private:
  struct Slot {
    std::atomic<uint32_t> state{static_cast<uint32_t>(NodeHealth::kAlive)};
    std::atomic<double> dead_since_ms{0.0};
    uint32_t misses = 0;
    bool tracked = false;
  };

  HeartbeatOptions options_;
  std::vector<std::unique_ptr<Slot>> slots_;
  double processed_ms_ = 0.0;
  Counters counters_;
};

}  // namespace griddecl::cluster

#endif  // GRIDDECL_CLUSTER_HEARTBEAT_H_
