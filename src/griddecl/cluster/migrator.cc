#include "griddecl/cluster/migrator.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "griddecl/methods/registry.h"

namespace griddecl::cluster {

namespace {

/// Raises every node's FaultyEnv extra read latency for the lifetime of
/// the guard — the contention an unpaced bulk copy inflicts on concurrent
/// queries at the shared device. Destructor-managed so every abort return
/// inside the copy phase clears it.
class ContentionGuard {
 public:
  ContentionGuard() = default;
  ContentionGuard(const ContentionGuard&) = delete;
  ContentionGuard& operator=(const ContentionGuard&) = delete;
  ~ContentionGuard() { Release(); }

  void Engage(const std::vector<std::unique_ptr<FaultyEnv>*>& envs,
              double ms) {
    envs_ = envs;
    for (auto* env : envs_) (*env)->SetExtraLatencyMs(ms);
  }

  void Release() {
    for (auto* env : envs_) (*env)->SetExtraLatencyMs(0.0);
    envs_.clear();
  }

 private:
  std::vector<std::unique_ptr<FaultyEnv>*> envs_;
};

}  // namespace

const char* Migrator::AbortTrigger() const {
  if (cluster_->abort_migration_.load()) return "externally aborted";
  if (cluster_->divergence_.load()) return "live double-read divergence";
  for (uint32_t n = 0; n < cluster_->num_nodes(); ++n) {
    // Decommissioned nodes are expected to be dark; migration only needs
    // every *member* node healthy.
    if (cluster_->nodes_[n]->removed.load()) continue;
    if (!cluster_->NodeAlive(n)) return "node lost";
  }
  return nullptr;
}

Result<MigrationReport> Migrator::Abort(MigrationReport report,
                                        std::string reason,
                                        uint64_t staged_generation) {
  cluster_->SetStagingEpoch(nullptr);
  if (staged_generation != 0) {
    for (uint32_t n = 0; n < cluster_->num_nodes(); ++n) {
      // Best effort: a node that died mid-migration still drops its staged
      // files (the simulated env stays writable); real deployments would
      // re-run the drop on recovery, which recovery's wreckage scan makes
      // safe anyway.
      (void)DropStagedManifest(&cluster_->nodes_[n]->env, staged_generation);
    }
  }
  report.committed = false;
  report.abort_reason = std::move(reason);
  return report;
}

Result<MigrationReport> Migrator::Run(const MigrationOptions& options) {
  MigrationReport report;
  const auto phase = [&options](const char* p) {
    if (options.on_phase) options.on_phase(p);
  };

  auto old_epoch = cluster_->CurrentEpoch();
  report.old_generation = old_epoch->generation;

  // Hard validation: a target the new layout cannot express is a caller
  // error, not an abort.
  if (options.new_num_disks == 0) {
    return Status::InvalidArgument("new_num_disks must be >= 1");
  }
  if (cluster_->num_nodes() > options.new_num_disks) {
    return Status::InvalidArgument(
        "new_num_disks " + std::to_string(options.new_num_disks) +
        " < cluster nodes " + std::to_string(cluster_->num_nodes()));
  }
  for (const auto& [name, rel] : old_epoch->routing->relations) {
    auto method = CreateMethod(options.new_method, rel.df->file().grid(),
                               options.new_num_disks);
    if (!method.ok()) {
      return Status::InvalidArgument(
          "method '" + options.new_method + "' invalid for relation '" + name +
          "': " + method.status().ToString());
    }
    if (rel.redundancy.policy == RelationRedundancy::Policy::kMirror &&
        rel.redundancy.copies > options.new_num_disks) {
      return Status::InvalidArgument(
          "relation '" + name + "' has " +
          std::to_string(rel.redundancy.copies) + " mirror copies but only " +
          std::to_string(options.new_num_disks) + " target disks");
    }
  }

  if (options.copy_bytes_per_sec < 0.0 ||
      options.copy_device_bytes_per_sec < 0.0 ||
      options.copy_contention_ms < 0.0) {
    return Status::InvalidArgument(
        "copy pacing rates and contention must be >= 0");
  }

  if (const char* trigger = AbortTrigger()) {
    return Abort(std::move(report), trigger, 0);
  }

  // --- Phase 1: copy -----------------------------------------------------
  phase("copy");

  // Pacing: a token bucket over the wall clock keeps the copy inside its
  // bytes/sec budget (sleeps are sliced so aborts stay responsive). The
  // bucket banks up to 50 ms of budget so pacing throttles the sustained
  // rate, not every single small file.
  TokenBucket bucket(options.copy_bytes_per_sec,
                     options.copy_bytes_per_sec * 0.05);
  const auto abortable_sleep = [&](double ms) -> const char* {
    double remaining = ms;
    while (remaining > 0.0) {
      if (const char* trigger = AbortTrigger()) return trigger;
      const double slice = std::min(remaining, 5.0);
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(slice));
      remaining -= slice;
    }
    return AbortTrigger();
  };
  // An unpaced copy saturates the shared device: every read on every node
  // pays the contention penalty until the copy phase ends. A paced copy
  // fits in spare bandwidth and injects nothing.
  ContentionGuard contention;
  if (options.copy_bytes_per_sec <= 0.0 && options.copy_contention_ms > 0.0) {
    std::vector<std::unique_ptr<FaultyEnv>*> envs;
    for (uint32_t n = 0; n < cluster_->num_nodes(); ++n) {
      if (cluster_->nodes_[n]->removed.load()) continue;
      envs.push_back(&cluster_->nodes_[n]->faulty);
    }
    contention.Engage(envs, options.copy_contention_ms);
  }
  const StorageEnv& env0 = cluster_->nodes_[0]->env;
  auto old_manifest = ReadManifest(env0, report.old_generation);
  if (!old_manifest.ok()) return old_manifest.status();
  auto next = NextManifestGeneration(env0);
  if (!next.ok()) return next.status();
  report.new_generation = next.value();

  // The new manifest: same relations, sizes, and CRCs (the files are
  // byte-identical copies); only generation, disk count, and method move.
  CatalogManifest staged = old_manifest.value();
  staged.generation = report.new_generation;
  staged.num_disks = options.new_num_disks;
  for (ManifestRelation& mr : staged.relations) {
    mr.method = options.new_method;
  }
  if (staged.placement.has_value()) {
    // A repair's explicit table is keyed to the old disk count and layout;
    // the migrated generation re-places by policy.
    staged.placement->table.clear();
    staged.placement->table_copies = 0;
    staged.placement->table_disks = 0;
  }

  for (size_t i = 0; i < staged.relations.size(); ++i) {
    const ManifestRelation& mr = staged.relations[i];
    std::vector<std::pair<std::string, std::string>> copies;
    copies.emplace_back(old_manifest.value().DataFileName(i),
                        staged.DataFileName(i));
    if (mr.redundancy.policy == RelationRedundancy::Policy::kMirror) {
      for (uint32_t c = 1; c < mr.redundancy.copies; ++c) {
        copies.emplace_back(old_manifest.value().MirrorFileName(i, c),
                            staged.MirrorFileName(i, c));
      }
    }
    if (mr.parity_size > 0) {
      copies.emplace_back(old_manifest.value().ParityFileName(i),
                          staged.ParityFileName(i));
    }
    for (const auto& [from, to] : copies) {
      if (const char* trigger = AbortTrigger()) {
        return Abort(std::move(report), trigger, report.new_generation);
      }
      auto bytes = env0.ReadFile(from);
      if (!bytes.ok()) {
        return Abort(std::move(report),
                     "copy failed: " + bytes.status().ToString(),
                     report.new_generation);
      }
      const double size = static_cast<double>(bytes.value().size());
      // Pace BEFORE the transfer: the budget gates when bytes enter the
      // device, so a paced copy never bursts ahead of its rate.
      if (options.copy_bytes_per_sec > 0.0) {
        const double wait =
            bucket.ConsumeDelayMs(size, cluster_->SteadyNowMs());
        if (wait > 0.0) {
          report.pacing_wait_ms += wait;
          if (const char* trigger = abortable_sleep(wait)) {
            return Abort(std::move(report), trigger, report.new_generation);
          }
        }
      }
      // Simulated device transfer time for this file's bytes.
      if (options.copy_device_bytes_per_sec > 0.0) {
        const double transfer_ms =
            size * 1000.0 / options.copy_device_bytes_per_sec;
        if (const char* trigger = abortable_sleep(transfer_ms)) {
          return Abort(std::move(report), trigger, report.new_generation);
        }
      }
      for (uint32_t n = 0; n < cluster_->num_nodes(); ++n) {
        if (cluster_->nodes_[n]->removed.load()) continue;
        Status w = cluster_->nodes_[n]->env.WriteFile(to, bytes.value());
        if (!w.ok()) {
          return Abort(std::move(report), "copy failed: " + w.ToString(),
                       report.new_generation);
        }
      }
      ++report.files_copied;
      report.bytes_copied += bytes.value().size();
    }
    const auto& rel = old_epoch->routing->relations.at(mr.name);
    report.buckets_copied += rel.df->file().grid().num_buckets();
  }

  const std::string manifest_bytes = SerializeManifest(staged);
  for (uint32_t n = 0; n < cluster_->num_nodes(); ++n) {
    if (cluster_->nodes_[n]->removed.load()) continue;
    Status w = cluster_->nodes_[n]->env.WriteFile(
        ManifestFileName(report.new_generation), manifest_bytes);
    if (!w.ok()) {
      return Abort(std::move(report), "staging manifest: " + w.ToString(),
                   report.new_generation);
    }
  }
  // Copy traffic is done: lift the contention penalty before verify.
  contention.Release();
  phase("staged");
  if (const char* trigger = AbortTrigger()) {
    return Abort(std::move(report), trigger, report.new_generation);
  }

  // --- Phase 2: verify ---------------------------------------------------
  phase("verify");
  std::vector<std::shared_ptr<serve::QueryService>> staging_services(
      cluster_->num_nodes());
  for (uint32_t n = 0; n < cluster_->num_nodes(); ++n) {
    if (cluster_->nodes_[n]->removed.load()) continue;  // stays null
    serve::ServeOptions so = cluster_->options_.node;
    so.seed += n;
    so.generation = report.new_generation;
    auto service =
        serve::QueryService::Create(cluster_->nodes_[n]->faulty.get(), so);
    if (!service.ok()) {
      return Abort(std::move(report),
                   "staging service on node " + std::to_string(n) + ": " +
                       service.status().ToString(),
                   report.new_generation);
    }
    staging_services[n] = std::move(service.value());
  }
  auto staging_epoch =
      cluster_->BuildEpoch(report.new_generation, std::move(staging_services));
  if (!staging_epoch.ok()) {
    return Abort(std::move(report),
                 "staging epoch: " + staging_epoch.status().ToString(),
                 report.new_generation);
  }
  // From here on, every complete live query is double-read against the
  // staging epoch (Cluster::Execute) — traffic itself verifies the copy.
  cluster_->SetStagingEpoch(staging_epoch.value());

  std::vector<serve::QueryRequest> sample = options.verify_requests;
  if (sample.empty()) {
    // Default sample per relation: the full box plus each attribute's
    // lower half (exercises multi-disk routing in every dimension).
    for (const auto& [name, rel] : old_epoch->routing->relations) {
      const Schema& schema = rel.df->file().schema();
      serve::QueryRequest full;
      full.relation = name;
      for (uint32_t a = 0; a < schema.num_attributes(); ++a) {
        full.lo.push_back(schema.attribute(a).lo);
        full.hi.push_back(schema.attribute(a).hi);
      }
      sample.push_back(full);
      for (uint32_t a = 0; a < schema.num_attributes(); ++a) {
        serve::QueryRequest half = full;
        half.hi[a] =
            (schema.attribute(a).lo + schema.attribute(a).hi) / 2.0;
        sample.push_back(std::move(half));
      }
    }
  }
  for (const serve::QueryRequest& vq : sample) {
    if (const char* trigger = AbortTrigger()) {
      return Abort(std::move(report), trigger, report.new_generation);
    }
    ClusterQueryResult old_r =
        cluster_->ExecuteOnEpoch(*old_epoch, vq, /*allow_hedge=*/false);
    ClusterQueryResult new_r = cluster_->ExecuteOnEpoch(
        *staging_epoch.value(), vq, /*allow_hedge=*/false);
    ++report.verify_queries;
    if (!old_r.status.ok() || !old_r.complete) {
      return Abort(std::move(report),
                   "verify query failed on old layout: " +
                       old_r.status.ToString(),
                   report.new_generation);
    }
    if (!new_r.status.ok() || !new_r.complete) {
      return Abort(std::move(report),
                   "verify query failed on new layout: " +
                       new_r.status.ToString(),
                   report.new_generation);
    }
    if (old_r.matches != new_r.matches) {
      ++report.verify_mismatches;
      return Abort(std::move(report),
                   "divergence: old and new layouts disagree on '" +
                       vq.relation + "'",
                   report.new_generation);
    }
  }

  // --- Phase 3: commit ---------------------------------------------------
  phase("commit");
  if (const char* trigger = AbortTrigger()) {
    return Abort(std::move(report), trigger, report.new_generation);
  }
  std::vector<uint32_t> committed;
  for (uint32_t n = 0; n < cluster_->num_nodes(); ++n) {
    if (cluster_->nodes_[n]->removed.load()) continue;
    Status s = CommitStagedManifest(&cluster_->nodes_[n]->env,
                                    report.new_generation);
    if (!s.ok()) {
      // Fence the cutover back out: nodes that already flipped return to
      // the old generation, then the staged files are dropped everywhere.
      for (uint32_t j : committed) {
        (void)RollbackToGeneration(&cluster_->nodes_[j]->env,
                                   report.old_generation);
      }
      return Abort(std::move(report),
                   "commit failed on node " + std::to_string(n) + ": " +
                       s.ToString(),
                   report.new_generation);
    }
    committed.push_back(n);
  }
  // The atomic cutover point for routing: new services, new disk map, new
  // generation in one epoch swap. In-flight queries finish on the old
  // epoch; their sub-queries still carry the old generation fence and the
  // old services keep serving them until the last shared_ptr drops.
  cluster_->AdoptEpoch(staging_epoch.value());
  for (uint32_t n = 0; n < cluster_->num_nodes(); ++n) {
    if (cluster_->nodes_[n]->removed.load()) continue;
    GarbageCollectManifests(&cluster_->nodes_[n]->env, report.new_generation);
  }
  phase("committed");
  report.committed = true;
  return report;
}

}  // namespace griddecl::cluster
