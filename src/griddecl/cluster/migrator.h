#ifndef GRIDDECL_CLUSTER_MIGRATOR_H_
#define GRIDDECL_CLUSTER_MIGRATOR_H_

#include "griddecl/cluster/cluster.h"

/// \file
/// Live re-declustering: move a serving cluster's catalog to a new
/// declustering method and/or virtual-disk count without stopping reads.
///
/// The central observation that makes this safe AND cheap: re-declustering
/// changes only the bucket -> disk mapping (the method and M recorded in
/// the manifest), never the record order, the grid, or the page layout —
/// so the new generation's data files are *byte-for-byte copies* of the
/// old ones under new generation-numbered names. The migration is
/// therefore a metadata change shipped via the manifest commit protocol,
/// with the copy phase existing to model the real-world data movement and
/// to give the abort paths something real to roll back.
///
/// Phases (`MigrationOptions::on_phase` fires at each boundary):
///
///   1. **copy** — for every relation, read the old generation's files
///      from node 0 and write them to every node under generation-G' names
///      (G' = NextManifestGeneration, never reused), then write
///      `MANIFEST-G'` everywhere. Nothing flips: the staged generation is
///      invisible to `ReadCurrentManifest` — it looks exactly like the
///      wreckage of a crashed save, which recovery already skips.
///   2. **verify** — bring up one staging `QueryService` per node pinned
///      to G' (`ServeOptions::generation`), install a staging epoch so
///      live traffic double-reads old-vs-new on every complete query, and
///      run a verification sample (caller-provided or auto-generated)
///      through both epochs, comparing match sets byte for byte.
///   3. **commit** — `CommitStagedManifest` flips CURRENT on every node
///      behind the generation fence; the cluster adopts the staging epoch
///      (new services, new routing) atomically, and old generations are
///      garbage-collected. A mid-commit failure rolls already-committed
///      nodes back to the old generation.
///
/// Any abort trigger — external `AbortMigration`, a node death, a
/// double-read divergence, a failed verify query — takes the clean-abort
/// path: drop the staging epoch, `DropStagedManifest` on every node, and
/// report `committed = false` with the reason. The old generation is never
/// touched before the commit point, so an aborted migration leaves the
/// cluster serving exactly what it served before.

namespace griddecl::cluster {

/// Clock-agnostic token bucket: tokens accrue at `rate_per_sec` up to a
/// `burst` bank (the bucket starts empty, so the first consume already
/// pays for itself); consumption may run the balance negative (debt), and
/// the returned delay is how long the consumer must stall for the balance
/// to recover to zero. The caller supplies timestamps, so the same bucket
/// paces wall-clock migrations and virtual-clock tests identically.
class TokenBucket {
 public:
  /// `rate_per_sec` <= 0 disables pacing (every consume returns 0).
  TokenBucket(double rate_per_sec, double burst)
      : rate_(rate_per_sec), burst_(burst < 0.0 ? 0.0 : burst) {}

  /// Consumes `amount` tokens at time `now_ms` (monotone by convention)
  /// and returns the milliseconds to wait before proceeding — 0 whenever
  /// the bucket held enough.
  double ConsumeDelayMs(double amount, double now_ms) {
    if (rate_ <= 0.0) return 0.0;
    if (!initialized_) {
      last_ms_ = now_ms;
      initialized_ = true;
    }
    tokens_ += (now_ms - last_ms_) * rate_ / 1000.0;
    if (tokens_ > burst_) tokens_ = burst_;
    last_ms_ = now_ms;
    tokens_ -= amount;
    if (tokens_ >= 0.0) return 0.0;
    return -tokens_ * 1000.0 / rate_;
  }

  double tokens() const { return tokens_; }

 private:
  double rate_;
  double burst_;
  double tokens_ = 0.0;
  double last_ms_ = 0.0;
  bool initialized_ = false;
};

/// One migration run against a live cluster. Constructed and driven by
/// `Cluster::Migrate`, which guarantees single-flight.
class Migrator {
 public:
  explicit Migrator(Cluster* cluster) : cluster_(cluster) {}

  /// Executes the migration; see file comment. A clean abort is an Ok
  /// result with `committed = false`; hard validation errors (unknown
  /// method, too few disks) are error statuses.
  Result<MigrationReport> Run(const MigrationOptions& options);

 private:
  /// First active abort trigger, or nullptr when none.
  const char* AbortTrigger() const;
  /// The clean-abort path: clears the staging epoch, drops the staged
  /// generation everywhere (when staged), and fills the report.
  Result<MigrationReport> Abort(MigrationReport report, std::string reason,
                                uint64_t staged_generation);

  Cluster* cluster_;
};

}  // namespace griddecl::cluster

#endif  // GRIDDECL_CLUSTER_MIGRATOR_H_
