#include "griddecl/cluster/placement.h"

#include <algorithm>
#include <set>

namespace griddecl::cluster {

namespace {

/// splitmix64 finalizer — the deterministic tie-breaker for zone_aware.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* PlacementPolicyName(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kChained:
      return "chained";
    case PlacementPolicy::kSpread:
      return "spread";
    case PlacementPolicy::kZoneAware:
      return "zone_aware";
  }
  return "unknown";
}

Result<PlacementPolicy> ParsePlacementPolicy(const std::string& name) {
  if (name == "chained") return PlacementPolicy::kChained;
  if (name == "spread") return PlacementPolicy::kSpread;
  if (name == "zone_aware") return PlacementPolicy::kZoneAware;
  return Status::InvalidArgument("bad placement policy '" + name +
                                 "' (chained|spread|zone_aware)");
}

uint32_t Topology::num_zones() const {
  uint32_t highest = 0;
  for (uint32_t zone : rack_zone) highest = std::max(highest, zone);
  return rack_zone.empty() ? 0 : highest + 1;
}

Status Topology::Validate() const {
  if (node_rack.empty()) {
    return Status::InvalidArgument("topology has no nodes");
  }
  if (rack_zone.empty()) {
    return Status::InvalidArgument("topology has no racks");
  }
  if (rack_zone.size() > node_rack.size()) {
    return Status::InvalidArgument("topology has more racks than nodes");
  }
  for (uint32_t rack : node_rack) {
    if (rack >= num_racks()) {
      return Status::InvalidArgument("topology rack id out of range");
    }
  }
  for (uint32_t zone : rack_zone) {
    if (zone >= num_racks()) {
      return Status::InvalidArgument("topology zone id out of range");
    }
  }
  return Status::Ok();
}

Topology Topology::Flat(uint32_t num_nodes) {
  Topology t;
  t.node_rack.resize(num_nodes);
  t.rack_zone.resize(num_nodes);
  for (uint32_t n = 0; n < num_nodes; ++n) {
    t.node_rack[n] = n;
    t.rack_zone[n] = n;
  }
  return t;
}

Result<Topology> Topology::Grid(uint32_t num_nodes, uint32_t num_racks,
                                uint32_t num_zones) {
  if (num_zones < 1 || num_racks < num_zones || num_nodes < num_racks) {
    return Status::InvalidArgument(
        "topology needs nodes >= racks >= zones >= 1");
  }
  Topology t;
  t.node_rack.resize(num_nodes);
  t.rack_zone.resize(num_racks);
  // Contiguous slices, mirroring the cluster's disk->node ownership map:
  // node n sits in rack n*R/N, rack r in zone r*Z/R.
  for (uint32_t n = 0; n < num_nodes; ++n) {
    t.node_rack[n] = static_cast<uint32_t>(
        static_cast<uint64_t>(n) * num_racks / num_nodes);
  }
  for (uint32_t r = 0; r < num_racks; ++r) {
    t.rack_zone[r] = static_cast<uint32_t>(
        static_cast<uint64_t>(r) * num_zones / num_racks);
  }
  return t;
}

Result<Topology> ParseTopology(const std::string& text) {
  std::vector<uint32_t> parts;
  std::string token;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == 'x') {
      if (token.empty()) {
        return Status::InvalidArgument("bad topology '" + text +
                                       "' (want N, NxR, or NxRxZ)");
      }
      uint64_t value = 0;
      for (char c : token) {
        if (c < '0' || c > '9') {
          return Status::InvalidArgument("bad topology '" + text +
                                         "' (want N, NxR, or NxRxZ)");
        }
        value = value * 10 + static_cast<uint64_t>(c - '0');
        if (value > (1u << 20)) {
          return Status::InvalidArgument("topology dimension too large");
        }
      }
      parts.push_back(static_cast<uint32_t>(value));
      token.clear();
    } else {
      token += text[i];
    }
  }
  if (parts.empty() || parts.size() > 3) {
    return Status::InvalidArgument("bad topology '" + text +
                                   "' (want N, NxR, or NxRxZ)");
  }
  const uint32_t nodes = parts[0];
  const uint32_t racks = parts.size() >= 2 ? parts[1] : nodes;
  const uint32_t zones = parts.size() >= 3 ? parts[2] : racks;
  return Topology::Grid(nodes, racks, zones);
}

ManifestPlacement ToManifestPlacement(const PlacementSpec& spec) {
  ManifestPlacement record;
  record.policy = static_cast<uint32_t>(spec.policy);
  record.seed = spec.seed;
  record.node_rack = spec.topology.node_rack;
  record.rack_zone = spec.topology.rack_zone;
  if (!spec.table.empty()) {
    record.table_copies = static_cast<uint32_t>(spec.table.size());
    record.table_disks = static_cast<uint32_t>(spec.table[0].size());
    record.table.reserve(static_cast<size_t>(record.table_copies) *
                         record.table_disks);
    for (const std::vector<uint32_t>& row : spec.table) {
      record.table.insert(record.table.end(), row.begin(), row.end());
    }
  }
  return record;
}

Result<PlacementSpec> FromManifestPlacement(const ManifestPlacement& record) {
  if (record.policy > static_cast<uint32_t>(PlacementPolicy::kZoneAware)) {
    return Status::InvalidArgument("unknown placement policy " +
                                   std::to_string(record.policy));
  }
  PlacementSpec spec;
  spec.policy = static_cast<PlacementPolicy>(record.policy);
  spec.seed = record.seed;
  spec.topology.node_rack = record.node_rack;
  spec.topology.rack_zone = record.rack_zone;
  const Status valid = spec.topology.Validate();
  if (!valid.ok()) return valid;
  if (!record.table.empty()) {
    if (record.table_copies < 1 || record.table_disks < 1 ||
        record.table.size() != static_cast<size_t>(record.table_copies) *
                                   record.table_disks) {
      return Status::InvalidArgument("placement table dims inconsistent");
    }
    spec.table.assign(record.table_copies,
                      std::vector<uint32_t>(record.table_disks, 0));
    for (uint32_t c = 0; c < record.table_copies; ++c) {
      for (uint32_t d = 0; d < record.table_disks; ++d) {
        const uint32_t node =
            record.table[static_cast<size_t>(c) * record.table_disks + d];
        if (node >= spec.topology.num_nodes()) {
          return Status::InvalidArgument(
              "placement table entry names an unknown node");
        }
        spec.table[c][d] = node;
      }
    }
  }
  return spec;
}

Result<PlacementMap> PlacementMap::Build(
    const PlacementSpec& spec, const std::vector<uint32_t>& disk_node,
    uint32_t max_copies) {
  const Status valid = spec.topology.Validate();
  if (!valid.ok()) return valid;
  if (disk_node.empty()) {
    return Status::InvalidArgument("placement needs at least one disk");
  }
  if (max_copies < 1) {
    return Status::InvalidArgument("placement needs max_copies >= 1");
  }
  const uint32_t num_nodes = spec.topology.num_nodes();
  const uint32_t num_disks = static_cast<uint32_t>(disk_node.size());
  for (uint32_t node : disk_node) {
    if (node >= num_nodes) {
      return Status::InvalidArgument(
          "disk owner outside the placement topology");
    }
  }

  PlacementMap map;
  map.spec_ = spec;

  if (!spec.table.empty()) {
    // Explicit table (post-repair ground truth): use it verbatim.
    if (spec.table.size() < max_copies) {
      return Status::InvalidArgument(
          "placement table has fewer rows than mirror copies");
    }
    for (const std::vector<uint32_t>& row : spec.table) {
      if (row.size() != disk_node.size()) {
        return Status::InvalidArgument(
            "placement table row width != number of disks");
      }
      for (uint32_t node : row) {
        if (node >= num_nodes) {
          return Status::InvalidArgument(
              "placement table entry outside the topology");
        }
      }
    }
    if (spec.table[0] != disk_node) {
      return Status::InvalidArgument(
          "placement table row 0 disagrees with the disk ownership map");
    }
    map.node_of_ = spec.table;
    return map;
  }

  map.node_of_.assign(max_copies, std::vector<uint32_t>(num_disks, 0));
  map.node_of_[0] = disk_node;  // Copy 0 is always the owner.

  switch (spec.policy) {
    case PlacementPolicy::kChained:
      // Copy c of disk d lives on disk (d+c) mod M — on whatever node
      // happens to own that disk (the self-colocation trap with several
      // disks per node).
      for (uint32_t c = 1; c < max_copies; ++c) {
        for (uint32_t d = 0; d < num_disks; ++d) {
          map.node_of_[c][d] = disk_node[(d + c) % num_disks];
        }
      }
      break;
    case PlacementPolicy::kSpread:
      // Round-robin over nodes: copies always land on distinct nodes
      // (as long as copies <= N), blind to racks and zones.
      for (uint32_t c = 1; c < max_copies; ++c) {
        for (uint32_t d = 0; d < num_disks; ++d) {
          map.node_of_[c][d] = (disk_node[d] + c) % num_nodes;
        }
      }
      break;
    case PlacementPolicy::kZoneAware: {
      // Greedy per (disk, copy): prefer a new zone, then a new rack, then
      // a new node, then the node with the lightest replica load, with a
      // seeded hash as the final deterministic tie-break. Load starts at
      // each node's primary-disk count so replicas also level out.
      std::vector<uint64_t> load(num_nodes, 0);
      for (uint32_t node : disk_node) ++load[node];
      for (uint32_t c = 1; c < max_copies; ++c) {
        for (uint32_t d = 0; d < num_disks; ++d) {
          std::set<uint32_t> used_nodes, used_racks, used_zones;
          for (uint32_t prev = 0; prev < c; ++prev) {
            const uint32_t node = map.node_of_[prev][d];
            used_nodes.insert(node);
            used_racks.insert(spec.topology.rack_of(node));
            used_zones.insert(spec.topology.zone_of(node));
          }
          uint32_t best = 0;
          bool have_best = false;
          auto score = [&](uint32_t n) {
            const uint64_t zone_new =
                used_zones.count(spec.topology.zone_of(n)) == 0 ? 1 : 0;
            const uint64_t rack_new =
                used_racks.count(spec.topology.rack_of(n)) == 0 ? 1 : 0;
            const uint64_t node_new = used_nodes.count(n) == 0 ? 1 : 0;
            return std::make_tuple(zone_new, rack_new, node_new, ~load[n],
                                   Mix64(spec.seed ^
                                         (static_cast<uint64_t>(d) << 32) ^
                                         (static_cast<uint64_t>(c) << 20) ^
                                         n));
          };
          for (uint32_t n = 0; n < num_nodes; ++n) {
            if (!have_best || score(n) > score(best)) {
              best = n;
              have_best = true;
            }
          }
          map.node_of_[c][d] = best;
          ++load[best];
        }
      }
      break;
    }
  }
  return map;
}

std::vector<uint32_t> PlacementMap::SelfColocatedDisks(uint32_t copies) const {
  std::vector<uint32_t> colocated;
  const uint32_t effective = std::min<uint32_t>(copies, max_copies());
  if (effective < 2) return colocated;
  for (uint32_t d = 0; d < num_disks(); ++d) {
    if (DistinctNodes(d, effective) < effective) colocated.push_back(d);
  }
  return colocated;
}

uint32_t PlacementMap::DistinctZones(uint32_t disk, uint32_t copies) const {
  std::set<uint32_t> zones;
  const uint32_t effective = std::min<uint32_t>(copies, max_copies());
  for (uint32_t c = 0; c < effective; ++c) {
    zones.insert(spec_.topology.zone_of(node_of_[c][disk]));
  }
  return static_cast<uint32_t>(zones.size());
}

uint32_t PlacementMap::DistinctNodes(uint32_t disk, uint32_t copies) const {
  std::set<uint32_t> nodes;
  const uint32_t effective = std::min<uint32_t>(copies, max_copies());
  for (uint32_t c = 0; c < effective; ++c) {
    nodes.insert(node_of_[c][disk]);
  }
  return static_cast<uint32_t>(nodes.size());
}

}  // namespace griddecl::cluster
