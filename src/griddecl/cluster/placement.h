#ifndef GRIDDECL_CLUSTER_PLACEMENT_H_
#define GRIDDECL_CLUSTER_PLACEMENT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "griddecl/common/status.h"
#include "griddecl/gridfile/manifest.h"

/// \file
/// Failure-domain-aware replica placement for the cluster.
///
/// A `Topology` arranges the N nodes of a cluster into racks and racks
/// into zones (node -> rack -> zone). A `PlacementMap` then assigns every
/// `(primary disk, mirror copy)` pair to a node under one of three
/// policies:
///
///  * `chained`  — copy c of disk d lives on disk (d+c) mod M, i.e. on
///    whatever node owns that disk. This is the classic chained
///    declustering layout (and the only one PR 7 had). Its trap: with two
///    disks per node, copy 1 of an even disk lands on the owner's *own*
///    node, so a node kill can take both replicas of a bucket down at
///    once. Kept for comparison and as the backward-compatible default.
///  * `spread`   — copy c of disk d lives on node (owner(d)+c) mod N:
///    copies always land on distinct nodes, round-robin. Survives any
///    single node loss at copies>=2, but a rack/zone kill can still take
///    adjacent nodes (and therefore all copies) down together.
///  * `zone_aware` — copy 0 stays on the owner; each further copy greedily
///    picks the node that maximizes (new zone, new rack, new node,
///    lightest replica load), with deterministic seeded tie-breaking. At
///    copies=2 with >=2 zones every bucket has replicas in two distinct
///    zones, so killing any single zone leaves the catalog fully
///    available.
///
/// The chosen policy + topology + seed are persisted in the catalog
/// manifest (`ManifestPlacement`, manifest.h) so serve/cluster/fsck all
/// agree on where copies live; a manifest without the record implies
/// chained (exactly PR 7's behavior).

namespace griddecl::cluster {

enum class PlacementPolicy : uint32_t {
  kChained = 0,
  kSpread = 1,
  kZoneAware = 2,
};

const char* PlacementPolicyName(PlacementPolicy policy);
Result<PlacementPolicy> ParsePlacementPolicy(const std::string& name);

/// Node -> rack -> zone arrangement. Valid iff every node has a rack,
/// every rack a zone, and ids are dense (rack ids in [0, num_racks),
/// zone ids in [0, num_zones)).
struct Topology {
  /// node_rack[n] = rack of node n; size = num_nodes.
  std::vector<uint32_t> node_rack;
  /// rack_zone[r] = zone of rack r; size = num_racks.
  std::vector<uint32_t> rack_zone;

  uint32_t num_nodes() const {
    return static_cast<uint32_t>(node_rack.size());
  }
  uint32_t num_racks() const {
    return static_cast<uint32_t>(rack_zone.size());
  }
  uint32_t num_zones() const;
  uint32_t rack_of(uint32_t node) const { return node_rack[node]; }
  uint32_t zone_of(uint32_t node) const {
    return rack_zone[node_rack[node]];
  }

  Status Validate() const;

  /// Every node in its own rack, every rack in its own zone — the
  /// degenerate topology where zone_aware == spread.
  static Topology Flat(uint32_t num_nodes);
  /// `num_nodes` nodes dealt contiguously into `num_racks` racks, racks
  /// dealt contiguously into `num_zones` zones. Requires
  /// num_nodes >= num_racks >= num_zones >= 1.
  static Result<Topology> Grid(uint32_t num_nodes, uint32_t num_racks,
                               uint32_t num_zones);
};

/// Parses "N" (flat) or "NxR" or "NxRxZ" (grid), e.g. "4x2x2".
Result<Topology> ParseTopology(const std::string& text);

/// Policy + topology + seed: everything needed to deterministically
/// recompute the replica placement of a catalog.
struct PlacementSpec {
  PlacementPolicy policy = PlacementPolicy::kChained;
  Topology topology;
  /// Tie-break seed for zone_aware (ignored by chained/spread).
  uint64_t seed = 0;
  /// Optional explicit assignment: table[copy][disk] = node. Non-empty
  /// after a repair / re-placement, whose incremental re-targeting
  /// deviates from the pure policy formula — then it overrides the policy
  /// entirely (the policy/topology/seed are kept as the spec the table was
  /// derived from). Row 0 is the primary-owner map. All rows must have
  /// one entry per disk, every entry < topology.num_nodes().
  std::vector<std::vector<uint32_t>> table;
};

/// Conversions to/from the manifest's serialized record.
ManifestPlacement ToManifestPlacement(const PlacementSpec& spec);
Result<PlacementSpec> FromManifestPlacement(const ManifestPlacement& record);

/// The materialized (disk, copy) -> node table. Immutable once built.
class PlacementMap {
 public:
  /// `disk_node[d]` = node owning primary disk d (the contiguous-slice
  /// map the cluster routes by); `max_copies` >= 1 is the largest mirror
  /// copy count of any relation. Requires spec.topology.num_nodes() ==
  /// the number of distinct nodes in `disk_node`'s range (validated).
  /// When `spec.table` is non-empty the table is used verbatim instead of
  /// the policy formula: it must have >= max_copies rows of
  /// disk_node.size() entries each, and its row 0 must equal `disk_node`
  /// (callers derive ownership from the table's first row).
  static Result<PlacementMap> Build(const PlacementSpec& spec,
                                    const std::vector<uint32_t>& disk_node,
                                    uint32_t max_copies);

  /// The raw (copy, disk) -> node rows — the repair planner's input.
  const std::vector<std::vector<uint32_t>>& Table() const { return node_of_; }

  PlacementPolicy policy() const { return spec_.policy; }
  const PlacementSpec& spec() const { return spec_; }
  uint32_t num_disks() const {
    return static_cast<uint32_t>(node_of_.empty()
                                     ? 0
                                     : node_of_[0].size());
  }
  uint32_t max_copies() const {
    return static_cast<uint32_t>(node_of_.size());
  }

  /// Node holding copy `copy` of primary disk `disk`. copy 0 is always
  /// the owner.
  uint32_t NodeOf(uint32_t disk, uint32_t copy) const {
    return node_of_[copy][disk];
  }

  /// Primary disks whose first `copies` replicas do NOT all live on
  /// distinct nodes — the self-colocation trap. Empty for a safe layout.
  std::vector<uint32_t> SelfColocatedDisks(uint32_t copies) const;

  /// Distinct zones covered by the first `copies` replicas of `disk`.
  uint32_t DistinctZones(uint32_t disk, uint32_t copies) const;
  /// Distinct nodes covered by the first `copies` replicas of `disk`.
  uint32_t DistinctNodes(uint32_t disk, uint32_t copies) const;

 private:
  PlacementSpec spec_;
  /// node_of_[copy][disk] = node. node_of_[0] == disk_node.
  std::vector<std::vector<uint32_t>> node_of_;
};

}  // namespace griddecl::cluster

#endif  // GRIDDECL_CLUSTER_PLACEMENT_H_
