#include "griddecl/cluster/repair.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <set>
#include <thread>
#include <tuple>
#include <utility>

#include "griddecl/cluster/migrator.h"

namespace griddecl::cluster {

namespace {

/// splitmix64 finalizer — the same deterministic tie-breaker zone_aware
/// placement uses, so repair re-targets rank candidates identically.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Raises every live node's extra read latency for the guard's lifetime —
/// the contention an unpaced repair copy inflicts (mirrors the migrator's
/// guard, but only live nodes have traffic to slow down).
class ContentionGuard {
 public:
  ContentionGuard() = default;
  ContentionGuard(const ContentionGuard&) = delete;
  ContentionGuard& operator=(const ContentionGuard&) = delete;
  ~ContentionGuard() { Release(); }

  void Engage(std::vector<FaultyEnv*> envs, double ms) {
    envs_ = std::move(envs);
    for (FaultyEnv* env : envs_) env->SetExtraLatencyMs(ms);
  }

  void Release() {
    for (FaultyEnv* env : envs_) env->SetExtraLatencyMs(0.0);
    envs_.clear();
  }

 private:
  std::vector<FaultyEnv*> envs_;
};

}  // namespace

Result<RepairPlan> PlanRepair(const RepairPlanInput& input) {
  GRIDDECL_RETURN_IF_ERROR(input.topology.Validate());
  if (input.table.empty() || input.table[0].empty()) {
    return Status::InvalidArgument("repair plan needs a placement table");
  }
  const uint32_t num_nodes = input.topology.num_nodes();
  const uint32_t copies = static_cast<uint32_t>(input.table.size());
  const uint32_t num_disks = static_cast<uint32_t>(input.table[0].size());
  for (const std::vector<uint32_t>& row : input.table) {
    if (row.size() != num_disks) {
      return Status::InvalidArgument("repair plan table is ragged");
    }
    for (uint32_t node : row) {
      if (node >= num_nodes) {
        return Status::InvalidArgument(
            "repair plan table names an unknown node");
      }
    }
  }
  std::vector<bool> dead(num_nodes, false);
  for (uint32_t n : input.dead_nodes) {
    if (n >= num_nodes) {
      return Status::InvalidArgument("dead node id out of range");
    }
    dead[n] = true;
  }
  uint32_t live_count = 0;
  std::set<uint32_t> live_zones;
  for (uint32_t n = 0; n < num_nodes; ++n) {
    if (dead[n]) continue;
    ++live_count;
    live_zones.insert(input.topology.zone_of(n));
  }
  if (live_count == 0) {
    return Status::InvalidArgument("repair plan has no live nodes");
  }

  RepairPlan plan;
  plan.new_table = input.table;

  // Replica load per node (live nodes only matter, dead entries are about
  // to move anyway) — the balancing signal for re-target choice.
  std::vector<uint64_t> load(num_nodes, 0);
  for (const std::vector<uint32_t>& row : input.table) {
    for (uint32_t node : row) {
      if (!dead[node]) ++load[node];
    }
  }

  // Best live node for copy `c` of disk `d`, scored against the OTHER
  // live-assigned copies of d in the evolving new_table: prefer a new
  // zone, then a new rack, then a new node, then the lightest load, with
  // the seeded hash as the final deterministic tie-break.
  const auto pick = [&](uint32_t d, uint32_t c) -> uint32_t {
    std::set<uint32_t> used_nodes, used_racks, used_zones;
    for (uint32_t c2 = 0; c2 < copies; ++c2) {
      if (c2 == c) continue;
      const uint32_t node = plan.new_table[c2][d];
      if (dead[node]) continue;  // itself pending re-target
      used_nodes.insert(node);
      used_racks.insert(input.topology.rack_of(node));
      used_zones.insert(input.topology.zone_of(node));
    }
    const auto score = [&](uint32_t n) {
      const uint64_t zone_new =
          used_zones.count(input.topology.zone_of(n)) == 0 ? 1 : 0;
      const uint64_t rack_new =
          used_racks.count(input.topology.rack_of(n)) == 0 ? 1 : 0;
      const uint64_t node_new = used_nodes.count(n) == 0 ? 1 : 0;
      return std::make_tuple(zone_new, rack_new, node_new, ~load[n],
                             Mix64(input.seed ^
                                   (static_cast<uint64_t>(d) << 32) ^
                                   (static_cast<uint64_t>(c) << 20) ^ n));
    };
    uint32_t best = 0;
    bool have_best = false;
    for (uint32_t n = 0; n < num_nodes; ++n) {
      if (dead[n]) continue;
      if (!have_best || score(n) > score(best)) {
        best = n;
        have_best = true;
      }
    }
    return best;
  };

  // Pass 1: evacuate dead assignments. A disk with NO live replica lost
  // its data — record it and leave its row untouched for the caller.
  std::vector<bool> unrecoverable(num_disks, false);
  for (uint32_t d = 0; d < num_disks; ++d) {
    bool any_live = false;
    for (uint32_t c = 0; c < copies; ++c) {
      if (!dead[input.table[c][d]]) any_live = true;
    }
    if (!any_live) {
      unrecoverable[d] = true;
      plan.unrecoverable_disks.push_back(d);
      continue;
    }
    for (uint32_t c = 0; c < copies; ++c) {
      const uint32_t from = plan.new_table[c][d];
      if (!dead[from]) continue;
      const uint32_t to = pick(d, c);
      plan.new_table[c][d] = to;
      ++load[to];
      plan.actions.push_back(RepairAction{d, c, from, to});
    }
  }

  // Pass 2: placement violations. A disk whose replicas cover fewer
  // distinct zones than min(copies, live zones) is under-spread (e.g.
  // after an add-node opened a new zone, or pass 1 had to double up);
  // move the first copy that duplicates an earlier copy's zone to a
  // strictly-new zone when a live node there exists.
  const uint32_t target_zones =
      std::min<uint32_t>(copies, static_cast<uint32_t>(live_zones.size()));
  for (uint32_t d = 0; d < num_disks; ++d) {
    if (unrecoverable[d]) continue;
    for (uint32_t c = 1; c < copies; ++c) {
      std::set<uint32_t> zones;
      for (uint32_t c2 = 0; c2 < copies; ++c2) {
        zones.insert(input.topology.zone_of(plan.new_table[c2][d]));
      }
      if (zones.size() >= target_zones) break;
      const uint32_t zc = input.topology.zone_of(plan.new_table[c][d]);
      bool duplicate = false;
      for (uint32_t c2 = 0; c2 < c; ++c2) {
        if (input.topology.zone_of(plan.new_table[c2][d]) == zc) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) continue;
      // Best live node in a zone no copy of d covers yet.
      uint32_t best = 0;
      bool have_best = false;
      for (uint32_t n = 0; n < num_nodes; ++n) {
        if (dead[n]) continue;
        if (zones.count(input.topology.zone_of(n)) != 0) continue;
        const auto key = std::make_tuple(
            ~load[n], Mix64(input.seed ^ (static_cast<uint64_t>(d) << 32) ^
                            (static_cast<uint64_t>(c) << 20) ^ n));
        const auto best_key = std::make_tuple(
            ~load[best],
            Mix64(input.seed ^ (static_cast<uint64_t>(d) << 32) ^
                  (static_cast<uint64_t>(c) << 20) ^ best));
        if (!have_best || key > best_key) {
          best = n;
          have_best = true;
        }
      }
      if (!have_best) continue;
      const uint32_t from = plan.new_table[c][d];
      if (load[from] > 0) --load[from];
      plan.new_table[c][d] = best;
      ++load[best];
      plan.actions.push_back(RepairAction{d, c, from, best});
    }
  }
  return plan;
}

const char* Repairer::AbortTrigger(
    const std::vector<bool>& planned_live) const {
  if (cluster_->abort_migration_.load()) return "externally aborted";
  if (cluster_->divergence_.load()) return "live double-read divergence";
  for (uint32_t n = 0; n < planned_live.size(); ++n) {
    if (planned_live[n] && !cluster_->NodeAlive(n)) {
      return "repair-source node lost";
    }
  }
  return nullptr;
}

Result<RepairReport> Repairer::Abort(RepairReport report, std::string reason,
                                     uint64_t staged_generation) {
  cluster_->SetStagingEpoch(nullptr);
  if (staged_generation != 0) {
    for (uint32_t n = 0; n < cluster_->num_nodes(); ++n) {
      // Best effort on every node, dead ones included (the simulated env
      // stays writable; a real node re-runs the drop on recovery).
      (void)DropStagedManifest(&cluster_->nodes_[n]->env, staged_generation);
    }
  }
  report.committed = false;
  report.abort_reason = std::move(reason);
  return report;
}

Result<RepairReport> Repairer::Run(const RepairOptions& options) {
  RepairReport report;
  const auto phase = [&options](const char* p) {
    if (options.on_phase) options.on_phase(p);
  };
  if (options.copy_bytes_per_sec < 0.0 ||
      options.copy_device_bytes_per_sec < 0.0 ||
      options.copy_contention_ms < 0.0) {
    return Status::InvalidArgument(
        "copy pacing rates and contention must be >= 0");
  }

  const double wall_t0 = cluster_->SteadyNowMs();
  auto old_epoch = cluster_->CurrentEpoch();
  report.old_generation = old_epoch->generation;
  const uint32_t num_nodes = cluster_->num_nodes();

  // --- Phase 0: plan -----------------------------------------------------
  phase("plan");
  report.dead_nodes = cluster_->DeadNodesForRepair();
  std::vector<bool> is_dead(num_nodes, false);
  for (uint32_t n : report.dead_nodes) is_dead[n] = true;
  // The nodes the repair runs ON: alive now and not being repaired
  // around. Losing one of these mid-repair aborts.
  std::vector<bool> planned_live(num_nodes, false);
  int src = -1;
  for (uint32_t n = 0; n < num_nodes; ++n) {
    if (!is_dead[n] && cluster_->NodeAlive(n)) {
      planned_live[n] = true;
      if (src < 0) src = static_cast<int>(n);
    }
  }
  if (src < 0) {
    return Abort(std::move(report), "no live node to repair from", 0);
  }

  PlacementSpec spec = cluster_->placement_spec();
  RepairPlanInput in;
  in.table = old_epoch->placement.Table();
  in.topology = spec.topology;
  in.dead_nodes = report.dead_nodes;
  in.seed = spec.seed;
  auto plan = PlanRepair(in);
  if (!plan.ok()) return plan.status();
  if (!plan.value().unrecoverable_disks.empty()) {
    return Abort(std::move(report),
                 std::to_string(plan.value().unrecoverable_disks.size()) +
                     " disk(s) lost every replica: unrecoverable",
                 0);
  }
  if (plan.value().actions.empty()) {
    report.already_healthy = true;
    return report;
  }
  report.replicas_retargeted = plan.value().actions.size();

  // Redundancy-restored-by anchor: the earliest detector death among the
  // nodes being repaired around.
  double earliest_dead = std::numeric_limits<double>::infinity();
  for (uint32_t n : report.dead_nodes) {
    const double since = cluster_->NodeDeadSinceMs(n);
    if (since > 0.0) earliest_dead = std::min(earliest_dead, since);
  }

  if (const char* trigger = AbortTrigger(planned_live)) {
    return Abort(std::move(report), trigger, 0);
  }

  // --- Phase 1: copy -----------------------------------------------------
  phase("copy");
  TokenBucket bucket(options.copy_bytes_per_sec,
                     options.copy_bytes_per_sec * 0.05);
  const auto abortable_sleep = [&](double ms) -> const char* {
    double remaining = ms;
    while (remaining > 0.0) {
      if (const char* trigger = AbortTrigger(planned_live)) return trigger;
      const double slice = std::min(remaining, 5.0);
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(slice));
      remaining -= slice;
    }
    return AbortTrigger(planned_live);
  };
  ContentionGuard contention;
  if (options.copy_bytes_per_sec <= 0.0 && options.copy_contention_ms > 0.0) {
    std::vector<FaultyEnv*> envs;
    for (uint32_t n = 0; n < num_nodes; ++n) {
      if (planned_live[n]) envs.push_back(cluster_->nodes_[n]->faulty.get());
    }
    contention.Engage(std::move(envs), options.copy_contention_ms);
  }

  const StorageEnv& env0 = cluster_->nodes_[src]->env;
  auto old_manifest = ReadManifest(env0, report.old_generation);
  if (!old_manifest.ok()) return old_manifest.status();
  auto next = NextManifestGeneration(env0);
  if (!next.ok()) return next.status();
  report.new_generation = next.value();

  // The staged manifest: same relations, disks, and methods — only the
  // generation and the placement record (now carrying the repaired table,
  // the ground truth every later epoch build obeys) move.
  CatalogManifest staged = old_manifest.value();
  staged.generation = report.new_generation;
  PlacementSpec repaired_spec = spec;
  repaired_spec.table = plan.value().new_table;
  staged.placement = ToManifestPlacement(repaired_spec);

  // Only the rebuilt share of each file actually moves: the pacing charge
  // (and the reported bytes) scale by retargeted replicas / all replicas.
  const double rebuilt_frac =
      static_cast<double>(plan.value().actions.size()) /
      (static_cast<double>(in.table.size()) *
       static_cast<double>(in.table[0].size()));
  for (size_t i = 0; i < staged.relations.size(); ++i) {
    const ManifestRelation& mr = staged.relations[i];
    std::vector<std::pair<std::string, std::string>> copies;
    copies.emplace_back(old_manifest.value().DataFileName(i),
                        staged.DataFileName(i));
    if (mr.redundancy.policy == RelationRedundancy::Policy::kMirror) {
      for (uint32_t c = 1; c < mr.redundancy.copies; ++c) {
        copies.emplace_back(old_manifest.value().MirrorFileName(i, c),
                            staged.MirrorFileName(i, c));
      }
    }
    if (mr.parity_size > 0) {
      copies.emplace_back(old_manifest.value().ParityFileName(i),
                          staged.ParityFileName(i));
    }
    for (const auto& [from, to] : copies) {
      if (const char* trigger = AbortTrigger(planned_live)) {
        return Abort(std::move(report), trigger, report.new_generation);
      }
      auto bytes = env0.ReadFile(from);
      if (!bytes.ok()) {
        return Abort(std::move(report),
                     "repair copy failed: " + bytes.status().ToString(),
                     report.new_generation);
      }
      const double charge =
          static_cast<double>(bytes.value().size()) * rebuilt_frac;
      if (options.copy_bytes_per_sec > 0.0) {
        const double wait =
            bucket.ConsumeDelayMs(charge, cluster_->SteadyNowMs());
        if (wait > 0.0) {
          report.pacing_wait_ms += wait;
          if (const char* trigger = abortable_sleep(wait)) {
            return Abort(std::move(report), trigger, report.new_generation);
          }
        }
      }
      if (options.copy_device_bytes_per_sec > 0.0) {
        const double transfer_ms =
            charge * 1000.0 / options.copy_device_bytes_per_sec;
        if (const char* trigger = abortable_sleep(transfer_ms)) {
          return Abort(std::move(report), trigger, report.new_generation);
        }
      }
      // Stage to LIVE nodes only: dead nodes get nothing (that is the
      // staleness window ReviveNode's catch-up fence closes).
      for (uint32_t n = 0; n < num_nodes; ++n) {
        if (!planned_live[n]) continue;
        Status w = cluster_->nodes_[n]->env.WriteFile(to, bytes.value());
        if (!w.ok()) {
          return Abort(std::move(report), "repair copy failed: " + w.ToString(),
                       report.new_generation);
        }
      }
      ++report.files_copied;
      report.bytes_copied += static_cast<uint64_t>(charge);
    }
  }

  const std::string manifest_bytes = SerializeManifest(staged);
  for (uint32_t n = 0; n < num_nodes; ++n) {
    if (!planned_live[n]) continue;
    Status w = cluster_->nodes_[n]->env.WriteFile(
        ManifestFileName(report.new_generation), manifest_bytes);
    if (!w.ok()) {
      return Abort(std::move(report), "staging manifest: " + w.ToString(),
                   report.new_generation);
    }
  }
  contention.Release();
  phase("staged");
  if (const char* trigger = AbortTrigger(planned_live)) {
    return Abort(std::move(report), trigger, report.new_generation);
  }

  // --- Phase 2: verify ---------------------------------------------------
  phase("verify");
  std::vector<std::shared_ptr<serve::QueryService>> staging_services(
      num_nodes);
  for (uint32_t n = 0; n < num_nodes; ++n) {
    if (!planned_live[n]) continue;  // dead nodes keep a null service
    serve::ServeOptions so = cluster_->options_.node;
    so.seed += n;
    so.generation = report.new_generation;
    auto service =
        serve::QueryService::Create(cluster_->nodes_[n]->faulty.get(), so);
    if (!service.ok()) {
      return Abort(std::move(report),
                   "staging service on node " + std::to_string(n) + ": " +
                       service.status().ToString(),
                   report.new_generation);
    }
    staging_services[n] = std::move(service.value());
  }
  auto staging_epoch = cluster_->BuildEpoch(
      report.new_generation, std::move(staging_services), &env0);
  if (!staging_epoch.ok()) {
    return Abort(std::move(report),
                 "staging epoch: " + staging_epoch.status().ToString(),
                 report.new_generation);
  }
  // Live traffic double-reads old-vs-repaired from here on.
  cluster_->SetStagingEpoch(staging_epoch.value());

  std::vector<serve::QueryRequest> sample = options.verify_requests;
  if (sample.empty()) {
    for (const auto& [name, rel] : old_epoch->routing->relations) {
      const Schema& schema = rel.df->file().schema();
      serve::QueryRequest full;
      full.relation = name;
      for (uint32_t a = 0; a < schema.num_attributes(); ++a) {
        full.lo.push_back(schema.attribute(a).lo);
        full.hi.push_back(schema.attribute(a).hi);
      }
      sample.push_back(full);
      for (uint32_t a = 0; a < schema.num_attributes(); ++a) {
        serve::QueryRequest half = full;
        half.hi[a] = (schema.attribute(a).lo + schema.attribute(a).hi) / 2.0;
        sample.push_back(std::move(half));
      }
    }
  }
  for (const serve::QueryRequest& vq : sample) {
    if (const char* trigger = AbortTrigger(planned_live)) {
      return Abort(std::move(report), trigger, report.new_generation);
    }
    ClusterQueryResult old_r =
        cluster_->ExecuteOnEpoch(*old_epoch, vq, /*allow_hedge=*/false);
    ClusterQueryResult new_r = cluster_->ExecuteOnEpoch(
        *staging_epoch.value(), vq, /*allow_hedge=*/false);
    ++report.verify_queries;
    // The repaired layout must serve everything from live nodes alone.
    if (!new_r.status.ok() || !new_r.complete) {
      return Abort(std::move(report),
                   "verify query failed on repaired layout: " +
                       new_r.status.ToString(),
                   report.new_generation);
    }
    // The degraded old layout may be partial (that is why we repair);
    // byte-compare only when it still serves the full answer.
    if (old_r.status.ok() && old_r.complete && old_r.matches != new_r.matches) {
      ++report.verify_mismatches;
      return Abort(std::move(report),
                   "divergence: old and repaired placements disagree on '" +
                       vq.relation + "'",
                   report.new_generation);
    }
  }

  // --- Phase 3: commit ---------------------------------------------------
  phase("commit");
  if (const char* trigger = AbortTrigger(planned_live)) {
    return Abort(std::move(report), trigger, report.new_generation);
  }
  std::vector<uint32_t> committed;
  for (uint32_t n = 0; n < num_nodes; ++n) {
    if (!planned_live[n]) continue;
    Status s = CommitStagedManifest(&cluster_->nodes_[n]->env,
                                    report.new_generation);
    if (!s.ok()) {
      for (uint32_t j : committed) {
        (void)RollbackToGeneration(&cluster_->nodes_[j]->env,
                                   report.old_generation);
      }
      return Abort(std::move(report),
                   "commit failed on node " + std::to_string(n) + ": " +
                       s.ToString(),
                   report.new_generation);
    }
    committed.push_back(n);
  }
  cluster_->AdoptEpoch(staging_epoch.value());
  cluster_->SetPlacementTable(plan.value().new_table);
  for (uint32_t n = 0; n < num_nodes; ++n) {
    if (!planned_live[n]) continue;
    GarbageCollectManifests(&cluster_->nodes_[n]->env, report.new_generation);
  }
  if (std::isfinite(earliest_dead)) {
    report.mttr_virtual_ms =
        std::max(0.0, cluster_->VirtualNowMs() - earliest_dead);
  }
  report.mttr_wall_ms = cluster_->SteadyNowMs() - wall_t0;
  phase("committed");
  report.committed = true;
  return report;
}

}  // namespace griddecl::cluster
