#ifndef GRIDDECL_CLUSTER_REPAIR_H_
#define GRIDDECL_CLUSTER_REPAIR_H_

#include "griddecl/cluster/cluster.h"

/// \file
/// Self-healing: diff the persisted placement against the live topology
/// and re-replicate what a dead or decommissioned node was holding.
///
/// The repair is split into a pure **planner** and a staged **executor**:
///
///  * `PlanRepair` takes the current `(copy, disk) -> node` table, the
///    topology, and the set of dead/removed nodes, and produces the
///    minimal set of re-target actions: pass 1 moves every replica
///    assignment that lives on a dead node to the best live node (scored
///    zone_aware: new zone > new rack > new node > lightest load, seeded
///    deterministic tie-break — the same ranking placement.cc uses); pass
///    2 then fixes *placement violations* that survive pass 1, i.e. disks
///    whose live replicas cover fewer distinct zones than they could
///    (e.g. two copies in one zone after a node add/remove). A disk with
///    no live replica at all is unrecoverable (data loss) and reported,
///    never silently dropped. The planner is a pure function of its input
///    — repair plans are deterministic and replayable.
///
///  * `Repairer` (driven by `Cluster::Repair`, single-flight with
///    migrations) executes a plan through the migration machinery: it
///    stages a new catalog generation on the LIVE nodes only (copying the
///    relation files under generation-G' names, paced by the same token
///    bucket `Migrator` uses but charging only the rebuilt share of each
///    file), writes the repaired table into the staged manifest's
///    placement record (the ground truth every later epoch build obeys),
///    double-read-verifies old-vs-repaired, and commits behind the
///    generation fence. Any abort — a plan-time-live node lost mid-copy,
///    an external `AbortMigration`, a live double-read divergence — drops
///    every staged file and leaves the old generation serving: placement
///    is exactly what it was before the repair started.
///
/// Dead nodes receive nothing during the repair; that is what makes the
/// revived-node staleness window real, and why `Cluster::ReviveNode`
/// fences revival behind a catch-up copy from a live peer.

namespace griddecl::cluster {

/// One replica re-target: copy `copy` of primary disk `disk` moves from
/// `from_node` (dead, removed, or zone-violating) to `to_node` (live).
struct RepairAction {
  uint32_t disk = 0;
  uint32_t copy = 0;
  uint32_t from_node = 0;
  uint32_t to_node = 0;
};

struct RepairPlanInput {
  /// Current placement: table[copy][disk] = node (PlacementMap::Table()).
  std::vector<std::vector<uint32_t>> table;
  Topology topology;
  /// Nodes to plan around (detector-dead plus removed), ids ascending.
  std::vector<uint32_t> dead_nodes;
  /// Deterministic tie-break seed (the placement spec's seed).
  uint64_t seed = 0;
};

struct RepairPlan {
  std::vector<RepairAction> actions;
  /// The repaired table: input.table with every action applied.
  std::vector<std::vector<uint32_t>> new_table;
  /// Disks whose every replica was on a dead node — lost data; the
  /// executor refuses to commit a plan with any of these.
  std::vector<uint32_t> unrecoverable_disks;

  bool healthy() const {
    return actions.empty() && unrecoverable_disks.empty();
  }
};

/// Pure planning function; see file comment. Errors on malformed input
/// (ragged table, unknown nodes, every node dead).
Result<RepairPlan> PlanRepair(const RepairPlanInput& input);

/// One repair run against a live cluster. Constructed and driven by
/// `Cluster::Repair`, which guarantees single-flight with migrations.
class Repairer {
 public:
  explicit Repairer(Cluster* cluster) : cluster_(cluster) {}

  /// Executes the repair; see file comment. A clean abort is an Ok result
  /// with `committed = false`; malformed options are error statuses.
  Result<RepairReport> Run(const RepairOptions& options);

 private:
  /// First active abort trigger, or nullptr. `planned_live[n]` marks the
  /// nodes alive at plan time — losing one of *those* aborts; the nodes
  /// being repaired around are expected to be dead.
  const char* AbortTrigger(const std::vector<bool>& planned_live) const;
  /// Clean-abort path: clears the staging epoch, drops the staged
  /// generation everywhere (best effort), fills the report.
  Result<RepairReport> Abort(RepairReport report, std::string reason,
                             uint64_t staged_generation);

  Cluster* cluster_;
};

}  // namespace griddecl::cluster

#endif  // GRIDDECL_CLUSTER_REPAIR_H_
