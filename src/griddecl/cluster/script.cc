#include "griddecl/cluster/script.h"

#include <cstdlib>
#include <utility>

namespace griddecl::cluster {

namespace {

/// Splits `text` on whitespace runs.
std::vector<std::string> Tokens(std::string_view text) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
    size_t start = i;
    while (i < text.size() && text[i] != ' ' && text[i] != '\t') ++i;
    if (i > start) tokens.emplace_back(text.substr(start, i - start));
  }
  return tokens;
}

Status ParseDoubles(const std::string& list, size_t line_no,
                    std::vector<double>* out) {
  size_t pos = 0;
  while (pos <= list.size()) {
    size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    const std::string piece = list.substr(pos, comma - pos);
    char* end = nullptr;
    const double v = std::strtod(piece.c_str(), &end);
    if (piece.empty() || end != piece.c_str() + piece.size()) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": bad number '" + piece + "'");
    }
    out->push_back(v);
    pos = comma + 1;
  }
  return Status::Ok();
}

Result<uint32_t> ParseU32(const std::string& token, size_t line_no,
                          const char* what) {
  char* end = nullptr;
  const unsigned long v = std::strtoul(token.c_str(), &end, 10);
  if (token.empty() || end != token.c_str() + token.size() ||
      v > 0xffffffffUL) {
    return Status::InvalidArgument("line " + std::to_string(line_no) +
                                   ": bad " + what + " '" + token + "'");
  }
  return static_cast<uint32_t>(v);
}

}  // namespace

Result<std::vector<ClusterCommand>> ParseClusterScript(std::string_view text) {
  std::vector<ClusterCommand> commands;
  size_t line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    const std::vector<std::string> tokens = Tokens(line);
    if (tokens.empty() || tokens[0][0] == '#') continue;
    ClusterCommand cmd;
    if (tokens[0] == "query") {
      if (tokens.size() < 4 || tokens.size() > 5) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_no) +
            ": expected 'query <relation> <lo,..> <hi,..> [deadline_ms]'");
      }
      cmd.kind = ClusterCommand::Kind::kQuery;
      cmd.query.relation = tokens[1];
      GRIDDECL_RETURN_IF_ERROR(ParseDoubles(tokens[2], line_no, &cmd.query.lo));
      GRIDDECL_RETURN_IF_ERROR(ParseDoubles(tokens[3], line_no, &cmd.query.hi));
      if (cmd.query.lo.size() != cmd.query.hi.size()) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_no) + ": lo has " +
            std::to_string(cmd.query.lo.size()) + " attributes but hi has " +
            std::to_string(cmd.query.hi.size()));
      }
      if (tokens.size() == 5) {
        char* end = nullptr;
        cmd.query.deadline_ms = std::strtod(tokens[4].c_str(), &end);
        if (end != tokens[4].c_str() + tokens[4].size() ||
            !(cmd.query.deadline_ms > 0.0)) {
          return Status::InvalidArgument("line " + std::to_string(line_no) +
                                         ": bad deadline '" + tokens[4] + "'");
        }
      }
    } else if (tokens[0] == "kill-node" || tokens[0] == "revive-node") {
      if (tokens.size() != 2) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": expected '" + tokens[0] +
                                       " <node>'");
      }
      auto node = ParseU32(tokens[1], line_no, "node");
      if (!node.ok()) return node.status();
      cmd.kind = tokens[0] == "kill-node" ? ClusterCommand::Kind::kKillNode
                                          : ClusterCommand::Kind::kReviveNode;
      cmd.node = node.value();
    } else if (tokens[0] == "kill-zone" || tokens[0] == "revive-zone") {
      if (tokens.size() != 2) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": expected '" + tokens[0] +
                                       " <zone>'");
      }
      auto zone = ParseU32(tokens[1], line_no, "zone");
      if (!zone.ok()) return zone.status();
      cmd.kind = tokens[0] == "kill-zone" ? ClusterCommand::Kind::kKillZone
                                          : ClusterCommand::Kind::kReviveZone;
      cmd.zone = zone.value();
    } else if (tokens[0] == "advance-ms") {
      if (tokens.size() != 2) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": expected 'advance-ms <ms>'");
      }
      char* end = nullptr;
      cmd.advance_ms = std::strtod(tokens[1].c_str(), &end);
      if (end != tokens[1].c_str() + tokens[1].size() ||
          cmd.advance_ms < 0.0) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": bad time '" + tokens[1] + "'");
      }
      cmd.kind = ClusterCommand::Kind::kAdvance;
    } else if (tokens[0] == "migrate") {
      if (tokens.size() != 3) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_no) +
            ": expected 'migrate <method> <num_disks>'");
      }
      auto disks = ParseU32(tokens[2], line_no, "disk count");
      if (!disks.ok()) return disks.status();
      cmd.kind = ClusterCommand::Kind::kMigrate;
      cmd.migrate_method = tokens[1];
      cmd.migrate_disks = disks.value();
    } else if (tokens[0] == "repair") {
      if (tokens.size() > 2) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": expected 'repair [bytes_per_sec]'");
      }
      cmd.kind = ClusterCommand::Kind::kRepair;
      if (tokens.size() == 2) {
        char* end = nullptr;
        cmd.repair_bytes_per_sec = std::strtod(tokens[1].c_str(), &end);
        if (end != tokens[1].c_str() + tokens[1].size() ||
            cmd.repair_bytes_per_sec < 0.0) {
          return Status::InvalidArgument("line " + std::to_string(line_no) +
                                         ": bad rate '" + tokens[1] + "'");
        }
      }
    } else if (tokens[0] == "add-node") {
      if (tokens.size() != 3) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": expected 'add-node <rack> <zone>'");
      }
      auto rack = ParseU32(tokens[1], line_no, "rack");
      if (!rack.ok()) return rack.status();
      auto zone = ParseU32(tokens[2], line_no, "zone");
      if (!zone.ok()) return zone.status();
      cmd.kind = ClusterCommand::Kind::kAddNode;
      cmd.add_rack = rack.value();
      cmd.add_zone = zone.value();
    } else if (tokens[0] == "remove-node") {
      if (tokens.size() != 2) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": expected 'remove-node <node>'");
      }
      auto node = ParseU32(tokens[1], line_no, "node");
      if (!node.ok()) return node.status();
      cmd.kind = ClusterCommand::Kind::kRemoveNode;
      cmd.node = node.value();
    } else {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": unknown directive '" + tokens[0] +
                                     "'");
    }
    commands.push_back(std::move(cmd));
  }
  return commands;
}

}  // namespace griddecl::cluster
