#ifndef GRIDDECL_CLUSTER_SCRIPT_H_
#define GRIDDECL_CLUSTER_SCRIPT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "griddecl/common/status.h"
#include "griddecl/serve/service.h"

/// \file
/// Text format for driving `declctl cluster`: the serve script's query
/// lines plus cluster control directives, executed strictly in file order.
///
///     query <relation> <lo1,..> <hi1,..> [deadline_ms]
///     kill-node <node>
///     revive-node <node>
///     kill-zone <zone>
///     revive-zone <zone>
///     advance-ms <virtual_ms>
///     migrate <method> <num_disks>
///     repair [bytes_per_sec]
///     add-node <rack> <zone>
///     remove-node <node>
///
/// `kill-zone`/`revive-zone` act on every node of the failure domain at
/// once (the cluster's topology decides membership) — the script-level
/// face of correlated failures. `repair` runs a paced re-replication
/// repair (optional bytes/sec pacing budget; omitted or 0 = unpaced);
/// note the heartbeat must have declared the losses dead first (advance
/// the virtual clock past dead_after intervals). `add-node` grows the
/// cluster by one node in the given rack/zone (== the current count
/// appends a new rack / opens a new zone); `remove-node` decommissions a
/// node — the next `repair` evacuates it.
///
/// Blank lines and lines starting with `#` are skipped. Example — kill a
/// node mid-traffic, then re-decluster to FX on 8 disks:
///
///     query uniform 0.0,0.0 1.0,1.0
///     kill-node 2
///     query uniform 0.0,0.0 1.0,1.0
///     revive-node 2
///     migrate fx 8
///     query uniform 0.0,0.0 1.0,1.0

namespace griddecl::cluster {

struct ClusterCommand {
  enum class Kind {
    kQuery,
    kKillNode,
    kReviveNode,
    kKillZone,
    kReviveZone,
    kAdvance,
    kMigrate,
    kRepair,
    kAddNode,
    kRemoveNode,
  };

  Kind kind = Kind::kQuery;
  /// kQuery only.
  serve::QueryRequest query;
  /// kKillNode / kReviveNode / kRemoveNode.
  uint32_t node = 0;
  /// kKillZone / kReviveZone.
  uint32_t zone = 0;
  /// kAdvance: the new virtual time in ms.
  double advance_ms = 0.0;
  /// kMigrate.
  std::string migrate_method;
  uint32_t migrate_disks = 0;
  /// kRepair: pacing budget in bytes/sec; 0 = unpaced.
  double repair_bytes_per_sec = 0.0;
  /// kAddNode.
  uint32_t add_rack = 0;
  uint32_t add_zone = 0;
};

/// Parses a cluster script, in file order. Fails with kInvalidArgument
/// naming the offending line on any malformed input.
Result<std::vector<ClusterCommand>> ParseClusterScript(std::string_view text);

}  // namespace griddecl::cluster

#endif  // GRIDDECL_CLUSTER_SCRIPT_H_
