#include "griddecl/coding/gf2.h"

#include <algorithm>

#include "griddecl/common/bit_util.h"
#include "griddecl/common/check.h"

namespace griddecl {

BitVector::BitVector(uint32_t size)
    : words_((size + 63) / 64, 0), size_(size) {
  GRIDDECL_CHECK(size >= 1);
}

BitVector BitVector::FromUint64(uint64_t value, uint32_t size) {
  BitVector v(size);
  GRIDDECL_CHECK_MSG(size >= 64 || (value >> size) == 0,
                     "value does not fit in %u bits", size);
  v.words_[0] = value;
  return v;
}

bool BitVector::Get(uint32_t i) const {
  GRIDDECL_CHECK(i < size_);
  return (words_[i / 64] >> (i % 64)) & 1;
}

void BitVector::Set(uint32_t i, bool value) {
  GRIDDECL_CHECK(i < size_);
  const uint64_t mask = uint64_t{1} << (i % 64);
  if (value) {
    words_[i / 64] |= mask;
  } else {
    words_[i / 64] &= ~mask;
  }
}

void BitVector::XorWith(const BitVector& other) {
  GRIDDECL_CHECK(other.size_ == size_);
  for (size_t w = 0; w < words_.size(); ++w) words_[w] ^= other.words_[w];
}

bool BitVector::Dot(const BitVector& other) const {
  GRIDDECL_CHECK(other.size_ == size_);
  uint64_t acc = 0;
  for (size_t w = 0; w < words_.size(); ++w) {
    acc ^= words_[w] & other.words_[w];
  }
  return Parity(acc) != 0;
}

uint64_t BitVector::ToUint64() const { return words_[0]; }

bool BitVector::IsZero() const {
  for (uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

std::string BitVector::ToString() const {
  std::string out;
  out.reserve(size_);
  for (uint32_t i = 0; i < size_; ++i) out += Get(i) ? '1' : '0';
  return out;
}

BitMatrix::BitMatrix(uint32_t rows, uint32_t cols)
    : rows_storage_(rows, BitVector(cols)), rows_(rows), cols_(cols) {
  GRIDDECL_CHECK(rows >= 1 && cols >= 1);
}

BitMatrix BitMatrix::Identity(uint32_t n) {
  BitMatrix m(n, n);
  for (uint32_t i = 0; i < n; ++i) m.Set(i, i, true);
  return m;
}

bool BitMatrix::Get(uint32_t r, uint32_t c) const {
  GRIDDECL_CHECK(r < rows_);
  return rows_storage_[r].Get(c);
}

void BitMatrix::Set(uint32_t r, uint32_t c, bool value) {
  GRIDDECL_CHECK(r < rows_);
  rows_storage_[r].Set(c, value);
}

const BitVector& BitMatrix::row(uint32_t r) const {
  GRIDDECL_CHECK(r < rows_);
  return rows_storage_[r];
}

BitVector BitMatrix::Column(uint32_t c) const {
  GRIDDECL_CHECK(c < cols_);
  BitVector col(rows_);
  for (uint32_t r = 0; r < rows_; ++r) col.Set(r, Get(r, c));
  return col;
}

void BitMatrix::SetColumn(uint32_t c, uint64_t value) {
  GRIDDECL_CHECK(c < cols_);
  GRIDDECL_CHECK(rows_ >= 64 || (value >> rows_) == 0);
  for (uint32_t r = 0; r < rows_; ++r) {
    Set(r, c, ((value >> r) & 1) != 0);
  }
}

BitVector BitMatrix::Multiply(const BitVector& v) const {
  GRIDDECL_CHECK(v.size() == cols_);
  BitVector out(rows_);
  for (uint32_t r = 0; r < rows_; ++r) {
    out.Set(r, rows_storage_[r].Dot(v));
  }
  return out;
}

uint32_t BitMatrix::Rank() const {
  std::vector<BitVector> work = rows_storage_;
  uint32_t rank = 0;
  for (uint32_t c = 0; c < cols_ && rank < rows_; ++c) {
    // Find a pivot row with a 1 in column c.
    uint32_t pivot = rank;
    while (pivot < rows_ && !work[pivot].Get(c)) ++pivot;
    if (pivot == rows_) continue;
    std::swap(work[rank], work[pivot]);
    for (uint32_t r = 0; r < rows_; ++r) {
      if (r != rank && work[r].Get(c)) work[r].XorWith(work[rank]);
    }
    ++rank;
  }
  return rank;
}

uint32_t BitMatrix::MinDistanceUpTo(uint32_t max_weight) const {
  // A codeword of weight w exists iff some w columns XOR to zero.
  // Enumerate column subsets by growing weight; exponential, test-only.
  GRIDDECL_CHECK(max_weight >= 1);
  std::vector<BitVector> cols;
  cols.reserve(cols_);
  for (uint32_t c = 0; c < cols_; ++c) cols.push_back(Column(c));

  std::vector<uint32_t> pick;
  // Depth-first enumeration of subsets of size `target`.
  auto search = [&](auto&& self, uint32_t start, uint32_t remaining,
                    BitVector acc) -> bool {
    if (remaining == 0) return acc.IsZero();
    for (uint32_t c = start; c + remaining <= cols_ + 1 && c < cols_; ++c) {
      BitVector next = acc;
      next.XorWith(cols[c]);
      if (self(self, c + 1, remaining - 1, next)) return true;
    }
    return false;
  };
  for (uint32_t w = 1; w <= max_weight; ++w) {
    if (search(search, 0, w, BitVector(rows_))) return w;
  }
  return max_weight + 1;
}

std::string BitMatrix::ToString() const {
  std::string out;
  for (uint32_t r = 0; r < rows_; ++r) {
    out += rows_storage_[r].ToString();
    out += '\n';
  }
  return out;
}

}  // namespace griddecl
