#ifndef GRIDDECL_CODING_GF2_H_
#define GRIDDECL_CODING_GF2_H_

#include <cstdint>
#include <string>
#include <vector>

#include "griddecl/common/status.h"

/// \file
/// Dense linear algebra over GF(2). Substrate for the error-correcting-code
/// declustering method (Faloutsos & Metaxas, IEEE ToC 1991): the disk of a
/// bucket is the syndrome `H * v` of its concatenated coordinate bits `v`
/// under a parity-check matrix `H`, i.e. disks correspond to cosets of a
/// linear code.

namespace griddecl {

/// A bit vector of fixed length, packed into 64-bit words.
class BitVector {
 public:
  /// All-zero vector of `size` bits.
  explicit BitVector(uint32_t size);

  /// Vector from the low `size` bits of `value` (bit 0 -> index 0).
  static BitVector FromUint64(uint64_t value, uint32_t size);

  uint32_t size() const { return size_; }
  bool Get(uint32_t i) const;
  void Set(uint32_t i, bool value);

  /// XOR-accumulate another vector of equal size.
  void XorWith(const BitVector& other);

  /// Dot product over GF(2) (parity of the AND).
  bool Dot(const BitVector& other) const;

  /// Low 64 bits as an integer (bit i of the result = element i).
  uint64_t ToUint64() const;

  bool IsZero() const;

  /// "0110..." with element 0 first.
  std::string ToString() const;

  friend bool operator==(const BitVector& a, const BitVector& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

 private:
  std::vector<uint64_t> words_;
  uint32_t size_;
};

/// A dense matrix over GF(2), row-major.
class BitMatrix {
 public:
  /// All-zero matrix.
  BitMatrix(uint32_t rows, uint32_t cols);

  static BitMatrix Identity(uint32_t n);

  uint32_t rows() const { return rows_; }
  uint32_t cols() const { return cols_; }

  bool Get(uint32_t r, uint32_t c) const;
  void Set(uint32_t r, uint32_t c, bool value);

  const BitVector& row(uint32_t r) const;

  /// Column `c` as a vector of length rows().
  BitVector Column(uint32_t c) const;

  /// Sets column `c` from the low rows() bits of `value`.
  void SetColumn(uint32_t c, uint64_t value);

  /// Matrix-vector product over GF(2); `v.size()` must equal cols().
  BitVector Multiply(const BitVector& v) const;

  /// Rank over GF(2) (Gaussian elimination on a copy).
  uint32_t Rank() const;

  /// Minimum Hamming distance of the linear code whose parity-check matrix
  /// is this matrix: the smallest number of columns that XOR to zero.
  /// Exhaustive up to `max_weight`; returns max_weight + 1 if no dependent
  /// set of size <= max_weight exists. Intended for small matrices (tests).
  uint32_t MinDistanceUpTo(uint32_t max_weight) const;

  std::string ToString() const;

 private:
  std::vector<BitVector> rows_storage_;
  uint32_t rows_;
  uint32_t cols_;
};

}  // namespace griddecl

#endif  // GRIDDECL_CODING_GF2_H_
