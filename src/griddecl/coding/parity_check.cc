#include "griddecl/coding/parity_check.h"

#include <algorithm>

#include "griddecl/common/check.h"

namespace griddecl {

namespace {

/// Incremental GF(2) span tracker over c-bit values (Gaussian basis).
class Gf2Span {
 public:
  /// Reduces `v` by the basis; non-zero remainder means independent.
  uint64_t Reduce(uint64_t v) const {
    for (uint64_t b : basis_) v = std::min(v, v ^ b);
    return v;
  }

  bool Contains(uint64_t v) const { return Reduce(v) == 0; }

  /// Adds `v` to the span; returns false if it was already contained.
  bool Add(uint64_t v) {
    const uint64_t r = Reduce(v);
    if (r == 0) return false;
    basis_.push_back(r);
    // Keep basis sorted descending so Reduce cancels high bits first.
    std::sort(basis_.rbegin(), basis_.rend());
    return true;
  }

  size_t rank() const { return basis_.size(); }

 private:
  std::vector<uint64_t> basis_;
};

}  // namespace

Result<BitMatrix> BuildHammingParityCheck(uint32_t num_parity_bits,
                                          uint32_t num_cols) {
  if (num_parity_bits < 1 || num_parity_bits > 32) {
    return Status::InvalidArgument("parity bits must be in 1..32");
  }
  if (num_cols < 1) {
    return Status::InvalidArgument("need at least one column");
  }
  BitMatrix h(num_parity_bits, num_cols);
  const uint64_t nonzero_values = (uint64_t{1} << num_parity_bits) - 1;
  for (uint32_t j = 0; j < num_cols; ++j) {
    const uint64_t value = (j % nonzero_values) + 1;
    h.SetColumn(j, value);
  }
  return h;
}

Result<BitMatrix> BuildDeclusteringParityCheck(
    uint32_t num_parity_bits, const std::vector<uint32_t>& widths) {
  if (num_parity_bits < 1 || num_parity_bits > 32) {
    return Status::InvalidArgument("parity bits must be in 1..32");
  }
  uint32_t total = 0;
  uint32_t max_width = 0;
  for (uint32_t w : widths) {
    total += w;
    max_width = std::max(max_width, w);
  }
  if (total < 1) {
    return Status::InvalidArgument("need at least one coordinate bit");
  }
  // Column bit-positions: dimension-major, LSB first.
  std::vector<uint32_t> offsets(widths.size(), 0);
  for (size_t i = 1; i < widths.size(); ++i) {
    offsets[i] = offsets[i - 1] + widths[i - 1];
  }

  BitMatrix h(num_parity_bits, total);
  const uint64_t num_values = uint64_t{1} << num_parity_bits;
  Gf2Span span;
  std::vector<bool> used(static_cast<size_t>(num_values), false);
  uint64_t cycle = 0;  // Fallback counter once all values are used.

  // Assign level-major: bit 0 of every dimension, then bit 1, ... so the
  // low-order bits — the ones small range queries exercise — receive the
  // independent columns first.
  for (uint32_t level = 0; level < max_width; ++level) {
    for (size_t dim = 0; dim < widths.size(); ++dim) {
      if (level >= widths[dim]) continue;
      uint64_t value = 0;
      if (span.rank() < num_parity_bits) {
        // Smallest unused value independent of everything so far.
        for (uint64_t v = 1; v < num_values; ++v) {
          if (!used[static_cast<size_t>(v)] && !span.Contains(v)) {
            value = v;
            break;
          }
        }
        GRIDDECL_CHECK(value != 0);
        span.Add(value);
      } else {
        // Rank saturated: keep columns pairwise distinct while possible.
        for (uint64_t v = 1; v < num_values; ++v) {
          if (!used[static_cast<size_t>(v)]) {
            value = v;
            break;
          }
        }
        if (value == 0) {
          // All non-zero values consumed: cycle deterministically.
          value = (cycle++ % (num_values - 1)) + 1;
        }
      }
      used[static_cast<size_t>(value)] = true;
      h.SetColumn(offsets[dim] + level, value);
    }
  }
  return h;
}

uint64_t SyndromeOf(const BitMatrix& h, const BitVector& v) {
  return h.Multiply(v).ToUint64();
}

}  // namespace griddecl
