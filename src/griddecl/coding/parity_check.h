#ifndef GRIDDECL_CODING_PARITY_CHECK_H_
#define GRIDDECL_CODING_PARITY_CHECK_H_

#include <cstdint>
#include <vector>

#include "griddecl/coding/gf2.h"
#include "griddecl/common/status.h"

/// \file
/// Construction of parity-check matrices for ECC declustering.
///
/// The original paper takes its parity-check equations from tables in Reza's
/// information-theory text; we construct the same family programmatically
/// (documented substitution, see DESIGN.md).
///
/// Two builders are provided:
///
/// * `BuildHammingParityCheck` — the generic (shortened) Hamming code:
///   column `j` is the value `(j mod (2^c - 1)) + 1`, so columns are
///   distinct and non-zero while they last (minimum distance >= 3 when
///   `n <= 2^c - 1`).
///
/// * `BuildDeclusteringParityCheck` — the matrix the ECC *method* uses.
///   Bucket coordinates are concatenated dimension-major, LSB first, and
///   what matters for range queries is which columns back the *low-order*
///   bits: the buckets of a small aligned box differ exactly in the low
///   `a_i` bits of each coordinate, and the box spreads perfectly over
///   2^(sum a_i) disks iff those columns are linearly independent. Columns
///   are therefore assigned level-major (bit 0 of every dimension, then bit
///   1, ...) and greedily kept independent of all previously assigned
///   columns until the rank saturates at `c`; afterwards, the smallest
///   still-unused non-zero value is used (preserving pairwise distinctness,
///   i.e. distance >= 3, while any values remain).

namespace griddecl {

/// Generic shortened-Hamming parity check (`num_parity_bits x num_cols`).
/// Requires 1 <= num_parity_bits <= 32 and num_cols >= 1.
Result<BitMatrix> BuildHammingParityCheck(uint32_t num_parity_bits,
                                          uint32_t num_cols);

/// Parity-check matrix tuned for grid declustering. `widths[i]` is the
/// number of coordinate bits of dimension i (log2 of the partition count);
/// the matrix has `sum(widths)` columns laid out dimension-major, LSB
/// first — column `offset_i + b` backs bit `b` of dimension `i`.
/// Requires 1 <= num_parity_bits <= 32 and at least one positive width.
Result<BitMatrix> BuildDeclusteringParityCheck(
    uint32_t num_parity_bits, const std::vector<uint32_t>& widths);

/// Syndrome of `v` under `H`, packed into an integer in
/// [0, 2^H.rows()). Disk id in ECC declustering.
uint64_t SyndromeOf(const BitMatrix& h, const BitVector& v);

}  // namespace griddecl

#endif  // GRIDDECL_CODING_PARITY_CHECK_H_
