#include "griddecl/common/backoff.h"

#include <algorithm>

namespace griddecl {

namespace {

/// SplitMix64 finalizer — the same mixing the fault model and crash env
/// use, so every deterministic draw in the repo shares one audited hash.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

Status ValidateBackoffPolicy(const BackoffPolicy& policy) {
  if (!(policy.base_ms >= 0.0)) {
    return Status::InvalidArgument("backoff base_ms must be >= 0");
  }
  if (!(policy.multiplier >= 1.0)) {
    return Status::InvalidArgument("backoff multiplier must be >= 1");
  }
  if (!(policy.cap_ms >= 0.0)) {
    return Status::InvalidArgument("backoff cap_ms must be >= 0");
  }
  if (!(policy.jitter >= 0.0) || policy.jitter > 1.0) {
    return Status::InvalidArgument("backoff jitter must be in [0, 1]");
  }
  if (policy.max_attempts < 1) {
    return Status::InvalidArgument("backoff max_attempts must be >= 1");
  }
  return Status::Ok();
}

double BackoffRawDelayMs(const BackoffPolicy& policy, uint32_t retry) {
  double raw = policy.base_ms;
  // Iterative growth with early capping: `multiplier^retry` as a pow()
  // call could differ in the last ulp across libm implementations, and a
  // large retry index would overflow. Capping inside the loop bounds the
  // value and makes the result exact for multiplier == 1.
  for (uint32_t i = 0; i < retry && raw < policy.cap_ms; ++i) {
    raw *= policy.multiplier;
  }
  return std::min(raw, policy.cap_ms);
}

double BackoffDelayMs(const BackoffPolicy& policy, uint64_t seed,
                      uint64_t token, uint32_t retry) {
  const double raw = BackoffRawDelayMs(policy, retry);
  if (policy.jitter <= 0.0 || raw <= 0.0) return raw;
  uint64_t h = Mix64(seed ^ 0x243f6a8885a308d3ull);
  h = Mix64(h ^ token);
  h = Mix64(h ^ retry);
  // Top 53 bits as a uniform double in [0, 1) — the fault model's idiom.
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return raw * (1.0 - policy.jitter) + u * raw * policy.jitter;
}

double BackoffTotalDelayMs(const BackoffPolicy& policy, uint64_t seed,
                           uint64_t token, uint32_t failed_attempts) {
  double total = 0.0;
  for (uint32_t r = 0; r < failed_attempts; ++r) {
    total += BackoffDelayMs(policy, seed, token, r);
  }
  return total;
}

}  // namespace griddecl
