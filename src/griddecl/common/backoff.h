#ifndef GRIDDECL_COMMON_BACKOFF_H_
#define GRIDDECL_COMMON_BACKOFF_H_

#include <cstdint>

#include "griddecl/common/status.h"

/// \file
/// Seeded exponential backoff with full jitter.
///
/// Two subsystems retry transient read errors: the I/O simulators (the
/// fault model charges a firmware-style wait per failed attempt) and the
/// serving layer (real sleeps between page-read attempts). Both draw their
/// delays from this one audited implementation so the retry semantics —
/// exponential growth, cap, bounded attempts, and the jitter distribution —
/// cannot drift apart.
///
/// Delays are a pure function of (policy, seed, token, retry): the jitter
/// hash is the repo's standard SplitMix64 finalizer over those inputs, so a
/// retry schedule is reproducible bit-for-bit regardless of thread
/// interleaving or call order. The simulators use a degenerate policy
/// (multiplier 1, no jitter), which makes `DelayMs` return `base_ms`
/// exactly and keeps their pre-extraction results bit-identical.

namespace griddecl {

/// Retry/backoff policy. `max_attempts` counts every attempt including the
/// first; a policy with `max_attempts = 1` never retries.
struct BackoffPolicy {
  /// Raw delay before the first retry.
  double base_ms = 1.0;
  /// Raw delay grows by this factor per retry (1.0 = constant backoff).
  double multiplier = 2.0;
  /// Upper bound on the raw (pre-jitter) delay.
  double cap_ms = 1000.0;
  /// Fraction of the raw delay that is jittered, in [0, 1]: the delay is
  /// `raw * (1 - jitter) + U * raw * jitter` with U uniform in [0, 1).
  /// 0 is deterministic backoff, 1 is AWS-style full jitter.
  double jitter = 1.0;
  /// Total attempts allowed, including the first; must be >= 1.
  uint32_t max_attempts = 4;
};

/// Validates a policy: base_ms >= 0, multiplier >= 1, cap_ms >= 0, jitter
/// in [0, 1], max_attempts >= 1.
Status ValidateBackoffPolicy(const BackoffPolicy& policy);

/// Raw (un-jittered) delay before retry `retry` (0-based: the delay between
/// attempt `retry` and attempt `retry + 1`):
/// `min(cap_ms, base_ms * multiplier^retry)`, computed by iterative
/// multiplication with early capping so it never overflows.
double BackoffRawDelayMs(const BackoffPolicy& policy, uint32_t retry);

/// Jittered delay before retry `retry`: a pure function of
/// (policy, seed, token, retry). `token` distinguishes concurrent retry
/// schedules (e.g. a request id); same inputs give the same delay on every
/// platform. With `policy.jitter == 0` this equals `BackoffRawDelayMs`.
double BackoffDelayMs(const BackoffPolicy& policy, uint64_t seed,
                      uint64_t token, uint32_t retry);

/// Sum of `BackoffDelayMs` over retries 0..failed_attempts-1: the total
/// wait a request pays for `failed_attempts` consecutive failures.
double BackoffTotalDelayMs(const BackoffPolicy& policy, uint64_t seed,
                           uint64_t token, uint32_t failed_attempts);

}  // namespace griddecl

#endif  // GRIDDECL_COMMON_BACKOFF_H_
