#ifndef GRIDDECL_COMMON_BIT_UTIL_H_
#define GRIDDECL_COMMON_BIT_UTIL_H_

#include <bit>
#include <cstdint>

#include "griddecl/common/check.h"

/// \file
/// Small bit-manipulation helpers used by the curve, coding and method
/// modules. All functions are constexpr-friendly and branch-light; several
/// declustering functions (FX, ECC, Hilbert) are built directly on them.

namespace griddecl {

/// True iff `x` is a power of two. Zero is not a power of two.
constexpr bool IsPowerOfTwo(uint64_t x) {
  return x != 0 && (x & (x - 1)) == 0;
}

/// Number of bits needed to represent values in [0, x), i.e. ceil(log2(x)).
/// BitWidthForDomain(1) == 0 (a domain with one value needs no bits).
constexpr int BitWidthForDomain(uint64_t x) {
  GRIDDECL_CHECK(x >= 1);
  return (x <= 1) ? 0 : 64 - std::countl_zero(x - 1);
}

/// Floor of log2(x); x must be >= 1.
constexpr int FloorLog2(uint64_t x) {
  GRIDDECL_CHECK(x >= 1);
  return 63 - std::countl_zero(x);
}

/// Ceiling of log2(x); x must be >= 1.
constexpr int CeilLog2(uint64_t x) {
  GRIDDECL_CHECK(x >= 1);
  return IsPowerOfTwo(x) ? FloorLog2(x) : FloorLog2(x) + 1;
}

/// Smallest power of two >= x; x must be >= 1.
constexpr uint64_t NextPowerOfTwo(uint64_t x) {
  return uint64_t{1} << CeilLog2(x);
}

/// Number of set bits.
constexpr int PopCount(uint64_t x) { return std::popcount(x); }

/// XOR-parity of the set bits of `x` (0 or 1).
constexpr uint32_t Parity(uint64_t x) {
  return static_cast<uint32_t>(std::popcount(x) & 1);
}

/// Binary-reflected Gray code of `x`.
constexpr uint64_t GrayCode(uint64_t x) { return x ^ (x >> 1); }

/// Inverse of `GrayCode`: the integer whose Gray code is `g`.
constexpr uint64_t GrayCodeInverse(uint64_t g) {
  uint64_t x = g;
  for (int shift = 1; shift < 64; shift <<= 1) x ^= x >> shift;
  return x;
}

/// Left-rotate the low `width` bits of `x` by `r` positions (r in [0,width)).
constexpr uint64_t RotateLeftBits(uint64_t x, int r, int width) {
  GRIDDECL_CHECK(width > 0 && width <= 64 && r >= 0 && r < width);
  const uint64_t mask =
      (width == 64) ? ~uint64_t{0} : ((uint64_t{1} << width) - 1);
  x &= mask;
  if (r == 0) return x;
  return ((x << r) | (x >> (width - r))) & mask;
}

/// Right-rotate the low `width` bits of `x` by `r` positions (r in [0,width)).
constexpr uint64_t RotateRightBits(uint64_t x, int r, int width) {
  if (r == 0) return x & ((width == 64) ? ~uint64_t{0}
                                        : ((uint64_t{1} << width) - 1));
  return RotateLeftBits(x, width - r, width);
}

}  // namespace griddecl

#endif  // GRIDDECL_COMMON_BIT_UTIL_H_
