#ifndef GRIDDECL_COMMON_BYTES_H_
#define GRIDDECL_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "griddecl/common/check.h"

/// \file
/// Little-endian byte serialization helpers shared by the binary formats
/// (grid-file storage, catalog manifest). Writers append to a std::string;
/// the reader is a bounds-checked cursor so adversarial length fields can
/// never walk off the buffer — every parser in the repo is expected to be
/// safe on arbitrary bytes.

namespace griddecl {

inline void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

inline void AppendU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

inline void AppendF64(std::string* out, double v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

/// Overwrites 4 bytes at `offset` (e.g. patching a CRC computed after the
/// region it guards was written).
inline void PatchU32(std::string* out, size_t offset, uint32_t v) {
  GRIDDECL_CHECK(offset + 4 <= out->size());
  std::memcpy(out->data() + offset, &v, 4);
}

/// Bounds-checked little-endian cursor over an in-memory byte range.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  size_t pos() const { return pos_; }
  size_t remaining() const { return bytes_.size() - pos_; }

  bool ReadU32(uint32_t* v) { return ReadRaw(v, 4); }
  bool ReadU64(uint64_t* v) { return ReadRaw(v, 8); }
  bool ReadF64(double* v) { return ReadRaw(v, 8); }

  bool ReadBytes(char* out, size_t n) {
    if (remaining() < n) return false;
    std::memcpy(out, bytes_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  bool ReadString(std::string* out, size_t n) {
    if (remaining() < n) return false;
    out->assign(bytes_.data() + pos_, n);
    pos_ += n;
    return true;
  }

 private:
  bool ReadRaw(void* out, size_t n) {
    if (remaining() < n) return false;
    std::memcpy(out, bytes_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  std::string_view bytes_;
  size_t pos_ = 0;
};

}  // namespace griddecl

#endif  // GRIDDECL_COMMON_BYTES_H_
