#ifndef GRIDDECL_COMMON_CHECK_H_
#define GRIDDECL_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// \file
/// Assertion macros for programmer errors (contract violations).
///
/// `GRIDDECL_CHECK` is always on, including in release builds: declustering
/// results silently computed from out-of-range bucket coordinates would be
/// worse than a crash. Recoverable errors (bad user configuration, malformed
/// input) use `Status` / `Result<T>` instead — see `common/status.h`.

/// Aborts with a file:line message when `cond` is false.
#define GRIDDECL_CHECK(cond)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,       \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

/// Aborts with a formatted message when `cond` is false.
#define GRIDDECL_CHECK_MSG(cond, ...)                                     \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s: ", __FILE__,       \
                   __LINE__, #cond);                                      \
      std::fprintf(stderr, __VA_ARGS__);                                  \
      std::fprintf(stderr, "\n");                                         \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#endif  // GRIDDECL_COMMON_CHECK_H_
