#include "griddecl/common/crc32c.h"

#include <array>

namespace griddecl {

namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // 0x1EDC6F41 bit-reflected.

/// 8 slice tables: table[0] is the classic byte-at-a-time table; table[t]
/// advances a byte that sits t positions deeper in the message.
struct Tables {
  std::array<std::array<uint32_t, 256>, 8> t;
};

Tables BuildTables() {
  Tables tables;
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    tables.t[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = tables.t[0][i];
    for (size_t slice = 1; slice < 8; ++slice) {
      crc = tables.t[0][crc & 0xFF] ^ (crc >> 8);
      tables.t[slice][i] = crc;
    }
  }
  return tables;
}

const Tables& GetTables() {
  static const Tables tables = BuildTables();
  return tables;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t size, uint32_t seed) {
  const Tables& tb = GetTables();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  // Slice-by-8 main loop.
  while (size >= 8) {
    const uint32_t lo = crc ^ (static_cast<uint32_t>(p[0]) |
                               static_cast<uint32_t>(p[1]) << 8 |
                               static_cast<uint32_t>(p[2]) << 16 |
                               static_cast<uint32_t>(p[3]) << 24);
    crc = tb.t[7][lo & 0xFF] ^ tb.t[6][(lo >> 8) & 0xFF] ^
          tb.t[5][(lo >> 16) & 0xFF] ^ tb.t[4][lo >> 24] ^
          tb.t[3][p[4]] ^ tb.t[2][p[5]] ^ tb.t[1][p[6]] ^ tb.t[0][p[7]];
    p += 8;
    size -= 8;
  }
  while (size-- > 0) {
    crc = tb.t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace griddecl
