#ifndef GRIDDECL_COMMON_CRC32C_H_
#define GRIDDECL_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

/// \file
/// CRC32C (Castagnoli, polynomial 0x1EDC6F41, reflected form 0x82F63B78) —
/// the checksum guarding the v2 storage format, the catalog manifest, and
/// the scrub subsystem. Chosen over CRC32 (IEEE) for its better error
/// detection on short bursts and because it is what modern storage engines
/// standardize on; implemented in portable software (slice-by-8) so the
/// format does not depend on SSE4.2 being present.

namespace griddecl {

/// CRC32C of `data[0, size)`. `seed` chains calls: passing the CRC of a
/// previous chunk continues the computation as if the chunks were one
/// buffer (`Crc32c(ab) == Crc32c(b, Crc32c(a))`).
uint32_t Crc32c(const void* data, size_t size, uint32_t seed = 0);

inline uint32_t Crc32c(std::string_view data, uint32_t seed = 0) {
  return Crc32c(data.data(), data.size(), seed);
}

}  // namespace griddecl

#endif  // GRIDDECL_COMMON_CRC32C_H_
