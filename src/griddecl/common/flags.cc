#include "griddecl/common/flags.h"

#include <cstdlib>

namespace griddecl {

Result<Flags> Flags::Parse(const std::vector<std::string>& args) {
  Flags flags;
  bool flags_done = false;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (flags_done || arg.size() < 3 || arg.substr(0, 2) != "--") {
      if (arg == "--") {
        flags_done = true;
        continue;
      }
      flags.positional_.push_back(arg);
      continue;
    }
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      const std::string name = arg.substr(2, eq - 2);
      if (name.empty()) {
        return Status::InvalidArgument("malformed flag '" + arg + "'");
      }
      flags.values_[name] = arg.substr(eq + 1);
      continue;
    }
    const std::string name = arg.substr(2);
    if (i + 1 < args.size() && args[i + 1].substr(0, 2) != "--") {
      flags.values_[name] = args[i + 1];
      ++i;
    } else {
      flags.values_[name] = "true";
    }
  }
  return flags;
}

Result<Flags> Flags::Parse(int argc, const char* const* argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return Parse(args);
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& default_value) const {
  const auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

Result<int64_t> Flags::GetInt(const std::string& name,
                              int64_t default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("flag --" + name + " expects an integer, "
                                   "got '" + it->second + "'");
  }
  return static_cast<int64_t>(v);
}

Result<double> Flags::GetDouble(const std::string& name,
                                double default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("flag --" + name + " expects a number, "
                                   "got '" + it->second + "'");
  }
  return v;
}

Result<bool> Flags::GetBool(const std::string& name,
                            bool default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  if (it->second == "true" || it->second == "1") return true;
  if (it->second == "false" || it->second == "0") return false;
  return Status::InvalidArgument("flag --" + name +
                                 " expects true/false, got '" + it->second +
                                 "'");
}

Result<std::vector<uint32_t>> Flags::GetUint32List(
    const std::string& name, std::vector<uint32_t> default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  std::vector<uint32_t> out;
  const std::string& s = it->second;
  size_t pos = 0;
  while (pos <= s.size()) {
    const size_t next = s.find(',', pos);
    const std::string token = s.substr(
        pos, next == std::string::npos ? std::string::npos : next - pos);
    if (token.empty()) {
      return Status::InvalidArgument("flag --" + name +
                                     " has an empty list element");
    }
    char* end = nullptr;
    const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
    if (end == token.c_str() || *end != '\0' || v > 0xFFFFFFFFull) {
      return Status::InvalidArgument("flag --" + name +
                                     " expects comma-separated integers");
    }
    out.push_back(static_cast<uint32_t>(v));
    if (next == std::string::npos) break;
    pos = next + 1;
  }
  return out;
}

std::vector<std::string> Flags::FlagNames() const {
  std::vector<std::string> names;
  names.reserve(values_.size());
  for (const auto& [name, value] : values_) names.push_back(name);
  return names;
}

}  // namespace griddecl
