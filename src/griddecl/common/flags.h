#ifndef GRIDDECL_COMMON_FLAGS_H_
#define GRIDDECL_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "griddecl/common/status.h"

/// \file
/// Minimal command-line flag parsing for the `declctl` tool and the bench
/// binaries. Supports `--key=value`, `--key value`, bare boolean `--key`,
/// and positional arguments; no registration step, callers query by name.

namespace griddecl {

/// Parsed command line.
class Flags {
 public:
  /// Parses `args` (argv[1:]). A token starting with "--" is a flag; if it
  /// contains '=', the remainder is the value; otherwise, if the next token
  /// exists and is not itself a flag, it is consumed as the value; otherwise
  /// the flag is boolean ("true"). Anything else is positional.
  /// "--" ends flag parsing (everything after is positional).
  static Result<Flags> Parse(const std::vector<std::string>& args);

  /// Convenience for main(): skips argv[0].
  static Result<Flags> Parse(int argc, const char* const* argv);

  bool Has(const std::string& name) const;

  /// Flag value, or `default_value` when absent.
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;

  /// Integer flag; kInvalidArgument when present but malformed.
  Result<int64_t> GetInt(const std::string& name,
                         int64_t default_value) const;

  /// Floating-point flag; kInvalidArgument when present but malformed.
  Result<double> GetDouble(const std::string& name,
                           double default_value) const;

  /// Boolean flag: absent -> default; present bare or "true"/"1" -> true;
  /// "false"/"0" -> false; anything else is kInvalidArgument.
  Result<bool> GetBool(const std::string& name, bool default_value) const;

  /// Comma-separated integer list ("1,2,4"); default when absent.
  Result<std::vector<uint32_t>> GetUint32List(
      const std::string& name, std::vector<uint32_t> default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Names seen on the command line (for unknown-flag diagnostics).
  std::vector<std::string> FlagNames() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace griddecl

#endif  // GRIDDECL_COMMON_FLAGS_H_
