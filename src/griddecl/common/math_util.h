#ifndef GRIDDECL_COMMON_MATH_UTIL_H_
#define GRIDDECL_COMMON_MATH_UTIL_H_

#include <cstdint>

#include "griddecl/common/check.h"

/// \file
/// Integer math helpers. `CeilDiv` is the library's single most important
/// function: the optimal parallel response time of a query touching `n`
/// buckets on `m` disks is exactly `CeilDiv(n, m)`.

namespace griddecl {

/// ceil(a / b) for non-negative a and positive b.
constexpr uint64_t CeilDiv(uint64_t a, uint64_t b) {
  GRIDDECL_CHECK(b > 0);
  return (a + b - 1) / b;
}

/// Greatest common divisor.
constexpr uint64_t Gcd(uint64_t a, uint64_t b) {
  while (b != 0) {
    uint64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

/// Least common multiple; returns 0 if either argument is 0.
constexpr uint64_t Lcm(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return 0;
  return (a / Gcd(a, b)) * b;
}

/// Integer exponentiation base^exp; checked against uint64 overflow.
constexpr uint64_t IPow(uint64_t base, uint32_t exp) {
  uint64_t result = 1;
  for (uint32_t i = 0; i < exp; ++i) {
    GRIDDECL_CHECK_MSG(base == 0 || result <= ~uint64_t{0} / (base ? base : 1),
                       "IPow overflow");
    result *= base;
  }
  return result;
}

}  // namespace griddecl

#endif  // GRIDDECL_COMMON_MATH_UTIL_H_
