#include "griddecl/common/maxflow.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace griddecl {

MaxFlowGraph::MaxFlowGraph(uint32_t num_nodes)
    : adj_(num_nodes), level_(num_nodes), iter_(num_nodes) {
  GRIDDECL_CHECK(num_nodes >= 2);
}

uint32_t MaxFlowGraph::AddEdge(uint32_t from, uint32_t to,
                               uint64_t capacity) {
  GRIDDECL_CHECK(from < adj_.size() && to < adj_.size() && from != to);
  const uint32_t id = static_cast<uint32_t>(edges_.size());
  edges_.push_back({to, capacity, capacity});
  edges_.push_back({from, 0, 0});  // Residual reverse edge.
  adj_[from].push_back(id);
  adj_[to].push_back(id + 1);
  return id;
}

bool MaxFlowGraph::Bfs(uint32_t source, uint32_t sink) {
  std::fill(level_.begin(), level_.end(), -1);
  std::queue<uint32_t> queue;
  level_[source] = 0;
  queue.push(source);
  while (!queue.empty()) {
    const uint32_t node = queue.front();
    queue.pop();
    for (uint32_t edge_id : adj_[node]) {
      const Edge& e = edges_[edge_id];
      if (e.capacity > 0 && level_[e.to] < 0) {
        level_[e.to] = level_[node] + 1;
        queue.push(e.to);
      }
    }
  }
  return level_[sink] >= 0;
}

uint64_t MaxFlowGraph::Dfs(uint32_t node, uint32_t sink, uint64_t pushed) {
  if (node == sink) return pushed;
  for (uint32_t& i = iter_[node]; i < adj_[node].size(); ++i) {
    const uint32_t edge_id = adj_[node][i];
    Edge& e = edges_[edge_id];
    if (e.capacity > 0 && level_[e.to] == level_[node] + 1) {
      const uint64_t got =
          Dfs(e.to, sink, std::min(pushed, e.capacity));
      if (got > 0) {
        e.capacity -= got;
        edges_[edge_id ^ 1].capacity += got;
        return got;
      }
    }
  }
  return 0;
}

uint64_t MaxFlowGraph::MaxFlow(uint32_t source, uint32_t sink) {
  GRIDDECL_CHECK(source < adj_.size() && sink < adj_.size());
  GRIDDECL_CHECK(source != sink);
  uint64_t total = 0;
  while (Bfs(source, sink)) {
    std::fill(iter_.begin(), iter_.end(), 0u);
    for (;;) {
      const uint64_t pushed =
          Dfs(source, sink, std::numeric_limits<uint64_t>::max());
      if (pushed == 0) break;
      total += pushed;
    }
  }
  return total;
}

uint64_t MaxFlowGraph::flow(uint32_t edge_id) const {
  GRIDDECL_CHECK(edge_id < edges_.size() && (edge_id % 2) == 0);
  return edges_[edge_id].original - edges_[edge_id].capacity;
}

void MaxFlowGraph::ResetCapacities() {
  for (Edge& e : edges_) e.capacity = e.original;
}

void MaxFlowGraph::SetCapacity(uint32_t edge_id, uint64_t capacity) {
  GRIDDECL_CHECK(edge_id < edges_.size() && (edge_id % 2) == 0);
  edges_[edge_id].capacity = capacity;
  edges_[edge_id].original = capacity;
  edges_[edge_id ^ 1].capacity = 0;
  edges_[edge_id ^ 1].original = 0;
}

}  // namespace griddecl
