#ifndef GRIDDECL_COMMON_MAXFLOW_H_
#define GRIDDECL_COMMON_MAXFLOW_H_

#include <cstdint>
#include <vector>

#include "griddecl/common/check.h"

/// \file
/// Dinic's maximum-flow algorithm on small integer-capacity graphs.
/// Substrate for the replica router (eval/replica_router.h), which decides
/// feasibility of "can this query be answered within T accesses per disk"
/// as a bipartite flow problem. O(V^2 E) worst case, effectively linear on
/// the shallow bipartite graphs we build.

namespace griddecl {

/// Max-flow solver. Build edges, then call MaxFlow once (capacities are
/// consumed; construct a fresh instance per run or use ResetCapacities).
class MaxFlowGraph {
 public:
  /// Graph over `num_nodes` vertices, ids 0..num_nodes-1.
  explicit MaxFlowGraph(uint32_t num_nodes);

  /// Adds a directed edge with the given capacity; returns an edge id
  /// usable with `flow()` after solving.
  uint32_t AddEdge(uint32_t from, uint32_t to, uint64_t capacity);

  /// Computes the maximum flow from `source` to `sink`.
  uint64_t MaxFlow(uint32_t source, uint32_t sink);

  /// Flow pushed through edge `edge_id` by the last MaxFlow call.
  uint64_t flow(uint32_t edge_id) const;

  /// Restores all capacities to their construction-time values so the
  /// graph can be re-solved (used by the router's binary search after
  /// retuning sink capacities via SetCapacity).
  void ResetCapacities();

  /// Overwrites the capacity of `edge_id` (and records it as the new
  /// construction-time value for ResetCapacities).
  void SetCapacity(uint32_t edge_id, uint64_t capacity);

  uint32_t num_nodes() const { return static_cast<uint32_t>(adj_.size()); }

 private:
  struct Edge {
    uint32_t to;
    uint64_t capacity;   // Remaining capacity.
    uint64_t original;   // Construction-time capacity.
  };

  bool Bfs(uint32_t source, uint32_t sink);
  uint64_t Dfs(uint32_t node, uint32_t sink, uint64_t pushed);

  std::vector<Edge> edges_;                 // Paired: edge 2i has reverse 2i+1.
  std::vector<std::vector<uint32_t>> adj_;  // Node -> edge ids.
  std::vector<int32_t> level_;
  std::vector<uint32_t> iter_;
};

}  // namespace griddecl

#endif  // GRIDDECL_COMMON_MAXFLOW_H_
