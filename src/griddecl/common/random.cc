#include "griddecl/common/random.h"

#include <numeric>

#include "griddecl/common/check.h"

namespace griddecl {

namespace {

// SplitMix64: expands a single seed into well-mixed state words.
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(&sm);
  // All-zero state would be a fixed point; SplitMix64 cannot produce four
  // zero outputs in a row, but keep the guard explicit.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  GRIDDECL_CHECK(bound > 0);
  // Rejection sampling over the largest multiple of `bound` below 2^64.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  GRIDDECL_CHECK(lo <= hi);
  const uint64_t span =
      static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) {
    // Full 64-bit range.
    return static_cast<int64_t>(Next());
  }
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  // 53 high bits -> uniform in [0, 1) with full double precision.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

std::vector<uint32_t> Rng::Permutation(uint32_t n) {
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  for (uint32_t i = n; i > 1; --i) {
    const uint32_t j = static_cast<uint32_t>(NextBelow(i));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

}  // namespace griddecl
