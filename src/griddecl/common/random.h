#ifndef GRIDDECL_COMMON_RANDOM_H_
#define GRIDDECL_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

/// \file
/// Deterministic pseudo-random number generation.
///
/// All experiments in this repository are seeded, so results are exactly
/// reproducible run-to-run and platform-to-platform. We implement
/// xoshiro256** (Blackman & Vigna) rather than relying on `std::mt19937`
/// plus `std::uniform_int_distribution`, because the standard distributions
/// are not guaranteed to produce identical streams across standard library
/// implementations.

namespace griddecl {

/// xoshiro256** PRNG with rejection-sampled bounded draws.
///
/// Not cryptographically secure; statistical quality is more than adequate
/// for workload generation and randomized property tests.
class Rng {
 public:
  /// Seeds the generator deterministically from `seed` via SplitMix64.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform in [0, bound); bound must be > 0. Rejection sampling, unbiased.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform in [lo, hi] inclusive; requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability `p` (clamped to [0,1]).
  bool NextBool(double p);

  /// A uniformly random permutation of {0, 1, ..., n-1} (Fisher–Yates).
  std::vector<uint32_t> Permutation(uint32_t n);

 private:
  uint64_t state_[4];
};

}  // namespace griddecl

#endif  // GRIDDECL_COMMON_RANDOM_H_
