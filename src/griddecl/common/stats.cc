#include "griddecl/common/stats.h"

#include <algorithm>
#include <cmath>

#include "griddecl/common/check.h"

namespace griddecl {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const uint64_t n = count_ + other.count_;
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  mean_ += delta * nb / static_cast<double>(n);
  m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(n);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = n;
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(uint32_t num_buckets) : counts_(num_buckets, 0) {
  GRIDDECL_CHECK(num_buckets >= 1);
}

void Histogram::Add(uint64_t value) {
  if (value < counts_.size()) {
    ++counts_[static_cast<size_t>(value)];
  } else {
    ++overflow_;
  }
  ++total_;
}

uint64_t Histogram::bucket_count(uint32_t bucket) const {
  GRIDDECL_CHECK(bucket < counts_.size());
  return counts_[bucket];
}

double Histogram::FractionBelow(uint64_t value) const {
  if (total_ == 0) return 0.0;
  uint64_t below = 0;
  const uint64_t limit = std::min<uint64_t>(value, counts_.size());
  for (uint64_t i = 0; i < limit; ++i) below += counts_[static_cast<size_t>(i)];
  return static_cast<double>(below) / static_cast<double>(total_);
}

}  // namespace griddecl
