#ifndef GRIDDECL_COMMON_STATS_H_
#define GRIDDECL_COMMON_STATS_H_

#include <cstdint>
#include <vector>

/// \file
/// Streaming statistics accumulators used by the evaluator to aggregate
/// per-query response times without storing every sample.

namespace griddecl {

/// Accumulates count / mean / variance / min / max in one pass
/// (Welford's online algorithm; numerically stable).
class RunningStat {
 public:
  RunningStat() = default;

  /// Adds one observation.
  void Add(double x);

  /// Merges another accumulator into this one (parallel-friendly).
  void Merge(const RunningStat& other);

  uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Population variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bucket histogram over non-negative integer values.
///
/// Values >= `num_buckets` are counted in the overflow bucket. Used to
/// report distributions of per-query response time deviation.
class Histogram {
 public:
  /// Creates a histogram with buckets for values 0..num_buckets-1 plus
  /// an overflow bucket. num_buckets must be >= 1.
  explicit Histogram(uint32_t num_buckets);

  void Add(uint64_t value);

  uint64_t bucket_count(uint32_t bucket) const;
  uint64_t overflow_count() const { return overflow_; }
  uint64_t total_count() const { return total_; }
  uint32_t num_buckets() const {
    return static_cast<uint32_t>(counts_.size());
  }

  /// Fraction of observations strictly below `value` (overflow counts as
  /// >= num_buckets). Returns 0 when empty.
  double FractionBelow(uint64_t value) const;

 private:
  std::vector<uint64_t> counts_;
  uint64_t overflow_ = 0;
  uint64_t total_ = 0;
};

}  // namespace griddecl

#endif  // GRIDDECL_COMMON_STATS_H_
