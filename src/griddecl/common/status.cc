#include "griddecl/common/status.h"

namespace griddecl {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kUnsupported:
      return "unsupported";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace griddecl
