#ifndef GRIDDECL_COMMON_STATUS_H_
#define GRIDDECL_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "griddecl/common/check.h"

/// \file
/// Error model for the library: `Status` for fallible operations with no
/// payload, `Result<T>` for fallible operations producing a value. The
/// library does not throw exceptions (per the database-C++ conventions this
/// repo follows); constructors that cannot fail take validated inputs, and
/// factory functions returning `Result<T>` perform the validation.

namespace griddecl {

/// Machine-inspectable category of an error.
enum class StatusCode {
  kOk = 0,
  /// Caller passed an argument outside the documented domain.
  kInvalidArgument,
  /// A named entity (e.g. a declustering method) is not registered.
  kNotFound,
  /// The operation is valid but unsupported for this configuration
  /// (e.g. ECC with a non-power-of-two disk count).
  kUnsupported,
  /// An internal invariant failed in a recoverable context.
  kInternal,
  /// A resource is (possibly transiently) unreachable — a failed disk, a
  /// tripped circuit breaker, an injected read fault. Retrying or a
  /// degraded read path may succeed.
  kUnavailable,
  /// The operation's deadline expired before it completed.
  kDeadlineExceeded,
  /// A bounded resource (e.g. the admission queue) is full; the request
  /// was shed rather than queued unboundedly.
  kResourceExhausted,
  /// The system is not in the state the operation requires — e.g. a
  /// generation-fenced request reached a node serving a different catalog
  /// generation. Retrying against refreshed state may succeed.
  kFailedPrecondition,
};

/// Returns a stable lowercase name for `code` ("ok", "invalid_argument", ...).
const char* StatusCodeName(StatusCode code);

/// Success-or-error outcome of an operation with no result payload.
///
/// Cheap to copy in the success case; carries a message in the error case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs an error status. `code` must not be kOk.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    GRIDDECL_CHECK(code_ != StatusCode::kOk);
  }

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  /// Error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// "ok" or "<code>: <message>"; for logs and test failure output.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value of type `T` or an error `Status`.
///
/// Usage:
///     Result<Foo> r = MakeFoo(...);
///     if (!r.ok()) return r.status();
///     Foo& foo = r.value();
template <typename T>
class Result {
 public:
  /// Implicit from a value: allows `return foo;` in factory functions.
  Result(T value) : state_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from an error status: allows `return Status::...;`.
  /// `status` must not be OK (an OK status carries no value).
  Result(Status status) : state_(std::move(status)) {  // NOLINT
    GRIDDECL_CHECK(!std::get<Status>(state_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(state_); }

  /// The error status; OK when a value is held.
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(state_);
  }

  /// The held value. It is a checked error to call on a non-OK result.
  const T& value() const& {
    GRIDDECL_CHECK_MSG(ok(), "Result::value on error: %s",
                       std::get<Status>(state_).ToString().c_str());
    return std::get<T>(state_);
  }
  T& value() & {
    GRIDDECL_CHECK_MSG(ok(), "Result::value on error: %s",
                       std::get<Status>(state_).ToString().c_str());
    return std::get<T>(state_);
  }
  T&& value() && {
    GRIDDECL_CHECK_MSG(ok(), "Result::value on error: %s",
                       std::get<Status>(state_).ToString().c_str());
    return std::get<T>(std::move(state_));
  }

 private:
  std::variant<T, Status> state_;
};

/// Propagates an error status from an expression that yields a `Status`.
#define GRIDDECL_RETURN_IF_ERROR(expr)                  \
  do {                                                  \
    ::griddecl::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                          \
  } while (0)

}  // namespace griddecl

#endif  // GRIDDECL_COMMON_STATUS_H_
