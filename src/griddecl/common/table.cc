#include "griddecl/common/table.h"

#include <algorithm>
#include <cstdio>

#include "griddecl/common/check.h"

namespace griddecl {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  GRIDDECL_CHECK(!headers_.empty());
}

void Table::AddRow(std::vector<std::string> cells) {
  GRIDDECL_CHECK_MSG(cells.size() == headers_.size(),
                     "row has %zu cells, table has %zu columns", cells.size(),
                     headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::Fmt(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string Table::Fmt(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return buf;
}

void Table::PrintText(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  print_row(headers_);
  os << "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

namespace {
void WriteCsvCell(std::ostream& os, const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    os << cell;
    return;
  }
  os << '"';
  for (char ch : cell) {
    if (ch == '"') os << '"';
    os << ch;
  }
  os << '"';
}
}  // namespace

void Table::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      WriteCsvCell(os, row[c]);
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace griddecl
