#ifndef GRIDDECL_COMMON_TABLE_H_
#define GRIDDECL_COMMON_TABLE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

/// \file
/// Minimal tabular report writer. Every benchmark binary prints the series a
/// paper table/figure reports, both as an aligned ASCII table (for humans)
/// and as CSV (for regenerating plots).

namespace griddecl {

/// Column-oriented table with string cells and aligned text rendering.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; must match the number of headers.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` decimals.
  static std::string Fmt(double v, int precision = 3);
  static std::string Fmt(uint64_t v);
  static std::string Fmt(int64_t v);

  size_t num_rows() const { return rows_.size(); }
  size_t num_cols() const { return headers_.size(); }
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::string>& row(size_t i) const { return rows_[i]; }

  /// Writes an aligned, pipe-separated ASCII rendering.
  void PrintText(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  void PrintCsv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace griddecl

#endif  // GRIDDECL_COMMON_TABLE_H_
