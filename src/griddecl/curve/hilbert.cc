#include "griddecl/curve/hilbert.h"

#include <array>

namespace griddecl {

namespace {

// Skilling's in-place transform between axis coordinates and the "transpose"
// representation of the Hilbert index. `x` holds one `bits`-bit word per
// dimension.

void AxesToTranspose(std::array<uint64_t, kMaxDims>& x, uint32_t n,
                     uint32_t bits) {
  if (bits < 2) {
    // Order-1 cube: transpose is the Gray-code preimage handled below by the
    // shared tail; the loop body is a no-op for Q <= 1.
  }
  // Inverse undo of the exchanges performed by TransposeToAxes.
  for (uint64_t q = uint64_t{1} << (bits - 1); q > 1; q >>= 1) {
    const uint64_t p = q - 1;
    for (uint32_t i = 0; i < n; ++i) {
      if (x[i] & q) {
        x[0] ^= p;  // invert low bits of x[0]
      } else {
        const uint64_t t = (x[0] ^ x[i]) & p;
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }
  // Gray encode.
  for (uint32_t i = 1; i < n; ++i) x[i] ^= x[i - 1];
  uint64_t t = 0;
  for (uint64_t q = uint64_t{1} << (bits - 1); q > 1; q >>= 1) {
    if (x[n - 1] & q) t ^= q - 1;
  }
  for (uint32_t i = 0; i < n; ++i) x[i] ^= t;
}

void TransposeToAxes(std::array<uint64_t, kMaxDims>& x, uint32_t n,
                     uint32_t bits) {
  const uint64_t m = uint64_t{2} << (bits - 1);
  // Gray decode by H ^ (H/2).
  uint64_t t = x[n - 1] >> 1;
  for (uint32_t i = n; i-- > 1;) x[i] ^= x[i - 1];
  x[0] ^= t;
  // Undo excess work.
  for (uint64_t q = 2; q != m; q <<= 1) {
    const uint64_t p = q - 1;
    for (uint32_t i = n; i-- > 0;) {
      if (x[i] & q) {
        x[0] ^= p;
      } else {
        const uint64_t tt = (x[0] ^ x[i]) & p;
        x[0] ^= tt;
        x[i] ^= tt;
      }
    }
  }
}

}  // namespace

Result<HilbertCurve> HilbertCurve::Create(uint32_t num_dims, uint32_t order) {
  if (num_dims < 1 || num_dims > kMaxDims) {
    return Status::InvalidArgument("Hilbert curve needs 1.." +
                                   std::to_string(kMaxDims) + " dims");
  }
  if (order < 1) {
    return Status::InvalidArgument("Hilbert curve order must be >= 1");
  }
  if (static_cast<uint64_t>(num_dims) * order > 64) {
    return Status::InvalidArgument(
        "num_dims * order must be <= 64 for uint64 indices");
  }
  return HilbertCurve(num_dims, order);
}

uint64_t HilbertCurve::Index(const BucketCoords& c) const {
  GRIDDECL_CHECK(c.size() == num_dims_);
  std::array<uint64_t, kMaxDims> x{};
  for (uint32_t i = 0; i < num_dims_; ++i) {
    GRIDDECL_CHECK_MSG(c[i] < side(), "coord %u out of cube side %llu", c[i],
                       static_cast<unsigned long long>(side()));
    x[i] = c[i];
  }
  AxesToTranspose(x, num_dims_, order_);
  // Interleave: the index's most significant bit is the top bit of x[0],
  // then the top bit of x[1], ..., round-robin down to the lowest bits.
  uint64_t index = 0;
  for (uint32_t bit = order_; bit-- > 0;) {
    for (uint32_t i = 0; i < num_dims_; ++i) {
      index = (index << 1) | ((x[i] >> bit) & 1);
    }
  }
  return index;
}

BucketCoords HilbertCurve::Coords(uint64_t index) const {
  GRIDDECL_CHECK(index < num_cells());
  std::array<uint64_t, kMaxDims> x{};
  // De-interleave into transpose form.
  for (uint32_t bit = order_; bit-- > 0;) {
    for (uint32_t i = 0; i < num_dims_; ++i) {
      const uint32_t src = bit * num_dims_ + (num_dims_ - 1 - i);
      x[i] |= ((index >> src) & 1) << bit;
    }
  }
  TransposeToAxes(x, num_dims_, order_);
  BucketCoords c(num_dims_);
  for (uint32_t i = 0; i < num_dims_; ++i) {
    c[i] = static_cast<uint32_t>(x[i]);
  }
  return c;
}

}  // namespace griddecl
