#ifndef GRIDDECL_CURVE_HILBERT_H_
#define GRIDDECL_CURVE_HILBERT_H_

#include <cstdint>

#include "griddecl/common/status.h"
#include "griddecl/grid/bucket.h"

/// \file
/// k-dimensional Hilbert space-filling curve.
///
/// The curve visits every cell of a `(2^order)^k` hyper-cube exactly once,
/// moving to an adjacent cell (Manhattan distance 1) at each step. HCAM
/// (Faloutsos & Bhagwat, PDIS'93) allocates disks to buckets round-robin in
/// Hilbert order, exploiting the curve's clustering property (Jagadish,
/// SIGMOD'90): cells close on the curve are close in space, so the cells of
/// a small range query tend to occupy a contiguous stretch of the curve and
/// therefore spread evenly over the disks.
///
/// The implementation uses Skilling's transpose algorithm ("Programming the
/// Hilbert curve", AIP Conf. Proc. 707, 2004): O(k * order) time per
/// conversion, no lookup tables, exact inverse.

namespace griddecl {

/// Encoder/decoder for the Hilbert curve on a `(2^order)^k` cube.
class HilbertCurve {
 public:
  /// Validated factory. Requires 1 <= k <= kMaxDims, 1 <= order, and
  /// k * order <= 64 so indices fit in uint64.
  static Result<HilbertCurve> Create(uint32_t num_dims, uint32_t order);

  uint32_t num_dims() const { return num_dims_; }
  uint32_t order() const { return order_; }

  /// Side length of the cube, 2^order.
  uint64_t side() const { return uint64_t{1} << order_; }

  /// Total number of cells, 2^(k*order).
  uint64_t num_cells() const { return uint64_t{1} << (num_dims_ * order_); }

  /// Position of cell `c` along the curve, in [0, num_cells()).
  /// Every coordinate of `c` must be < side().
  uint64_t Index(const BucketCoords& c) const;

  /// Cell at position `index` along the curve (inverse of `Index`).
  BucketCoords Coords(uint64_t index) const;

 private:
  HilbertCurve(uint32_t num_dims, uint32_t order)
      : num_dims_(num_dims), order_(order) {}

  uint32_t num_dims_;
  uint32_t order_;
};

}  // namespace griddecl

#endif  // GRIDDECL_CURVE_HILBERT_H_
