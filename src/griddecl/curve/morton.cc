#include "griddecl/curve/morton.h"

namespace griddecl {

Result<MortonCurve> MortonCurve::Create(uint32_t num_dims, uint32_t order) {
  if (num_dims < 1 || num_dims > kMaxDims) {
    return Status::InvalidArgument("Morton curve needs 1.." +
                                   std::to_string(kMaxDims) + " dims");
  }
  if (order < 1) {
    return Status::InvalidArgument("Morton curve order must be >= 1");
  }
  if (static_cast<uint64_t>(num_dims) * order > 64) {
    return Status::InvalidArgument(
        "num_dims * order must be <= 64 for uint64 indices");
  }
  return MortonCurve(num_dims, order);
}

uint64_t MortonCurve::Index(const BucketCoords& c) const {
  GRIDDECL_CHECK(c.size() == num_dims_);
  uint64_t index = 0;
  for (uint32_t bit = order_; bit-- > 0;) {
    for (uint32_t i = 0; i < num_dims_; ++i) {
      GRIDDECL_CHECK(c[i] < side());
      index = (index << 1) | ((c[i] >> bit) & 1);
    }
  }
  return index;
}

BucketCoords MortonCurve::Coords(uint64_t index) const {
  GRIDDECL_CHECK(index < num_cells());
  BucketCoords c(num_dims_);
  for (uint32_t bit = 0; bit < order_; ++bit) {
    for (uint32_t i = 0; i < num_dims_; ++i) {
      const uint32_t src = bit * num_dims_ + (num_dims_ - 1 - i);
      c[i] |= static_cast<uint32_t>((index >> src) & 1) << bit;
    }
  }
  return c;
}

}  // namespace griddecl
