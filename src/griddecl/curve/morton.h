#ifndef GRIDDECL_CURVE_MORTON_H_
#define GRIDDECL_CURVE_MORTON_H_

#include <cstdint>

#include "griddecl/common/status.h"
#include "griddecl/grid/bucket.h"

/// \file
/// Z-order (Morton) space-filling curve: plain bit interleaving.
///
/// Used as an ablation against the Hilbert curve in HCAM-style allocation:
/// Z-order is cheaper to compute but has long "jumps", so it isolates how
/// much of HCAM's benefit comes from the Hilbert curve's superior clustering.

namespace griddecl {

/// Encoder/decoder for the Z-order curve on a `(2^order)^k` cube.
class MortonCurve {
 public:
  /// Validated factory; same constraints as HilbertCurve::Create.
  static Result<MortonCurve> Create(uint32_t num_dims, uint32_t order);

  uint32_t num_dims() const { return num_dims_; }
  uint32_t order() const { return order_; }
  uint64_t side() const { return uint64_t{1} << order_; }
  uint64_t num_cells() const { return uint64_t{1} << (num_dims_ * order_); }

  /// Morton code of `c`: bits of the coordinates interleaved, dimension 0
  /// contributing the most significant bit of each group.
  uint64_t Index(const BucketCoords& c) const;

  /// Inverse of `Index`.
  BucketCoords Coords(uint64_t index) const;

 private:
  MortonCurve(uint32_t num_dims, uint32_t order)
      : num_dims_(num_dims), order_(order) {}

  uint32_t num_dims_;
  uint32_t order_;
};

}  // namespace griddecl

#endif  // GRIDDECL_CURVE_MORTON_H_
