#include "griddecl/eval/advisor.h"

#include <algorithm>

#include "griddecl/common/random.h"
#include "griddecl/methods/registry.h"

namespace griddecl {

namespace {

std::vector<std::string> DefaultCandidates() {
  return {"dm", "fx-auto", "ecc", "hcam", "zcam", "linear", "random"};
}

MethodScore ScoreMethod(const DeclusteringMethod& method,
                        const Workload& train, const Workload& test) {
  MethodScore score;
  score.name = method.name();
  const Evaluator evaluator(method);
  const WorkloadEval tr = evaluator.EvaluateWorkload(train);
  const WorkloadEval te = evaluator.EvaluateWorkload(test);
  score.train_mean_response = tr.MeanResponse();
  score.test_mean_response = te.MeanResponse();
  score.test_mean_ratio = te.MeanRatio();
  score.test_fraction_optimal = te.FractionOptimal();
  return score;
}

}  // namespace

Result<Advice> AdviseDeclustering(const GridSpec& grid, uint32_t num_disks,
                                  const Workload& workload,
                                  const AdvisorOptions& options) {
  if (workload.size() < 4) {
    return Status::InvalidArgument(
        "advisor needs at least 4 workload queries");
  }
  if (!(options.train_fraction > 0.0) || !(options.train_fraction < 1.0)) {
    return Status::InvalidArgument("train_fraction must be in (0, 1)");
  }
  for (const RangeQuery& q : workload.queries) {
    if (!q.rect().WithinGrid(grid)) {
      return Status::InvalidArgument("workload query " + q.ToString() +
                                     " outside grid " + grid.ToString());
    }
  }

  // Shuffled train/test split.
  Rng rng(options.seed);
  const std::vector<uint32_t> perm =
      rng.Permutation(static_cast<uint32_t>(workload.size()));
  const size_t train_size = std::max<size_t>(
      1, std::min<size_t>(
             workload.size() - 1,
             static_cast<size_t>(options.train_fraction *
                                 static_cast<double>(workload.size()))));
  Workload train;
  train.name = workload.name + "/train";
  Workload test;
  test.name = workload.name + "/test";
  for (size_t i = 0; i < perm.size(); ++i) {
    (i < train_size ? train : test)
        .queries.push_back(workload.queries[perm[i]]);
  }

  const std::vector<std::string> names =
      options.candidates.empty() ? DefaultCandidates() : options.candidates;

  Advice advice;
  std::vector<std::unique_ptr<DeclusteringMethod>> instances;
  // Best formula method by *train* cost seeds the optimizer.
  int best_train_index = -1;
  for (const std::string& name : names) {
    MethodOptions mopts;
    mopts.seed = options.seed;
    Result<std::unique_ptr<DeclusteringMethod>> m =
        CreateMethod(name, grid, num_disks, mopts);
    if (!m.ok()) {
      if (m.status().code() == StatusCode::kUnsupported) continue;
      return m.status();
    }
    instances.push_back(std::move(m).value());
    advice.scores.push_back(ScoreMethod(*instances.back(), train, test));
    if (best_train_index < 0 ||
        advice.scores.back().train_mean_response <
            advice.scores[static_cast<size_t>(best_train_index)]
                .train_mean_response) {
      best_train_index = static_cast<int>(advice.scores.size()) - 1;
    }
  }
  if (instances.empty()) {
    return Status::InvalidArgument("no candidate method is constructible");
  }

  if (options.include_optimized) {
    Result<std::unique_ptr<DeclusteringMethod>> opt = OptimizeForWorkload(
        *instances[static_cast<size_t>(best_train_index)], train,
        options.optimize);
    if (!opt.ok()) return opt.status();
    instances.push_back(std::move(opt).value());
    advice.scores.push_back(ScoreMethod(*instances.back(), train, test));
  }

  // Rank by held-out mean response; keep the instances aligned.
  std::vector<size_t> order(advice.scores.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return advice.scores[a].test_mean_response <
           advice.scores[b].test_mean_response;
  });
  std::vector<MethodScore> sorted;
  sorted.reserve(order.size());
  for (size_t i : order) sorted.push_back(advice.scores[i]);
  advice.scores = std::move(sorted);
  advice.recommended = advice.scores.front().name;
  advice.method = std::move(instances[order.front()]);
  return advice;
}

}  // namespace griddecl
