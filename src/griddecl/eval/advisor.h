#ifndef GRIDDECL_EVAL_ADVISOR_H_
#define GRIDDECL_EVAL_ADVISOR_H_

#include <memory>
#include <string>
#include <vector>

#include "griddecl/eval/evaluator.h"
#include "griddecl/methods/workload_opt.h"
#include "griddecl/query/workload.h"

/// \file
/// Declustering advisor: the library-level embodiment of the paper's two
/// closing recommendations — (1) use information about common queries when
/// choosing the declustering, and (2) support several methods, because
/// there is no clear winner.
///
/// Given a workload, the advisor splits it into train/test halves, scores
/// every candidate method on the *test* split (so formula methods are not
/// unfairly compared against an optimizer that saw the data), optionally
/// hill-climbs the best formula method's allocation on the train split, and
/// recommends the method with the lowest held-out mean response time.

namespace griddecl {

/// Advisor knobs.
struct AdvisorOptions {
  /// Candidate registry names. Empty = the paper set (dm, fx-auto, ecc,
  /// hcam) plus the zcam/linear/random baselines; inapplicable candidates
  /// are skipped.
  std::vector<std::string> candidates;
  /// Fraction of the workload used for training (the rest scores).
  double train_fraction = 0.5;
  uint64_t seed = 9;
  /// Also run the workload optimizer seeded with the best formula method.
  bool include_optimized = true;
  WorkloadOptimizeOptions optimize;
};

/// Score of one candidate.
struct MethodScore {
  std::string name;
  double train_mean_response = 0;
  double test_mean_response = 0;
  double test_mean_ratio = 0;
  double test_fraction_optimal = 0;
};

/// Advisor output.
struct Advice {
  /// All scored candidates, best (lowest test mean response) first.
  std::vector<MethodScore> scores;
  /// Name of the winner.
  std::string recommended;
  /// Ready-to-use instance of the winner (a TableMethod when the optimizer
  /// won, otherwise a fresh registry instance).
  std::unique_ptr<DeclusteringMethod> method;
};

/// Scores candidates for declustering `grid` over `num_disks` disks under
/// `workload` and recommends one. The workload needs at least 4 queries
/// (so both splits are non-trivial).
Result<Advice> AdviseDeclustering(const GridSpec& grid, uint32_t num_disks,
                                  const Workload& workload,
                                  const AdvisorOptions& options = {});

}  // namespace griddecl

#endif  // GRIDDECL_EVAL_ADVISOR_H_
