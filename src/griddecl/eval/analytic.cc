#include "griddecl/eval/analytic.h"

#include <algorithm>

#include "griddecl/common/bit_util.h"

namespace griddecl {

namespace {

/// Residue histogram of {a*x mod M : x in [lo, hi]} in O(M).
/// The map x -> a*x mod M is periodic in x with period M/gcd... more simply:
/// the full interval splits into floor(n/M) complete periods of x mod M
/// (each contributing the histogram of {a*x mod M : x in [0, M)}) plus a
/// remainder of fewer than M consecutive x values, handled directly.
std::vector<uint64_t> AxisHistogramMod(uint32_t a, uint32_t lo, uint32_t hi,
                                       uint32_t m) {
  std::vector<uint64_t> h(m, 0);
  const uint64_t n = static_cast<uint64_t>(hi) - lo + 1;
  const uint64_t full_periods = n / m;
  if (full_periods > 0) {
    // Over any M consecutive x, x mod M takes each residue once, so
    // a*x mod M takes value (a*r mod M) once per residue r.
    std::vector<uint64_t> base(m, 0);
    for (uint32_t r = 0; r < m; ++r) {
      base[(static_cast<uint64_t>(a) * r) % m] += 1;
    }
    for (uint32_t v = 0; v < m; ++v) h[v] += base[v] * full_periods;
  }
  const uint64_t rem = n % m;
  for (uint64_t i = 0; i < rem; ++i) {
    const uint64_t x = static_cast<uint64_t>(lo) + full_periods * m + i;
    h[(static_cast<uint64_t>(a) * (x % m)) % m] += 1;
  }
  return h;
}

/// Histogram of the low-bits values {x mod M : x in [lo, hi]} for M = 2^m.
std::vector<uint64_t> AxisHistogramLowBits(uint32_t lo, uint32_t hi,
                                           uint32_t m) {
  // Same structure as AxisHistogramMod with a = 1; reuse it.
  return AxisHistogramMod(1, lo, hi, m);
}

}  // namespace

uint64_t MaxCount(const std::vector<uint64_t>& counts) {
  GRIDDECL_CHECK(!counts.empty());
  return *std::max_element(counts.begin(), counts.end());
}

Result<std::vector<uint64_t>> AnalyticGdmCounts(
    const std::vector<uint32_t>& coefficients, const BucketRect& rect,
    uint32_t num_disks) {
  if (num_disks < 1) {
    return Status::InvalidArgument("number of disks must be >= 1");
  }
  if (coefficients.size() != rect.num_dims()) {
    return Status::InvalidArgument("need one coefficient per dimension");
  }
  // counts = cyclic convolution over Z_M of the per-axis histograms.
  std::vector<uint64_t> counts(num_disks, 0);
  counts[0] = 1;  // Identity for cyclic convolution: all mass at residue 0.
  for (uint32_t i = 0; i < rect.num_dims(); ++i) {
    const std::vector<uint64_t> axis = AxisHistogramMod(
        coefficients[i] % num_disks, rect.lo()[i], rect.hi()[i], num_disks);
    std::vector<uint64_t> next(num_disks, 0);
    for (uint32_t r = 0; r < num_disks; ++r) {
      if (counts[r] == 0) continue;
      for (uint32_t s = 0; s < num_disks; ++s) {
        if (axis[s] == 0) continue;
        next[(r + s) % num_disks] += counts[r] * axis[s];
      }
    }
    counts = std::move(next);
  }
  return counts;
}

Result<std::vector<uint64_t>> AnalyticFxCounts(const BucketRect& rect,
                                               uint32_t num_disks) {
  if (num_disks < 1) {
    return Status::InvalidArgument("number of disks must be >= 1");
  }
  if (!IsPowerOfTwo(num_disks)) {
    return Status::Unsupported(
        "analytic FX counts require a power-of-two disk count");
  }
  // (xor_i x_i) mod 2^m = xor of the low m bits of each coordinate, and the
  // counts are the XOR-convolution of per-axis low-bit histograms.
  std::vector<uint64_t> counts(num_disks, 0);
  counts[0] = 1;
  for (uint32_t i = 0; i < rect.num_dims(); ++i) {
    const std::vector<uint64_t> axis =
        AxisHistogramLowBits(rect.lo()[i], rect.hi()[i], num_disks);
    std::vector<uint64_t> next(num_disks, 0);
    for (uint32_t r = 0; r < num_disks; ++r) {
      if (counts[r] == 0) continue;
      for (uint32_t s = 0; s < num_disks; ++s) {
        if (axis[s] == 0) continue;
        next[r ^ s] += counts[r] * axis[s];
      }
    }
    counts = std::move(next);
  }
  return counts;
}

}  // namespace griddecl
