#ifndef GRIDDECL_EVAL_ANALYTIC_H_
#define GRIDDECL_EVAL_ANALYTIC_H_

#include <cstdint>
#include <vector>

#include "griddecl/common/status.h"
#include "griddecl/grid/rect.h"

/// \file
/// Closed-form per-disk counts for the algebraic declustering methods.
///
/// The generic metric walks every bucket of a query — O(|Q|) per query,
/// which dominates large-query sweeps. For DM/GDM and FX the per-disk
/// counts factor across dimensions:
///
///  * GDM: disk = (sum a_i x_i) mod M. Each axis contributes the residue
///    multiset {a_i x mod M : x in [lo_i, hi_i]}; the query's counts are
///    the cyclic convolution of the per-axis histograms — O(k·M^2) total,
///    independent of |Q|.
///
///  * FX with M = 2^m: disk = (xor_i x_i) mod M depends only on the low m
///    bits of each coordinate; the counts are the XOR (dyadic) convolution
///    of the per-axis low-bit histograms — likewise O(k·M^2).
///
/// `tests/analytic_test.cc` verifies both against brute-force enumeration
/// across randomized configurations, and `bench_a6_analytic` measures the
/// speedup.

namespace griddecl {

/// Per-disk bucket counts of `rect` under GDM with the given coefficients
/// (all-ones = DM/CMD) and `num_disks` disks. `coefficients.size()` must
/// equal `rect.num_dims()`; num_disks >= 1.
Result<std::vector<uint64_t>> AnalyticGdmCounts(
    const std::vector<uint32_t>& coefficients, const BucketRect& rect,
    uint32_t num_disks);

/// Per-disk bucket counts of `rect` under FX (bitwise XOR of coordinates)
/// with `num_disks` disks. Requires num_disks to be a power of two (the
/// factorization only holds then; use the generic path otherwise).
Result<std::vector<uint64_t>> AnalyticFxCounts(const BucketRect& rect,
                                               uint32_t num_disks);

/// Max entry of `counts` — the response time given per-disk counts.
uint64_t MaxCount(const std::vector<uint64_t>& counts);

}  // namespace griddecl

#endif  // GRIDDECL_EVAL_ANALYTIC_H_
