#include "griddecl/eval/disk_map.h"

#include <algorithm>
#include <numeric>

namespace griddecl {

namespace {

uint32_t WidthForDisks(uint32_t num_disks) {
  // Disk ids are in [0, M); M itself never appears in the table.
  if (num_disks <= (1u << 8)) return 1;
  if (num_disks <= (1u << 16)) return 2;
  return 4;
}

template <typename T>
void FillCells(const DeclusteringMethod& method, std::vector<T>& cells) {
  cells.resize(static_cast<size_t>(method.grid().num_buckets()));
  size_t linear = 0;
  method.grid().ForEachBucket([&](const BucketCoords& c) {
    cells[linear++] = static_cast<T>(method.DiskOf(c));
  });
}

/// Scans one contiguous run of the table into the count buffer.
template <typename T>
void CountRow(const T* cells, uint64_t begin, uint64_t length,
              uint64_t* counts) {
  const T* p = cells + begin;
  for (uint64_t j = 0; j < length; ++j) ++counts[p[j]];
}

/// True when every adjacent intra-row pair of `cells` steps by the same
/// `stride` mod M. Rows have length `row_len`; the table is row-major, so
/// intra-row pairs are exactly the adjacent indices not crossing a multiple
/// of `row_len`.
template <typename T>
bool StrideHolds(const std::vector<T>& cells, uint64_t row_len,
                 uint32_t num_disks, uint32_t stride) {
  for (size_t i = 0; i + 1 < cells.size(); ++i) {
    if ((i + 1) % row_len == 0) continue;
    const uint32_t expect =
        (static_cast<uint32_t>(cells[i]) + stride) % num_disks;
    if (static_cast<uint32_t>(cells[i + 1]) != expect) return false;
  }
  return true;
}

}  // namespace

DiskMap::DiskMap(GridSpec grid, uint32_t num_disks, uint32_t width)
    : grid_(std::move(grid)), num_disks_(num_disks), width_(width) {
  const uint32_t k = grid_.num_dims();
  dim_stride_.assign(k, 1);
  for (uint32_t i = k - 1; i > 0; --i) {
    dim_stride_[i - 1] = dim_stride_[i] * grid_.dim(i);
  }
}

uint64_t DiskMap::BytesNeeded(const GridSpec& grid, uint32_t num_disks) {
  return grid.num_buckets() * static_cast<uint64_t>(WidthForDisks(num_disks));
}

DiskMap DiskMap::Build(const DeclusteringMethod& method) {
  DiskMap map(method.grid(), method.num_disks(),
              WidthForDisks(method.num_disks()));
  switch (map.width_) {
    case 1:
      FillCells(method, map.cells8_);
      break;
    case 2:
      FillCells(method, map.cells16_);
      break;
    default:
      FillCells(method, map.cells32_);
      break;
  }

  // Detect a constant additive stride mod M along the last dimension. The
  // check is empirical over the whole table — any method with modular
  // row structure (DM/CMD, GDM, linear round robin, and equivalent
  // table-backed allocations) qualifies, without type-based coupling.
  const uint64_t row_len = map.grid_.dim(map.grid_.num_dims() - 1);
  if (row_len < 2) {
    // Rows of a single bucket: every stride holds vacuously; 0 keeps the
    // analytic path exact.
    map.has_row_stride_ = true;
    map.row_stride_ = 0;
  } else {
    const uint32_t stride =
        (map.DiskAt(1) + map.num_disks_ - map.DiskAt(0)) % map.num_disks_;
    bool holds;
    switch (map.width_) {
      case 1:
        holds = StrideHolds(map.cells8_, row_len, map.num_disks_, stride);
        break;
      case 2:
        holds = StrideHolds(map.cells16_, row_len, map.num_disks_, stride);
        break;
      default:
        holds = StrideHolds(map.cells32_, row_len, map.num_disks_, stride);
        break;
    }
    if (holds) {
      map.has_row_stride_ = true;
      map.row_stride_ = stride;
    }
  }
  if (map.has_row_stride_) {
    const uint32_t g =
        map.row_stride_ == 0
            ? map.num_disks_
            : std::gcd(map.row_stride_, map.num_disks_);
    map.stride_period_ = map.num_disks_ / g;
  }
  return map;
}

void DiskMap::AnalyticRowCounts(uint64_t begin, uint64_t length,
                                uint64_t* counts) const {
  // Disks along the run form the arithmetic progression
  // d_t = (base + t*s) mod M, t in [0, L). With period p = M/gcd(s, M) the
  // progression cycles through p distinct disks: each receives floor(L/p),
  // and the first L mod p of them (in progression order) one more.
  const uint32_t base = DiskAt(begin);
  const uint64_t p = stride_period_;
  uint32_t d = base;
  if (length >= p) {
    const uint64_t whole = length / p;
    const uint64_t extra = length % p;
    for (uint64_t t = 0; t < p; ++t) {
      counts[d] += whole + (t < extra ? 1 : 0);
      d += row_stride_;
      if (d >= num_disks_) d -= num_disks_;
    }
  } else {
    for (uint64_t t = 0; t < length; ++t) {
      ++counts[d];
      d += row_stride_;
      if (d >= num_disks_) d -= num_disks_;
    }
  }
}

void DiskMap::CountsForRect(const BucketRect& rect,
                            std::vector<uint64_t>& counts) const {
  counts.assign(num_disks_, 0);
  uint64_t* out = counts.data();
  if (has_row_stride_) {
    ForEachRowSpan(rect, [&](uint64_t begin, uint64_t length) {
      AnalyticRowCounts(begin, length, out);
    });
    return;
  }
  switch (width_) {
    case 1:
      ForEachRowSpan(rect, [&](uint64_t begin, uint64_t length) {
        CountRow(cells8_.data(), begin, length, out);
      });
      break;
    case 2:
      ForEachRowSpan(rect, [&](uint64_t begin, uint64_t length) {
        CountRow(cells16_.data(), begin, length, out);
      });
      break;
    default:
      ForEachRowSpan(rect, [&](uint64_t begin, uint64_t length) {
        CountRow(cells32_.data(), begin, length, out);
      });
      break;
  }
}

uint64_t DiskMap::ResponseTimeForRect(const BucketRect& rect,
                                      std::vector<uint64_t>& scratch) const {
  CountsForRect(rect, scratch);
  return *std::max_element(scratch.begin(), scratch.end());
}

}  // namespace griddecl
