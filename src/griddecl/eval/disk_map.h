#ifndef GRIDDECL_EVAL_DISK_MAP_H_
#define GRIDDECL_EVAL_DISK_MAP_H_

#include <cstdint>
#include <vector>

#include "griddecl/grid/bucket.h"
#include "griddecl/grid/grid_spec.h"
#include "griddecl/grid/rect.h"
#include "griddecl/methods/method.h"

/// \file
/// `DiskMap`: a declustering method materialized into a dense row-major
/// array of disk ids.
///
/// Every metric the paper reports reduces to counting a query's buckets per
/// disk, and the generic path pays one virtual `DiskOf` call (plus
/// coordinate bookkeeping through `std::function`) per bucket. Evaluating a
/// method as a flat grid→disk array instead — the representation Doerr et
/// al. use for scheme analysis, and what a grid-file directory looks like
/// on disk — turns the inner loop into a contiguous scan over 1/2/4-byte
/// elements:
///
///  * the element width is chosen from M (`uint8_t` for M <= 256,
///    `uint16_t` for M <= 65536, `uint32_t` beyond), so a 64x64 grid costs
///    4 KiB and stays resident in L1;
///  * `CountsForRect` walks the rectangle row by row (a row = a contiguous
///    run along the last dimension) into a caller-owned, reusable per-disk
///    count buffer — zero allocations per query;
///  * methods whose allocation is an arithmetic progression along rows
///    (DM/CMD, GDM, linear round robin — detected at build time, not by
///    type) get an analytic fast path: a run of length L with stride s mod
///    M contributes floor(L/p) to each of the p = M/gcd(s,M) reachable
///    disks plus a remainder walk, O(min(L, M)) per row instead of O(L).
///
/// A `DiskMap` is immutable after `Build` and safe to share across threads
/// for concurrent reads; build it once per method and reuse it for a whole
/// experiment run (see `Evaluator` / `EvalOptions`).

namespace griddecl {

/// Dense row-major materialization of a `DeclusteringMethod`.
class DiskMap {
 public:
  /// Materializes `method` over its whole grid. O(num_buckets) virtual
  /// calls, once. The method is not retained; the map owns everything it
  /// needs afterwards.
  static DiskMap Build(const DeclusteringMethod& method);

  /// Table bytes `Build` would allocate for this configuration — lets
  /// callers apply a memory cap before materializing (see
  /// `EvalOptions::max_disk_map_bytes`).
  static uint64_t BytesNeeded(const GridSpec& grid, uint32_t num_disks);

  const GridSpec& grid() const { return grid_; }
  uint32_t num_disks() const { return num_disks_; }
  /// Bytes per element: 1, 2, or 4, chosen from num_disks().
  uint32_t element_width() const { return width_; }
  /// Total table size in bytes.
  uint64_t SizeBytes() const {
    return grid_.num_buckets() * static_cast<uint64_t>(width_);
  }

  /// True when the allocation follows a constant additive stride mod M
  /// along the last dimension in every row (DM/CMD, GDM, linear round
  /// robin); enables the analytic counting path.
  bool has_row_stride() const { return has_row_stride_; }
  /// The detected stride, reduced mod M. Meaningful only when
  /// `has_row_stride()`.
  uint32_t row_stride() const { return row_stride_; }

  /// Disk id at row-major rank `index` (== `grid().Linearize(c)`).
  uint32_t DiskAt(uint64_t index) const {
    switch (width_) {
      case 1:
        return cells8_[static_cast<size_t>(index)];
      case 2:
        return cells16_[static_cast<size_t>(index)];
      default:
        return cells32_[static_cast<size_t>(index)];
    }
  }

  /// Disk id of bucket `c`; must lie in `grid()`. Matches the materialized
  /// method's `DiskOf` exactly.
  uint32_t DiskOf(const BucketCoords& c) const {
    return DiskAt(grid_.Linearize(c));
  }

  /// Per-disk bucket counts of `rect` into `counts`, which is resized to
  /// `num_disks()` and zeroed — reusing the same vector across queries
  /// makes the call allocation-free. `rect` must lie within `grid()`.
  void CountsForRect(const BucketRect& rect,
                     std::vector<uint64_t>& counts) const;

  /// max over `CountsForRect` — the paper's response time. `scratch` is
  /// the reusable counts buffer.
  uint64_t ResponseTimeForRect(const BucketRect& rect,
                               std::vector<uint64_t>& scratch) const;

  /// Calls `fn(begin, length)` for every contiguous row-major run of
  /// `rect`: `begin` is the flat index of the run's first bucket (== its
  /// grid-linear address), `length` its bucket count. Runs are emitted in
  /// row-major order. This is the iteration primitive the I/O simulators
  /// build per-disk schedules from.
  template <typename Fn>
  void ForEachRowSpan(const BucketRect& rect, Fn&& fn) const {
    GRIDDECL_CHECK(rect.WithinGrid(grid_));
    const uint32_t k = grid_.num_dims();
    const uint64_t row_len = rect.Extent(k - 1);
    uint64_t begin = grid_.Linearize(rect.lo());
    if (k == 1) {
      fn(begin, row_len);
      return;
    }
    BucketCoords c = rect.lo();
    for (;;) {
      fn(begin, row_len);
      // Odometer over the leading k-1 dimensions, last-but-one fastest;
      // `begin` is maintained incrementally from the per-dimension strides.
      uint32_t dim = k - 1;
      for (;;) {
        if (dim == 0) return;
        --dim;
        if (++c[dim] <= rect.hi()[dim]) {
          begin += dim_stride_[dim];
          break;
        }
        begin -= static_cast<uint64_t>(rect.hi()[dim] - rect.lo()[dim]) *
                 dim_stride_[dim];
        c[dim] = rect.lo()[dim];
      }
    }
  }

 private:
  DiskMap(GridSpec grid, uint32_t num_disks, uint32_t width);

  /// Adds the counts of one arithmetic-progression run analytically.
  void AnalyticRowCounts(uint64_t begin, uint64_t length,
                         uint64_t* counts) const;

  GridSpec grid_;
  uint32_t num_disks_;
  uint32_t width_;
  bool has_row_stride_ = false;
  uint32_t row_stride_ = 0;
  /// Disks reachable per full stride period; p = M / gcd(s, M).
  uint32_t stride_period_ = 1;
  /// Row-major linear stride of each dimension (last is 1).
  std::vector<uint64_t> dim_stride_;
  /// The table; exactly one of these holds `num_buckets` elements, selected
  /// by `width_` (typed vectors rather than one punned byte buffer).
  std::vector<uint8_t> cells8_;
  std::vector<uint16_t> cells16_;
  std::vector<uint32_t> cells32_;
};

}  // namespace griddecl

#endif  // GRIDDECL_EVAL_DISK_MAP_H_
