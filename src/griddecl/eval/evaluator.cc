#include "griddecl/eval/evaluator.h"

#include <algorithm>
#include <cmath>
#include <thread>

#include "griddecl/eval/metrics.h"

namespace griddecl {

namespace {

/// Below this many queries the thread-spawn overhead is not worth it.
constexpr size_t kSerialThreshold = 64;

void MergeInto(WorkloadEval* total, const WorkloadEval& part) {
  total->num_queries += part.num_queries;
  total->num_optimal += part.num_optimal;
  total->response.Merge(part.response);
  total->optimal.Merge(part.optimal);
  total->ratio.Merge(part.ratio);
  total->additive_deviation.Merge(part.additive_deviation);
}

const DeclusteringMethod& DerefChecked(const DeclusteringMethod* method) {
  GRIDDECL_CHECK(method != nullptr);
  return *method;
}

/// Metric handles for one evaluation pass, resolved once per range so the
/// per-query cost is a null check. All-null when no registry is attached.
struct EvalMetrics {
  explicit EvalMetrics(obs::MetricsRegistry* registry) {
    if (registry == nullptr) return;
    queries = registry->GetCounter("eval.queries");
    buckets = registry->GetCounter("eval.buckets_scanned");
    fastpath = registry->GetCounter("eval.fastpath_queries");
    generic = registry->GetCounter("eval.generic_queries");
    response = registry->GetHistogram("eval.response_time",
                                      obs::ExponentialBounds(1, 2, 16));
  }
  obs::Counter* queries = nullptr;
  obs::Counter* buckets = nullptr;
  obs::Counter* fastpath = nullptr;
  obs::Counter* generic = nullptr;
  obs::Histogram* response = nullptr;
};

}  // namespace

double WorkloadEval::ResponseCi95HalfWidth() const {
  if (num_queries < 2) return 0.0;
  return 1.96 * response.stddev() /
         std::sqrt(static_cast<double>(num_queries));
}

Evaluator::Evaluator(const DeclusteringMethod& method, EvalOptions options)
    : method_(&method), options_(options) {
  if (options_.use_disk_map &&
      DiskMap::BytesNeeded(method.grid(), method.num_disks()) <=
          options_.max_disk_map_bytes) {
    disk_map_.emplace(DiskMap::Build(method));
  }
}

Evaluator::Evaluator(const DeclusteringMethod* method)
    : Evaluator(DerefChecked(method)) {}

QueryEval Evaluator::EvaluateQuery(const RangeQuery& query,
                                   std::vector<uint64_t>& scratch) const {
  QueryEval e;
  e.num_buckets = query.NumBuckets();
  if (disk_map_) {
    e.response = disk_map_->ResponseTimeForRect(query.rect(), scratch);
  } else {
    PerDiskCounts(*method_, query, scratch);
    e.response = *std::max_element(scratch.begin(), scratch.end());
  }
  e.optimal = OptimalResponseTime(e.num_buckets, method_->num_disks());
  return e;
}

QueryEval Evaluator::EvaluateQuery(const RangeQuery& query) const {
  std::vector<uint64_t> scratch;
  return EvaluateQuery(query, scratch);
}

WorkloadEval Evaluator::EvaluateRange(const Workload& workload, size_t begin,
                                      size_t end,
                                      obs::MetricsRegistry* sink) const {
  WorkloadEval agg;
  agg.method_name = method_->name();
  agg.workload_name = workload.name;
  const EvalMetrics m(sink);
  // Fast path = the materialized map's analytic stride counting; the
  // distinction is per evaluator, recorded per query so mixed-method runs
  // sharing a registry stay interpretable.
  obs::Counter* path_counter =
      disk_map_ && disk_map_->has_row_stride() ? m.fastpath : m.generic;
  std::vector<uint64_t> scratch;
  for (size_t i = begin; i < end; ++i) {
    const QueryEval e = EvaluateQuery(workload.queries[i], scratch);
    ++agg.num_queries;
    if (e.response == e.optimal) ++agg.num_optimal;
    agg.response.Add(static_cast<double>(e.response));
    agg.optimal.Add(static_cast<double>(e.optimal));
    agg.ratio.Add(e.Ratio());
    agg.additive_deviation.Add(static_cast<double>(e.AdditiveDeviation()));
    obs::Inc(m.queries);
    obs::Inc(m.buckets, e.num_buckets);
    obs::Inc(path_counter);
    obs::Observe(m.response, static_cast<double>(e.response));
  }
  return agg;
}

WorkloadEval Evaluator::EvaluateWorkload(const Workload& workload) const {
  obs::ScopedTimer timer(
      options_.metrics == nullptr
          ? nullptr
          : options_.metrics->GetHistogram("eval.workload_ms",
                                           obs::DefaultLatencyBoundsMs()));
  const size_t n = workload.size();
  uint32_t num_threads =
      options_.num_threads == 0
          ? std::max(1u, std::thread::hardware_concurrency())
          : options_.num_threads;
  num_threads = static_cast<uint32_t>(std::min<size_t>(
      num_threads, (n + kSerialThreshold - 1) / kSerialThreshold));
  if (num_threads <= 1 || n < kSerialThreshold) {
    return EvaluateRange(workload, 0, n, options_.metrics);
  }

  // One contiguous index slice per worker; threads share the disk map
  // (immutable) and each keeps a private scratch buffer inside
  // EvaluateRange. Partials merge in slice order, so the result is
  // deterministic for a given thread count. Metrics shard the same way:
  // each worker records into a private registry, merged in slice order
  // after the join, so counter totals are thread-count independent.
  std::vector<WorkloadEval> partials(num_threads);
  std::vector<obs::MetricsRegistry> shards(
      options_.metrics != nullptr ? num_threads : 0);
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  const size_t chunk = (n + num_threads - 1) / num_threads;
  for (uint32_t t = 0; t < num_threads; ++t) {
    workers.emplace_back([&, t]() {
      const size_t begin = static_cast<size_t>(t) * chunk;
      const size_t end = std::min(n, begin + chunk);
      partials[t] = EvaluateRange(workload, begin, end,
                                  shards.empty() ? nullptr : &shards[t]);
    });
  }
  for (std::thread& w : workers) w.join();

  WorkloadEval total;
  total.method_name = method_->name();
  total.workload_name = workload.name;
  for (const WorkloadEval& part : partials) MergeInto(&total, part);
  for (const obs::MetricsRegistry& shard : shards) {
    options_.metrics->Merge(shard);
  }
  return total;
}

std::vector<WorkloadEval> CompareMethods(
    const std::vector<const DeclusteringMethod*>& methods,
    const Workload& workload, const EvalOptions& options) {
  std::vector<WorkloadEval> out;
  out.reserve(methods.size());
  for (const DeclusteringMethod* m : methods) {
    out.push_back(
        Evaluator(DerefChecked(m), options).EvaluateWorkload(workload));
  }
  return out;
}

Histogram DeviationHistogram(const DeclusteringMethod& method,
                             const Workload& workload, uint32_t num_buckets,
                             const EvalOptions& options) {
  Histogram histogram(num_buckets);
  Evaluator evaluator(method, options);
  std::vector<uint64_t> scratch;
  for (const RangeQuery& q : workload.queries) {
    histogram.Add(evaluator.EvaluateQuery(q, scratch).AdditiveDeviation());
  }
  return histogram;
}

}  // namespace griddecl
