#include "griddecl/eval/evaluator.h"

#include <cmath>

#include "griddecl/eval/metrics.h"

namespace griddecl {

double WorkloadEval::ResponseCi95HalfWidth() const {
  if (num_queries < 2) return 0.0;
  return 1.96 * response.stddev() /
         std::sqrt(static_cast<double>(num_queries));
}

Evaluator::Evaluator(const DeclusteringMethod* method) : method_(method) {
  GRIDDECL_CHECK(method != nullptr);
}

QueryEval Evaluator::EvaluateQuery(const RangeQuery& query) const {
  QueryEval e;
  e.num_buckets = query.NumBuckets();
  e.response = ResponseTime(*method_, query);
  e.optimal = OptimalResponseTime(e.num_buckets, method_->num_disks());
  return e;
}

WorkloadEval Evaluator::EvaluateWorkload(const Workload& workload) const {
  WorkloadEval agg;
  agg.method_name = method_->name();
  agg.workload_name = workload.name;
  for (const RangeQuery& q : workload.queries) {
    const QueryEval e = EvaluateQuery(q);
    ++agg.num_queries;
    if (e.response == e.optimal) ++agg.num_optimal;
    agg.response.Add(static_cast<double>(e.response));
    agg.optimal.Add(static_cast<double>(e.optimal));
    agg.ratio.Add(e.Ratio());
    agg.additive_deviation.Add(static_cast<double>(e.AdditiveDeviation()));
  }
  return agg;
}

std::vector<WorkloadEval> CompareMethods(
    const std::vector<const DeclusteringMethod*>& methods,
    const Workload& workload) {
  std::vector<WorkloadEval> out;
  out.reserve(methods.size());
  for (const DeclusteringMethod* m : methods) {
    out.push_back(Evaluator(m).EvaluateWorkload(workload));
  }
  return out;
}

Histogram DeviationHistogram(const DeclusteringMethod& method,
                             const Workload& workload,
                             uint32_t num_buckets) {
  Histogram histogram(num_buckets);
  Evaluator evaluator(&method);
  for (const RangeQuery& q : workload.queries) {
    histogram.Add(evaluator.EvaluateQuery(q).AdditiveDeviation());
  }
  return histogram;
}

}  // namespace griddecl
