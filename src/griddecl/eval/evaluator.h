#ifndef GRIDDECL_EVAL_EVALUATOR_H_
#define GRIDDECL_EVAL_EVALUATOR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "griddecl/common/stats.h"
#include "griddecl/eval/disk_map.h"
#include "griddecl/methods/method.h"
#include "griddecl/obs/metrics.h"
#include "griddecl/query/workload.h"

/// \file
/// Workload-level evaluation: averages the paper's response-time metric over
/// a set of queries and reports the aggregates every experiment plots —
/// mean response time, mean optimal, deviation from optimality (additive
/// and multiplicative), and the fraction of queries answered optimally.
///
/// The engine is batched: an `Evaluator` materializes its method into a
/// `DiskMap` once at construction (see eval/disk_map.h) and then answers
/// every query from the dense table with a reusable count buffer — no
/// virtual dispatch and no allocation per query. `EvalOptions` controls the
/// map (it can be disabled, or capped by memory) and the worker-thread
/// count for `EvaluateWorkload`.

namespace griddecl {

/// Evaluation of one query.
struct QueryEval {
  uint64_t num_buckets = 0;
  uint64_t response = 0;
  uint64_t optimal = 0;

  /// response - optimal (the paper's "deviation from optimality").
  uint64_t AdditiveDeviation() const { return response - optimal; }
  /// response / optimal; 1.0 means optimal. Defined as 1 for empty queries.
  double Ratio() const {
    return optimal == 0 ? 1.0
                        : static_cast<double>(response) /
                              static_cast<double>(optimal);
  }
};

/// Aggregates over a workload.
struct WorkloadEval {
  std::string method_name;
  std::string workload_name;
  uint64_t num_queries = 0;
  uint64_t num_optimal = 0;
  RunningStat response;
  RunningStat optimal;
  RunningStat ratio;
  RunningStat additive_deviation;

  double MeanResponse() const { return response.mean(); }
  double MeanOptimal() const { return optimal.mean(); }
  double MaxResponse() const { return response.max(); }
  /// Mean of per-query response/optimal ratios.
  double MeanRatio() const { return ratio.mean(); }
  /// Mean additive deviation (response - optimal).
  double MeanDeviation() const { return additive_deviation.mean(); }
  double MaxDeviation() const { return additive_deviation.max(); }
  /// Fraction of queries on which the method was optimal.
  double FractionOptimal() const {
    return num_queries == 0
               ? 1.0
               : static_cast<double>(num_optimal) /
                     static_cast<double>(num_queries);
  }

  /// Half-width of the normal-approximation 95% confidence interval on the
  /// mean response time: 1.96 * stddev / sqrt(n). For exhaustive placement
  /// averaging the mean is exact — no sampling error — but the value is
  /// still reported: it then describes placement-to-placement spread of
  /// the response time, not uncertainty in the mean.
  double ResponseCi95HalfWidth() const;
};

/// Evaluation-engine knobs.
struct EvalOptions {
  /// Materialize the method into a dense `DiskMap` at construction and
  /// answer queries from it. Disable to force the virtual `DiskOf` path
  /// (reference semantics for tests and baselines; both paths produce
  /// identical results).
  bool use_disk_map = true;
  /// Skip materialization when the table would exceed this many bytes;
  /// evaluation then falls back to the virtual path. 256 MiB default.
  uint64_t max_disk_map_bytes = 256ull << 20;
  /// Worker threads for `EvaluateWorkload`: 1 = serial (default),
  /// 0 = std::thread::hardware_concurrency, n = exactly n. Workloads too
  /// small to amortize thread spawn run serially regardless.
  uint32_t num_threads = 1;
  /// Optional observability sink (non-owning; must outlive the evaluator).
  /// `EvaluateWorkload` records `eval.queries`, `eval.buckets_scanned`,
  /// `eval.fastpath_queries` / `eval.generic_queries` (analytic-stride
  /// DiskMap vs. everything else), the `eval.response_time` histogram
  /// (bucket units), and the `eval.workload_ms` wall-clock timer. Parallel
  /// runs shard per worker and merge in slice order, so counter totals are
  /// thread-count independent. Null (the default) compiles the
  /// instrumented path down to no-ops; primary results are bit-identical
  /// either way.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Evaluates one method over queries/workloads. Construction materializes
/// the method's `DiskMap` (unless disabled or over the memory cap); the
/// evaluator is immutable afterwards and safe to share across threads for
/// concurrent reads. Build one per method and reuse it for the whole run.
class Evaluator {
 public:
  /// `method` must outlive the evaluator.
  explicit Evaluator(const DeclusteringMethod& method,
                     EvalOptions options = {});

  /// \deprecated Pointer form retained for source compatibility; forwards
  /// to the reference constructor with default options.
  [[deprecated("construct from a reference with EvalOptions")]]  //
  explicit Evaluator(const DeclusteringMethod* method);

  const DeclusteringMethod& method() const { return *method_; }
  const EvalOptions& options() const { return options_; }
  /// The materialized map, or nullptr when disabled / over the cap.
  const DiskMap* disk_map() const {
    return disk_map_ ? &*disk_map_ : nullptr;
  }

  /// Evaluates one query; `scratch` is a reusable per-disk count buffer
  /// (resized to M internally), making repeated calls allocation-free.
  QueryEval EvaluateQuery(const RangeQuery& query,
                          std::vector<uint64_t>& scratch) const;

  /// Convenience form with a private scratch buffer; allocates per call.
  QueryEval EvaluateQuery(const RangeQuery& query) const;

  /// Aggregates over the workload, using `options().num_threads` workers.
  /// The integer counters (num_queries, num_optimal, stat counts, min/max)
  /// are identical for every thread count; floating-point means/variances
  /// can differ from the serial pass only by summation-order rounding.
  WorkloadEval EvaluateWorkload(const Workload& workload) const;

 private:
  /// Serial aggregation of queries [begin, end); per-query metrics land in
  /// `sink` (null = none), which workers point at private shards.
  WorkloadEval EvaluateRange(const Workload& workload, size_t begin,
                             size_t end, obs::MetricsRegistry* sink) const;

  const DeclusteringMethod* method_;
  EvalOptions options_;
  std::optional<DiskMap> disk_map_;
};

/// Evaluates every method over the same workload; result order matches
/// `methods`. One evaluator (and disk map) is built per method.
std::vector<WorkloadEval> CompareMethods(
    const std::vector<const DeclusteringMethod*>& methods,
    const Workload& workload, const EvalOptions& options = {});

/// Distribution of per-query additive deviation (response - optimal) over
/// the workload: histogram buckets 0..num_buckets-1 plus overflow. The
/// paper reports means; the histogram shows the tail (e.g. "what fraction
/// of queries were answered optimally or one unit off").
Histogram DeviationHistogram(const DeclusteringMethod& method,
                             const Workload& workload, uint32_t num_buckets,
                             const EvalOptions& options = {});

}  // namespace griddecl

#endif  // GRIDDECL_EVAL_EVALUATOR_H_
