#ifndef GRIDDECL_EVAL_EVALUATOR_H_
#define GRIDDECL_EVAL_EVALUATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "griddecl/common/stats.h"
#include "griddecl/methods/method.h"
#include "griddecl/query/workload.h"

/// \file
/// Workload-level evaluation: averages the paper's response-time metric over
/// a set of queries and reports the aggregates every experiment plots —
/// mean response time, mean optimal, deviation from optimality (additive
/// and multiplicative), and the fraction of queries answered optimally.

namespace griddecl {

/// Evaluation of one query.
struct QueryEval {
  uint64_t num_buckets = 0;
  uint64_t response = 0;
  uint64_t optimal = 0;

  /// response - optimal (the paper's "deviation from optimality").
  uint64_t AdditiveDeviation() const { return response - optimal; }
  /// response / optimal; 1.0 means optimal. Defined as 1 for empty queries.
  double Ratio() const {
    return optimal == 0 ? 1.0
                        : static_cast<double>(response) /
                              static_cast<double>(optimal);
  }
};

/// Aggregates over a workload.
struct WorkloadEval {
  std::string method_name;
  std::string workload_name;
  uint64_t num_queries = 0;
  uint64_t num_optimal = 0;
  RunningStat response;
  RunningStat optimal;
  RunningStat ratio;
  RunningStat additive_deviation;

  double MeanResponse() const { return response.mean(); }
  double MeanOptimal() const { return optimal.mean(); }
  double MaxResponse() const { return response.max(); }
  /// Mean of per-query response/optimal ratios.
  double MeanRatio() const { return ratio.mean(); }
  /// Mean additive deviation (response - optimal).
  double MeanDeviation() const { return additive_deviation.mean(); }
  double MaxDeviation() const { return additive_deviation.max(); }
  /// Fraction of queries on which the method was optimal.
  double FractionOptimal() const {
    return num_queries == 0
               ? 1.0
               : static_cast<double>(num_optimal) /
                     static_cast<double>(num_queries);
  }

  /// Half-width of the normal-approximation 95% confidence interval on the
  /// mean response time: 1.96 * stddev / sqrt(n). Zero for exhaustive
  /// placement averaging (where the mean is exact) it is still reported —
  /// it then describes placement-to-placement spread, not sampling error.
  double ResponseCi95HalfWidth() const;
};

/// Evaluates one method over queries/workloads. Stateless apart from the
/// bound method; cheap to construct.
class Evaluator {
 public:
  /// `method` must outlive the evaluator.
  explicit Evaluator(const DeclusteringMethod* method);

  const DeclusteringMethod& method() const { return *method_; }

  QueryEval EvaluateQuery(const RangeQuery& query) const;

  WorkloadEval EvaluateWorkload(const Workload& workload) const;

 private:
  const DeclusteringMethod* method_;
};

/// Evaluates every method over the same workload; result order matches
/// `methods`.
std::vector<WorkloadEval> CompareMethods(
    const std::vector<const DeclusteringMethod*>& methods,
    const Workload& workload);

/// Distribution of per-query additive deviation (response - optimal) over
/// the workload: histogram buckets 0..num_buckets-1 plus overflow. The
/// paper reports means; the histogram shows the tail (e.g. "what fraction
/// of queries were answered optimally or one unit off").
Histogram DeviationHistogram(const DeclusteringMethod& method,
                             const Workload& workload, uint32_t num_buckets);

}  // namespace griddecl

#endif  // GRIDDECL_EVAL_EVALUATOR_H_
