#include "griddecl/eval/experiment.h"

#include <algorithm>
#include <cmath>

#include "griddecl/common/random.h"

namespace griddecl {

namespace {

/// Materializes one evaluator (and thus one shared DiskMap) per method;
/// sweeps reuse these across every x-value instead of rebuilding per point.
std::vector<Evaluator> MakeEvaluators(
    const std::vector<std::unique_ptr<DeclusteringMethod>>& methods) {
  std::vector<Evaluator> evaluators;
  evaluators.reserve(methods.size());
  for (const auto& m : methods) evaluators.emplace_back(*m);
  return evaluators;
}

/// Evaluates all methods on one workload and appends a SweepPoint.
SweepPoint EvaluatePoint(double x, const std::vector<Evaluator>& evaluators,
                         const Workload& workload) {
  SweepPoint p;
  p.x = x;
  for (const Evaluator& ev : evaluators) {
    const WorkloadEval e = ev.EvaluateWorkload(workload);
    p.mean_response.push_back(e.MeanResponse());
    p.mean_ratio.push_back(e.MeanRatio());
    p.fraction_optimal.push_back(e.FractionOptimal());
    p.mean_optimal = e.MeanOptimal();  // Same for every method.
  }
  return p;
}

std::vector<std::string> MethodDisplayNames(
    const std::vector<std::unique_ptr<DeclusteringMethod>>& methods) {
  std::vector<std::string> names;
  names.reserve(methods.size());
  for (const auto& m : methods) names.push_back(m->name());
  return names;
}

}  // namespace

Table SweepResult::ResponseTable() const {
  std::vector<std::string> headers = {x_label, "Optimal"};
  for (const auto& n : method_names) headers.push_back(n);
  Table t(std::move(headers));
  for (const SweepPoint& p : points) {
    std::vector<std::string> row = {Table::Fmt(p.x, 2),
                                    Table::Fmt(p.mean_optimal, 3)};
    for (double r : p.mean_response) row.push_back(Table::Fmt(r, 3));
    t.AddRow(std::move(row));
  }
  return t;
}

Table SweepResult::RatioTable() const {
  std::vector<std::string> headers = {x_label};
  for (const auto& n : method_names) headers.push_back(n + " (RT/opt)");
  Table t(std::move(headers));
  for (const SweepPoint& p : points) {
    std::vector<std::string> row = {Table::Fmt(p.x, 2)};
    for (double r : p.mean_ratio) row.push_back(Table::Fmt(r, 4));
    t.AddRow(std::move(row));
  }
  return t;
}

Table SweepResult::FractionOptimalTable() const {
  std::vector<std::string> headers = {x_label};
  for (const auto& n : method_names) headers.push_back(n + " (% opt)");
  Table t(std::move(headers));
  for (const SweepPoint& p : points) {
    std::vector<std::string> row = {Table::Fmt(p.x, 2)};
    for (double f : p.fraction_optimal) {
      row.push_back(Table::Fmt(f * 100, 1));
    }
    t.AddRow(std::move(row));
  }
  return t;
}

int SweepResult::MethodIndex(const std::string& name) const {
  for (size_t i = 0; i < method_names.size(); ++i) {
    if (method_names[i] == name) return static_cast<int>(i);
  }
  return -1;
}

Result<std::vector<std::unique_ptr<DeclusteringMethod>>> MakeSweepMethods(
    const GridSpec& grid, uint32_t num_disks, const SweepOptions& options) {
  std::vector<std::unique_ptr<DeclusteringMethod>> methods;
  if (options.method_names.empty()) {
    methods = CreatePaperMethods(grid, num_disks);
  } else {
    for (const std::string& name : options.method_names) {
      MethodOptions method_options;
      method_options.seed = options.seed;
      Result<std::unique_ptr<DeclusteringMethod>> m =
          CreateMethod(name, grid, num_disks, method_options);
      if (m.ok()) {
        methods.push_back(std::move(m).value());
      } else if (m.status().code() != StatusCode::kUnsupported) {
        return m.status();
      }
    }
  }
  if (methods.empty()) {
    return Status::InvalidArgument(
        "no requested method is constructible for grid " + grid.ToString() +
        " with " + std::to_string(num_disks) + " disks");
  }
  return methods;
}

Result<SweepResult> QuerySizeSweep(const GridSpec& grid, uint32_t num_disks,
                                   const std::vector<uint64_t>& areas,
                                   const SweepOptions& options) {
  Result<std::vector<std::unique_ptr<DeclusteringMethod>>> methods =
      MakeSweepMethods(grid, num_disks, options);
  if (!methods.ok()) return methods.status();
  QueryGenerator gen(grid);
  Rng rng(options.seed);
  SweepResult result;
  result.x_label = "QueryArea";
  result.method_names = MethodDisplayNames(methods.value());
  const std::vector<Evaluator> evaluators = MakeEvaluators(methods.value());
  for (uint64_t area : areas) {
    Result<QueryShape> shape = gen.SquarishShape(area);
    if (!shape.ok()) return shape.status();
    Result<Workload> workload =
        gen.Placements(shape.value(), options.max_placements, &rng,
                       "area=" + std::to_string(area));
    if (!workload.ok()) return workload.status();
    result.points.push_back(EvaluatePoint(static_cast<double>(area),
                                          evaluators, workload.value()));
  }
  return result;
}

Result<SweepResult> QueryShapeSweep(const GridSpec& grid, uint32_t num_disks,
                                    uint64_t area,
                                    const std::vector<double>& aspects,
                                    const SweepOptions& options) {
  if (grid.num_dims() != 2) {
    return Status::InvalidArgument("shape sweep requires a 2-d grid");
  }
  Result<std::vector<std::unique_ptr<DeclusteringMethod>>> methods =
      MakeSweepMethods(grid, num_disks, options);
  if (!methods.ok()) return methods.status();
  QueryGenerator gen(grid);
  Rng rng(options.seed);
  SweepResult result;
  result.x_label = "Aspect(h/w)";
  result.method_names = MethodDisplayNames(methods.value());
  const std::vector<Evaluator> evaluators = MakeEvaluators(methods.value());
  for (double aspect : aspects) {
    Result<QueryShape> shape = gen.Shape2D(area, aspect);
    if (!shape.ok()) return shape.status();
    Result<Workload> workload = gen.Placements(
        shape.value(), options.max_placements, &rng,
        "aspect=" + Table::Fmt(aspect, 2));
    if (!workload.ok()) return workload.status();
    result.points.push_back(
        EvaluatePoint(aspect, evaluators, workload.value()));
  }
  return result;
}

Result<SweepResult> DiskCountSweep(const GridSpec& grid,
                                   const std::vector<uint32_t>& disk_counts,
                                   uint64_t area,
                                   const SweepOptions& options) {
  QueryGenerator gen(grid);
  Rng rng(options.seed);
  Result<QueryShape> shape = gen.SquarishShape(area);
  if (!shape.ok()) return shape.status();
  Result<Workload> workload =
      gen.Placements(shape.value(), options.max_placements, &rng,
                     "area=" + std::to_string(area));
  if (!workload.ok()) return workload.status();

  SweepResult result;
  result.x_label = "Disks";
  for (uint32_t m : disk_counts) {
    Result<std::vector<std::unique_ptr<DeclusteringMethod>>> methods =
        MakeSweepMethods(grid, m, options);
    if (!methods.ok()) return methods.status();
    // Method availability can vary with M (ECC needs a power of two); align
    // columns on the union by name, recording NaN-free rows only for
    // methods present at this M.
    if (result.method_names.empty()) {
      result.method_names = MethodDisplayNames(methods.value());
    }
    SweepPoint p = EvaluatePoint(static_cast<double>(m),
                                 MakeEvaluators(methods.value()),
                                 workload.value());
    // Align: pad missing methods with NaN so rows stay rectangular.
    const std::vector<std::string> here = MethodDisplayNames(methods.value());
    if (here != result.method_names) {
      SweepPoint aligned;
      aligned.x = p.x;
      aligned.mean_optimal = p.mean_optimal;
      for (const std::string& name : result.method_names) {
        const auto it = std::find(here.begin(), here.end(), name);
        if (it == here.end()) {
          aligned.mean_response.push_back(std::nan(""));
          aligned.mean_ratio.push_back(std::nan(""));
          aligned.fraction_optimal.push_back(std::nan(""));
        } else {
          const size_t j = static_cast<size_t>(it - here.begin());
          aligned.mean_response.push_back(p.mean_response[j]);
          aligned.mean_ratio.push_back(p.mean_ratio[j]);
          aligned.fraction_optimal.push_back(p.fraction_optimal[j]);
        }
      }
      p = std::move(aligned);
    }
    result.points.push_back(std::move(p));
  }
  return result;
}

Result<SweepResult> DbSizeSweep(const std::vector<GridSpec>& grids,
                                uint32_t num_disks, double coverage,
                                const SweepOptions& options) {
  if (!(coverage > 0.0) || coverage > 1.0) {
    return Status::InvalidArgument("coverage must be in (0, 1]");
  }
  SweepResult result;
  result.x_label = "GridBuckets";
  Rng rng(options.seed);
  for (const GridSpec& grid : grids) {
    Result<std::vector<std::unique_ptr<DeclusteringMethod>>> methods =
        MakeSweepMethods(grid, num_disks, options);
    if (!methods.ok()) return methods.status();
    if (result.method_names.empty()) {
      result.method_names = MethodDisplayNames(methods.value());
    }
    // Query covers `coverage` of each side (at least 1 bucket).
    QueryShape shape(grid.num_dims());
    for (uint32_t i = 0; i < grid.num_dims(); ++i) {
      shape[i] = std::max<uint32_t>(
          1, static_cast<uint32_t>(
                 std::llround(coverage * static_cast<double>(grid.dim(i)))));
    }
    QueryGenerator gen(grid);
    Result<Workload> workload =
        gen.Placements(shape, options.max_placements, &rng,
                       "grid=" + grid.ToString());
    if (!workload.ok()) return workload.status();
    result.points.push_back(
        EvaluatePoint(static_cast<double>(grid.num_buckets()),
                      MakeEvaluators(methods.value()), workload.value()));
  }
  return result;
}

}  // namespace griddecl
