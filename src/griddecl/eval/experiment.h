#ifndef GRIDDECL_EVAL_EXPERIMENT_H_
#define GRIDDECL_EVAL_EXPERIMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "griddecl/common/table.h"
#include "griddecl/eval/evaluator.h"
#include "griddecl/methods/registry.h"
#include "griddecl/query/generator.h"

/// \file
/// Parameter-sweep drivers for the paper's experiments. Each sweep varies
/// one knob (query size, query shape, disk count, database size), evaluates
/// every method on the same workloads, and returns both the raw series (for
/// tests asserting the paper's qualitative claims) and a printable table
/// (what the bench binaries emit).

namespace griddecl {

/// Common knobs shared by all sweeps.
struct SweepOptions {
  /// Methods to compare, by registry name. Empty = the paper's four
  /// (dm, fx-auto, ecc, hcam), with ECC dropped where inapplicable.
  std::vector<std::string> method_names;
  /// Placement averaging: exhaustive up to this many placements, sampled
  /// (this many samples) beyond.
  size_t max_placements = 4096;
  /// Seed for sampled placements.
  uint64_t seed = 42;
};

/// One x-value of a sweep, with per-method aggregates (aligned with
/// `SweepResult::method_names`).
struct SweepPoint {
  double x = 0;
  double mean_optimal = 0;
  std::vector<double> mean_response;
  std::vector<double> mean_ratio;
  std::vector<double> fraction_optimal;
};

/// Full sweep output.
struct SweepResult {
  std::string x_label;
  std::vector<std::string> method_names;
  std::vector<SweepPoint> points;

  /// Mean-response table: x, optimal, one column per method.
  Table ResponseTable() const;
  /// Mean response/optimal ratio table: x, one column per method.
  Table RatioTable() const;
  /// Fraction of queries answered strictly optimally, per method.
  Table FractionOptimalTable() const;

  /// Index of `name` in method_names; -1 when absent.
  int MethodIndex(const std::string& name) const;
};

/// Instantiates the sweep's methods for a grid/disk configuration.
/// Unsupported configurations (ECC off power-of-two) are skipped, mirroring
/// the paper. Fails only if *no* requested method is constructible.
Result<std::vector<std::unique_ptr<DeclusteringMethod>>> MakeSweepMethods(
    const GridSpec& grid, uint32_t num_disks, const SweepOptions& options);

/// Experiment 1 — query size: near-square queries of each area in `areas`,
/// averaged over placements.
Result<SweepResult> QuerySizeSweep(const GridSpec& grid, uint32_t num_disks,
                                   const std::vector<uint64_t>& areas,
                                   const SweepOptions& options = {});

/// Experiment 2 — query shape (2-D grids): fixed `area`, aspect ratio swept
/// over `aspects` (height/width; 1.0 = square).
Result<SweepResult> QueryShapeSweep(const GridSpec& grid, uint32_t num_disks,
                                    uint64_t area,
                                    const std::vector<double>& aspects,
                                    const SweepOptions& options = {});

/// Figure 5 — number of disks: near-square queries of `area`, disk count
/// swept over `disk_counts`.
Result<SweepResult> DiskCountSweep(const GridSpec& grid,
                                   const std::vector<uint32_t>& disk_counts,
                                   uint64_t area,
                                   const SweepOptions& options = {});

/// Database-size experiment: same relative query footprint (a fraction
/// `coverage` of each side) across grids of different sizes.
Result<SweepResult> DbSizeSweep(const std::vector<GridSpec>& grids,
                                uint32_t num_disks, double coverage,
                                const SweepOptions& options = {});

}  // namespace griddecl

#endif  // GRIDDECL_EVAL_EXPERIMENT_H_
