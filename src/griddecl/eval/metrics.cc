#include "griddecl/eval/metrics.h"

#include <algorithm>

#include "griddecl/common/math_util.h"

namespace griddecl {

uint64_t OptimalResponseTime(uint64_t num_buckets, uint32_t num_disks) {
  if (num_buckets == 0) return 0;
  return CeilDiv(num_buckets, num_disks);
}

void PerDiskCounts(const DeclusteringMethod& method, const RangeQuery& query,
                   std::vector<uint64_t>& counts) {
  counts.assign(method.num_disks(), 0);
  query.rect().ForEachBucket([&](const BucketCoords& c) {
    ++counts[method.DiskOf(c)];
  });
}

std::vector<uint64_t> PerDiskCounts(const DeclusteringMethod& method,
                                    const RangeQuery& query) {
  std::vector<uint64_t> counts;
  PerDiskCounts(method, query, counts);
  return counts;
}

uint64_t ResponseTime(const DeclusteringMethod& method,
                      const RangeQuery& query) {
  std::vector<uint64_t> counts;
  PerDiskCounts(method, query, counts);
  return *std::max_element(counts.begin(), counts.end());
}

bool IsOptimalFor(const DeclusteringMethod& method, const RangeQuery& query) {
  return ResponseTime(method, query) ==
         OptimalResponseTime(query.NumBuckets(), method.num_disks());
}

bool IsStrictlyOptimal(const DeclusteringMethod& method) {
  const GridSpec& grid = method.grid();
  const uint32_t k = grid.num_dims();
  // Enumerate every rectangle: all (lo, hi) pairs with lo <= hi per dim.
  // Rectangle count is prod(d_i * (d_i + 1) / 2); callers keep grids small.
  std::vector<std::pair<uint32_t, uint32_t>> ranges(k, {0, 0});
  for (;;) {
    BucketCoords lo(k);
    BucketCoords hi(k);
    for (uint32_t i = 0; i < k; ++i) {
      lo[i] = ranges[i].first;
      hi[i] = ranges[i].second;
    }
    Result<BucketRect> rect = BucketRect::Create(lo, hi);
    GRIDDECL_CHECK(rect.ok());
    Result<RangeQuery> q = RangeQuery::Create(grid, std::move(rect).value());
    GRIDDECL_CHECK(q.ok());
    if (!IsOptimalFor(method, q.value())) return false;

    // Odometer over (first, second) pairs, last dimension fastest.
    uint32_t dim = k;
    for (;;) {
      if (dim == 0) return true;
      --dim;
      auto& [first, second] = ranges[dim];
      if (second + 1 < grid.dim(dim)) {
        ++second;
        break;
      }
      if (first + 1 < grid.dim(dim)) {
        ++first;
        second = first;
        break;
      }
      first = second = 0;
    }
  }
}

}  // namespace griddecl
