#ifndef GRIDDECL_EVAL_METRICS_H_
#define GRIDDECL_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

#include "griddecl/methods/method.h"
#include "griddecl/query/query.h"

/// \file
/// The paper's cost model.
///
/// All buckets a query needs are fetched in parallel from M disks; fetching
/// a bucket costs one unit; a disk serves its buckets serially. The response
/// time of query Q under method f is therefore
///
///     RT(f, Q) = max_{disk d} |{ b in Q : f(b) = d }|
///
/// and the best any method could do is `ceil(|Q| / M)`. Both are exact
/// integer quantities — no randomness, no timing — which is what makes the
/// study reproducible bit-for-bit.

namespace griddecl {

/// Optimal response time of a query touching `num_buckets` buckets on
/// `num_disks` disks: ceil(|Q| / M). Zero-bucket queries cost 0.
uint64_t OptimalResponseTime(uint64_t num_buckets, uint32_t num_disks);

/// Response time of `query` under `method`: the maximum number of the
/// query's buckets assigned to any single disk.
uint64_t ResponseTime(const DeclusteringMethod& method,
                      const RangeQuery& query);

/// Per-disk bucket counts for `query` under `method`, written into
/// `counts`, which is resized to M and zeroed. Reusing one vector across
/// queries makes the call allocation-free — this is the overload the
/// evaluation engine's inner loops use.
void PerDiskCounts(const DeclusteringMethod& method, const RangeQuery& query,
                   std::vector<uint64_t>& counts);

/// Per-disk bucket counts for `query` under `method` (size = M). The
/// response time is the max entry; useful for diagnostics and the I/O
/// simulator. Allocates; prefer the scratch overload in hot loops.
std::vector<uint64_t> PerDiskCounts(const DeclusteringMethod& method,
                                    const RangeQuery& query);

/// True iff the method achieves the optimum on this query.
bool IsOptimalFor(const DeclusteringMethod& method, const RangeQuery& query);

/// True iff the method achieves the optimum on *every* range query of the
/// grid (exhaustive; exponential in grid size — intended for small grids in
/// tests and the theory module).
bool IsStrictlyOptimal(const DeclusteringMethod& method);

}  // namespace griddecl

#endif  // GRIDDECL_EVAL_METRICS_H_
