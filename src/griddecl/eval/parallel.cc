#include "griddecl/eval/parallel.h"

namespace griddecl {

WorkloadEval ParallelEvaluateWorkload(const DeclusteringMethod& method,
                                      const Workload& workload,
                                      uint32_t num_threads) {
  EvalOptions options;
  options.num_threads = num_threads;  // 0 = auto in both APIs.
  return Evaluator(method, options).EvaluateWorkload(workload);
}

}  // namespace griddecl
