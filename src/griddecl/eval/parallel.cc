#include "griddecl/eval/parallel.h"

#include <algorithm>
#include <thread>
#include <vector>

namespace griddecl {

namespace {

/// Below this many queries the thread-spawn overhead is not worth it.
constexpr size_t kSerialThreshold = 64;

void MergeInto(WorkloadEval* total, const WorkloadEval& part) {
  total->num_queries += part.num_queries;
  total->num_optimal += part.num_optimal;
  total->response.Merge(part.response);
  total->optimal.Merge(part.optimal);
  total->ratio.Merge(part.ratio);
  total->additive_deviation.Merge(part.additive_deviation);
}

}  // namespace

WorkloadEval ParallelEvaluateWorkload(const DeclusteringMethod& method,
                                      const Workload& workload,
                                      uint32_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  const size_t n = workload.size();
  if (num_threads == 1 || n < kSerialThreshold) {
    return Evaluator(&method).EvaluateWorkload(workload);
  }
  num_threads = static_cast<uint32_t>(
      std::min<size_t>(num_threads, (n + kSerialThreshold - 1) /
                                        kSerialThreshold));

  std::vector<WorkloadEval> partials(num_threads);
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  const size_t chunk = (n + num_threads - 1) / num_threads;
  for (uint32_t t = 0; t < num_threads; ++t) {
    workers.emplace_back([&, t]() {
      const size_t begin = static_cast<size_t>(t) * chunk;
      const size_t end = std::min(n, begin + chunk);
      Workload slice;
      slice.name = workload.name;
      slice.queries.assign(workload.queries.begin() + begin,
                           workload.queries.begin() + end);
      partials[t] = Evaluator(&method).EvaluateWorkload(slice);
    });
  }
  for (std::thread& w : workers) w.join();

  WorkloadEval total;
  total.method_name = method.name();
  total.workload_name = workload.name;
  for (const WorkloadEval& part : partials) MergeInto(&total, part);
  return total;
}

}  // namespace griddecl
