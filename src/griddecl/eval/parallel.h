#ifndef GRIDDECL_EVAL_PARALLEL_H_
#define GRIDDECL_EVAL_PARALLEL_H_

#include <cstdint>

#include "griddecl/eval/evaluator.h"

/// \file
/// Multi-threaded workload evaluation — compatibility entry point.
///
/// The threaded engine lives inside `Evaluator::EvaluateWorkload` now
/// (construct with `EvalOptions::num_threads`); one `DiskMap` is built per
/// method and shared read-only by every worker. This wrapper keeps the
/// original free-function call site working. Counters merge exactly;
/// floating-point means/variances can differ from the serial pass only by
/// summation-order rounding.

namespace griddecl {

/// Evaluates `workload` under `method` using `num_threads` worker threads
/// (0 = std::thread::hardware_concurrency, at least 1). Small workloads
/// fall back to the serial path. Returns the same aggregates as
/// `Evaluator::EvaluateWorkload`.
WorkloadEval ParallelEvaluateWorkload(const DeclusteringMethod& method,
                                      const Workload& workload,
                                      uint32_t num_threads = 0);

}  // namespace griddecl

#endif  // GRIDDECL_EVAL_PARALLEL_H_
