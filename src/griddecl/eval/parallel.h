#ifndef GRIDDECL_EVAL_PARALLEL_H_
#define GRIDDECL_EVAL_PARALLEL_H_

#include <cstdint>

#include "griddecl/eval/evaluator.h"

/// \file
/// Multi-threaded workload evaluation. Declustering methods are immutable
/// after construction (see methods/method.h), so per-query evaluation is
/// embarrassingly parallel: the workload is split into contiguous chunks,
/// each thread aggregates its chunk into a local `WorkloadEval`, and the
/// partials merge via `RunningStat::Merge`. Counters merge exactly;
/// floating-point means/variances can differ from the serial pass only by
/// summation-order rounding.

namespace griddecl {

/// Evaluates `workload` under `method` using `num_threads` worker threads
/// (0 = std::thread::hardware_concurrency, at least 1). Small workloads
/// fall back to the serial path. Returns the same aggregates as
/// `Evaluator::EvaluateWorkload`.
WorkloadEval ParallelEvaluateWorkload(const DeclusteringMethod& method,
                                      const Workload& workload,
                                      uint32_t num_threads = 0);

}  // namespace griddecl

#endif  // GRIDDECL_EVAL_PARALLEL_H_
