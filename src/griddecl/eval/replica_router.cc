#include "griddecl/eval/replica_router.h"

#include <algorithm>

#include "griddecl/common/math_util.h"
#include "griddecl/common/maxflow.h"

namespace griddecl {

Result<RoutedQuery> RouteQuery(const ReplicatedPlacement& placement,
                               const RangeQuery& query,
                               const std::vector<bool>* failed_disks) {
  const uint32_t m = placement.num_disks();
  if (failed_disks != nullptr && failed_disks->size() != m) {
    return Status::InvalidArgument("need one failure flag per disk");
  }
  auto alive = [&](uint32_t disk) {
    return failed_disks == nullptr || !(*failed_disks)[disk];
  };
  uint32_t alive_disks = 0;
  for (uint32_t d = 0; d < m; ++d) alive_disks += alive(d) ? 1 : 0;
  if (alive_disks == 0) {
    return Status::Unsupported("every disk has failed");
  }

  // Collect per-bucket live replica sets (row-major rectangle order).
  std::vector<std::vector<uint32_t>> choices;
  choices.reserve(static_cast<size_t>(query.NumBuckets()));
  bool unroutable = false;
  query.rect().ForEachBucket([&](const BucketCoords& c) {
    std::vector<uint32_t> live;
    for (uint32_t d : placement.DisksOf(c)) {
      if (alive(d)) live.push_back(d);
    }
    unroutable = unroutable || live.empty();
    choices.push_back(std::move(live));
  });
  if (unroutable) {
    return Status::Unsupported(
        "a bucket lost every replica to disk failures");
  }
  const uint64_t n = choices.size();

  RoutedQuery routed;
  routed.lower_bound = CeilDiv(n, alive_disks);
  if (n == 0) return routed;

  // Flow network: source(0) -> buckets(1..n) -> disks(n+1..n+m) -> sink.
  const uint32_t source = 0;
  const uint32_t sink = static_cast<uint32_t>(n) + m + 1;
  MaxFlowGraph graph(sink + 1);
  std::vector<uint32_t> bucket_edges(static_cast<size_t>(n));
  for (uint64_t b = 0; b < n; ++b) {
    bucket_edges[static_cast<size_t>(b)] =
        graph.AddEdge(source, static_cast<uint32_t>(b) + 1, 1);
    for (uint32_t d : choices[static_cast<size_t>(b)]) {
      graph.AddEdge(static_cast<uint32_t>(b) + 1,
                    static_cast<uint32_t>(n) + 1 + d, 1);
    }
  }
  std::vector<uint32_t> disk_edges(m);
  for (uint32_t d = 0; d < m; ++d) {
    disk_edges[d] =
        graph.AddEdge(static_cast<uint32_t>(n) + 1 + d, sink, 0);
  }

  // Binary search the smallest per-disk cap T admitting a full routing.
  uint64_t lo = routed.lower_bound;
  uint64_t hi = n;
  while (lo < hi) {
    const uint64_t mid = lo + (hi - lo) / 2;
    graph.ResetCapacities();
    for (uint32_t d = 0; d < m; ++d) {
      graph.SetCapacity(disk_edges[d], alive(d) ? mid : 0);
    }
    if (graph.MaxFlow(source, sink) == n) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  routed.response = lo;

  // Re-solve at the optimum and read the assignment off the flow.
  graph.ResetCapacities();
  for (uint32_t d = 0; d < m; ++d) {
    graph.SetCapacity(disk_edges[d], alive(d) ? lo : 0);
  }
  const uint64_t flow = graph.MaxFlow(source, sink);
  GRIDDECL_CHECK(flow == n);
  routed.assignment.resize(static_cast<size_t>(n));
  // Bucket b's chosen disk: its single saturated bucket->disk edge. Those
  // edges were added right after bucket b's source edge, in choice order.
  uint32_t next_edge = 0;
  for (uint64_t b = 0; b < n; ++b) {
    GRIDDECL_CHECK(bucket_edges[static_cast<size_t>(b)] == next_edge);
    next_edge += 2;  // Skip the source edge (and its reverse).
    bool assigned = false;
    for (uint32_t d : choices[static_cast<size_t>(b)]) {
      if (graph.flow(next_edge) == 1 && !assigned) {
        routed.assignment[static_cast<size_t>(b)] = d;
        assigned = true;
      }
      next_edge += 2;
    }
    GRIDDECL_CHECK(assigned);
  }
  // Skip the disk->sink edges implicitly; nothing further to read.
  return routed;
}

Result<RoutedWorkloadSummary> MeanRoutedResponse(
    const ReplicatedPlacement& placement,
    const std::vector<RangeQuery>& queries,
    const std::vector<bool>* failed_disks) {
  if (queries.empty()) {
    return Status::InvalidArgument("need at least one query");
  }
  RoutedWorkloadSummary summary;
  double total = 0;
  for (const RangeQuery& q : queries) {
    Result<RoutedQuery> routed = RouteQuery(placement, q, failed_disks);
    if (routed.ok()) {
      total += static_cast<double>(routed.value().response);
      ++summary.routable;
    } else if (routed.status().code() == StatusCode::kUnsupported) {
      ++summary.unroutable;
    } else {
      return routed.status();
    }
  }
  summary.mean_response =
      summary.routable == 0
          ? 0.0
          : total / static_cast<double>(summary.routable);
  return summary;
}

}  // namespace griddecl
