#ifndef GRIDDECL_EVAL_REPLICA_ROUTER_H_
#define GRIDDECL_EVAL_REPLICA_ROUTER_H_

#include <cstdint>
#include <vector>

#include "griddecl/common/status.h"
#include "griddecl/methods/replicated.h"
#include "griddecl/query/query.h"

/// \file
/// Optimal replica routing.
///
/// With replication, a query's response time is no longer fixed by the
/// placement: each bucket may be served by any of its replicas, and the
/// system picks the assignment minimizing the bottleneck disk. That is the
/// min-makespan unit-job/restricted-machines problem, solved exactly here
/// by binary search on the makespan T with a bipartite max-flow
/// feasibility test (bucket -> its replica disks -> sink with capacity T).
///
/// `failed_disks` models degraded mode: buckets route around dead disks.
/// A query is unroutable only if some bucket has every replica on a failed
/// disk — the availability guarantee replication buys.

namespace griddecl {

/// One routed query.
struct RoutedQuery {
  /// Max buckets assigned to one disk under the optimal routing.
  uint64_t response = 0;
  /// ceil(|Q| / alive_disks): the routing lower bound.
  uint64_t lower_bound = 0;
  /// Disk chosen for each bucket, in the rectangle's row-major order.
  std::vector<uint32_t> assignment;
};

/// Routes `query` optimally over `placement`'s replicas. `failed_disks`,
/// when given, must have one entry per disk; failed disks serve nothing.
/// Fails with kUnsupported when some bucket has no live replica.
Result<RoutedQuery> RouteQuery(const ReplicatedPlacement& placement,
                               const RangeQuery& query,
                               const std::vector<bool>* failed_disks =
                                   nullptr);

/// Workload-level routing summary: unroutable queries degrade the summary
/// instead of failing the whole workload.
struct RoutedWorkloadSummary {
  /// Mean optimal-routing response over the routable queries (0 when none
  /// is routable).
  double mean_response = 0;
  uint64_t routable = 0;
  /// Queries with some bucket whose every replica is on a failed disk.
  uint64_t unroutable = 0;
  /// routable / (routable + unroutable), in [0, 1].
  double Availability() const {
    const uint64_t total = routable + unroutable;
    return total == 0 ? 1.0
                      : static_cast<double>(routable) /
                            static_cast<double>(total);
  }
};

/// Mean optimally-routed response over a workload (convenience for
/// benches/tests). A query RouteQuery reports kUnsupported for counts as
/// unroutable rather than failing the call; genuine errors (e.g. a
/// mis-sized failure mask, an empty workload) still propagate.
Result<RoutedWorkloadSummary> MeanRoutedResponse(
    const ReplicatedPlacement& placement,
    const std::vector<RangeQuery>& queries,
    const std::vector<bool>* failed_disks = nullptr);

}  // namespace griddecl

#endif  // GRIDDECL_EVAL_REPLICA_ROUTER_H_
