#include "griddecl/eval/reproduction.h"

#include <ostream>

#include "griddecl/eval/experiment.h"
#include "griddecl/query/generator.h"
#include "griddecl/theory/partial_match_optimality.h"
#include "griddecl/theory/strict_optimality.h"

namespace griddecl {

namespace {

void Section(std::ostream& os, const std::string& title) {
  os << "\n=== " << title << " ===\n\n";
}

Status WriteSweep(std::ostream& os, const std::string& title,
                  const Result<SweepResult>& sweep) {
  if (!sweep.ok()) return sweep.status();
  Section(os, title + " — mean RT (optimal alongside)");
  sweep.value().ResponseTable().PrintText(os);
  Section(os, title + " — RT/optimal");
  sweep.value().RatioTable().PrintText(os);
  return Status::Ok();
}

}  // namespace

Status RunPaperReproduction(std::ostream& os,
                            const ReproductionOptions& options) {
  SweepOptions sweep_opts;
  sweep_opts.max_placements = options.max_placements;
  sweep_opts.seed = options.seed;

  Result<GridSpec> grid64 = GridSpec::Create({64, 64});
  if (!grid64.ok()) return grid64.status();

  // E1: query size.
  GRIDDECL_RETURN_IF_ERROR(WriteSweep(
      os, "E1: query size (64x64, M=16)",
      QuerySizeSweep(grid64.value(), 16, {1, 4, 9, 16, 64, 256, 1024},
                     sweep_opts)));

  // E2: query shape.
  GRIDDECL_RETURN_IF_ERROR(WriteSweep(
      os, "E2: query shape, area 16 (64x64, M=16)",
      QueryShapeSweep(grid64.value(), 16, 16,
                      {1.0 / 16, 1.0 / 4, 1.0, 4.0, 16.0}, sweep_opts)));

  // E3: attributes (2-d vs 3-d at equal side).
  Result<GridSpec> grid3 = GridSpec::Create({16, 16, 16});
  if (!grid3.ok()) return grid3.status();
  GRIDDECL_RETURN_IF_ERROR(
      WriteSweep(os, "E3: 3 attributes, cube queries (16^3, M=16)",
                 QuerySizeSweep(grid3.value(), 16, {8, 64, 512},
                                sweep_opts)));

  // E4/E5: disk sweeps.
  GRIDDECL_RETURN_IF_ERROR(WriteSweep(
      os, "E4 / Fig 5(a): disks, small queries (area 9)",
      DiskCountSweep(grid64.value(), {4, 8, 16, 32}, 9, sweep_opts)));
  GRIDDECL_RETURN_IF_ERROR(WriteSweep(
      os, "E5 / Fig 5(b): disks, large queries (area 1024)",
      DiskCountSweep(grid64.value(), {4, 8, 16, 32}, 1024, sweep_opts)));

  // E6: database size.
  std::vector<GridSpec> grids;
  for (uint32_t side : {16u, 32u, 64u}) {
    Result<GridSpec> g = GridSpec::Square(2, side);
    if (!g.ok()) return g.status();
    grids.push_back(std::move(g).value());
  }
  GRIDDECL_RETURN_IF_ERROR(
      WriteSweep(os, "E6: database size, 12.5%/side query (M=16)",
                 DbSizeSweep(grids, 16, 0.125, sweep_opts)));

  // E7: partial-match optimality matrix (compact: one grid).
  {
    Result<GridSpec> pm_grid = GridSpec::Create({8, 8, 4});
    if (!pm_grid.ok()) return pm_grid.status();
    const auto methods = CreatePaperMethods(pm_grid.value(), 4);
    std::vector<std::string> headers = {"Unspecified dims", "DM condition"};
    for (const auto& m : methods) headers.push_back(m->name());
    Table t(std::move(headers));
    for (const auto& specified : AllDimSubsets(3)) {
      if (specified.size() == 3) continue;
      std::vector<uint32_t> unspecified;
      std::vector<bool> spec(3, false);
      for (uint32_t d : specified) spec[d] = true;
      for (uint32_t d = 0; d < 3; ++d) {
        if (!spec[d]) unspecified.push_back(d);
      }
      std::string label;
      for (uint32_t d : unspecified) {
        label += (label.empty() ? "A" : ",A") + std::to_string(d);
      }
      std::vector<std::string> row = {
          label, DmPartialMatchCondition(pm_grid.value(), 4, unspecified)
                     ? "guaranteed"
                     : "-"};
      for (const auto& m : methods) {
        Result<bool> optimal =
            VerifyOptimalForPartialMatchClass(*m, specified);
        if (!optimal.ok()) return optimal.status();
        row.push_back(optimal.value() ? "optimal" : "not");
      }
      t.AddRow(std::move(row));
    }
    Section(os, "E7 / Table 1: partial-match optimality (8x8x4, M=4)");
    t.PrintText(os);
  }

  // E8: the theorem.
  if (options.include_theory) {
    Table t({"M", "Strictly optimal allocation?", "Evidence"});
    StrictOptimalitySearchOptions search;
    search.max_nodes = options.theory_max_nodes;
    for (uint32_t m = 2; m <= 7; ++m) {
      std::string verdict = "undecided";
      std::string evidence = "budget";
      for (uint32_t side = m + 1; side <= m + 3; ++side) {
        Result<StrictOptimalitySearchResult> r =
            FindStrictlyOptimalAllocation(side, side, m, search);
        if (!r.ok()) return r.status();
        if (r.value().outcome == SearchOutcome::kInfeasible) {
          verdict = "NO";
          evidence = "exhaustive proof on " + std::to_string(side) + "x" +
                     std::to_string(side);
          break;
        }
        if (r.value().outcome == SearchOutcome::kFound &&
            side == m + 3) {
          verdict = "YES";
          evidence = "verified on " + std::to_string(side) + "x" +
                     std::to_string(side);
        }
        if (r.value().outcome == SearchOutcome::kBudgetExhausted) break;
      }
      t.AddRow({Table::Fmt(static_cast<uint64_t>(m)), verdict, evidence});
    }
    Section(os, "E8: impossibility of strict optimality (the theorem)");
    t.PrintText(os);
  }
  os.flush();
  return Status::Ok();
}

}  // namespace griddecl
