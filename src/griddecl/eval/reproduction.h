#ifndef GRIDDECL_EVAL_REPRODUCTION_H_
#define GRIDDECL_EVAL_REPRODUCTION_H_

#include <cstdint>
#include <iosfwd>

#include "griddecl/common/status.h"

/// \file
/// One-call reproduction of the paper's evaluation: runs compact versions
/// of experiments E1-E8 (query size, query shape, attributes, the two
/// disk sweeps, database size, the partial-match table, and the
/// impossibility theorem) and writes the tables to a stream. The bench
/// binaries remain the full-resolution reference; this entry point is the
/// "show me the paper in one command" path used by `declctl reproduce`
/// and by smoke tests.

namespace griddecl {

/// Reproduction knobs.
struct ReproductionOptions {
  /// Placement averaging cap per data point (full benches use 4096).
  size_t max_placements = 1024;
  uint64_t seed = 42;
  /// Include the exhaustive-search theorem section (E8).
  bool include_theory = true;
  /// Node budget for each theorem search.
  uint64_t theory_max_nodes = 5'000'000;
};

/// Runs the reproduction and writes all tables to `os`. Returns the first
/// error encountered (the standard configurations cannot fail; errors
/// indicate an internal bug).
Status RunPaperReproduction(std::ostream& os,
                            const ReproductionOptions& options = {});

}  // namespace griddecl

#endif  // GRIDDECL_EVAL_REPRODUCTION_H_
