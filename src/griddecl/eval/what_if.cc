#include "griddecl/eval/what_if.h"

#include "griddecl/common/table.h"
#include "griddecl/eval/evaluator.h"
#include "griddecl/methods/registry.h"

namespace griddecl {

Result<std::vector<DiskScalingPoint>> DiskScalingAnalysis(
    const GridSpec& grid, const std::string& method_name,
    const Workload& workload, const std::vector<uint32_t>& disk_counts) {
  if (workload.empty()) {
    return Status::InvalidArgument("workload must be non-empty");
  }
  if (disk_counts.empty()) {
    return Status::InvalidArgument("need at least one disk count");
  }
  for (size_t i = 0; i < disk_counts.size(); ++i) {
    if (disk_counts[i] < 1) {
      return Status::InvalidArgument("disk counts must be >= 1");
    }
    if (i > 0 && disk_counts[i] <= disk_counts[i - 1]) {
      return Status::InvalidArgument("disk counts must be ascending");
    }
  }
  for (const RangeQuery& q : workload.queries) {
    if (!q.rect().WithinGrid(grid)) {
      return Status::InvalidArgument("workload query " + q.ToString() +
                                     " outside grid " + grid.ToString());
    }
  }

  std::vector<DiskScalingPoint> points;
  for (uint32_t m : disk_counts) {
    Result<std::unique_ptr<DeclusteringMethod>> method =
        CreateMethod(method_name, grid, m);
    if (!method.ok()) {
      if (method.status().code() == StatusCode::kUnsupported) continue;
      return method.status();
    }
    const WorkloadEval e =
        Evaluator(*method.value()).EvaluateWorkload(workload);
    DiskScalingPoint p;
    p.disks = m;
    p.mean_response = e.MeanResponse();
    p.mean_optimal = e.MeanOptimal();
    points.push_back(p);
  }
  if (points.empty()) {
    return Status::InvalidArgument("method '" + method_name +
                                   "' is not constructible at any of the "
                                   "requested disk counts");
  }
  const double base_response = points.front().mean_response;
  const double base_disks = points.front().disks;
  for (DiskScalingPoint& p : points) {
    p.speedup =
        p.mean_response <= 0 ? 1.0 : base_response / p.mean_response;
    const double added = static_cast<double>(p.disks) / base_disks;
    p.efficiency = added <= 0 ? 1.0 : p.speedup / added;
  }
  return points;
}

Result<uint32_t> RecommendDiskCount(
    const GridSpec& grid, const std::string& method_name,
    const Workload& workload, double target_mean_response,
    const std::vector<uint32_t>& disk_counts) {
  if (!(target_mean_response > 0)) {
    return Status::InvalidArgument("target mean response must be positive");
  }
  Result<std::vector<DiskScalingPoint>> points =
      DiskScalingAnalysis(grid, method_name, workload, disk_counts);
  if (!points.ok()) return points.status();
  for (const DiskScalingPoint& p : points.value()) {
    if (p.mean_response <= target_mean_response) return p.disks;
  }
  return Status::NotFound(
      "no tested disk count reaches mean response <= " +
      Table::Fmt(target_mean_response, 3) + " (best: " +
      Table::Fmt(points.value().back().mean_response, 3) + " at M=" +
      std::to_string(points.value().back().disks) + ")");
}

}  // namespace griddecl
