#ifndef GRIDDECL_EVAL_WHAT_IF_H_
#define GRIDDECL_EVAL_WHAT_IF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "griddecl/common/status.h"
#include "griddecl/grid/grid_spec.h"
#include "griddecl/query/workload.h"

/// \file
/// Capacity planning ("what-if" analysis): how many disks does a workload
/// actually need? The paper sweeps disk counts to compare methods; a system
/// owner asks the transposed question — for *my* method and *my* workload,
/// where does adding spindles stop paying? These helpers answer it with
/// the same response-time metric the rest of the library uses.

namespace griddecl {

/// One disk-count data point of a scaling analysis.
struct DiskScalingPoint {
  uint32_t disks = 0;
  double mean_response = 0;
  /// Mean optimal (ceil(|Q|/M)) at this M — the scaling of a perfect method.
  double mean_optimal = 0;
  /// mean_response(first point) / mean_response(this point).
  double speedup = 1.0;
  /// Parallel efficiency vs the first point:
  /// speedup / (disks / first_disks); 1.0 = perfect scaling.
  double efficiency = 1.0;
};

/// Evaluates `method_name` on `workload` at every disk count in
/// `disk_counts` (ascending, all >= 1). Disk counts where the method is
/// not constructible (e.g. ECC off powers of two) are skipped; fails if
/// none is constructible or the workload is empty.
Result<std::vector<DiskScalingPoint>> DiskScalingAnalysis(
    const GridSpec& grid, const std::string& method_name,
    const Workload& workload, const std::vector<uint32_t>& disk_counts);

/// Smallest disk count in `disk_counts` whose mean response time is at most
/// `target_mean_response`; kNotFound if even the largest misses the target.
Result<uint32_t> RecommendDiskCount(const GridSpec& grid,
                                    const std::string& method_name,
                                    const Workload& workload,
                                    double target_mean_response,
                                    const std::vector<uint32_t>& disk_counts);

}  // namespace griddecl

#endif  // GRIDDECL_EVAL_WHAT_IF_H_
