#ifndef GRIDDECL_GRID_BUCKET_H_
#define GRIDDECL_GRID_BUCKET_H_

#include <array>
#include <cstdint>
#include <initializer_list>
#include <string>

#include "griddecl/common/check.h"

/// \file
/// `BucketCoords`: the coordinates of one grid bucket, `<i_1, ..., i_k>` in
/// the paper's notation. A fixed-capacity inline array (no heap allocation)
/// because evaluating a declustering method over millions of buckets is the
/// inner loop of every experiment.

namespace griddecl {

/// Maximum supported dimensionality (number of declustered attributes).
/// The paper evaluates 2 and 3 attributes; 8 leaves generous headroom.
inline constexpr uint32_t kMaxDims = 8;

/// Coordinates of a bucket in a k-dimensional grid. Value type.
class BucketCoords {
 public:
  /// Zero coordinates in `k` dimensions.
  explicit BucketCoords(uint32_t k) : size_(k) {
    GRIDDECL_CHECK_MSG(k >= 1 && k <= kMaxDims, "k=%u", k);
    coords_.fill(0);
  }

  /// From an explicit list, e.g. `BucketCoords({3, 5})`.
  BucketCoords(std::initializer_list<uint32_t> coords)
      : size_(static_cast<uint32_t>(coords.size())) {
    GRIDDECL_CHECK(size_ >= 1 && size_ <= kMaxDims);
    coords_.fill(0);
    uint32_t i = 0;
    for (uint32_t c : coords) coords_[i++] = c;
  }

  uint32_t size() const { return size_; }

  uint32_t operator[](uint32_t dim) const {
    GRIDDECL_CHECK(dim < size_);
    return coords_[dim];
  }
  uint32_t& operator[](uint32_t dim) {
    GRIDDECL_CHECK(dim < size_);
    return coords_[dim];
  }

  friend bool operator==(const BucketCoords& a, const BucketCoords& b) {
    if (a.size_ != b.size_) return false;
    for (uint32_t i = 0; i < a.size_; ++i) {
      if (a.coords_[i] != b.coords_[i]) return false;
    }
    return true;
  }
  friend bool operator!=(const BucketCoords& a, const BucketCoords& b) {
    return !(a == b);
  }

  /// "<3, 5>"; for diagnostics and test failure messages.
  std::string ToString() const {
    std::string out = "<";
    for (uint32_t i = 0; i < size_; ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(coords_[i]);
    }
    out += ">";
    return out;
  }

 private:
  std::array<uint32_t, kMaxDims> coords_;
  uint32_t size_;
};

}  // namespace griddecl

#endif  // GRIDDECL_GRID_BUCKET_H_
