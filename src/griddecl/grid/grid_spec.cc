#include "griddecl/grid/grid_spec.h"

#include <limits>

namespace griddecl {

Result<GridSpec> GridSpec::Create(std::vector<uint32_t> dims) {
  if (dims.empty() || dims.size() > kMaxDims) {
    return Status::InvalidArgument(
        "grid must have between 1 and " + std::to_string(kMaxDims) +
        " dimensions, got " + std::to_string(dims.size()));
  }
  uint64_t total = 1;
  for (uint32_t d : dims) {
    if (d == 0) {
      return Status::InvalidArgument("every dimension needs >= 1 partition");
    }
    if (total > std::numeric_limits<uint64_t>::max() / d) {
      return Status::InvalidArgument("bucket count overflows uint64");
    }
    total *= d;
  }
  return GridSpec(std::move(dims), total);
}

Result<GridSpec> GridSpec::Square(uint32_t k, uint32_t side) {
  return Create(std::vector<uint32_t>(k, side));
}

Result<GridSpec> GridSpec::FromString(const std::string& shape) {
  std::vector<uint32_t> dims;
  size_t pos = 0;
  while (pos <= shape.size()) {
    const size_t next = shape.find('x', pos);
    const std::string token = shape.substr(
        pos, next == std::string::npos ? std::string::npos : next - pos);
    if (token.empty()) {
      return Status::InvalidArgument("malformed grid shape '" + shape + "'");
    }
    uint64_t value = 0;
    for (char ch : token) {
      if (ch < '0' || ch > '9') {
        return Status::InvalidArgument("malformed grid shape '" + shape +
                                       "'");
      }
      value = value * 10 + static_cast<uint64_t>(ch - '0');
      if (value > 0xFFFFFFFFull) {
        return Status::InvalidArgument("grid dimension too large in '" +
                                       shape + "'");
      }
    }
    dims.push_back(static_cast<uint32_t>(value));
    if (next == std::string::npos) break;
    pos = next + 1;
  }
  return Create(std::move(dims));
}

bool GridSpec::Contains(const BucketCoords& c) const {
  if (c.size() != dims_.size()) return false;
  for (uint32_t i = 0; i < c.size(); ++i) {
    if (c[i] >= dims_[i]) return false;
  }
  return true;
}

uint64_t GridSpec::Linearize(const BucketCoords& c) const {
  GRIDDECL_CHECK_MSG(Contains(c), "coords %s outside grid %s",
                     c.ToString().c_str(), ToString().c_str());
  uint64_t index = 0;
  for (uint32_t i = 0; i < c.size(); ++i) {
    index = index * dims_[i] + c[i];
  }
  return index;
}

BucketCoords GridSpec::Delinearize(uint64_t index) const {
  GRIDDECL_CHECK(index < num_buckets_);
  BucketCoords c(num_dims());
  for (uint32_t i = num_dims(); i-- > 0;) {
    c[i] = static_cast<uint32_t>(index % dims_[i]);
    index /= dims_[i];
  }
  return c;
}

void GridSpec::ForEachBucket(
    const std::function<void(const BucketCoords&)>& fn) const {
  BucketCoords c(num_dims());
  for (;;) {
    fn(c);
    // Odometer increment, last dimension fastest (row-major order).
    uint32_t dim = num_dims();
    for (;;) {
      if (dim == 0) return;
      --dim;
      if (++c[dim] < dims_[dim]) break;
      c[dim] = 0;
    }
  }
}

std::string GridSpec::ToString() const {
  std::string out;
  for (uint32_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) out += "x";
    out += std::to_string(dims_[i]);
  }
  return out;
}

}  // namespace griddecl
