#ifndef GRIDDECL_GRID_GRID_SPEC_H_
#define GRIDDECL_GRID_GRID_SPEC_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "griddecl/common/status.h"
#include "griddecl/grid/bucket.h"

/// \file
/// `GridSpec` describes the Cartesian-product partitioning of the data space:
/// `k` attributes, attribute `i` split into `d_i` intervals, yielding a
/// `d_1 x d_2 x ... x d_k` grid of buckets. This is the domain over which
/// every declustering method is defined.

namespace griddecl {

/// Shape of a k-dimensional bucket grid. Immutable value type.
class GridSpec {
 public:
  /// Validated factory. Requires 1 <= k <= kMaxDims, every d_i >= 1, and a
  /// total bucket count that fits in uint64 (checked multiplicative bound).
  static Result<GridSpec> Create(std::vector<uint32_t> dims);

  /// Convenience for tests/examples: `GridSpec::Square(2, 32)` = 32x32.
  static Result<GridSpec> Square(uint32_t k, uint32_t side);

  /// Parses the `ToString` format ("32x32", "8x16x4").
  static Result<GridSpec> FromString(const std::string& shape);

  /// Number of attributes (dimensions) k.
  uint32_t num_dims() const { return static_cast<uint32_t>(dims_.size()); }

  /// Number of partitions d_i on dimension `dim`.
  uint32_t dim(uint32_t dim) const {
    GRIDDECL_CHECK(dim < dims_.size());
    return dims_[dim];
  }

  const std::vector<uint32_t>& dims() const { return dims_; }

  /// Total number of buckets, prod(d_i).
  uint64_t num_buckets() const { return num_buckets_; }

  /// True iff `c` has the right dimensionality and every coordinate is
  /// within its domain.
  bool Contains(const BucketCoords& c) const;

  /// Row-major rank of `c` (last dimension varies fastest).
  /// `c` must be contained in the grid.
  uint64_t Linearize(const BucketCoords& c) const;

  /// Inverse of `Linearize`; `index` must be < num_buckets().
  BucketCoords Delinearize(uint64_t index) const;

  /// Calls `fn` for every bucket in row-major order.
  void ForEachBucket(const std::function<void(const BucketCoords&)>& fn) const;

  /// "32x32" / "8x16x4"; for reports.
  std::string ToString() const;

  friend bool operator==(const GridSpec& a, const GridSpec& b) {
    return a.dims_ == b.dims_;
  }

 private:
  explicit GridSpec(std::vector<uint32_t> dims, uint64_t num_buckets)
      : dims_(std::move(dims)), num_buckets_(num_buckets) {}

  std::vector<uint32_t> dims_;
  uint64_t num_buckets_;
};

}  // namespace griddecl

#endif  // GRIDDECL_GRID_GRID_SPEC_H_
