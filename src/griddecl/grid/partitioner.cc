#include "griddecl/grid/partitioner.h"

#include <algorithm>
#include <cmath>

namespace griddecl {

Result<DomainPartition> DomainPartition::Uniform(double lo, double hi,
                                                 uint32_t count) {
  if (!(lo < hi)) {
    return Status::InvalidArgument("domain requires lo < hi");
  }
  if (count == 0) {
    return Status::InvalidArgument("domain needs >= 1 interval");
  }
  if (!std::isfinite(lo) || !std::isfinite(hi)) {
    return Status::InvalidArgument("domain bounds must be finite");
  }
  std::vector<double> boundaries(count + 1);
  const double width = (hi - lo) / static_cast<double>(count);
  for (uint32_t j = 0; j <= count; ++j) {
    boundaries[j] = lo + width * static_cast<double>(j);
  }
  boundaries[count] = hi;  // Avoid accumulated rounding on the top edge.
  return DomainPartition(std::move(boundaries));
}

Result<DomainPartition> DomainPartition::FromBoundaries(
    std::vector<double> boundaries) {
  if (boundaries.size() < 2) {
    return Status::InvalidArgument("need at least 2 boundaries");
  }
  for (size_t j = 0; j + 1 < boundaries.size(); ++j) {
    if (!(boundaries[j] < boundaries[j + 1])) {
      return Status::InvalidArgument(
          "boundaries must be strictly increasing");
    }
  }
  for (double b : boundaries) {
    if (!std::isfinite(b)) {
      return Status::InvalidArgument("boundaries must be finite");
    }
  }
  return DomainPartition(std::move(boundaries));
}

uint32_t DomainPartition::IndexOf(double value) const {
  if (value <= boundaries_.front()) return 0;
  if (value >= boundaries_.back()) return num_intervals() - 1;
  // First boundary strictly greater than value, minus one.
  const auto it =
      std::upper_bound(boundaries_.begin(), boundaries_.end(), value);
  return static_cast<uint32_t>(it - boundaries_.begin()) - 1;
}

void DomainPartition::IndexRange(double qlo, double qhi, uint32_t* first,
                                 uint32_t* last) const {
  GRIDDECL_CHECK(qlo <= qhi);
  *first = IndexOf(qlo);
  *last = IndexOf(qhi);
}

Result<SpacePartitioner> SpacePartitioner::Create(
    std::vector<DomainPartition> parts) {
  if (parts.empty() || parts.size() > kMaxDims) {
    return Status::InvalidArgument("partitioner needs 1.." +
                                   std::to_string(kMaxDims) + " dimensions");
  }
  std::vector<uint32_t> dims;
  dims.reserve(parts.size());
  for (const auto& p : parts) dims.push_back(p.num_intervals());
  Result<GridSpec> grid = GridSpec::Create(std::move(dims));
  if (!grid.ok()) return grid.status();
  return SpacePartitioner(std::move(parts), std::move(grid).value());
}

Result<SpacePartitioner> SpacePartitioner::UnitUniform(
    const std::vector<uint32_t>& counts) {
  std::vector<DomainPartition> parts;
  parts.reserve(counts.size());
  for (uint32_t c : counts) {
    Result<DomainPartition> p = DomainPartition::Uniform(0.0, 1.0, c);
    if (!p.ok()) return p.status();
    parts.push_back(std::move(p).value());
  }
  return Create(std::move(parts));
}

BucketCoords SpacePartitioner::BucketOf(
    const std::vector<double>& values) const {
  GRIDDECL_CHECK_MSG(values.size() == parts_.size(),
                     "point has %zu values, space has %zu dims", values.size(),
                     parts_.size());
  BucketCoords c(num_dims());
  for (uint32_t i = 0; i < num_dims(); ++i) c[i] = parts_[i].IndexOf(values[i]);
  return c;
}

BucketRect SpacePartitioner::RectOf(const std::vector<double>& qlo,
                                    const std::vector<double>& qhi) const {
  GRIDDECL_CHECK(qlo.size() == parts_.size() && qhi.size() == parts_.size());
  BucketCoords lo(num_dims());
  BucketCoords hi(num_dims());
  for (uint32_t i = 0; i < num_dims(); ++i) {
    uint32_t first = 0;
    uint32_t last = 0;
    parts_[i].IndexRange(qlo[i], qhi[i], &first, &last);
    lo[i] = first;
    hi[i] = last;
  }
  Result<BucketRect> rect = BucketRect::Create(lo, hi);
  GRIDDECL_CHECK(rect.ok());
  return std::move(rect).value();
}

}  // namespace griddecl
