#ifndef GRIDDECL_GRID_PARTITIONER_H_
#define GRIDDECL_GRID_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "griddecl/common/status.h"
#include "griddecl/grid/bucket.h"
#include "griddecl/grid/grid_spec.h"
#include "griddecl/grid/rect.h"

/// \file
/// Maps real attribute values onto grid partition indices. This is the glue
/// between the record-level world (a tuple of attribute values, a predicate
/// `a <= attr <= b`) and the bucket-level world the declustering methods and
/// the paper's metric operate on.

namespace griddecl {

/// Partitioning of one attribute's domain `[lo, hi)` into intervals.
///
/// Interval `j` of dimension `i` is `[boundary[j], boundary[j+1])`, except
/// the last interval which is closed at the top so that `hi` itself is
/// mappable. Boundaries are strictly increasing.
class DomainPartition {
 public:
  /// Uniform split of `[lo, hi)` into `count` equal-width intervals.
  static Result<DomainPartition> Uniform(double lo, double hi, uint32_t count);

  /// Explicit boundaries; `boundaries.size() >= 2`, strictly increasing.
  /// Produces `boundaries.size() - 1` intervals.
  static Result<DomainPartition> FromBoundaries(std::vector<double> boundaries);

  uint32_t num_intervals() const {
    return static_cast<uint32_t>(boundaries_.size()) - 1;
  }
  double lo() const { return boundaries_.front(); }
  double hi() const { return boundaries_.back(); }

  /// Index of the interval containing `value`. Values below the domain clamp
  /// to 0, values above clamp to the last interval (grid-file convention:
  /// the outermost intervals absorb out-of-range data).
  uint32_t IndexOf(double value) const;

  /// Inclusive index range of intervals overlapping `[qlo, qhi]`.
  /// Requires qlo <= qhi. Clamped to the domain.
  void IndexRange(double qlo, double qhi, uint32_t* first,
                  uint32_t* last) const;

  /// The boundary vector (size num_intervals() + 1, strictly increasing).
  const std::vector<double>& raw_boundaries() const { return boundaries_; }

 private:
  explicit DomainPartition(std::vector<double> boundaries)
      : boundaries_(std::move(boundaries)) {}

  std::vector<double> boundaries_;
};

/// Partitioning of the full k-attribute space; one DomainPartition per
/// dimension. Defines the GridSpec the declustering methods run on.
class SpacePartitioner {
 public:
  /// Validated factory; `parts` must be non-empty and within kMaxDims.
  static Result<SpacePartitioner> Create(std::vector<DomainPartition> parts);

  /// Uniform partitioner over `[0, 1)^k` with the given interval counts.
  static Result<SpacePartitioner> UnitUniform(
      const std::vector<uint32_t>& counts);

  uint32_t num_dims() const { return static_cast<uint32_t>(parts_.size()); }
  const DomainPartition& dim(uint32_t i) const { return parts_[i]; }

  /// The grid shape induced by the partitioning.
  const GridSpec& grid() const { return grid_; }

  /// Bucket containing the point `values` (one value per dimension).
  BucketCoords BucketOf(const std::vector<double>& values) const;

  /// Rectangle of buckets overlapping the range predicate
  /// `qlo[i] <= attr_i <= qhi[i]` for all i.
  BucketRect RectOf(const std::vector<double>& qlo,
                    const std::vector<double>& qhi) const;

 private:
  SpacePartitioner(std::vector<DomainPartition> parts, GridSpec grid)
      : parts_(std::move(parts)), grid_(std::move(grid)) {}

  std::vector<DomainPartition> parts_;
  GridSpec grid_;
};

}  // namespace griddecl

#endif  // GRIDDECL_GRID_PARTITIONER_H_
