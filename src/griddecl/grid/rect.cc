#include "griddecl/grid/rect.h"

#include <algorithm>

namespace griddecl {

Result<BucketRect> BucketRect::Create(BucketCoords lo, BucketCoords hi) {
  if (lo.size() != hi.size()) {
    return Status::InvalidArgument("rect corners differ in dimensionality");
  }
  for (uint32_t i = 0; i < lo.size(); ++i) {
    if (lo[i] > hi[i]) {
      return Status::InvalidArgument("rect has lo > hi on dimension " +
                                     std::to_string(i));
    }
  }
  return BucketRect(lo, hi);
}

BucketRect BucketRect::Full(const GridSpec& grid) {
  BucketCoords lo(grid.num_dims());
  BucketCoords hi(grid.num_dims());
  for (uint32_t i = 0; i < grid.num_dims(); ++i) hi[i] = grid.dim(i) - 1;
  return BucketRect(lo, hi);
}

BucketRect BucketRect::Point(const BucketCoords& c) {
  return BucketRect(c, c);
}

uint64_t BucketRect::Volume() const {
  uint64_t v = 1;
  for (uint32_t i = 0; i < num_dims(); ++i) v *= Extent(i);
  return v;
}

bool BucketRect::Contains(const BucketCoords& c) const {
  if (c.size() != num_dims()) return false;
  for (uint32_t i = 0; i < num_dims(); ++i) {
    if (c[i] < lo_[i] || c[i] > hi_[i]) return false;
  }
  return true;
}

bool BucketRect::WithinGrid(const GridSpec& grid) const {
  if (grid.num_dims() != num_dims()) return false;
  for (uint32_t i = 0; i < num_dims(); ++i) {
    if (hi_[i] >= grid.dim(i)) return false;
  }
  return true;
}

std::optional<BucketRect> BucketRect::Intersect(const BucketRect& other) const {
  GRIDDECL_CHECK(other.num_dims() == num_dims());
  BucketCoords lo(num_dims());
  BucketCoords hi(num_dims());
  for (uint32_t i = 0; i < num_dims(); ++i) {
    lo[i] = std::max(lo_[i], other.lo_[i]);
    hi[i] = std::min(hi_[i], other.hi_[i]);
    if (lo[i] > hi[i]) return std::nullopt;
  }
  return BucketRect(lo, hi);
}

void BucketRect::ForEachBucket(
    const std::function<void(const BucketCoords&)>& fn) const {
  BucketCoords c = lo_;
  for (;;) {
    fn(c);
    uint32_t dim = num_dims();
    for (;;) {
      if (dim == 0) return;
      --dim;
      if (++c[dim] <= hi_[dim]) break;
      c[dim] = lo_[dim];
    }
  }
}

std::string BucketRect::ToString() const {
  std::string out;
  for (uint32_t i = 0; i < num_dims(); ++i) {
    if (i > 0) out += "x";
    out += "[" + std::to_string(lo_[i]) + ".." + std::to_string(hi_[i]) + "]";
  }
  return out;
}

}  // namespace griddecl
