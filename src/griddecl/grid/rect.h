#ifndef GRIDDECL_GRID_RECT_H_
#define GRIDDECL_GRID_RECT_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "griddecl/common/status.h"
#include "griddecl/grid/bucket.h"
#include "griddecl/grid/grid_spec.h"

/// \file
/// `BucketRect`: an axis-aligned hyper-rectangle of bucket coordinates,
/// `[lo_i, hi_i]` inclusive per dimension. This is what a range query looks
/// like after it has been mapped onto the grid, and the unit the response
/// time metric iterates over.

namespace griddecl {

/// Inclusive hyper-rectangle of buckets. Value type.
class BucketRect {
 public:
  /// Validated factory: `lo` and `hi` must have equal dimensionality and
  /// lo[i] <= hi[i] for all i.
  static Result<BucketRect> Create(BucketCoords lo, BucketCoords hi);

  /// The rectangle covering the entire grid.
  static BucketRect Full(const GridSpec& grid);

  /// The single bucket `c`.
  static BucketRect Point(const BucketCoords& c);

  uint32_t num_dims() const { return lo_.size(); }
  const BucketCoords& lo() const { return lo_; }
  const BucketCoords& hi() const { return hi_; }

  /// Side length on `dim` (hi - lo + 1).
  uint32_t Extent(uint32_t dim) const { return hi_[dim] - lo_[dim] + 1; }

  /// Number of buckets covered, prod(Extent(i)). This is |Q| in the paper.
  uint64_t Volume() const;

  bool Contains(const BucketCoords& c) const;

  /// True iff the rectangle lies entirely inside `grid`.
  bool WithinGrid(const GridSpec& grid) const;

  /// Intersection with another rectangle; nullopt when disjoint.
  std::optional<BucketRect> Intersect(const BucketRect& other) const;

  /// Calls `fn` for every covered bucket in row-major order.
  void ForEachBucket(const std::function<void(const BucketCoords&)>& fn) const;

  /// "[2..5]x[0..31]"; for diagnostics.
  std::string ToString() const;

  friend bool operator==(const BucketRect& a, const BucketRect& b) {
    return a.lo_ == b.lo_ && a.hi_ == b.hi_;
  }

 private:
  BucketRect(BucketCoords lo, BucketCoords hi)
      : lo_(lo), hi_(hi) {}

  BucketCoords lo_;
  BucketCoords hi_;
};

}  // namespace griddecl

#endif  // GRIDDECL_GRID_RECT_H_
