#ifndef GRIDDECL_GRIDDECL_H_
#define GRIDDECL_GRIDDECL_H_

/// \file
/// Umbrella header for the griddecl library: grid-based multi-attribute
/// record declustering, after Himatsingka & Srivastava (ICDE 1994).
///
/// Quick start:
///
///     #include "griddecl/griddecl.h"
///     using namespace griddecl;
///
///     auto grid = GridSpec::Square(2, 32).value();      // 32x32 buckets
///     auto hcam = CreateMethod("hcam", grid, 16).value();
///     auto rect = BucketRect::Create({0, 0}, {3, 3}).value();
///     auto query = RangeQuery::Create(grid, rect).value();
///     uint64_t rt  = ResponseTime(*hcam, query);         // paper's metric
///     uint64_t opt = OptimalResponseTime(query.NumBuckets(), 16);
///
/// Workload evaluation goes through `Evaluator`, which materializes the
/// method into a dense `DiskMap` once and answers every query from it
/// (`EvalOptions` controls the map and the worker-thread count):
///
///     Evaluator eval(*hcam);                 // builds the DiskMap once
///     Workload w = ...;                      // e.g. QueryGenerator output
///     WorkloadEval agg = eval.EvaluateWorkload(w);
///     double mean_rt = agg.MeanResponse();
///
///     EvalOptions opts;
///     opts.num_threads = 0;                  // all hardware threads
///     WorkloadEval par = Evaluator(*hcam, opts).EvaluateWorkload(w);

#include "griddecl/coding/gf2.h"
#include "griddecl/coding/parity_check.h"
#include "griddecl/common/bit_util.h"
#include "griddecl/common/crc32c.h"
#include "griddecl/common/flags.h"
#include "griddecl/common/math_util.h"
#include "griddecl/common/random.h"
#include "griddecl/common/stats.h"
#include "griddecl/common/status.h"
#include "griddecl/common/table.h"
#include "griddecl/curve/hilbert.h"
#include "griddecl/curve/morton.h"
#include "griddecl/eval/advisor.h"
#include "griddecl/eval/analytic.h"
#include "griddecl/eval/disk_map.h"
#include "griddecl/eval/evaluator.h"
#include "griddecl/eval/experiment.h"
#include "griddecl/eval/metrics.h"
#include "griddecl/eval/parallel.h"
#include "griddecl/eval/replica_router.h"
#include "griddecl/eval/reproduction.h"
#include "griddecl/eval/what_if.h"
#include "griddecl/grid/bucket.h"
#include "griddecl/grid/grid_spec.h"
#include "griddecl/grid/partitioner.h"
#include "griddecl/grid/rect.h"
#include "griddecl/gridfile/adaptive_grid_file.h"
#include "griddecl/gridfile/catalog.h"
#include "griddecl/gridfile/declustered_file.h"
#include "griddecl/gridfile/grid_file.h"
#include "griddecl/gridfile/manifest.h"
#include "griddecl/gridfile/replicated_file.h"
#include "griddecl/gridfile/scrub.h"
#include "griddecl/gridfile/storage.h"
#include "griddecl/gridfile/storage_env.h"
#include "griddecl/methods/dm.h"
#include "griddecl/methods/ecc.h"
#include "griddecl/methods/fx.h"
#include "griddecl/methods/hcam.h"
#include "griddecl/methods/lattice.h"
#include "griddecl/methods/method.h"
#include "griddecl/methods/registry.h"
#include "griddecl/methods/replicated.h"
#include "griddecl/methods/simple.h"
#include "griddecl/methods/table_method.h"
#include "griddecl/methods/workload_opt.h"
#include "griddecl/obs/metrics.h"
#include "griddecl/query/distributions.h"
#include "griddecl/query/generator.h"
#include "griddecl/query/query.h"
#include "griddecl/query/trace.h"
#include "griddecl/query/workload.h"
#include "griddecl/sim/availability.h"
#include "griddecl/sim/event_sim.h"
#include "griddecl/sim/faults.h"
#include "griddecl/sim/io_sim.h"
#include "griddecl/sim/throughput.h"
#include "griddecl/theory/kd_strict_optimality.h"
#include "griddecl/theory/partial_match_optimality.h"
#include "griddecl/theory/strict_optimality.h"
#include "griddecl/theory/worst_case.h"

#endif  // GRIDDECL_GRIDDECL_H_
