#include "griddecl/gridfile/adaptive_grid_file.h"

#include <algorithm>
#include <cmath>

namespace griddecl {

Result<AdaptiveGridFile> AdaptiveGridFile::Create(Schema schema,
                                                  Options options) {
  if (options.bucket_capacity < 1) {
    return Status::InvalidArgument("bucket capacity must be >= 1");
  }
  if (options.max_partitions_per_dim < 1) {
    return Status::InvalidArgument("max partitions per dim must be >= 1");
  }
  std::vector<std::vector<double>> boundaries;
  boundaries.reserve(schema.num_attributes());
  for (uint32_t i = 0; i < schema.num_attributes(); ++i) {
    const AttributeDef& a = schema.attribute(i);
    boundaries.push_back({a.lo, a.hi});
  }
  return AdaptiveGridFile(std::move(schema), options, std::move(boundaries));
}

Result<GridSpec> AdaptiveGridFile::grid() const {
  std::vector<uint32_t> dims;
  dims.reserve(boundaries_.size());
  for (uint32_t i = 0; i < boundaries_.size(); ++i) {
    dims.push_back(NumPartitions(i));
  }
  return GridSpec::Create(std::move(dims));
}

const std::vector<double>& AdaptiveGridFile::boundaries(uint32_t dim) const {
  GRIDDECL_CHECK(dim < boundaries_.size());
  return boundaries_[dim];
}

uint32_t AdaptiveGridFile::IndexOf(uint32_t dim, double value) const {
  const std::vector<double>& b = boundaries_[dim];
  if (value <= b.front()) return 0;
  if (value >= b.back()) return NumPartitions(dim) - 1;
  const auto it = std::upper_bound(b.begin(), b.end(), value);
  return static_cast<uint32_t>(it - b.begin()) - 1;
}

BucketCoords AdaptiveGridFile::CellOf(const Record& r) const {
  BucketCoords c(static_cast<uint32_t>(boundaries_.size()));
  for (uint32_t i = 0; i < boundaries_.size(); ++i) {
    c[i] = IndexOf(i, r[i]);
  }
  return c;
}

uint64_t AdaptiveGridFile::LinearizeCell(const BucketCoords& c) const {
  uint64_t index = 0;
  for (uint32_t i = 0; i < c.size(); ++i) {
    index = index * NumPartitions(i) + c[i];
  }
  return index;
}

Result<RecordId> AdaptiveGridFile::Insert(Record record) {
  if (record.size() != schema_.num_attributes()) {
    return Status::InvalidArgument(
        "record has " + std::to_string(record.size()) + " values, schema has " +
        std::to_string(schema_.num_attributes()) + " attributes");
  }
  for (double v : record) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument("record values must be finite");
    }
  }
  const RecordId id = records_.size();
  records_.push_back(std::move(record));
  const BucketCoords cell = CellOf(records_.back());
  cells_[static_cast<size_t>(LinearizeCell(cell))].push_back(id);
  // Split while the target cell (wherever the new record lands after each
  // split) is over capacity and some dimension can still split.
  BucketCoords current = cell;
  while (cells_[static_cast<size_t>(LinearizeCell(current))].size() >
         options_.bucket_capacity) {
    if (!MaybeSplit(current)) break;
    current = CellOf(records_[static_cast<size_t>(id)]);
  }
  return id;
}

bool AdaptiveGridFile::MaybeSplit(const BucketCoords& cell) {
  const std::vector<RecordId>& contents =
      cells_[static_cast<size_t>(LinearizeCell(cell))];
  // Pick the splittable dimension where this cell's records spread widest
  // (relative to the cell's extent), and a median boundary that actually
  // separates records.
  int best_dim = -1;
  double best_boundary = 0;
  double best_spread = -1;
  for (uint32_t dim = 0; dim < boundaries_.size(); ++dim) {
    if (NumPartitions(dim) >= options_.max_partitions_per_dim) continue;
    std::vector<double> values;
    values.reserve(contents.size());
    for (RecordId id : contents) {
      values.push_back(records_[static_cast<size_t>(id)][dim]);
    }
    std::sort(values.begin(), values.end());
    const double lo = values.front();
    const double hi = values.back();
    if (!(hi > lo)) continue;  // All records identical on this dimension.
    const double median = values[values.size() / 2];
    // A boundary must strictly separate: use the median unless it equals
    // the minimum (then use the midpoint of the value range).
    double boundary = median;
    if (!(boundary > lo)) boundary = (lo + hi) / 2;
    if (!(boundary > lo) || !(boundary < hi) || !std::isfinite(boundary)) {
      continue;
    }
    const double spread = hi - lo;
    if (spread > best_spread) {
      best_spread = spread;
      best_dim = static_cast<int>(dim);
      best_boundary = boundary;
    }
  }
  if (best_dim < 0) return false;

  std::vector<double>& b = boundaries_[static_cast<size_t>(best_dim)];
  const auto it = std::upper_bound(b.begin(), b.end(), best_boundary);
  // Reject degenerate duplicates (can happen with pathological values).
  if (it != b.begin() && *(it - 1) == best_boundary) return false;
  b.insert(it, best_boundary);
  ++num_splits_;
  Reindex();
  return true;
}

void AdaptiveGridFile::Reindex() {
  uint64_t total_cells = 1;
  for (uint32_t i = 0; i < boundaries_.size(); ++i) {
    total_cells *= NumPartitions(i);
  }
  cells_.assign(static_cast<size_t>(total_cells), {});
  for (RecordId id = 0; id < records_.size(); ++id) {
    const BucketCoords c = CellOf(records_[static_cast<size_t>(id)]);
    cells_[static_cast<size_t>(LinearizeCell(c))].push_back(id);
  }
}

const Record& AdaptiveGridFile::record(RecordId id) const {
  GRIDDECL_CHECK(id < records_.size());
  return records_[static_cast<size_t>(id)];
}

BucketCoords AdaptiveGridFile::BucketOfRecord(RecordId id) const {
  return CellOf(record(id));
}

const std::vector<RecordId>& AdaptiveGridFile::BucketContents(
    const BucketCoords& c) const {
  return cells_[static_cast<size_t>(LinearizeCell(c))];
}

Result<RangeQuery> AdaptiveGridFile::ResolveRange(
    const std::vector<double>& lo, const std::vector<double>& hi) const {
  if (lo.size() != schema_.num_attributes() ||
      hi.size() != schema_.num_attributes()) {
    return Status::InvalidArgument("range bounds must match the schema");
  }
  for (uint32_t i = 0; i < lo.size(); ++i) {
    if (!(lo[i] <= hi[i])) {
      return Status::InvalidArgument("range has lo > hi on attribute " +
                                     std::to_string(i));
    }
  }
  BucketCoords clo(static_cast<uint32_t>(lo.size()));
  BucketCoords chi(static_cast<uint32_t>(lo.size()));
  for (uint32_t i = 0; i < lo.size(); ++i) {
    clo[i] = IndexOf(i, lo[i]);
    chi[i] = IndexOf(i, hi[i]);
  }
  Result<GridSpec> g = grid();
  if (!g.ok()) return g.status();
  Result<BucketRect> rect = BucketRect::Create(clo, chi);
  if (!rect.ok()) return rect.status();
  return RangeQuery::Create(g.value(), std::move(rect).value());
}

Result<std::vector<RecordId>> AdaptiveGridFile::RangeSearch(
    const std::vector<double>& lo, const std::vector<double>& hi) const {
  Result<RangeQuery> query = ResolveRange(lo, hi);
  if (!query.ok()) return query.status();
  std::vector<RecordId> hits;
  query.value().rect().ForEachBucket([&](const BucketCoords& c) {
    for (RecordId id : BucketContents(c)) {
      const Record& r = records_[static_cast<size_t>(id)];
      bool match = true;
      for (uint32_t i = 0; i < r.size() && match; ++i) {
        match = lo[i] <= r[i] && r[i] <= hi[i];
      }
      if (match) hits.push_back(id);
    }
  });
  std::sort(hits.begin(), hits.end());
  return hits;
}

Result<GridFile> AdaptiveGridFile::Snapshot() const {
  std::vector<DomainPartition> parts;
  parts.reserve(boundaries_.size());
  for (const std::vector<double>& b : boundaries_) {
    Result<DomainPartition> p = DomainPartition::FromBoundaries(b);
    if (!p.ok()) return p.status();
    parts.push_back(std::move(p).value());
  }
  Result<SpacePartitioner> sp = SpacePartitioner::Create(std::move(parts));
  if (!sp.ok()) return sp.status();
  Result<GridFile> file =
      GridFile::CreateWithPartitioner(schema_, std::move(sp).value());
  if (!file.ok()) return file.status();
  for (const Record& r : records_) {
    Result<RecordId> id = file.value().Insert(r);
    if (!id.ok()) return id.status();
  }
  return file;
}

double AdaptiveGridFile::MaxLoadFactor() const {
  size_t max_size = 0;
  for (const auto& cell : cells_) max_size = std::max(max_size, cell.size());
  return static_cast<double>(max_size) /
         static_cast<double>(options_.bucket_capacity);
}

}  // namespace griddecl
