#ifndef GRIDDECL_GRIDFILE_ADAPTIVE_GRID_FILE_H_
#define GRIDDECL_GRIDFILE_ADAPTIVE_GRID_FILE_H_

#include <cstdint>
#include <vector>

#include "griddecl/common/status.h"
#include "griddecl/gridfile/grid_file.h"

/// \file
/// Adaptive Cartesian-product file: a grid file whose partition boundaries
/// adapt to the data (Nievergelt, Hinterberger & Sevcik, TODS 1984 — the
/// paper's reference [15]).
///
/// The static `GridFile` fixes uniform partition boundaries up front, which
/// is exactly right for uniform data and for reproducing the paper's
/// experiments. Real data is skewed; the grid file's answer is to grow the
/// *linear scales* (per-dimension boundary vectors) where the data is
/// dense: when a cell overflows its capacity, a new boundary is inserted at
/// the median of the overflowing cell's records along the dimension where
/// that cell's records spread the most.
///
/// Simplifications relative to the original paper, documented here:
///  * one bucket per grid cell (no directory sharing of buckets between
///    cells) — memory is bounded instead by `max_partitions_per_dim`;
///  * splits rebuild the cell index (O(N)); fine at simulation scale, and
///    insertion remains amortized cheap because splits are capped.
///
/// The paper's declustering premise — "the data distribution tends to
/// remain fairly stable and thus the allocation of buckets remains fixed
/// over time" — maps to: bulk-load (or warm up) the adaptive file, then
/// bind a declustering method to the *induced* grid via `grid()`.

namespace griddecl {

/// Grid file with adaptive, per-dimension boundaries.
class AdaptiveGridFile {
 public:
  struct Options {
    /// Records a cell may hold before it is split.
    uint32_t bucket_capacity = 32;
    /// Cap on partitions per dimension; once reached, cells on that
    /// dimension stop splitting along it (they may still split along
    /// others; if no dimension can split, the cell simply overflows).
    uint32_t max_partitions_per_dim = 64;
  };

  /// Validated factory: starts with a single cell spanning every domain.
  static Result<AdaptiveGridFile> Create(Schema schema, Options options);

  const Schema& schema() const { return schema_; }
  const Options& options() const { return options_; }

  uint64_t num_records() const { return records_.size(); }
  /// Total splits performed so far.
  uint64_t num_splits() const { return num_splits_; }

  /// The current induced bucket grid (changes as splits happen).
  Result<GridSpec> grid() const;

  /// Current boundaries of dimension `dim` (size = partitions + 1).
  const std::vector<double>& boundaries(uint32_t dim) const;

  /// Inserts a record, splitting overflowing cells as needed.
  Result<RecordId> Insert(Record record);

  const Record& record(RecordId id) const;

  /// Cell currently containing the record.
  BucketCoords BucketOfRecord(RecordId id) const;

  /// Records currently stored in cell `c`.
  const std::vector<RecordId>& BucketContents(const BucketCoords& c) const;

  /// Rectangle of cells overlapping `lo[i] <= attr_i <= hi[i]`.
  Result<RangeQuery> ResolveRange(const std::vector<double>& lo,
                                  const std::vector<double>& hi) const;

  /// Exact record-level range search.
  Result<std::vector<RecordId>> RangeSearch(const std::vector<double>& lo,
                                            const std::vector<double>& hi)
      const;

  /// Max records in any cell divided by capacity; > 1 only when splitting
  /// is exhausted (all dimensions at their partition cap).
  double MaxLoadFactor() const;

  /// Freezes the learned boundaries into a static `GridFile` holding a
  /// copy of every record. This is the paper's deployment model: the data
  /// distribution is assumed stable, so the adapted partitioning is fixed
  /// and a declustering method is bound to the induced grid (e.g. via
  /// `DeclusteredFile::Create(file.Snapshot().value(), "hcam", M)`).
  Result<GridFile> Snapshot() const;

 private:
  AdaptiveGridFile(Schema schema, Options options,
                   std::vector<std::vector<double>> boundaries)
      : schema_(std::move(schema)),
        options_(options),
        boundaries_(std::move(boundaries)),
        cells_(1) {}

  uint32_t NumPartitions(uint32_t dim) const {
    return static_cast<uint32_t>(boundaries_[dim].size()) - 1;
  }

  /// Interval index of `value` on dimension `dim` (clamping convention as
  /// in DomainPartition).
  uint32_t IndexOf(uint32_t dim, double value) const;

  BucketCoords CellOf(const Record& r) const;

  uint64_t LinearizeCell(const BucketCoords& c) const;

  /// Splits the given cell if a dimension is splittable; returns true when
  /// a split happened (and the cell index was rebuilt).
  bool MaybeSplit(const BucketCoords& cell);

  /// Rebuilds `cells_` from scratch against the current boundaries.
  void Reindex();

  Schema schema_;
  Options options_;
  /// Per-dimension boundary vectors (strictly increasing, first = domain
  /// lo, last = domain hi).
  std::vector<std::vector<double>> boundaries_;
  std::vector<Record> records_;
  /// Row-major cell -> record ids.
  std::vector<std::vector<RecordId>> cells_;
  uint64_t num_splits_ = 0;
};

}  // namespace griddecl

#endif  // GRIDDECL_GRIDFILE_ADAPTIVE_GRID_FILE_H_
