#include "griddecl/gridfile/buffer_pool.h"

#include <algorithm>

namespace griddecl {

BufferPool::BufferPool(size_t capacity_pages)
    : capacity_(std::max<size_t>(1, capacity_pages)),
      probation_capacity_(std::max<size_t>(1, capacity_ / 4)),
      protected_capacity_(std::max<size_t>(1, capacity_ - probation_capacity_)) {}

BufferPool::FramePtr BufferPool::Lookup(std::string_view file,
                                        uint64_t page) {
  const Key key(std::string(file), page);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find(key);
  if (it == frames_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  Entry& entry = it->second;
  if (entry.in_protected) {
    entry.referenced = true;
  } else {
    // Second touch: promote out of probation into the protected segment.
    probation_.erase(entry.pos);
    if (protected_.size() >= protected_capacity_) EvictProtectedLocked();
    protected_.push_back(it->first);
    entry.pos = std::prev(protected_.end());
    entry.in_protected = true;
    entry.referenced = false;
    ++stats_.promotions;
  }
  return entry.frame;
}

BufferPool::FramePtr BufferPool::Admit(FramePtr frame) {
  if (frame == nullptr) return nullptr;
  const Key key(frame->file, frame->page);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find(key);
  if (it != frames_.end()) return it->second.frame;  // Raced; incumbent wins.
  if (probation_.size() >= probation_capacity_) EvictProbationLocked();
  probation_.push_back(key);
  Entry entry;
  entry.frame = frame;
  entry.pos = std::prev(probation_.end());
  frames_.emplace(key, std::move(entry));
  ++stats_.admissions;
  return frame;
}

void BufferPool::EvictProbationLocked() {
  if (probation_.empty()) return;
  frames_.erase(probation_.front());
  probation_.pop_front();
  ++stats_.evictions;
}

void BufferPool::EvictProtectedLocked() {
  // Second-chance CLOCK: recycle referenced frames to the tail (clearing
  // the bit), evict the first cold frame. Bounded: after one full lap
  // every bit is clear, so the loop terminates.
  while (!protected_.empty()) {
    auto it = frames_.find(protected_.front());
    if (it != frames_.end() && it->second.referenced) {
      it->second.referenced = false;
      protected_.push_back(protected_.front());
      it->second.pos = std::prev(protected_.end());
      protected_.pop_front();
      continue;
    }
    if (it != frames_.end()) frames_.erase(it);
    protected_.pop_front();
    ++stats_.evictions;
    return;
  }
}

void BufferPool::Invalidate(std::string_view file) {
  std::lock_guard<std::mutex> lock(mu_);
  auto sweep = [&](std::list<Key>& list) {
    for (auto it = list.begin(); it != list.end();) {
      if (it->first == file) {
        frames_.erase(*it);
        it = list.erase(it);
        ++stats_.evictions;
      } else {
        ++it;
      }
    }
  };
  sweep(probation_);
  sweep(protected_);
}

BufferPool::Stats BufferPool::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats = stats_;
  stats.resident = frames_.size();
  return stats;
}

}  // namespace griddecl
