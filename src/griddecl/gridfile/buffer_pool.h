#ifndef GRIDDECL_GRIDFILE_BUFFER_POOL_H_
#define GRIDDECL_GRIDFILE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "griddecl/gridfile/storage.h"

/// \file
/// Bounded, scan-resistant page cache keyed by (file, page).
///
/// Admission/eviction is segmented (2Q/SLRU-flavored):
///
///  * A page enters a small **probation** FIFO (a quarter of capacity).
///    Pages touched exactly once — a sequential scan — march through
///    probation and fall out the far end without ever displacing the
///    working set.
///  * A probation hit **promotes** the page to the **protected** segment
///    (the remaining three quarters), which evicts by second-chance
///    CLOCK: a hit sets the frame's reference bit; the eviction hand
///    clears set bits and recycles the frame to the tail, evicting the
///    first frame found cold.
///
/// Pin safety is structural, not counted: frames are immutable
/// `shared_ptr<const Frame>` payloads. Eviction merely drops the pool's
/// reference — any outstanding pin keeps the decoded page alive, so
/// pin/unpin/evict need no coordination beyond the pool's single mutex
/// and readers never observe a frame mid-mutation.

namespace griddecl {

class BufferPool {
 public:
  /// One cached page: its raw bytes plus the decoded columnar view.
  /// Immutable after construction.
  struct Frame {
    std::string file;
    uint64_t page = 0;
    std::string raw;
    DecodedPage decoded;
  };
  using FramePtr = std::shared_ptr<const Frame>;

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t admissions = 0;
    uint64_t evictions = 0;
    uint64_t promotions = 0;
    /// Frames currently resident (gauge, not a counter).
    uint64_t resident = 0;
  };

  /// `capacity_pages` must be >= 1; the probation segment gets
  /// max(1, capacity/4) frames and the protected segment the rest.
  explicit BufferPool(size_t capacity_pages);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns the cached frame (counting a hit and updating recency
  /// state) or null (counting a miss).
  FramePtr Lookup(std::string_view file, uint64_t page);

  /// Inserts `frame`, evicting if full. If the key is already resident
  /// (two readers raced on the same miss) the incumbent wins and is
  /// returned; the caller's copy is dropped. Never fails.
  FramePtr Admit(FramePtr frame);

  /// Drops every resident frame of `file` (after a repair rewrites it).
  /// Outstanding pins stay valid; they just reference pre-repair bytes.
  void Invalidate(std::string_view file);

  Stats GetStats() const;
  size_t capacity() const { return capacity_; }

 private:
  struct Entry;
  using Key = std::pair<std::string, uint64_t>;
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return std::hash<std::string>()(k.first) * 1000003u +
             std::hash<uint64_t>()(k.second);
    }
  };
  struct Entry {
    FramePtr frame;
    bool in_protected = false;
    bool referenced = false;
    std::list<Key>::iterator pos;
  };

  void EvictProbationLocked();
  void EvictProtectedLocked();

  const size_t capacity_;
  const size_t probation_capacity_;
  const size_t protected_capacity_;

  mutable std::mutex mu_;
  std::unordered_map<Key, Entry, KeyHash> frames_;
  /// Front = oldest. Probation evicts strictly front-first (FIFO);
  /// protected scans front-first giving referenced frames a second
  /// chance at the tail.
  std::list<Key> probation_;
  std::list<Key> protected_;
  Stats stats_;
};

}  // namespace griddecl

#endif  // GRIDDECL_GRIDFILE_BUFFER_POOL_H_
