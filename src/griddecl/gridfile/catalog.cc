#include "griddecl/gridfile/catalog.h"

namespace griddecl {

Catalog::Catalog(uint32_t num_disks) : num_disks_(num_disks) {
  GRIDDECL_CHECK(num_disks >= 1);
}

Status Catalog::AddRelation(const std::string& name, DeclusteredFile file) {
  if (name.empty()) {
    return Status::InvalidArgument("relation name must be non-empty");
  }
  if (file.num_disks() != num_disks_) {
    return Status::InvalidArgument(
        "relation '" + name + "' declusters over " +
        std::to_string(file.num_disks()) + " disks; the array has " +
        std::to_string(num_disks_));
  }
  if (relations_.count(name) > 0) {
    return Status::InvalidArgument("relation '" + name +
                                   "' already registered");
  }
  relations_.emplace(name, std::move(file));
  return Status::Ok();
}

Status Catalog::DropRelation(const std::string& name) {
  if (relations_.erase(name) == 0) {
    return Status::NotFound("no relation named '" + name + "'");
  }
  return Status::Ok();
}

const DeclusteredFile* Catalog::Find(const std::string& name) const {
  const auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : &it->second;
}

DeclusteredFile* Catalog::Find(const std::string& name) {
  const auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : &it->second;
}

std::vector<std::string> Catalog::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, file] : relations_) names.push_back(name);
  return names;  // std::map iteration is already sorted.
}

Result<QueryExecution> Catalog::ExecuteRange(
    const std::string& name, const std::vector<double>& lo,
    const std::vector<double>& hi) const {
  const DeclusteredFile* file = Find(name);
  if (file == nullptr) {
    return Status::NotFound("no relation named '" + name + "'");
  }
  return file->ExecuteRange(lo, hi);
}

std::vector<uint64_t> Catalog::RecordsPerDisk() const {
  std::vector<uint64_t> totals(num_disks_, 0);
  for (const auto& [name, file] : relations_) {
    const std::vector<uint64_t> per_disk = file.RecordsPerDisk();
    for (uint32_t d = 0; d < num_disks_; ++d) totals[d] += per_disk[d];
  }
  return totals;
}

std::vector<Catalog::RelationInfo> Catalog::Describe() const {
  std::vector<RelationInfo> out;
  out.reserve(relations_.size());
  for (const auto& [name, file] : relations_) {
    out.push_back({name, file.method().name(),
                   file.file().grid().ToString(),
                   file.file().num_records()});
  }
  return out;
}

}  // namespace griddecl
