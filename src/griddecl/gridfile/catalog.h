#ifndef GRIDDECL_GRIDFILE_CATALOG_H_
#define GRIDDECL_GRIDFILE_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "griddecl/gridfile/declustered_file.h"

/// \file
/// Relation catalog: many declustered relations sharing one disk array.
///
/// The paper closes with "parallel database systems must support a number
/// of declustering methods" — which implies a host structure that tracks,
/// per relation, *which* method declusters it, and can account for the
/// combined load the relations place on the shared disks. This catalog is
/// that structure: relations register under a name, each with its own
/// grid, method, and records; queries dispatch by relation name; storage
/// balance aggregates across all of them.

namespace griddecl {

/// Named collection of declustered relations over a common disk array.
class Catalog {
 public:
  /// All registered relations must decluster over exactly `num_disks`.
  explicit Catalog(uint32_t num_disks);

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;
  Catalog(Catalog&&) = default;
  Catalog& operator=(Catalog&&) = default;

  uint32_t num_disks() const { return num_disks_; }
  size_t num_relations() const { return relations_.size(); }

  /// Registers a relation. Fails on duplicate names, empty names, or a
  /// disk-count mismatch with the array.
  Status AddRelation(const std::string& name, DeclusteredFile file);

  /// Removes a relation; kNotFound if absent.
  Status DropRelation(const std::string& name);

  /// Looks up a relation; nullptr when absent.
  const DeclusteredFile* Find(const std::string& name) const;
  DeclusteredFile* Find(const std::string& name);

  /// Registered names, sorted.
  std::vector<std::string> RelationNames() const;

  /// Executes a range query against a named relation.
  Result<QueryExecution> ExecuteRange(const std::string& name,
                                      const std::vector<double>& lo,
                                      const std::vector<double>& hi) const;

  /// Combined records per disk across every relation — the storage balance
  /// the array actually sees.
  std::vector<uint64_t> RecordsPerDisk() const;

  /// One summary row per relation: name, method, grid, records.
  struct RelationInfo {
    std::string name;
    std::string method;
    std::string grid;
    uint64_t num_records = 0;
  };
  std::vector<RelationInfo> Describe() const;

 private:
  uint32_t num_disks_;
  std::map<std::string, DeclusteredFile> relations_;
};

}  // namespace griddecl

#endif  // GRIDDECL_GRIDFILE_CATALOG_H_
