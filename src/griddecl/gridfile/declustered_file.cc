#include "griddecl/gridfile/declustered_file.h"

#include <algorithm>

#include "griddecl/eval/metrics.h"
#include "griddecl/gridfile/storage.h"
#include "griddecl/methods/registry.h"

namespace griddecl {

Result<DeclusteredFile> DeclusteredFile::Create(GridFile file,
                                                const std::string& method_name,
                                                uint32_t num_disks,
                                                DiskParams params) {
  Result<std::unique_ptr<DeclusteringMethod>> method =
      CreateMethod(method_name, file.grid(), num_disks);
  if (!method.ok()) return method.status();
  return DeclusteredFile(std::move(file), std::move(method).value(),
                         method_name, params);
}

uint32_t DeclusteredFile::DiskOfRecord(RecordId id) const {
  return method_->DiskOf(file_.BucketOfRecord(id));
}

Result<QueryExecution> DeclusteredFile::ExecuteRange(
    const std::vector<double>& lo, const std::vector<double>& hi) const {
  Result<RangeQuery> query = file_.ResolveRange(lo, hi);
  if (!query.ok()) return query.status();
  Result<std::vector<RecordId>> matches = file_.RangeSearch(lo, hi);
  if (!matches.ok()) return matches.status();

  QueryExecution exec;
  exec.matches = std::move(matches).value();
  exec.buckets_touched = query.value().NumBuckets();
  exec.pages_touched = exec.buckets_touched;
  exec.response_units = ResponseTime(*method_, query.value());
  exec.optimal_units =
      OptimalResponseTime(exec.buckets_touched, method_->num_disks());
  exec.io = sim_.RunQuery(*method_, query.value());
  return exec;
}

Result<QueryExecution> DeclusteredFile::ExecuteRangePaged(
    const std::vector<double>& lo, const std::vector<double>& hi,
    uint32_t page_size_bytes) const {
  Result<RangeQuery> query = file_.ResolveRange(lo, hi);
  if (!query.ok()) return query.status();
  Result<std::vector<RecordId>> matches = file_.RangeSearch(lo, hi);
  if (!matches.ok()) return matches.status();
  Result<std::vector<uint64_t>> pages =
      PagesPerBucket(file_, page_size_bytes);
  if (!pages.ok()) return pages.status();

  QueryExecution exec;
  exec.matches = std::move(matches).value();
  exec.buckets_touched = query.value().NumBuckets();
  exec.response_units = ResponseTime(*method_, query.value());
  exec.optimal_units =
      OptimalResponseTime(exec.buckets_touched, method_->num_disks());

  // Per-disk page addresses: each bucket's pages are contiguous, laid out
  // by bucket order on its disk (bucket-clustered layout). Address space:
  // bucket_linear * max_pages + page, preserving inter-bucket locality.
  const GridSpec& grid = file_.grid();
  uint64_t max_pages = 1;
  for (uint64_t p : pages.value()) max_pages = std::max(max_pages, p);
  std::vector<std::vector<uint64_t>> schedule(method_->num_disks());
  uint64_t total_pages = 0;
  query.value().rect().ForEachBucket([&](const BucketCoords& c) {
    const uint64_t lin = grid.Linearize(c);
    // An empty bucket still costs one page inspection.
    const uint64_t n =
        std::max<uint64_t>(1, pages.value()[static_cast<size_t>(lin)]);
    total_pages += n;
    std::vector<uint64_t>& disk = schedule[method_->DiskOf(c)];
    for (uint64_t p = 0; p < n; ++p) disk.push_back(lin * max_pages + p);
  });
  exec.pages_touched = total_pages;
  exec.io = sim_.RunSchedule(schedule);
  return exec;
}

std::vector<uint64_t> DeclusteredFile::RecordsPerDisk() const {
  std::vector<uint64_t> counts(method_->num_disks(), 0);
  for (RecordId id = 0; id < file_.num_records(); ++id) {
    ++counts[DiskOfRecord(id)];
  }
  return counts;
}

}  // namespace griddecl
