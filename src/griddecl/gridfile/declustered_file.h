#ifndef GRIDDECL_GRIDFILE_DECLUSTERED_FILE_H_
#define GRIDDECL_GRIDFILE_DECLUSTERED_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "griddecl/gridfile/grid_file.h"
#include "griddecl/methods/method.h"
#include "griddecl/sim/io_sim.h"

/// \file
/// End-to-end binding: a grid file whose buckets are declustered over M
/// simulated disks. This is what a parallel database's storage layer looks
/// like in the paper's architecture — records come in, land in buckets,
/// buckets live on disks chosen by the declustering method; a range query
/// fans out to the disks in parallel.

namespace griddecl {

/// Result of executing one record-level range query.
struct QueryExecution {
  /// Ids of records actually matching the predicate.
  std::vector<RecordId> matches;
  /// Buckets the query had to fetch, |Q|.
  uint64_t buckets_touched = 0;
  /// Pages fetched (only set by ExecuteRangePaged; equals buckets_touched
  /// under the plain bucket model).
  uint64_t pages_touched = 0;
  /// The paper's metric: max buckets fetched from one disk.
  uint64_t response_units = 0;
  /// ceil(|Q| / M) — the best any declustering could have done.
  uint64_t optimal_units = 0;
  /// Timed simulation of the same fetches.
  SimResult io;
};

/// A grid file declustered over simulated disks.
class DeclusteredFile {
 public:
  /// Binds `file` to a declustering method created by `method_name` (see
  /// methods/registry.h) over `num_disks` disks with timing `params`.
  static Result<DeclusteredFile> Create(GridFile file,
                                        const std::string& method_name,
                                        uint32_t num_disks,
                                        DiskParams params = {});

  const GridFile& file() const { return file_; }
  GridFile& mutable_file() { return file_; }
  const DeclusteringMethod& method() const { return *method_; }
  /// Registry name the method was created from (see methods/registry.h) —
  /// what the catalog manifest persists so a reload can rebuild the exact
  /// same allocation. Distinct from method().name(), the display name.
  const std::string& method_name() const { return method_name_; }
  /// Disk timing parameters the relation simulates with.
  const DiskParams& disk_params() const { return disk_params_; }
  uint32_t num_disks() const { return method_->num_disks(); }

  /// Disk holding a record's bucket.
  uint32_t DiskOfRecord(RecordId id) const;

  /// Executes `lo[i] <= attr_i <= hi[i]`: exact matches plus the bucket-level
  /// and timed cost of the parallel fetch.
  Result<QueryExecution> ExecuteRange(const std::vector<double>& lo,
                                      const std::vector<double>& hi) const;

  /// As `ExecuteRange`, but the timed simulation charges *pages* rather
  /// than whole buckets: a bucket holding many records occupies several
  /// `page_size_bytes` pages (bucket-clustered layout, contiguous on its
  /// disk) and each page is one transfer. `response_units`/`optimal_units`
  /// stay in the paper's bucket metric; `pages_touched` reports the page
  /// total. Empty buckets still cost one (directory) page to inspect.
  Result<QueryExecution> ExecuteRangePaged(const std::vector<double>& lo,
                                           const std::vector<double>& hi,
                                           uint32_t page_size_bytes) const;

  /// Number of records stored on each disk (size num_disks()): the data
  /// balance the declustering achieves on the actual data distribution.
  std::vector<uint64_t> RecordsPerDisk() const;

 private:
  DeclusteredFile(GridFile file, std::unique_ptr<DeclusteringMethod> method,
                  std::string method_name, DiskParams params)
      : file_(std::move(file)),
        method_(std::move(method)),
        method_name_(std::move(method_name)),
        disk_params_(params),
        sim_(method_->num_disks(), params) {}

  GridFile file_;
  std::unique_ptr<DeclusteringMethod> method_;
  std::string method_name_;
  DiskParams disk_params_;
  ParallelIoSimulator sim_;
};

}  // namespace griddecl

#endif  // GRIDDECL_GRIDFILE_DECLUSTERED_FILE_H_
