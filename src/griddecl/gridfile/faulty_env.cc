#include "griddecl/gridfile/faulty_env.h"

#include <chrono>
#include <thread>
#include <utility>

namespace griddecl {

namespace {

uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

uint64_t HashString(uint64_t h, const std::string& s) {
  for (char c : s) h = Mix64(h ^ static_cast<uint8_t>(c));
  return h;
}

}  // namespace

FaultyEnv::FaultyEnv(StorageEnv* target, FaultyEnvOptions opts)
    : target_(target), opts_(std::move(opts)) {}

Result<std::unique_ptr<FaultyEnv>> FaultyEnv::Create(StorageEnv* target,
                                                     FaultyEnvOptions opts) {
  if (target == nullptr) {
    return Status::InvalidArgument("FaultyEnv needs a target env");
  }
  if (!(opts.transient_error_prob >= 0.0) ||
      !(opts.transient_error_prob <= 1.0)) {
    return Status::InvalidArgument("transient_error_prob must be in [0, 1]");
  }
  if (!(opts.latency_ms >= 0.0)) {
    return Status::InvalidArgument("latency_ms must be >= 0");
  }
  for (const FaultRange& r : opts.permanent) {
    if (r.length == 0) {
      return Status::InvalidArgument("permanent fault ranges must be "
                                     "non-empty");
    }
    if (!(r.from_ms >= 0.0) || !(r.until_ms > r.from_ms)) {
      return Status::InvalidArgument("fault window must satisfy "
                                     "0 <= from_ms < until_ms");
    }
  }
  return std::unique_ptr<FaultyEnv>(new FaultyEnv(target, std::move(opts)));
}

bool FaultyEnv::TransientFails(const std::string& file, uint64_t offset,
                               uint32_t attempt) const {
  if (opts_.transient_error_prob <= 0.0) return false;
  if (attempt >= opts_.max_transient_attempts) return false;
  uint64_t h = Mix64(opts_.seed ^ 0x7ea7f001ull);
  h = HashString(h, file);
  h = Mix64(h ^ offset);
  h = Mix64(h ^ attempt);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < opts_.transient_error_prob;
}

bool FaultyEnv::PermanentlyFaulted(const std::string& file, uint64_t offset,
                                   uint64_t length) const {
  const double now = now_ms_.load();
  for (const FaultRange& r : opts_.permanent) {
    if (!r.file.empty() && r.file != file) continue;
    if (now < r.from_ms || now >= r.until_ms) continue;
    const uint64_t r_end = (r.length > UINT64_MAX - r.offset)
                               ? UINT64_MAX
                               : r.offset + r.length;
    const uint64_t end =
        (length > UINT64_MAX - offset) ? UINT64_MAX : offset + length;
    if (offset < r_end && r.offset < end) {
      return true;
    }
  }
  return false;
}

Result<std::string> FaultyEnv::ReadAt(const std::string& name,
                                      uint64_t offset,
                                      uint64_t length) const {
  reads_issued_.fetch_add(1);
  const double delay_ms = opts_.latency_ms + extra_latency_ms_.load();
  if (delay_ms > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(delay_ms));
  }
  if (PermanentlyFaulted(name, offset, length)) {
    permanent_faults_.fetch_add(1);
    return Status::Unavailable("injected permanent fault reading '" + name +
                               "' at " + std::to_string(offset));
  }
  uint32_t attempt;
  {
    std::lock_guard<std::mutex> lock(mu_);
    attempt = attempts_[{name, offset}]++;
  }
  if (TransientFails(name, offset, attempt)) {
    transient_faults_.fetch_add(1);
    return Status::Unavailable("injected transient fault reading '" + name +
                               "' at " + std::to_string(offset) +
                               " (attempt " + std::to_string(attempt) + ")");
  }
  return target_->ReadAt(name, offset, length);
}

Result<std::string> FaultyEnv::ReadFile(const std::string& name) const {
  return target_->ReadFile(name);
}

Status FaultyEnv::WriteFile(const std::string& name, std::string_view data) {
  return target_->WriteFile(name, data);
}

Status FaultyEnv::Rename(const std::string& from, const std::string& to) {
  return target_->Rename(from, to);
}

Status FaultyEnv::Remove(const std::string& name) {
  return target_->Remove(name);
}

bool FaultyEnv::Exists(const std::string& name) const {
  return target_->Exists(name);
}

Result<std::vector<std::string>> FaultyEnv::ListFiles() const {
  return target_->ListFiles();
}

}  // namespace griddecl
