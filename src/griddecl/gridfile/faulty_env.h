#ifndef GRIDDECL_GRIDFILE_FAULTY_ENV_H_
#define GRIDDECL_GRIDFILE_FAULTY_ENV_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "griddecl/gridfile/storage_env.h"

/// \file
/// Fault-injecting storage environment — the real-I/O twin of the simulator's
/// `FaultModel` (sim/faults.h). Where `FaultModel` charges virtual
/// milliseconds to a simulated timeline, `FaultyEnv` fails *actual* `ReadAt`
/// calls issued by the serving layer, so retry loops, circuit breakers and
/// degraded read paths are exercised against genuine control flow.
///
/// Determinism contract: whether a given (file, offset) read fails
/// transiently on its k-th attempt is a pure function of
/// (seed, file, offset, k) — the same SplitMix64-hash construction the
/// simulator uses — so a fault schedule replays identically run over run.
/// Attempt counters are per-(file, offset) and shared across threads; the
/// *outcome* of a query is schedule-determined even though the number of
/// retries a particular thread observes may depend on interleaving.
/// Permanent faults are explicit byte ranges (a dead disk is the union of
/// the ranges its pages occupy — see `DiskFaultSchedule` in serve/service.h).

namespace griddecl {

/// A permanently unreadable byte range of one env file.
///
/// An empty `file` is a wildcard matching every file — combined with the
/// window fields below it expresses a whole-node crash ("every read on this
/// node fails from T until T'"). The window is evaluated against the env's
/// *virtual* clock (`SetNowMs`), never wall time, so fault schedules replay
/// identically run over run. Defaults keep the pre-window semantics: a range
/// with no window set is faulted forever.
struct FaultRange {
  std::string file;
  uint64_t offset = 0;
  uint64_t length = 0;
  /// The range is faulted while from_ms <= now < until_ms.
  double from_ms = 0.0;
  double until_ms = std::numeric_limits<double>::infinity();
};

struct FaultyEnvOptions {
  /// Seed for the transient-fault hash; same seed => same schedule.
  uint64_t seed = 0;
  /// Probability that attempt k of a (file, offset) read fails, for
  /// k < max_transient_attempts. Must be in [0, 1].
  double transient_error_prob = 0.0;
  /// Attempts at or beyond this index never fail transiently, bounding the
  /// retries a persistent caller needs. Mirrors FaultSpec::max_retries.
  uint32_t max_transient_attempts = 3;
  /// Byte ranges that always fail (overlap test), e.g. a dead disk.
  std::vector<FaultRange> permanent;
  /// Real wall-clock delay injected into every ReadAt (0 = none). Keep 0 in
  /// determinism tests; use small values to widen race windows in soaks.
  double latency_ms = 0.0;
};

/// Decorates a target env with deterministic read faults.
///
/// Only `ReadAt` is fault-injected: it is the page-granular unit the query
/// service issues, and leaving `ReadFile` clean means bootstrap (manifest +
/// relation load) always succeeds, so tests separate "service starts" from
/// "service survives faults". All mutating calls pass through untouched.
///
/// Thread-safe: attempt counters are guarded by a mutex; everything else is
/// immutable after construction.
class FaultyEnv : public StorageEnv {
 public:
  /// `target` must outlive this env. Heap-allocated: the env owns mutexes
  /// and atomics, so it never moves once handed out.
  static Result<std::unique_ptr<FaultyEnv>> Create(StorageEnv* target,
                                                   FaultyEnvOptions opts);

  Result<std::string> ReadFile(const std::string& name) const override;
  Result<std::string> ReadAt(const std::string& name, uint64_t offset,
                             uint64_t length) const override;
  Status WriteFile(const std::string& name, std::string_view data) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& name) override;
  bool Exists(const std::string& name) const override;
  Result<std::vector<std::string>> ListFiles() const override;

  /// True iff attempt `attempt` of a read at (file, offset) fails
  /// transiently — pure, exposed so tests can precompute the schedule.
  bool TransientFails(const std::string& file, uint64_t offset,
                      uint32_t attempt) const;

  /// True iff [offset, offset+length) overlaps any fault range of `file`
  /// (or a wildcard range) whose window contains the current virtual time.
  bool PermanentlyFaulted(const std::string& file, uint64_t offset,
                          uint64_t length) const;

  /// Advances the virtual clock that windowed fault ranges are evaluated
  /// against. The clock only ever moves by explicit calls — fault windows
  /// open and close deterministically, never from wall time.
  void SetNowMs(double now_ms) { now_ms_.store(now_ms); }
  double NowMs() const { return now_ms_.load(); }

  /// Additional real wall-clock delay on every ReadAt, on top of
  /// `latency_ms`, adjustable at runtime (negative values clamp to 0).
  /// Models transient device contention — the migrator raises it on every
  /// node while an unpaced bulk copy saturates the shared "device", and
  /// drops it back when the copy finishes or is paced under budget.
  void SetExtraLatencyMs(double ms) {
    extra_latency_ms_.store(ms < 0.0 ? 0.0 : ms);
  }
  double ExtraLatencyMs() const { return extra_latency_ms_.load(); }

  /// Observability for tests: total ReadAt calls / injected failures.
  uint64_t reads_issued() const { return reads_issued_.load(); }
  uint64_t transient_faults_injected() const {
    return transient_faults_.load();
  }
  uint64_t permanent_faults_injected() const {
    return permanent_faults_.load();
  }

 private:
  FaultyEnv(StorageEnv* target, FaultyEnvOptions opts);

  StorageEnv* target_;
  FaultyEnvOptions opts_;

  mutable std::mutex mu_;
  /// Attempt counter per (file, offset) read site, shared across threads.
  mutable std::map<std::pair<std::string, uint64_t>, uint32_t> attempts_;

  mutable std::atomic<uint64_t> reads_issued_{0};
  mutable std::atomic<uint64_t> transient_faults_{0};
  mutable std::atomic<uint64_t> permanent_faults_{0};
  std::atomic<double> now_ms_{0.0};
  std::atomic<double> extra_latency_ms_{0.0};
};

}  // namespace griddecl

#endif  // GRIDDECL_GRIDFILE_FAULTY_ENV_H_
