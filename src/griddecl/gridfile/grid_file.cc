#include "griddecl/gridfile/grid_file.h"

#include <set>

namespace griddecl {

Result<Schema> Schema::Create(std::vector<AttributeDef> attributes) {
  if (attributes.empty() || attributes.size() > kMaxDims) {
    return Status::InvalidArgument("schema needs 1.." +
                                   std::to_string(kMaxDims) + " attributes");
  }
  std::set<std::string> names;
  for (const AttributeDef& a : attributes) {
    if (a.name.empty()) {
      return Status::InvalidArgument("attribute names must be non-empty");
    }
    if (!names.insert(a.name).second) {
      return Status::InvalidArgument("duplicate attribute name '" + a.name +
                                     "'");
    }
    if (!(a.lo < a.hi)) {
      return Status::InvalidArgument("attribute '" + a.name +
                                     "' needs lo < hi");
    }
  }
  return Schema(std::move(attributes));
}

int Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Result<GridFile> GridFile::Create(Schema schema,
                                  const std::vector<uint32_t>& partitions) {
  if (partitions.size() != schema.num_attributes()) {
    return Status::InvalidArgument(
        "need one partition count per attribute: got " +
        std::to_string(partitions.size()) + " for " +
        std::to_string(schema.num_attributes()) + " attributes");
  }
  std::vector<DomainPartition> parts;
  parts.reserve(partitions.size());
  for (uint32_t i = 0; i < partitions.size(); ++i) {
    const AttributeDef& a = schema.attribute(i);
    Result<DomainPartition> p =
        DomainPartition::Uniform(a.lo, a.hi, partitions[i]);
    if (!p.ok()) return p.status();
    parts.push_back(std::move(p).value());
  }
  Result<SpacePartitioner> sp = SpacePartitioner::Create(std::move(parts));
  if (!sp.ok()) return sp.status();
  return GridFile(std::move(schema), std::move(sp).value());
}

Result<GridFile> GridFile::CreateWithPartitioner(Schema schema,
                                                 SpacePartitioner partitioner) {
  if (partitioner.num_dims() != schema.num_attributes()) {
    return Status::InvalidArgument(
        "partitioner has " + std::to_string(partitioner.num_dims()) +
        " dimensions for " + std::to_string(schema.num_attributes()) +
        " attributes");
  }
  return GridFile(std::move(schema), std::move(partitioner));
}

Result<RecordId> GridFile::Insert(Record record) {
  if (record.size() != schema_.num_attributes()) {
    return Status::InvalidArgument(
        "record has " + std::to_string(record.size()) + " values, schema has " +
        std::to_string(schema_.num_attributes()) + " attributes");
  }
  const RecordId id = records_.size();
  const BucketCoords bucket = partitioner_.BucketOf(record);
  buckets_[static_cast<size_t>(grid().Linearize(bucket))].push_back(id);
  records_.push_back(std::move(record));
  return id;
}

const Record& GridFile::record(RecordId id) const {
  GRIDDECL_CHECK(id < records_.size());
  return records_[static_cast<size_t>(id)];
}

BucketCoords GridFile::BucketOfRecord(RecordId id) const {
  return partitioner_.BucketOf(record(id));
}

const std::vector<RecordId>& GridFile::BucketContents(
    const BucketCoords& c) const {
  return buckets_[static_cast<size_t>(grid().Linearize(c))];
}

Result<RangeQuery> GridFile::ResolveRange(const std::vector<double>& lo,
                                          const std::vector<double>& hi)
    const {
  if (lo.size() != schema_.num_attributes() ||
      hi.size() != schema_.num_attributes()) {
    return Status::InvalidArgument("range bounds must match the schema");
  }
  for (uint32_t i = 0; i < lo.size(); ++i) {
    if (!(lo[i] <= hi[i])) {
      return Status::InvalidArgument("range has lo > hi on attribute " +
                                     std::to_string(i));
    }
  }
  const BucketRect rect = partitioner_.RectOf(lo, hi);
  return RangeQuery::Create(grid(), rect);
}

Result<std::vector<RecordId>> GridFile::RangeSearch(
    const std::vector<double>& lo, const std::vector<double>& hi) const {
  Result<RangeQuery> query = ResolveRange(lo, hi);
  if (!query.ok()) return query.status();
  std::vector<RecordId> hits;
  query.value().rect().ForEachBucket([&](const BucketCoords& c) {
    for (RecordId id : BucketContents(c)) {
      const Record& r = records_[static_cast<size_t>(id)];
      bool match = true;
      for (uint32_t i = 0; i < r.size() && match; ++i) {
        match = lo[i] <= r[i] && r[i] <= hi[i];
      }
      if (match) hits.push_back(id);
    }
  });
  return hits;
}

}  // namespace griddecl
