#ifndef GRIDDECL_GRIDFILE_GRID_FILE_H_
#define GRIDDECL_GRIDFILE_GRID_FILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "griddecl/common/status.h"
#include "griddecl/grid/partitioner.h"
#include "griddecl/query/query.h"

/// \file
/// A record-level Cartesian-product file (grid-file style, Nievergelt et
/// al., TODS 1984): the storage substrate the declustering methods sit on.
/// Records are k-attribute tuples of doubles; the space partitioner maps
/// each record to a bucket; buckets hold record ids. This is the layer that
/// turns "range predicate on attribute values" into "rectangle of buckets",
/// which is all the paper's cost model sees.

namespace griddecl {

/// One attribute's metadata.
struct AttributeDef {
  std::string name;
  /// Domain [lo, hi); records outside clamp into the boundary buckets.
  double lo = 0.0;
  double hi = 1.0;
};

/// Relation schema: the declustered attributes.
class Schema {
 public:
  /// Validated factory: 1..kMaxDims attributes, each with lo < hi and a
  /// non-empty unique name.
  static Result<Schema> Create(std::vector<AttributeDef> attributes);

  uint32_t num_attributes() const {
    return static_cast<uint32_t>(attributes_.size());
  }
  const AttributeDef& attribute(uint32_t i) const {
    GRIDDECL_CHECK(i < attributes_.size());
    return attributes_[i];
  }

  /// Index of the attribute named `name`; -1 when absent.
  int IndexOf(const std::string& name) const;

 private:
  explicit Schema(std::vector<AttributeDef> attributes)
      : attributes_(std::move(attributes)) {}
  std::vector<AttributeDef> attributes_;
};

/// A record is one value per schema attribute.
using Record = std::vector<double>;
using RecordId = uint64_t;

/// In-memory Cartesian-product file with a static grid directory.
class GridFile {
 public:
  /// Creates a file over `schema` with `partitions[i]` intervals on
  /// attribute i (uniform partitioning of each domain).
  static Result<GridFile> Create(Schema schema,
                                 const std::vector<uint32_t>& partitions);

  /// Creates a file with explicit (possibly non-uniform) partitioning —
  /// e.g. boundaries learned by an AdaptiveGridFile. The partitioner must
  /// have one dimension per schema attribute.
  static Result<GridFile> CreateWithPartitioner(Schema schema,
                                                SpacePartitioner partitioner);

  const Schema& schema() const { return schema_; }
  const GridSpec& grid() const { return partitioner_.grid(); }
  const SpacePartitioner& partitioner() const { return partitioner_; }

  uint64_t num_records() const { return records_.size(); }

  /// Inserts a record; values outside the declared domains are accepted and
  /// clamp into boundary buckets (grid-file convention). Returns its id.
  Result<RecordId> Insert(Record record);

  const Record& record(RecordId id) const;

  /// Bucket the record with `id` lives in.
  BucketCoords BucketOfRecord(RecordId id) const;

  /// Record ids stored in bucket `c`.
  const std::vector<RecordId>& BucketContents(const BucketCoords& c) const;

  /// The rectangle of buckets a value-space range predicate touches, as a
  /// RangeQuery (the declustering cost model's input).
  Result<RangeQuery> ResolveRange(const std::vector<double>& lo,
                                  const std::vector<double>& hi) const;

  /// Exact record-level range search: ids of records with
  /// lo[i] <= value[i] <= hi[i] for all i. Scans only the touched buckets.
  Result<std::vector<RecordId>> RangeSearch(const std::vector<double>& lo,
                                            const std::vector<double>& hi)
      const;

 private:
  GridFile(Schema schema, SpacePartitioner partitioner)
      : schema_(std::move(schema)),
        partitioner_(std::move(partitioner)),
        buckets_(static_cast<size_t>(partitioner_.grid().num_buckets())) {}

  Schema schema_;
  SpacePartitioner partitioner_;
  std::vector<Record> records_;
  /// Bucket -> record ids, indexed by the grid's row-major linearization.
  std::vector<std::vector<RecordId>> buckets_;
};

}  // namespace griddecl

#endif  // GRIDDECL_GRIDFILE_GRID_FILE_H_
