#include "griddecl/gridfile/manifest.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <optional>

#include "griddecl/common/bytes.h"
#include "griddecl/common/crc32c.h"

namespace griddecl {

namespace {

constexpr char kManifestMagic[4] = {'G', 'D', 'M', 'F'};
/// Version 1 predates the page-format tag (those generations are always
/// kFormatV2 pages); version 2 records the format after page_size_bytes;
/// version 3 appends an optional replica-placement record after the
/// relation list. Absent record (and every pre-3 manifest) = chained
/// placement. Version 4 appends an explicit (copy, disk) -> node table to
/// the placement record — written ONLY when the record carries a table
/// (repair output), so every table-less manifest stays byte-identical to
/// version 3.
constexpr uint32_t kManifestVersionV1 = 1;
constexpr uint32_t kManifestVersionV2 = 2;
constexpr uint32_t kManifestVersion = 3;
constexpr uint32_t kManifestVersionV4 = 4;
constexpr char kCurrentTmpName[] = "CURRENT.tmp";
constexpr char kManifestPrefix[] = "MANIFEST-";
constexpr size_t kManifestPrefixLen = 9;

constexpr uint32_t kMaxRelations = 1u << 20;
constexpr uint32_t kMaxNameLen = 4096;
constexpr uint32_t kMaxMethodLen = 256;
constexpr uint32_t kMaxMirrorCopies = 64;
constexpr uint32_t kMaxGroupPages = 1u << 20;
constexpr uint32_t kMaxNumDisks = 1u << 20;
constexpr uint32_t kMaxTopologyNodes = 1u << 20;
constexpr uint32_t kMaxPlacementPolicy = 2;  // cluster::PlacementPolicy max.

std::string FormatGen(uint64_t generation) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%06llu",
                static_cast<unsigned long long>(generation));
  return buf;
}

std::string U32ToHex(uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x", v);
  return buf;
}

/// Generation referenced by a file name (`MANIFEST-<gen>` or
/// `rel-<gen>-...`); nullopt for anything else (e.g. CURRENT).
std::optional<uint64_t> GenerationOfFileName(std::string_view name) {
  std::string_view digits;
  if (name.substr(0, kManifestPrefixLen) == kManifestPrefix) {
    digits = name.substr(kManifestPrefixLen);
  } else if (name.substr(0, 4) == "rel-") {
    const size_t dash = name.find('-', 4);
    if (dash == std::string_view::npos) return std::nullopt;
    digits = name.substr(4, dash - 4);
  } else {
    return std::nullopt;
  }
  if (digits.empty() || digits.size() > 19) return std::nullopt;
  uint64_t gen = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    gen = gen * 10 + static_cast<uint64_t>(c - '0');
  }
  return gen;
}

/// First unused generation number: one past the highest generation any
/// existing file (committed or wreckage) mentions — names are never
/// reused, so a crashed attempt can never be half-overwritten.
Result<uint64_t> NextGeneration(const StorageEnv& env) {
  Result<std::vector<std::string>> files = env.ListFiles();
  if (!files.ok()) return files.status();
  uint64_t highest = 0;
  for (const std::string& name : files.value()) {
    const std::optional<uint64_t> gen = GenerationOfFileName(name);
    if (gen.has_value()) highest = std::max(highest, *gen);
  }
  return highest + 1;
}

/// Parses the CURRENT pointer ("MANIFEST-<gen> <crc-hex>\n"); the CRC is
/// over the manifest file name, making a torn pointer self-evident.
Result<uint64_t> ParseCurrentPointer(std::string_view content) {
  if (!content.empty() && content.back() == '\n') {
    content.remove_suffix(1);
  }
  const size_t space = content.rfind(' ');
  if (space == std::string_view::npos) {
    return Status::InvalidArgument("malformed CURRENT pointer");
  }
  const std::string_view name = content.substr(0, space);
  const std::string_view crc_hex = content.substr(space + 1);
  if (crc_hex != U32ToHex(Crc32c(name))) {
    return Status::InvalidArgument("CURRENT pointer checksum mismatch");
  }
  const std::optional<uint64_t> gen = GenerationOfFileName(name);
  if (!gen.has_value() ||
      name != std::string(kManifestPrefix) + FormatGen(*gen)) {
    return Status::InvalidArgument("CURRENT names no manifest");
  }
  return *gen;
}

Status ValidateRedundancy(const RelationRedundancy& r) {
  switch (r.policy) {
    case RelationRedundancy::Policy::kNone:
      return Status::Ok();
    case RelationRedundancy::Policy::kMirror:
      if (r.copies < 2 || r.copies > kMaxMirrorCopies) {
        return Status::InvalidArgument("mirror copies out of range [2, 64]");
      }
      return Status::Ok();
    case RelationRedundancy::Policy::kParity:
      if (r.group_pages < 1 || r.group_pages > kMaxGroupPages) {
        return Status::InvalidArgument("parity group pages out of range");
      }
      return Status::Ok();
  }
  return Status::InvalidArgument("unknown redundancy policy");
}

Status CheckFileAgainstManifest(const StorageEnv& env,
                                const std::string& name, uint64_t size,
                                uint32_t crc) {
  Result<std::string> data = env.ReadFile(name);
  if (!data.ok()) return data.status();
  if (data.value().size() != size) {
    return Status::InvalidArgument("file '" + name + "' has wrong size");
  }
  if (Crc32c(data.value()) != crc) {
    return Status::InvalidArgument("file '" + name + "' fails its checksum");
  }
  return Status::Ok();
}

}  // namespace

const char* RedundancyPolicyName(RelationRedundancy::Policy policy) {
  switch (policy) {
    case RelationRedundancy::Policy::kNone:
      return "none";
    case RelationRedundancy::Policy::kMirror:
      return "mirror";
    case RelationRedundancy::Policy::kParity:
      return "parity";
  }
  return "unknown";
}

std::string CatalogManifest::DataFileName(size_t index) const {
  return "rel-" + FormatGen(generation) + "-" + std::to_string(index) + ".gd";
}

std::string CatalogManifest::MirrorFileName(size_t index,
                                            uint32_t copy) const {
  return "rel-" + FormatGen(generation) + "-" + std::to_string(index) + ".m" +
         std::to_string(copy);
}

std::string CatalogManifest::ParityFileName(size_t index) const {
  return "rel-" + FormatGen(generation) + "-" + std::to_string(index) +
         ".par";
}

std::string ManifestFileName(uint64_t generation) {
  return kManifestPrefix + FormatGen(generation);
}

Result<uint64_t> NextManifestGeneration(const StorageEnv& env) {
  return NextGeneration(env);
}

std::string SerializeManifest(const CatalogManifest& manifest) {
  const bool has_table =
      manifest.placement.has_value() && !manifest.placement->table.empty();
  std::string out;
  out.append(kManifestMagic, 4);
  AppendU32(&out, has_table ? kManifestVersionV4 : kManifestVersion);
  AppendU64(&out, manifest.generation);
  AppendU32(&out, manifest.num_disks);
  AppendU32(&out, manifest.page_size_bytes);
  AppendU32(&out, manifest.format_version);
  AppendU32(&out, static_cast<uint32_t>(manifest.relations.size()));
  for (const ManifestRelation& rel : manifest.relations) {
    AppendU32(&out, static_cast<uint32_t>(rel.name.size()));
    out.append(rel.name);
    AppendU32(&out, static_cast<uint32_t>(rel.method.size()));
    out.append(rel.method);
    AppendU32(&out, static_cast<uint32_t>(rel.redundancy.policy));
    AppendU32(&out, rel.redundancy.copies);
    AppendU32(&out, rel.redundancy.group_pages);
    AppendF64(&out, rel.disk_params.avg_seek_ms);
    AppendF64(&out, rel.disk_params.rotational_latency_ms);
    AppendF64(&out, rel.disk_params.transfer_ms_per_kb);
    AppendF64(&out, rel.disk_params.bucket_kb);
    AppendF64(&out, rel.disk_params.near_seek_factor);
    AppendU64(&out, rel.disk_params.near_gap_buckets);
    AppendU64(&out, rel.data_size);
    AppendU32(&out, rel.data_crc);
    AppendU64(&out, rel.parity_size);
    AppendU32(&out, rel.parity_crc);
  }
  AppendU32(&out, manifest.placement.has_value() ? 1u : 0u);
  if (manifest.placement.has_value()) {
    const ManifestPlacement& p = *manifest.placement;
    AppendU32(&out, p.policy);
    AppendU64(&out, p.seed);
    AppendU32(&out, static_cast<uint32_t>(p.node_rack.size()));
    for (uint32_t rack : p.node_rack) AppendU32(&out, rack);
    AppendU32(&out, static_cast<uint32_t>(p.rack_zone.size()));
    for (uint32_t zone : p.rack_zone) AppendU32(&out, zone);
    if (has_table) {
      AppendU32(&out, p.table_copies);
      AppendU32(&out, p.table_disks);
      for (uint32_t node : p.table) AppendU32(&out, node);
    }
  }
  AppendU32(&out, Crc32c(out));
  return out;
}

Result<CatalogManifest> ParseManifest(std::string_view bytes) {
  if (bytes.size() < 4) {
    return Status::InvalidArgument("manifest truncated");
  }
  // Whole-file CRC first: any torn or bit-flipped manifest is rejected
  // before field-level parsing even starts.
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - 4, 4);
  if (stored_crc != Crc32c(bytes.substr(0, bytes.size() - 4))) {
    return Status::InvalidArgument("manifest checksum mismatch");
  }

  ByteReader r(bytes.substr(0, bytes.size() - 4));
  char magic[4];
  if (!r.ReadBytes(magic, 4) ||
      std::memcmp(magic, kManifestMagic, 4) != 0) {
    return Status::InvalidArgument("bad manifest magic");
  }
  uint32_t version = 0;
  CatalogManifest m;
  uint32_t num_relations = 0;
  if (!r.ReadU32(&version) || !r.ReadU64(&m.generation) ||
      !r.ReadU32(&m.num_disks) || !r.ReadU32(&m.page_size_bytes)) {
    return Status::InvalidArgument("manifest truncated");
  }
  if (version < kManifestVersionV1 || version > kManifestVersionV4) {
    return Status::InvalidArgument("unsupported manifest version " +
                                   std::to_string(version));
  }
  if (version >= kManifestVersionV2) {
    if (!r.ReadU32(&m.format_version)) {
      return Status::InvalidArgument("manifest truncated");
    }
  } else {
    // Version-1 manifests predate the tag; they were always written v2.
    m.format_version = kFormatV2;
  }
  if (m.format_version != kFormatV2 && m.format_version != kFormatV3) {
    return Status::InvalidArgument("manifest names unknown page format " +
                                   std::to_string(m.format_version));
  }
  if (!r.ReadU32(&num_relations)) {
    return Status::InvalidArgument("manifest truncated");
  }
  if (m.generation == 0) {
    return Status::InvalidArgument("manifest generation must be positive");
  }
  if (m.num_disks < 1 || m.num_disks > kMaxNumDisks) {
    return Status::InvalidArgument("manifest disk count out of range");
  }
  if (m.page_size_bytes > kMaxPageSizeBytes) {
    return Status::InvalidArgument("manifest page size out of range");
  }
  if (num_relations > kMaxRelations) {
    return Status::InvalidArgument("manifest relation count out of range");
  }
  m.relations.reserve(num_relations);
  for (uint32_t i = 0; i < num_relations; ++i) {
    ManifestRelation rel;
    uint32_t name_len = 0;
    if (!r.ReadU32(&name_len) || name_len == 0 || name_len > kMaxNameLen ||
        !r.ReadString(&rel.name, name_len)) {
      return Status::InvalidArgument("bad relation name in manifest");
    }
    uint32_t method_len = 0;
    if (!r.ReadU32(&method_len) || method_len == 0 ||
        method_len > kMaxMethodLen ||
        !r.ReadString(&rel.method, method_len)) {
      return Status::InvalidArgument("bad method name in manifest");
    }
    uint32_t policy = 0;
    if (!r.ReadU32(&policy) || !r.ReadU32(&rel.redundancy.copies) ||
        !r.ReadU32(&rel.redundancy.group_pages)) {
      return Status::InvalidArgument("manifest truncated");
    }
    if (policy > static_cast<uint32_t>(RelationRedundancy::Policy::kParity)) {
      return Status::InvalidArgument("unknown redundancy policy in manifest");
    }
    rel.redundancy.policy = static_cast<RelationRedundancy::Policy>(policy);
    const Status red = ValidateRedundancy(rel.redundancy);
    if (!red.ok()) return red;
    if (!r.ReadF64(&rel.disk_params.avg_seek_ms) ||
        !r.ReadF64(&rel.disk_params.rotational_latency_ms) ||
        !r.ReadF64(&rel.disk_params.transfer_ms_per_kb) ||
        !r.ReadF64(&rel.disk_params.bucket_kb) ||
        !r.ReadF64(&rel.disk_params.near_seek_factor) ||
        !r.ReadU64(&rel.disk_params.near_gap_buckets) ||
        !r.ReadU64(&rel.data_size) || !r.ReadU32(&rel.data_crc) ||
        !r.ReadU64(&rel.parity_size) || !r.ReadU32(&rel.parity_crc)) {
      return Status::InvalidArgument("manifest truncated");
    }
    m.relations.push_back(std::move(rel));
  }
  if (version >= kManifestVersion) {
    uint32_t has_placement = 0;
    if (!r.ReadU32(&has_placement) || has_placement > 1) {
      return Status::InvalidArgument("bad placement flag in manifest");
    }
    if (has_placement == 1) {
      ManifestPlacement p;
      uint32_t num_nodes = 0;
      if (!r.ReadU32(&p.policy) || !r.ReadU64(&p.seed) ||
          !r.ReadU32(&num_nodes)) {
        return Status::InvalidArgument("manifest truncated");
      }
      if (p.policy > kMaxPlacementPolicy) {
        return Status::InvalidArgument("unknown placement policy in manifest");
      }
      if (num_nodes < 1 || num_nodes > kMaxTopologyNodes) {
        return Status::InvalidArgument(
            "placement node count out of range in manifest");
      }
      p.node_rack.resize(num_nodes);
      for (uint32_t n = 0; n < num_nodes; ++n) {
        if (!r.ReadU32(&p.node_rack[n])) {
          return Status::InvalidArgument("manifest truncated");
        }
      }
      uint32_t num_racks = 0;
      if (!r.ReadU32(&num_racks) || num_racks < 1 || num_racks > num_nodes) {
        return Status::InvalidArgument(
            "placement rack count out of range in manifest");
      }
      p.rack_zone.resize(num_racks);
      for (uint32_t k = 0; k < num_racks; ++k) {
        if (!r.ReadU32(&p.rack_zone[k]) || p.rack_zone[k] >= num_racks) {
          return Status::InvalidArgument("placement zone id out of range");
        }
      }
      for (uint32_t rack : p.node_rack) {
        if (rack >= num_racks) {
          return Status::InvalidArgument("placement rack id out of range");
        }
      }
      if (version >= kManifestVersionV4) {
        if (!r.ReadU32(&p.table_copies) || !r.ReadU32(&p.table_disks)) {
          return Status::InvalidArgument("manifest truncated");
        }
        if (p.table_copies < 1 || p.table_copies > kMaxMirrorCopies ||
            p.table_disks < 1 || p.table_disks > kMaxNumDisks) {
          return Status::InvalidArgument(
              "placement table dims out of range in manifest");
        }
        const uint64_t entries =
            static_cast<uint64_t>(p.table_copies) * p.table_disks;
        p.table.resize(entries);
        for (uint64_t i = 0; i < entries; ++i) {
          if (!r.ReadU32(&p.table[i])) {
            return Status::InvalidArgument("manifest truncated");
          }
          if (p.table[i] >= num_nodes) {
            return Status::InvalidArgument(
                "placement table entry names an unknown node");
          }
        }
      }
      m.placement = std::move(p);
    }
  }
  if (r.remaining() != 0) {
    return Status::InvalidArgument("trailing garbage in manifest");
  }
  return m;
}

Result<std::string> BuildParityBytes(std::string_view data,
                                     uint32_t group_pages) {
  if (group_pages < 1 || group_pages > kMaxGroupPages) {
    return Status::InvalidArgument("parity group pages out of range");
  }
  Result<FileLayout> layout = ParseFileLayout(data);
  if (!layout.ok()) return layout.status();
  const FileLayout& l = layout.value();
  if (data.size() < l.footer_offset) {
    return Status::InvalidArgument("data shorter than its page region");
  }
  std::string parity;
  if (l.num_pages == 0) return parity;
  const uint64_t num_stripes = (l.num_pages - 1) / group_pages + 1;
  parity.reserve(static_cast<size_t>(num_stripes) * l.page_size_bytes);
  for (uint64_t stripe = 0; stripe < num_stripes; ++stripe) {
    const size_t out_off = parity.size();
    parity.resize(out_off + l.page_size_bytes, '\0');
    const uint64_t first = stripe * group_pages;
    const uint64_t last = std::min<uint64_t>(first + group_pages, l.num_pages);
    for (uint64_t page = first; page < last; ++page) {
      const char* src = data.data() + l.PageOffset(page);
      char* dst = parity.data() + out_off;
      for (uint32_t b = 0; b < l.page_size_bytes; ++b) dst[b] ^= src[b];
    }
  }
  return parity;
}

namespace {

/// Steps (1) and (2): writes every file of a new generation except the
/// CURRENT pointer. Accumulates write accounting into the out-params so
/// the committing caller can report it once the generation actually lands.
Result<uint64_t> StageInternal(const Catalog& catalog, StorageEnv* env,
                               const ManifestSaveOptions& options,
                               uint64_t* files_written,
                               uint64_t* bytes_written) {
  if (env == nullptr) {
    return Status::InvalidArgument("null storage env");
  }
  Result<uint64_t> next = NextGeneration(*env);
  if (!next.ok()) return next.status();

  if (options.format_version != kFormatV2 &&
      options.format_version != kFormatV3) {
    return Status::InvalidArgument(
        "manifest saves require format v2 or v3, got " +
        std::to_string(options.format_version));
  }

  CatalogManifest m;
  m.generation = next.value();
  m.num_disks = catalog.num_disks();
  m.page_size_bytes = options.page_size_bytes;
  m.format_version = options.format_version;
  m.placement = options.placement;

  auto put = [&](const std::string& name, const std::string& payload) {
    const Status s = env->WriteFile(name, payload);
    if (s.ok()) {
      ++*files_written;
      *bytes_written += payload.size();
    }
    return s;
  };

  const std::vector<std::string> names = catalog.RelationNames();
  for (size_t i = 0; i < names.size(); ++i) {
    const DeclusteredFile* rel = catalog.Find(names[i]);
    GRIDDECL_CHECK(rel != nullptr);

    RelationRedundancy redundancy = options.default_redundancy;
    const auto it = options.per_relation.find(names[i]);
    if (it != options.per_relation.end()) redundancy = it->second;
    const Status red_ok = ValidateRedundancy(redundancy);
    if (!red_ok.ok()) return red_ok;

    SaveOptions save;
    save.page_size_bytes = options.page_size_bytes;
    save.format_version = options.format_version;
    Result<std::string> data = SerializeGridFile(rel->file(), save);
    if (!data.ok()) return data.status();

    ManifestRelation mr;
    mr.name = names[i];
    mr.method = rel->method_name();
    mr.redundancy = redundancy;
    mr.disk_params = rel->disk_params();
    mr.data_size = data.value().size();
    mr.data_crc = Crc32c(data.value());

    std::string parity;
    if (redundancy.policy == RelationRedundancy::Policy::kParity) {
      Result<std::string> p =
          BuildParityBytes(data.value(), redundancy.group_pages);
      if (!p.ok()) return p.status();
      parity = std::move(p).value();
      mr.parity_size = parity.size();
      mr.parity_crc = Crc32c(parity);
    }
    m.relations.push_back(std::move(mr));

    Status write = put(m.DataFileName(i), data.value());
    if (!write.ok()) return write;
    if (redundancy.policy == RelationRedundancy::Policy::kMirror) {
      for (uint32_t c = 1; c < redundancy.copies; ++c) {
        write = put(m.MirrorFileName(i, c), data.value());
        if (!write.ok()) return write;
      }
    }
    if (!parity.empty()) {
      write = put(m.ParityFileName(i), parity);
      if (!write.ok()) return write;
    }
  }

  Status write = put(ManifestFileName(m.generation), SerializeManifest(m));
  if (!write.ok()) return write;
  return m.generation;
}

/// Step (3): writes CURRENT.tmp naming `generation` and renames it onto
/// CURRENT — THE commit point.
Status WriteCurrentPointer(StorageEnv* env, uint64_t generation,
                           uint64_t* files_written, uint64_t* bytes_written) {
  const std::string manifest_name = ManifestFileName(generation);
  const std::string pointer =
      manifest_name + " " + U32ToHex(Crc32c(manifest_name)) + "\n";
  Status write = env->WriteFile(kCurrentTmpName, pointer);
  if (!write.ok()) return write;
  if (files_written != nullptr) {
    ++*files_written;
    *bytes_written += pointer.size();
  }
  return env->Rename(kCurrentTmpName, kCurrentFileName);
}

/// Generation CURRENT currently resolves to, or nullopt when CURRENT is
/// missing or torn (the fence treats that as "nothing committed").
std::optional<uint64_t> CommittedGeneration(const StorageEnv& env) {
  Result<std::string> current = env.ReadFile(kCurrentFileName);
  if (!current.ok()) return std::nullopt;
  Result<uint64_t> gen = ParseCurrentPointer(current.value());
  if (!gen.ok()) return std::nullopt;
  return gen.value();
}

}  // namespace

Result<uint64_t> SaveCatalogManifest(const Catalog& catalog, StorageEnv* env,
                                     const ManifestSaveOptions& options) {
  // Write accounting for the observability sink; recorded only once the
  // generation actually commits.
  uint64_t files_written = 0;
  uint64_t bytes_written = 0;
  Result<uint64_t> staged =
      StageInternal(catalog, env, options, &files_written, &bytes_written);
  if (!staged.ok()) return staged.status();

  const Status committed =
      WriteCurrentPointer(env, staged.value(), &files_written, &bytes_written);
  if (!committed.ok()) return committed;

  if (options.metrics != nullptr) {
    obs::MetricsRegistry& reg = *options.metrics;
    reg.GetCounter("manifest.generations_committed")->Inc();
    reg.GetCounter("manifest.files_written")->Inc(files_written);
    reg.GetCounter("manifest.bytes_written")->Inc(bytes_written);
  }

  // Committed. GC is best-effort (a crash here loses nothing): keep the
  // new generation and its predecessor as a rollback target, drop older.
  GarbageCollectManifests(env, staged.value());
  return staged.value();
}

Result<uint64_t> StageCatalogManifest(const Catalog& catalog, StorageEnv* env,
                                      const ManifestSaveOptions& options) {
  uint64_t files_written = 0;
  uint64_t bytes_written = 0;
  return StageInternal(catalog, env, options, &files_written, &bytes_written);
}

Status CommitStagedManifest(StorageEnv* env, uint64_t generation) {
  if (env == nullptr) {
    return Status::InvalidArgument("null storage env");
  }
  // The staged manifest must exist and parse before CURRENT may name it.
  Result<CatalogManifest> m = ReadManifest(*env, generation);
  if (!m.ok()) return m.status();
  const std::optional<uint64_t> committed = CommittedGeneration(*env);
  if (committed.has_value()) {
    if (*committed == generation) return Status::Ok();
    if (*committed > generation) {
      return Status::FailedPrecondition(
          "generation fence: CURRENT is at generation " +
          std::to_string(*committed) + ", refusing stale commit of " +
          std::to_string(generation));
    }
  }
  return WriteCurrentPointer(env, generation, nullptr, nullptr);
}

Status DropStagedManifest(StorageEnv* env, uint64_t generation) {
  if (env == nullptr) {
    return Status::InvalidArgument("null storage env");
  }
  const std::optional<uint64_t> committed = CommittedGeneration(*env);
  if (committed.has_value() && *committed == generation) {
    return Status::FailedPrecondition(
        "refusing to drop generation " + std::to_string(generation) +
        ": CURRENT points at it (committed generations are retired by GC, "
        "not abort)");
  }
  Result<std::vector<std::string>> files = env->ListFiles();
  if (!files.ok()) return files.status();
  for (const std::string& name : files.value()) {
    const std::optional<uint64_t> gen = GenerationOfFileName(name);
    if (gen.has_value() && *gen == generation) {
      const Status removed = env->Remove(name);
      if (!removed.ok()) return removed;
    }
  }
  return Status::Ok();
}

Status RollbackToGeneration(StorageEnv* env, uint64_t generation) {
  if (env == nullptr) {
    return Status::InvalidArgument("null storage env");
  }
  Result<CatalogManifest> m = ReadManifest(*env, generation);
  if (!m.ok()) return m.status();
  const Status verified = VerifyManifestFiles(*env, m.value());
  if (!verified.ok()) return verified;
  return WriteCurrentPointer(env, generation, nullptr, nullptr);
}

void GarbageCollectManifests(StorageEnv* env, uint64_t committed_generation) {
  if (env == nullptr) return;
  Result<std::vector<std::string>> files = env->ListFiles();
  if (!files.ok()) return;
  for (const std::string& name : files.value()) {
    const std::optional<uint64_t> gen = GenerationOfFileName(name);
    if (gen.has_value() && *gen + 1 < committed_generation) {
      (void)env->Remove(name);
    }
  }
}

Result<CatalogManifest> ReadManifest(const StorageEnv& env,
                                     uint64_t generation) {
  Result<std::string> bytes = env.ReadFile(ManifestFileName(generation));
  if (!bytes.ok()) return bytes.status();
  Result<CatalogManifest> m = ParseManifest(bytes.value());
  if (!m.ok()) return m.status();
  if (m.value().generation != generation) {
    return Status::InvalidArgument("manifest generation disagrees with name");
  }
  return m;
}

Result<CatalogManifest> ReadCurrentManifest(const StorageEnv& env) {
  // Fast path: a valid CURRENT pointer. The commit protocol wrote every
  // referenced file before flipping CURRENT, so no file-level verification
  // here — media corruption surfaces as checksum errors at load/scrub
  // time, never as a silent rollback to stale data.
  Result<std::string> current = env.ReadFile(kCurrentFileName);
  if (current.ok()) {
    Result<uint64_t> gen = ParseCurrentPointer(current.value());
    if (gen.ok()) {
      Result<CatalogManifest> m = ReadManifest(env, gen.value());
      if (m.ok()) return m;
    }
  }

  // Fallback: CURRENT missing or torn. Scan manifests newest-first and
  // accept the first whose referenced files all verify — a manifest left
  // by a crashed, uncommitted save has torn or missing files and is
  // skipped.
  Result<std::vector<std::string>> files = env.ListFiles();
  if (!files.ok()) return files.status();
  std::vector<uint64_t> generations;
  for (const std::string& name : files.value()) {
    if (name.substr(0, kManifestPrefixLen) != kManifestPrefix) continue;
    const std::optional<uint64_t> gen = GenerationOfFileName(name);
    if (gen.has_value()) generations.push_back(*gen);
  }
  std::sort(generations.rbegin(), generations.rend());
  for (uint64_t gen : generations) {
    Result<CatalogManifest> m = ReadManifest(env, gen);
    if (!m.ok()) continue;
    if (VerifyManifestFiles(env, m.value()).ok()) return m;
  }
  return Status::NotFound("no usable catalog manifest");
}

Status VerifyManifestFiles(const StorageEnv& env,
                           const CatalogManifest& manifest) {
  for (size_t i = 0; i < manifest.relations.size(); ++i) {
    const ManifestRelation& rel = manifest.relations[i];
    Status s = CheckFileAgainstManifest(env, manifest.DataFileName(i),
                                        rel.data_size, rel.data_crc);
    if (!s.ok()) return s;
    if (rel.redundancy.policy == RelationRedundancy::Policy::kMirror) {
      for (uint32_t c = 1; c < rel.redundancy.copies; ++c) {
        s = CheckFileAgainstManifest(env, manifest.MirrorFileName(i, c),
                                     rel.data_size, rel.data_crc);
        if (!s.ok()) return s;
      }
    }
    if (rel.parity_size > 0) {
      s = CheckFileAgainstManifest(env, manifest.ParityFileName(i),
                                   rel.parity_size, rel.parity_crc);
      if (!s.ok()) return s;
    }
  }
  return Status::Ok();
}

Result<Catalog> LoadCatalogFromManifest(const StorageEnv& env,
                                        const CatalogManifest& manifest,
                                        const ManifestLoadOptions& options) {
  Catalog catalog(manifest.num_disks);
  for (size_t i = 0; i < manifest.relations.size(); ++i) {
    const ManifestRelation& rel = manifest.relations[i];
    const std::string file_name = manifest.DataFileName(i);
    Result<std::string> data = env.ReadFile(file_name);
    if (!data.ok()) return data.status();
    if (options.verify_checksums &&
        (data.value().size() != rel.data_size ||
         Crc32c(data.value()) != rel.data_crc)) {
      return Status::InvalidArgument(
          "relation '" + rel.name +
          "' data file fails its manifest checksum (run fsck)");
    }
    LoadOptions load;
    load.policy.verify = options.verify_checksums;
    Result<GridFile> file = ParseGridFile(data.value(), load);
    if (!file.ok()) {
      return Status::InvalidArgument("relation '" + rel.name +
                                     "': " + file.status().message());
    }
    Result<DeclusteredFile> df =
        DeclusteredFile::Create(std::move(file).value(), rel.method,
                                manifest.num_disks, rel.disk_params);
    if (!df.ok()) {
      return Status::InvalidArgument("relation '" + rel.name +
                                     "': " + df.status().message());
    }
    const Status added = catalog.AddRelation(rel.name, std::move(df).value());
    if (!added.ok()) return added;
  }
  return catalog;
}

Result<Catalog> LoadCatalogManifest(const StorageEnv& env,
                                    const ManifestLoadOptions& options) {
  Result<CatalogManifest> manifest = ReadCurrentManifest(env);
  if (!manifest.ok()) return manifest.status();
  return LoadCatalogFromManifest(env, manifest.value(), options);
}

Result<Catalog> LoadCatalogManifestConsistent(
    const StorageEnv& env, const ManifestLoadOptions& options,
    uint32_t max_retries) {
  Result<CatalogManifest> manifest = ReadCurrentManifest(env);
  if (!manifest.ok()) return manifest.status();
  for (uint32_t attempt = 0;; ++attempt) {
    Result<Catalog> catalog =
        LoadCatalogFromManifest(env, manifest.value(), options);
    if (catalog.ok()) return catalog;
    // A load that resolved generation G can fail because a concurrent
    // commit advanced CURRENT and GC swept G's files mid-read (per-file
    // CRCs turn any such race into an error, never a silent mix).
    // Re-resolve: if the committed generation moved, the failure is
    // explained — retry at the new generation.
    Result<CatalogManifest> again = ReadCurrentManifest(env);
    if (!again.ok() ||
        again.value().generation == manifest.value().generation ||
        attempt >= max_retries) {
      return catalog.status();
    }
    manifest = std::move(again);
  }
}

}  // namespace griddecl
