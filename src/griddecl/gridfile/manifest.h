#ifndef GRIDDECL_GRIDFILE_MANIFEST_H_
#define GRIDDECL_GRIDFILE_MANIFEST_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "griddecl/gridfile/catalog.h"
#include "griddecl/gridfile/storage.h"
#include "griddecl/gridfile/storage_env.h"

/// \file
/// Atomic, generation-numbered persistence for a whole `Catalog`.
///
/// A catalog save writes every relation as a self-verifying grid file
/// (storage.h, format v2), optional redundancy sidecars (full mirror
/// copies, or XOR parity pages — the storage-level analogues of the
/// paper's replication and ECC declustering ideas), and one manifest file
/// naming them all with sizes and CRC32C checksums. The commit protocol is
/// the classic write-new-then-flip:
///
///   1. pick generation G = 1 + highest generation mentioned by any
///      existing file (never reuse names — wreckage of a crashed attempt
///      must not be overwritten);
///   2. write `rel-<G>-<i>.gd` (+ `.m<k>` mirrors / `.par` parity) for
///      every relation, then `MANIFEST-<G>`;
///   3. write `CURRENT.tmp` containing "MANIFEST-<G> <crc>" and atomically
///      rename it onto `CURRENT` — THE commit point;
///   4. garbage-collect generations <= G-2 (the immediately previous
///      generation is retained as a rollback target).
///
/// A crash at any step before (3) leaves `CURRENT` pointing at the old
/// generation; a crash after (3) — including mid-GC — leaves the new one
/// fully durable. A torn `CURRENT` is detected by its embedded CRC, and
/// recovery falls back to scanning `MANIFEST-*` files from the highest
/// generation down, accepting the first whose referenced files all verify.
/// The torture test drives this through `CrashEnv` at every single
/// operation index.

namespace griddecl {

/// Name of the commit pointer file.
inline constexpr char kCurrentFileName[] = "CURRENT";

/// Storage-level redundancy attached to one relation.
struct RelationRedundancy {
  enum class Policy : uint32_t {
    /// Single copy; corruption is detected (CRCs) but not repairable.
    kNone = 0,
    /// `copies` full copies of the data file; any page repairs from any
    /// intact copy of it.
    kMirror = 1,
    /// One XOR parity page per stripe of `group_pages` data pages; one
    /// damaged page per stripe reconstructs from the survivors (the
    /// page-level counterpart of the ECC method's distance-3 groups).
    kParity = 2,
  };

  Policy policy = Policy::kNone;
  /// Total copies under kMirror (primary included); must be >= 2.
  uint32_t copies = 2;
  /// Stripe width under kParity; must be >= 1.
  uint32_t group_pages = 8;
};

/// Human-readable policy name ("none", "mirror", "parity").
const char* RedundancyPolicyName(RelationRedundancy::Policy policy);

/// One relation as recorded in a manifest.
struct ManifestRelation {
  std::string name;
  /// Registry name (methods/registry.h) used to rebuild the method.
  std::string method;
  RelationRedundancy redundancy;
  DiskParams disk_params;
  /// Size and CRC32C of the data file (and of every mirror copy — mirrors
  /// are bit-identical).
  uint64_t data_size = 0;
  uint32_t data_crc = 0;
  /// Size and CRC32C of the parity sidecar (0/0 when absent).
  uint64_t parity_size = 0;
  uint32_t parity_crc = 0;
};

/// Replica-placement record (manifest version 3): the policy, cluster
/// topology and seed under which the generation's mirror copies were (or
/// are meant to be) placed across nodes. Plain serialized data here; the
/// semantics — and the PlacementSpec conversions — live in
/// cluster/placement.h. A manifest without the record implies chained
/// placement over a flat topology, exactly the pre-placement behavior.
struct ManifestPlacement {
  /// cluster::PlacementPolicy value (0 chained, 1 spread, 2 zone_aware).
  uint32_t policy = 0;
  /// Tie-break seed for zone_aware placement.
  uint64_t seed = 0;
  /// node_rack[n] = rack of node n; size = number of nodes.
  std::vector<uint32_t> node_rack;
  /// rack_zone[r] = zone of rack r; size = number of racks.
  std::vector<uint32_t> rack_zone;
  /// Optional explicit (copy, disk) -> node table (manifest version 4),
  /// flattened copy-major: entry c * table_disks + d is the node holding
  /// copy c of primary disk d. Written by repair / re-placement, whose
  /// incremental re-targeting deviates from the pure policy formula; when
  /// present it is the ground truth of where replicas physically live and
  /// overrides the policy. Empty = derive placement from the policy
  /// (versions <= 3 always). `table.size() == table_copies * table_disks`.
  std::vector<uint32_t> table;
  uint32_t table_copies = 0;
  uint32_t table_disks = 0;
};

/// A parsed manifest: everything needed to reload (and scrub) a catalog.
struct CatalogManifest {
  uint64_t generation = 0;
  uint32_t num_disks = 0;
  uint32_t page_size_bytes = kDefaultPageSizeBytes;
  /// Grid-file page format every relation of this generation was written
  /// in (manifest version 1, which predates the tag, implies kFormatV2).
  uint32_t format_version = kLatestFormatVersion;
  /// Relations sorted by name (the order Catalog::RelationNames uses);
  /// index in this vector is the index in file names.
  std::vector<ManifestRelation> relations;
  /// Replica placement record (manifest version 3+). Absent on manifests
  /// written before version 3 — loaders treat that as chained placement.
  std::optional<ManifestPlacement> placement;

  /// `rel-<gen>-<index>.gd`
  std::string DataFileName(size_t index) const;
  /// `rel-<gen>-<index>.m<copy>` — mirror copies, copy in [1, copies).
  std::string MirrorFileName(size_t index, uint32_t copy) const;
  /// `rel-<gen>-<index>.par`
  std::string ParityFileName(size_t index) const;
};

/// `MANIFEST-<generation, zero-padded>`.
std::string ManifestFileName(uint64_t generation);

/// First unused generation number in `env`: one past the highest
/// generation any existing file (committed or wreckage) mentions.
/// Exposed for migrators that stage file-for-file copies of an existing
/// generation rather than re-serializing a Catalog.
Result<uint64_t> NextManifestGeneration(const StorageEnv& env);

/// Serializes / parses the manifest byte format (binary "GDMF" + CRC
/// trailer). Exposed for tests; normal callers use the Save/Load API.
std::string SerializeManifest(const CatalogManifest& manifest);
Result<CatalogManifest> ParseManifest(std::string_view bytes);

struct ManifestSaveOptions {
  /// Redundancy for relations not listed in `per_relation`.
  RelationRedundancy default_redundancy;
  /// Per-relation overrides, keyed by relation name.
  std::map<std::string, RelationRedundancy> per_relation;
  uint32_t page_size_bytes = kDefaultPageSizeBytes;
  /// Grid-file page format to write relations in (kFormatV2 or the
  /// columnar kFormatV3). Recorded in the manifest so loaders and scrub
  /// know the generation's layout without sniffing page headers.
  uint32_t format_version = kLatestFormatVersion;
  /// Replica placement record to persist with the generation (absent =
  /// chained, the backward-compatible default).
  std::optional<ManifestPlacement> placement;
  /// Optional observability sink (non-owning). A committed save records
  /// `manifest.generations_committed`, `manifest.files_written` and
  /// `manifest.bytes_written` (data files, sidecars, manifest and CURRENT
  /// pointer included). A save that fails before the commit point records
  /// nothing. The bytes laid down are identical either way.
  obs::MetricsRegistry* metrics = nullptr;
};

struct ManifestLoadOptions {
  /// Verify whole-file CRCs against the manifest and page CRCs while
  /// parsing. Leave on; off only to time the checksum cost.
  bool verify_checksums = true;
};

/// Saves `catalog` into `env` as a new generation and commits it
/// atomically. Returns the committed generation number. On failure
/// (including an injected crash) the previously committed generation is
/// untouched. Equivalent to Stage + Commit + GC below.
Result<uint64_t> SaveCatalogManifest(const Catalog& catalog, StorageEnv* env,
                                     const ManifestSaveOptions& options = {});

/// Stages `catalog` into `env` as a new generation WITHOUT flipping
/// `CURRENT` — steps (1) and (2) of the commit protocol only. The staged
/// generation is durable but uncommitted: `ReadCurrentManifest` keeps
/// resolving the old one (staged files look exactly like the wreckage of a
/// crashed save, which the recovery scan already skips). This is the
/// migrator's copy phase: new-layout files land while the old generation
/// keeps serving. Commit with `CommitStagedManifest`, discard with
/// `DropStagedManifest`. Returns the staged generation number.
Result<uint64_t> StageCatalogManifest(const Catalog& catalog, StorageEnv* env,
                                      const ManifestSaveOptions& options = {});

/// Step (3) for a previously staged generation: atomically flips `CURRENT`
/// onto `MANIFEST-<generation>`. Generation fence: refuses with
/// kFailedPrecondition when `CURRENT` already names a *newer* generation —
/// a racing commit won, and flipping back would silently roll the catalog
/// back. Committing the already-current generation is an idempotent no-op.
/// Never garbage-collects; callers decide when old generations die
/// (`GarbageCollectManifests`).
Status CommitStagedManifest(StorageEnv* env, uint64_t generation);

/// Removes every file of an *uncommitted* staged generation
/// (`rel-<generation>-*` and `MANIFEST-<generation>`). Refuses with
/// kFailedPrecondition when `CURRENT` resolves to `generation` — committed
/// generations are retired by GC, never by abort. This is the migrator's
/// rollback: after a drop the env serves exactly the files it served
/// before the stage.
Status DropStagedManifest(StorageEnv* env, uint64_t generation);

/// Re-points `CURRENT` at an older, still-present generation whose
/// manifest and referenced files all verify. The explicit rollback
/// primitive for a cutover that must be undone after a partial commit —
/// unlike `CommitStagedManifest` it deliberately bypasses the
/// newer-generation fence.
Status RollbackToGeneration(StorageEnv* env, uint64_t generation);

/// Best-effort sweep of generation-numbered files older than
/// `committed_generation - 1` (the immediate predecessor survives as a
/// rollback target) — exactly the GC `SaveCatalogManifest` runs after its
/// commit point, exposed for migrators that commit staged generations.
void GarbageCollectManifests(StorageEnv* env, uint64_t committed_generation);

/// Reads and parses `MANIFEST-<generation>`.
Result<CatalogManifest> ReadManifest(const StorageEnv& env,
                                     uint64_t generation);

/// Resolves the committed manifest: follows a valid `CURRENT`, otherwise
/// scans manifests from the highest generation down for one whose
/// referenced files all exist with matching size and CRC. kNotFound when
/// the env holds no usable catalog.
Result<CatalogManifest> ReadCurrentManifest(const StorageEnv& env);

/// Rebuilds a catalog from an already-resolved manifest.
Result<Catalog> LoadCatalogFromManifest(const StorageEnv& env,
                                        const CatalogManifest& manifest,
                                        const ManifestLoadOptions& options = {});

/// `ReadCurrentManifest` + `LoadCatalogFromManifest`: the one-call
/// recovery path.
Result<Catalog> LoadCatalogManifest(const StorageEnv& env,
                                    const ManifestLoadOptions& options = {});

/// `LoadCatalogManifest` hardened against concurrent commits. A reader
/// that resolves generation G can fail mid-load when a committer flips
/// CURRENT to G+1 and GC sweeps G's files out from under it; per-file
/// checksums guarantee such a race surfaces as an error, never as silently
/// mixed generations. This wrapper re-resolves CURRENT after a failed
/// load and, if the committed generation moved, retries at the new one (up
/// to `max_retries` times) — so a load under concurrent commits either
/// returns one consistent generation or the underlying error.
Result<Catalog> LoadCatalogManifestConsistent(
    const StorageEnv& env, const ManifestLoadOptions& options = {},
    uint32_t max_retries = 3);

/// Verifies that every file `manifest` references exists in `env` with the
/// recorded size and whole-file CRC32C (mirrors included).
Status VerifyManifestFiles(const StorageEnv& env,
                           const CatalogManifest& manifest);

/// Builds the parity sidecar bytes for a serialized grid file: one
/// page-size XOR page per stripe of `group_pages` data pages. Empty when
/// the file has no pages. Exposed for scrub (reconstruction) and tests.
Result<std::string> BuildParityBytes(std::string_view data,
                                     uint32_t group_pages);

}  // namespace griddecl

#endif  // GRIDDECL_GRIDFILE_MANIFEST_H_
