#include "griddecl/gridfile/page_store.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "griddecl/common/backoff.h"

namespace griddecl {

namespace {

uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

uint64_t HashString(uint64_t h, const std::string& s) {
  for (char c : s) h = Mix64(h ^ static_cast<uint8_t>(c));
  return h;
}

/// Sleeps `delay_ms` in 5 ms slices, bailing as soon as `interrupt`
/// reports non-Ok (the caller's loop re-checks and surfaces the status).
void SleepInterruptible(double delay_ms, const InterruptFn& interrupt) {
  while (delay_ms > 0.0) {
    if (interrupt && !interrupt().ok()) return;
    const double slice = std::min(delay_ms, 5.0);
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(slice));
    delay_ms -= slice;
  }
}

}  // namespace

PageStore::PageStore(const StorageEnv* env, const Options& options)
    : env_(env), options_(options) {
  if (options_.pool_pages > 0) {
    pool_ = std::make_unique<BufferPool>(options_.pool_pages);
  }
}

void PageStore::RegisterFile(const std::string& file,
                             const FileLayout& layout) {
  {
    std::lock_guard<std::mutex> lock(layouts_mu_);
    layouts_[file] = layout;
  }
  if (pool_ != nullptr) pool_->Invalidate(file);
}

const FileLayout* PageStore::GetLayout(const std::string& file) const {
  std::lock_guard<std::mutex> lock(layouts_mu_);
  auto it = layouts_.find(file);
  return it == layouts_.end() ? nullptr : &it->second;
}

Result<std::string> PageStore::ReadWithRetries(
    const std::string& file, uint64_t offset, uint64_t length,
    const ReadPolicy& policy, PageReadStats* stats,
    const InterruptFn& interrupt) const {
  const uint64_t token =
      Mix64(HashString(Mix64(0x5e7e5e7eull), file) ^ offset);
  for (uint32_t attempt = 0;; ++attempt) {
    if (interrupt) {
      Status st = interrupt();
      if (!st.ok()) return st;
    }
    Result<std::string> bytes = env_->ReadAt(file, offset, length);
    if (bytes.ok()) {
      if (stats != nullptr) stats->physical_reads++;
      return bytes;
    }
    if (bytes.status().code() != StatusCode::kUnavailable) {
      return bytes.status();  // Only transient unavailability retries.
    }
    if (attempt + 1 >= policy.retry.max_attempts) return bytes.status();
    if (stats != nullptr) stats->retries++;
    SleepInterruptible(
        BackoffDelayMs(policy.retry, options_.seed, token, attempt),
        interrupt);
  }
}

Result<PinnedPage> PageStore::BuildPinned(const std::string& file,
                                          uint64_t page,
                                          const FileLayout& layout,
                                          std::string page_bytes,
                                          const ReadPolicy& policy) {
  Status damage = Status::Ok();
  if (policy.verify) {
    damage = VerifyPageBytes(page_bytes, layout, page);
  }
  auto frame = std::make_shared<BufferPool::Frame>();
  frame->file = file;
  frame->page = page;
  if (damage.ok()) {
    Result<DecodedPage> decoded = DecodePageBytes(page_bytes, layout, page);
    if (decoded.ok()) {
      frame->decoded = std::move(decoded).value();
    } else {
      damage = decoded.status();
    }
  }
  frame->raw = std::move(page_bytes);

  if (!damage.ok()) {
    if (policy.on_damage == ReadPolicy::OnDamage::kFail) {
      // Corruption reads as unavailability: degraded paths repair it.
      return Status::Unavailable("page " + std::to_string(page) + " of '" +
                                 file + "': " + damage.message());
    }
    PinnedPage pinned;
    pinned.frame_ = std::move(frame);
    pinned.damaged_ = true;
    pinned.damage_reason_ = damage.message();
    return pinned;  // Never pooled: damage must be re-observed.
  }

  BufferPool::FramePtr resident = frame;
  if (pool_ != nullptr && policy.pin == ReadPolicy::Pin::kPool) {
    resident = pool_->Admit(std::move(frame));
  }
  PinnedPage pinned;
  pinned.frame_ = std::move(resident);
  return pinned;
}

Result<PinnedPage> PageStore::GetPage(const std::string& file,
                                      uint64_t page,
                                      const ReadPolicy& policy,
                                      PageReadStats* stats,
                                      const InterruptFn& interrupt) {
  if (interrupt) {
    Status st = interrupt();
    if (!st.ok()) return st;
  }
  FileLayout layout;
  {
    std::lock_guard<std::mutex> lock(layouts_mu_);
    auto it = layouts_.find(file);
    if (it == layouts_.end()) {
      return Status::NotFound("no layout registered for '" + file + "'");
    }
    layout = it->second;
  }
  if (page >= layout.num_pages) {
    return Status::InvalidArgument("page index out of range");
  }
  if (pool_ != nullptr && policy.pin == ReadPolicy::Pin::kPool) {
    if (BufferPool::FramePtr hit = pool_->Lookup(file, page)) {
      if (stats != nullptr) stats->cache_hit = true;
      PinnedPage pinned;
      pinned.frame_ = std::move(hit);
      return pinned;
    }
  }
  Result<std::string> bytes =
      ReadWithRetries(file, layout.PageOffset(page), layout.page_size_bytes,
                      policy, stats, interrupt);
  if (!bytes.ok()) return bytes.status();
  return BuildPinned(file, page, layout, std::move(bytes).value(), policy);
}

Result<std::string> PageStore::ReadRaw(const std::string& file,
                                       uint64_t offset, uint64_t length,
                                       const ReadPolicy& policy,
                                       PageReadStats* stats,
                                       const InterruptFn& interrupt) {
  return ReadWithRetries(file, offset, length, policy, stats, interrupt);
}

Result<PinnedPage> PageStore::AdmitReconstructed(const std::string& file,
                                                 uint64_t page,
                                                 std::string page_bytes) {
  FileLayout layout;
  {
    std::lock_guard<std::mutex> lock(layouts_mu_);
    auto it = layouts_.find(file);
    if (it == layouts_.end()) {
      return Status::NotFound("no layout registered for '" + file + "'");
    }
    layout = it->second;
  }
  Status verify = VerifyPageBytes(page_bytes, layout, page);
  if (!verify.ok()) return verify;
  ReadPolicy policy;  // verify done above; pin to pool.
  policy.verify = false;
  return BuildPinned(file, page, layout, std::move(page_bytes), policy);
}

void PageStore::Invalidate(const std::string& file) {
  if (pool_ != nullptr) pool_->Invalidate(file);
}

BufferPool::Stats PageStore::PoolStats() const {
  return pool_ != nullptr ? pool_->GetStats() : BufferPool::Stats{};
}

void PageStore::PublishMetrics(obs::MetricsRegistry* out) const {
  if (out == nullptr) return;
  const BufferPool::Stats stats = PoolStats();
  const auto set_counter = [out](const char* name, uint64_t v) {
    obs::Counter* c = out->GetCounter(name);
    c->Reset();
    c->Inc(v);
  };
  set_counter("storage.pool.hits", stats.hits);
  set_counter("storage.pool.misses", stats.misses);
  set_counter("storage.pool.admissions", stats.admissions);
  set_counter("storage.pool.evictions", stats.evictions);
  set_counter("storage.pool.promotions", stats.promotions);
  out->GetGauge("storage.pool.resident")
      ->Set(static_cast<double>(stats.resident));
  out->GetGauge("storage.pool.capacity")
      ->Set(static_cast<double>(pool_ != nullptr ? pool_->capacity() : 0));
}

}  // namespace griddecl
