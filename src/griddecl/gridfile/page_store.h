#ifndef GRIDDECL_GRIDFILE_PAGE_STORE_H_
#define GRIDDECL_GRIDFILE_PAGE_STORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "griddecl/common/status.h"
#include "griddecl/gridfile/buffer_pool.h"
#include "griddecl/gridfile/read_policy.h"
#include "griddecl/gridfile/storage.h"
#include "griddecl/gridfile/storage_env.h"
#include "griddecl/obs/metrics.h"

/// \file
/// The one page-read path: `GetPage(file, page, ReadPolicy)` fetches a
/// page through the scan-resistant `BufferPool`, retries transient env
/// errors under seeded-jitter backoff, CRC-verifies **once at
/// admission**, and hands back a `PinnedPage` whose decoded column
/// vectors are shared by every subsequent reader of the same page.
///
/// Before PageStore, the read→verify→decode dance lived three times —
/// the bulk loader, scrub, and the serve path — each with its own retry
/// and damage conventions. Now all of them call here and only the
/// `ReadPolicy` differs:
///
///  * serve: `pin=kPool`, `on_damage=kFail` — a damaged page reads as
///    kUnavailable so mirror failover / parity rebuild engage; cached
///    pages skip I/O, verification and decode entirely.
///  * scrub / fsck: `pin=kBypass`, `on_damage=kReport` — every read
///    touches the real bytes and damage comes back as data, not error.
///
/// Interruption (shutdown hard-stop, query deadlines) is injected as a
/// callable checked before every read attempt and between backoff sleep
/// slices, so the owner keeps its exact error wording without PageStore
/// knowing about deadlines.

namespace griddecl {

/// A decoded page held alive by the caller. Copyable; the underlying
/// frame is immutable and shared with the pool (eviction never
/// invalidates a pin). In `OnDamage::kReport` mode a damaged page comes
/// back with `damaged() == true`, the raw bytes as read, and an empty
/// decode.
class PinnedPage {
 public:
  PinnedPage() = default;
  /// Wraps a frame obtained out of band (e.g. a parity-reconstructed
  /// page a caller chose not to pool).
  explicit PinnedPage(BufferPool::FramePtr frame)
      : frame_(std::move(frame)) {}

  bool valid() const { return frame_ != nullptr; }
  /// Columnar view (empty when damaged).
  const DecodedPage& decoded() const { return frame_->decoded; }
  /// The page's bytes exactly as fetched (parity XOR, scrub).
  std::string_view raw() const { return frame_->raw; }
  bool damaged() const { return damaged_; }
  const std::string& damage_reason() const { return damage_reason_; }

 private:
  friend class PageStore;
  BufferPool::FramePtr frame_;
  bool damaged_ = false;
  std::string damage_reason_;
};

/// Per-call accounting, for callers that charge reads to a query.
struct PageReadStats {
  /// Successful physical reads issued to the env (0 on a pool hit).
  uint64_t physical_reads = 0;
  /// Transient-error retries performed.
  uint64_t retries = 0;
  /// The page came straight from the pool.
  bool cache_hit = false;
};

/// Caller-supplied interruption check: non-Ok aborts the read (and any
/// backoff sleep) with exactly that status.
using InterruptFn = std::function<Status()>;

class PageStore {
 public:
  struct Options {
    /// Buffer-pool capacity in pages; 0 disables caching entirely
    /// (every GetPage is a physical read).
    size_t pool_pages = 1024;
    /// Seed for retry-backoff jitter (decorrelates concurrent retriers).
    uint64_t seed = 0;
  };

  /// `env` must outlive the store.
  PageStore(const StorageEnv* env, const Options& options);

  PageStore(const PageStore&) = delete;
  PageStore& operator=(const PageStore&) = delete;

  /// Declares `file`'s layout so GetPage can turn page numbers into byte
  /// ranges. Re-registering replaces the layout and drops the file's
  /// cached pages.
  void RegisterFile(const std::string& file, const FileLayout& layout);

  /// Layout previously registered for `file`; null when unknown.
  const FileLayout* GetLayout(const std::string& file) const;

  /// Fetches page `page` of `file` per `policy`. Pool hit: returns the
  /// cached frame, no I/O, no re-verification. Miss: reads the page with
  /// retries on kUnavailable, verifies (policy.verify), decodes, and —
  /// policy.pin permitting — admits the frame to the pool. A page that
  /// fails verification returns kUnavailable ("page N of 'file': why")
  /// under OnDamage::kFail, or a damaged PinnedPage (never pooled) under
  /// kSalvage/kReport.
  Result<PinnedPage> GetPage(const std::string& file, uint64_t page,
                             const ReadPolicy& policy,
                             PageReadStats* stats = nullptr,
                             const InterruptFn& interrupt = {});

  /// Uncached raw range read with the same retry/interrupt machinery
  /// (parity pages, which have no grid-file layout of their own).
  Result<std::string> ReadRaw(const std::string& file, uint64_t offset,
                              uint64_t length, const ReadPolicy& policy,
                              PageReadStats* stats = nullptr,
                              const InterruptFn& interrupt = {});

  /// Verifies, decodes and pools a page obtained out of band (parity
  /// reconstruction), so later readers hit cache instead of rebuilding.
  /// Fails with the verify/decode status when `page_bytes` is not a
  /// pristine page.
  Result<PinnedPage> AdmitReconstructed(const std::string& file,
                                        uint64_t page,
                                        std::string page_bytes);

  /// Drops `file`'s cached pages (after scrub rewrote it).
  void Invalidate(const std::string& file);

  /// Pool counters (zeros when the pool is disabled).
  BufferPool::Stats PoolStats() const;

  /// Publishes absolute totals into `out` (Reset + Inc, so repeated
  /// snapshots do not double-count): storage.pool.hits / .misses /
  /// .admissions / .evictions / .promotions counters plus
  /// storage.pool.resident and storage.pool.capacity gauges.
  void PublishMetrics(obs::MetricsRegistry* out) const;

 private:
  Result<std::string> ReadWithRetries(const std::string& file,
                                      uint64_t offset, uint64_t length,
                                      const ReadPolicy& policy,
                                      PageReadStats* stats,
                                      const InterruptFn& interrupt) const;
  Result<PinnedPage> BuildPinned(const std::string& file, uint64_t page,
                                 const FileLayout& layout,
                                 std::string page_bytes,
                                 const ReadPolicy& policy);

  const StorageEnv* env_;
  const Options options_;
  std::unique_ptr<BufferPool> pool_;  ///< Null when pool_pages == 0.

  mutable std::mutex layouts_mu_;
  std::unordered_map<std::string, FileLayout> layouts_;
};

}  // namespace griddecl

#endif  // GRIDDECL_GRIDFILE_PAGE_STORE_H_
