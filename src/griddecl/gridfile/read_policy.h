#ifndef GRIDDECL_GRIDFILE_READ_POLICY_H_
#define GRIDDECL_GRIDFILE_READ_POLICY_H_

#include "griddecl/common/backoff.h"

/// \file
/// The one read-behavior knob shared by every consumer of stored pages.
///
/// Before this header existed the repo had three ways to spell the same
/// decisions: `LoadOptions::{verify_checksums, best_effort}` for bulk
/// loads, `ServeOptions::retry` for the query path, and scrub's implicit
/// "never fail, always report". `ReadPolicy` folds them into one struct
/// that `ParseGridFile`, `PageStore::GetPage`, `declctl fsck`, and
/// `QueryService` all accept, so a damaged page means the same thing at
/// every layer and only the chosen reaction differs.

namespace griddecl {

struct ReadPolicy {
  /// Reaction to a page that fails verification (or cannot be decoded).
  enum class OnDamage {
    /// Reject: loads fail the whole file, `PageStore::GetPage` returns
    /// kUnavailable so resilience (mirror failover / parity rebuild) can
    /// take over.
    kFail,
    /// Salvage: skip the damaged page, keep everything verifiable
    /// (best-effort bulk load; record ids compact).
    kSalvage,
    /// Report: hand the damaged bytes back with a reason attached and
    /// never fail the call (scrub's damage census).
    kReport,
  };

  /// Where a fetched page may live after the call returns.
  enum class Pin {
    /// Admit to the buffer pool; later readers may hit cache.
    kPool,
    /// One-shot read, never cached (scrub must see the bytes on disk,
    /// not a pooled copy).
    kBypass,
  };

  /// Verify header/page/footer CRCs of checksummed (v2/v3) files. v1 has
  /// none to verify; structural checks always run.
  bool verify = true;
  OnDamage on_damage = OnDamage::kFail;
  Pin pin = Pin::kPool;
  /// Retry schedule for transiently failing reads (kUnavailable from the
  /// storage env). Bulk loads read whole files and never see transients
  /// in practice; the serve path overrides this with its tight schedule.
  BackoffPolicy retry;
};

/// The serve path's historical retry schedule: fast first retry, low cap,
/// full jitter — tuned for disks that come back within milliseconds.
inline ReadPolicy ServeReadPolicy() {
  ReadPolicy policy;
  policy.retry = BackoffPolicy{0.1, 2.0, 5.0, 1.0, 4};
  return policy;
}

/// Strict bulk-load policy (verify everything, fail on any damage).
inline ReadPolicy StrictReadPolicy() { return ReadPolicy{}; }

/// Best-effort bulk-load policy: salvage verifiable pages, report damage.
inline ReadPolicy SalvageReadPolicy() {
  ReadPolicy policy;
  policy.on_damage = ReadPolicy::OnDamage::kSalvage;
  return policy;
}

/// Scrub / fsck policy: bypass the pool so every probe touches the real
/// bytes on disk, and hand damage back as data — a damage census must
/// never fail on the damage it exists to find.
inline ReadPolicy ScrubReadPolicy() {
  ReadPolicy policy;
  policy.on_damage = ReadPolicy::OnDamage::kReport;
  policy.pin = ReadPolicy::Pin::kBypass;
  return policy;
}

}  // namespace griddecl

#endif  // GRIDDECL_GRIDFILE_READ_POLICY_H_
