#include "griddecl/gridfile/replicated_file.h"

#include "griddecl/methods/registry.h"

namespace griddecl {

Result<ReplicatedFile> ReplicatedFile::Create(GridFile file,
                                              const std::string& base_method,
                                              uint32_t num_disks,
                                              uint32_t num_replicas,
                                              uint32_t offset,
                                              DiskParams params) {
  Result<std::unique_ptr<DeclusteringMethod>> base =
      CreateMethod(base_method, file.grid(), num_disks);
  if (!base.ok()) return base.status();
  Result<ReplicatedPlacement> placement = ReplicatedPlacement::Create(
      std::move(base).value(), num_replicas, offset);
  if (!placement.ok()) return placement.status();
  return ReplicatedFile(std::move(file), std::move(placement).value(),
                        params);
}

Result<ReplicatedQueryExecution> ReplicatedFile::ExecuteRange(
    const std::vector<double>& lo, const std::vector<double>& hi,
    const std::vector<bool>* failed_disks) const {
  Result<RangeQuery> query = file_.ResolveRange(lo, hi);
  if (!query.ok()) return query.status();
  Result<std::vector<RecordId>> matches = file_.RangeSearch(lo, hi);
  if (!matches.ok()) return matches.status();
  Result<RoutedQuery> routed =
      RouteQuery(placement_, query.value(), failed_disks);
  if (!routed.ok()) return routed.status();

  ReplicatedQueryExecution exec;
  exec.matches = std::move(matches).value();
  exec.buckets_touched = query.value().NumBuckets();
  exec.response_units = routed.value().response;
  exec.lower_bound_units = routed.value().lower_bound;

  // Timed simulation follows the router's per-bucket disk choice.
  std::vector<std::vector<uint64_t>> schedule(placement_.num_disks());
  size_t index = 0;
  const GridSpec& grid = file_.grid();
  query.value().rect().ForEachBucket([&](const BucketCoords& c) {
    schedule[routed.value().assignment[index++]].push_back(
        grid.Linearize(c));
  });
  exec.io = sim_.RunSchedule(schedule);
  return exec;
}

std::vector<uint64_t> ReplicatedFile::RecordsPerDisk() const {
  std::vector<uint64_t> counts(placement_.num_disks(), 0);
  for (RecordId id = 0; id < file_.num_records(); ++id) {
    for (uint32_t d : placement_.DisksOf(file_.BucketOfRecord(id))) {
      ++counts[d];
    }
  }
  return counts;
}

}  // namespace griddecl
