#ifndef GRIDDECL_GRIDFILE_REPLICATED_FILE_H_
#define GRIDDECL_GRIDFILE_REPLICATED_FILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "griddecl/eval/replica_router.h"
#include "griddecl/gridfile/grid_file.h"
#include "griddecl/sim/io_sim.h"

/// \file
/// Replicated storage, end to end: a grid file whose buckets live on `r`
/// disks each (chained placement over a base declustering method), queried
/// through the exact replica router. The record-level sibling of
/// `DeclusteredFile` for installations that trade storage for availability
/// and routing freedom — the design point the paper scoped out.

namespace griddecl {

/// Result of one routed record-level range query.
struct ReplicatedQueryExecution {
  /// Ids of records matching the predicate.
  std::vector<RecordId> matches;
  uint64_t buckets_touched = 0;
  /// Optimally-routed response (max buckets served by one live disk).
  uint64_t response_units = 0;
  /// ceil(|Q| / live_disks): the routing lower bound.
  uint64_t lower_bound_units = 0;
  /// Timed simulation of the routed fetches.
  SimResult io;
};

/// A grid file declustered with replication over simulated disks.
class ReplicatedFile {
 public:
  /// Binds `file` to a chained `num_replicas`-way placement over the base
  /// method named `base_method` (see methods/registry.h) on `num_disks`
  /// disks. `offset` is the replica stride (1 = chained declustering).
  static Result<ReplicatedFile> Create(GridFile file,
                                       const std::string& base_method,
                                       uint32_t num_disks,
                                       uint32_t num_replicas,
                                       uint32_t offset = 1,
                                       DiskParams params = {});

  const GridFile& file() const { return file_; }
  GridFile& mutable_file() { return file_; }
  const ReplicatedPlacement& placement() const { return placement_; }
  uint32_t num_disks() const { return placement_.num_disks(); }
  uint32_t num_replicas() const { return placement_.num_replicas(); }

  /// Executes `lo[i] <= attr_i <= hi[i]` with optimal replica routing.
  /// `failed_disks` (one flag per disk) simulates degraded mode; fails
  /// with kUnsupported when a touched bucket has no live replica.
  Result<ReplicatedQueryExecution> ExecuteRange(
      const std::vector<double>& lo, const std::vector<double>& hi,
      const std::vector<bool>* failed_disks = nullptr) const;

  /// Records per disk counting every replica (the storage bill).
  std::vector<uint64_t> RecordsPerDisk() const;

 private:
  ReplicatedFile(GridFile file, ReplicatedPlacement placement,
                 DiskParams params)
      : file_(std::move(file)),
        placement_(std::move(placement)),
        sim_(placement_.num_disks(), params) {}

  GridFile file_;
  ReplicatedPlacement placement_;
  ParallelIoSimulator sim_;
};

}  // namespace griddecl

#endif  // GRIDDECL_GRIDFILE_REPLICATED_FILE_H_
