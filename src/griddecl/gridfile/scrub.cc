#include "griddecl/gridfile/scrub.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "griddecl/common/crc32c.h"
#include "griddecl/gridfile/page_store.h"

namespace griddecl {

namespace {

constexpr char kScrubTmpName[] = "scrub.tmp";

bool MatchesManifest(std::string_view bytes, uint64_t size, uint32_t crc) {
  return bytes.size() == size && Crc32c(bytes) == crc;
}

/// Writes `data` to `name` via temp-file-then-rename so a crash mid-scrub
/// never leaves a half-written primary.
Status AtomicWrite(StorageEnv* env, const std::string& name,
                   std::string_view data) {
  Status s = env->WriteFile(kScrubTmpName, data);
  if (!s.ok()) return s;
  return env->Rename(kScrubTmpName, name);
}

/// Scrubs relation `i` of `manifest`. Never fails outright: any problem is
/// recorded in the returned report.
RelationScrubReport ScrubRelation(StorageEnv* env, PageStore* store,
                                  const CatalogManifest& manifest, size_t i,
                                  const ScrubOptions& options) {
  const ManifestRelation& rel = manifest.relations[i];
  RelationScrubReport rep;
  rep.name = rel.name;
  rep.policy = rel.redundancy.policy;

  const std::string data_name = manifest.DataFileName(i);
  Result<std::string> primary_read = env->ReadFile(data_name);
  std::string primary =
      primary_read.ok() ? std::move(primary_read).value() : std::string();

  std::vector<std::string> mirrors;
  if (rel.redundancy.policy == RelationRedundancy::Policy::kMirror) {
    for (uint32_t c = 1; c < rel.redundancy.copies; ++c) {
      Result<std::string> m = env->ReadFile(manifest.MirrorFileName(i, c));
      mirrors.push_back(m.ok() ? std::move(m).value() : std::string());
    }
  }
  std::string parity;
  if (rel.parity_size > 0) {
    Result<std::string> p = env->ReadFile(manifest.ParityFileName(i));
    if (p.ok()) parity = std::move(p).value();
  }

  // Recover a layout consistent with the manifest: from the primary's
  // header region if it still verifies, else from any mirror's.
  Result<FileLayout> primary_layout = ParseFileLayout(primary);
  const bool primary_header_ok =
      primary_layout.ok() &&
      primary_layout.value().expected_file_size == rel.data_size;
  rep.header_damaged = !primary_header_ok;
  FileLayout layout;
  bool have_layout = false;
  size_t donor = mirrors.size();  // Mirror index the header graft uses.
  if (primary_header_ok) {
    layout = primary_layout.value();
    have_layout = true;
  } else {
    for (size_t c = 0; c < mirrors.size(); ++c) {
      Result<FileLayout> l = ParseFileLayout(mirrors[c]);
      if (l.ok() && l.value().expected_file_size == rel.data_size) {
        layout = l.value();
        have_layout = true;
        donor = c;
        break;
      }
    }
  }
  if (!have_layout) {
    rep.unrepairable = true;
    rep.detail = "header region unrepairable (no intact copy)";
    return rep;
  }
  rep.num_pages = layout.num_pages;

  // Fast path: primary verifies wholesale against the manifest.
  const bool intact = MatchesManifest(primary, rel.data_size, rel.data_crc);
  std::string fixed = primary;
  if (intact) {
    rep.clean = true;
  } else {
    fixed.resize(rel.data_size, '\0');
    if (rep.header_damaged) {
      std::memcpy(fixed.data(), mirrors[donor].data(), layout.header_bytes);
    }

    // Pass 1: damage census through the unified read path. The scrub
    // policy bypasses the pool, so every probe reads the bytes actually
    // on disk; kReport makes a CRC failure come back as a damaged
    // PinnedPage rather than an error, and a hard read failure (the file
    // is truncated below this page) counts as damage too. Repairs pull
    // from mirrors, each candidate gated by the page's own CRC.
    store->RegisterFile(data_name, layout);
    std::vector<char> good(static_cast<size_t>(layout.num_pages), 0);
    for (uint64_t p = 0; p < layout.num_pages; ++p) {
      Result<PinnedPage> probe =
          store->GetPage(data_name, p, options.policy);
      if (probe.ok() && !probe.value().damaged()) {
        good[static_cast<size_t>(p)] = 1;
        continue;
      }
      ++rep.pages_damaged;
      for (const std::string& mirror : mirrors) {
        if (!VerifyFilePage(mirror, layout, p).ok()) continue;
        std::memcpy(fixed.data() + layout.PageOffset(p),
                    mirror.data() + layout.PageOffset(p),
                    layout.page_size_bytes);
        good[static_cast<size_t>(p)] = 1;
        ++rep.pages_repaired;
        ++rep.pages_repaired_mirror;
        break;
      }
    }

    // Pass 2: parity reconstruction — XOR the stripe's parity page with
    // its surviving data pages; the result must pass the data page's CRC
    // (which also guards against a damaged parity sidecar).
    if (!parity.empty()) {
      const uint32_t g = rel.redundancy.group_pages;
      const uint32_t psz = layout.page_size_bytes;
      for (uint64_t p = 0; p < layout.num_pages; ++p) {
        if (good[static_cast<size_t>(p)]) continue;
        const uint64_t stripe = p / g;
        const uint64_t first = stripe * g;
        const uint64_t last =
            std::min<uint64_t>(first + g, layout.num_pages);
        bool mates_good = true;
        for (uint64_t q = first; q < last; ++q) {
          if (q != p && !good[static_cast<size_t>(q)]) mates_good = false;
        }
        if (!mates_good) continue;
        if (parity.size() < (stripe + 1) * uint64_t{psz}) continue;
        std::string candidate(parity, static_cast<size_t>(stripe * psz),
                              psz);
        for (uint64_t q = first; q < last; ++q) {
          if (q == p) continue;
          const char* src = fixed.data() + layout.PageOffset(q);
          for (uint32_t b = 0; b < psz; ++b) candidate[b] ^= src[b];
        }
        std::string previous(fixed, static_cast<size_t>(layout.PageOffset(p)),
                             psz);
        std::memcpy(fixed.data() + layout.PageOffset(p), candidate.data(),
                    psz);
        if (VerifyFilePage(fixed, layout, p).ok()) {
          good[static_cast<size_t>(p)] = 1;
          ++rep.pages_repaired;
          ++rep.pages_repaired_parity;
        } else {
          std::memcpy(fixed.data() + layout.PageOffset(p), previous.data(),
                      psz);
        }
      }
    }

    for (uint64_t p = 0; p < layout.num_pages; ++p) {
      if (!good[static_cast<size_t>(p)]) ++rep.pages_unrepairable;
    }

    if (rep.pages_unrepairable == 0) {
      // Body intact again; the checksummed (v2/v3) footer is a pure
      // function of it.
      if (layout.format_version != kFormatV1) {
        const std::string footer = BuildFileFooter(
            layout, std::string_view(fixed).substr(0, layout.footer_offset));
        if (std::string_view(fixed).substr(layout.footer_offset) != footer) {
          rep.footer_rebuilt = true;
          fixed.replace(static_cast<size_t>(layout.footer_offset),
                        std::string::npos, footer);
        }
      }
      if (MatchesManifest(fixed, rel.data_size, rel.data_crc)) {
        rep.header_repaired = rep.header_damaged;
        rep.repaired = true;
        if (options.repair) {
          const Status s = AtomicWrite(env, data_name, fixed);
          if (!s.ok()) {
            rep.repaired = false;
            rep.unrepairable = true;
            rep.detail = "repair write-back failed: " + s.message();
            return rep;
          }
        }
      } else {
        // Every page passed its CRC yet the whole disagrees — should be
        // impossible; refuse to write rather than risk wrong bytes.
        rep.unrepairable = true;
        rep.detail = "reassembled bytes fail the manifest checksum";
        return rep;
      }
    } else {
      rep.unrepairable = true;
      rep.detail = std::to_string(rep.pages_unrepairable) +
                   " page(s) unrepairable under policy '" +
                   RedundancyPolicyName(rel.redundancy.policy) + "'";
      return rep;
    }
  }

  // Primary is healthy (clean or repaired): heal sidecars that drifted.
  for (size_t c = 0; c < mirrors.size(); ++c) {
    if (mirrors[c] == fixed) continue;
    ++rep.sidecars_healed;
    if (options.repair) {
      (void)AtomicWrite(env, manifest.MirrorFileName(i, c + 1), fixed);
    }
  }
  if (rel.parity_size > 0) {
    Result<std::string> expected =
        BuildParityBytes(fixed, rel.redundancy.group_pages);
    if (expected.ok() && parity != expected.value()) {
      ++rep.sidecars_healed;
      if (options.repair) {
        (void)AtomicWrite(env, manifest.ParityFileName(i),
                          expected.value());
      }
    }
  }
  return rep;
}

}  // namespace

Result<ScrubReport> ScrubManifest(StorageEnv* env,
                                  const CatalogManifest& manifest,
                                  const ScrubOptions& options) {
  if (env == nullptr) {
    return Status::InvalidArgument("null storage env");
  }
  ScrubReport report;
  report.generation = manifest.generation;
  // Pool disabled: a scrub that served its census from cache would
  // certify bytes nobody read. Every GetPage is a physical read.
  PageStore::Options store_options;
  store_options.pool_pages = 0;
  PageStore store(env, store_options);
  for (size_t i = 0; i < manifest.relations.size(); ++i) {
    RelationScrubReport rel = ScrubRelation(env, &store, manifest, i, options);
    ++report.relations_scanned;
    report.pages_scanned += rel.num_pages;
    report.pages_repaired += rel.pages_repaired;
    report.pages_unrepairable += rel.pages_unrepairable;
    report.sidecars_healed += rel.sidecars_healed;
    if (rel.clean) ++report.relations_clean;
    if (rel.repaired) ++report.relations_repaired;
    if (rel.unrepairable) ++report.relations_unrepairable;
    report.relations.push_back(std::move(rel));
  }
  // Metrics mirror the finished report (single source of truth), so the
  // scrub outcome is identical with or without a sink.
  if (options.metrics != nullptr) {
    obs::MetricsRegistry& reg = *options.metrics;
    uint64_t damaged = 0;
    uint64_t mirror = 0;
    uint64_t parity = 0;
    uint64_t footer = 0;
    for (const RelationScrubReport& rel : report.relations) {
      damaged += rel.pages_damaged;
      mirror += rel.pages_repaired_mirror;
      parity += rel.pages_repaired_parity;
      footer += rel.footer_rebuilt ? 1 : 0;
    }
    reg.GetCounter("scrub.pages_scanned")->Inc(report.pages_scanned);
    reg.GetCounter("scrub.pages_damaged")->Inc(damaged);
    reg.GetCounter("scrub.repairs.mirror")->Inc(mirror);
    reg.GetCounter("scrub.repairs.parity")->Inc(parity);
    reg.GetCounter("scrub.repairs.footer")->Inc(footer);
    reg.GetCounter("scrub.pages_unrepairable")->Inc(report.pages_unrepairable);
    reg.GetCounter("scrub.sidecars_healed")->Inc(report.sidecars_healed);
    reg.GetCounter("scrub.relations_scanned")->Inc(report.relations_scanned);
    reg.GetCounter("scrub.relations_clean")->Inc(report.relations_clean);
    reg.GetCounter("scrub.relations_repaired")->Inc(report.relations_repaired);
    reg.GetCounter("scrub.relations_unrepairable")
        ->Inc(report.relations_unrepairable);
  }
  return report;
}

Result<ScrubReport> ScrubCatalog(StorageEnv* env,
                                 const ScrubOptions& options) {
  if (env == nullptr) {
    return Status::InvalidArgument("null storage env");
  }
  Result<CatalogManifest> manifest = ReadCurrentManifest(*env);
  if (!manifest.ok()) return manifest.status();
  return ScrubManifest(env, manifest.value(), options);
}

std::string FormatScrubReport(const ScrubReport& report) {
  std::ostringstream os;
  os << "scrub of generation " << report.generation << ": "
     << report.relations_scanned << " relation(s), " << report.pages_scanned
     << " page(s) scanned\n";
  for (const RelationScrubReport& rel : report.relations) {
    os << "  " << rel.name << " [" << RedundancyPolicyName(rel.policy)
       << "] ";
    if (rel.clean) {
      os << "clean";
    } else if (rel.repaired) {
      os << "repaired (" << rel.pages_repaired << " page(s)";
      if (rel.header_repaired) os << ", header";
      if (rel.footer_rebuilt) os << ", footer";
      os << ")";
    } else {
      os << "UNREPAIRABLE: " << rel.detail;
    }
    if (rel.sidecars_healed > 0) {
      os << ", healed " << rel.sidecars_healed << " sidecar(s)";
    }
    os << "\n";
  }
  os << (report.Clean() ? "catalog verified intact"
                        : "catalog has unrepairable damage")
     << ": " << report.relations_clean << " clean, "
     << report.relations_repaired << " repaired, "
     << report.relations_unrepairable << " unrepairable\n";
  return os.str();
}

}  // namespace griddecl
