#ifndef GRIDDECL_GRIDFILE_SCRUB_H_
#define GRIDDECL_GRIDFILE_SCRUB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "griddecl/gridfile/manifest.h"
#include "griddecl/gridfile/read_policy.h"

/// \file
/// Scrub-and-repair: walk a committed catalog, verify every page of every
/// relation against its checksums, and reconstruct what the redundancy
/// allows — the maintenance companion to the manifest layer, surfaced as
/// `declctl fsck`.
///
/// Repair sources, tried in order for each damaged page:
///
///   * a mirror copy of the page (mirror policy) — candidate bytes are
///     accepted only if they pass the page's own CRC;
///   * XOR of the parity page with the stripe's surviving data pages
///     (parity policy) — the reconstruction self-validates against the
///     data page's CRC, so even a partially damaged parity sidecar can be
///     tried safely;
///   * nothing (no redundancy) — the damage is reported, never papered
///     over.
///
/// A damaged header region repairs only from a mirror (parity stripes
/// cover pages, not the header); a damaged v2 footer is always
/// recomputable from an intact body, even without redundancy. A repaired
/// primary is written back ONLY when its final bytes match the manifest's
/// whole-file CRC bit-for-bit; sidecars that drifted from a healthy
/// primary are themselves rewritten ("healed"). Scrub never produces
/// silently-wrong data: every accepted byte was validated by some CRC.

namespace griddecl {

struct ScrubOptions {
  /// Write repaired files back to the env. When false, scrub is a dry run:
  /// same detection and reconstruction work, same report, no writes.
  bool repair = true;
  /// Read behavior for the damage census. The census runs through
  /// `PageStore` under this policy; the default (`ScrubReadPolicy()`)
  /// bypasses the pool — every probe reads the real bytes on disk — and
  /// reports damage as data instead of failing. `policy.retry` governs
  /// transient env errors during the census. Scrub never pools pages
  /// regardless of `policy.pin`.
  ReadPolicy policy = ScrubReadPolicy();
  /// Optional observability sink (non-owning). `ScrubManifest` records
  /// `scrub.pages_scanned`, `scrub.pages_damaged`, repair counts by source
  /// (`scrub.repairs.mirror` / `scrub.repairs.parity` /
  /// `scrub.repairs.footer`), `scrub.pages_unrepairable`,
  /// `scrub.sidecars_healed` and per-outcome relation counts — all
  /// mirrored from the `ScrubReport`, so scrub behaviour is identical
  /// either way.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Per-relation scrub outcome.
struct RelationScrubReport {
  std::string name;
  RelationRedundancy::Policy policy = RelationRedundancy::Policy::kNone;
  uint64_t num_pages = 0;
  /// Primary file verified bit-identical to the manifest on entry.
  bool clean = false;
  /// Damaged pages found in the primary.
  uint64_t pages_damaged = 0;
  /// Of those, reconstructed (mirror or parity) and CRC-verified.
  uint64_t pages_repaired = 0;
  /// Repair-source breakdown: pages_repaired == mirror + parity.
  uint64_t pages_repaired_mirror = 0;
  uint64_t pages_repaired_parity = 0;
  uint64_t pages_unrepairable = 0;
  bool header_damaged = false;
  bool header_repaired = false;
  /// Footer region recomputed from the (repaired) body.
  bool footer_rebuilt = false;
  /// Mirror/parity sidecar files rewritten from a healthy primary.
  uint64_t sidecars_healed = 0;
  /// Final primary matches the manifest checksum again (repair succeeded).
  bool repaired = false;
  /// Damage remains that no redundancy covers.
  bool unrepairable = false;
  /// First failure reason, when unrepairable.
  std::string detail;
};

/// Whole-catalog scrub outcome.
struct ScrubReport {
  uint64_t generation = 0;
  uint64_t relations_scanned = 0;
  uint64_t relations_clean = 0;
  uint64_t relations_repaired = 0;
  uint64_t relations_unrepairable = 0;
  uint64_t pages_scanned = 0;
  uint64_t pages_repaired = 0;
  uint64_t pages_unrepairable = 0;
  uint64_t sidecars_healed = 0;
  std::vector<RelationScrubReport> relations;

  /// True when every relation is verified intact (possibly after repair).
  bool Clean() const {
    return relations_unrepairable == 0 &&
           relations_clean + relations_repaired == relations_scanned;
  }
};

/// Scrubs every relation `manifest` references inside `env`.
Result<ScrubReport> ScrubManifest(StorageEnv* env,
                                  const CatalogManifest& manifest,
                                  const ScrubOptions& options = {});

/// Resolves the committed manifest (`ReadCurrentManifest`) and scrubs it.
Result<ScrubReport> ScrubCatalog(StorageEnv* env,
                                 const ScrubOptions& options = {});

/// Renders a human-readable multi-line summary (what `declctl fsck`
/// prints).
std::string FormatScrubReport(const ScrubReport& report);

}  // namespace griddecl

#endif  // GRIDDECL_GRIDFILE_SCRUB_H_
