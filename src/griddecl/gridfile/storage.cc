#include "griddecl/gridfile/storage.h"

#include <cstring>
#include <istream>
#include <limits>
#include <ostream>

#include "griddecl/common/math_util.h"

namespace griddecl {

namespace {

constexpr char kMagic[4] = {'G', 'D', 'C', 'L'};
constexpr uint32_t kVersion = 1;
constexpr uint32_t kPageHeaderBytes = 4;
constexpr uint32_t kMaxAttrNameLen = 4096;

void WriteU32(std::ostream& os, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  os.write(buf, 4);
}

void WriteU64(std::ostream& os, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  os.write(buf, 8);
}

void WriteF64(std::ostream& os, double v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  os.write(buf, 8);
}

bool ReadU32(std::istream& is, uint32_t* v) {
  char buf[4];
  if (!is.read(buf, 4)) return false;
  std::memcpy(v, buf, 4);
  return true;
}

bool ReadU64(std::istream& is, uint64_t* v) {
  char buf[8];
  if (!is.read(buf, 8)) return false;
  std::memcpy(v, buf, 8);
  return true;
}

bool ReadF64(std::istream& is, double* v) {
  char buf[8];
  if (!is.read(buf, 8)) return false;
  std::memcpy(v, buf, 8);
  return true;
}

uint32_t RecordBytes(uint32_t num_attrs) { return 8 * num_attrs; }

/// Records that fit in one page after the count header.
uint32_t PageCapacity(uint32_t page_size, uint32_t num_attrs) {
  if (page_size <= kPageHeaderBytes) return 0;
  return (page_size - kPageHeaderBytes) / RecordBytes(num_attrs);
}

}  // namespace

Status SaveGridFile(const GridFile& file, std::ostream& os,
                    uint32_t page_size_bytes) {
  const uint32_t k = file.schema().num_attributes();
  const uint32_t capacity = PageCapacity(page_size_bytes, k);
  if (capacity == 0) {
    return Status::InvalidArgument(
        "page size too small for one record of this schema");
  }
  os.write(kMagic, 4);
  WriteU32(os, kVersion);
  WriteU32(os, page_size_bytes);
  WriteU32(os, k);
  for (uint32_t i = 0; i < k; ++i) {
    const AttributeDef& a = file.schema().attribute(i);
    WriteU32(os, static_cast<uint32_t>(a.name.size()));
    os.write(a.name.data(), static_cast<std::streamsize>(a.name.size()));
    const std::vector<double>& b =
        file.partitioner().dim(i).raw_boundaries();
    WriteU32(os, static_cast<uint32_t>(b.size()));
    for (double v : b) WriteF64(os, v);
  }
  WriteU64(os, file.num_records());

  // Pages: records in id order, `capacity` per page, zero-padded.
  const uint64_t n = file.num_records();
  for (uint64_t first = 0; first < n; first += capacity) {
    const uint32_t in_page =
        static_cast<uint32_t>(std::min<uint64_t>(capacity, n - first));
    WriteU32(os, in_page);
    uint32_t written = kPageHeaderBytes;
    for (uint32_t r = 0; r < in_page; ++r) {
      const Record& rec = file.record(first + r);
      for (double v : rec) WriteF64(os, v);
      written += RecordBytes(k);
    }
    for (; written < page_size_bytes; ++written) os.put('\0');
  }
  if (!os.good()) return Status::Internal("stream write failed");
  return Status::Ok();
}

Result<GridFile> LoadGridFile(std::istream& is) {
  char magic[4];
  if (!is.read(magic, 4) || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::InvalidArgument("bad magic: not a griddecl file");
  }
  uint32_t version = 0;
  uint32_t page_size = 0;
  uint32_t k = 0;
  if (!ReadU32(is, &version) || !ReadU32(is, &page_size) || !ReadU32(is, &k)) {
    return Status::InvalidArgument("truncated header");
  }
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported version " +
                                   std::to_string(version));
  }
  if (k < 1 || k > kMaxDims) {
    return Status::InvalidArgument("attribute count out of range");
  }
  const uint32_t capacity = PageCapacity(page_size, k);
  if (capacity == 0) {
    return Status::InvalidArgument("page size inconsistent with schema");
  }

  std::vector<AttributeDef> attrs;
  std::vector<DomainPartition> parts;
  for (uint32_t i = 0; i < k; ++i) {
    uint32_t name_len = 0;
    if (!ReadU32(is, &name_len) || name_len == 0 ||
        name_len > kMaxAttrNameLen) {
      return Status::InvalidArgument("bad attribute name length");
    }
    std::string name(name_len, '\0');
    if (!is.read(name.data(), name_len)) {
      return Status::InvalidArgument("truncated attribute name");
    }
    uint32_t num_boundaries = 0;
    if (!ReadU32(is, &num_boundaries) || num_boundaries < 2 ||
        num_boundaries > (uint32_t{1} << 24)) {
      return Status::InvalidArgument("bad boundary count");
    }
    std::vector<double> boundaries(num_boundaries);
    for (double& v : boundaries) {
      if (!ReadF64(is, &v)) {
        return Status::InvalidArgument("truncated boundaries");
      }
    }
    attrs.push_back(
        {std::move(name), boundaries.front(), boundaries.back()});
    Result<DomainPartition> p =
        DomainPartition::FromBoundaries(std::move(boundaries));
    if (!p.ok()) return p.status();
    parts.push_back(std::move(p).value());
  }
  Result<Schema> schema = Schema::Create(std::move(attrs));
  if (!schema.ok()) return schema.status();
  Result<SpacePartitioner> sp = SpacePartitioner::Create(std::move(parts));
  if (!sp.ok()) return sp.status();
  Result<GridFile> file = GridFile::CreateWithPartitioner(
      std::move(schema).value(), std::move(sp).value());
  if (!file.ok()) return file.status();

  uint64_t num_records = 0;
  if (!ReadU64(is, &num_records)) {
    return Status::InvalidArgument("truncated record count");
  }
  uint64_t remaining = num_records;
  while (remaining > 0) {
    uint32_t in_page = 0;
    if (!ReadU32(is, &in_page) || in_page == 0 || in_page > capacity ||
        in_page > remaining) {
      return Status::InvalidArgument("bad page header");
    }
    for (uint32_t r = 0; r < in_page; ++r) {
      Record rec(k);
      for (double& v : rec) {
        if (!ReadF64(is, &v)) {
          return Status::InvalidArgument("truncated record data");
        }
      }
      Result<RecordId> id = file.value().Insert(std::move(rec));
      if (!id.ok()) return id.status();
    }
    // Skip page padding; a well-formed file always carries the full page.
    const uint32_t used = kPageHeaderBytes + in_page * RecordBytes(k);
    if (used > page_size) return Status::InvalidArgument("page overflow");
    is.ignore(page_size - used);
    if (static_cast<uint32_t>(is.gcount()) != page_size - used) {
      return Status::InvalidArgument("truncated page padding");
    }
    remaining -= in_page;
  }
  return file;
}

Result<std::vector<uint64_t>> PagesPerBucket(const GridFile& file,
                                             uint32_t page_size_bytes) {
  const uint32_t capacity =
      PageCapacity(page_size_bytes, file.schema().num_attributes());
  if (capacity == 0) {
    return Status::InvalidArgument(
        "page size too small for one record of this schema");
  }
  const GridSpec& grid = file.grid();
  std::vector<uint64_t> pages(static_cast<size_t>(grid.num_buckets()), 0);
  grid.ForEachBucket([&](const BucketCoords& c) {
    const uint64_t records = file.BucketContents(c).size();
    pages[static_cast<size_t>(grid.Linearize(c))] =
        records == 0 ? 0 : CeilDiv(records, capacity);
  });
  return pages;
}

}  // namespace griddecl
