#include "griddecl/gridfile/storage.h"

#include <cstring>
#include <istream>
#include <iterator>
#include <limits>
#include <ostream>

#include "griddecl/common/bytes.h"
#include "griddecl/common/crc32c.h"
#include "griddecl/common/math_util.h"

namespace griddecl {

namespace {

constexpr char kMagic[4] = {'G', 'D', 'C', 'L'};
constexpr char kFooterMagic[4] = {'G', 'D', 'F', 'T'};
constexpr uint32_t kMaxAttrNameLen = 4096;
constexpr uint32_t kMaxBoundaries = uint32_t{1} << 24;

uint32_t RecordBytes(uint32_t num_attrs) { return 8 * num_attrs; }

uint32_t PageHeaderBytes(uint32_t version) {
  return version == kFormatV1 ? kPageHeaderBytesV1 : kPageHeaderBytesV2;
}

bool KnownVersion(uint32_t version) {
  return version == kFormatV1 || version == kFormatV2 ||
         version == kFormatV3;
}

/// Bytes of fixed per-page overhead before record data: the page header
/// plus, for v3, the zone-map block.
uint32_t PageOverheadBytes(uint32_t version, uint32_t num_attrs) {
  uint32_t overhead = PageHeaderBytes(version);
  if (version == kFormatV3) overhead += kZoneMapBytesPerAttr * num_attrs;
  return overhead;
}

/// Records that fit in one page after the per-version fixed overhead.
uint32_t PageCapacity(uint32_t version, uint32_t page_size,
                      uint32_t num_attrs) {
  const uint32_t overhead = PageOverheadBytes(version, num_attrs);
  if (page_size <= overhead) return 0;
  return (page_size - overhead) / RecordBytes(num_attrs);
}

/// Full header parse: the layout plus the schema/partitioner material the
/// loader needs (ParseFileLayout discards the latter).
struct ParsedHeader {
  FileLayout layout;
  std::vector<AttributeDef> attrs;
  std::vector<DomainPartition> parts;
};

Result<ParsedHeader> ParseHeader(std::string_view bytes) {
  ByteReader r(bytes);
  char magic[4];
  if (!r.ReadBytes(magic, 4) || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::InvalidArgument("bad magic: not a griddecl file");
  }
  ParsedHeader h;
  FileLayout& layout = h.layout;
  uint32_t k = 0;
  if (!r.ReadU32(&layout.format_version) ||
      !r.ReadU32(&layout.page_size_bytes) || !r.ReadU32(&k)) {
    return Status::InvalidArgument("truncated header");
  }
  if (!KnownVersion(layout.format_version)) {
    return Status::InvalidArgument(
        "unsupported version " + std::to_string(layout.format_version));
  }
  if (k < 1 || k > kMaxDims) {
    return Status::InvalidArgument("attribute count out of range");
  }
  layout.num_attrs = k;
  if (layout.page_size_bytes > kMaxPageSizeBytes) {
    return Status::InvalidArgument("page size out of range");
  }
  layout.page_capacity =
      PageCapacity(layout.format_version, layout.page_size_bytes, k);
  if (layout.page_capacity == 0) {
    return Status::InvalidArgument("page size inconsistent with schema");
  }

  for (uint32_t i = 0; i < k; ++i) {
    uint32_t name_len = 0;
    if (!r.ReadU32(&name_len) || name_len == 0 ||
        name_len > kMaxAttrNameLen) {
      return Status::InvalidArgument("bad attribute name length");
    }
    std::string name;
    if (!r.ReadString(&name, name_len)) {
      return Status::InvalidArgument("truncated attribute name");
    }
    uint32_t num_boundaries = 0;
    if (!r.ReadU32(&num_boundaries) || num_boundaries < 2 ||
        num_boundaries > kMaxBoundaries) {
      return Status::InvalidArgument("bad boundary count");
    }
    if (r.remaining() < uint64_t{num_boundaries} * 8) {
      return Status::InvalidArgument("truncated boundaries");
    }
    std::vector<double> boundaries(num_boundaries);
    for (double& v : boundaries) r.ReadF64(&v);
    h.attrs.push_back(
        {std::move(name), boundaries.front(), boundaries.back()});
    Result<DomainPartition> p =
        DomainPartition::FromBoundaries(std::move(boundaries));
    if (!p.ok()) return p.status();
    h.parts.push_back(std::move(p).value());
  }
  if (!r.ReadU64(&layout.num_records)) {
    return Status::InvalidArgument("truncated record count");
  }
  if (layout.format_version != kFormatV1) {
    const size_t crc_end = r.pos();
    uint32_t stored_crc = 0;
    if (!r.ReadU32(&stored_crc)) {
      return Status::InvalidArgument("truncated header checksum");
    }
    if (stored_crc != Crc32c(bytes.substr(0, crc_end))) {
      return Status::InvalidArgument("header checksum mismatch");
    }
  }
  layout.header_bytes = r.pos();

  const uint64_t n = layout.num_records;
  layout.num_pages = n == 0 ? 0 : (n - 1) / layout.page_capacity + 1;
  const uint64_t footer =
      layout.format_version != kFormatV1 ? kFooterBytesV2 : 0;
  if (layout.num_pages >
      (std::numeric_limits<uint64_t>::max() - layout.header_bytes - footer) /
          layout.page_size_bytes) {
    return Status::InvalidArgument("record count implies impossible size");
  }
  layout.footer_offset =
      layout.header_bytes + layout.num_pages * layout.page_size_bytes;
  layout.expected_file_size = layout.footer_offset + footer;
  return h;
}

/// Core verify over exactly one page's bytes; shared by the whole-file
/// and single-page entry points.
Status VerifyPageBytesImpl(std::string_view page_bytes,
                           const FileLayout& layout, uint64_t page,
                           bool check_crc) {
  if (page >= layout.num_pages) {
    return Status::InvalidArgument("page index out of range");
  }
  if (page_bytes.size() != layout.page_size_bytes) {
    return Status::Internal("short page read");
  }
  uint32_t record_count = 0;
  std::memcpy(&record_count, page_bytes.data(), 4);
  if (record_count != layout.PageRecords(page)) {
    return Status::InvalidArgument("bad page record count");
  }
  if (layout.format_version != kFormatV1 && check_crc) {
    uint32_t stored_crc = 0;
    std::memcpy(&stored_crc, page_bytes.data() + 4, 4);
    // CRC of the page with the crc field itself zeroed.
    const char zeros[4] = {0, 0, 0, 0};
    uint32_t crc = Crc32c(page_bytes.data(), 4);
    crc = Crc32c(zeros, 4, crc);
    crc = Crc32c(page_bytes.data() + 8, layout.page_size_bytes - 8, crc);
    if (stored_crc != crc) {
      return Status::InvalidArgument("page checksum mismatch");
    }
  }
  return Status::Ok();
}

Status VerifyPageImpl(std::string_view bytes, const FileLayout& layout,
                      uint64_t page, bool check_crc) {
  if (page >= layout.num_pages) {
    return Status::InvalidArgument("page index out of range");
  }
  const uint64_t off = layout.PageOffset(page);
  if (off + layout.page_size_bytes > bytes.size()) {
    return Status::InvalidArgument("page truncated");
  }
  return VerifyPageBytesImpl(bytes.substr(off, layout.page_size_bytes),
                             layout, page, check_crc);
}

Status VerifyFooterImpl(std::string_view bytes, const FileLayout& layout,
                        bool check_crc) {
  if (layout.format_version == kFormatV1) return Status::Ok();
  const uint64_t off = layout.footer_offset;
  if (off + kFooterBytesV2 > bytes.size()) {
    return Status::InvalidArgument("footer truncated");
  }
  if (std::memcmp(bytes.data() + off, kFooterMagic, 4) != 0) {
    return Status::InvalidArgument("bad footer magic");
  }
  uint64_t n = 0;
  uint64_t pages = 0;
  std::memcpy(&n, bytes.data() + off + 4, 8);
  std::memcpy(&pages, bytes.data() + off + 12, 8);
  if (n != layout.num_records || pages != layout.num_pages) {
    return Status::InvalidArgument("footer disagrees with header");
  }
  if (check_crc) {
    uint32_t file_crc = 0;
    uint32_t footer_crc = 0;
    std::memcpy(&file_crc, bytes.data() + off + 20, 4);
    std::memcpy(&footer_crc, bytes.data() + off + 24, 4);
    if (footer_crc != Crc32c(bytes.substr(off, kFooterBytesV2 - 4))) {
      return Status::InvalidArgument("footer checksum mismatch");
    }
    if (file_crc != Crc32c(bytes.substr(0, off))) {
      return Status::InvalidArgument("whole-file checksum mismatch");
    }
  }
  return Status::Ok();
}

}  // namespace

uint32_t FileLayout::PageRecords(uint64_t page) const {
  if (page >= num_pages) return 0;
  if (page + 1 < num_pages) return page_capacity;
  return static_cast<uint32_t>(num_records - page * page_capacity);
}

Result<FileLayout> ParseFileLayout(std::string_view bytes) {
  Result<ParsedHeader> h = ParseHeader(bytes);
  if (!h.ok()) return h.status();
  return h.value().layout;
}

uint32_t PageCapacityFor(uint32_t format_version, uint32_t page_size_bytes,
                         uint32_t num_attrs) {
  if (!KnownVersion(format_version) || num_attrs == 0) return 0;
  return PageCapacity(format_version, page_size_bytes, num_attrs);
}

Status VerifyFilePage(std::string_view bytes, const FileLayout& layout,
                      uint64_t page) {
  return VerifyPageImpl(bytes, layout, page, /*check_crc=*/true);
}

Status VerifyPageBytes(std::string_view page_bytes, const FileLayout& layout,
                       uint64_t page) {
  return VerifyPageBytesImpl(page_bytes, layout, page, /*check_crc=*/true);
}

bool DecodedPage::MayMatch(const std::vector<double>& lo,
                           const std::vector<double>& hi) const {
  if (num_records == 0) return false;
  for (uint32_t a = 0; a < num_attrs && a < lo.size() && a < hi.size();
       ++a) {
    if (zone_max[a] < lo[a] || zone_min[a] > hi[a]) return false;
  }
  return true;
}

Result<DecodedPage> DecodePageBytes(std::string_view page_bytes,
                                    const FileLayout& layout,
                                    uint64_t page) {
  if (page >= layout.num_pages) {
    return Status::InvalidArgument("page index out of range");
  }
  if (page_bytes.size() != layout.page_size_bytes) {
    return Status::Internal("short page read");
  }
  const uint32_t k = layout.num_attrs;
  DecodedPage out;
  out.num_records = layout.PageRecords(page);
  out.num_attrs = k;
  out.columns.resize(uint64_t{out.num_records} * k);
  out.zone_min.assign(k, 0.0);
  out.zone_max.assign(k, 0.0);
  if (out.num_records == 0) return out;

  if (layout.format_version == kFormatV3) {
    // Columns are already contiguous on disk; zone maps are stored.
    const char* zones = page_bytes.data() + kPageHeaderBytesV3;
    const char* segments = zones + uint64_t{k} * kZoneMapBytesPerAttr;
    for (uint32_t a = 0; a < k; ++a) {
      std::memcpy(&out.zone_min[a], zones + uint64_t{a} * 16, 8);
      std::memcpy(&out.zone_max[a], zones + uint64_t{a} * 16 + 8, 8);
      std::memcpy(out.columns.data() + uint64_t{a} * out.num_records,
                  segments + uint64_t{a} * layout.page_capacity * 8,
                  uint64_t{out.num_records} * 8);
    }
    return out;
  }

  // v1/v2: transpose the row-major records and derive zone maps.
  const char* rows =
      page_bytes.data() + PageHeaderBytes(layout.format_version);
  for (uint32_t a = 0; a < k; ++a) {
    double* col = out.columns.data() + uint64_t{a} * out.num_records;
    double lo = 0.0;
    double hi = 0.0;
    for (uint32_t r = 0; r < out.num_records; ++r) {
      double v = 0.0;
      std::memcpy(&v, rows + (uint64_t{r} * k + a) * 8, 8);
      col[r] = v;
      if (r == 0) {
        lo = hi = v;
      } else {
        if (v < lo) lo = v;
        if (v > hi) hi = v;
      }
    }
    out.zone_min[a] = lo;
    out.zone_max[a] = hi;
  }
  return out;
}

Status VerifyFileFooter(std::string_view bytes, const FileLayout& layout) {
  return VerifyFooterImpl(bytes, layout, /*check_crc=*/true);
}

std::string BuildFileFooter(const FileLayout& layout, std::string_view body) {
  std::string footer;
  footer.reserve(kFooterBytesV2);
  footer.append(kFooterMagic, 4);
  AppendU64(&footer, layout.num_records);
  AppendU64(&footer, layout.num_pages);
  AppendU32(&footer, Crc32c(body));
  AppendU32(&footer, Crc32c(footer));
  return footer;
}

Result<std::string> SerializeGridFile(const GridFile& file,
                                      const SaveOptions& options) {
  const uint32_t version = options.format_version;
  if (!KnownVersion(version)) {
    return Status::InvalidArgument("unsupported format version " +
                                   std::to_string(version));
  }
  const uint32_t page_size = options.page_size_bytes;
  if (page_size > kMaxPageSizeBytes) {
    return Status::InvalidArgument("page size out of range");
  }
  const uint32_t k = file.schema().num_attributes();
  const uint32_t capacity = PageCapacity(version, page_size, k);
  if (capacity == 0) {
    return Status::InvalidArgument(
        "page size too small for one record of this schema");
  }

  std::string out;
  out.append(kMagic, 4);
  AppendU32(&out, version);
  AppendU32(&out, page_size);
  AppendU32(&out, k);
  for (uint32_t i = 0; i < k; ++i) {
    const AttributeDef& a = file.schema().attribute(i);
    AppendU32(&out, static_cast<uint32_t>(a.name.size()));
    out.append(a.name);
    const std::vector<double>& b =
        file.partitioner().dim(i).raw_boundaries();
    AppendU32(&out, static_cast<uint32_t>(b.size()));
    for (double v : b) AppendF64(&out, v);
  }
  AppendU64(&out, file.num_records());
  if (version != kFormatV1) AppendU32(&out, Crc32c(out));

  // Pages: records in id order, `capacity` per page, zero-padded. The
  // writer always packs pages full so the layout is deterministic.
  const uint64_t n = file.num_records();
  for (uint64_t first = 0; first < n; first += capacity) {
    const uint32_t in_page =
        static_cast<uint32_t>(std::min<uint64_t>(capacity, n - first));
    const size_t page_start = out.size();
    AppendU32(&out, in_page);
    if (version != kFormatV1) AppendU32(&out, 0);  // CRC patched below.
    if (version == kFormatV3) {
      // Zone maps, then column segments at capacity stride.
      for (uint32_t a = 0; a < k; ++a) {
        double lo = file.record(first)[a];
        double hi = lo;
        for (uint32_t r = 1; r < in_page; ++r) {
          const double v = file.record(first + r)[a];
          if (v < lo) lo = v;
          if (v > hi) hi = v;
        }
        AppendF64(&out, lo);
        AppendF64(&out, hi);
      }
      for (uint32_t a = 0; a < k; ++a) {
        const size_t segment_start = out.size();
        for (uint32_t r = 0; r < in_page; ++r) {
          AppendF64(&out, file.record(first + r)[a]);
        }
        out.resize(segment_start + uint64_t{capacity} * 8, '\0');
      }
    } else {
      for (uint32_t r = 0; r < in_page; ++r) {
        const Record& rec = file.record(first + r);
        for (double v : rec) AppendF64(&out, v);
      }
    }
    out.resize(page_start + page_size, '\0');
    if (version != kFormatV1) {
      PatchU32(&out, page_start + 4,
               Crc32c(std::string_view(out).substr(page_start, page_size)));
    }
  }

  if (version != kFormatV1) {
    FileLayout layout;
    layout.num_records = n;
    layout.num_pages = n == 0 ? 0 : (n - 1) / capacity + 1;
    out += BuildFileFooter(layout, out);
  }
  if (options.metrics != nullptr) {
    obs::MetricsRegistry& reg = *options.metrics;
    reg.GetCounter("storage.saves")->Inc();
    reg.GetCounter("storage.pages_written")
        ->Inc(n == 0 ? 0 : (n - 1) / capacity + 1);
    reg.GetCounter("storage.bytes_written")->Inc(out.size());
  }
  return out;
}

Status SaveGridFile(const GridFile& file, std::ostream& os,
                    const SaveOptions& options) {
  Result<std::string> bytes = SerializeGridFile(file, options);
  if (!bytes.ok()) return bytes.status();
  os.write(bytes.value().data(),
           static_cast<std::streamsize>(bytes.value().size()));
  if (!os.good()) return Status::Internal("stream write failed");
  return Status::Ok();
}

Status SaveGridFile(const GridFile& file, std::ostream& os,
                    uint32_t page_size_bytes) {
  SaveOptions options;
  options.page_size_bytes = page_size_bytes;
  return SaveGridFile(file, os, options);
}

Result<GridFile> ParseGridFile(std::string_view bytes,
                               const LoadOptions& options,
                               LoadReport* report) {
  Result<ParsedHeader> header = ParseHeader(bytes);
  if (!header.ok()) return header.status();
  const FileLayout& layout = header.value().layout;
  // Strict unless the policy asks for salvage/report semantics.
  const bool salvage =
      options.policy.on_damage != ReadPolicy::OnDamage::kFail;
  const bool verify = options.policy.verify;

  LoadReport local_report;
  LoadReport& rep = report != nullptr ? *report : local_report;
  rep = LoadReport();
  rep.format_version = layout.format_version;
  rep.checksummed = layout.format_version != kFormatV1;
  rep.num_pages = layout.num_pages;

  if (bytes.size() != layout.expected_file_size) {
    if (!salvage) {
      return Status::InvalidArgument(
          bytes.size() < layout.expected_file_size
              ? "truncated file"
              : "trailing garbage after final page");
    }
    rep.size_ok = false;
  }

  Result<Schema> schema = Schema::Create(std::move(header.value().attrs));
  if (!schema.ok()) return schema.status();
  Result<SpacePartitioner> sp =
      SpacePartitioner::Create(std::move(header.value().parts));
  if (!sp.ok()) return sp.status();
  Result<GridFile> file = GridFile::CreateWithPartitioner(
      std::move(schema).value(), std::move(sp).value());
  if (!file.ok()) return file.status();

  const uint32_t k = layout.num_attrs;
  const uint32_t page_header = PageHeaderBytes(layout.format_version);
  auto report_damage = [&](uint64_t page, const char* reason) {
    ++rep.damaged_page_count;
    if (rep.damaged_pages.size() < kMaxReportedDamage) {
      rep.damaged_pages.push_back({page, reason});
    }
    rep.records_lost += layout.PageRecords(page);
  };

  for (uint64_t page = 0; page < layout.num_pages; ++page) {
    const uint64_t off = layout.PageOffset(page);
    if (off + layout.page_size_bytes > bytes.size()) {
      // File ends here; in salvage mode account for the whole missing
      // tail at once (a lying v1 record count must not drive a huge loop).
      if (!salvage) return Status::InvalidArgument("truncated file");
      rep.damaged_page_count += layout.num_pages - page;
      if (rep.damaged_pages.size() < kMaxReportedDamage) {
        rep.damaged_pages.push_back({page, "page truncated"});
      }
      rep.records_lost +=
          layout.num_records - page * uint64_t{layout.page_capacity};
      break;
    }
    const Status page_status = VerifyPageImpl(bytes, layout, page, verify);
    if (!page_status.ok()) {
      if (!salvage) return page_status;
      report_damage(page, page_status.message().c_str());
      continue;
    }
    const uint32_t in_page = layout.PageRecords(page);
    if (layout.format_version == kFormatV3) {
      // Gather each record across the page's column segments.
      const char* segments = bytes.data() + off + kPageHeaderBytesV3 +
                             uint64_t{k} * kZoneMapBytesPerAttr;
      for (uint32_t r = 0; r < in_page; ++r) {
        Record rec(k);
        for (uint32_t a = 0; a < k; ++a) {
          std::memcpy(
              &rec[a],
              segments + (uint64_t{a} * layout.page_capacity + r) * 8, 8);
        }
        Result<RecordId> id = file.value().Insert(std::move(rec));
        if (!id.ok()) return id.status();
        ++rep.records_loaded;
      }
    } else {
      const char* rec_bytes = bytes.data() + off + page_header;
      for (uint32_t r = 0; r < in_page; ++r) {
        Record rec(k);
        std::memcpy(rec.data(), rec_bytes + uint64_t{r} * RecordBytes(k),
                    RecordBytes(k));
        Result<RecordId> id = file.value().Insert(std::move(rec));
        if (!id.ok()) return id.status();
        ++rep.records_loaded;
      }
    }
  }

  if (layout.format_version != kFormatV1) {
    const Status footer_status = VerifyFooterImpl(bytes, layout, verify);
    if (!footer_status.ok()) {
      if (!salvage) return footer_status;
      rep.footer_ok = false;
    }
  }
  // Metrics mirror the report on loads that completed the page scan, so
  // instrumentation provably cannot change what gets parsed.
  if (options.metrics != nullptr) {
    obs::MetricsRegistry& reg = *options.metrics;
    reg.GetCounter("storage.loads")->Inc();
    reg.GetCounter("storage.pages_read")->Inc(rep.num_pages);
    reg.GetCounter("storage.pages_damaged")->Inc(rep.damaged_page_count);
    reg.GetCounter("storage.records_loaded")->Inc(rep.records_loaded);
    reg.GetCounter("storage.records_lost")->Inc(rep.records_lost);
    reg.GetCounter("storage.footers_damaged")->Inc(rep.footer_ok ? 0 : 1);
  }
  return file;
}

Result<GridFile> LoadGridFile(std::istream& is, const LoadOptions& options,
                              LoadReport* report) {
  std::string bytes(std::istreambuf_iterator<char>(is), {});
  return ParseGridFile(bytes, options, report);
}

Result<GridFile> LoadGridFile(std::istream& is) {
  return LoadGridFile(is, LoadOptions{});
}

Result<std::vector<uint64_t>> PagesPerBucket(const GridFile& file,
                                             uint32_t page_size_bytes) {
  const uint32_t capacity = PageCapacity(
      kFormatV1, page_size_bytes, file.schema().num_attributes());
  if (capacity == 0) {
    return Status::InvalidArgument(
        "page size too small for one record of this schema");
  }
  const GridSpec& grid = file.grid();
  std::vector<uint64_t> pages(static_cast<size_t>(grid.num_buckets()), 0);
  grid.ForEachBucket([&](const BucketCoords& c) {
    const uint64_t records = file.BucketContents(c).size();
    pages[static_cast<size_t>(grid.Linearize(c))] =
        records == 0 ? 0 : CeilDiv(records, capacity);
  });
  return pages;
}

}  // namespace griddecl
