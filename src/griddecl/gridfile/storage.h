#ifndef GRIDDECL_GRIDFILE_STORAGE_H_
#define GRIDDECL_GRIDFILE_STORAGE_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "griddecl/common/status.h"
#include "griddecl/gridfile/grid_file.h"

/// \file
/// Binary, paged, versioned persistence for `GridFile`.
///
/// A declustered relation outlives the process that loaded it; this module
/// writes a grid file (schema, learned partition boundaries, records) to a
/// byte stream and reads it back with identical record ids and bucket
/// placement. Records are packed in id order into fixed-size pages — the
/// same unit the I/O simulator charges for. Separately, `PagesPerBucket`
/// computes the page-granular occupancy of a *bucket-clustered* layout
/// (what the storage engine of a parallel database would use on each
/// disk), so cost models can charge multi-page buckets properly.
///
/// Format (little-endian, version 1):
///
///   [magic "GDCL"] [u32 version] [u32 page_size] [u32 num_attrs]
///   per attribute: [u32 name_len][name bytes][u32 num_boundaries]
///                  [f64 boundaries...]
///   [u64 num_records]
///   pages: each page is exactly page_size bytes:
///          [u32 record_count][records: num_attrs f64 each][zero padding]
///
/// Records appear in id order, so reloading preserves ids and (boundaries
/// being identical) bucket placement.

namespace griddecl {

/// Default page size; also the `DiskParams::bucket_kb` unit's sibling.
inline constexpr uint32_t kDefaultPageSizeBytes = 4096;

/// Writes `file` to `os`. `page_size_bytes` must fit the page header plus
/// at least one record (4 + 8 * num_attrs bytes).
Status SaveGridFile(const GridFile& file, std::ostream& os,
                    uint32_t page_size_bytes = kDefaultPageSizeBytes);

/// Reads a grid file previously written by `SaveGridFile`. Fails with
/// kInvalidArgument on any malformed or truncated input (never crashes).
Result<GridFile> LoadGridFile(std::istream& is);

/// Number of `page_size_bytes` pages each bucket occupies given its record
/// count (size = num_buckets, row-major; empty buckets occupy 0 pages).
Result<std::vector<uint64_t>> PagesPerBucket(const GridFile& file,
                                             uint32_t page_size_bytes);

}  // namespace griddecl

#endif  // GRIDDECL_GRIDFILE_STORAGE_H_
