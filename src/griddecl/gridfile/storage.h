#ifndef GRIDDECL_GRIDFILE_STORAGE_H_
#define GRIDDECL_GRIDFILE_STORAGE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "griddecl/common/status.h"
#include "griddecl/gridfile/grid_file.h"
#include "griddecl/gridfile/read_policy.h"
#include "griddecl/obs/metrics.h"

/// \file
/// Binary, paged, versioned persistence for `GridFile`.
///
/// A declustered relation outlives the process that loaded it; this module
/// writes a grid file (schema, learned partition boundaries, records) to a
/// byte stream and reads it back with identical record ids and bucket
/// placement. Records are packed in id order into fixed-size pages — the
/// same unit the I/O simulator charges for. Separately, `PagesPerBucket`
/// computes the page-granular occupancy of a *bucket-clustered* layout
/// (what the storage engine of a parallel database would use on each
/// disk), so cost models can charge multi-page buckets properly.
///
/// Three format versions (all little-endian):
///
/// Version 1 (legacy, loaded transparently, written on request):
///
///   [magic "GDCL"] [u32 version=1] [u32 page_size] [u32 num_attrs]
///   per attribute: [u32 name_len][name bytes][u32 num_boundaries]
///                  [f64 boundaries...]
///   [u64 num_records]
///   pages: each page is exactly page_size bytes:
///          [u32 record_count][records: num_attrs f64 each][zero padding]
///
/// Version 2 (self-verifying, row-major):
///
///   header: as v1 with version=2, then [u32 header_crc] — CRC32C of every
///           preceding header byte.
///   pages:  each page is exactly page_size bytes:
///           [u32 record_count][u32 page_crc][records...][zero padding]
///           page_crc is the CRC32C of the whole page with the crc field
///           itself zeroed, so a page verifies in isolation.
///   footer: [magic "GDFT"][u64 num_records][u64 num_pages]
///           [u32 file_crc]   — CRC32C of every byte before the footer
///           [u32 footer_crc] — CRC32C of the footer bytes before it
///
/// Version 3 (default; self-verifying, column-major with zone maps):
///
///   header and footer: identical to v2 (version=3).
///   pages:  each page is exactly page_size bytes:
///           [u32 record_count][u32 page_crc]
///           zone maps, one per attribute: [f64 min][f64 max]
///           column segments, one per attribute: capacity f64 slots
///           (first record_count hold that attribute's values in id
///           order, rest zero), then zero padding.
///           page_crc as in v2. Segments sit at a fixed stride —
///           attribute a's values start at byte
///           8 + 16*num_attrs + a*capacity*8 — so a scan reads each
///           attribute as a contiguous vector and the per-page min/max
///           lets range predicates skip whole pages without touching the
///           columns.
///
/// The writer always packs pages full: page i holds exactly
/// min(capacity, num_records - i * capacity) records, so the byte layout
/// is a pure function of (schema, boundaries, num_records, page_size) and
/// all loaders reject partial pages and trailing garbage outright.
/// Records appear in id order, so reloading preserves ids and (boundaries
/// being identical) bucket placement.

namespace griddecl {

/// Default page size; also the `DiskParams::bucket_kb` unit's sibling.
inline constexpr uint32_t kDefaultPageSizeBytes = 4096;

/// Supported format versions.
inline constexpr uint32_t kFormatV1 = 1;
inline constexpr uint32_t kFormatV2 = 2;
inline constexpr uint32_t kFormatV3 = 3;
inline constexpr uint32_t kLatestFormatVersion = kFormatV3;

/// Page header sizes per version (v3 shares the v2 header).
inline constexpr uint32_t kPageHeaderBytesV1 = 4;
inline constexpr uint32_t kPageHeaderBytesV2 = 8;
inline constexpr uint32_t kPageHeaderBytesV3 = 8;

/// Per-attribute zone-map bytes in a v3 page: [f64 min][f64 max].
inline constexpr uint32_t kZoneMapBytesPerAttr = 16;

/// Size of the v2/v3 footer: magic + num_records + num_pages + 2 CRCs.
inline constexpr uint64_t kFooterBytesV2 = 4 + 8 + 8 + 4 + 4;

/// Upper bound on page_size accepted by the parsers (defense against
/// adversarial headers demanding absurd allocations).
inline constexpr uint32_t kMaxPageSizeBytes = 1u << 26;

/// Records that fit in one page of the given format: the page size minus
/// the page header (and, for v3, the zone-map block) divided by the
/// record width. 0 when the page cannot hold a single record.
uint32_t PageCapacityFor(uint32_t format_version, uint32_t page_size_bytes,
                         uint32_t num_attrs);

struct SaveOptions {
  uint32_t page_size_bytes = kDefaultPageSizeBytes;
  /// kFormatV1, kFormatV2 or kFormatV3.
  uint32_t format_version = kLatestFormatVersion;
  /// Optional observability sink (non-owning). A successful serialization
  /// records `storage.saves`, `storage.pages_written` and
  /// `storage.bytes_written`. Null means no instrumentation; the produced
  /// bytes are identical either way.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Serializes `file` to bytes. `page_size_bytes` must fit the page header
/// plus at least one record.
Result<std::string> SerializeGridFile(const GridFile& file,
                                      const SaveOptions& options = {});

/// Writes `file` to `os` in the latest format version.
Status SaveGridFile(const GridFile& file, std::ostream& os,
                    uint32_t page_size_bytes = kDefaultPageSizeBytes);

/// Writes `file` to `os` with explicit format options.
Status SaveGridFile(const GridFile& file, std::ostream& os,
                    const SaveOptions& options);

/// One damaged page found while loading in best-effort mode.
struct PageDamage {
  uint64_t page_index = 0;
  std::string reason;
};

/// How many damaged pages `LoadReport` itemizes before switching to
/// counting only (bounds report memory on adversarial inputs).
inline constexpr size_t kMaxReportedDamage = 64;

/// Outcome details of a load, populated on request.
struct LoadReport {
  uint32_t format_version = 0;
  /// True when the file carries checksums (v2).
  bool checksummed = false;
  uint64_t num_pages = 0;
  /// Total damaged pages (best-effort mode); the first kMaxReportedDamage
  /// are itemized in `damaged_pages`.
  uint64_t damaged_page_count = 0;
  std::vector<PageDamage> damaged_pages;
  uint64_t records_loaded = 0;
  /// Records residing in damaged (skipped) pages. When non-zero, record
  /// ids of the returned file are compacted: they no longer match the
  /// writer's ids (documented salvage semantics).
  uint64_t records_lost = 0;
  /// v2 footer verified (structure and, when requested, CRCs).
  bool footer_ok = true;
  /// File had exactly the expected byte size (no truncation, no trailing
  /// garbage).
  bool size_ok = true;

  bool Clean() const {
    return damaged_page_count == 0 && records_lost == 0 && footer_ok &&
           size_ok;
  }
};

struct LoadOptions {
  /// How the load reads: `policy.verify` gates CRC checks of v2/v3 files
  /// (v1 has none to verify); `policy.on_damage` picks strict (kFail:
  /// any damage rejects the whole file) versus salvage (kSalvage /
  /// kReport: keep every verifiable page, report the damage; only an
  /// unusable header region is fatal). `policy.pin` and `policy.retry`
  /// are ignored here — a bulk load owns its bytes already.
  ReadPolicy policy;
  /// Optional observability sink (non-owning). A load that reaches the
  /// page scan records `storage.loads`, `storage.pages_read`,
  /// `storage.pages_damaged`, `storage.records_loaded`,
  /// `storage.records_lost` and `storage.footers_damaged` — mirrored from
  /// the `LoadReport`, so the parse result is identical either way. Loads
  /// rejected before the scan (unusable header, strict-mode damage)
  /// record nothing.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Parses a grid file previously written by `SaveGridFile`. Fails with
/// kInvalidArgument on any malformed or truncated input (never crashes).
Result<GridFile> ParseGridFile(std::string_view bytes,
                               const LoadOptions& options = {},
                               LoadReport* report = nullptr);

/// Reads a grid file from a stream; strict, checksum-verifying.
Result<GridFile> LoadGridFile(std::istream& is);

/// Reads a grid file from a stream with explicit load options.
Result<GridFile> LoadGridFile(std::istream& is, const LoadOptions& options,
                              LoadReport* report = nullptr);

// --- Format introspection (scrub / fsck support) --------------------------

/// Byte-level layout of a serialized grid file, recovered from the header
/// region alone — valid even when pages or footer are damaged.
struct FileLayout {
  uint32_t format_version = 0;
  uint32_t page_size_bytes = 0;
  uint32_t num_attrs = 0;
  uint64_t num_records = 0;
  /// Records per page.
  uint32_t page_capacity = 0;
  uint64_t num_pages = 0;
  /// Byte offset of page 0 (== size of the header region).
  uint64_t header_bytes = 0;
  /// Byte offset of the footer (v2) / end of data (v1).
  uint64_t footer_offset = 0;
  /// Exact size a pristine file has.
  uint64_t expected_file_size = 0;

  uint64_t PageOffset(uint64_t page) const {
    return header_bytes + page * page_size_bytes;
  }
  /// Record count the writer put in `page` (full pages, remainder last).
  uint32_t PageRecords(uint64_t page) const;
};

/// Parses and validates the header region of `bytes` (structure, bounds,
/// and — for v2 — the header CRC). Page and footer bytes are not touched,
/// so a layout can be recovered from a file with damaged pages.
Result<FileLayout> ParseFileLayout(std::string_view bytes);

/// Verifies page `page` of `bytes` under `layout`: page in bounds, record
/// count exactly what the writer lays out, CRC match (v2/v3).
Status VerifyFilePage(std::string_view bytes, const FileLayout& layout,
                      uint64_t page);

/// Verifies one page given only that page's bytes (the unit a resilient
/// reader fetches with `ReadAt`): exact page size, record count, CRC
/// match (v2/v3). The single verify path shared by load, scrub and serve.
Status VerifyPageBytes(std::string_view page_bytes, const FileLayout& layout,
                       uint64_t page);

/// Verifies the v2/v3 footer of `bytes` (structure and CRCs).
Status VerifyFileFooter(std::string_view bytes, const FileLayout& layout);

/// Serializes the v2/v3 footer for a file whose pre-footer bytes are
/// `body` (used by scrub to recompute a damaged footer bit-identically).
std::string BuildFileFooter(const FileLayout& layout, std::string_view body);

// --- Page decode (the unit the serve scan consumes) -----------------------

/// One page decoded to columnar form: attribute-major value vectors plus
/// per-attribute min/max. v3 pages memcpy their column segments and read
/// the stored zone maps; v1/v2 pages are transposed and their zone maps
/// computed on the fly, so every format answers the same scan interface.
struct DecodedPage {
  uint32_t num_records = 0;
  uint32_t num_attrs = 0;
  /// Attribute-major: attribute `a`'s values occupy
  /// [a * num_records, (a + 1) * num_records).
  std::vector<double> columns;
  /// Per-attribute minimum/maximum over the page's records.
  std::vector<double> zone_min;
  std::vector<double> zone_max;

  const double* column(uint32_t a) const {
    return columns.data() + uint64_t{a} * num_records;
  }
  /// False when the zone maps prove no record can fall inside the closed
  /// box [lo, hi] — the page-skip test of a range scan.
  bool MayMatch(const std::vector<double>& lo,
                const std::vector<double>& hi) const;
};

/// Decodes one page from its bytes (exactly `layout.page_size_bytes`).
/// Purely structural — callers verify first if they want CRC protection.
Result<DecodedPage> DecodePageBytes(std::string_view page_bytes,
                                    const FileLayout& layout, uint64_t page);

// --------------------------------------------------------------------------

/// Number of `page_size_bytes` pages each bucket occupies given its record
/// count (size = num_buckets, row-major; empty buckets occupy 0 pages).
/// Stays in the v1 (4-byte header) page unit: this is the cost model's
/// bucket-clustered layout, not the self-verifying serialization above.
Result<std::vector<uint64_t>> PagesPerBucket(const GridFile& file,
                                             uint32_t page_size_bytes);

}  // namespace griddecl

#endif  // GRIDDECL_GRIDFILE_STORAGE_H_
