#include "griddecl/gridfile/storage_env.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <mutex>
#include <system_error>

namespace griddecl {

namespace {

namespace fs = std::filesystem;

/// SplitMix64 — the repo's standard cheap deterministic hash (same family
/// the fault model uses), here deciding tear lengths and bit flips.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

Status InvalidName(const std::string& name) {
  return Status::InvalidArgument("invalid env file name '" + name + "'");
}

}  // namespace

bool IsValidEnvFileName(std::string_view name) {
  if (name.empty() || name.size() > 255) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) return false;
  }
  // "." and ".." are directory names, not files.
  return name != "." && name != "..";
}

// --- StorageEnv defaults --------------------------------------------------

Result<std::string> StorageEnv::ReadAt(const std::string& name,
                                       uint64_t offset,
                                       uint64_t length) const {
  Result<std::string> data = ReadFile(name);
  if (!data.ok()) return data.status();
  if (offset > data.value().size() ||
      length > data.value().size() - offset) {
    return Status::InvalidArgument(
        "read of [" + std::to_string(offset) + ", " +
        std::to_string(offset + length) + ") past end of '" + name + "' (" +
        std::to_string(data.value().size()) + " bytes)");
  }
  return data.value().substr(static_cast<size_t>(offset),
                             static_cast<size_t>(length));
}

// --- MemEnv ---------------------------------------------------------------

MemEnv::MemEnv(const MemEnv& other) {
  std::shared_lock lock(other.mu_);
  files_ = other.files_;
}

MemEnv& MemEnv::operator=(const MemEnv& other) {
  if (this == &other) return *this;
  std::map<std::string, std::string> copy;
  {
    std::shared_lock lock(other.mu_);
    copy = other.files_;
  }
  std::unique_lock lock(mu_);
  files_ = std::move(copy);
  return *this;
}

Result<std::string> MemEnv::ReadFile(const std::string& name) const {
  std::shared_lock lock(mu_);
  const auto it = files_.find(name);
  if (it == files_.end()) {
    return Status::NotFound("no file named '" + name + "'");
  }
  return it->second;
}

Result<std::string> MemEnv::ReadAt(const std::string& name, uint64_t offset,
                                   uint64_t length) const {
  std::shared_lock lock(mu_);
  const auto it = files_.find(name);
  if (it == files_.end()) {
    return Status::NotFound("no file named '" + name + "'");
  }
  const std::string& data = it->second;
  if (offset > data.size() || length > data.size() - offset) {
    return Status::InvalidArgument(
        "read of [" + std::to_string(offset) + ", " +
        std::to_string(offset + length) + ") past end of '" + name + "' (" +
        std::to_string(data.size()) + " bytes)");
  }
  return data.substr(static_cast<size_t>(offset),
                     static_cast<size_t>(length));
}

Status MemEnv::WriteFile(const std::string& name, std::string_view data) {
  if (!IsValidEnvFileName(name)) return InvalidName(name);
  std::unique_lock lock(mu_);
  files_[name] = std::string(data);
  return Status::Ok();
}

Status MemEnv::Rename(const std::string& from, const std::string& to) {
  if (!IsValidEnvFileName(to)) return InvalidName(to);
  std::unique_lock lock(mu_);
  const auto it = files_.find(from);
  if (it == files_.end()) {
    return Status::NotFound("no file named '" + from + "'");
  }
  files_[to] = std::move(it->second);
  files_.erase(it);
  return Status::Ok();
}

Status MemEnv::Remove(const std::string& name) {
  std::unique_lock lock(mu_);
  if (files_.erase(name) == 0) {
    return Status::NotFound("no file named '" + name + "'");
  }
  return Status::Ok();
}

bool MemEnv::Exists(const std::string& name) const {
  std::shared_lock lock(mu_);
  return files_.count(name) > 0;
}

Result<std::vector<std::string>> MemEnv::ListFiles() const {
  std::shared_lock lock(mu_);
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, data] : files_) names.push_back(name);
  return names;  // std::map iteration is already sorted.
}

Status MemEnv::CorruptByte(const std::string& name, uint64_t offset,
                           uint8_t xor_mask) {
  std::unique_lock lock(mu_);
  const auto it = files_.find(name);
  if (it == files_.end()) {
    return Status::NotFound("no file named '" + name + "'");
  }
  if (offset >= it->second.size()) {
    return Status::InvalidArgument("corruption offset past end of file");
  }
  it->second[offset] = static_cast<char>(
      static_cast<uint8_t>(it->second[offset]) ^ xor_mask);
  return Status::Ok();
}

Status MemEnv::TruncateFile(const std::string& name, uint64_t new_size) {
  std::unique_lock lock(mu_);
  const auto it = files_.find(name);
  if (it == files_.end()) {
    return Status::NotFound("no file named '" + name + "'");
  }
  if (new_size > it->second.size()) {
    return Status::InvalidArgument("truncate cannot grow a file");
  }
  it->second.resize(new_size);
  return Status::Ok();
}

// --- DiskEnv --------------------------------------------------------------

Result<DiskEnv> DiskEnv::Create(const std::string& root) {
  std::error_code ec;
  const fs::path path(root);
  if (fs::exists(path, ec)) {
    if (!fs::is_directory(path, ec)) {
      return Status::InvalidArgument("'" + root + "' is not a directory");
    }
  } else {
    fs::create_directories(path, ec);
    if (ec) {
      return Status::Internal("cannot create directory '" + root +
                              "': " + ec.message());
    }
  }
  return DiskEnv(root);
}

Result<std::string> DiskEnv::PathOf(const std::string& name) const {
  if (!IsValidEnvFileName(name)) return InvalidName(name);
  return (fs::path(root_) / name).string();
}

Result<std::string> DiskEnv::ReadFile(const std::string& name) const {
  Result<std::string> path = PathOf(name);
  if (!path.ok()) return path.status();
  std::ifstream in(path.value(), std::ios::binary);
  if (!in.good()) {
    return Status::NotFound("no file named '" + name + "'");
  }
  std::string data(std::istreambuf_iterator<char>(in), {});
  if (in.bad()) return Status::Internal("read failed for '" + name + "'");
  return data;
}

Result<std::string> DiskEnv::ReadAt(const std::string& name, uint64_t offset,
                                    uint64_t length) const {
  Result<std::string> path = PathOf(name);
  if (!path.ok()) return path.status();
  std::ifstream in(path.value(), std::ios::binary);
  if (!in.good()) {
    return Status::NotFound("no file named '" + name + "'");
  }
  in.seekg(0, std::ios::end);
  const uint64_t size = static_cast<uint64_t>(in.tellg());
  if (offset > size || length > size - offset) {
    return Status::InvalidArgument(
        "read of [" + std::to_string(offset) + ", " +
        std::to_string(offset + length) + ") past end of '" + name + "' (" +
        std::to_string(size) + " bytes)");
  }
  in.seekg(static_cast<std::streamoff>(offset));
  std::string data(static_cast<size_t>(length), '\0');
  in.read(data.data(), static_cast<std::streamsize>(length));
  if (!in.good() && !in.eof()) {
    return Status::Internal("read failed for '" + name + "'");
  }
  if (static_cast<uint64_t>(in.gcount()) != length) {
    return Status::Internal("short read for '" + name + "'");
  }
  return data;
}

Status DiskEnv::WriteFile(const std::string& name, std::string_view data) {
  Result<std::string> path = PathOf(name);
  if (!path.ok()) return path.status();
  std::ofstream out(path.value(), std::ios::binary | std::ios::trunc);
  if (!out.good()) {
    return Status::Internal("cannot open '" + name + "' for writing");
  }
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.flush();
  if (!out.good()) return Status::Internal("write failed for '" + name + "'");
  return Status::Ok();
}

Status DiskEnv::Rename(const std::string& from, const std::string& to) {
  Result<std::string> from_path = PathOf(from);
  if (!from_path.ok()) return from_path.status();
  Result<std::string> to_path = PathOf(to);
  if (!to_path.ok()) return to_path.status();
  std::error_code ec;
  fs::rename(from_path.value(), to_path.value(), ec);
  if (ec) {
    return Status::Internal("rename '" + from + "' -> '" + to +
                            "' failed: " + ec.message());
  }
  return Status::Ok();
}

Status DiskEnv::Remove(const std::string& name) {
  Result<std::string> path = PathOf(name);
  if (!path.ok()) return path.status();
  std::error_code ec;
  if (!fs::remove(path.value(), ec)) {
    if (ec) {
      return Status::Internal("remove '" + name + "' failed: " +
                              ec.message());
    }
    return Status::NotFound("no file named '" + name + "'");
  }
  return Status::Ok();
}

bool DiskEnv::Exists(const std::string& name) const {
  Result<std::string> path = PathOf(name);
  if (!path.ok()) return false;
  std::error_code ec;
  return fs::is_regular_file(path.value(), ec);
}

Result<std::vector<std::string>> DiskEnv::ListFiles() const {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root_, ec)) {
    if (entry.is_regular_file(ec)) {
      names.push_back(entry.path().filename().string());
    }
  }
  if (ec) return Status::Internal("cannot list '" + root_ + "'");
  std::sort(names.begin(), names.end());
  return names;
}

// --- CrashEnv -------------------------------------------------------------

CrashEnv::CrashEnv(StorageEnv* target, uint64_t crash_at_op, uint64_t seed)
    : target_(target), crash_at_op_(crash_at_op), seed_(seed) {
  GRIDDECL_CHECK(target != nullptr);
}

Result<std::string> CrashEnv::ReadFile(const std::string& name) const {
  return target_->ReadFile(name);
}

bool CrashEnv::OpSurvives() {
  const uint64_t op = ops_issued_++;
  if (op >= crash_at_op_) crashed_ = true;
  return !crashed_;
}

Status CrashEnv::WriteFile(const std::string& name, std::string_view data) {
  const uint64_t op = ops_issued_;
  if (OpSurvives()) return target_->WriteFile(name, data);
  if (op == crash_at_op_) {
    // The crashing write leaves a deterministic torn prefix, possibly with
    // a flipped bit — the classic partially-persisted sector.
    const uint64_t h = Mix64(seed_ ^ Mix64(op + 1));
    const size_t torn_len = data.size() == 0 ? 0 : h % (data.size() + 1);
    std::string torn(data.substr(0, torn_len));
    if (torn_len > 0 && (h >> 32) % 4 == 0) {  // Flip a bit 25% of the time.
      const uint64_t h2 = Mix64(h);
      torn[h2 % torn_len] ^= static_cast<char>(1u << ((h2 >> 8) % 8));
    }
    (void)target_->WriteFile(name, torn);
  }
  return Status::Internal("injected crash");
}

Status CrashEnv::Rename(const std::string& from, const std::string& to) {
  // Rename is atomic: at the crash point it simply does not happen.
  if (OpSurvives()) return target_->Rename(from, to);
  return Status::Internal("injected crash");
}

Status CrashEnv::Remove(const std::string& name) {
  if (OpSurvives()) return target_->Remove(name);
  return Status::Internal("injected crash");
}

bool CrashEnv::Exists(const std::string& name) const {
  return target_->Exists(name);
}

Result<std::vector<std::string>> CrashEnv::ListFiles() const {
  return target_->ListFiles();
}

}  // namespace griddecl
