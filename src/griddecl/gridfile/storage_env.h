#ifndef GRIDDECL_GRIDFILE_STORAGE_ENV_H_
#define GRIDDECL_GRIDFILE_STORAGE_ENV_H_

#include <cstdint>
#include <map>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "griddecl/common/status.h"

/// \file
/// Storage environment seam: the flat namespace of files the catalog
/// manifest and the scrub subsystem operate on.
///
/// Why a seam instead of direct filesystem calls: the durability claims of
/// this repo (crash-consistent manifest commits, scrub-and-repair) are only
/// worth anything if they are *tested* against every interesting failure —
/// a write torn at an arbitrary byte, a crash between any two operations, a
/// flipped bit at any offset. Following the FoundationDB tradition, all of
/// that is injected deterministically through this interface (`CrashEnv`),
/// while production code runs the same logic against a real directory
/// (`DiskEnv`) and tests use memory (`MemEnv`).
///
/// File names are flat (no directories) and restricted to
/// `[A-Za-z0-9._-]+`, which keeps `DiskEnv` confined to its root.

namespace griddecl {

/// True iff `name` is a well-formed env file name.
bool IsValidEnvFileName(std::string_view name);

/// Abstract flat-file storage. Implementations must make `Rename` atomic:
/// after a crash the target holds either its old or its new content, never
/// a mix — the property manifest commits are built on.
class StorageEnv {
 public:
  virtual ~StorageEnv() = default;

  /// Full contents of `name`; kNotFound when absent.
  virtual Result<std::string> ReadFile(const std::string& name) const = 0;

  /// Exactly `length` bytes of `name` starting at `offset` — the
  /// page-granular read unit the serving layer issues. kNotFound when the
  /// file is absent; kInvalidArgument when the range extends past the end
  /// (a well-formed reader never asks, so a short read is a bug, not a
  /// partial result). The default implementation slices `ReadFile`;
  /// `DiskEnv` overrides it with a positioned read, and `FaultyEnv`
  /// (faulty_env.h) makes it the fault-injection point.
  virtual Result<std::string> ReadAt(const std::string& name, uint64_t offset,
                                     uint64_t length) const;

  /// Creates or replaces `name`. NOT atomic under crashes (a torn prefix
  /// may remain); writers that need atomicity write a temp name and
  /// `Rename` over the target.
  virtual Status WriteFile(const std::string& name,
                           std::string_view data) = 0;

  /// Atomically renames `from` onto `to` (replacing `to` if it exists).
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  /// Removes `name`; kNotFound when absent.
  virtual Status Remove(const std::string& name) = 0;

  virtual bool Exists(const std::string& name) const = 0;

  /// All file names, sorted.
  virtual Result<std::vector<std::string>> ListFiles() const = 0;
};

/// In-memory environment; copyable, so tests can snapshot a state and
/// replay different fault schedules against it. Thread-safe (reader/writer
/// lock): a cluster node's service reads pages out of its env while the
/// migrator concurrently writes staged files into it.
class MemEnv : public StorageEnv {
 public:
  MemEnv() = default;
  MemEnv(const MemEnv& other);
  MemEnv& operator=(const MemEnv& other);

  Result<std::string> ReadFile(const std::string& name) const override;
  /// Positioned read without the base class's whole-file copy — MemEnv
  /// backs the page-serving benchmarks, where a full-file copy per page
  /// read would dominate every miss path being measured.
  Result<std::string> ReadAt(const std::string& name, uint64_t offset,
                             uint64_t length) const override;
  Status WriteFile(const std::string& name, std::string_view data) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& name) override;
  bool Exists(const std::string& name) const override;
  Result<std::vector<std::string>> ListFiles() const override;

  /// Test hooks: deterministic media corruption.
  Status CorruptByte(const std::string& name, uint64_t offset,
                     uint8_t xor_mask);
  Status TruncateFile(const std::string& name, uint64_t new_size);

 private:
  /// Guards files_. shared_lock on the read paths keeps the concurrent
  /// page-serving benchmarks cheap; copies take the source's lock.
  mutable std::shared_mutex mu_;
  std::map<std::string, std::string> files_;
};

/// Real-filesystem environment rooted at a directory (created if absent by
/// `Create`). All names resolve strictly inside the root.
class DiskEnv : public StorageEnv {
 public:
  /// Validated factory: creates `root` (and parents) when missing, fails
  /// if `root` exists and is not a directory.
  static Result<DiskEnv> Create(const std::string& root);

  Result<std::string> ReadFile(const std::string& name) const override;
  Result<std::string> ReadAt(const std::string& name, uint64_t offset,
                             uint64_t length) const override;
  Status WriteFile(const std::string& name, std::string_view data) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& name) override;
  bool Exists(const std::string& name) const override;
  Result<std::vector<std::string>> ListFiles() const override;

  const std::string& root() const { return root_; }

 private:
  explicit DiskEnv(std::string root) : root_(std::move(root)) {}
  Result<std::string> PathOf(const std::string& name) const;

  std::string root_;
};

/// Deterministic crash injection: wraps a target env and kills it at a
/// chosen mutating operation. Mutating operations (WriteFile, Rename,
/// Remove) are numbered 0, 1, 2, ... in issue order:
///
///  * ops before `crash_at_op` pass through untouched;
///  * the op at `crash_at_op` "crashes mid-flight": a WriteFile leaves a
///    torn prefix of the data — length and an optional flipped bit chosen
///    by a pure hash of (seed, op index) — while Rename/Remove simply do
///    not happen (rename is atomic: old or new, never torn);
///  * every later mutating op fails without effect (the process is dead).
///
/// Reads always pass through: recovery code inspects the wreckage through
/// the underlying env after the "reboot".
class CrashEnv : public StorageEnv {
 public:
  /// `target` must outlive this env. `crash_at_op` of UINT64_MAX never
  /// crashes (used to count the ops of a schedule first).
  CrashEnv(StorageEnv* target, uint64_t crash_at_op, uint64_t seed);

  Result<std::string> ReadFile(const std::string& name) const override;
  Status WriteFile(const std::string& name, std::string_view data) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& name) override;
  bool Exists(const std::string& name) const override;
  Result<std::vector<std::string>> ListFiles() const override;

  /// Mutating ops issued so far (crashed or not) — sizes a crash sweep.
  uint64_t ops_issued() const { return ops_issued_; }
  bool crashed() const { return crashed_; }

 private:
  /// Returns true when the current op survives; advances the op counter.
  bool OpSurvives();

  StorageEnv* target_;
  uint64_t crash_at_op_;
  uint64_t seed_;
  uint64_t ops_issued_ = 0;
  bool crashed_ = false;
};

}  // namespace griddecl

#endif  // GRIDDECL_GRIDFILE_STORAGE_ENV_H_
