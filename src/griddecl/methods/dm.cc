#include "griddecl/methods/dm.h"

namespace griddecl {

Result<std::unique_ptr<DeclusteringMethod>> GdmMethod::Create(
    GridSpec grid, uint32_t num_disks, std::vector<uint32_t> coefficients) {
  GRIDDECL_RETURN_IF_ERROR(ValidateMethodArgs(grid, num_disks));
  if (coefficients.size() != grid.num_dims()) {
    return Status::InvalidArgument(
        "GDM needs one coefficient per dimension: got " +
        std::to_string(coefficients.size()) + " for a " + grid.ToString() +
        " grid");
  }
  bool all_ones = true;
  for (uint32_t a : coefficients) all_ones = all_ones && (a == 1);
  std::string name = all_ones ? "DM/CMD" : "GDM";
  return std::unique_ptr<DeclusteringMethod>(new GdmMethod(
      std::move(grid), num_disks, std::move(coefficients), std::move(name)));
}

Result<std::unique_ptr<DeclusteringMethod>> GdmMethod::Dm(GridSpec grid,
                                                          uint32_t num_disks) {
  std::vector<uint32_t> ones(grid.num_dims(), 1);
  return Create(std::move(grid), num_disks, std::move(ones));
}

uint32_t GdmMethod::DiskOf(const BucketCoords& c) const {
  GRIDDECL_CHECK(grid_.Contains(c));
  uint64_t sum = 0;
  for (uint32_t i = 0; i < c.size(); ++i) {
    sum += static_cast<uint64_t>(coefficients_[i]) * c[i];
  }
  return static_cast<uint32_t>(sum % num_disks_);
}

}  // namespace griddecl
