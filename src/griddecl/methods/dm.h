#ifndef GRIDDECL_METHODS_DM_H_
#define GRIDDECL_METHODS_DM_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "griddecl/methods/method.h"

/// \file
/// Disk Modulo / Coordinate Modulo Declustering (Du & Sobolewski, TODS 1982;
/// Li, Srivastava & Rotem, VLDB 1992) and the Generalized Disk Modulo
/// variant (Du, BIT 1986).
///
///   DM / CMD:  disk(<i_1, ..., i_k>) = (i_1 + i_2 + ... + i_k) mod M
///   GDM:       disk(<i_1, ..., i_k>) = (a_1 i_1 + ... + a_k i_k) mod M
///
/// DM is strictly optimal for all partial-match queries with exactly one
/// unspecified attribute, and for partial-match queries with at least one
/// unspecified attribute whose domain size is a multiple of M. The ICDE'94
/// evaluation shows it is the weakest of the four methods on *small* range
/// queries, but competitive on large ones.

namespace griddecl {

/// Generalized Disk Modulo. DM/CMD is the special case of all-ones
/// coefficients (use the `Dm` factory for the paper's plain DM).
class GdmMethod final : public DeclusteringMethod {
 public:
  /// GDM with explicit per-dimension coefficients (one per grid dimension).
  static Result<std::unique_ptr<DeclusteringMethod>> Create(
      GridSpec grid, uint32_t num_disks, std::vector<uint32_t> coefficients);

  /// Plain DM/CMD: all coefficients 1.
  static Result<std::unique_ptr<DeclusteringMethod>> Dm(GridSpec grid,
                                                        uint32_t num_disks);

  uint32_t DiskOf(const BucketCoords& c) const override;

  const std::vector<uint32_t>& coefficients() const { return coefficients_; }

 private:
  GdmMethod(GridSpec grid, uint32_t num_disks, std::vector<uint32_t> coeffs,
            std::string name)
      : DeclusteringMethod(std::move(grid), num_disks, std::move(name)),
        coefficients_(std::move(coeffs)) {}

  std::vector<uint32_t> coefficients_;
};

}  // namespace griddecl

#endif  // GRIDDECL_METHODS_DM_H_
