#include "griddecl/methods/ecc.h"

#include "griddecl/coding/parity_check.h"
#include "griddecl/common/bit_util.h"

namespace griddecl {

namespace {

Status CheckEccApplicable(const GridSpec& grid, uint32_t num_disks) {
  if (!IsPowerOfTwo(num_disks)) {
    return Status::Unsupported(
        "ECC requires the number of disks to be a power of 2, got " +
        std::to_string(num_disks));
  }
  for (uint32_t i = 0; i < grid.num_dims(); ++i) {
    if (!IsPowerOfTwo(grid.dim(i))) {
      return Status::Unsupported(
          "ECC requires every partition count to be a power of 2; dimension " +
          std::to_string(i) + " has " + std::to_string(grid.dim(i)));
    }
  }
  return Status::Ok();
}

}  // namespace

Result<std::unique_ptr<DeclusteringMethod>> EccMethod::Create(
    GridSpec grid, uint32_t num_disks) {
  GRIDDECL_RETURN_IF_ERROR(ValidateMethodArgs(grid, num_disks));
  GRIDDECL_RETURN_IF_ERROR(CheckEccApplicable(grid, num_disks));
  uint32_t total_bits = 0;
  std::vector<uint32_t> widths(grid.num_dims(), 0);
  for (uint32_t i = 0; i < grid.num_dims(); ++i) {
    widths[i] = static_cast<uint32_t>(FloorLog2(grid.dim(i)));
    total_bits += widths[i];
  }
  const uint32_t parity_bits =
      num_disks == 1 ? 0 : static_cast<uint32_t>(FloorLog2(num_disks));
  if (parity_bits == 0 || total_bits == 0) {
    // Degenerate: one disk, or a 1-bucket grid. Identity-zero matrix of
    // minimal shape keeps DiskOf trivially 0 via the modulo below.
    BitMatrix h(1, 1);
    return CreateWithMatrix(std::move(grid), num_disks, std::move(h));
  }
  Result<BitMatrix> h = BuildDeclusteringParityCheck(parity_bits, widths);
  if (!h.ok()) return h.status();
  return CreateWithMatrix(std::move(grid), num_disks, std::move(h).value());
}

Result<std::unique_ptr<DeclusteringMethod>> EccMethod::CreateWithMatrix(
    GridSpec grid, uint32_t num_disks, BitMatrix h) {
  GRIDDECL_RETURN_IF_ERROR(ValidateMethodArgs(grid, num_disks));
  GRIDDECL_RETURN_IF_ERROR(CheckEccApplicable(grid, num_disks));
  std::vector<uint32_t> offsets(grid.num_dims(), 0);
  std::vector<uint32_t> widths(grid.num_dims(), 0);
  uint32_t total_bits = 0;
  for (uint32_t i = 0; i < grid.num_dims(); ++i) {
    offsets[i] = total_bits;
    widths[i] = static_cast<uint32_t>(FloorLog2(grid.dim(i)));
    total_bits += widths[i];
  }
  const uint32_t parity_bits =
      num_disks == 1 ? 0 : static_cast<uint32_t>(FloorLog2(num_disks));
  const bool degenerate = parity_bits == 0 || total_bits == 0;
  if (!degenerate &&
      (h.rows() != parity_bits || h.cols() != total_bits)) {
    return Status::InvalidArgument(
        "parity-check matrix must be " + std::to_string(parity_bits) + "x" +
        std::to_string(total_bits) + ", got " + std::to_string(h.rows()) +
        "x" + std::to_string(h.cols()));
  }
  return std::unique_ptr<DeclusteringMethod>(
      new EccMethod(std::move(grid), num_disks, std::move(h),
                    std::move(offsets), std::move(widths)));
}

uint32_t EccMethod::DiskOf(const BucketCoords& c) const {
  GRIDDECL_CHECK(grid_.Contains(c));
  if (num_disks_ == 1) return 0;
  const uint32_t total_bits = h_.cols();
  // Degenerate 1-bucket grid (no information bits): everything on disk 0.
  bool any_width = false;
  for (uint32_t w : widths_) any_width = any_width || (w > 0);
  if (!any_width) return 0;

  BitVector v(total_bits);
  for (uint32_t i = 0; i < c.size(); ++i) {
    for (uint32_t b = 0; b < widths_[i]; ++b) {
      if ((c[i] >> b) & 1) v.Set(bit_offsets_[i] + b, true);
    }
  }
  const uint64_t syndrome = SyndromeOf(h_, v);
  // Syndrome is already < 2^parity_bits = M for a correctly shaped matrix.
  return static_cast<uint32_t>(syndrome % num_disks_);
}

}  // namespace griddecl
