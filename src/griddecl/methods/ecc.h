#ifndef GRIDDECL_METHODS_ECC_H_
#define GRIDDECL_METHODS_ECC_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "griddecl/coding/gf2.h"
#include "griddecl/methods/method.h"

/// \file
/// Error-Correcting-Code declustering (Faloutsos & Metaxas, IEEE ToC 1991).
///
/// Applicable when M = 2^c and every partition count d_i = 2^{m_i}. The
/// concatenated binary coordinates of a bucket form an n-bit vector
/// (n = sum m_i); a `c x n` parity-check matrix `H` of a (shortened) Hamming
/// code partitions the 2^n buckets into 2^c cosets — one per disk:
///
///   disk(b) = integer value of the syndrome H * bits(b)
///
/// Disk 0 receives the code itself, exactly as in the original formulation.
/// Because the code has minimum distance >= 3 (when n <= 2^c - 1 columns
/// remain distinct), buckets whose coordinate bits differ in one or two
/// positions are guaranteed to live on different disks, which is what gives
/// ECC its strong behaviour on small range queries.

namespace griddecl {

/// ECC declustering method.
class EccMethod final : public DeclusteringMethod {
 public:
  /// Validated factory. Returns kUnsupported unless M is a power of two and
  /// every grid dimension is a power of two.
  static Result<std::unique_ptr<DeclusteringMethod>> Create(
      GridSpec grid, uint32_t num_disks);

  /// As `Create` but with a caller-supplied parity-check matrix; `h` must
  /// have ceil(log2 M) rows and sum_i log2(d_i) columns (>= 1).
  static Result<std::unique_ptr<DeclusteringMethod>> CreateWithMatrix(
      GridSpec grid, uint32_t num_disks, BitMatrix h);

  uint32_t DiskOf(const BucketCoords& c) const override;

  /// The parity-check matrix in use.
  const BitMatrix& parity_check() const { return h_; }

 private:
  EccMethod(GridSpec grid, uint32_t num_disks, BitMatrix h,
            std::vector<uint32_t> bit_offsets, std::vector<uint32_t> widths)
      : DeclusteringMethod(std::move(grid), num_disks, "ECC"),
        h_(std::move(h)),
        bit_offsets_(std::move(bit_offsets)),
        widths_(std::move(widths)) {}

  BitMatrix h_;
  /// Bit position where dimension i's bits start in the concatenated vector.
  std::vector<uint32_t> bit_offsets_;
  /// log2(d_i) per dimension.
  std::vector<uint32_t> widths_;
};

}  // namespace griddecl

#endif  // GRIDDECL_METHODS_ECC_H_
