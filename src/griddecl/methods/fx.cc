#include "griddecl/methods/fx.h"

#include <algorithm>

#include "griddecl/common/bit_util.h"

namespace griddecl {

namespace {

// Folds the low `width` bits of `x` into a `target`-bit word: bit j of `x`
// lands on (XORs into) bit (j + phase) mod target of the result. With
// phase 0 and width <= target this is plain zero-extension; staggered
// phases place narrow fields into disjoint bit ranges.
uint64_t FoldBits(uint64_t x, uint32_t width, uint32_t phase,
                  uint32_t target) {
  uint64_t out = 0;
  for (uint32_t j = 0; j < width; ++j) {
    out ^= ((x >> j) & 1) << ((j + phase) % target);
  }
  return out;
}

}  // namespace

Result<std::unique_ptr<DeclusteringMethod>> FxMethod::Create(
    GridSpec grid, uint32_t num_disks) {
  GRIDDECL_RETURN_IF_ERROR(ValidateMethodArgs(grid, num_disks));
  return std::unique_ptr<DeclusteringMethod>(
      new FxMethod(std::move(grid), num_disks, /*extended=*/false,
                   /*target_width=*/0));
}

Result<std::unique_ptr<DeclusteringMethod>> FxMethod::CreateExtended(
    GridSpec grid, uint32_t num_disks) {
  GRIDDECL_RETURN_IF_ERROR(ValidateMethodArgs(grid, num_disks));
  uint32_t width = CeilLog2(num_disks);
  for (uint32_t i = 0; i < grid.num_dims(); ++i) {
    width = std::max(width,
                     static_cast<uint32_t>(BitWidthForDomain(grid.dim(i))));
  }
  width = std::max(width, 1u);
  return std::unique_ptr<DeclusteringMethod>(
      new FxMethod(std::move(grid), num_disks, /*extended=*/true, width));
}

Result<std::unique_ptr<DeclusteringMethod>> FxMethod::CreateAuto(
    GridSpec grid, uint32_t num_disks) {
  bool any_small = false;
  for (uint32_t i = 0; i < grid.num_dims(); ++i) {
    any_small = any_small || (grid.dim(i) < num_disks);
  }
  return any_small ? CreateExtended(std::move(grid), num_disks)
                   : Create(std::move(grid), num_disks);
}

uint32_t FxMethod::DiskOf(const BucketCoords& c) const {
  GRIDDECL_CHECK(grid_.Contains(c));
  uint64_t acc = 0;
  if (!extended_) {
    for (uint32_t i = 0; i < c.size(); ++i) acc ^= c[i];
  } else {
    uint32_t phase = 0;
    for (uint32_t i = 0; i < c.size(); ++i) {
      const uint32_t width =
          static_cast<uint32_t>(BitWidthForDomain(grid_.dim(i)));
      acc ^= FoldBits(c[i], width, phase, target_width_);
      phase += width;
    }
  }
  return static_cast<uint32_t>(acc % num_disks_);
}

}  // namespace griddecl
