#ifndef GRIDDECL_METHODS_FX_H_
#define GRIDDECL_METHODS_FX_H_

#include <cstdint>
#include <memory>

#include "griddecl/methods/method.h"

/// \file
/// Field-wise eXclusive-or declustering (Kim & Pramanik, SIGMOD 1988).
///
///   FX:    disk(<i_1, ..., i_k>) = (i_1 XOR i_2 XOR ... XOR i_k) mod M
///
/// where XOR is the bitwise exclusive-or of the binary coordinate values.
/// Designed for efficient partial-match retrieval; intended for grids whose
/// partition counts are powers of two. Per the ICDE'94 paper, FX is used
/// when the number of partitions on each attribute is at least the number of
/// disks, and the extended variant ExFX otherwise:
///
///   ExFX:  each coordinate's bits are folded cyclically into a W-bit word
///          (W = max(ceil(log2 M), max_i width_i)) at a per-dimension phase
///          offset equal to the cumulative width of the preceding fields,
///          and the folded words are XORed.
///
/// The exact Kim–Pramanik extension procedure is not spelled out in our copy
/// of the ICDE'94 text; the phase-staggered fold implemented here is a
/// documented reconstruction (see DESIGN.md) chosen for two properties:
/// (a) it coincides with plain FX whenever all fields have the same width
/// W >= log2 M (every phase offset is then 0 mod W), and (b) when the
/// fields are narrow their images occupy disjoint bit ranges, so the XOR
/// recovers the full sum(width_i) bits of entropy and small-domain
/// attributes still spread across all M disks — which is the point of the
/// extension.

namespace griddecl {

/// FX / ExFX declustering.
class FxMethod final : public DeclusteringMethod {
 public:
  /// Plain FX.
  static Result<std::unique_ptr<DeclusteringMethod>> Create(
      GridSpec grid, uint32_t num_disks);

  /// ExFX: bit-extension variant for grids with d_i < M.
  static Result<std::unique_ptr<DeclusteringMethod>> CreateExtended(
      GridSpec grid, uint32_t num_disks);

  /// The paper's selection rule: ExFX when any dimension has fewer
  /// partitions than disks, FX otherwise.
  static Result<std::unique_ptr<DeclusteringMethod>> CreateAuto(
      GridSpec grid, uint32_t num_disks);

  uint32_t DiskOf(const BucketCoords& c) const override;

  bool extended() const { return extended_; }

 private:
  FxMethod(GridSpec grid, uint32_t num_disks, bool extended,
           uint32_t target_width)
      : DeclusteringMethod(std::move(grid), num_disks,
                           extended ? "ExFX" : "FX"),
        extended_(extended),
        target_width_(target_width) {}

  bool extended_;
  /// ExFX only: width W of the folded word.
  uint32_t target_width_;
};

}  // namespace griddecl

#endif  // GRIDDECL_METHODS_FX_H_
