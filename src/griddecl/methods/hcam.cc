#include "griddecl/methods/hcam.h"

#include <algorithm>
#include <numeric>

#include "griddecl/common/bit_util.h"
#include "griddecl/curve/hilbert.h"
#include "griddecl/curve/morton.h"

namespace griddecl {

Result<std::unique_ptr<DeclusteringMethod>> CurveAllocMethod::Create(
    GridSpec grid, uint32_t num_disks, CurveKind kind) {
  GRIDDECL_RETURN_IF_ERROR(ValidateMethodArgs(grid, num_disks));
  if (num_disks > 65535) {
    return Status::Unsupported("curve allocation supports at most 65535 disks");
  }
  if (grid.num_buckets() > kMaxBuckets) {
    return Status::Unsupported(
        "grid too large for curve allocation (num_buckets > 2^26)");
  }
  uint32_t max_side = 1;
  for (uint32_t i = 0; i < grid.num_dims(); ++i) {
    max_side = std::max(max_side, grid.dim(i));
  }
  const uint32_t order =
      std::max<uint32_t>(1, static_cast<uint32_t>(CeilLog2(max_side)));
  if (static_cast<uint64_t>(grid.num_dims()) * order > 64) {
    return Status::Unsupported(
        "grid sides too large: curve index exceeds 64 bits");
  }

  // Curve index of every bucket of the actual (possibly non-cubic) grid,
  // evaluated inside the enclosing 2^order cube.
  const uint64_t n = grid.num_buckets();
  std::vector<uint64_t> curve_index(static_cast<size_t>(n));
  if (kind == CurveKind::kHilbert) {
    Result<HilbertCurve> curve = HilbertCurve::Create(grid.num_dims(), order);
    if (!curve.ok()) return curve.status();
    uint64_t linear = 0;
    grid.ForEachBucket([&](const BucketCoords& c) {
      curve_index[static_cast<size_t>(linear++)] = curve.value().Index(c);
    });
  } else {
    Result<MortonCurve> curve = MortonCurve::Create(grid.num_dims(), order);
    if (!curve.ok()) return curve.status();
    uint64_t linear = 0;
    grid.ForEachBucket([&](const BucketCoords& c) {
      curve_index[static_cast<size_t>(linear++)] = curve.value().Index(c);
    });
  }

  // Rank buckets by curve position; round robin disks along the curve.
  std::vector<uint32_t> order_of(static_cast<size_t>(n));
  std::iota(order_of.begin(), order_of.end(), 0u);
  std::sort(order_of.begin(), order_of.end(),
            [&](uint32_t a, uint32_t b) {
              return curve_index[a] < curve_index[b];
            });
  std::vector<uint16_t> disks(static_cast<size_t>(n));
  std::vector<uint32_t> ranks(static_cast<size_t>(n));
  for (uint64_t rank = 0; rank < n; ++rank) {
    const uint32_t linear = order_of[static_cast<size_t>(rank)];
    disks[linear] = static_cast<uint16_t>(rank % num_disks);
    ranks[linear] = static_cast<uint32_t>(rank);
  }
  return std::unique_ptr<DeclusteringMethod>(
      new CurveAllocMethod(std::move(grid), num_disks, kind, std::move(disks),
                           std::move(ranks)));
}

uint32_t CurveAllocMethod::DiskOf(const BucketCoords& c) const {
  const uint64_t linear = grid_.Linearize(c);
  return disk_of_bucket_[static_cast<size_t>(linear)];
}

uint64_t CurveAllocMethod::CurveRank(const BucketCoords& c) const {
  const uint64_t linear = grid_.Linearize(c);
  return rank_of_bucket_[static_cast<size_t>(linear)];
}

}  // namespace griddecl
