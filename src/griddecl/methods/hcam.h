#ifndef GRIDDECL_METHODS_HCAM_H_
#define GRIDDECL_METHODS_HCAM_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "griddecl/methods/method.h"

/// \file
/// Hilbert Curve Allocation Method (Faloutsos & Bhagwat, PDIS 1993) and its
/// Z-order ablation.
///
/// HCAM linearizes the grid with a k-dimensional Hilbert curve and assigns
/// disks round robin along the curve:
///
///   disk(b) = rank_of_b_in_Hilbert_order mod M
///
/// For grids whose every side is the same power of two this equals
/// `H(b) mod M` (the formulation in the papers); for other shapes the grid
/// is embedded in the enclosing power-of-two cube, buckets are sorted by
/// their curve index, and ranks are taken within the actual grid — this
/// preserves both the round-robin load balance and the curve ordering, and
/// imposes no restriction on M or the d_i (HCAM's selling point in the
/// ICDE'94 comparison, Table 1).
///
/// `CurveKind::kZOrder` swaps the Hilbert curve for plain bit interleaving;
/// the A1 ablation benchmark uses it to isolate the contribution of the
/// Hilbert curve's clustering quality.

namespace griddecl {

/// Which space-filling curve drives the allocation.
enum class CurveKind {
  kHilbert,
  kZOrder,
};

/// Curve-based round-robin declustering (HCAM / ZCAM).
class CurveAllocMethod final : public DeclusteringMethod {
 public:
  /// Hard cap on grid size: the method materializes one 16-bit entry per
  /// bucket (plus transient 16 bytes per bucket while sorting).
  static constexpr uint64_t kMaxBuckets = uint64_t{1} << 26;

  /// Validated factory. Requires num_buckets <= kMaxBuckets,
  /// num_disks <= 65535, and k * ceil(log2(max side)) <= 64.
  static Result<std::unique_ptr<DeclusteringMethod>> Create(
      GridSpec grid, uint32_t num_disks, CurveKind kind = CurveKind::kHilbert);

  uint32_t DiskOf(const BucketCoords& c) const override;

  CurveKind kind() const { return kind_; }

  /// Rank of the bucket along the curve (0-based within the actual grid).
  uint64_t CurveRank(const BucketCoords& c) const;

 private:
  CurveAllocMethod(GridSpec grid, uint32_t num_disks, CurveKind kind,
                   std::vector<uint16_t> disk_of_bucket,
                   std::vector<uint32_t> rank_of_bucket)
      : DeclusteringMethod(std::move(grid), num_disks,
                           kind == CurveKind::kHilbert ? "HCAM" : "ZCAM"),
        kind_(kind),
        disk_of_bucket_(std::move(disk_of_bucket)),
        rank_of_bucket_(std::move(rank_of_bucket)) {}

  CurveKind kind_;
  /// Indexed by the grid's row-major linearization.
  std::vector<uint16_t> disk_of_bucket_;
  std::vector<uint32_t> rank_of_bucket_;
};

}  // namespace griddecl

#endif  // GRIDDECL_METHODS_HCAM_H_
