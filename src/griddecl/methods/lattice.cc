#include "griddecl/methods/lattice.h"

#include <algorithm>

#include "griddecl/common/math_util.h"
#include "griddecl/eval/analytic.h"
#include "griddecl/methods/dm.h"

namespace griddecl {

namespace {

/// The probe family: every shape with extents in [1, min(M, d_i)] and
/// volume <= 2M, excluding the trivial single bucket.
std::vector<std::vector<uint32_t>> ProbeShapes(const GridSpec& grid,
                                               uint32_t m) {
  std::vector<std::vector<uint32_t>> shapes;
  const uint32_t k = grid.num_dims();
  std::vector<uint32_t> shape(k, 1);
  for (;;) {
    uint64_t volume = 1;
    for (uint32_t e : shape) volume *= e;
    if (volume > 1 && volume <= uint64_t{2} * m) shapes.push_back(shape);
    // Odometer.
    uint32_t dim = k;
    for (;;) {
      if (dim == 0) return shapes;
      --dim;
      const uint32_t limit = std::min(m, grid.dim(dim));
      if (++shape[dim] <= limit) break;
      shape[dim] = 1;
    }
  }
}

}  // namespace

Result<double> ScoreGdmCoefficients(
    const GridSpec& grid, uint32_t num_disks,
    const std::vector<uint32_t>& coefficients) {
  if (num_disks < 1) {
    return Status::InvalidArgument("number of disks must be >= 1");
  }
  if (coefficients.size() != grid.num_dims()) {
    return Status::InvalidArgument("need one coefficient per dimension");
  }
  const std::vector<std::vector<uint32_t>> shapes =
      ProbeShapes(grid, num_disks);
  if (shapes.empty()) return 1.0;  // 1-bucket grid or M == 1.
  double total_ratio = 0;
  for (const std::vector<uint32_t>& shape : shapes) {
    // GDM response time is translation invariant: use the origin-anchored
    // rectangle as the representative of every placement.
    BucketCoords lo(grid.num_dims());
    BucketCoords hi(grid.num_dims());
    uint64_t volume = 1;
    for (uint32_t i = 0; i < grid.num_dims(); ++i) {
      hi[i] = shape[i] - 1;
      volume *= shape[i];
    }
    Result<BucketRect> rect = BucketRect::Create(lo, hi);
    GRIDDECL_CHECK(rect.ok());
    Result<std::vector<uint64_t>> counts =
        AnalyticGdmCounts(coefficients, rect.value(), num_disks);
    if (!counts.ok()) return counts.status();
    const uint64_t rt = MaxCount(counts.value());
    total_ratio += static_cast<double>(rt) /
                   static_cast<double>(CeilDiv(volume, num_disks));
  }
  return total_ratio / static_cast<double>(shapes.size());
}

Result<std::vector<uint32_t>> SearchGdmCoefficients(const GridSpec& grid,
                                                    uint32_t num_disks) {
  if (num_disks < 1) {
    return Status::InvalidArgument("number of disks must be >= 1");
  }
  const uint32_t k = grid.num_dims();
  std::vector<uint32_t> best(k, 1);
  Result<double> base = ScoreGdmCoefficients(grid, num_disks, best);
  if (!base.ok()) return base.status();
  double best_score = base.value();
  if (num_disks == 1 || k == 1) return best;

  // Coordinate descent: coefficient 0 pinned to 1; sweep the others over
  // Z_M repeatedly until no single-coefficient change improves the score.
  bool improved = true;
  while (improved) {
    improved = false;
    for (uint32_t dim = 1; dim < k; ++dim) {
      uint32_t best_value = best[dim];
      for (uint32_t a = 1; a < num_disks; ++a) {
        if (a == best[dim]) continue;
        std::vector<uint32_t> candidate = best;
        candidate[dim] = a;
        Result<double> score =
            ScoreGdmCoefficients(grid, num_disks, candidate);
        if (!score.ok()) return score.status();
        if (score.value() + 1e-12 < best_score) {
          best_score = score.value();
          best_value = a;
          improved = true;
        }
      }
      best[dim] = best_value;
    }
  }
  return best;
}

Result<std::unique_ptr<DeclusteringMethod>> CreateSearchedGdm(
    GridSpec grid, uint32_t num_disks) {
  Result<std::vector<uint32_t>> coeffs =
      SearchGdmCoefficients(grid, num_disks);
  if (!coeffs.ok()) return coeffs.status();
  return GdmMethod::Create(std::move(grid), num_disks,
                           std::move(coeffs).value());
}

}  // namespace griddecl
