#ifndef GRIDDECL_METHODS_LATTICE_H_
#define GRIDDECL_METHODS_LATTICE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "griddecl/methods/method.h"

/// \file
/// Lattice-style GDM: generalized disk modulo with *searched* coefficients.
///
/// DM/CMD fixes every coefficient to 1, which is why it collapses on small
/// square queries (all buckets on an anti-diagonal share a disk). The
/// generalized form `disk = (a_1 i_1 + ... + a_k i_k) mod M` — Du's GDM,
/// and in 2-d the cyclic/lattice allocations studied at length in the
/// later declustering literature — can do far better if the multipliers
/// are chosen well. This module picks them by direct search:
///
///  * the quality of a coefficient vector is scored over every query shape
///    with per-dimension extents up to min(M, d_i) and volume <= 2M,
///    using the closed-form GDM counts (O(k M^2) per shape — GDM response
///    time is translation-invariant, so shapes stand in for all
///    placements of themselves);
///  * coefficients are optimized by coordinate descent over Z_M, seeded
///    with a_i = 1, iterated to a fixed point (exhaustive over the single
///    free coefficient in 2-d).
///
/// The result is still an O(1)-per-bucket formula method — unlike the
/// workload optimizer's explicit tables — making it the natural "better
/// DM" entry in the method registry ("gdm-search").

namespace griddecl {

/// Scores `coefficients` for small-range-query behaviour on `grid`/`M`:
/// the mean over the shape family of (response / optimal); lower is
/// better; 1.0 means strictly optimal on every probed shape.
Result<double> ScoreGdmCoefficients(const GridSpec& grid, uint32_t num_disks,
                                    const std::vector<uint32_t>& coefficients);

/// Searches coefficients by coordinate descent; `a_0` is pinned to 1
/// (scaling all coefficients by a unit preserves the partition into
/// disks). Returns the best vector found.
Result<std::vector<uint32_t>> SearchGdmCoefficients(const GridSpec& grid,
                                                    uint32_t num_disks);

/// Convenience factory: searched-coefficient GDM method.
Result<std::unique_ptr<DeclusteringMethod>> CreateSearchedGdm(
    GridSpec grid, uint32_t num_disks);

}  // namespace griddecl

#endif  // GRIDDECL_METHODS_LATTICE_H_
