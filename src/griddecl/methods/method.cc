#include "griddecl/methods/method.h"

namespace griddecl {

std::vector<uint64_t> DeclusteringMethod::DiskLoadHistogram() const {
  std::vector<uint64_t> loads(num_disks_, 0);
  grid_.ForEachBucket([&](const BucketCoords& c) {
    const uint32_t disk = DiskOf(c);
    GRIDDECL_CHECK_MSG(disk < num_disks_, "method %s returned disk %u >= M=%u",
                       name_.c_str(), disk, num_disks_);
    ++loads[disk];
  });
  return loads;
}

Status ValidateMethodArgs(const GridSpec& grid, uint32_t num_disks) {
  (void)grid;  // GridSpec is validated at construction.
  if (num_disks < 1) {
    return Status::InvalidArgument("number of disks must be >= 1");
  }
  return Status::Ok();
}

}  // namespace griddecl
