#ifndef GRIDDECL_METHODS_METHOD_H_
#define GRIDDECL_METHODS_METHOD_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "griddecl/common/status.h"
#include "griddecl/grid/bucket.h"
#include "griddecl/grid/grid_spec.h"

/// \file
/// `DeclusteringMethod`: the central abstraction of the library. A method is
/// a total function from bucket coordinates to a disk id in [0, M). The
/// paper's entire evaluation compares implementations of this interface.

namespace griddecl {

/// Abstract declustering method: assigns every bucket of a grid to one of
/// `M` disks. Implementations are immutable after construction and safe to
/// share across threads for concurrent reads.
class DeclusteringMethod {
 public:
  virtual ~DeclusteringMethod() = default;

  DeclusteringMethod(const DeclusteringMethod&) = delete;
  DeclusteringMethod& operator=(const DeclusteringMethod&) = delete;

  /// Disk id of bucket `c`, in [0, num_disks()). `c` must lie in `grid()`.
  virtual uint32_t DiskOf(const BucketCoords& c) const = 0;

  /// The grid this method was instantiated for.
  const GridSpec& grid() const { return grid_; }

  /// Number of disks M.
  uint32_t num_disks() const { return num_disks_; }

  /// Human-readable name ("DM/CMD", "FX", "ECC", "HCAM", ...).
  const std::string& name() const { return name_; }

  /// Number of buckets assigned to each disk (size num_disks()). A good
  /// method keeps these within one of each other (perfect load balance).
  std::vector<uint64_t> DiskLoadHistogram() const;

 protected:
  DeclusteringMethod(GridSpec grid, uint32_t num_disks, std::string name)
      : grid_(std::move(grid)),
        num_disks_(num_disks),
        name_(std::move(name)) {
    GRIDDECL_CHECK(num_disks_ >= 1);
  }

  GridSpec grid_;
  uint32_t num_disks_;
  std::string name_;
};

/// Shared validation for method factories: k >= 1 grid already guaranteed by
/// GridSpec; checks M >= 1.
Status ValidateMethodArgs(const GridSpec& grid, uint32_t num_disks);

}  // namespace griddecl

#endif  // GRIDDECL_METHODS_METHOD_H_
