#include "griddecl/methods/registry.h"

#include "griddecl/methods/dm.h"
#include "griddecl/methods/ecc.h"
#include "griddecl/methods/fx.h"
#include "griddecl/methods/hcam.h"
#include "griddecl/methods/lattice.h"
#include "griddecl/methods/simple.h"

namespace griddecl {

Result<std::unique_ptr<DeclusteringMethod>> CreateMethod(
    std::string_view name, const GridSpec& grid, uint32_t num_disks,
    const MethodOptions& options) {
  if (name == "dm" || name == "cmd") {
    return GdmMethod::Dm(grid, num_disks);
  }
  if (name == "gdm") {
    std::vector<uint32_t> coeffs = options.gdm_coefficients;
    if (coeffs.empty()) coeffs.assign(grid.num_dims(), 1);
    return GdmMethod::Create(grid, num_disks, std::move(coeffs));
  }
  if (name == "gdm-search") {
    return CreateSearchedGdm(grid, num_disks);
  }
  if (name == "fx") {
    return FxMethod::Create(grid, num_disks);
  }
  if (name == "exfx") {
    return FxMethod::CreateExtended(grid, num_disks);
  }
  if (name == "fx-auto") {
    return FxMethod::CreateAuto(grid, num_disks);
  }
  if (name == "ecc") {
    return EccMethod::Create(grid, num_disks);
  }
  if (name == "hcam") {
    return CurveAllocMethod::Create(grid, num_disks, CurveKind::kHilbert);
  }
  if (name == "zcam") {
    return CurveAllocMethod::Create(grid, num_disks, CurveKind::kZOrder);
  }
  if (name == "linear") {
    return LinearMethod::Create(grid, num_disks);
  }
  if (name == "random") {
    return RandomMethod::Create(grid, num_disks, options.seed);
  }
  return Status::NotFound("unknown declustering method '" + std::string(name) +
                          "'");
}

std::vector<std::string> AllMethodNames() {
  return {"dm",   "cmd",  "gdm",  "gdm-search", "fx",     "exfx",
          "fx-auto", "ecc", "hcam", "zcam",     "linear", "random"};
}

std::vector<std::unique_ptr<DeclusteringMethod>> CreatePaperMethods(
    const GridSpec& grid, uint32_t num_disks) {
  std::vector<std::unique_ptr<DeclusteringMethod>> methods;
  for (const char* name : {"dm", "fx-auto", "ecc", "hcam"}) {
    Result<std::unique_ptr<DeclusteringMethod>> m =
        CreateMethod(name, grid, num_disks);
    if (m.ok()) {
      methods.push_back(std::move(m).value());
    } else {
      // ECC (and only ECC) may be inapplicable; anything else is a bug.
      GRIDDECL_CHECK_MSG(m.status().code() == StatusCode::kUnsupported,
                         "unexpected failure creating %s: %s", name,
                         m.status().ToString().c_str());
    }
  }
  return methods;
}

}  // namespace griddecl
