#ifndef GRIDDECL_METHODS_REGISTRY_H_
#define GRIDDECL_METHODS_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "griddecl/methods/method.h"

/// \file
/// Name-based construction of declustering methods, and the standard method
/// set the ICDE'94 evaluation compares. Parallel database systems "must
/// support a number of declustering methods" (the paper's closing
/// recommendation) — this registry is that support.

namespace griddecl {

/// Options consumed by some methods; ignored by the rest.
struct MethodOptions {
  /// Seed for the `random` baseline.
  uint64_t seed = 0;
  /// Coefficients for `gdm`; empty selects all-ones (plain DM).
  std::vector<uint32_t> gdm_coefficients;
};

/// Creates a method by registry name. Recognized names (case-sensitive):
///   "dm", "cmd"   — disk modulo / coordinate modulo (identical)
///   "gdm"         — generalized disk modulo (options.gdm_coefficients)
///   "gdm-search"  — GDM with coefficients found by coordinate-descent
///                   search over small query shapes (methods/lattice.h)
///   "fx"          — field-wise XOR
///   "exfx"        — extended FX
///   "fx-auto"     — the paper's rule: ExFX iff some d_i < M, else FX
///   "ecc"         — error-correcting-code method
///   "hcam"        — Hilbert curve allocation
///   "zcam"        — Z-order curve allocation (ablation)
///   "linear"      — row-major round robin (baseline)
///   "random"      — seeded uniform hash (baseline)
/// Returns kNotFound for unknown names; method-specific kUnsupported /
/// kInvalidArgument errors pass through.
Result<std::unique_ptr<DeclusteringMethod>> CreateMethod(
    std::string_view name, const GridSpec& grid, uint32_t num_disks,
    const MethodOptions& options = {});

/// All registry names, in the order listed above.
std::vector<std::string> AllMethodNames();

/// The four methods the paper evaluates: DM/CMD, FX (auto), ECC, HCAM.
/// ECC is silently omitted when the configuration does not satisfy its
/// power-of-two requirements (mirrors the paper, which only runs ECC where
/// it is defined). Never returns an empty vector for valid inputs.
std::vector<std::unique_ptr<DeclusteringMethod>> CreatePaperMethods(
    const GridSpec& grid, uint32_t num_disks);

}  // namespace griddecl

#endif  // GRIDDECL_METHODS_REGISTRY_H_
