#include "griddecl/methods/replicated.h"

#include <set>

namespace griddecl {

Result<ReplicatedPlacement> ReplicatedPlacement::Create(
    std::unique_ptr<DeclusteringMethod> base, uint32_t num_replicas,
    uint32_t offset) {
  if (base == nullptr) {
    return Status::InvalidArgument("base method must be non-null");
  }
  const uint32_t m = base->num_disks();
  if (num_replicas < 1 || num_replicas > m) {
    return Status::InvalidArgument(
        "replica count must be in [1, M]; got " +
        std::to_string(num_replicas) + " for M=" + std::to_string(m));
  }
  if (num_replicas > 1 && offset % m == 0) {
    return Status::InvalidArgument(
        "offset must be non-zero modulo the disk count");
  }
  // Replica disks must be pairwise distinct: check i * offset mod M
  // distinct over i in [0, r).
  std::set<uint32_t> offsets;
  for (uint32_t i = 0; i < num_replicas; ++i) {
    if (!offsets
             .insert(static_cast<uint32_t>(
                 (static_cast<uint64_t>(i) * offset) % m))
             .second) {
      return Status::InvalidArgument(
          "offset " + std::to_string(offset) + " does not yield " +
          std::to_string(num_replicas) + " distinct replica disks for M=" +
          std::to_string(m));
    }
  }
  return ReplicatedPlacement(std::move(base), num_replicas, offset);
}

Result<ReplicatedPlacement> ReplicatedPlacement::CreateWithTable(
    std::unique_ptr<DeclusteringMethod> base,
    std::vector<std::vector<uint32_t>> replica_disks) {
  if (base == nullptr) {
    return Status::InvalidArgument("base method must be non-null");
  }
  const uint32_t m = base->num_disks();
  if (replica_disks.size() != m) {
    return Status::InvalidArgument(
        "replica table has " + std::to_string(replica_disks.size()) +
        " rows for M=" + std::to_string(m));
  }
  const size_t r = replica_disks.empty() ? 0 : replica_disks[0].size();
  if (r < 1 || r > m) {
    return Status::InvalidArgument("replica table rows must have 1..M disks");
  }
  for (uint32_t primary = 0; primary < m; ++primary) {
    const std::vector<uint32_t>& row = replica_disks[primary];
    if (row.size() != r) {
      return Status::InvalidArgument("replica table rows must be equal-size");
    }
    if (row[0] != primary) {
      return Status::InvalidArgument(
          "replica table row " + std::to_string(primary) +
          " must start with its primary disk");
    }
    std::set<uint32_t> distinct;
    for (uint32_t d : row) {
      if (d >= m || !distinct.insert(d).second) {
        return Status::InvalidArgument(
            "replica table row " + std::to_string(primary) +
            " has an out-of-range or duplicate disk");
      }
    }
  }
  ReplicatedPlacement placement(std::move(base), static_cast<uint32_t>(r),
                                /*offset=*/0);
  placement.table_ = std::move(replica_disks);
  return placement;
}

std::vector<uint32_t> ReplicatedPlacement::DisksOf(
    const BucketCoords& c) const {
  const uint32_t primary = base_->DiskOf(c);
  if (!table_.empty()) return table_[primary];
  const uint32_t m = base_->num_disks();
  std::vector<uint32_t> disks(num_replicas_);
  for (uint32_t i = 0; i < num_replicas_; ++i) {
    disks[i] = static_cast<uint32_t>(
        (primary + static_cast<uint64_t>(i) * offset_) % m);
  }
  return disks;
}

std::vector<uint64_t> ReplicatedPlacement::DiskLoadHistogram() const {
  std::vector<uint64_t> loads(base_->num_disks(), 0);
  base_->grid().ForEachBucket([&](const BucketCoords& c) {
    for (uint32_t d : DisksOf(c)) ++loads[d];
  });
  return loads;
}

}  // namespace griddecl
