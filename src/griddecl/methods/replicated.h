#ifndef GRIDDECL_METHODS_REPLICATED_H_
#define GRIDDECL_METHODS_REPLICATED_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "griddecl/methods/method.h"

/// \file
/// Replicated declustering.
///
/// The paper explicitly scopes replication out ("we do not consider
/// techniques where a data subspace can be assigned to more than one
/// disk") while noting that block-level replication was already standard
/// for reliability (RAID, its reference [7]). This module implements the
/// natural extension the paper leaves open: store every bucket on `r`
/// distinct disks and let the *query router* pick, per query, which
/// replica serves each bucket (eval/replica_router.h computes the optimal
/// choice exactly).
///
/// Placement policy: replica 0 is the base declustering method's disk;
/// replica i lives on `(disk + i * offset) mod M`. `offset = 1` is chained
/// declustering (Hsiao & DeWitt); `offset = M / r` approximates interleaved
/// mirroring. Requires r <= M and the offsets to produce distinct disks.

namespace griddecl {

/// A bucket-to-disk-set placement built from a base method.
class ReplicatedPlacement {
 public:
  /// Validated factory. Requires 1 <= num_replicas <= base->num_disks()
  /// and `i * offset mod M` distinct for i in [0, r) (guaranteed when
  /// offset and M are coprime, or when r * offset <= M).
  static Result<ReplicatedPlacement> Create(
      std::unique_ptr<DeclusteringMethod> base, uint32_t num_replicas,
      uint32_t offset = 1);

  /// Table-driven factory: `replica_disks[primary]` lists the disks
  /// holding every bucket whose base disk is `primary` (element 0 must be
  /// `primary` itself; all entries distinct and < M). This is how
  /// topology-aware cluster placements (cluster/placement.h) are lowered
  /// into the simulator: the node-level policy decides a per-primary-disk
  /// replica set, and the sweep evaluates it with the same degraded
  /// router the arithmetic `offset` placements use.
  static Result<ReplicatedPlacement> CreateWithTable(
      std::unique_ptr<DeclusteringMethod> base,
      std::vector<std::vector<uint32_t>> replica_disks);

  const DeclusteringMethod& base() const { return *base_; }
  uint32_t num_replicas() const { return num_replicas_; }
  uint32_t num_disks() const { return base_->num_disks(); }
  uint32_t offset() const { return offset_; }

  /// The `num_replicas` distinct disks holding bucket `c`; element 0 is
  /// the primary (the base method's disk).
  std::vector<uint32_t> DisksOf(const BucketCoords& c) const;

  /// Storage blow-up per disk: each disk holds `num_replicas` x its
  /// unreplicated share (loads returned in buckets, including replicas).
  std::vector<uint64_t> DiskLoadHistogram() const;

 private:
  ReplicatedPlacement(std::unique_ptr<DeclusteringMethod> base,
                      uint32_t num_replicas, uint32_t offset)
      : base_(std::move(base)),
        num_replicas_(num_replicas),
        offset_(offset) {}

  std::unique_ptr<DeclusteringMethod> base_;
  uint32_t num_replicas_;
  uint32_t offset_;
  /// Non-empty iff built by CreateWithTable; indexed by primary disk.
  std::vector<std::vector<uint32_t>> table_;
};

}  // namespace griddecl

#endif  // GRIDDECL_METHODS_REPLICATED_H_
