#include "griddecl/methods/simple.h"

namespace griddecl {

Result<std::unique_ptr<DeclusteringMethod>> LinearMethod::Create(
    GridSpec grid, uint32_t num_disks) {
  GRIDDECL_RETURN_IF_ERROR(ValidateMethodArgs(grid, num_disks));
  return std::unique_ptr<DeclusteringMethod>(
      new LinearMethod(std::move(grid), num_disks));
}

uint32_t LinearMethod::DiskOf(const BucketCoords& c) const {
  return static_cast<uint32_t>(grid_.Linearize(c) % num_disks_);
}

Result<std::unique_ptr<DeclusteringMethod>> RandomMethod::Create(
    GridSpec grid, uint32_t num_disks, uint64_t seed) {
  GRIDDECL_RETURN_IF_ERROR(ValidateMethodArgs(grid, num_disks));
  return std::unique_ptr<DeclusteringMethod>(
      new RandomMethod(std::move(grid), num_disks, seed));
}

uint32_t RandomMethod::DiskOf(const BucketCoords& c) const {
  // Stateless SplitMix64-style finalizer over (seed, linear index): the same
  // bucket always maps to the same disk, distinct buckets are i.i.d. uniform
  // to the quality of the mixer.
  uint64_t z = grid_.Linearize(c) + seed_ * 0x9e3779b97f4a7c15ULL +
               0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z = z ^ (z >> 31);
  return static_cast<uint32_t>(z % num_disks_);
}

}  // namespace griddecl
