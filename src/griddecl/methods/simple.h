#ifndef GRIDDECL_METHODS_SIMPLE_H_
#define GRIDDECL_METHODS_SIMPLE_H_

#include <cstdint>
#include <memory>

#include "griddecl/methods/method.h"

/// \file
/// Baseline declustering methods. Neither appears in the paper's main
/// comparison; both serve as reference points in the benchmarks:
///
/// * `Linear` — row-major round robin, `disk(b) = rowMajorRank(b) mod M`.
///   What a single-attribute range partitioner degenerates to; shows what
///   you lose by ignoring the multi-attribute structure.
/// * `Random` — an i.i.d. uniform hash of the bucket. The classic "no
///   structure at all" straw man; near-optimal in expectation for very
///   large queries, poor for small ones.

namespace griddecl {

/// Row-major round-robin allocation.
class LinearMethod final : public DeclusteringMethod {
 public:
  static Result<std::unique_ptr<DeclusteringMethod>> Create(
      GridSpec grid, uint32_t num_disks);

  uint32_t DiskOf(const BucketCoords& c) const override;

 private:
  LinearMethod(GridSpec grid, uint32_t num_disks)
      : DeclusteringMethod(std::move(grid), num_disks, "Linear") {}
};

/// Seeded pseudo-random allocation (stateless hash; deterministic for a
/// given seed, i.i.d. uniform across buckets).
class RandomMethod final : public DeclusteringMethod {
 public:
  static Result<std::unique_ptr<DeclusteringMethod>> Create(
      GridSpec grid, uint32_t num_disks, uint64_t seed);

  uint32_t DiskOf(const BucketCoords& c) const override;

 private:
  RandomMethod(GridSpec grid, uint32_t num_disks, uint64_t seed)
      : DeclusteringMethod(std::move(grid), num_disks, "Random"),
        seed_(seed) {}

  uint64_t seed_;
};

}  // namespace griddecl

#endif  // GRIDDECL_METHODS_SIMPLE_H_
