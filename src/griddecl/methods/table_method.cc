#include "griddecl/methods/table_method.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>

namespace griddecl {

namespace {

constexpr char kMagic[] = "griddecl-allocation";
constexpr char kVersion[] = "v1";

/// Reads the next non-comment, non-blank line; false at EOF.
bool NextContentLine(std::istream& is, std::string* line) {
  while (std::getline(is, *line)) {
    const size_t start = line->find_first_not_of(" \t\r");
    if (start == std::string::npos) continue;
    if ((*line)[start] == '#') continue;
    return true;
  }
  return false;
}

}  // namespace

Result<std::unique_ptr<DeclusteringMethod>> TableMethod::Create(
    GridSpec grid, uint32_t num_disks, std::vector<uint32_t> allocation,
    std::string name) {
  GRIDDECL_RETURN_IF_ERROR(ValidateMethodArgs(grid, num_disks));
  if (allocation.size() != grid.num_buckets()) {
    return Status::InvalidArgument(
        "allocation has " + std::to_string(allocation.size()) +
        " entries for a grid of " + std::to_string(grid.num_buckets()) +
        " buckets");
  }
  for (uint32_t v : allocation) {
    if (v >= num_disks) {
      return Status::InvalidArgument("allocation entry " + std::to_string(v) +
                                     " >= number of disks " +
                                     std::to_string(num_disks));
    }
  }
  return std::unique_ptr<DeclusteringMethod>(
      new TableMethod(std::move(grid), num_disks, std::move(allocation),
                      std::move(name)));
}

Result<std::unique_ptr<DeclusteringMethod>> TableMethod::FromMethod(
    const DeclusteringMethod& method) {
  std::vector<uint32_t> allocation;
  allocation.reserve(static_cast<size_t>(method.grid().num_buckets()));
  method.grid().ForEachBucket([&](const BucketCoords& c) {
    allocation.push_back(method.DiskOf(c));
  });
  return Create(method.grid(), method.num_disks(), std::move(allocation),
                method.name() + "-table");
}

uint32_t TableMethod::DiskOf(const BucketCoords& c) const {
  return allocation_[static_cast<size_t>(grid_.Linearize(c))];
}

Status SerializeAllocation(const DeclusteringMethod& method,
                           std::ostream& os) {
  os << kMagic << " " << kVersion << "\n";
  os << "# method: " << method.name() << "\n";
  os << "grid " << method.grid().ToString() << "\n";
  os << "disks " << method.num_disks() << "\n";
  uint64_t col = 0;
  method.grid().ForEachBucket([&](const BucketCoords& c) {
    os << method.DiskOf(c);
    os << (++col % 32 == 0 ? '\n' : ' ');
  });
  if (col % 32 != 0) os << "\n";
  if (!os.good()) return Status::Internal("stream write failed");
  return Status::Ok();
}

Result<std::unique_ptr<DeclusteringMethod>> DeserializeAllocation(
    std::istream& is) {
  std::string line;
  if (!NextContentLine(is, &line)) {
    return Status::InvalidArgument("empty allocation file");
  }
  {
    std::istringstream header(line);
    std::string magic;
    std::string version;
    header >> magic >> version;
    if (magic != kMagic) {
      return Status::InvalidArgument("bad magic: expected '" +
                                     std::string(kMagic) + "'");
    }
    if (version != kVersion) {
      return Status::InvalidArgument("unsupported version '" + version + "'");
    }
  }
  if (!NextContentLine(is, &line)) {
    return Status::InvalidArgument("missing grid line");
  }
  std::string shape;
  {
    std::istringstream grid_line(line);
    std::string keyword;
    grid_line >> keyword >> shape;
    if (keyword != "grid" || shape.empty()) {
      return Status::InvalidArgument("expected 'grid <d1>x<d2>x...'");
    }
  }
  Result<GridSpec> grid = GridSpec::FromString(shape);
  if (!grid.ok()) return grid.status();

  if (!NextContentLine(is, &line)) {
    return Status::InvalidArgument("missing disks line");
  }
  uint32_t num_disks = 0;
  {
    std::istringstream disks_line(line);
    std::string keyword;
    disks_line >> keyword >> num_disks;
    if (keyword != "disks" || num_disks == 0) {
      return Status::InvalidArgument("expected 'disks <M>' with M >= 1");
    }
  }

  std::vector<uint32_t> allocation;
  allocation.reserve(static_cast<size_t>(grid.value().num_buckets()));
  while (allocation.size() < grid.value().num_buckets() &&
         NextContentLine(is, &line)) {
    std::istringstream values(line);
    uint64_t v = 0;
    while (values >> v) {
      if (allocation.size() >= grid.value().num_buckets()) {
        return Status::InvalidArgument("too many allocation entries");
      }
      if (v >= num_disks) {
        return Status::InvalidArgument("allocation entry out of range");
      }
      allocation.push_back(static_cast<uint32_t>(v));
    }
    if (!values.eof()) {
      return Status::InvalidArgument("non-numeric allocation entry");
    }
  }
  if (allocation.size() != grid.value().num_buckets()) {
    return Status::InvalidArgument(
        "allocation has " + std::to_string(allocation.size()) +
        " entries, grid needs " +
        std::to_string(grid.value().num_buckets()));
  }
  return TableMethod::Create(std::move(grid).value(), num_disks,
                             std::move(allocation), "Table");
}

}  // namespace griddecl
