#ifndef GRIDDECL_METHODS_TABLE_METHOD_H_
#define GRIDDECL_METHODS_TABLE_METHOD_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "griddecl/methods/method.h"

/// \file
/// Explicit-table declustering: the allocation is an arbitrary array, one
/// disk id per bucket. Two jobs:
///
///  * the output format of the workload-aware optimizer (an optimized
///    allocation is not a formula, it is a table);
///  * persistence — a production system must be able to store the mapping
///    it declustered a relation with and reload it later, because records
///    cannot move when the method's code changes. `Serialize`/`Deserialize`
///    define a small versioned text format for that.
///
/// Text format (line oriented, '#' comments allowed):
///
///     griddecl-allocation v1
///     grid 32x32
///     disks 16
///     <one disk id per bucket, row-major, whitespace separated>

namespace griddecl {

/// Declustering by explicit lookup table.
class TableMethod final : public DeclusteringMethod {
 public:
  /// Validated factory: `allocation` must have grid.num_buckets() entries
  /// (row-major), each < num_disks.
  static Result<std::unique_ptr<DeclusteringMethod>> Create(
      GridSpec grid, uint32_t num_disks, std::vector<uint32_t> allocation,
      std::string name = "Table");

  /// Materializes any method into a table (snapshot of its allocation).
  static Result<std::unique_ptr<DeclusteringMethod>> FromMethod(
      const DeclusteringMethod& method);

  uint32_t DiskOf(const BucketCoords& c) const override;

  const std::vector<uint32_t>& allocation() const { return allocation_; }

 private:
  TableMethod(GridSpec grid, uint32_t num_disks,
              std::vector<uint32_t> allocation, std::string name)
      : DeclusteringMethod(std::move(grid), num_disks, std::move(name)),
        allocation_(std::move(allocation)) {}

  std::vector<uint32_t> allocation_;
};

/// Writes `method`'s complete allocation in the versioned text format.
/// Works for any method (the grid is enumerated).
Status SerializeAllocation(const DeclusteringMethod& method,
                           std::ostream& os);

/// Parses the text format back into a TableMethod.
Result<std::unique_ptr<DeclusteringMethod>> DeserializeAllocation(
    std::istream& is);

}  // namespace griddecl

#endif  // GRIDDECL_METHODS_TABLE_METHOD_H_
