#include "griddecl/methods/workload_opt.h"

#include <algorithm>
#include <utility>

#include "griddecl/common/random.h"
#include "griddecl/eval/metrics.h"
#include "griddecl/methods/table_method.h"

namespace griddecl {

namespace {

/// Mutable evaluation state for the hill climb: per-query per-disk counts,
/// per-query current max, the allocation, and the inverted index.
class ClimbState {
 public:
  ClimbState(const GridSpec& grid, uint32_t num_disks,
             std::vector<uint32_t> allocation, const Workload& workload)
      : grid_(grid),
        m_(num_disks),
        allocation_(std::move(allocation)),
        bucket_queries_(static_cast<size_t>(grid.num_buckets())) {
    counts_.reserve(workload.size());
    max_.reserve(workload.size());
    for (size_t qi = 0; qi < workload.size(); ++qi) {
      const RangeQuery& q = workload.queries[qi];
      std::vector<uint32_t> counts(m_, 0);
      q.rect().ForEachBucket([&](const BucketCoords& c) {
        const uint64_t lin = grid_.Linearize(c);
        bucket_queries_[static_cast<size_t>(lin)].push_back(
            static_cast<uint32_t>(qi));
        ++counts[allocation_[static_cast<size_t>(lin)]];
      });
      max_.push_back(*std::max_element(counts.begin(), counts.end()));
      counts_.push_back(std::move(counts));
    }
  }

  uint64_t TotalCost() const {
    uint64_t total = 0;
    for (uint32_t m : max_) total += m;
    return total;
  }

  /// Cost delta of moving bucket `lin` to `to`. `.first` is the change in
  /// the primary objective (summed response time); `.second` is the change
  /// in the plateau tiebreaker, the summed squared per-disk counts — a
  /// strictly convex load-variance term that rewards evening out disks even
  /// when the max is momentarily unchanged (without it the climb stalls on
  /// plateaus where several disks tie for the max).
  std::pair<int64_t, int64_t> MoveDelta(uint64_t lin, uint32_t to) const {
    const uint32_t from = allocation_[static_cast<size_t>(lin)];
    if (to == from) return {0, 0};
    int64_t primary = 0;
    int64_t secondary = 0;
    for (uint32_t qi : bucket_queries_[static_cast<size_t>(lin)]) {
      primary += NewMax(qi, from, to) - static_cast<int64_t>(max_[qi]);
      // d/dmove of (cf^2 + ct^2): (cf-1)^2 - cf^2 + (ct+1)^2 - ct^2.
      secondary += 2 * (static_cast<int64_t>(counts_[qi][to]) -
                        static_cast<int64_t>(counts_[qi][from]) + 1);
    }
    return {primary, secondary};
  }

  /// Applies the move and updates all incremental state.
  void ApplyMove(uint64_t lin, uint32_t to) {
    const uint32_t from = allocation_[static_cast<size_t>(lin)];
    GRIDDECL_CHECK(to != from);
    for (uint32_t qi : bucket_queries_[static_cast<size_t>(lin)]) {
      max_[qi] = static_cast<uint32_t>(NewMax(qi, from, to));
      --counts_[qi][from];
      ++counts_[qi][to];
    }
    allocation_[static_cast<size_t>(lin)] = to;
  }

  const std::vector<uint32_t>& allocation() const { return allocation_; }
  uint32_t num_disks() const { return m_; }

 private:
  /// Max count of query `qi` after moving one bucket from `from` to `to`.
  int64_t NewMax(uint32_t qi, uint32_t from, uint32_t to) const {
    const std::vector<uint32_t>& counts = counts_[qi];
    const uint32_t cur = max_[qi];
    const uint32_t to_after = counts[to] + 1;
    const uint32_t from_after = counts[from] - 1;
    if (to_after > cur) return to_after;
    if (counts[from] < cur) return cur;  // Max untouched by the decrement.
    // `from` held (one of) the max; rescan excluding the moved bucket.
    uint32_t best = std::max(to_after, from_after);
    for (uint32_t d = 0; d < m_; ++d) {
      if (d == from || d == to) continue;
      best = std::max(best, counts[d]);
    }
    return best;
  }

  const GridSpec& grid_;
  const uint32_t m_;
  std::vector<uint32_t> allocation_;
  /// Query indices touching each bucket (row-major bucket index).
  std::vector<std::vector<uint32_t>> bucket_queries_;
  std::vector<std::vector<uint32_t>> counts_;
  std::vector<uint32_t> max_;
};

}  // namespace

uint64_t WorkloadCost(const DeclusteringMethod& method,
                      const Workload& workload) {
  uint64_t total = 0;
  for (const RangeQuery& q : workload.queries) {
    total += ResponseTime(method, q);
  }
  return total;
}

Result<std::unique_ptr<DeclusteringMethod>> OptimizeForWorkload(
    const DeclusteringMethod& seed_method, const Workload& workload,
    const WorkloadOptimizeOptions& options, WorkloadOptimizeStats* stats) {
  if (workload.empty()) {
    return Status::InvalidArgument("cannot optimize for an empty workload");
  }
  if (workload.TotalBuckets() > (uint64_t{1} << 26)) {
    return Status::InvalidArgument(
        "workload volume too large to index; sample it first");
  }
  const GridSpec& grid = seed_method.grid();
  for (const RangeQuery& q : workload.queries) {
    if (!q.rect().WithinGrid(grid)) {
      return Status::InvalidArgument("workload query " + q.ToString() +
                                     " outside grid " + grid.ToString());
    }
  }

  // Snapshot the seed allocation.
  std::vector<uint32_t> allocation;
  allocation.reserve(static_cast<size_t>(grid.num_buckets()));
  grid.ForEachBucket(
      [&](const BucketCoords& c) { allocation.push_back(seed_method.DiskOf(c)); });

  ClimbState state(grid, seed_method.num_disks(), std::move(allocation),
                   workload);
  const uint64_t initial_cost = state.TotalCost();
  uint64_t moves = 0;
  uint32_t pass = 0;
  Rng rng(options.seed);
  // Only buckets that appear in some query can affect the objective.
  std::vector<bool> touched(static_cast<size_t>(grid.num_buckets()), false);
  for (const RangeQuery& q : workload.queries) {
    q.rect().ForEachBucket([&](const BucketCoords& c) {
      touched[static_cast<size_t>(grid.Linearize(c))] = true;
    });
  }
  std::vector<uint64_t> active;
  for (uint64_t lin = 0; lin < grid.num_buckets(); ++lin) {
    if (touched[static_cast<size_t>(lin)]) active.push_back(lin);
  }
  for (; pass < options.max_passes; ++pass) {
    bool improved = false;
    // Shuffle visit order each pass.
    for (uint64_t i = active.size(); i > 1; --i) {
      std::swap(active[i - 1],
                active[static_cast<size_t>(rng.NextBelow(i))]);
    }
    for (uint64_t lin : active) {
      std::pair<int64_t, int64_t> best_delta = {0, 0};
      uint32_t best_disk = 0;
      for (uint32_t d = 0; d < state.num_disks(); ++d) {
        const std::pair<int64_t, int64_t> delta = state.MoveDelta(lin, d);
        if (delta < best_delta) {
          best_delta = delta;
          best_disk = d;
        }
      }
      if (best_delta < std::pair<int64_t, int64_t>{0, 0}) {
        state.ApplyMove(lin, best_disk);
        ++moves;
        improved = true;
      }
    }
    if (!improved) break;
  }

  if (stats != nullptr) {
    stats->initial_cost = initial_cost;
    stats->final_cost = state.TotalCost();
    stats->moves_applied = moves;
    stats->passes = pass;
  }
  return TableMethod::Create(grid, seed_method.num_disks(),
                             state.allocation(),
                             seed_method.name() + "+opt");
}

}  // namespace griddecl
