#ifndef GRIDDECL_METHODS_WORKLOAD_OPT_H_
#define GRIDDECL_METHODS_WORKLOAD_OPT_H_

#include <cstdint>
#include <memory>

#include "griddecl/methods/method.h"
#include "griddecl/query/workload.h"

/// \file
/// Workload-aware allocation optimization.
///
/// The paper's closing recommendation is that "information about common
/// queries on a relation ought to be used in deciding the declustering for
/// it". This module turns that sentence into an algorithm: start from any
/// declustering method's allocation and hill-climb — repeatedly move single
/// buckets to the disk that most reduces the workload's summed response
/// time — until a local optimum (or the pass budget) is reached. The result
/// is an explicit `TableMethod` that can be serialized alongside the data.
///
/// The objective is exactly the paper's metric summed over the training
/// workload: sum over queries Q of max_disk |{b in Q on disk}|. Moves are
/// evaluated incrementally via an inverted bucket->queries index, so a pass
/// costs O(total query volume * M) rather than re-evaluating the workload
/// from scratch per candidate move.

namespace griddecl {

/// Optimization knobs.
struct WorkloadOptimizeOptions {
  /// Maximum hill-climbing sweeps over all buckets. The climb also stops
  /// early at the first sweep that finds no improving move.
  uint32_t max_passes = 8;
  /// Order in which buckets are visited is shuffled with this seed
  /// (visit order changes which local optimum is reached).
  uint64_t seed = 1;
};

/// Statistics about one optimization run.
struct WorkloadOptimizeStats {
  uint64_t initial_cost = 0;
  uint64_t final_cost = 0;
  uint64_t moves_applied = 0;
  uint32_t passes = 0;
};

/// Hill-climbs `seed_method`'s allocation against `workload` and returns
/// the optimized allocation as a TableMethod. Only queries of the seed
/// method's grid are legal in the workload. When `stats` is non-null it
/// receives run statistics.
///
/// Fails with kInvalidArgument for an empty workload or a workload whose
/// total bucket volume exceeds 2^26 (the inverted index would not be worth
/// building; sample the workload first).
Result<std::unique_ptr<DeclusteringMethod>> OptimizeForWorkload(
    const DeclusteringMethod& seed_method, const Workload& workload,
    const WorkloadOptimizeOptions& options = {},
    WorkloadOptimizeStats* stats = nullptr);

/// Total workload cost under `method`: sum of per-query response times.
/// The objective `OptimizeForWorkload` minimizes.
uint64_t WorkloadCost(const DeclusteringMethod& method,
                      const Workload& workload);

}  // namespace griddecl

#endif  // GRIDDECL_METHODS_WORKLOAD_OPT_H_
