#include "griddecl/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string_view>

#include "griddecl/common/check.h"

namespace griddecl::obs {

namespace {

/// Fixed shortest-stable float rendering; identical doubles render
/// identically, which is all snapshot determinism needs.
std::string JsonNum(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

bool IsTimingKey(const std::string& name) {
  constexpr std::string_view suffix = "_ms";
  return name.size() >= suffix.size() &&
         std::string_view(name).substr(name.size() - suffix.size()) == suffix;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {
  GRIDDECL_CHECK_MSG(!bounds_.empty(), "histogram needs at least one bound");
  for (size_t i = 1; i < bounds_.size(); ++i) {
    GRIDDECL_CHECK_MSG(bounds_[i - 1] < bounds_[i],
                       "histogram bounds must be strictly increasing");
  }
}

void Histogram::Observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<size_t>(it - bounds_.begin())];
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  const double clamped = std::min(100.0, std::max(0.0, p));
  // Nearest rank: the k-th smallest observation, k >= 1.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(
             std::ceil(clamped / 100.0 * static_cast<double>(count_))));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (cumulative >= rank) {
      // Overflow bucket (or any bucket whose bound exceeds the true max)
      // answers with the exact observed maximum.
      if (i == bounds_.size()) return max_;
      return std::min(bounds_[i], max_);
    }
  }
  return max_;  // Unreachable: cumulative == count_ >= rank by then.
}

void Histogram::Merge(const Histogram& other) {
  GRIDDECL_CHECK_MSG(bounds_ == other.bounds_,
                     "merging histograms with different bounds");
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  if (other.count_ > 0) {
    min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
    max_ = count_ == 0 ? other.max_ : std::max(max_, other.max_);
    count_ += other.count_;
    sum_ += other.sum_;
  }
}

void Histogram::Reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

std::vector<double> ExponentialBounds(double start, double factor, size_t n) {
  GRIDDECL_CHECK(start > 0 && factor > 1 && n >= 1);
  std::vector<double> bounds;
  bounds.reserve(n);
  double edge = start;
  for (size_t i = 0; i < n; ++i) {
    bounds.push_back(edge);
    edge *= factor;
  }
  return bounds;
}

std::vector<double> LinearBounds(double start, double step, size_t n) {
  GRIDDECL_CHECK(step > 0 && n >= 1);
  std::vector<double> bounds;
  bounds.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    bounds.push_back(start + step * static_cast<double>(i));
  }
  return bounds;
}

std::vector<double> DefaultLatencyBoundsMs() {
  return ExponentialBounds(0.001, 2.0, 24);  // 1 µs .. ~8.4 s.
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(bounds);
  return slot.get();
}

void MetricsRegistry::Merge(const MetricsRegistry& other) {
  GRIDDECL_CHECK_MSG(&other != this, "cannot merge a registry into itself");
  // Lock ordering: callers merge shards from the owning thread after
  // workers joined, so other's maps are quiescent.
  std::scoped_lock lock(mu_, other.mu_);
  for (const auto& [name, counter] : other.counters_) {
    auto& slot = counters_[name];
    if (slot == nullptr) slot = std::make_unique<Counter>();
    slot->Inc(counter->value());
  }
  for (const auto& [name, gauge] : other.gauges_) {
    if (!gauge->has_value()) continue;
    auto& slot = gauges_[name];
    if (slot == nullptr) slot = std::make_unique<Gauge>();
    slot->Set(gauge->value());
  }
  for (const auto& [name, histogram] : other.histograms_) {
    auto& slot = histograms_[name];
    if (slot == nullptr) {
      slot = std::make_unique<Histogram>(histogram->bounds());
    }
    slot->Merge(*histogram);
  }
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

std::string MetricsRegistry::ToJson(const JsonOptions& options) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string& ind = options.indent;
  std::string out;
  out += ind + "{\n";

  auto skip = [&](const std::string& name) {
    return !options.include_timings && IsTimingKey(name);
  };

  out += ind + "  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (skip(name)) continue;
    out += first ? "\n" : ",\n";
    out += ind + "    \"" + name + "\": " + std::to_string(counter->value());
    first = false;
  }
  out += first ? "},\n" : "\n" + ind + "  },\n";

  out += ind + "  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (skip(name) || !gauge->has_value()) continue;
    out += first ? "\n" : ",\n";
    out += ind + "    \"" + name + "\": " + JsonNum(gauge->value());
    first = false;
  }
  out += first ? "},\n" : "\n" + ind + "  },\n";

  out += ind + "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (skip(name)) continue;
    out += first ? "\n" : ",\n";
    out += ind + "    \"" + name + "\": {";
    out += "\"count\": " + std::to_string(h->count());
    out += ", \"sum\": " + JsonNum(h->sum());
    out += ", \"min\": " + JsonNum(h->min());
    out += ", \"max\": " + JsonNum(h->max());
    out += ", \"p50\": " + JsonNum(h->p50());
    out += ", \"p95\": " + JsonNum(h->p95());
    out += ", \"p99\": " + JsonNum(h->p99());
    out += ", \"buckets\": [";
    // Trailing overflow bucket rendered with a null bound.
    for (size_t i = 0; i <= h->bounds().size(); ++i) {
      if (i > 0) out += ", ";
      out += "{\"le\": ";
      out += i < h->bounds().size() ? JsonNum(h->bounds()[i]) : "null";
      out += ", \"count\": " + std::to_string(h->bucket_count(i)) + "}";
    }
    out += "]}";
    first = false;
  }
  out += first ? "}\n" : "\n" + ind + "  }\n";

  out += ind + "}\n";
  return out;
}

}  // namespace griddecl::obs
