#ifndef GRIDDECL_OBS_METRICS_H_
#define GRIDDECL_OBS_METRICS_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

/// \file
/// Low-overhead runtime observability: counters, gauges, fixed-boundary
/// histograms, and RAII scoped timers behind an explicitly passed
/// `MetricsRegistry`.
///
/// Design rules (see DESIGN.md "Observability"):
///
///  * **No globals.** A registry is handed to a subsystem through its
///    options struct (`EvalOptions::metrics`, `ThroughputOptions::metrics`,
///    `LoadOptions::metrics`, ...). Two concurrent runs with two registries
///    never share state.
///  * **Absent registry == true no-op.** Every instrumented call site holds
///    a metric pointer that is null when no registry was attached; the
///    null-safe helpers (`Inc`, `Observe`, `ScopedTimer`) then do nothing —
///    no allocation, no clock read, one predictable branch. Instrumented
///    hot paths are regression-tested to produce bit-identical primary
///    results with and without a registry.
///  * **Deterministic snapshots.** `ToJson` renders metrics in sorted key
///    order with fixed float formatting, so a deterministic workload yields
///    byte-identical JSON run over run. Wall-clock metrics are segregated
///    by naming convention — keys ending in `_ms` hold timing and are the
///    only nondeterministic values; `JsonOptions::include_timings = false`
///    drops them, which is what the byte-stability tests and the CI bench
///    artifacts rely on.
///  * **Sharded threading model.** Metric updates through `Counter*` /
///    `Histogram*` are not synchronized; parallel code gives each worker
///    its own shard registry and merges the shards in a deterministic
///    order afterwards (`MetricsRegistry::Merge`). Registry lookups
///    themselves are mutex-guarded, so resolving names is safe anywhere.
///
/// Key naming scheme: dot-separated lowercase path, subsystem first —
/// `eval.queries`, `sim.throughput.transient_retries`,
/// `storage.pages_read`, `scrub.repairs.mirror`. Per-instance suffixes
/// (e.g. a disk index) append one more dotted component. Timing keys end
/// in `_ms`.

namespace griddecl::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }

  /// Back to zero. For publishers that re-export *absolute* totals into a
  /// scratch registry on every snapshot (Reset + Inc) rather than deltas —
  /// see QueryService::SnapshotMetrics.
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

/// Last-written point-in-time value (e.g. a table size in bytes).
class Gauge {
 public:
  void Set(double v) {
    value_ = v;
    has_value_ = true;
  }
  double value() const { return value_; }
  bool has_value() const { return has_value_; }

  /// Back to the unset state (drops the value from JSON snapshots).
  void Reset() {
    value_ = 0.0;
    has_value_ = false;
  }

 private:
  double value_ = 0.0;
  bool has_value_ = false;
};

/// Fixed-boundary histogram over doubles.
///
/// `bounds` are strictly increasing inclusive upper edges; an observation
/// lands in the first bucket whose bound is >= the value, or in the
/// overflow bucket past the last bound. Count, sum, min, and max are
/// tracked exactly, so percentile queries can answer from the buckets
/// while the extremes stay precise.
class Histogram {
 public:
  /// `bounds` must be non-empty and strictly increasing (checked).
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Bucket `i` counts observations in (bounds[i-1], bounds[i]]; index
  /// bounds.size() is the overflow bucket.
  uint64_t bucket_count(size_t i) const { return counts_[i]; }

  /// Nearest-rank percentile from the buckets: the upper bound of the
  /// bucket holding the ceil(p/100 * count)-th smallest observation,
  /// clamped to the exact observed max (so p100 == max() and an
  /// all-overflow histogram still answers). p in [0, 100]; 0 when empty.
  double Percentile(double p) const;

  double p50() const { return Percentile(50); }
  double p95() const { return Percentile(95); }
  double p99() const { return Percentile(99); }

  /// Adds `other`'s observations; bounds must match (checked).
  void Merge(const Histogram& other);

  /// Drops every observation; bounds are kept.
  void Reset();

 private:
  std::vector<double> bounds_;
  std::vector<uint64_t> counts_;  // bounds_.size() + 1, last = overflow.
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exponential bucket edges: start, start*factor, ... (n edges).
std::vector<double> ExponentialBounds(double start, double factor, size_t n);
/// Linear bucket edges: start, start+step, ... (n edges).
std::vector<double> LinearBounds(double start, double step, size_t n);
/// Default latency edges in milliseconds: 0.001 ms .. ~8.7 s, factor 2.
std::vector<double> DefaultLatencyBoundsMs();

/// Snapshot rendering knobs.
struct JsonOptions {
  /// Include metrics whose key ends in `_ms` (wall-clock timings — the
  /// only nondeterministic values a deterministic run records).
  bool include_timings = true;
  /// Leading indentation applied to every line (for embedding).
  std::string indent;
};

/// Owns metrics by name. Lookups create on first use and are
/// mutex-guarded; returned pointers are stable for the registry's
/// lifetime. Updates through those pointers are deliberately
/// unsynchronized — use one registry per thread and `Merge` (see file
/// comment).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. Never null.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// Find-or-create; an existing histogram keeps its original bounds
  /// (callers agree on bounds by construction — names are namespaced).
  Histogram* GetHistogram(const std::string& name,
                          const std::vector<double>& bounds);

  /// Adds counters and histograms, overwrites gauges that `other` set;
  /// metrics absent here are created. Deterministic given a deterministic
  /// merge order.
  void Merge(const MetricsRegistry& other);

  /// Deterministic JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {...}}, keys sorted, floats via "%.9g".
  std::string ToJson(const JsonOptions& options = {}) const;

  /// Number of distinct metrics of all kinds (for tests).
  size_t size() const;

 private:
  // Maps keep JSON key order sorted; unique_ptr keeps addresses stable
  // across rehash-free map growth.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  mutable std::mutex mu_;
};

// --- Null-safe instrumentation helpers ------------------------------------
//
// Call sites resolve metric pointers once (null when no registry) and use
// these helpers in the hot path; with a null pointer each is a single
// branch and nothing else.

inline Counter* GetCounter(MetricsRegistry* r, const std::string& name) {
  return r != nullptr ? r->GetCounter(name) : nullptr;
}
inline Gauge* GetGauge(MetricsRegistry* r, const std::string& name) {
  return r != nullptr ? r->GetGauge(name) : nullptr;
}
inline Histogram* GetHistogram(MetricsRegistry* r, const std::string& name,
                               const std::vector<double>& bounds) {
  return r != nullptr ? r->GetHistogram(name, bounds) : nullptr;
}
inline void Inc(Counter* c, uint64_t n = 1) {
  if (c != nullptr) c->Inc(n);
}
inline void Set(Gauge* g, double v) {
  if (g != nullptr) g->Set(v);
}
inline void Observe(Histogram* h, double v) {
  if (h != nullptr) h->Observe(v);
}

/// RAII wall-clock timer: records elapsed milliseconds into a histogram at
/// destruction. With a null sink the clock is never read — constructing
/// and destroying the timer is a true no-op.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* sink) : sink_(sink) {
    if (sink_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (sink_ != nullptr) {
      const auto end = std::chrono::steady_clock::now();
      sink_->Observe(
          std::chrono::duration<double, std::milli>(end - start_).count());
    }
  }

 private:
  Histogram* sink_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace griddecl::obs

#endif  // GRIDDECL_OBS_METRICS_H_
