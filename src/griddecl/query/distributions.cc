#include "griddecl/query/distributions.h"

#include <algorithm>
#include <cmath>

namespace griddecl {

Result<ZipfSampler> ZipfSampler::Create(uint64_t n, double theta) {
  if (n < 1) return Status::InvalidArgument("Zipf needs n >= 1");
  if (!(theta >= 0) || !std::isfinite(theta)) {
    return Status::InvalidArgument("Zipf needs finite theta >= 0");
  }
  std::vector<double> cdf(static_cast<size_t>(n));
  double total = 0;
  for (uint64_t v = 0; v < n; ++v) {
    total += std::pow(static_cast<double>(v + 1), -theta);
    cdf[static_cast<size_t>(v)] = total;
  }
  for (double& c : cdf) c /= total;
  cdf.back() = 1.0;  // Guard against rounding.
  return ZipfSampler(std::move(cdf));
}

uint64_t ZipfSampler::Sample(Rng* rng) const {
  GRIDDECL_CHECK(rng != nullptr);
  const double u = rng->NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin());
}

double ZipfSampler::Probability(uint64_t v) const {
  GRIDDECL_CHECK(v < cdf_.size());
  const double below = v == 0 ? 0.0 : cdf_[static_cast<size_t>(v) - 1];
  return cdf_[static_cast<size_t>(v)] - below;
}

Result<Workload> ZipfPlacements(const GridSpec& grid, const QueryShape& shape,
                                size_t count, double theta, Rng* rng,
                                std::string name) {
  GRIDDECL_CHECK(rng != nullptr);
  if (shape.size() != grid.num_dims()) {
    return Status::InvalidArgument("shape does not match grid arity");
  }
  std::vector<ZipfSampler> samplers;
  for (uint32_t i = 0; i < grid.num_dims(); ++i) {
    if (shape[i] == 0 || shape[i] > grid.dim(i)) {
      return Status::InvalidArgument("shape extent outside [1, d_i]");
    }
    Result<ZipfSampler> s =
        ZipfSampler::Create(grid.dim(i) - shape[i] + 1, theta);
    if (!s.ok()) return s.status();
    samplers.push_back(std::move(s).value());
  }
  Workload w;
  w.name = std::move(name);
  w.queries.reserve(count);
  for (size_t q = 0; q < count; ++q) {
    BucketCoords lo(grid.num_dims());
    BucketCoords hi(grid.num_dims());
    for (uint32_t i = 0; i < grid.num_dims(); ++i) {
      lo[i] = static_cast<uint32_t>(samplers[i].Sample(rng));
      hi[i] = lo[i] + shape[i] - 1;
    }
    Result<BucketRect> rect = BucketRect::Create(lo, hi);
    GRIDDECL_CHECK(rect.ok());
    Result<RangeQuery> query =
        RangeQuery::Create(grid, std::move(rect).value());
    GRIDDECL_CHECK(query.ok());
    w.queries.push_back(std::move(query).value());
  }
  return w;
}

}  // namespace griddecl
