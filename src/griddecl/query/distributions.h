#ifndef GRIDDECL_QUERY_DISTRIBUTIONS_H_
#define GRIDDECL_QUERY_DISTRIBUTIONS_H_

#include <cstdint>
#include <vector>

#include "griddecl/common/random.h"
#include "griddecl/common/status.h"
#include "griddecl/query/generator.h"

/// \file
/// Skewed workload generation. The paper's experiments place queries
/// uniformly; production workloads concentrate on hot regions. This module
/// supplies a Zipf position sampler and a skewed-placement workload
/// builder so the evaluator, advisor and optimizer can be exercised under
/// realistic access skew (bench A7).

namespace griddecl {

/// Zipf(theta) distribution over {0, 1, ..., n-1}: P(v) proportional to
/// 1/(v+1)^theta. theta = 0 degenerates to uniform; larger theta means a
/// hotter head. Sampling is inverse-CDF via binary search, O(log n).
class ZipfSampler {
 public:
  /// Validated factory; requires n >= 1 and finite theta >= 0.
  static Result<ZipfSampler> Create(uint64_t n, double theta);

  uint64_t n() const { return static_cast<uint64_t>(cdf_.size()); }

  /// Draws one value in [0, n).
  uint64_t Sample(Rng* rng) const;

  /// Exact probability of value `v`.
  double Probability(uint64_t v) const;

 private:
  explicit ZipfSampler(std::vector<double> cdf) : cdf_(std::move(cdf)) {}

  /// cdf_[v] = P(value <= v); cdf_.back() == 1.
  std::vector<double> cdf_;
};

/// `count` placements of `shape` with each dimension's position drawn from
/// Zipf(theta) over the valid range (positions near the origin are hot).
/// theta = 0 reproduces `SampledPlacements` exactly in distribution.
Result<Workload> ZipfPlacements(const GridSpec& grid, const QueryShape& shape,
                                size_t count, double theta, Rng* rng,
                                std::string name);

}  // namespace griddecl

#endif  // GRIDDECL_QUERY_DISTRIBUTIONS_H_
