#include "griddecl/query/generator.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace griddecl {

namespace {

/// All divisors of `n`, ascending.
std::vector<uint64_t> Divisors(uint64_t n) {
  std::vector<uint64_t> small;
  std::vector<uint64_t> large;
  for (uint64_t d = 1; d * d <= n; ++d) {
    if (n % d == 0) {
      small.push_back(d);
      if (d != n / d) large.push_back(n / d);
    }
  }
  small.insert(small.end(), large.rbegin(), large.rend());
  return small;
}

/// Recursive search for the factorization of `area` into `dims_left`
/// extents, each within its dimension bound, minimizing the sum of squared
/// log deviations from the ideal per-dimension side. Returns false when no
/// factorization fits.
bool BestFactorization(uint64_t area, const std::vector<uint32_t>& bounds,
                       uint32_t dim, double* best_score,
                       std::vector<uint32_t>* current,
                       std::vector<uint32_t>* best) {
  const uint32_t k = static_cast<uint32_t>(bounds.size());
  if (dim == k) {
    if (area != 1) return false;
    double score = 0;
    // Ideal side: geometric mean of the chosen extents (equivalently
    // area^(1/k) of the original area); recompute from the result.
    double log_area = 0;
    for (uint32_t e : *current) log_area += std::log(static_cast<double>(e));
    const double ideal = log_area / k;
    for (uint32_t e : *current) {
      const double d = std::log(static_cast<double>(e)) - ideal;
      score += d * d;
    }
    if (score < *best_score) {
      *best_score = score;
      *best = *current;
    }
    return true;
  }
  bool any = false;
  for (uint64_t d : Divisors(area)) {
    if (d > bounds[dim]) break;
    (*current)[dim] = static_cast<uint32_t>(d);
    any |= BestFactorization(area / d, bounds, dim + 1, best_score, current,
                             best);
  }
  return any;
}

}  // namespace

Status QueryGenerator::ValidateShape(const QueryShape& shape) const {
  if (shape.size() != grid_.num_dims()) {
    return Status::InvalidArgument("shape has " +
                                   std::to_string(shape.size()) +
                                   " extents for a " + grid_.ToString() +
                                   " grid");
  }
  for (uint32_t i = 0; i < shape.size(); ++i) {
    if (shape[i] == 0 || shape[i] > grid_.dim(i)) {
      return Status::InvalidArgument(
          "shape extent " + std::to_string(shape[i]) + " on dimension " +
          std::to_string(i) + " outside [1, " + std::to_string(grid_.dim(i)) +
          "]");
    }
  }
  return Status::Ok();
}

Result<QueryShape> QueryGenerator::SquarishShape(uint64_t area) const {
  if (area == 0) return Status::InvalidArgument("query area must be >= 1");
  std::vector<uint32_t> bounds = grid_.dims();
  std::vector<uint32_t> current(bounds.size(), 1);
  std::vector<uint32_t> best;
  double best_score = std::numeric_limits<double>::infinity();
  if (!BestFactorization(area, bounds, 0, &best_score, &current, &best) ||
      best.empty()) {
    return Status::InvalidArgument("no factorization of area " +
                                   std::to_string(area) + " fits grid " +
                                   grid_.ToString());
  }
  return best;
}

Result<QueryShape> QueryGenerator::Shape2D(uint64_t area,
                                           double aspect) const {
  if (grid_.num_dims() != 2) {
    return Status::InvalidArgument("Shape2D requires a 2-d grid");
  }
  if (area == 0) return Status::InvalidArgument("query area must be >= 1");
  if (!(aspect > 0.0) || !std::isfinite(aspect)) {
    return Status::InvalidArgument("aspect must be positive and finite");
  }
  double best_score = std::numeric_limits<double>::infinity();
  QueryShape best;
  for (uint64_t w : Divisors(area)) {
    const uint64_t h = area / w;
    if (w > grid_.dim(0) || h > grid_.dim(1)) continue;
    const double score = std::abs(
        std::log(static_cast<double>(h) / static_cast<double>(w)) -
        std::log(aspect));
    if (score < best_score) {
      best_score = score;
      best = {static_cast<uint32_t>(w), static_cast<uint32_t>(h)};
    }
  }
  if (best.empty()) {
    return Status::InvalidArgument("no factor pair of area " +
                                   std::to_string(area) + " fits grid " +
                                   grid_.ToString());
  }
  return best;
}

Result<QueryShape> QueryGenerator::LineShape(uint32_t dim,
                                             uint32_t length) const {
  if (dim >= grid_.num_dims()) {
    return Status::InvalidArgument("dimension out of range");
  }
  if (length == 0 || length > grid_.dim(dim)) {
    return Status::InvalidArgument("line length outside [1, d_i]");
  }
  QueryShape shape(grid_.num_dims(), 1);
  shape[dim] = length;
  return shape;
}

Result<uint64_t> QueryGenerator::NumPlacements(const QueryShape& shape) const {
  GRIDDECL_RETURN_IF_ERROR(ValidateShape(shape));
  uint64_t n = 1;
  for (uint32_t i = 0; i < shape.size(); ++i) {
    n *= grid_.dim(i) - shape[i] + 1;
  }
  return n;
}

Result<Workload> QueryGenerator::AllPlacements(const QueryShape& shape,
                                               std::string name) const {
  GRIDDECL_RETURN_IF_ERROR(ValidateShape(shape));
  Workload w;
  w.name = std::move(name);
  const uint32_t k = grid_.num_dims();
  BucketCoords lo(k);
  for (;;) {
    BucketCoords hi(k);
    for (uint32_t i = 0; i < k; ++i) hi[i] = lo[i] + shape[i] - 1;
    Result<BucketRect> rect = BucketRect::Create(lo, hi);
    GRIDDECL_CHECK(rect.ok());
    Result<RangeQuery> q = RangeQuery::Create(grid_, std::move(rect).value());
    GRIDDECL_CHECK(q.ok());
    w.queries.push_back(std::move(q).value());
    // Odometer over valid positions, last dimension fastest.
    uint32_t dim = k;
    for (;;) {
      if (dim == 0) return w;
      --dim;
      ++lo[dim];
      if (lo[dim] + shape[dim] <= grid_.dim(dim)) break;
      lo[dim] = 0;
    }
  }
}

Result<Workload> QueryGenerator::SampledPlacements(const QueryShape& shape,
                                                   size_t count, Rng* rng,
                                                   std::string name) const {
  GRIDDECL_RETURN_IF_ERROR(ValidateShape(shape));
  GRIDDECL_CHECK(rng != nullptr);
  Workload w;
  w.name = std::move(name);
  w.queries.reserve(count);
  const uint32_t k = grid_.num_dims();
  for (size_t s = 0; s < count; ++s) {
    BucketCoords lo(k);
    BucketCoords hi(k);
    for (uint32_t i = 0; i < k; ++i) {
      const uint32_t max_lo = grid_.dim(i) - shape[i];
      lo[i] = static_cast<uint32_t>(rng->NextBelow(max_lo + 1));
      hi[i] = lo[i] + shape[i] - 1;
    }
    Result<BucketRect> rect = BucketRect::Create(lo, hi);
    GRIDDECL_CHECK(rect.ok());
    Result<RangeQuery> q = RangeQuery::Create(grid_, std::move(rect).value());
    GRIDDECL_CHECK(q.ok());
    w.queries.push_back(std::move(q).value());
  }
  return w;
}

Result<Workload> QueryGenerator::Placements(const QueryShape& shape,
                                            size_t max_exhaustive, Rng* rng,
                                            std::string name) const {
  Result<uint64_t> n = NumPlacements(shape);
  if (!n.ok()) return n.status();
  if (n.value() <= max_exhaustive) {
    return AllPlacements(shape, std::move(name));
  }
  return SampledPlacements(shape, max_exhaustive, rng, std::move(name));
}

Result<Workload> QueryGenerator::AllPartialMatch(
    const std::vector<uint32_t>& specified_dims, std::string name) const {
  for (uint32_t d : specified_dims) {
    if (d >= grid_.num_dims()) {
      return Status::InvalidArgument("specified dimension out of range");
    }
  }
  Workload w;
  w.name = std::move(name);
  // Odometer over the specified dimensions' values.
  std::vector<uint32_t> values(specified_dims.size(), 0);
  for (;;) {
    std::vector<std::optional<uint32_t>> spec(grid_.num_dims(), std::nullopt);
    for (size_t j = 0; j < specified_dims.size(); ++j) {
      spec[specified_dims[j]] = values[j];
    }
    Result<PartialMatchQuery> pm =
        PartialMatchQuery::Create(grid_, std::move(spec));
    GRIDDECL_CHECK(pm.ok());
    w.queries.push_back(pm.value().ToRangeQuery(grid_));
    size_t j = values.size();
    for (;;) {
      if (j == 0) return w;
      --j;
      if (++values[j] < grid_.dim(specified_dims[j])) break;
      values[j] = 0;
    }
  }
}

Result<Workload> QueryGenerator::RandomPartialMatch(uint32_t num_specified,
                                                    size_t count, Rng* rng,
                                                    std::string name) const {
  GRIDDECL_CHECK(rng != nullptr);
  if (num_specified > grid_.num_dims()) {
    return Status::InvalidArgument(
        "cannot specify more dimensions than the grid has");
  }
  Workload w;
  w.name = std::move(name);
  w.queries.reserve(count);
  for (size_t s = 0; s < count; ++s) {
    const std::vector<uint32_t> perm = rng->Permutation(grid_.num_dims());
    std::vector<std::optional<uint32_t>> spec(grid_.num_dims(), std::nullopt);
    for (uint32_t j = 0; j < num_specified; ++j) {
      const uint32_t dim = perm[j];
      spec[dim] = static_cast<uint32_t>(rng->NextBelow(grid_.dim(dim)));
    }
    Result<PartialMatchQuery> pm =
        PartialMatchQuery::Create(grid_, std::move(spec));
    GRIDDECL_CHECK(pm.ok());
    w.queries.push_back(pm.value().ToRangeQuery(grid_));
  }
  return w;
}

}  // namespace griddecl
