#ifndef GRIDDECL_QUERY_GENERATOR_H_
#define GRIDDECL_QUERY_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "griddecl/common/random.h"
#include "griddecl/common/status.h"
#include "griddecl/query/workload.h"

/// \file
/// Workload generation for the paper's experiments.
///
/// The paper averages each data point over query *placements*: a query of a
/// given shape is slid across the whole grid. `AllPlacements` enumerates
/// every position (exact averages, used wherever feasible);
/// `SampledPlacements` draws uniform positions for configurations where
/// enumeration is too large. Shape construction mirrors the experiments:
/// near-square shapes of a given area (Experiment 1), fixed-area shapes of a
/// given aspect ratio (Experiment 2), and partial-match patterns (theory
/// cross-checks).

namespace griddecl {

/// Extent of a query on each dimension; product = query area |Q|.
using QueryShape = std::vector<uint32_t>;

/// Workload builder bound to one grid.
class QueryGenerator {
 public:
  explicit QueryGenerator(GridSpec grid) : grid_(std::move(grid)) {}

  const GridSpec& grid() const { return grid_; }

  /// Near-square shape with exact area: picks the factorization of `area`
  /// into num_dims() extents closest to the hyper-cube, each fitting its
  /// dimension. Fails when no factorization fits the grid.
  Result<QueryShape> SquarishShape(uint64_t area) const;

  /// 2-D only: the factor pair `w x h` of `area` whose aspect `h / w` is
  /// closest to `aspect` (>= 1 means taller than wide). Fails when no factor
  /// pair fits the grid.
  Result<QueryShape> Shape2D(uint64_t area, double aspect) const;

  /// A 1-bucket-thick line of `length` buckets along dimension `dim`.
  Result<QueryShape> LineShape(uint32_t dim, uint32_t length) const;

  /// Every placement of `shape` in the grid, row-major order.
  Result<Workload> AllPlacements(const QueryShape& shape,
                                 std::string name) const;

  /// `count` placements of `shape`, positions i.i.d. uniform.
  Result<Workload> SampledPlacements(const QueryShape& shape, size_t count,
                                     Rng* rng, std::string name) const;

  /// Placements of `shape`: exhaustive when the number of placements is at
  /// most `max_exhaustive`, otherwise `max_exhaustive` uniform samples.
  /// This is the paper's averaging strategy with a safety valve.
  Result<Workload> Placements(const QueryShape& shape, size_t max_exhaustive,
                              Rng* rng, std::string name) const;

  /// All partial-match queries with exactly the dimensions in
  /// `specified_dims` fixed (every combination of fixed values), converted
  /// to range queries.
  Result<Workload> AllPartialMatch(const std::vector<uint32_t>& specified_dims,
                                   std::string name) const;

  /// `count` random partial-match queries with `num_specified` fixed
  /// attributes (dimensions and values uniform).
  Result<Workload> RandomPartialMatch(uint32_t num_specified, size_t count,
                                      Rng* rng, std::string name) const;

  /// Number of distinct placements of `shape` in the grid.
  Result<uint64_t> NumPlacements(const QueryShape& shape) const;

 private:
  Status ValidateShape(const QueryShape& shape) const;

  GridSpec grid_;
};

}  // namespace griddecl

#endif  // GRIDDECL_QUERY_GENERATOR_H_
