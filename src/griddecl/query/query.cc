#include "griddecl/query/query.h"

namespace griddecl {

Result<RangeQuery> RangeQuery::Create(const GridSpec& grid, BucketRect rect) {
  if (!rect.WithinGrid(grid)) {
    return Status::InvalidArgument("query " + rect.ToString() +
                                   " exceeds grid " + grid.ToString());
  }
  return RangeQuery(rect);
}

Result<PartialMatchQuery> PartialMatchQuery::Create(
    const GridSpec& grid, std::vector<std::optional<uint32_t>> spec) {
  if (spec.size() != grid.num_dims()) {
    return Status::InvalidArgument(
        "partial-match spec has " + std::to_string(spec.size()) +
        " entries for a " + std::to_string(grid.num_dims()) + "-d grid");
  }
  for (uint32_t i = 0; i < spec.size(); ++i) {
    if (spec[i].has_value() && *spec[i] >= grid.dim(i)) {
      return Status::InvalidArgument(
          "specified partition " + std::to_string(*spec[i]) +
          " outside dimension " + std::to_string(i) + " (size " +
          std::to_string(grid.dim(i)) + ")");
    }
  }
  return PartialMatchQuery(std::move(spec));
}

uint32_t PartialMatchQuery::NumSpecified() const {
  uint32_t n = 0;
  for (const auto& s : spec_) n += s.has_value() ? 1 : 0;
  return n;
}

RangeQuery PartialMatchQuery::ToRangeQuery(const GridSpec& grid) const {
  GRIDDECL_CHECK(grid.num_dims() == spec_.size());
  BucketCoords lo(num_dims());
  BucketCoords hi(num_dims());
  for (uint32_t i = 0; i < num_dims(); ++i) {
    if (spec_[i].has_value()) {
      lo[i] = hi[i] = *spec_[i];
    } else {
      lo[i] = 0;
      hi[i] = grid.dim(i) - 1;
    }
  }
  Result<BucketRect> rect = BucketRect::Create(lo, hi);
  GRIDDECL_CHECK(rect.ok());
  Result<RangeQuery> q = RangeQuery::Create(grid, std::move(rect).value());
  GRIDDECL_CHECK(q.ok());
  return std::move(q).value();
}

std::string PartialMatchQuery::ToString() const {
  std::string out = "(";
  for (uint32_t i = 0; i < spec_.size(); ++i) {
    if (i > 0) out += ", ";
    out += spec_[i].has_value() ? std::to_string(*spec_[i]) : "*";
  }
  out += ")";
  return out;
}

}  // namespace griddecl
