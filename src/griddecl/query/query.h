#ifndef GRIDDECL_QUERY_QUERY_H_
#define GRIDDECL_QUERY_QUERY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "griddecl/common/status.h"
#include "griddecl/grid/grid_spec.h"
#include "griddecl/grid/rect.h"

/// \file
/// Query model, following the paper's definitions:
///
/// * Range query: `l_i <= A_i <= u_i` on every attribute — a hyper-rectangle
///   of buckets. The most general single-relation query; the paper argues
///   performance evaluation must be on range queries.
/// * Partial-match query: each attribute either fixed to one partition or
///   unspecified (spans its full domain). The class most theory covers.
/// * Point query: a range query with `l_i = u_i` everywhere.

namespace griddecl {

/// A range query, resolved to bucket coordinates.
class RangeQuery {
 public:
  /// Wraps a rectangle of buckets. Must lie within `grid`.
  static Result<RangeQuery> Create(const GridSpec& grid, BucketRect rect);

  const BucketRect& rect() const { return rect_; }
  uint32_t num_dims() const { return rect_.num_dims(); }

  /// Number of buckets the query touches, |Q|.
  uint64_t NumBuckets() const { return rect_.Volume(); }

  /// True iff the query selects exactly one bucket.
  bool IsPoint() const { return NumBuckets() == 1; }

  std::string ToString() const { return rect_.ToString(); }

 private:
  explicit RangeQuery(BucketRect rect) : rect_(rect) {}
  BucketRect rect_;
};

/// A partial-match query: per attribute, either a fixed partition index or
/// unspecified.
class PartialMatchQuery {
 public:
  /// `spec[i]` is the fixed partition on dimension i, or nullopt when
  /// unspecified. At least one dimension must be unspecified for the query
  /// to be "partial"; fully-specified inputs are still accepted (they are
  /// point queries). Specified values must be within the grid.
  static Result<PartialMatchQuery> Create(
      const GridSpec& grid, std::vector<std::optional<uint32_t>> spec);

  uint32_t num_dims() const { return static_cast<uint32_t>(spec_.size()); }
  const std::vector<std::optional<uint32_t>>& spec() const { return spec_; }

  /// Number of attributes with a fixed value.
  uint32_t NumSpecified() const;

  /// The equivalent range query: unspecified dimensions span [0, d_i - 1].
  RangeQuery ToRangeQuery(const GridSpec& grid) const;

  std::string ToString() const;

 private:
  explicit PartialMatchQuery(std::vector<std::optional<uint32_t>> spec)
      : spec_(std::move(spec)) {}

  std::vector<std::optional<uint32_t>> spec_;
};

}  // namespace griddecl

#endif  // GRIDDECL_QUERY_QUERY_H_
