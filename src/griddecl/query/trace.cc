#include "griddecl/query/trace.h"

#include <istream>
#include <ostream>
#include <sstream>

namespace griddecl {

namespace {

constexpr char kMagic[] = "griddecl-workload";
constexpr char kVersion[] = "v1";

bool NextContentLine(std::istream& is, std::string* line) {
  while (std::getline(is, *line)) {
    const size_t start = line->find_first_not_of(" \t\r");
    if (start == std::string::npos) continue;
    if ((*line)[start] == '#') continue;
    return true;
  }
  return false;
}

}  // namespace

Status SerializeWorkload(const GridSpec& grid, const Workload& workload,
                         std::ostream& os) {
  for (const RangeQuery& q : workload.queries) {
    if (!q.rect().WithinGrid(grid)) {
      return Status::InvalidArgument("query " + q.ToString() +
                                     " outside grid " + grid.ToString());
    }
  }
  os << kMagic << " " << kVersion << "\n";
  os << "grid " << grid.ToString() << "\n";
  if (!workload.name.empty()) os << "name " << workload.name << "\n";
  for (const RangeQuery& q : workload.queries) {
    os << "q";
    for (uint32_t i = 0; i < q.num_dims(); ++i) {
      os << " " << q.rect().lo()[i] << " " << q.rect().hi()[i];
    }
    os << "\n";
  }
  if (!os.good()) return Status::Internal("stream write failed");
  return Status::Ok();
}

Result<WorkloadTrace> DeserializeWorkload(std::istream& is) {
  std::string line;
  if (!NextContentLine(is, &line)) {
    return Status::InvalidArgument("empty workload trace");
  }
  {
    std::istringstream header(line);
    std::string magic;
    std::string version;
    header >> magic >> version;
    if (magic != kMagic) {
      return Status::InvalidArgument("bad magic: expected '" +
                                     std::string(kMagic) + "'");
    }
    if (version != kVersion) {
      return Status::InvalidArgument("unsupported version '" + version + "'");
    }
  }
  if (!NextContentLine(is, &line)) {
    return Status::InvalidArgument("missing grid line");
  }
  std::string shape;
  {
    std::istringstream grid_line(line);
    std::string keyword;
    grid_line >> keyword >> shape;
    if (keyword != "grid" || shape.empty()) {
      return Status::InvalidArgument("expected 'grid <d1>x<d2>x...'");
    }
  }
  Result<GridSpec> grid = GridSpec::FromString(shape);
  if (!grid.ok()) return grid.status();
  const uint32_t k = grid.value().num_dims();

  Workload workload;
  while (NextContentLine(is, &line)) {
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "name") {
      std::string rest;
      std::getline(fields, rest);
      const size_t start = rest.find_first_not_of(" \t");
      workload.name = start == std::string::npos ? "" : rest.substr(start);
      continue;
    }
    if (tag != "q") {
      return Status::InvalidArgument("unexpected line '" + line + "'");
    }
    BucketCoords lo(k);
    BucketCoords hi(k);
    for (uint32_t i = 0; i < k; ++i) {
      int64_t a = -1;
      int64_t b = -1;
      if (!(fields >> a >> b) || a < 0 || b < 0) {
        return Status::InvalidArgument("malformed query line '" + line + "'");
      }
      lo[i] = static_cast<uint32_t>(a);
      hi[i] = static_cast<uint32_t>(b);
    }
    int64_t extra = 0;
    if (fields >> extra) {
      return Status::InvalidArgument("too many bounds on line '" + line +
                                     "'");
    }
    Result<BucketRect> rect = BucketRect::Create(lo, hi);
    if (!rect.ok()) return rect.status();
    Result<RangeQuery> q =
        RangeQuery::Create(grid.value(), std::move(rect).value());
    if (!q.ok()) return q.status();
    workload.queries.push_back(std::move(q).value());
  }
  return WorkloadTrace{std::move(grid).value(), std::move(workload)};
}

}  // namespace griddecl
