#ifndef GRIDDECL_QUERY_TRACE_H_
#define GRIDDECL_QUERY_TRACE_H_

#include <iosfwd>

#include "griddecl/common/status.h"
#include "griddecl/grid/grid_spec.h"
#include "griddecl/query/workload.h"

/// \file
/// Workload trace persistence. Lets users capture a production query mix
/// once and replay it through the evaluator, the advisor, or the optimizer
/// — the paper's "use information about common queries" recommendation
/// needs the common queries to exist as a durable artifact.
///
/// Text format (line oriented, '#' comments allowed):
///
///     griddecl-workload v1
///     grid 32x32
///     name my-workload
///     q <lo_1> <hi_1> <lo_2> <hi_2> ...     # one line per range query
///
/// Bounds are inclusive bucket coordinates, one (lo, hi) pair per grid
/// dimension.

namespace griddecl {

/// A deserialized trace: the grid it was captured against plus the queries.
struct WorkloadTrace {
  GridSpec grid;
  Workload workload;
};

/// Writes `workload` (queries on `grid`) in the trace format.
/// Every query must lie within `grid`.
Status SerializeWorkload(const GridSpec& grid, const Workload& workload,
                         std::ostream& os);

/// Parses a trace. Queries are validated against the declared grid.
Result<WorkloadTrace> DeserializeWorkload(std::istream& is);

}  // namespace griddecl

#endif  // GRIDDECL_QUERY_TRACE_H_
