#include "griddecl/query/workload.h"

namespace griddecl {

uint64_t Workload::TotalBuckets() const {
  uint64_t total = 0;
  for (const RangeQuery& q : queries) total += q.NumBuckets();
  return total;
}

void Workload::Append(const Workload& other) {
  queries.insert(queries.end(), other.queries.begin(), other.queries.end());
}

}  // namespace griddecl
