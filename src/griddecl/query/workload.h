#ifndef GRIDDECL_QUERY_WORKLOAD_H_
#define GRIDDECL_QUERY_WORKLOAD_H_

#include <string>
#include <vector>

#include "griddecl/query/query.h"

/// \file
/// A workload is a named bag of range queries; the evaluator averages the
/// response-time metric over it, exactly as the paper averages over query
/// placements.

namespace griddecl {

/// Named set of range queries.
struct Workload {
  std::string name;
  std::vector<RangeQuery> queries;

  size_t size() const { return queries.size(); }
  bool empty() const { return queries.empty(); }

  /// Total buckets touched across all queries.
  uint64_t TotalBuckets() const;

  /// Concatenates another workload's queries into this one.
  void Append(const Workload& other);
};

}  // namespace griddecl

#endif  // GRIDDECL_QUERY_WORKLOAD_H_
