#include "griddecl/serve/circuit_breaker.h"

#include "griddecl/common/check.h"

namespace griddecl {

Status ValidateBreakerOptions(const BreakerOptions& opts) {
  if (opts.min_events < 1) {
    return Status::InvalidArgument("breaker min_events must be >= 1");
  }
  if (opts.window < opts.min_events) {
    return Status::InvalidArgument("breaker window must be >= min_events");
  }
  if (!(opts.failure_ratio > 0.0) || !(opts.failure_ratio <= 1.0)) {
    return Status::InvalidArgument("breaker failure_ratio must be in (0, 1]");
  }
  if (!(opts.open_ms >= 0.0)) {
    return Status::InvalidArgument("breaker open_ms must be >= 0");
  }
  return Status::Ok();
}

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(const BreakerOptions& opts) : opts_(opts) {
  GRIDDECL_CHECK(ValidateBreakerOptions(opts).ok());
}

double CircuitBreaker::FailureRatio() const {
  if (window_total_ == 0) return 0.0;
  return static_cast<double>(window_failures_) /
         static_cast<double>(window_total_);
}

void CircuitBreaker::Decay() {
  if (window_total_ > opts_.window) {
    window_total_ /= 2;
    window_failures_ /= 2;
  }
}

void CircuitBreaker::Trip(double now_ms) {
  state_ = BreakerState::kOpen;
  opened_at_ms_ = now_ms;
  probe_outstanding_ = false;
}

bool CircuitBreaker::WouldRefuse(double now_ms) const {
  switch (state_) {
    case BreakerState::kClosed:
      return false;
    case BreakerState::kOpen:
      return now_ms - opened_at_ms_ < opts_.open_ms;
    case BreakerState::kHalfOpen:
      return true;  // The probe slot is taken.
  }
  return false;
}

bool CircuitBreaker::AllowRequest(double now_ms) {
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (now_ms - opened_at_ms_ >= opts_.open_ms) {
        state_ = BreakerState::kHalfOpen;
        probe_outstanding_ = true;
        counters_.half_opened++;
        return true;
      }
      return false;
    case BreakerState::kHalfOpen:
      // One probe at a time: nobody else gets in until it reports.
      return false;
  }
  return false;
}

void CircuitBreaker::RecordSuccess(double now_ms) {
  (void)now_ms;
  if (state_ == BreakerState::kHalfOpen) {
    state_ = BreakerState::kClosed;
    probe_outstanding_ = false;
    window_total_ = 0;
    window_failures_ = 0;
    counters_.closed++;
    return;
  }
  if (state_ == BreakerState::kOpen) return;  // Stale report; ignore.
  window_total_++;
  Decay();
}

void CircuitBreaker::RecordFailure(double now_ms) {
  if (state_ == BreakerState::kHalfOpen) {
    counters_.reopened++;
    Trip(now_ms);
    return;
  }
  if (state_ == BreakerState::kOpen) return;  // Stale report; ignore.
  window_total_++;
  window_failures_++;
  Decay();
  if (window_total_ >= opts_.min_events &&
      FailureRatio() >= opts_.failure_ratio) {
    counters_.opened++;
    Trip(now_ms);
  }
}

}  // namespace griddecl
