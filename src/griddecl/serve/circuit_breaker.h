#ifndef GRIDDECL_SERVE_CIRCUIT_BREAKER_H_
#define GRIDDECL_SERVE_CIRCUIT_BREAKER_H_

#include <cstdint>

#include "griddecl/common/status.h"

/// \file
/// Per-disk circuit breaker for the serving layer.
///
/// The classic three-state machine (closed -> open -> half-open), with two
/// choices that keep it deterministic and testable:
///
///  * **Virtual time.** Every method takes `now_ms` explicitly; the breaker
///    never reads a clock. Tests drive arbitrary schedules; the service
///    passes its own monotonic clock.
///  * **No internal locking.** The service guards each breaker with its own
///    mutex; the property test exercises the state machine single-threaded
///    with randomized event sequences.
///
/// Transition rules:
///
///  * closed -> open: once at least `min_events` outcomes are in the rolling
///    window and the failure ratio reaches `failure_ratio`.
///  * open -> half-open: the first `AllowRequest` at or after
///    `opened_at + open_ms`. Exactly ONE probe is admitted; further
///    `AllowRequest` calls are refused until the probe reports.
///  * half-open -> closed: the probe succeeds (window resets).
///  * half-open -> open: the probe fails (the open timer restarts).
///
/// The window is a simple event-count window (last `window` outcomes
/// approximated by decaying counts), not a time window: determinism matters
/// more here than exact rate estimation.

namespace griddecl {

struct BreakerOptions {
  /// Outcomes required in the window before the ratio is consulted; avoids
  /// tripping on the first failure of a cold disk.
  uint32_t min_events = 8;
  /// Approximate number of most-recent outcomes considered.
  uint32_t window = 32;
  /// Trip threshold: failures / total >= failure_ratio opens the breaker.
  double failure_ratio = 0.5;
  /// Virtual milliseconds an open breaker waits before admitting the
  /// half-open probe. Use a huge value (e.g. 1e18) to pin a tripped breaker
  /// open for a whole test.
  double open_ms = 100.0;
};

Status ValidateBreakerOptions(const BreakerOptions& opts);

enum class BreakerState { kClosed, kOpen, kHalfOpen };

/// Stable lowercase name ("closed", "open", "half_open").
const char* BreakerStateName(BreakerState state);

/// Cumulative transition counts, for metrics and schedule assertions.
struct BreakerCounters {
  uint64_t opened = 0;       ///< closed -> open trips.
  uint64_t half_opened = 0;  ///< open -> half-open probe admissions.
  uint64_t closed = 0;       ///< half-open -> closed recoveries.
  uint64_t reopened = 0;     ///< half-open -> open probe failures.
};

class CircuitBreaker {
 public:
  /// `opts` must satisfy ValidateBreakerOptions (checked).
  explicit CircuitBreaker(const BreakerOptions& opts);

  /// True iff a request may proceed at virtual time `now_ms`. In the open
  /// state this transitions to half-open (admitting exactly one probe) once
  /// `open_ms` has elapsed; while a probe is outstanding every other caller
  /// is refused.
  bool AllowRequest(double now_ms);

  /// Pure lookahead: true iff `AllowRequest(now_ms)` would return false.
  /// Never transitions state — planners use it to route around a tripped
  /// disk without consuming the half-open probe slot.
  bool WouldRefuse(double now_ms) const;

  /// Reports the outcome of an admitted request. In half-open state the
  /// first report is the probe's verdict; success closes, failure reopens.
  void RecordSuccess(double now_ms);
  void RecordFailure(double now_ms);

  BreakerState state() const { return state_; }
  const BreakerCounters& counters() const { return counters_; }
  /// Failure ratio over the current window (0 when no events).
  double FailureRatio() const;

 private:
  void Trip(double now_ms);
  /// Halves the window counts once they exceed `window`, so recent outcomes
  /// dominate while the arithmetic stays exact and order-deterministic.
  void Decay();

  BreakerOptions opts_;
  BreakerState state_ = BreakerState::kClosed;
  double opened_at_ms_ = 0.0;
  bool probe_outstanding_ = false;
  uint64_t window_total_ = 0;
  uint64_t window_failures_ = 0;
  BreakerCounters counters_;
};

}  // namespace griddecl

#endif  // GRIDDECL_SERVE_CIRCUIT_BREAKER_H_
