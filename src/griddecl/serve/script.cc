#include "griddecl/serve/script.h"

#include <cstdlib>
#include <string>

namespace griddecl::serve {

namespace {

/// Splits `text` on whitespace runs.
std::vector<std::string> Tokens(std::string_view text) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
    size_t start = i;
    while (i < text.size() && text[i] != ' ' && text[i] != '\t') ++i;
    if (i > start) tokens.emplace_back(text.substr(start, i - start));
  }
  return tokens;
}

Status ParseDoubles(const std::string& list, size_t line_no,
                    std::vector<double>* out) {
  size_t pos = 0;
  while (pos <= list.size()) {
    size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    const std::string piece = list.substr(pos, comma - pos);
    char* end = nullptr;
    const double v = std::strtod(piece.c_str(), &end);
    if (piece.empty() || end != piece.c_str() + piece.size()) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": bad number '" + piece + "'");
    }
    out->push_back(v);
    pos = comma + 1;
  }
  return Status::Ok();
}

}  // namespace

Result<std::vector<QueryRequest>> ParseServeScript(std::string_view text) {
  std::vector<QueryRequest> requests;
  size_t line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    const std::vector<std::string> tokens = Tokens(line);
    if (tokens.empty() || tokens[0][0] == '#') continue;
    if (tokens[0] != "query") {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": unknown directive '" + tokens[0] +
                                     "' (expected 'query')");
    }
    if (tokens.size() < 4 || tokens.size() > 5) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) +
          ": expected 'query <relation> <lo,..> <hi,..> [deadline_ms]'");
    }
    QueryRequest req;
    req.relation = tokens[1];
    Status st = ParseDoubles(tokens[2], line_no, &req.lo);
    if (!st.ok()) return st;
    st = ParseDoubles(tokens[3], line_no, &req.hi);
    if (!st.ok()) return st;
    if (req.lo.size() != req.hi.size()) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) + ": lo has " +
          std::to_string(req.lo.size()) + " attributes but hi has " +
          std::to_string(req.hi.size()));
    }
    if (tokens.size() == 5) {
      char* end = nullptr;
      req.deadline_ms = std::strtod(tokens[4].c_str(), &end);
      if (end != tokens[4].c_str() + tokens[4].size() ||
          !(req.deadline_ms > 0.0)) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": bad deadline '" + tokens[4] + "'");
      }
    }
    requests.push_back(std::move(req));
  }
  return requests;
}

}  // namespace griddecl::serve
