#ifndef GRIDDECL_SERVE_SCRIPT_H_
#define GRIDDECL_SERVE_SCRIPT_H_

#include <string_view>
#include <vector>

#include "griddecl/common/status.h"
#include "griddecl/serve/service.h"

/// \file
/// Text format for driving `declctl serve` with a batch of range queries.
///
/// One query per line:
///
///     query <relation> <lo1,lo2,...> <hi1,hi2,...> [deadline_ms]
///
/// `lo`/`hi` are comma-separated per-attribute bounds (no spaces inside a
/// list); the optional trailing number is a per-query deadline in
/// milliseconds. Blank lines and lines starting with `#` are skipped.
///
///     # two-attribute relation, 50 ms deadline on the second query
///     query uniform 0.1,0.2 0.4,0.9
///     query uniform 0.0,0.0 1.0,1.0 50

namespace griddecl::serve {

/// Parses a serve script into requests, in file order. Fails with
/// kInvalidArgument naming the offending line on any malformed input.
Result<std::vector<QueryRequest>> ParseServeScript(std::string_view text);

}  // namespace griddecl::serve

#endif  // GRIDDECL_SERVE_SCRIPT_H_
