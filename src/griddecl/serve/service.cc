#include "griddecl/serve/service.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <map>
#include <tuple>
#include <utility>

#include "griddecl/methods/registry.h"

namespace griddecl::serve {

// Page verification and decode live in gridfile/storage.h now
// (VerifyPageBytes / DecodePageBytes), invoked once at pool admission by
// the PageStore every read below goes through.

namespace {

constexpr double kNoDeadline = std::numeric_limits<double>::infinity();

}  // namespace

QueryService::QueryService(const StorageEnv* env, ServeOptions options,
                           uint32_t num_disks)
    : env_(env),
      options_(options),
      num_disks_(num_disks),
      start_(std::chrono::steady_clock::now()),
      latency_ms_(obs::DefaultLatencyBoundsMs()) {
  breakers_.assign(num_disks_, CircuitBreaker(options_.breaker));
  PageStore::Options store_options;
  store_options.pool_pages = options_.pool_pages;
  store_options.seed = options_.seed;
  store_ = std::make_unique<PageStore>(env_, store_options);
}

Result<std::unique_ptr<QueryService>> QueryService::Create(
    const StorageEnv* env, ServeOptions options) {
  if (env == nullptr) {
    return Status::InvalidArgument("QueryService needs a storage env");
  }
  if (options.num_threads < 1 || options.num_threads > 256) {
    return Status::InvalidArgument("num_threads must be in [1, 256]");
  }
  if (options.max_queue < 1) {
    return Status::InvalidArgument("max_queue must be >= 1");
  }
  if (!(options.default_deadline_ms >= 0.0)) {
    return Status::InvalidArgument("default_deadline_ms must be >= 0");
  }
  if (!(options.drain_deadline_ms >= 0.0)) {
    return Status::InvalidArgument("drain_deadline_ms must be >= 0");
  }
  {
    Status st = ValidateBackoffPolicy(options.read.retry);
    if (!st.ok()) return st;
    st = ValidateBreakerOptions(options.breaker);
    if (!st.ok()) return st;
  }
  if (options.read.on_damage != ReadPolicy::OnDamage::kFail) {
    return Status::InvalidArgument(
        "serve requires ReadPolicy::OnDamage::kFail (damage must surface "
        "as kUnavailable so the degraded paths engage)");
  }
  for (uint32_t attempt = 0;; ++attempt) {
    Result<CatalogManifest> manifest =
        options.generation != 0 ? ReadManifest(*env, options.generation)
                                : ReadCurrentManifest(*env);
    if (!manifest.ok()) return manifest.status();
    const CatalogManifest& m = manifest.value();
    if (m.num_disks < 1) {
      return Status::InvalidArgument("manifest declusters over zero disks");
    }
    std::unique_ptr<QueryService> service(
        new QueryService(env, options, m.num_disks));
    service->generation_ = m.generation;
    Status load_error = Status::Ok();
    for (size_t i = 0; i < m.relations.size(); ++i) {
      Result<Relation> rel = LoadRelation(*env, m, i);
      if (!rel.ok()) {
        load_error = rel.status();
        break;
      }
      std::string name = rel.value().name;
      const auto emplaced = service->relations_.emplace(
          std::move(name), std::move(rel).value());
      // Every copy shares the primary's layout (mirrors are byte-identical);
      // registering them lets the PageStore serve any copy from the pool.
      const Relation& r = emplaced.first->second;
      for (const std::string& file : r.copy_files) {
        service->store_->RegisterFile(file, r.layout);
      }
    }
    if (!load_error.ok()) {
      // The same concurrent-commit race LoadCatalogManifestConsistent
      // absorbs: a commit can advance CURRENT and GC generation G's files
      // mid-load. If the committed generation moved, retry at the new one;
      // otherwise the failure is real.
      if (options.generation != 0 || attempt >= 3) return load_error;
      Result<CatalogManifest> again = ReadCurrentManifest(*env);
      if (!again.ok() || again.value().generation == m.generation) {
        return load_error;
      }
      continue;
    }
    QueryService* self = service.get();
    for (uint32_t t = 0; t < options.num_threads; ++t) {
      service->workers_.emplace_back([self, t] { self->WorkerLoop(t); });
    }
    return service;
  }
}

QueryService::~QueryService() { (void)Shutdown(); }

Result<QueryService::Relation> QueryService::LoadRelation(
    const StorageEnv& env, const CatalogManifest& manifest, size_t index) {
  const ManifestRelation& mr = manifest.relations[index];
  Relation rel;
  rel.name = mr.name;
  rel.redundancy = mr.redundancy;
  const std::string data_name = manifest.DataFileName(index);
  Result<std::string> bytes = env.ReadFile(data_name);
  if (!bytes.ok()) return bytes.status();
  Result<FileLayout> layout = ParseFileLayout(bytes.value());
  if (!layout.ok()) return layout.status();
  rel.layout = layout.value();
  Result<GridFile> file = ParseGridFile(bytes.value());
  if (!file.ok()) return file.status();
  rel.file = std::make_unique<GridFile>(std::move(file).value());
  Result<std::unique_ptr<DeclusteringMethod>> method =
      CreateMethod(mr.method, rel.file->grid(), manifest.num_disks);
  if (!method.ok()) return method.status();
  rel.method = std::move(method).value();
  rel.disk_map = std::make_unique<DiskMap>(DiskMap::Build(*rel.method));
  rel.copy_files.push_back(data_name);
  if (mr.redundancy.policy == RelationRedundancy::Policy::kMirror) {
    for (uint32_t c = 1; c < mr.redundancy.copies; ++c) {
      rel.copy_files.push_back(manifest.MirrorFileName(index, c));
    }
    // The mirror copies realize chained declustering: copy r of a bucket
    // is served from replica r's disk, (primary + r) mod M.
    Result<std::unique_ptr<DeclusteringMethod>> base =
        CreateMethod(mr.method, rel.file->grid(), manifest.num_disks);
    if (!base.ok()) return base.status();
    Result<ReplicatedPlacement> placement = ReplicatedPlacement::Create(
        std::move(base).value(), mr.redundancy.copies, /*offset=*/1);
    if (!placement.ok()) return placement.status();
    rel.placement =
        std::make_unique<ReplicatedPlacement>(std::move(placement).value());
  } else if (mr.redundancy.policy == RelationRedundancy::Policy::kParity) {
    rel.parity_file = manifest.ParityFileName(index);
  }
  const GridSpec& grid = rel.file->grid();
  rel.bucket_pages.assign(static_cast<size_t>(grid.num_buckets()), {});
  const uint32_t capacity = rel.layout.page_capacity;
  for (RecordId id = 0; id < rel.file->num_records(); ++id) {
    const uint64_t bucket = grid.Linearize(rel.file->BucketOfRecord(id));
    const uint64_t page = id / capacity;
    std::vector<uint64_t>& pages =
        rel.bucket_pages[static_cast<size_t>(bucket)];
    // Ids within a bucket ascend, so pages arrive sorted; dedupe inline.
    if (pages.empty() || pages.back() != page) pages.push_back(page);
  }
  return rel;
}

double QueryService::NowMs() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

Result<std::future<QueryResult>> QueryService::Submit(QueryRequest request) {
  Pending p;
  p.request = std::move(request);
  const double now = NowMs();
  p.submitted_ms = now;
  const double budget = p.request.deadline_ms > 0.0
                            ? p.request.deadline_ms
                            : options_.default_deadline_ms;
  p.deadline_ms = budget > 0.0 ? now + budget : kNoDeadline;
  std::future<QueryResult> future = p.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (draining_) {
      return Status::Unavailable("service is shutting down");
    }
    if (queue_.size() >= options_.max_queue) {
      std::lock_guard<std::mutex> m(metrics_mu_);
      shed_++;
      return Status::ResourceExhausted(
          "admission queue full (" + std::to_string(options_.max_queue) +
          " queued); request shed");
    }
    queue_.push_back(std::move(p));
    queue_max_depth_ =
        std::max<uint64_t>(queue_max_depth_, queue_.size());
  }
  {
    std::lock_guard<std::mutex> m(metrics_mu_);
    admitted_++;
  }
  queue_cv_.notify_one();
  return future;
}

QueryResult QueryService::Execute(QueryRequest request) {
  Result<std::future<QueryResult>> future = Submit(std::move(request));
  if (!future.ok()) {
    QueryResult r;
    r.status = future.status();
    return r;
  }
  return future.value().get();
}

void QueryService::WorkerLoop(uint32_t /*worker_id*/) {
  for (;;) {
    Pending p;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] { return !queue_.empty() || draining_; });
      if (queue_.empty()) return;  // draining_ and nothing left to do.
      p = std::move(queue_.front());
      queue_.pop_front();
      if (hard_stop_.load()) {
        lock.unlock();
        QueryResult r;
        r.status = Status::Unavailable(
            "shed at shutdown: drain deadline exceeded");
        {
          std::lock_guard<std::mutex> m(metrics_mu_);
          failed_++;
        }
        p.promise.set_value(std::move(r));
        drained_cv_.notify_all();
        continue;
      }
      in_flight_++;
    }
    QueryResult result = RunQuery(p);
    {
      std::lock_guard<std::mutex> m(metrics_mu_);
      if (result.status.ok()) {
        completed_++;
      } else {
        failed_++;
      }
      retries_ += result.retries;
      rerouted_buckets_ += result.rerouted_buckets;
      failover_reads_ += result.failover_reads;
      reconstructed_pages_ += result.reconstructed_pages;
      pool_hits_ += result.pool_hits;
      zone_map_skips_ += result.zone_map_skips;
      latency_ms_.Observe(result.total_ms);
    }
    p.promise.set_value(std::move(result));
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      in_flight_--;
      if (queue_.empty() && in_flight_ == 0) drained_cv_.notify_all();
    }
  }
}

QueryResult QueryService::RunQuery(const Pending& p) {
  QueryResult result;
  const double started = NowMs();
  result.queue_ms = started - p.submitted_ms;
  const auto finish = [&](Status st) -> QueryResult {
    result.status = std::move(st);
    if (!result.status.ok()) result.matches.clear();
    result.total_ms = NowMs() - p.submitted_ms;
    return std::move(result);
  };

  if (p.deadline_ms != kNoDeadline && started > p.deadline_ms) {
    return finish(Status::DeadlineExceeded("deadline expired while queued"));
  }
  // The cutover fence: a fenced request must land on the generation its
  // coordinator planned against, before any page is read.
  if (p.request.expected_generation != 0 &&
      p.request.expected_generation != generation_) {
    {
      std::lock_guard<std::mutex> m(metrics_mu_);
      generation_fenced_++;
    }
    return finish(Status::FailedPrecondition(
        "generation fence: request expects catalog generation " +
        std::to_string(p.request.expected_generation) +
        " but this service serves " + std::to_string(generation_)));
  }
  const auto it = relations_.find(p.request.relation);
  if (it == relations_.end()) {
    return finish(
        Status::NotFound("no relation named '" + p.request.relation + "'"));
  }
  const Relation& rel = it->second;
  Result<RangeQuery> resolved =
      rel.file->ResolveRange(p.request.lo, p.request.hi);
  if (!resolved.ok()) return finish(resolved.status());
  const RangeQuery& query = resolved.value();
  result.buckets_touched = query.NumBuckets();
  const GridSpec& grid = rel.file->grid();
  const RelationRedundancy::Policy policy = rel.redundancy.policy;

  // Coordinator extensions: a disk-ownership filter and/or a pinned mirror
  // copy route the query through the per-bucket planning path below.
  const bool filtered = !p.request.disks.empty();
  const uint32_t pinned_copy = p.request.serve_copy;
  const bool per_bucket_path = filtered || pinned_copy > 0;
  std::vector<bool> allowed;
  if (filtered) {
    allowed.assign(num_disks_, false);
    for (uint32_t d : p.request.disks) {
      if (d >= num_disks_) {
        return finish(Status::InvalidArgument(
            "request disk " + std::to_string(d) + " out of range [0, " +
            std::to_string(num_disks_) + ")"));
      }
      allowed[d] = true;
    }
  }
  if (pinned_copy > 0) {
    if (policy != RelationRedundancy::Policy::kMirror ||
        pinned_copy >= rel.copy_files.size()) {
      return finish(Status::InvalidArgument(
          "serve_copy " + std::to_string(pinned_copy) +
          " needs a mirror relation with more copies"));
    }
  }

  // --- Plan: assign every touched bucket a (disk, copy) --------------------
  // The mask routed around is "breakers that would refuse right now",
  // probed without consuming half-open slots; actual admission happens per
  // batch below.
  std::vector<bool> touched(num_disks_, false);
  rel.disk_map->ForEachRowSpan(query.rect(), [&](uint64_t begin,
                                                 uint64_t length) {
    for (uint64_t j = 0; j < length; ++j) {
      touched[rel.disk_map->DiskAt(begin + j)] = true;
    }
  });
  std::vector<bool> refused(num_disks_, false);
  bool any_refused = false;
  {
    std::lock_guard<std::mutex> lock(breaker_mu_);
    const double now = NowMs();
    for (uint32_t d = 0; d < num_disks_; ++d) {
      // The per-bucket path may assign replica disks the primary sweep
      // never touched, so it needs the full mask.
      if ((touched[d] || per_bucket_path) && breakers_[d].WouldRefuse(now)) {
        refused[d] = true;
        any_refused = true;
      }
    }
  }

  struct Assign {
    uint32_t disk = 0;
    uint32_t copy = 0;
    bool reconstruct = false;
  };
  std::unordered_map<uint64_t, Assign> assignment;
  assignment.reserve(static_cast<size_t>(result.buckets_touched));

  if (!per_bucket_path && any_refused &&
      policy == RelationRedundancy::Policy::kMirror) {
    // Plan-time reroute through the same machinery the simulator uses.
    Result<DegradedPlan> plan =
        DegradedPlan::ForReplicated(*rel.placement, refused);
    if (!plan.ok()) return finish(plan.status());
    Result<DegradedPlan::QueryPlan> expanded =
        plan.value().ExpandQuery(query);
    if (!expanded.ok()) return finish(expanded.status());
    const DegradedPlan::QueryPlan& qp = expanded.value();
    if (qp.unavailable_buckets > 0) {
      return finish(Status::Unavailable(
          std::to_string(qp.unavailable_buckets) +
          " buckets have no live replica"));
    }
    result.rerouted_buckets = qp.rerouted_buckets;
    for (uint32_t d = 0; d < num_disks_; ++d) {
      for (uint64_t addr : qp.per_disk[d]) {
        const std::vector<uint32_t> disks =
            rel.placement->DisksOf(grid.Delinearize(addr));
        uint32_t copy = 0;
        while (copy < disks.size() && disks[copy] != d) ++copy;
        if (copy == disks.size()) {
          return finish(Status::Internal(
              "replica plan assigned a bucket to a non-replica disk"));
        }
        assignment[addr] = {d, copy, false};
      }
    }
  } else {
    // Primary (or pinned-copy) placement, one bucket at a time. A refused
    // disk's buckets reconstruct from parity when the relation has it,
    // reroute to an un-refused mirror replica, or fail the query.
    uint64_t dead_buckets = 0;
    rel.disk_map->ForEachRowSpan(query.rect(), [&](uint64_t begin,
                                                   uint64_t length) {
      for (uint64_t j = 0; j < length; ++j) {
        const uint64_t addr = begin + j;
        const uint32_t primary = rel.disk_map->DiskAt(addr);
        if (filtered && !allowed[primary]) continue;
        Assign a{primary, 0, false};
        if (pinned_copy > 0) {
          a.copy = pinned_copy;
          a.disk = rel.placement->DisksOf(grid.Delinearize(addr))[pinned_copy];
        }
        if (refused[a.disk]) {
          if (policy == RelationRedundancy::Policy::kParity) {
            a.reconstruct = true;
          } else if (policy == RelationRedundancy::Policy::kMirror) {
            // Reroute this bucket to its first un-refused replica (the
            // whole-query re-expansion above is primary-placement only).
            const std::vector<uint32_t> disks =
                rel.placement->DisksOf(grid.Delinearize(addr));
            for (uint32_t step = 1; step < disks.size(); ++step) {
              const uint32_t c =
                  (a.copy + step) % static_cast<uint32_t>(disks.size());
              if (!refused[disks[c]]) {
                a.copy = c;
                a.disk = disks[c];
                result.rerouted_buckets++;
                break;
              }
            }
            // Every replica refused: keep the assignment — inline mirror
            // failover still tries each copy at read time.
          } else {
            dead_buckets++;
          }
        }
        assignment[addr] = a;
      }
    });
    if (dead_buckets > 0) {
      return finish(Status::Unavailable(
          std::to_string(dead_buckets) +
          " buckets on tripped disks and the relation has no redundancy"));
    }
    if (per_bucket_path) result.buckets_touched = assignment.size();
  }

  // --- Gather page reads, grouped per disk (the breaker unit) --------------
  struct PageRead {
    uint32_t copy = 0;
    uint64_t page = 0;
    bool reconstruct = false;
  };
  std::map<uint32_t, std::map<std::pair<uint32_t, uint64_t>, bool>> by_disk;
  for (const auto& [addr, a] : assignment) {
    for (uint64_t page : rel.bucket_pages[static_cast<size_t>(addr)]) {
      bool& recon = by_disk[a.disk][{a.copy, page}];
      recon = recon || a.reconstruct;
    }
  }

  const uint32_t num_attrs = rel.layout.num_attrs;
  std::vector<double> values(num_attrs);
  std::vector<uint8_t> match_mask;

  // --- Execute, disk by disk ----------------------------------------------
  for (const auto& [disk, reads] : by_disk) {
    if (hard_stop_.load()) {
      return finish(Status::Unavailable("service shutting down"));
    }
    if (p.deadline_ms != kNoDeadline && NowMs() > p.deadline_ms) {
      return finish(
          Status::DeadlineExceeded("deadline expired between disk batches"));
    }
    // Admission: false either because the plan already routed around this
    // disk, or because its breaker tripped (or lost the probe race) since
    // planning — then every page goes straight to the degraded path.
    const bool admitted = AllowDisk(disk);
    bool direct_ok = true;
    for (const auto& [key, reconstruct] : reads) {
      const auto& [copy, page] = key;
      Result<PinnedPage> pinned = ReadPageResilient(
          rel, copy, page, p.deadline_ms,
          /*try_direct=*/admitted && !reconstruct, &direct_ok, &result);
      if (!pinned.ok()) {
        if (admitted) RecordDiskOutcome(disk, false);
        return finish(pinned.status());
      }
      const DecodedPage& decoded = pinned.value().decoded();
      // Zone-map skip: min/max prove no record intersects the predicate
      // box, so the whole page needs no filtering.
      if (!decoded.MayMatch(p.request.lo, p.request.hi)) {
        result.zone_map_skips++;
        continue;
      }
      // Branch-free columnar filter: AND per-attribute range masks over
      // the column vectors, then resolve bucket assignment only for the
      // surviving slots (accept records whose bucket this (disk, copy)
      // serves).
      const uint32_t in_page = decoded.num_records;
      match_mask.assign(in_page, 1);
      for (uint32_t a = 0; a < num_attrs; ++a) {
        const double lo = p.request.lo[a];
        const double hi = p.request.hi[a];
        const double* col = decoded.column(a);
        uint8_t* mask = match_mask.data();
        for (uint32_t slot = 0; slot < in_page; ++slot) {
          mask[slot] &=
              static_cast<uint8_t>(col[slot] >= lo && col[slot] <= hi);
        }
      }
      for (uint32_t slot = 0; slot < in_page; ++slot) {
        if (!match_mask[slot]) continue;
        for (uint32_t a = 0; a < num_attrs; ++a) {
          values[a] = decoded.column(a)[slot];
        }
        const uint64_t addr =
            grid.Linearize(rel.file->partitioner().BucketOf(values));
        const auto assigned = assignment.find(addr);
        if (assigned == assignment.end() ||
            assigned->second.disk != disk || assigned->second.copy != copy) {
          continue;
        }
        result.matches.push_back(page * rel.layout.page_capacity + slot);
      }
    }
    if (admitted) RecordDiskOutcome(disk, direct_ok);
  }

  std::sort(result.matches.begin(), result.matches.end());
  return finish(Status::Ok());
}

InterruptFn QueryService::MakeInterrupt(double deadline_ms) const {
  return [this, deadline_ms]() -> Status {
    if (hard_stop_.load()) {
      return Status::Unavailable("service shutting down");
    }
    if (deadline_ms != kNoDeadline && NowMs() > deadline_ms) {
      return Status::DeadlineExceeded("deadline expired before read");
    }
    return Status::Ok();
  };
}

Result<PinnedPage> QueryService::ReadPageResilient(
    const Relation& rel, uint32_t assigned_copy, uint64_t page,
    double deadline_ms, bool try_direct, bool* direct_ok,
    QueryResult* result) {
  Status direct_status =
      Status::Unavailable("disk routed around; direct read skipped");
  if (try_direct) {
    Result<PinnedPage> direct =
        ReadPagePinned(rel, assigned_copy, page, deadline_ms, result);
    if (direct.ok()) return direct;
    *direct_ok = false;
    if (direct.status().code() != StatusCode::kUnavailable) {
      return direct.status();  // Deadline / malformed request: no failover.
    }
    direct_status = direct.status();
  }
  if (rel.redundancy.policy == RelationRedundancy::Policy::kMirror) {
    for (uint32_t copy = 0; copy < rel.copy_files.size(); ++copy) {
      if (copy == assigned_copy) continue;
      Result<PinnedPage> alt =
          ReadPagePinned(rel, copy, page, deadline_ms, result);
      if (alt.ok()) {
        result->failover_reads++;
        return alt;
      }
      if (alt.status().code() != StatusCode::kUnavailable) {
        return alt.status();
      }
    }
    return Status::Unavailable("page " + std::to_string(page) +
                               " unreadable on every mirror copy");
  }
  if (rel.redundancy.policy == RelationRedundancy::Policy::kParity) {
    return ReconstructPage(rel, page, deadline_ms, result);
  }
  return direct_status;
}

Result<PinnedPage> QueryService::ReadPagePinned(const Relation& rel,
                                                uint32_t copy,
                                                uint64_t page,
                                                double deadline_ms,
                                                QueryResult* result) {
  PageReadStats stats;
  Result<PinnedPage> pinned =
      store_->GetPage(rel.copy_files[copy], page, options_.read, &stats,
                      MakeInterrupt(deadline_ms));
  result->retries += stats.retries;
  if (pinned.ok()) {
    result->pages_read++;
    if (stats.cache_hit) result->pool_hits++;
  }
  return pinned;
}

Result<PinnedPage> QueryService::ReconstructPage(const Relation& rel,
                                                 uint64_t page,
                                                 double deadline_ms,
                                                 QueryResult* result) {
  if (rel.parity_file.empty()) {
    return Status::Unavailable("page " + std::to_string(page) +
                               " unreadable and relation has no parity");
  }
  const uint32_t group = rel.redundancy.group_pages;
  const uint64_t stripe = page / group;
  const uint64_t first = stripe * group;
  const uint64_t last =
      std::min<uint64_t>(first + group, rel.layout.num_pages);
  const auto degrade = [&](const Status& st) -> Status {
    if (st.code() == StatusCode::kDeadlineExceeded) return st;
    return Status::Unavailable("reconstruction of page " +
                               std::to_string(page) +
                               " failed: " + st.message());
  };
  // Parity pages carry no grid-file layout of their own: raw uncached
  // read with the same retry/interrupt machinery.
  PageReadStats parity_stats;
  Result<std::string> acc = store_->ReadRaw(
      rel.parity_file, stripe * rel.layout.page_size_bytes,
      rel.layout.page_size_bytes, options_.read, &parity_stats,
      MakeInterrupt(deadline_ms));
  result->retries += parity_stats.retries;
  if (!acc.ok()) return degrade(acc.status());
  result->pages_read++;
  std::string rebuilt = std::move(acc).value();
  for (uint64_t sibling = first; sibling < last; ++sibling) {
    if (sibling == page) continue;
    // Stripe siblings are ordinary data pages: pooled reads, so repeated
    // reconstructions of a stripe fetch each survivor once.
    Result<PinnedPage> bytes =
        ReadPagePinned(rel, 0, sibling, deadline_ms, result);
    if (!bytes.ok()) return degrade(bytes.status());
    const std::string_view src = bytes.value().raw();
    for (uint32_t b = 0; b < rel.layout.page_size_bytes; ++b) {
      rebuilt[b] = static_cast<char>(rebuilt[b] ^ src[b]);
    }
  }
  // Self-check, decode, and pin — without admitting under the data file's
  // key (see header: breakers must keep observing the real fault). The
  // verify doubles as the reconstruction's integrity proof.
  Status verify = VerifyPageBytes(rebuilt, rel.layout, page);
  if (!verify.ok()) return degrade(verify);
  Result<DecodedPage> decoded = DecodePageBytes(rebuilt, rel.layout, page);
  if (!decoded.ok()) return degrade(decoded.status());
  auto frame = std::make_shared<BufferPool::Frame>();
  frame->file = rel.copy_files[0];
  frame->page = page;
  frame->raw = std::move(rebuilt);
  frame->decoded = std::move(decoded).value();
  result->reconstructed_pages++;
  return PinnedPage(std::move(frame));
}

bool QueryService::AllowDisk(uint32_t disk) {
  std::lock_guard<std::mutex> lock(breaker_mu_);
  return breakers_[disk].AllowRequest(NowMs());
}

void QueryService::RecordDiskOutcome(uint32_t disk, bool success) {
  std::lock_guard<std::mutex> lock(breaker_mu_);
  if (success) {
    breakers_[disk].RecordSuccess(NowMs());
  } else {
    breakers_[disk].RecordFailure(NowMs());
  }
}

Status QueryService::Shutdown() {
  std::lock_guard<std::mutex> serialize(shutdown_mu_);
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    if (shutdown_done_) return shutdown_status_;
    draining_ = true;
    queue_cv_.notify_all();
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(
                options_.drain_deadline_ms));
    const bool drained = drained_cv_.wait_until(lock, deadline, [&] {
      return queue_.empty() && in_flight_ == 0;
    });
    if (drained) {
      shutdown_status_ = Status::Ok();
    } else {
      hard_stop_.store(true);
      queue_cv_.notify_all();
      drained_cv_.wait(lock,
                       [&] { return queue_.empty() && in_flight_ == 0; });
      shutdown_status_ = Status::DeadlineExceeded(
          "drain deadline exceeded; remaining work was failed");
    }
    shutdown_done_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  return shutdown_status_;
}

void QueryService::SnapshotMetrics(MetricsRegistry* out) const {
  if (out == nullptr) return;
  const auto set_counter = [out](const char* name, uint64_t v) {
    obs::Counter* c = out->GetCounter(name);
    c->Reset();
    c->Inc(v);
  };
  uint64_t max_depth = 0;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    max_depth = queue_max_depth_;
  }
  const BreakerCounters totals = BreakerTotals();
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    set_counter("serve.admitted", admitted_);
    set_counter("serve.shed", shed_);
    set_counter("serve.completed", completed_);
    set_counter("serve.failed", failed_);
    set_counter("serve.retries", retries_);
    set_counter("serve.rerouted_buckets", rerouted_buckets_);
    set_counter("serve.failover_reads", failover_reads_);
    set_counter("serve.reconstructed_pages", reconstructed_pages_);
    set_counter("serve.pool_hits", pool_hits_);
    set_counter("serve.zone_map_skips", zone_map_skips_);
    set_counter("serve.generation_fenced", generation_fenced_);
    obs::Histogram* h =
        out->GetHistogram("serve.latency_ms", latency_ms_.bounds());
    h->Reset();
    h->Merge(latency_ms_);
  }
  set_counter("serve.breaker.opened", totals.opened);
  set_counter("serve.breaker.half_opened", totals.half_opened);
  set_counter("serve.breaker.closed", totals.closed);
  set_counter("serve.breaker.reopened", totals.reopened);
  out->GetGauge("serve.queue.max_depth")
      ->Set(static_cast<double>(max_depth));
  // Storage-layer pool counters ride along in the same snapshot, so a
  // `declctl serve --metrics-json` dump shows the whole read path.
  store_->PublishMetrics(out);
}

BreakerState QueryService::BreakerStateOf(uint32_t disk) const {
  GRIDDECL_CHECK(disk < num_disks_);
  std::lock_guard<std::mutex> lock(breaker_mu_);
  return breakers_[disk].state();
}

BreakerCounters QueryService::BreakerTotals() const {
  std::lock_guard<std::mutex> lock(breaker_mu_);
  BreakerCounters totals;
  for (const CircuitBreaker& b : breakers_) {
    totals.opened += b.counters().opened;
    totals.half_opened += b.counters().half_opened;
    totals.closed += b.counters().closed;
    totals.reopened += b.counters().reopened;
  }
  return totals;
}

std::vector<std::string> QueryService::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

Result<std::vector<FaultRange>> DiskFaultSchedule(const StorageEnv& env,
                                                  const std::string& relation,
                                                  uint32_t disk) {
  return DiskFaultSchedule(env, relation, disk, 0.0,
                           std::numeric_limits<double>::infinity());
}

Result<std::vector<FaultRange>> DiskFaultSchedule(const StorageEnv& env,
                                                  const std::string& relation,
                                                  uint32_t disk,
                                                  double from_ms,
                                                  double until_ms) {
  Result<CatalogManifest> manifest = ReadCurrentManifest(env);
  if (!manifest.ok()) return manifest.status();
  const CatalogManifest& m = manifest.value();
  size_t index = m.relations.size();
  for (size_t i = 0; i < m.relations.size(); ++i) {
    if (m.relations[i].name == relation) {
      index = i;
      break;
    }
  }
  if (index == m.relations.size()) {
    return Status::NotFound("no relation named '" + relation + "'");
  }
  if (disk >= m.num_disks) {
    return Status::InvalidArgument("disk index out of range");
  }
  const ManifestRelation& mr = m.relations[index];
  const std::string data_name = m.DataFileName(index);
  Result<std::string> bytes = env.ReadFile(data_name);
  if (!bytes.ok()) return bytes.status();
  Result<FileLayout> layout = ParseFileLayout(bytes.value());
  if (!layout.ok()) return layout.status();
  const FileLayout& l = layout.value();
  Result<GridFile> file = ParseGridFile(bytes.value());
  if (!file.ok()) return file.status();
  const GridFile& gf = file.value();
  Result<std::unique_ptr<DeclusteringMethod>> method =
      CreateMethod(mr.method, gf.grid(), m.num_disks);
  if (!method.ok()) return method.status();
  std::unique_ptr<ReplicatedPlacement> placement;
  if (mr.redundancy.policy == RelationRedundancy::Policy::kMirror) {
    Result<std::unique_ptr<DeclusteringMethod>> base =
        CreateMethod(mr.method, gf.grid(), m.num_disks);
    if (!base.ok()) return base.status();
    Result<ReplicatedPlacement> p = ReplicatedPlacement::Create(
        std::move(base).value(), mr.redundancy.copies, /*offset=*/1);
    if (!p.ok()) return p.status();
    placement = std::make_unique<ReplicatedPlacement>(std::move(p).value());
  }

  std::vector<FaultRange> ranges;
  for (uint64_t page = 0; page < l.num_pages; ++page) {
    const uint32_t in_page = l.PageRecords(page);
    if (in_page == 0) continue;
    // The page's disk is its records' bucket's disk — require the layout
    // to be bucket-clustered so that is well-defined.
    const RecordId first_id = page * l.page_capacity;
    const BucketCoords first_bucket = gf.BucketOfRecord(first_id);
    const uint32_t primary = method.value()->DiskOf(first_bucket);
    for (uint32_t slot = 1; slot < in_page; ++slot) {
      if (method.value()->DiskOf(gf.BucketOfRecord(first_id + slot)) !=
          primary) {
        return Status::Unsupported(
            "page " + std::to_string(page) +
            " mixes buckets of different disks; DiskFaultSchedule needs a "
            "bucket-clustered layout (insert bucket by bucket, pick a page "
            "size whose capacity divides the per-bucket record count)");
      }
    }
    if (primary == disk) {
      ranges.push_back({data_name, l.PageOffset(page), l.page_size_bytes,
                        from_ms, until_ms});
    }
    if (placement != nullptr) {
      const std::vector<uint32_t> disks = placement->DisksOf(first_bucket);
      for (uint32_t copy = 1; copy < disks.size(); ++copy) {
        if (disks[copy] == disk) {
          ranges.push_back({m.MirrorFileName(index, copy),
                            l.PageOffset(page), l.page_size_bytes, from_ms,
                            until_ms});
        }
      }
    }
  }
  return ranges;
}

}  // namespace griddecl::serve
