#ifndef GRIDDECL_SERVE_SERVICE_H_
#define GRIDDECL_SERVE_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "griddecl/common/backoff.h"
#include "griddecl/common/status.h"
#include "griddecl/eval/disk_map.h"
#include "griddecl/gridfile/faulty_env.h"
#include "griddecl/gridfile/manifest.h"
#include "griddecl/gridfile/page_store.h"
#include "griddecl/gridfile/read_policy.h"
#include "griddecl/gridfile/storage.h"
#include "griddecl/gridfile/storage_env.h"
#include "griddecl/methods/replicated.h"
#include "griddecl/obs/metrics.h"
#include "griddecl/serve/circuit_breaker.h"
#include "griddecl/sim/faults.h"

/// \file
/// Resilient in-process query service over a manifest-committed catalog.
///
/// Everything below the evaluator in this repo either simulates I/O
/// (sim/) or reads whole files synchronously (gridfile/). This layer is
/// the missing production shape: a multi-threaded service that executes
/// range queries end to end — plan buckets with the declustering method's
/// `DiskMap`, read the pages that hold them through a `StorageEnv`, decode
/// and filter records — while staying up when the env misbehaves:
///
///  * **Bounded admission.** `Submit` enqueues up to `max_queue` requests;
///    beyond that it sheds with kResourceExhausted immediately. The service
///    never blocks a caller and never queues unboundedly.
///  * **Deadlines.** A per-query deadline (or the service default) is
///    checked on dequeue, between per-disk read batches, and before every
///    retry sleep; an expired query fails with kDeadlineExceeded instead of
///    holding a worker.
///  * **Retries.** Transient (kUnavailable) page-read errors retry under
///    the shared seeded-jitter exponential backoff (common/backoff.h),
///    configured by `ServeOptions::read.retry` and executed below the
///    buffer pool by `PageStore`; any other error fails fast.
///  * **Buffer pool + columnar scan.** Every page read goes through a
///    shared `PageStore`: a scan-resistant pool caches decoded pages
///    (verified once at admission), per-page zone maps skip pages whose
///    min/max exclude the predicate, and the filter runs as a branch-free
///    loop over column vectors. `pool_pages = 0` turns caching off.
///  * **Circuit breakers.** One breaker per (virtual) disk, fed one
///    outcome per (query, disk) batch. An open breaker removes its disk
///    from planning: mirrored relations re-route through
///    `DegradedPlan::ForReplicated` exactly as the simulator does, parity
///    relations reconstruct the disk's pages from stripe survivors, plain
///    relations fail those queries with kUnavailable. Half-open admits one
///    probe batch at a time.
///  * **Graceful drain.** `Shutdown` stops admission, lets workers finish
///    queued work until `drain_deadline_ms`, then fails what remains with
///    a well-formed status. In-flight queries observe the hard stop
///    between batches.
///
/// ## The virtual-disk read model
///
/// A committed relation is ONE data file with records packed in id order —
/// there is no per-disk file to lose. The service therefore treats the
/// manifest's `num_disks` as *virtual fault domains*: every bucket belongs
/// to the disk its declustering method assigns, every page read is
/// attributed to the bucket's disk, and fault injection / breakers operate
/// on those domains. `DiskFaultSchedule` computes the byte ranges of a
/// relation's files that constitute one virtual disk, so a `FaultyEnv` can
/// "kill disk d" precisely; this is exact when the relation is
/// bucket-clustered (each page holds records of a single bucket — arrange
/// insertion order and page size accordingly in tests).
///
/// Record payloads returned by a query are always decoded from the page
/// bytes read through the env — the in-memory catalog is used only for
/// schema, partitioning, and the bucket -> pages index — so a query's
/// matches genuinely travelled the storage path under test.
///
/// ## Determinism contract
///
/// With a seeded `FaultyEnv`, fixed fault schedule, no deadlines, a queue
/// deep enough not to shed, and breakers pinned open once tripped
/// (`open_ms` huge), per-query *outcomes* (status + matched records) are a
/// pure function of the schedule — independent of thread count and
/// interleaving. Retry counts, pool hit counts and timings may vary (a
/// page another query already admitted serves from cache); the chaos soak
/// asserts outcomes only. Caching cannot flip an outcome: only pages that
/// verified clean are ever admitted, and permanently faulted pages are
/// never cached under their direct-read key.

namespace griddecl::serve {

using obs::MetricsRegistry;

struct ServeOptions {
  /// Worker threads executing queries.
  uint32_t num_threads = 4;
  /// Admission queue bound; a Submit past it sheds.
  uint32_t max_queue = 64;
  /// Deadline applied to requests that do not carry one; 0 = none.
  double default_deadline_ms = 0.0;
  /// Page-read policy: verification, damage reaction, and the retry
  /// schedule (transient errors only). `read.retry.max_attempts` counts
  /// the first try; keep it above a FaultyEnv's max_transient_attempts so
  /// injected transients always eventually succeed.
  ReadPolicy read = ServeReadPolicy();
  /// Buffer-pool capacity in pages, shared across relations and copies;
  /// 0 disables caching (every page read is physical).
  size_t pool_pages = 1024;
  BreakerOptions breaker;
  /// Budget Shutdown gives queued + in-flight work before hard-failing it.
  double drain_deadline_ms = 2000.0;
  /// Seed for retry jitter (decorrelates concurrent retriers).
  uint64_t seed = 0;
  /// Catalog generation to serve: 0 resolves CURRENT (the normal path);
  /// nonzero loads `MANIFEST-<generation>` directly, committed or merely
  /// staged — how a migrator brings up verification services over a
  /// staged, not-yet-committed layout.
  uint64_t generation = 0;
};

struct QueryRequest {
  std::string relation;
  /// Value-space predicate: lo[i] <= attr_i <= hi[i].
  std::vector<double> lo;
  std::vector<double> hi;
  /// Per-query deadline in ms from submission; <= 0 uses the service
  /// default.
  double deadline_ms = 0.0;
  /// Empty serves the whole query (the normal path). Non-empty restricts
  /// it to buckets whose PRIMARY disk is in this set — how a cluster
  /// coordinator carves one query into per-node sub-queries along disk
  /// ownership. Matches outside the set are silently not served, so the
  /// union of sub-queries over a disk partition equals the full query.
  std::vector<uint32_t> disks;
  /// 0 reads primary placement. c > 0 (mirror relations only) serves every
  /// selected bucket from mirror copy c — its replica disk (primary + c)
  /// mod M — which is how a sub-query rerouted or hedged to a
  /// replica-holding node reads that node's own copy.
  uint32_t serve_copy = 0;
  /// 0 = unfenced. Nonzero requires this service to be serving exactly
  /// this catalog generation; a mismatch fails with kFailedPrecondition
  /// before any page is read. The cutover fence: a coordinator that moved
  /// to generation G+1 cannot accidentally read a node still on G.
  uint64_t expected_generation = 0;
};

/// Outcome of one query. `status` is always well-formed: kOk with the
/// sorted matching record ids, or an error with empty matches.
struct QueryResult {
  Status status;
  std::vector<RecordId> matches;
  uint64_t buckets_touched = 0;
  uint64_t pages_read = 0;
  /// Transient-read retries performed.
  uint64_t retries = 0;
  /// Buckets served by a non-primary mirror copy (plan-time reroute).
  uint64_t rerouted_buckets = 0;
  /// Page reads that failed over to a surviving mirror copy inline.
  uint64_t failover_reads = 0;
  /// Pages rebuilt from parity stripes.
  uint64_t reconstructed_pages = 0;
  /// Pages served straight from the buffer pool (no physical I/O).
  uint64_t pool_hits = 0;
  /// Pages whose zone maps excluded the predicate box, skipping the
  /// record filter entirely.
  uint64_t zone_map_skips = 0;
  double queue_ms = 0.0;
  double total_ms = 0.0;
};

/// Multi-threaded query service; see file comment. Thread-safe.
class QueryService {
 public:
  /// Loads the committed manifest from `env` and starts `num_threads`
  /// workers. `env` must outlive the service. Fails when the env holds no
  /// loadable catalog or an option is out of domain.
  static Result<std::unique_ptr<QueryService>> Create(
      const StorageEnv* env, ServeOptions options);

  /// Drains and joins (with the configured drain deadline).
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Admits a query. kResourceExhausted when the queue is full (shed),
  /// kUnavailable once shutdown began. The future is fulfilled exactly
  /// once, always with a well-formed QueryResult.
  Result<std::future<QueryResult>> Submit(QueryRequest request);

  /// Submit + wait: the synchronous convenience path.
  QueryResult Execute(QueryRequest request);

  /// Graceful drain: stop admitting, finish queued + in-flight work, hard
  /// -fail the rest once `drain_deadline_ms` expires. Idempotent. Returns
  /// Ok when everything drained in time, kDeadlineExceeded otherwise.
  Status Shutdown();

  /// Publishes absolute totals since start into `out` (fresh names are
  /// created, existing ones Reset first, so repeated snapshots do not
  /// double-count). Keys: serve.admitted, serve.shed, serve.completed,
  /// serve.failed, serve.retries, serve.rerouted_buckets,
  /// serve.failover_reads, serve.reconstructed_pages, serve.pool_hits,
  /// serve.zone_map_skips,
  /// serve.breaker.opened / .half_opened / .closed / .reopened,
  /// serve.queue.max_depth (gauge), serve.latency_ms (histogram) — plus
  /// the storage layer's pool counters (storage.pool.hits / .misses /
  /// .admissions / .evictions / .promotions and the .resident /
  /// .capacity gauges), so one snapshot carries the whole read path.
  void SnapshotMetrics(MetricsRegistry* out) const;

  /// Current state of disk `d`'s breaker (diagnostics / tests).
  BreakerState BreakerStateOf(uint32_t disk) const;
  /// Summed transition counters across all disk breakers.
  BreakerCounters BreakerTotals() const;

  uint32_t num_disks() const { return num_disks_; }
  /// Catalog generation this service loaded (fences compare against it).
  uint64_t generation() const { return generation_; }
  std::vector<std::string> RelationNames() const;

 private:
  /// Everything needed to serve one relation, immutable after Create.
  struct Relation {
    std::string name;
    RelationRedundancy redundancy;
    /// Parsed catalog copy: schema, partitioner, and bucket index; record
    /// payloads served to clients come from page reads, not from here.
    std::unique_ptr<GridFile> file;
    std::unique_ptr<DeclusteringMethod> method;
    std::unique_ptr<DiskMap> disk_map;
    /// Mirror relations only: the chained-declustering placement the
    /// mirror copies realize (copy r of a bucket lives on replica r's
    /// disk).
    std::unique_ptr<ReplicatedPlacement> placement;
    FileLayout layout;
    /// data file first, then mirror copies 1..copies-1.
    std::vector<std::string> copy_files;
    std::string parity_file;  ///< Empty unless kParity.
    /// Grid-linear bucket -> sorted distinct pages holding its records.
    std::vector<std::vector<uint64_t>> bucket_pages;
  };

  struct Pending {
    QueryRequest request;
    std::promise<QueryResult> promise;
    /// Absolute deadline on the service clock; +inf when none.
    double deadline_ms = 0.0;
    double submitted_ms = 0.0;
  };

  QueryService(const StorageEnv* env, ServeOptions options,
               uint32_t num_disks);

  static Result<Relation> LoadRelation(const StorageEnv& env,
                                       const CatalogManifest& manifest,
                                       size_t index);

  /// Milliseconds since service start (steady clock).
  double NowMs() const;

  void WorkerLoop(uint32_t worker_id);
  QueryResult RunQuery(const Pending& p);

  /// One page serving the query: direct pooled read when `try_direct`,
  /// then the relation's degraded path (mirror failover / parity
  /// reconstruction). `*direct_ok` is cleared when the direct read did
  /// not cleanly succeed (feeds the disk's breaker outcome). Accounting
  /// goes into `result`.
  Result<PinnedPage> ReadPageResilient(const Relation& rel,
                                       uint32_t assigned_copy, uint64_t page,
                                       double deadline_ms, bool try_direct,
                                       bool* direct_ok, QueryResult* result);
  /// One copy file's page through the PageStore (pool lookup, retries,
  /// verify-at-admission); verification failure reads as kUnavailable so
  /// degraded paths engage.
  Result<PinnedPage> ReadPagePinned(const Relation& rel, uint32_t copy,
                                    uint64_t page, double deadline_ms,
                                    QueryResult* result);
  /// Rebuilds `page` by XORing its stripe siblings and the parity page.
  /// The rebuilt page is deliberately NOT admitted to the pool under the
  /// data file's key: a later direct read must touch the disk again, so
  /// breakers keep observing the real fault.
  Result<PinnedPage> ReconstructPage(const Relation& rel, uint64_t page,
                                     double deadline_ms,
                                     QueryResult* result);
  /// Interrupt hook handed to PageStore: hard stop and the query's
  /// deadline abort reads and backoff sleeps with serve's own statuses.
  InterruptFn MakeInterrupt(double deadline_ms) const;

  bool AllowDisk(uint32_t disk);
  void RecordDiskOutcome(uint32_t disk, bool success);

  const StorageEnv* env_;
  ServeOptions options_;
  std::unique_ptr<PageStore> store_;
  uint32_t num_disks_;
  uint64_t generation_ = 0;
  std::chrono::steady_clock::time_point start_;
  std::unordered_map<std::string, Relation> relations_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  bool draining_ = false;
  std::atomic<bool> hard_stop_{false};
  uint32_t in_flight_ = 0;
  std::condition_variable drained_cv_;
  uint64_t queue_max_depth_ = 0;
  bool shutdown_done_ = false;
  Status shutdown_status_;
  /// Serializes Shutdown callers (taken before queue_mu_).
  std::mutex shutdown_mu_;

  mutable std::mutex breaker_mu_;
  std::vector<CircuitBreaker> breakers_;

  /// Totals guarded by metrics_mu_ (workers update per query, not per
  /// page, so contention is negligible).
  mutable std::mutex metrics_mu_;
  uint64_t admitted_ = 0;
  uint64_t shed_ = 0;
  uint64_t completed_ = 0;
  uint64_t failed_ = 0;
  uint64_t retries_ = 0;
  uint64_t rerouted_buckets_ = 0;
  uint64_t failover_reads_ = 0;
  uint64_t reconstructed_pages_ = 0;
  uint64_t pool_hits_ = 0;
  uint64_t zone_map_skips_ = 0;
  uint64_t generation_fenced_ = 0;
  obs::Histogram latency_ms_;

  std::vector<std::thread> workers_;
};

/// Byte ranges of `relation`'s committed files that make up virtual disk
/// `disk` — feed them to `FaultyEnvOptions::permanent` to fail that disk.
/// Data-file pages of buckets whose primary is `disk`, plus (mirror
/// relations) mirror-copy-r pages of buckets whose replica r lands on
/// `disk`. Requires a bucket-clustered layout: kUnsupported when any
/// non-empty page mixes records of buckets on different disks.
Result<std::vector<FaultRange>> DiskFaultSchedule(const StorageEnv& env,
                                                  const std::string& relation,
                                                  uint32_t disk);

/// Windowed variant: the same ranges, active only while
/// from_ms <= virtual now < until_ms — a disk that dies at T and recovers
/// at T', in the schedule language `FaultyEnv::SetNowMs` evaluates.
Result<std::vector<FaultRange>> DiskFaultSchedule(const StorageEnv& env,
                                                  const std::string& relation,
                                                  uint32_t disk,
                                                  double from_ms,
                                                  double until_ms);

}  // namespace griddecl::serve

#endif  // GRIDDECL_SERVE_SERVICE_H_
