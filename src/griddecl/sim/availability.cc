#include "griddecl/sim/availability.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <utility>

#include "griddecl/cluster/repair.h"
#include "griddecl/common/random.h"
#include "griddecl/methods/registry.h"
#include "griddecl/methods/replicated.h"
#include "griddecl/query/generator.h"

namespace griddecl {

const char* FailureDomainName(FailureDomain domain) {
  switch (domain) {
    case FailureDomain::kDisk: return "disk";
    case FailureDomain::kNode: return "node";
    case FailureDomain::kRack: return "rack";
    case FailureDomain::kZone: return "zone";
  }
  return "disk";
}

Result<FailureDomain> ParseFailureDomain(const std::string& name) {
  if (name == "disk") return FailureDomain::kDisk;
  if (name == "node") return FailureDomain::kNode;
  if (name == "rack") return FailureDomain::kRack;
  if (name == "zone") return FailureDomain::kZone;
  return Status::InvalidArgument("unknown failure domain '" + name +
                                 "' (want disk|node|rack|zone)");
}

namespace {

/// Deterministic shortest-roundtrip float formatting ("%.9g" is stable for
/// identical doubles, which determinism of the sweep guarantees).
std::string JsonNum(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string JsonUintList(const std::vector<uint32_t>& values) {
  std::string out = "[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(values[i]);
  }
  return out + "]";
}

Status ValidateSweepOptions(const AvailabilitySweepOptions& o) {
  if (o.num_disks < 1) {
    return Status::InvalidArgument("sweep needs at least one disk");
  }
  if (o.num_queries < 1) {
    return Status::InvalidArgument("sweep needs at least one query");
  }
  if (o.max_failed > o.num_disks) {
    return Status::InvalidArgument(
        "max_failed must be <= num_disks");
  }
  for (uint32_t r : o.replication) {
    if (r < 2 || r > o.num_disks) {
      return Status::InvalidArgument(
          "replication degrees must be in [2, num_disks]");
    }
  }
  if (o.sim.faults != nullptr || o.sim.degraded != nullptr) {
    return Status::InvalidArgument(
        "sweep options must not pre-set faults/degraded; the sweep "
        "installs them per point");
  }
  if (o.failure_domain != FailureDomain::kDisk) {
    GRIDDECL_RETURN_IF_ERROR(o.topology.Validate());
    if (o.topology.num_nodes() > o.num_disks) {
      return Status::InvalidArgument(
          "correlated sweep needs num_nodes <= num_disks");
    }
    for (cluster::PlacementPolicy p : o.placement_policies) {
      if (static_cast<uint32_t>(p) > 2) {
        return Status::InvalidArgument("unknown placement policy");
      }
    }
  } else if (!o.forced_domain_order.empty() ||
             !o.placement_policies.empty() || o.repair) {
    return Status::InvalidArgument(
        "forced_domain_order / placement_policies / repair require a "
        "correlated failure_domain");
  }
  if (o.repair_detect_ms < 0.0 || o.repair_ms_per_replica < 0.0) {
    return Status::InvalidArgument("repair model times must be >= 0");
  }
  return Status::Ok();
}

/// Domain count for the correlated failure unit.
uint32_t DomainCount(const AvailabilitySweepOptions& o) {
  switch (o.failure_domain) {
    case FailureDomain::kDisk: return o.num_disks;
    case FailureDomain::kNode: return o.topology.num_nodes();
    case FailureDomain::kRack: return o.topology.num_racks();
    case FailureDomain::kZone: return o.topology.num_zones();
  }
  return o.num_disks;
}

/// The domain id hosting node `n` under the sweep's failure unit.
uint32_t DomainOfNode(const AvailabilitySweepOptions& o, uint32_t n) {
  switch (o.failure_domain) {
    case FailureDomain::kDisk:
    case FailureDomain::kNode: return n;
    case FailureDomain::kRack: return o.topology.rack_of(n);
    case FailureDomain::kZone: return o.topology.zone_of(n);
  }
  return n;
}

/// Contiguous disk -> node deal, identical to the cluster coordinator's
/// (cluster.cc): disk d lives on node d * N / M.
std::vector<uint32_t> DealDisks(uint32_t num_disks, uint32_t num_nodes) {
  std::vector<uint32_t> disk_node(num_disks);
  for (uint32_t d = 0; d < num_disks; ++d) {
    disk_node[d] = static_cast<uint32_t>(
        static_cast<uint64_t>(d) * num_nodes / num_disks);
  }
  return disk_node;
}

/// Lowers a node-level placement map to a per-primary-disk replica table
/// for ReplicatedPlacement::CreateWithTable: copy c of disk d goes to a
/// disk owned by the node the policy chose, probing within that node's
/// slice (then globally) to keep the row's disks distinct. A same-node
/// copy (chained self-colocation) stays on the node — exactly the
/// correlated-loss behaviour the experiment measures.
Result<std::vector<std::vector<uint32_t>>> LowerPlacementToDisks(
    const cluster::PlacementMap& map, const std::vector<uint32_t>& disk_node,
    uint32_t replicas) {
  const uint32_t m = static_cast<uint32_t>(disk_node.size());
  // Node -> [first disk, disk count] of its contiguous slice.
  std::vector<uint32_t> lo(m, 0), count(m, 0);
  std::vector<bool> seen(m, false);
  for (uint32_t d = 0; d < m; ++d) {
    const uint32_t n = disk_node[d];
    if (!seen[n]) {
      seen[n] = true;
      lo[n] = d;
    }
    ++count[n];
  }
  std::vector<std::vector<uint32_t>> table(m);
  for (uint32_t d = 0; d < m; ++d) {
    std::vector<uint32_t>& row = table[d];
    row.push_back(d);
    for (uint32_t c = 1; c < replicas; ++c) {
      const uint32_t n = map.NodeOf(d, c);
      uint32_t disk = m;  // sentinel: unplaced
      for (uint32_t k = 0; k < count[n]; ++k) {
        const uint32_t candidate = lo[n] + (d + k) % count[n];
        if (std::find(row.begin(), row.end(), candidate) == row.end()) {
          disk = candidate;
          break;
        }
      }
      for (uint32_t k = 0; disk == m && k < m; ++k) {
        const uint32_t candidate = (d + 1 + k) % m;
        if (std::find(row.begin(), row.end(), candidate) == row.end()) {
          disk = candidate;
        }
      }
      if (disk == m) {
        return Status::Internal("replica lowering could not place a copy");
      }
      row.push_back(disk);
    }
  }
  return table;
}

/// Lowers an explicit node-level table (`node_table[copy][disk] = node`,
/// e.g. a `cluster::PlanRepair` output) to a per-primary-disk replica
/// table. Unlike `LowerPlacementToDisks`, copy 0 follows the table too —
/// a repair may have re-homed it off the primary's node. The primary disk
/// itself stays as row[0] (`CreateWithTable` requires it); when its
/// domain is dead that entry is dead with it, so it never inflates
/// availability.
Result<std::vector<std::vector<uint32_t>>> LowerNodeTableToDisks(
    const std::vector<std::vector<uint32_t>>& node_table,
    const std::vector<uint32_t>& disk_node) {
  const uint32_t m = static_cast<uint32_t>(disk_node.size());
  std::vector<uint32_t> lo(m, 0), count(m, 0);
  std::vector<bool> seen(m, false);
  for (uint32_t d = 0; d < m; ++d) {
    const uint32_t n = disk_node[d];
    if (!seen[n]) {
      seen[n] = true;
      lo[n] = d;
    }
    ++count[n];
  }
  std::vector<std::vector<uint32_t>> table(m);
  for (uint32_t d = 0; d < m; ++d) {
    std::vector<uint32_t>& row = table[d];
    row.push_back(d);
    for (size_t c = 0; c < node_table.size(); ++c) {
      const uint32_t n = node_table[c][d];
      uint32_t disk = m;  // sentinel: unplaced
      for (uint32_t k = 0; k < count[n]; ++k) {
        const uint32_t candidate = lo[n] + (d + k) % count[n];
        if (std::find(row.begin(), row.end(), candidate) == row.end()) {
          disk = candidate;
          break;
        }
      }
      for (uint32_t k = 0; disk == m && k < m; ++k) {
        const uint32_t candidate = (d + 1 + k) % m;
        if (std::find(row.begin(), row.end(), candidate) == row.end()) {
          disk = candidate;
        }
      }
      if (disk == m) {
        return Status::Internal("replica lowering could not place a copy");
      }
      row.push_back(disk);
    }
  }
  return table;
}

/// One simulated point: `f` permanently failed disks under `plan`.
Result<AvailabilityPoint> RunPoint(const DeclusteringMethod& method,
                                   const std::string& registry_name,
                                   const Workload& workload,
                                   const AvailabilitySweepOptions& options,
                                   const DegradedPlan& plan,
                                   const std::vector<uint32_t>& dead_disks,
                                   std::string strategy, uint32_t replicas) {
  FaultSpec spec;
  spec.seed = options.seed;
  for (uint32_t d : dead_disks) spec.failures.push_back({d, 0.0});
  Result<FaultModel> fm = FaultModel::Create(method.num_disks(), spec);
  GRIDDECL_RETURN_IF_ERROR(fm.status());

  ThroughputOptions sim = options.sim;
  sim.faults = &fm.value();
  sim.degraded = &plan;
  Result<ThroughputResult> run = SimulateThroughput(method, workload, sim);
  GRIDDECL_RETURN_IF_ERROR(run.status());
  const ThroughputResult& r = run.value();

  AvailabilityPoint point;
  // The registry name, not the display name: aliases (dm vs cmd, fx vs
  // fx-auto) stay distinguishable in the report.
  point.method = registry_name;
  point.strategy = std::move(strategy);
  point.replicas = replicas;
  point.failed_disks = static_cast<uint32_t>(dead_disks.size());
  point.mean_latency_ms = r.mean_latency_ms;
  point.total_ms = r.total_ms;
  point.availability = r.Availability();
  point.unavailable_queries = r.unavailable_queries;
  point.rerouted_buckets = r.rerouted_buckets;
  point.reconstruction_reads = r.reconstruction_reads;
  point.transient_retries = r.transient_retries;
  return point;
}

/// Appends f = 0..max_failed points for one (method, plan-builder) pair and
/// fills in `degraded_ratio` against the pair's own f = 0 mean.
/// `dead_sets[f]` is the full failed-disk set at level f (a prefix chain:
/// each level's set contains the previous one's).
template <typename PlanBuilder>
Status SweepStrategy(const DeclusteringMethod& method,
                     const std::string& registry_name,
                     const Workload& workload,
                     const AvailabilitySweepOptions& options,
                     const std::vector<std::vector<uint32_t>>& dead_sets,
                     std::string strategy, uint32_t replicas,
                     const PlanBuilder& build_plan,
                     std::vector<AvailabilityPoint>* points) {
  double healthy_mean = 0;
  for (uint32_t f = 0; f <= options.max_failed; ++f) {
    const std::vector<uint32_t>& dead = dead_sets[f];
    std::vector<bool> mask(method.num_disks(), false);
    for (uint32_t d : dead) mask[d] = true;
    Result<DegradedPlan> plan = build_plan(mask);
    GRIDDECL_RETURN_IF_ERROR(plan.status());
    Result<AvailabilityPoint> point =
        RunPoint(method, registry_name, workload, options, plan.value(),
                 dead, strategy, replicas);
    GRIDDECL_RETURN_IF_ERROR(point.status());
    if (f == 0) healthy_mean = point.value().mean_latency_ms;
    point.value().failed_domains = f;
    point.value().degraded_ratio =
        healthy_mean <= 0 ? 0
                          : point.value().mean_latency_ms / healthy_mean;
    points->push_back(std::move(point).value());
  }
  return Status::Ok();
}

}  // namespace

Result<AvailabilitySweep> RunAvailabilitySweep(
    const AvailabilitySweepOptions& options) {
  GRIDDECL_RETURN_IF_ERROR(ValidateSweepOptions(options));
  Result<GridSpec> grid = GridSpec::Create(options.grid_dims);
  GRIDDECL_RETURN_IF_ERROR(grid.status());

  QueryGenerator gen(grid.value());
  Rng workload_rng(options.seed);
  Result<Workload> workload = gen.SampledPlacements(
      options.query_shape, options.num_queries, &workload_rng, "a11");
  GRIDDECL_RETURN_IF_ERROR(workload.status());

  // The failed set at level f nests the one at f - 1, and is identical
  // across runs at the same seed. Classic mode kills the first f disks of
  // a seeded permutation; correlated mode kills the first f whole domains
  // (seeded permutation of domain ids, unless the caller forced an order).
  const bool correlated = options.failure_domain != FailureDomain::kDisk;
  std::vector<std::vector<uint32_t>> dead_sets(options.max_failed + 1);
  // Correlated mode: the domain kill order, kept for the repair planner.
  std::vector<uint32_t> domain_order;
  if (!correlated) {
    Rng fail_rng(options.seed);
    const std::vector<uint32_t> fail_order =
        fail_rng.Permutation(options.num_disks);
    for (uint32_t f = 1; f <= options.max_failed; ++f) {
      dead_sets[f].assign(fail_order.begin(), fail_order.begin() + f);
    }
  } else {
    const uint32_t domains = DomainCount(options);
    if (options.max_failed > domains) {
      return Status::InvalidArgument(
          "max_failed exceeds the correlated domain count");
    }
    domain_order = options.forced_domain_order;
    if (domain_order.empty()) {
      Rng fail_rng(options.seed);
      domain_order = fail_rng.Permutation(domains);
    } else {
      std::set<uint32_t> distinct;
      for (uint32_t id : domain_order) {
        if (id >= domains || !distinct.insert(id).second) {
          return Status::InvalidArgument(
              "forced_domain_order entries must be distinct domain ids");
        }
      }
      if (domain_order.size() < options.max_failed) {
        return Status::InvalidArgument(
            "forced_domain_order must cover max_failed domains");
      }
    }
    const std::vector<uint32_t> disk_node =
        DealDisks(options.num_disks, options.topology.num_nodes());
    for (uint32_t f = 1; f <= options.max_failed; ++f) {
      dead_sets[f] = dead_sets[f - 1];
      for (uint32_t d = 0; d < options.num_disks; ++d) {
        if (DomainOfNode(options, disk_node[d]) == domain_order[f - 1]) {
          dead_sets[f].push_back(d);
        }
      }
    }
  }

  const std::vector<std::string> names =
      options.methods.empty() ? AllMethodNames() : options.methods;

  AvailabilitySweep sweep;
  sweep.options = options;
  for (const std::string& name : names) {
    Result<std::unique_ptr<DeclusteringMethod>> made =
        CreateMethod(name, grid.value(), options.num_disks);
    if (!made.ok()) {
      if (options.methods.empty()) continue;  // e.g. ECC off-configuration.
      return made.status();
    }
    const DeclusteringMethod& method = *made.value();

    // r = 1, no redundancy: buckets on dead disks fail their queries.
    GRIDDECL_RETURN_IF_ERROR(SweepStrategy(
        method, name, workload.value(), options, dead_sets, "plain", 1,
        [&](std::vector<bool> mask) {
          return DegradedPlan::ForMethod(method, std::move(mask));
        },
        &sweep.points));

    if (!correlated) {
      // Replicated placements: optimal re-routing around failures.
      for (uint32_t r : options.replication) {
        Result<std::unique_ptr<DeclusteringMethod>> base =
            CreateMethod(name, grid.value(), options.num_disks);
        GRIDDECL_RETURN_IF_ERROR(base.status());
        Result<ReplicatedPlacement> placement = ReplicatedPlacement::Create(
            std::move(base).value(), r, /*offset=*/1);
        GRIDDECL_RETURN_IF_ERROR(placement.status());
        GRIDDECL_RETURN_IF_ERROR(SweepStrategy(
            method, name, workload.value(), options, dead_sets,
            "replica-r" + std::to_string(r), r,
            [&](std::vector<bool> mask) {
              return DegradedPlan::ForReplicated(placement.value(),
                                                 std::move(mask));
            },
            &sweep.points));
      }

      // Parity-group reconstruction, where the method's coding supports
      // it. (Correlated mode skips ECC: parity groups are not
      // topology-aware, so a whole-domain kill defeats them by design.)
      if (DegradedPlan::ForEcc(method, std::vector<bool>(options.num_disks,
                                                         false))
              .ok()) {
        GRIDDECL_RETURN_IF_ERROR(SweepStrategy(
            method, name, workload.value(), options, dead_sets,
            "ecc-reconstruct", 1,
            [&](std::vector<bool> mask) {
              return DegradedPlan::ForEcc(method, std::move(mask));
            },
            &sweep.points));
      }
    } else {
      // Topology-aware replica placements: the cluster's node-level
      // policies lowered to disk-level tables, routed optimally.
      std::vector<cluster::PlacementPolicy> policies =
          options.placement_policies;
      if (policies.empty()) {
        policies = {cluster::PlacementPolicy::kChained,
                    cluster::PlacementPolicy::kSpread,
                    cluster::PlacementPolicy::kZoneAware};
      }
      const std::vector<uint32_t> disk_node =
          DealDisks(options.num_disks, options.topology.num_nodes());
      for (cluster::PlacementPolicy policy : policies) {
        for (uint32_t r : options.replication) {
          cluster::PlacementSpec spec;
          spec.policy = policy;
          spec.topology = options.topology;
          spec.seed = options.placement_seed;
          Result<cluster::PlacementMap> map =
              cluster::PlacementMap::Build(spec, disk_node, r);
          GRIDDECL_RETURN_IF_ERROR(map.status());
          Result<std::vector<std::vector<uint32_t>>> table =
              LowerPlacementToDisks(map.value(), disk_node, r);
          GRIDDECL_RETURN_IF_ERROR(table.status());
          Result<std::unique_ptr<DeclusteringMethod>> base =
              CreateMethod(name, grid.value(), options.num_disks);
          GRIDDECL_RETURN_IF_ERROR(base.status());
          Result<ReplicatedPlacement> placement =
              ReplicatedPlacement::CreateWithTable(
                  std::move(base).value(), std::move(table).value());
          GRIDDECL_RETURN_IF_ERROR(placement.status());
          GRIDDECL_RETURN_IF_ERROR(SweepStrategy(
              method, name, workload.value(), options, dead_sets,
              std::string(cluster::PlacementPolicyName(policy)) + "-r" +
                  std::to_string(r),
              r,
              [&](std::vector<bool> mask) {
                return DegradedPlan::ForReplicated(placement.value(),
                                                   std::move(mask));
              },
              &sweep.points));

          if (!options.repair) continue;
          // Repair-aware strategy: by the time domain f dies, kills
          // 1..f-1 have each been healed by the cluster's repair planner,
          // so the point at f measures only the window after the latest
          // kill. table_at[f] is the node-level placement after kill f's
          // repair; rebuilt[f] is what that repair had to re-target.
          std::vector<std::vector<std::vector<uint32_t>>> table_at(
              options.max_failed + 1);
          std::vector<uint32_t> rebuilt(options.max_failed + 1, 0);
          table_at[0] = map.value().Table();
          std::vector<uint32_t> dead_nodes;
          for (uint32_t f = 1; f <= options.max_failed; ++f) {
            for (uint32_t n = 0; n < options.topology.num_nodes(); ++n) {
              if (DomainOfNode(options, n) == domain_order[f - 1]) {
                dead_nodes.push_back(n);
              }
            }
            std::sort(dead_nodes.begin(), dead_nodes.end());
            cluster::RepairPlanInput in;
            in.table = table_at[f - 1];
            in.topology = options.topology;
            in.dead_nodes = dead_nodes;
            in.seed = options.placement_seed;
            Result<cluster::RepairPlan> repair_plan = cluster::PlanRepair(in);
            if (repair_plan.ok()) {
              rebuilt[f] = static_cast<uint32_t>(
                  repair_plan.value().actions.size());
              table_at[f] = std::move(repair_plan.value().new_table);
            } else {
              // Every node dead: nothing left to repair onto; the
              // placement carries forward and the points go dark honestly.
              table_at[f] = table_at[f - 1];
            }
          }
          std::vector<ReplicatedPlacement> repaired;
          repaired.reserve(options.max_failed + 1);
          for (uint32_t f = 0; f <= options.max_failed; ++f) {
            // The placement the f-th point sees: repairs for kills
            // 1..f-1 are done, kill f is not yet repaired.
            const uint32_t healed = f == 0 ? 0 : f - 1;
            Result<std::vector<std::vector<uint32_t>>> lowered =
                LowerNodeTableToDisks(table_at[healed], disk_node);
            GRIDDECL_RETURN_IF_ERROR(lowered.status());
            Result<std::unique_ptr<DeclusteringMethod>> rb =
                CreateMethod(name, grid.value(), options.num_disks);
            GRIDDECL_RETURN_IF_ERROR(rb.status());
            Result<ReplicatedPlacement> rp =
                ReplicatedPlacement::CreateWithTable(
                    std::move(rb).value(), std::move(lowered).value());
            GRIDDECL_RETURN_IF_ERROR(rp.status());
            repaired.push_back(std::move(rp).value());
          }
          uint32_t call = 0;
          GRIDDECL_RETURN_IF_ERROR(SweepStrategy(
              method, name, workload.value(), options, dead_sets,
              std::string(cluster::PlacementPolicyName(policy)) + "-r" +
                  std::to_string(r) + "+repair",
              r,
              [&](std::vector<bool> mask) {
                return DegradedPlan::ForReplicated(repaired[call++],
                                                   std::move(mask));
              },
              &sweep.points));
          for (uint32_t f = 0; f <= options.max_failed; ++f) {
            AvailabilityPoint& p =
                sweep.points[sweep.points.size() - 1 - options.max_failed +
                             f];
            p.replicas_rebuilt = rebuilt[f];
            p.redundancy_restored_ms =
                rebuilt[f] == 0
                    ? 0.0
                    : options.repair_detect_ms +
                          rebuilt[f] * options.repair_ms_per_replica;
          }
        }
      }
    }
  }
  return sweep;
}

std::string AvailabilitySweep::ToJson() const {
  std::string out;
  out += "{\n";
  out += "  \"experiment\": \"a11-degraded\",\n";
  out += "  \"grid\": " + JsonUintList(options.grid_dims) + ",\n";
  out += "  \"num_disks\": " + std::to_string(options.num_disks) + ",\n";
  out += "  \"query_shape\": " + JsonUintList(options.query_shape) + ",\n";
  out += "  \"num_queries\": " + std::to_string(options.num_queries) + ",\n";
  out += "  \"max_failed\": " + std::to_string(options.max_failed) + ",\n";
  out += "  \"replication\": " + JsonUintList(options.replication) + ",\n";
  const bool correlated = options.failure_domain != FailureDomain::kDisk;
  if (correlated) {
    out += "  \"failure_domain\": \"" +
           std::string(FailureDomainName(options.failure_domain)) + "\",\n";
    out += "  \"topology\": \"" + std::to_string(options.topology.num_nodes()) +
           "x" + std::to_string(options.topology.num_racks()) + "x" +
           std::to_string(options.topology.num_zones()) + "\",\n";
    std::vector<cluster::PlacementPolicy> policies =
        options.placement_policies;
    if (policies.empty()) {
      policies = {cluster::PlacementPolicy::kChained,
                  cluster::PlacementPolicy::kSpread,
                  cluster::PlacementPolicy::kZoneAware};
    }
    out += "  \"policies\": [";
    for (size_t i = 0; i < policies.size(); ++i) {
      if (i > 0) out += ", ";
      out += "\"" + std::string(cluster::PlacementPolicyName(policies[i])) +
             "\"";
    }
    out += "],\n";
    if (options.repair) {
      out += "  \"repair\": true,\n";
      out += "  \"repair_detect_ms\": " + JsonNum(options.repair_detect_ms) +
             ",\n";
      out += "  \"repair_ms_per_replica\": " +
             JsonNum(options.repair_ms_per_replica) + ",\n";
    }
  }
  out += "  \"seed\": " + std::to_string(options.seed) + ",\n";
  out +=
      "  \"concurrency\": " + std::to_string(options.sim.concurrency) + ",\n";
  out += "  \"points\": [";
  for (size_t i = 0; i < points.size(); ++i) {
    const AvailabilityPoint& p = points[i];
    out += i > 0 ? ",\n    " : "\n    ";
    out += "{\"method\": \"" + p.method + "\"";
    out += ", \"strategy\": \"" + p.strategy + "\"";
    out += ", \"replicas\": " + std::to_string(p.replicas);
    out += ", \"failed_disks\": " + std::to_string(p.failed_disks);
    if (correlated) {
      out += ", \"failed_domains\": " + std::to_string(p.failed_domains);
    }
    out += ", \"mean_latency_ms\": " + JsonNum(p.mean_latency_ms);
    out += ", \"total_ms\": " + JsonNum(p.total_ms);
    out += ", \"availability\": " + JsonNum(p.availability);
    out += ", \"unavailable_queries\": " +
           std::to_string(p.unavailable_queries);
    out += ", \"rerouted_buckets\": " + std::to_string(p.rerouted_buckets);
    out += ", \"reconstruction_reads\": " +
           std::to_string(p.reconstruction_reads);
    out += ", \"transient_retries\": " +
           std::to_string(p.transient_retries);
    out += ", \"degraded_ratio\": " + JsonNum(p.degraded_ratio);
    if (options.repair) {
      out += ", \"replicas_rebuilt\": " + std::to_string(p.replicas_rebuilt);
      out += ", \"redundancy_restored_ms\": " +
             JsonNum(p.redundancy_restored_ms);
    }
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace griddecl
