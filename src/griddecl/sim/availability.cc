#include "griddecl/sim/availability.h"

#include <cstdio>
#include <utility>

#include "griddecl/common/random.h"
#include "griddecl/methods/registry.h"
#include "griddecl/methods/replicated.h"
#include "griddecl/query/generator.h"

namespace griddecl {

namespace {

/// Deterministic shortest-roundtrip float formatting ("%.9g" is stable for
/// identical doubles, which determinism of the sweep guarantees).
std::string JsonNum(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string JsonUintList(const std::vector<uint32_t>& values) {
  std::string out = "[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(values[i]);
  }
  return out + "]";
}

Status ValidateSweepOptions(const AvailabilitySweepOptions& o) {
  if (o.num_disks < 1) {
    return Status::InvalidArgument("sweep needs at least one disk");
  }
  if (o.num_queries < 1) {
    return Status::InvalidArgument("sweep needs at least one query");
  }
  if (o.max_failed > o.num_disks) {
    return Status::InvalidArgument(
        "max_failed must be <= num_disks");
  }
  for (uint32_t r : o.replication) {
    if (r < 2 || r > o.num_disks) {
      return Status::InvalidArgument(
          "replication degrees must be in [2, num_disks]");
    }
  }
  if (o.sim.faults != nullptr || o.sim.degraded != nullptr) {
    return Status::InvalidArgument(
        "sweep options must not pre-set faults/degraded; the sweep "
        "installs them per point");
  }
  return Status::Ok();
}

/// One simulated point: `f` permanently failed disks under `plan`.
Result<AvailabilityPoint> RunPoint(const DeclusteringMethod& method,
                                   const std::string& registry_name,
                                   const Workload& workload,
                                   const AvailabilitySweepOptions& options,
                                   const DegradedPlan& plan,
                                   const std::vector<uint32_t>& dead_disks,
                                   std::string strategy, uint32_t replicas) {
  FaultSpec spec;
  spec.seed = options.seed;
  for (uint32_t d : dead_disks) spec.failures.push_back({d, 0.0});
  Result<FaultModel> fm = FaultModel::Create(method.num_disks(), spec);
  GRIDDECL_RETURN_IF_ERROR(fm.status());

  ThroughputOptions sim = options.sim;
  sim.faults = &fm.value();
  sim.degraded = &plan;
  Result<ThroughputResult> run = SimulateThroughput(method, workload, sim);
  GRIDDECL_RETURN_IF_ERROR(run.status());
  const ThroughputResult& r = run.value();

  AvailabilityPoint point;
  // The registry name, not the display name: aliases (dm vs cmd, fx vs
  // fx-auto) stay distinguishable in the report.
  point.method = registry_name;
  point.strategy = std::move(strategy);
  point.replicas = replicas;
  point.failed_disks = static_cast<uint32_t>(dead_disks.size());
  point.mean_latency_ms = r.mean_latency_ms;
  point.total_ms = r.total_ms;
  point.availability = r.Availability();
  point.unavailable_queries = r.unavailable_queries;
  point.rerouted_buckets = r.rerouted_buckets;
  point.reconstruction_reads = r.reconstruction_reads;
  point.transient_retries = r.transient_retries;
  return point;
}

/// Appends f = 0..max_failed points for one (method, plan-builder) pair and
/// fills in `degraded_ratio` against the pair's own f = 0 mean.
template <typename PlanBuilder>
Status SweepStrategy(const DeclusteringMethod& method,
                     const std::string& registry_name,
                     const Workload& workload,
                     const AvailabilitySweepOptions& options,
                     const std::vector<uint32_t>& fail_order,
                     std::string strategy, uint32_t replicas,
                     const PlanBuilder& build_plan,
                     std::vector<AvailabilityPoint>* points) {
  double healthy_mean = 0;
  for (uint32_t f = 0; f <= options.max_failed; ++f) {
    const std::vector<uint32_t> dead(fail_order.begin(),
                                     fail_order.begin() + f);
    std::vector<bool> mask(method.num_disks(), false);
    for (uint32_t d : dead) mask[d] = true;
    Result<DegradedPlan> plan = build_plan(mask);
    GRIDDECL_RETURN_IF_ERROR(plan.status());
    Result<AvailabilityPoint> point =
        RunPoint(method, registry_name, workload, options, plan.value(),
                 dead, strategy, replicas);
    GRIDDECL_RETURN_IF_ERROR(point.status());
    if (f == 0) healthy_mean = point.value().mean_latency_ms;
    point.value().degraded_ratio =
        healthy_mean <= 0 ? 0
                          : point.value().mean_latency_ms / healthy_mean;
    points->push_back(std::move(point).value());
  }
  return Status::Ok();
}

}  // namespace

Result<AvailabilitySweep> RunAvailabilitySweep(
    const AvailabilitySweepOptions& options) {
  GRIDDECL_RETURN_IF_ERROR(ValidateSweepOptions(options));
  Result<GridSpec> grid = GridSpec::Create(options.grid_dims);
  GRIDDECL_RETURN_IF_ERROR(grid.status());

  QueryGenerator gen(grid.value());
  Rng workload_rng(options.seed);
  Result<Workload> workload = gen.SampledPlacements(
      options.query_shape, options.num_queries, &workload_rng, "a11");
  GRIDDECL_RETURN_IF_ERROR(workload.status());

  // The disks killed at level f are the first f of this permutation: the
  // failed sets are nested, and identical across runs at the same seed.
  Rng fail_rng(options.seed);
  const std::vector<uint32_t> fail_order =
      fail_rng.Permutation(options.num_disks);

  const std::vector<std::string> names =
      options.methods.empty() ? AllMethodNames() : options.methods;

  AvailabilitySweep sweep;
  sweep.options = options;
  for (const std::string& name : names) {
    Result<std::unique_ptr<DeclusteringMethod>> made =
        CreateMethod(name, grid.value(), options.num_disks);
    if (!made.ok()) {
      if (options.methods.empty()) continue;  // e.g. ECC off-configuration.
      return made.status();
    }
    const DeclusteringMethod& method = *made.value();

    // r = 1, no redundancy: buckets on dead disks fail their queries.
    GRIDDECL_RETURN_IF_ERROR(SweepStrategy(
        method, name, workload.value(), options, fail_order, "plain", 1,
        [&](std::vector<bool> mask) {
          return DegradedPlan::ForMethod(method, std::move(mask));
        },
        &sweep.points));

    // Replicated placements: optimal re-routing around failures.
    for (uint32_t r : options.replication) {
      Result<std::unique_ptr<DeclusteringMethod>> base =
          CreateMethod(name, grid.value(), options.num_disks);
      GRIDDECL_RETURN_IF_ERROR(base.status());
      Result<ReplicatedPlacement> placement = ReplicatedPlacement::Create(
          std::move(base).value(), r, /*offset=*/1);
      GRIDDECL_RETURN_IF_ERROR(placement.status());
      GRIDDECL_RETURN_IF_ERROR(SweepStrategy(
          method, name, workload.value(), options, fail_order,
          "replica-r" + std::to_string(r), r,
          [&](std::vector<bool> mask) {
            return DegradedPlan::ForReplicated(placement.value(),
                                               std::move(mask));
          },
          &sweep.points));
    }

    // Parity-group reconstruction, where the method's coding supports it.
    if (DegradedPlan::ForEcc(method, std::vector<bool>(options.num_disks,
                                                       false))
            .ok()) {
      GRIDDECL_RETURN_IF_ERROR(SweepStrategy(
          method, name, workload.value(), options, fail_order,
          "ecc-reconstruct", 1,
          [&](std::vector<bool> mask) {
            return DegradedPlan::ForEcc(method, std::move(mask));
          },
          &sweep.points));
    }
  }
  return sweep;
}

std::string AvailabilitySweep::ToJson() const {
  std::string out;
  out += "{\n";
  out += "  \"experiment\": \"a11-degraded\",\n";
  out += "  \"grid\": " + JsonUintList(options.grid_dims) + ",\n";
  out += "  \"num_disks\": " + std::to_string(options.num_disks) + ",\n";
  out += "  \"query_shape\": " + JsonUintList(options.query_shape) + ",\n";
  out += "  \"num_queries\": " + std::to_string(options.num_queries) + ",\n";
  out += "  \"max_failed\": " + std::to_string(options.max_failed) + ",\n";
  out += "  \"replication\": " + JsonUintList(options.replication) + ",\n";
  out += "  \"seed\": " + std::to_string(options.seed) + ",\n";
  out +=
      "  \"concurrency\": " + std::to_string(options.sim.concurrency) + ",\n";
  out += "  \"points\": [";
  for (size_t i = 0; i < points.size(); ++i) {
    const AvailabilityPoint& p = points[i];
    out += i > 0 ? ",\n    " : "\n    ";
    out += "{\"method\": \"" + p.method + "\"";
    out += ", \"strategy\": \"" + p.strategy + "\"";
    out += ", \"replicas\": " + std::to_string(p.replicas);
    out += ", \"failed_disks\": " + std::to_string(p.failed_disks);
    out += ", \"mean_latency_ms\": " + JsonNum(p.mean_latency_ms);
    out += ", \"total_ms\": " + JsonNum(p.total_ms);
    out += ", \"availability\": " + JsonNum(p.availability);
    out += ", \"unavailable_queries\": " +
           std::to_string(p.unavailable_queries);
    out += ", \"rerouted_buckets\": " + std::to_string(p.rerouted_buckets);
    out += ", \"reconstruction_reads\": " +
           std::to_string(p.reconstruction_reads);
    out += ", \"transient_retries\": " +
           std::to_string(p.transient_retries);
    out += ", \"degraded_ratio\": " + JsonNum(p.degraded_ratio);
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace griddecl
