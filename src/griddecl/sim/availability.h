#ifndef GRIDDECL_SIM_AVAILABILITY_H_
#define GRIDDECL_SIM_AVAILABILITY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "griddecl/cluster/placement.h"
#include "griddecl/common/status.h"
#include "griddecl/sim/throughput.h"

/// \file
/// Availability sweep (experiment A11): mean response and availability as
/// disks fail, for every registry method under each degraded-read strategy
/// it supports.
///
/// For each method the sweep simulates the same sampled workload through
/// the closed-system throughput simulator at f = 0..max_failed permanently
/// failed disks (the failed set is a seeded permutation prefix, so runs
/// with the same seed fail the same disks), under up to three recovery
/// configurations:
///
///  * `plain` (r = 1)        — no redundancy; dead-disk buckets fail their
///                             queries (every method);
///  * `replica-rR`           — chained R-replica placement with optimal
///                             re-routing (every method, R from
///                             `replication`);
///  * `ecc-reconstruct`      — parity-group reconstruction (ECC method
///                             only; exercises the coding machinery).
///
/// Everything is deterministic under `seed`: two runs with the same options
/// produce byte-identical JSON.
///
/// **Correlated-failure mode (experiment A16).** Setting `failure_domain`
/// to node/rack/zone switches the sweep from independent disk deaths to
/// whole-domain kills: disks are dealt onto `topology` nodes in the same
/// contiguous slices the cluster coordinator uses, the failed set at level
/// f is every disk on the first f killed domains, and the replica
/// strategies become the cluster's placement policies (chained / spread /
/// zone_aware) lowered to per-primary-disk replica tables. The classic
/// kDisk report stays byte-identical; correlated reports add
/// `failure_domain`, `topology`, `policies`, and per-point
/// `failed_domains` fields.
///
/// **Repair-aware mode (experiment A17).** Setting `repair` (correlated
/// mode only) additionally evaluates each policy under a
/// `<policy>-rR+repair` strategy: before the f-th domain dies, every
/// earlier kill has been healed by the cluster's repair planner
/// (`cluster::PlanRepair`), so the point measures the exposure window
/// right after the latest failure only. Each point also reports the
/// repair the latest kill triggers — `replicas_rebuilt` and the modelled
/// `redundancy_restored_ms` (detection plus paced per-replica copy time),
/// the sweep-level face of the cluster's MTTR. Non-repair reports stay
/// byte-identical.

namespace griddecl {

/// Unit of correlated failure. kDisk is the classic A11 sweep (disks die
/// independently); the others kill every disk hosted by the domain.
enum class FailureDomain : uint32_t {
  kDisk = 0,
  kNode = 1,
  kRack = 2,
  kZone = 3,
};

const char* FailureDomainName(FailureDomain domain);
Result<FailureDomain> ParseFailureDomain(const std::string& name);

/// One (method, strategy, failed-disk count) measurement.
struct AvailabilityPoint {
  std::string method;
  /// "plain", "replica-r2", "replica-r3", ..., or "ecc-reconstruct".
  std::string strategy;
  /// Physical copies per bucket (1 for plain and ecc-reconstruct).
  uint32_t replicas = 1;
  uint32_t failed_disks = 0;
  /// Correlated mode: how many whole domains were killed to produce
  /// `failed_disks` (equal to `failed_disks` in classic kDisk mode).
  uint32_t failed_domains = 0;
  /// Mean latency over answered queries (ms).
  double mean_latency_ms = 0;
  double total_ms = 0;
  /// Fraction of queries answered, in [0, 1].
  double availability = 1.0;
  uint64_t unavailable_queries = 0;
  uint64_t rerouted_buckets = 0;
  uint64_t reconstruction_reads = 0;
  uint64_t transient_retries = 0;
  /// mean_latency_ms / (same configuration's f = 0 mean); 0 when no query
  /// was answered.
  double degraded_ratio = 0;
  /// Repair mode only: replica re-targets the latest domain kill needs
  /// (0 for non-repair strategies and at f = 0).
  uint32_t replicas_rebuilt = 0;
  /// Repair mode only: modelled time from the latest kill until redundancy
  /// is back — `repair_detect_ms + replicas_rebuilt * repair_ms_per_replica`
  /// (0 when nothing needed rebuilding).
  double redundancy_restored_ms = 0;
};

/// Sweep configuration. Defaults give the standard A11 setup: 32x32 grid,
/// M = 8 (a power of two, so ECC participates), 4x4 queries.
struct AvailabilitySweepOptions {
  std::vector<uint32_t> grid_dims = {32, 32};
  uint32_t num_disks = 8;
  std::vector<uint32_t> query_shape = {4, 4};
  /// Sampled query placements per workload.
  uint32_t num_queries = 200;
  /// Sweep failed-disk counts 0..max_failed (each f fails the first f
  /// entries of a seeded disk permutation).
  uint32_t max_failed = 2;
  /// Replication degrees (> 1) to evaluate with replica re-routing.
  std::vector<uint32_t> replication = {2, 3};
  /// Seeds workload sampling, the failed-disk permutation, and the fault
  /// model's transient-error hash.
  uint64_t seed = 42;
  /// Methods to sweep; empty selects every registry method.
  std::vector<std::string> methods;
  /// Closed-system simulator knobs (faults/degraded are set per point and
  /// must be null here).
  ThroughputOptions sim;

  /// kDisk keeps the classic sweep; node/rack/zone switch to correlated
  /// whole-domain kills (see file comment).
  FailureDomain failure_domain = FailureDomain::kDisk;
  /// Correlated mode only: the node -> rack -> zone topology disks are
  /// dealt onto. Must validate and have num_nodes <= num_disks.
  cluster::Topology topology;
  /// Correlated mode only: placement policies to evaluate (each crossed
  /// with every `replication` degree). Empty selects all three.
  std::vector<cluster::PlacementPolicy> placement_policies;
  /// Correlated mode only: seeds the zone_aware tie-break hash.
  uint64_t placement_seed = 1;
  /// Correlated mode only: explicit kill order over domain ids, overriding
  /// the seeded permutation (entries distinct, < domain count, and at
  /// least max_failed of them). Lets callers probe a specific worst-case
  /// domain instead of the seeded one.
  std::vector<uint32_t> forced_domain_order;

  /// Correlated mode only: also evaluate `<policy>-rR+repair` strategies
  /// where every earlier kill has been healed by `cluster::PlanRepair`
  /// before the next domain dies (see file comment).
  bool repair = false;
  /// Repair-MTTR model: failure-detection lag (the heartbeat's
  /// dead_after * interval) and the paced copy cost per rebuilt replica.
  double repair_detect_ms = 40.0;
  double repair_ms_per_replica = 5.0;
};

/// Sweep output: every point plus enough configuration echo to interpret it.
struct AvailabilitySweep {
  AvailabilitySweepOptions options;
  std::vector<AvailabilityPoint> points;

  /// Deterministic JSON report (stable key order, fixed float formatting):
  /// identical options => byte-identical text.
  std::string ToJson() const;
};

/// Runs the sweep. Methods the configuration cannot construct (e.g. ECC on
/// a non-power-of-two setup) are skipped silently, mirroring the paper's
/// treatment; hard simulator errors propagate.
Result<AvailabilitySweep> RunAvailabilitySweep(
    const AvailabilitySweepOptions& options);

}  // namespace griddecl

#endif  // GRIDDECL_SIM_AVAILABILITY_H_
