#ifndef GRIDDECL_SIM_AVAILABILITY_H_
#define GRIDDECL_SIM_AVAILABILITY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "griddecl/common/status.h"
#include "griddecl/sim/throughput.h"

/// \file
/// Availability sweep (experiment A11): mean response and availability as
/// disks fail, for every registry method under each degraded-read strategy
/// it supports.
///
/// For each method the sweep simulates the same sampled workload through
/// the closed-system throughput simulator at f = 0..max_failed permanently
/// failed disks (the failed set is a seeded permutation prefix, so runs
/// with the same seed fail the same disks), under up to three recovery
/// configurations:
///
///  * `plain` (r = 1)        — no redundancy; dead-disk buckets fail their
///                             queries (every method);
///  * `replica-rR`           — chained R-replica placement with optimal
///                             re-routing (every method, R from
///                             `replication`);
///  * `ecc-reconstruct`      — parity-group reconstruction (ECC method
///                             only; exercises the coding machinery).
///
/// Everything is deterministic under `seed`: two runs with the same options
/// produce byte-identical JSON.

namespace griddecl {

/// One (method, strategy, failed-disk count) measurement.
struct AvailabilityPoint {
  std::string method;
  /// "plain", "replica-r2", "replica-r3", ..., or "ecc-reconstruct".
  std::string strategy;
  /// Physical copies per bucket (1 for plain and ecc-reconstruct).
  uint32_t replicas = 1;
  uint32_t failed_disks = 0;
  /// Mean latency over answered queries (ms).
  double mean_latency_ms = 0;
  double total_ms = 0;
  /// Fraction of queries answered, in [0, 1].
  double availability = 1.0;
  uint64_t unavailable_queries = 0;
  uint64_t rerouted_buckets = 0;
  uint64_t reconstruction_reads = 0;
  uint64_t transient_retries = 0;
  /// mean_latency_ms / (same configuration's f = 0 mean); 0 when no query
  /// was answered.
  double degraded_ratio = 0;
};

/// Sweep configuration. Defaults give the standard A11 setup: 32x32 grid,
/// M = 8 (a power of two, so ECC participates), 4x4 queries.
struct AvailabilitySweepOptions {
  std::vector<uint32_t> grid_dims = {32, 32};
  uint32_t num_disks = 8;
  std::vector<uint32_t> query_shape = {4, 4};
  /// Sampled query placements per workload.
  uint32_t num_queries = 200;
  /// Sweep failed-disk counts 0..max_failed (each f fails the first f
  /// entries of a seeded disk permutation).
  uint32_t max_failed = 2;
  /// Replication degrees (> 1) to evaluate with replica re-routing.
  std::vector<uint32_t> replication = {2, 3};
  /// Seeds workload sampling, the failed-disk permutation, and the fault
  /// model's transient-error hash.
  uint64_t seed = 42;
  /// Methods to sweep; empty selects every registry method.
  std::vector<std::string> methods;
  /// Closed-system simulator knobs (faults/degraded are set per point and
  /// must be null here).
  ThroughputOptions sim;
};

/// Sweep output: every point plus enough configuration echo to interpret it.
struct AvailabilitySweep {
  AvailabilitySweepOptions options;
  std::vector<AvailabilityPoint> points;

  /// Deterministic JSON report (stable key order, fixed float formatting):
  /// identical options => byte-identical text.
  std::string ToJson() const;
};

/// Runs the sweep. Methods the configuration cannot construct (e.g. ECC on
/// a non-power-of-two setup) are skipped silently, mirroring the paper's
/// treatment; hard simulator errors propagate.
Result<AvailabilitySweep> RunAvailabilitySweep(
    const AvailabilitySweepOptions& options);

}  // namespace griddecl

#endif  // GRIDDECL_SIM_AVAILABILITY_H_
