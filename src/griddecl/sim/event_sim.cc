#include "griddecl/sim/event_sim.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <optional>
#include <queue>

#include "griddecl/eval/metrics.h"
#include "griddecl/sim/sim_metrics.h"

namespace griddecl {

namespace {

/// One queued bucket read; `attempt` counts prior transient failures.
struct PendingRead {
  uint64_t addr = 0;
  uint32_t attempt = 0;
};

/// Per-disk state: one FIFO sub-queue per waiting query, served round
/// robin; `last_address` drives the locality model.
struct DiskState {
  /// Query ids with pending requests, in round-robin order.
  std::deque<uint32_t> turn_order;
  /// Pending requests per query (indexed by query id).
  std::vector<std::deque<PendingRead>> pending;
  bool busy = false;
  /// Request currently in service (valid while busy).
  uint32_t current_query = 0;
  uint64_t current_addr = 0;
  uint32_t current_attempt = 0;
  /// True when the in-service attempt suffers a transient error and must
  /// re-enqueue on this disk.
  bool current_failed = false;
  uint64_t last_address = 0;
  bool has_last = false;
  double busy_ms = 0;
};

}  // namespace

Workload ReorderLongestFirst(const DeclusteringMethod& method,
                             const Workload& workload) {
  std::vector<std::pair<uint64_t, size_t>> keyed;
  keyed.reserve(workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    keyed.push_back({ResponseTime(method, workload.queries[i]), i});
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const auto& a, const auto& b) {
                     return a.first > b.first;
                   });
  Workload out;
  out.name = workload.name + "/lpt";
  out.queries.reserve(workload.size());
  for (const auto& [cost, index] : keyed) {
    out.queries.push_back(workload.queries[index]);
  }
  return out;
}

Result<ThroughputResult> SimulateInterleaved(
    const DeclusteringMethod& method, const Workload& workload,
    const ThroughputOptions& options) {
  const uint32_t m = method.num_disks();
  GRIDDECL_RETURN_IF_ERROR(
      ValidateThroughputOptions(options, workload, m));
  const DiskParams& p = options.params;
  const double transfer = p.TransferMs();
  const double position = p.avg_seek_ms + p.rotational_latency_ms;
  const GridSpec& grid = method.grid();
  const uint32_t n = static_cast<uint32_t>(workload.size());

  const FaultModel* fm = options.faults;
  const bool faulty = (fm != nullptr && !fm->IsNoop()) ||
                      options.degraded != nullptr;
  std::optional<DegradedPlan> default_plan;
  const DegradedPlan* plan = options.degraded;
  if (fm != nullptr && fm->has_failures() && plan == nullptr) {
    Result<DegradedPlan> p_plain =
        DegradedPlan::ForMethod(method, fm->terminal_failed());
    if (!p_plain.ok()) return p_plain.status();
    default_plan.emplace(std::move(p_plain).value());
    plan = &*default_plan;
  }
  std::optional<FaultModel> noop_faults;
  if (faulty && fm == nullptr) {
    noop_faults.emplace(FaultModel::None(m));
    fm = &*noop_faults;
  }

  std::vector<DiskState> disks(m);
  for (DiskState& d : disks) d.pending.resize(n);
  std::vector<uint32_t> remaining(n, 0);  // Outstanding requests per query.
  std::vector<double> admit_time(n, 0);
  std::vector<bool> unavailable(n, false);

  ThroughputResult result;
  result.num_queries = n;
  result.disk_busy_ms.assign(m, 0);

  sim_internal::ClosedSystemMetrics obs_sink(options.metrics, m);

  // Completion events: (time, disk). A disk has at most one in flight.
  using Event = std::pair<double, uint32_t>;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;

  uint32_t next_query = 0;
  uint32_t in_flight = 0;
  double now = 0;
  double latency_sum = 0;
  uint64_t answered = 0;

  auto start_service = [&](uint32_t disk_id) {
    DiskState& d = disks[disk_id];
    if (d.busy || d.turn_order.empty()) return;
    const uint32_t q = d.turn_order.front();
    d.turn_order.pop_front();
    GRIDDECL_CHECK(!d.pending[q].empty());
    const PendingRead read = d.pending[q].front();
    d.pending[q].pop_front();
    double seek = position;
    if (d.has_last && read.addr >= d.last_address &&
        read.addr - d.last_address <= p.near_gap_buckets) {
      seek *= p.near_seek_factor;
    }
    double scale =
        options.slowdown.empty() ? 1.0 : options.slowdown[disk_id];
    if (faulty) scale *= fm->SlowdownAt(disk_id, now);
    double service = (seek + transfer) * scale;
    d.current_failed =
        faulty && fm->AttemptFails(disk_id, read.addr, read.attempt);
    // A failed attempt holds the disk for the service plus a firmware
    // backoff wait; the retry re-enters this disk's queue at completion.
    if (d.current_failed) service += fm->RetryDelayMs(read.attempt);
    d.last_address = read.addr;
    d.has_last = true;
    d.busy = true;
    d.current_query = q;
    d.current_addr = read.addr;
    d.current_attempt = read.attempt;
    d.busy_ms += service;
    // Fair sharing: the query rejoins the tail if it still has requests.
    if (!d.pending[q].empty()) d.turn_order.push_back(q);
    events.push({now + service, disk_id});
  };

  // Forward declaration dance: admit() and complete_query() are mutually
  // recursive through zero-request queries.
  std::function<void(uint32_t, double)> complete_query;
  auto admit = [&](uint32_t q, double at) {
    admit_time[q] = at;
    ++in_flight;
    std::vector<std::vector<uint64_t>> batches(m);
    if (faulty && plan != nullptr) {
      const std::vector<bool> mask =
          fm->has_failures() ? fm->FailedMaskAt(at) : plan->failed();
      Result<DegradedPlan::QueryPlan> qp =
          plan->ExpandQuery(workload.queries[q], &mask);
      // Expansion only fails on arity mismatches, which validation
      // already excluded.
      GRIDDECL_CHECK_MSG(qp.ok(), "%s", qp.status().ToString().c_str());
      if (qp.value().unavailable_buckets > 0) {
        // The query fails at admission: no reads are issued.
        unavailable[q] = true;
        remaining[q] = 0;
        complete_query(q, at);
        return;
      }
      batches = std::move(qp.value().per_disk);
      result.rerouted_buckets += qp.value().rerouted_buckets;
      result.reconstruction_reads += qp.value().reconstruction_reads;
    } else {
      workload.queries[q].rect().ForEachBucket([&](const BucketCoords& c) {
        batches[method.DiskOf(c)].push_back(grid.Linearize(c));
      });
    }
    obs_sink.RecordAdmission(batches);
    uint32_t total = 0;
    for (uint32_t disk_id = 0; disk_id < m; ++disk_id) {
      std::sort(batches[disk_id].begin(), batches[disk_id].end());
      for (uint64_t addr : batches[disk_id]) {
        disks[disk_id].pending[q].push_back({addr, 0});
      }
      if (!batches[disk_id].empty()) {
        disks[disk_id].turn_order.push_back(q);
        total += static_cast<uint32_t>(batches[disk_id].size());
      }
    }
    remaining[q] = total;
    if (total == 0) {
      complete_query(q, at);
    } else {
      for (uint32_t disk_id = 0; disk_id < m; ++disk_id) {
        start_service(disk_id);
      }
    }
  };

  complete_query = [&](uint32_t q, double at) {
    if (unavailable[q]) {
      ++result.unavailable_queries;
    } else {
      const double latency = at - admit_time[q];
      latency_sum += latency;
      ++answered;
      obs::Observe(obs_sink.latency, latency);
      result.max_latency_ms = std::max(result.max_latency_ms, latency);
    }
    result.total_ms = std::max(result.total_ms, at);
    --in_flight;
    if (next_query < n) {
      const uint32_t next = next_query++;
      admit(next, at);
    }
  };

  while (next_query < n && in_flight < options.concurrency) {
    const uint32_t next = next_query++;
    admit(next, 0);
  }

  while (!events.empty()) {
    const auto [time, disk_id] = events.top();
    events.pop();
    now = time;
    DiskState& d = disks[disk_id];
    const uint32_t q = d.current_query;
    d.busy = false;
    GRIDDECL_CHECK(remaining[q] > 0);
    if (d.current_failed) {
      // Transient error: the request re-enqueues at the tail of its
      // query's sub-queue on this same disk.
      ++result.transient_retries;
      if (d.pending[q].empty()) d.turn_order.push_back(q);
      d.pending[q].push_back({d.current_addr, d.current_attempt + 1});
      d.current_failed = false;
    } else if (--remaining[q] == 0) {
      complete_query(q, now);
    }
    start_service(disk_id);
  }

  for (uint32_t disk_id = 0; disk_id < m; ++disk_id) {
    result.disk_busy_ms[disk_id] = disks[disk_id].busy_ms;
  }
  result.mean_latency_ms =
      answered == 0 ? 0.0 : latency_sum / static_cast<double>(answered);
  obs_sink.RecordOutcome(result);
  return result;
}

}  // namespace griddecl
